package walkindex

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"

	"oipsr/graph/gen"
	"oipsr/internal/par"
)

// shardRanges partitions [0, n) into `parts` contiguous ranges with the
// same balanced split par.Range produces — the planner's partition shape.
func shardRanges(n, parts int) [][2]int {
	out := make([][2]int, parts)
	for w := 0; w < parts; w++ {
		lo, hi := par.Range(n, parts, w)
		out[w] = [2]int{lo, hi}
	}
	return out
}

// TestBuildShardEqualsFullSlice: the partition invariant — every shard's
// stored rows are exactly the corresponding rows of a full Build.
func TestBuildShardEqualsFullSlice(t *testing.T) {
	g := gen.WebGraph(73, 6, 11)
	opt := Options{Walks: 20, Seed: 42, Workers: 2}
	full, err := Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range []int{1, 2, 3, 5} {
		covered := 0
		for _, r := range shardRanges(g.NumVertices(), parts) {
			sx, err := BuildShard(g, opt, r[0], r[1])
			if err != nil {
				t.Fatal(err)
			}
			if !sx.EqualSlice(full) {
				t.Fatalf("parts=%d shard [%d,%d): rows differ from full index slice", parts, r[0], r[1])
			}
			covered += sx.Width()
		}
		if covered != g.NumVertices() {
			t.Fatalf("parts=%d: partition covers %d of %d vertices", parts, covered, g.NumVertices())
		}
	}
}

func TestBuildShardValidation(t *testing.T) {
	g := gen.WebGraph(20, 4, 1)
	for _, r := range [][2]int{{-1, 5}, {5, 4}, {0, 21}, {19, 25}} {
		if _, err := BuildShard(g, Options{Walks: 5}, r[0], r[1]); err == nil {
			t.Errorf("range [%d,%d): expected error", r[0], r[1])
		}
	}
	if _, err := BuildShard(g, Options{C: 2}, 0, 10); err == nil {
		t.Error("invalid damping factor: expected error")
	}
}

// TestPartialMultiSourceMatchesFull: concatenating the partial rows of a
// covering shard set reproduces MultiSource (and therefore SingleSource)
// bitwise — for owned sources, foreign sources, duplicates, and every
// worker count.
func TestPartialMultiSourceMatchesFull(t *testing.T) {
	g := gen.CitationGraph(61, 5, 7)
	opt := Options{Walks: 25, Seed: 3, Workers: 2}
	full, err := Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	sources := []int{0, 17, 60, 17, 33} // ends, interior, duplicate
	want, err := full.MultiSource(context.Background(), sources, 1)
	if err != nil {
		t.Fatal(err)
	}

	for _, parts := range []int{1, 2, 4} {
		for _, workers := range []int{1, 3} {
			got := make([][]float64, len(sources))
			for i := range got {
				got[i] = make([]float64, 0, n)
			}
			for _, r := range shardRanges(n, parts) {
				sx, err := BuildShard(g, opt, r[0], r[1])
				if err != nil {
					t.Fatal(err)
				}
				rows, err := sx.PartialMultiSource(context.Background(), g, sources, workers)
				if err != nil {
					t.Fatal(err)
				}
				for i := range got {
					got[i] = append(got[i], rows[i]...)
				}
			}
			for si := range want {
				for v := 0; v < n; v++ {
					if got[si][v] != want[si][v] {
						t.Fatalf("parts=%d workers=%d: source %d target %d: shard %v != full %v",
							parts, workers, sources[si], v, got[si][v], want[si][v])
					}
				}
			}
		}
	}
}

// TestShardPairMatchesFull: ShardIndex.Pair equals Index.Pair whether the
// shard owns both, one, or neither endpoint.
func TestShardPairMatchesFull(t *testing.T) {
	g := gen.WebGraph(40, 5, 9)
	opt := Options{Walks: 30, Seed: 8, Workers: 1}
	full, err := Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	sx, err := BuildShard(g, opt, 10, 20) // owns [10,20)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range [][2]int{{12, 15}, {12, 35}, {3, 15}, {3, 35}, {7, 7}} {
		if got, want := sx.Pair(g, pr[0], pr[1]), full.Pair(pr[0], pr[1]); got != want {
			t.Errorf("Pair(%d,%d): shard %v != full %v", pr[0], pr[1], got, want)
		}
	}
}

// TestShardUpdateBitIdentical: the property test, sharded — after chains
// of random edit batches, each repaired shard equals a fresh BuildShard on
// the edited graph, so a fleet applying the same edits stays an exact
// partition of the single-node index.
func TestShardUpdateBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		n := 10 + rng.Intn(50)
		g := gen.ErdosRenyi(n, 2+rng.Intn(4*n), rng.Int63())
		opt := Options{Walks: 8 + rng.Intn(20), Seed: rng.Int63(), Workers: 1}
		parts := 2 + rng.Intn(3)

		shards := make([]*ShardIndex, 0, parts)
		for _, r := range shardRanges(n, parts) {
			sx, err := BuildShard(g, opt, r[0], r[1])
			if err != nil {
				t.Fatal(err)
			}
			shards = append(shards, sx)
		}

		cur := g
		for batch := 0; batch < 3; batch++ {
			next, sum, err := cur.ApplyEdits(randomEdits(rng, cur, 1+rng.Intn(8)))
			if err != nil {
				t.Fatal(err)
			}
			for _, sx := range shards {
				workers := 1 + rng.Intn(3)
				if _, err := sx.Update(next, sum.DirtyIn, workers); err != nil {
					t.Fatal(err)
				}
				fresh, err := BuildShard(next, opt, sx.Lo(), sx.Hi())
				if err != nil {
					t.Fatal(err)
				}
				if !sx.Equal(fresh) {
					t.Fatalf("trial %d batch %d shard [%d,%d): update != rebuild", trial, batch, sx.Lo(), sx.Hi())
				}
			}
			cur = next
		}
	}
}

func TestShardUpdateValidation(t *testing.T) {
	g := gen.WebGraph(20, 4, 1)
	sx, err := BuildShard(g, Options{Walks: 5}, 5, 15)
	if err != nil {
		t.Fatal(err)
	}
	other := gen.WebGraph(21, 4, 1)
	if _, err := sx.Update(other, nil, 1); err == nil {
		t.Error("vertex-count mismatch: expected error")
	}
	if _, err := sx.Update(g, []int{20}, 1); err == nil {
		t.Error("out-of-range dirty vertex: expected error")
	}
}

// TestShardSaveLoadRoundTrip: the on-disk format reproduces the shard
// exactly, and the usual corruptions are rejected.
func TestShardSaveLoadRoundTrip(t *testing.T) {
	g := gen.WebGraph(35, 5, 4)
	sx, err := BuildShard(g, Options{Walks: 12, Seed: 5}, 8, 23)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadShard(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !sx.Equal(loaded) {
		t.Fatal("round-tripped shard differs")
	}
	if loaded.Lo() != 8 || loaded.Hi() != 23 || loaded.N() != 35 {
		t.Fatalf("round-tripped range/size wrong: n=%d [%d,%d)", loaded.N(), loaded.Lo(), loaded.Hi())
	}

	// Bit corruption in the payload trips the checksum.
	corrupt := append([]byte(nil), buf.Bytes()...)
	corrupt[shardHeaderSize+5] ^= 0x40
	if _, err := LoadShard(bytes.NewReader(corrupt)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupted payload: got %v, want ErrChecksum", err)
	}
	// Truncation is a clean error, not a panic.
	if _, err := LoadShard(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("truncated shard file: expected error")
	}
	// A full-index file is not a shard file and vice versa.
	var fullBuf bytes.Buffer
	full, err := Build(g, Options{Walks: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := full.Save(&fullBuf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadShard(bytes.NewReader(fullBuf.Bytes())); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("full index via LoadShard: got %v, want ErrBadMagic", err)
	}
	if _, err := Load(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("shard via Load: got %v, want ErrBadMagic", err)
	}
}

// TestShardedJoinMatchesFull: partitioning the fingerprint space across
// shards, unioning the candidate sets, scoring with owner-of-a scatter,
// and running the shared FinishJoin tail reproduces Index.Join bitwise.
func TestShardedJoinMatchesFull(t *testing.T) {
	g := gen.CitationGraph(45, 4, 13)
	opt := Options{Walks: 24, Seed: 21, Workers: 1}
	full, err := Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	ctx := context.Background()
	const maxCand = 1 << 16

	for _, threshold := range []float64{0, 0.05, 0.2, 0.6} {
		want, err := full.Join(ctx, 25, threshold, maxCand, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, parts := range []int{1, 3} {
			shards := make([]*ShardIndex, 0, parts)
			for _, r := range shardRanges(n, parts) {
				sx, err := BuildShard(g, opt, r[0], r[1])
				if err != nil {
					t.Fatal(err)
				}
				shards = append(shards, sx)
			}
			// Scatter: shard i enumerates fingerprint range i of a partition
			// of [0, R); gather: union with the cap re-applied.
			merged := make(map[uint64]struct{})
			for i, sx := range shards {
				fpLo, fpHi := par.Range(opt.Walks, parts, i)
				keys, err := sx.JoinCandidates(ctx, g, threshold, fpLo, fpHi, maxCand, 2)
				if err != nil {
					t.Fatal(err)
				}
				for _, key := range keys {
					merged[key] = struct{}{}
				}
			}
			// Scatter scoring by owner of the pair's a side.
			var pairs []JoinPair
			perShard := make([][]uint64, len(shards))
			for key := range merged {
				a := int(key >> 32)
				for i, sx := range shards {
					if sx.Owns(a) {
						perShard[i] = append(perShard[i], key)
						break
					}
				}
			}
			for i, sx := range shards {
				scored, err := sx.ScorePairs(ctx, g, perShard[i], 2)
				if err != nil {
					t.Fatal(err)
				}
				pairs = append(pairs, scored...)
			}
			got := FinishJoin(pairs, 25, threshold)
			if len(got) != len(want) {
				t.Fatalf("threshold=%v parts=%d: %d pairs != full's %d", threshold, parts, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("threshold=%v parts=%d: pair %d: %+v != %+v", threshold, parts, i, got[i], want[i])
				}
			}
		}
	}
}

// TestShardJoinCandidatesTooDense: a shard's candidate cap fails with the
// same ErrTooDense the single-node join reports.
func TestShardJoinCandidatesTooDense(t *testing.T) {
	g := gen.WebGraph(50, 6, 2)
	opt := Options{Walks: 16, Seed: 1}
	sx, err := BuildShard(g, opt, 0, 25)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sx.JoinCandidates(context.Background(), g, 0, 0, 16, 3, 2)
	if !errors.Is(err, ErrTooDense) {
		t.Fatalf("got %v, want ErrTooDense", err)
	}
}

// TestShardJoinCandidatesValidation rejects bad fingerprint ranges.
func TestShardJoinCandidatesValidation(t *testing.T) {
	g := gen.WebGraph(20, 4, 1)
	sx, err := BuildShard(g, Options{Walks: 8}, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int{{-1, 4}, {5, 4}, {0, 9}} {
		if _, err := sx.JoinCandidates(context.Background(), g, 0.1, r[0], r[1], 100, 1); err == nil {
			t.Errorf("fp range [%d,%d): expected error", r[0], r[1])
		}
	}
}
