package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"
)

// jsonOut, when non-nil, receives one NDJSON record per measured data point
// so future runs can be diffed mechanically (perf trajectory tracking). The
// human-readable tables keep printing to stdout regardless.
var jsonOut *json.Encoder

var jsonFile *os.File

// initJSON opens the -json sink: a file path, or "-" for stdout.
func initJSON(path string) error {
	if path == "" {
		return nil
	}
	if path == "-" {
		jsonOut = json.NewEncoder(os.Stdout)
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	jsonFile = f
	jsonOut = json.NewEncoder(f)
	return nil
}

func closeJSON() {
	if jsonFile != nil {
		jsonFile.Close()
	}
}

// emitJSON writes one record to the -json sink (no-op without -json). Keys
// are flattened alongside the experiment name and sorted for stable diffs.
func emitJSON(experiment string, fields map[string]any) {
	if jsonOut == nil {
		return
	}
	keys := make([]string, 0, len(fields))
	for k := range fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	// json.Marshal sorts map keys already; flatten into one object with the
	// experiment tag first by building an ordered raw message.
	buf := []byte(fmt.Sprintf("{%q:%q", "experiment", experiment))
	for _, k := range keys {
		v, err := json.Marshal(fields[k])
		if err != nil {
			continue
		}
		kk, _ := json.Marshal(k)
		buf = append(buf, ',')
		buf = append(buf, kk...)
		buf = append(buf, ':')
		buf = append(buf, v...)
	}
	buf = append(buf, '}')
	jsonOut.Encode(json.RawMessage(buf))
}

// seconds converts a duration to float seconds for JSON records.
func seconds(d time.Duration) float64 { return d.Seconds() }
