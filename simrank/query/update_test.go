package query

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"oipsr/graph"
	"oipsr/graph/gen"
)

// saveLoadQueryIndex round-trips an index through Save/Load, dropping the
// attached graph and any derived update state.
func saveLoadQueryIndex(t *testing.T, ix *Index) *Index {
	t.Helper()
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return loaded
}

// TestApplyEditsMatchesRebuild: the public edit path (graph edit + index
// repair + generation bump) must leave the index Equal() to a fresh build
// on the edited graph, with queries agreeing exactly — including reranked
// top-k, which exercises the re-attached graph.
func TestApplyEditsMatchesRebuild(t *testing.T) {
	g := gen.WebGraph(120, 7, 21)
	opt := Options{Walks: 150, Seed: 4}
	ix, err := BuildIndex(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Generation() != 0 {
		t.Fatalf("fresh index generation = %d", ix.Generation())
	}

	rng := rand.New(rand.NewSource(77))
	cur := g
	for batch := 1; batch <= 3; batch++ {
		edits := make([]graph.Edit, 8)
		for i := range edits {
			edits[i] = graph.Edit{Op: graph.EditOp(rng.Intn(2)), U: rng.Intn(120), V: rng.Intn(120)}
		}
		stats, err := ix.ApplyEdits(edits, 2)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Generation != uint64(batch) || ix.Generation() != uint64(batch) {
			t.Fatalf("batch %d: generation = %d/%d", batch, stats.Generation, ix.Generation())
		}

		cur, _, err = cur.ApplyEdits(edits)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := BuildIndex(cur, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !ix.Equal(fresh) {
			t.Fatalf("batch %d: updated index != fresh build", batch)
		}

		for _, q := range []int{0, 33, 119} {
			got, err := ix.TopK(context.Background(), q, 10, &TopKOptions{Rerank: true})
			if err != nil {
				t.Fatal(err)
			}
			want, err := fresh.TopK(context.Background(), q, 10, &TopKOptions{Rerank: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("batch %d q %d: result sizes differ", batch, q)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("batch %d q %d: reranked entry %d = %+v, want %+v", batch, q, i, got[i], want[i])
				}
			}
		}
	}
}

// TestApplyEditsErrors: error paths leave graph, index, and generation
// untouched.
func TestApplyEditsErrors(t *testing.T) {
	g := gen.WebGraph(30, 4, 5)
	ix, err := BuildIndex(g, Options{Walks: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	before, err := BuildIndex(g, Options{Walks: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.ApplyEdits([]graph.Edit{{Op: graph.EditAdd, U: 0, V: 99}}, 1); err == nil {
		t.Fatal("ApplyEdits accepted an out-of-range edit")
	}
	if ix.Generation() != 0 || ix.Graph() != g || !ix.Equal(before) {
		t.Fatal("failed ApplyEdits mutated the index")
	}

	loaded := saveLoadQueryIndex(t, ix)
	if _, err := loaded.ApplyEdits([]graph.Edit{{Op: graph.EditAdd, U: 0, V: 1}}, 1); err == nil {
		t.Fatal("ApplyEdits worked without an attached graph")
	}
}

// TestUpdateAfterLoadFile: a loaded index plus AttachGraph supports the
// full update path.
func TestUpdateAfterLoadFile(t *testing.T) {
	g := gen.CitationGraph(60, 4, 9)
	ix, err := BuildIndex(g, Options{Walks: 60, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	loaded := saveLoadQueryIndex(t, ix)
	if err := loaded.AttachGraph(g); err != nil {
		t.Fatal(err)
	}
	if err := loaded.PrepareUpdates(1); err != nil {
		t.Fatal(err)
	}
	stats, err := loaded.ApplyEdits([]graph.Edit{
		{Op: graph.EditAdd, U: 10, V: 20},
		{Op: graph.EditRemove, U: 10, V: 20},
		{Op: graph.EditAdd, U: 3, V: 50},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.EdgesAdded != 1 || stats.EdgesRemoved != 0 {
		t.Fatalf("stats = %+v, want one net add", stats)
	}
	g2, _, err := g.ApplyEdits([]graph.Edit{{Op: graph.EditAdd, U: 3, V: 50}})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := BuildIndex(g2, Options{Walks: 60, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Equal(fresh) {
		t.Fatal("loaded+updated index != fresh build on edited graph")
	}
}
