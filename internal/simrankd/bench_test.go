package simrankd

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"oipsr/graph/gen"
	"oipsr/simrank/query"
)

// benchServer builds an uncached server over a small index: with the LRU
// on, everything after the first iteration measures a map lookup; the
// pools (score rows, encode buffers) are what these benchmarks watch.
func benchServer(tb testing.TB) *Server {
	tb.Helper()
	g := gen.WebGraph(200, 8, 11)
	idx, err := query.BuildIndex(g, query.Options{Walks: 100, Seed: 3})
	if err != nil {
		tb.Fatal(err)
	}
	return NewServer(idx, Config{CacheSize: -1, Workers: 1})
}

// BenchmarkServeSingleSource measures one /v1/single_source request
// through the full handler stack (limiter, sweep, JSON encode) without a
// network in the way.
func BenchmarkServeSingleSource(b *testing.B) {
	srv := benchServer(b)
	req := httptest.NewRequest(http.MethodGet, "/v1/single_source?q=17", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

// TestServeSingleSourceAllocSteadyState pins the per-request allocation
// count of the pooled request path. The ceiling has headroom over the
// measured steady state (~14 with the recorder's own buffers included) but
// sits far below what losing the score-row or encode-buffer pooling costs
// — a regression that reallocates either per request trips it.
func TestServeSingleSourceAllocSteadyState(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc counting is disturbed by -short's test interleaving")
	}
	srv := benchServer(t)
	req := httptest.NewRequest(http.MethodGet, "/v1/single_source?q=17", nil)

	// Warm the pools so pool misses don't count against the steady state.
	for i := 0; i < 4; i++ {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d", rec.Code)
		}
	}
	const ceiling = 64
	avg := testing.AllocsPerRun(50, func() {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			panic(fmt.Sprintf("status %d", rec.Code))
		}
	})
	if avg > ceiling {
		t.Errorf("single_source request = %.1f allocs, ceiling %d — did a per-request buffer lose its pool?", avg, ceiling)
	}
}
