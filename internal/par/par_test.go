package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(3); got != 3 {
		t.Errorf("Resolve(3) = %d", got)
	}
	if got := Resolve(1); got != 1 {
		t.Errorf("Resolve(1) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	for _, w := range []int{0, -5} {
		if got := Resolve(w); got != want {
			t.Errorf("Resolve(%d) = %d, want GOMAXPROCS = %d", w, got, want)
		}
	}
}

func TestRangeCoversExactly(t *testing.T) {
	for _, tc := range []struct{ n, parts int }{
		{0, 1}, {1, 1}, {10, 1}, {10, 3}, {3, 10}, {100, 7}, {7, 7},
	} {
		covered := make([]int, tc.n)
		prevHi := 0
		for w := 0; w < tc.parts; w++ {
			lo, hi := Range(tc.n, tc.parts, w)
			if lo != prevHi {
				t.Fatalf("Range(%d,%d,%d): gap or overlap at %d (lo=%d)", tc.n, tc.parts, w, prevHi, lo)
			}
			if hi-lo < 0 || hi-lo > tc.n/tc.parts+1 {
				t.Fatalf("Range(%d,%d,%d): block size %d unbalanced", tc.n, tc.parts, w, hi-lo)
			}
			for i := lo; i < hi; i++ {
				covered[i]++
			}
			prevHi = hi
		}
		if prevHi != tc.n {
			t.Fatalf("Range(%d,%d,*): covered [0,%d), want [0,%d)", tc.n, tc.parts, prevHi, tc.n)
		}
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("Range(%d,%d,*): index %d covered %d times", tc.n, tc.parts, i, c)
			}
		}
	}
}

func TestDoRunsAllWorkers(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		var ran atomic.Int64
		seen := make([]atomic.Bool, workers)
		Do(workers, func(w int) {
			ran.Add(1)
			seen[w].Store(true)
		})
		if ran.Load() != int64(workers) {
			t.Errorf("Do(%d): %d invocations", workers, ran.Load())
		}
		for w := range seen {
			if !seen[w].Load() {
				t.Errorf("Do(%d): worker %d never ran", workers, w)
			}
		}
	}
}
