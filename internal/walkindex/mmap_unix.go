//go:build unix

package walkindex

import (
	"os"
	"syscall"
)

// mmapFile maps the first size bytes of f read-only. Callers fall back to
// ReadAt on any error, so this never needs to succeed.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 || size != int64(int(size)) {
		return nil, syscall.EINVAL
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(data []byte) error {
	return syscall.Munmap(data)
}
