package query

import (
	"context"
	"math"
	"path/filepath"
	"testing"

	"oipsr/graph"
	"oipsr/graph/gen"
	"oipsr/internal/naive"
)

// TestExactSingleSourceMatchesConvergedNaive: the exact query path must
// agree with a deeply converged Jeh-Widom iteration — the walk index's
// estimates play no part in it.
func TestExactSingleSourceMatchesConvergedNaive(t *testing.T) {
	g := gen.WebGraph(80, 6, 5)
	ix, err := BuildIndex(g, Options{Walks: 60, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := naive.ComputeWorkers(g, ix.C(), 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, ix.N())
	for _, q := range []int{0, 17, 79} {
		row, err := ix.ExactSingleSource(context.Background(), q, buf)
		if err != nil {
			t.Fatal(err)
		}
		refRow := ref.Row(q)
		for j, v := range row {
			if d := math.Abs(v - refRow[j]); d > 1e-8 {
				t.Fatalf("q=%d: s(%d) = %g vs converged naive %g", q, j, v, refRow[j])
			}
		}
	}
	if st, ok := ix.ExactStats(); !ok || st.Residual > ExactTol {
		t.Fatalf("ExactStats = %+v, %t", st, ok)
	}
}

// TestExactSingleSourceValidation pins the error surface: the same range
// and buffer contracts as SingleSourceInto, plus the attached-graph
// requirement a loaded-but-unattached index violates.
func TestExactSingleSourceValidation(t *testing.T) {
	g := gen.WebGraph(40, 5, 3)
	ix, err := BuildIndex(g, Options{Walks: 40, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := ix.ExactSingleSource(ctx, -1, nil); err == nil {
		t.Error("q=-1: expected range error")
	}
	if _, err := ix.ExactSingleSource(ctx, 40, nil); err == nil {
		t.Error("q=40: expected range error")
	}
	if _, err := ix.ExactSingleSource(ctx, 0, make([]float64, 3)); err == nil {
		t.Error("short buffer: expected length error")
	}

	path := filepath.Join(t.TempDir(), "walks.idx")
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.ExactSingleSource(ctx, 0, nil); err == nil {
		t.Error("unattached index: expected graph-required error")
	}
	if err := loaded.AttachGraph(g); err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.ExactSingleSource(ctx, 0, nil); err != nil {
		t.Errorf("after AttachGraph: %v", err)
	}
}

// TestExactSolverInvalidatedByEdits: an effective edit batch bumps the
// generation and must force a fresh diagonal solve whose answers track the
// edited graph, while a no-op batch keeps the cached solver.
func TestExactSolverInvalidatedByEdits(t *testing.T) {
	g := gen.WebGraph(60, 5, 9)
	ix, err := BuildIndex(g, Options{Walks: 60, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := ix.PrepareExact(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.ExactStats(); !ok {
		t.Fatal("PrepareExact did not build the solver")
	}

	// An effective edit: the solver must be stale until the next query.
	edits := []graph.Edit{{Op: graph.EditAdd, U: 1, V: 55}}
	if _, err := ix.ApplyEdits(edits, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.ExactStats(); ok {
		t.Fatal("solver still reported fresh after an effective edit")
	}
	row, err := ix.ExactSingleSource(ctx, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := naive.ComputeWorkers(ix.Graph(), ix.C(), 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range row {
		if d := math.Abs(v - ref.Row(1)[j]); d > 1e-8 {
			t.Fatalf("post-edit s(1,%d) = %g vs converged naive on edited graph %g", j, v, ref.Row(1)[j])
		}
	}

	// A no-op batch (re-adding an existing edge) keeps generation and
	// solver alike.
	if _, err := ix.ApplyEdits(edits, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.ExactStats(); !ok {
		t.Fatal("no-op batch invalidated the solver")
	}
}
