package main

import (
	"fmt"
	"sort"

	"oipsr/graph"
	"oipsr/simrank"
)

// exp4Queries picks the three highest in-degree vertices as query "authors"
// (substituting the paper's named queries "Jeffrey Xu Yu", "Philip S. Yu",
// "Jian Pei" — prolific authors, i.e. high-degree vertices).
func exp4Queries(g *graph.Graph) []int {
	type vd struct{ v, d int }
	var vds []vd
	for v := 0; v < g.NumVertices(); v++ {
		vds = append(vds, vd{v, g.InDegree(v)})
	}
	sort.Slice(vds, func(i, j int) bool {
		if vds[i].d != vds[j].d {
			return vds[i].d > vds[j].d
		}
		return vds[i].v < vds[j].v
	})
	return []int{vds[0].v, vds[1].v, vds[2].v}
}

// exp4Scores computes converged OIP-SR (the ground-truth ranking source,
// substituting the paper's human judgments) and OIP-DSR scores.
func exp4Scores(cfg config) (*graph.Graph, *simrank.Scores, *simrank.Scores) {
	g := coauthorD11(cfg)
	sr, _, err := simrank.Compute(g, simrank.Options{Algorithm: simrank.OIPSR, C: 0.8, Eps: 1e-6})
	must(err)
	ds, _, err := simrank.Compute(g, simrank.Options{Algorithm: simrank.OIPDSR, C: 0.8, Eps: 1e-6})
	must(err)
	return g, sr, ds
}

// runExp4NDCG reproduces Fig. 6g: average NDCG@{10,30,50} of the OIP-DSR
// and OIP-SR rankings against graded ground truth derived from converged
// conventional SimRank (grades 3/2/1 for ideal top-10/30/50).
func runExp4NDCG(cfg config) {
	header("Exp-4: relative ordering NDCG, C=0.8 (DBLP d11-like)", "Fig. 6g")
	g, sr, ds := exp4Scores(cfg)
	queries := exp4Queries(g)
	fmt.Printf("queries (top-degree authors): %v\n", queries)
	fmt.Printf("%-6s | %10s %10s\n", "p", "OIP-DSR", "OIP-SR")
	for _, p := range []int{10, 30, 50} {
		sumDSR, sumSR := 0.0, 0.0
		for _, q := range queries {
			skip := func(i int) bool { return i == q }
			idealRank := rankedVertices(sr, q, skip)
			rel := simrank.GradeByRank(g.NumVertices(), idealRank, []int{10, 30, 50})
			dsRank := rankedVertices(ds, q, skip)
			sumDSR += simrank.NDCG(rel, dsRank, p)
			sumSR += simrank.NDCG(rel, idealRank, p)
		}
		fmt.Printf("%-6d | %10.3f %10.3f\n", p, sumDSR/float64(len(queries)), sumSR/float64(len(queries)))
	}
	fmt.Println("(ground truth is converged OIP-SR, so OIP-SR's own NDCG is 1 by construction;")
	fmt.Println(" the paper used human judges, giving OIP-SR 0.96/0.93/0.85 and OIP-DSR 0.96/0.92/0.83)")
}

// runExp4TopK reproduces Fig. 6h: the top-30 list for the most prolific
// author under both models, with the inversion count between the lists.
func runExp4TopK(cfg config) {
	header("Exp-4: top-30 query comparison", "Fig. 6h")
	g, sr, ds := exp4Scores(cfg)
	q := exp4Queries(g)[0]
	fmt.Printf("query: vertex %d (in-degree %d)\n", q, g.InDegree(q))

	srTop := sr.TopK(q, 30)
	dsTop := ds.TopK(q, 30)
	fmt.Printf("%-4s | %-22s | %-22s\n", "#", "OIP-SR", "OIP-DSR")
	for i := 0; i < 30 && i < len(srTop); i++ {
		marker := " "
		if srTop[i].Vertex != dsTop[i].Vertex {
			marker = "*"
		}
		fmt.Printf("%-4d | v%-8d %10.6f | v%-8d %10.6f %s\n",
			i+1, srTop[i].Vertex, srTop[i].Score, dsTop[i].Vertex, dsTop[i].Score, marker)
	}
	a := vertices(srTop)
	b := vertices(dsTop)
	// Raw positional inversions include flips among near-tied community
	// scores; the significant count requires both models to disagree by
	// more than 2% of the top score.
	tol := 0.02 * srTop[0].Score
	fmt.Printf("top-30 overlap: %.2f   positional inversions: %d   significant inversions (tol %.4f): %d\n",
		simrank.TopKOverlap(a, b), simrank.Inversions(b, a),
		tol, simrank.SignificantInversions(a, sr.Row(q), ds.Row(q), tol))
	fmt.Println("(paper: lists differ by a single inversion of two adjacent positions)")
}

func rankedVertices(s *simrank.Scores, q int, skip func(int) bool) []int {
	top := s.TopK(q, s.N())
	out := make([]int, 0, len(top))
	for _, r := range top {
		if skip != nil && skip(r.Vertex) {
			continue
		}
		out = append(out, r.Vertex)
	}
	return out
}

func vertices(rs []simrank.Ranked) []int {
	out := make([]int, len(rs))
	for i, r := range rs {
		out[i] = r.Vertex
	}
	return out
}
