// Package matrixform implements SimRank in its matrix representation
// (Section II-B): S = C * Q S Q^T + (1-C) I_n, where Q is the backward
// transition matrix with [Q]_{i,j} = 1/|I(i)| for j in I(i).
//
// It provides three computations, all via sparse application of Q (never
// materializing Q as a dense matrix):
//
//   - FixedPoint: the damped iteration S_{k+1} = C Q S_k Q^T + (1-C) I.
//   - GeometricSum: the truncated power series of Eq. 12,
//     S_K = (1-C) * sum_{i=0..K} C^i Q^i (Q^T)^i.
//   - ExponentialSum: the truncated series of Eq. 13,
//     S^_K = e^-C * sum_{i=0..K} (C^i/i!) Q^i (Q^T)^i,
//     the definition the differential SimRank engine must agree with.
//
// Note the matrix form is NOT numerically identical to the Jeh-Widom
// iterative form: Eq. 2 pins the diagonal to exactly 1 every iteration,
// while Eq. 3 lets diagonal entries float in [1-C, 1]. The paper calls the
// forms consistent citing [14]; this package exists precisely so each engine
// can be validated against the formulation it actually implements.
package matrixform

import (
	"fmt"
	"math"

	"oipsr/graph"
	"oipsr/internal/numeric"
	"oipsr/internal/simmat"
)

// ApplyQ computes dst = Q * src: row i of dst is the average of the rows of
// src indexed by I(i), or zero when I(i) is empty.
func ApplyQ(g *graph.Graph, src, dst *simmat.Matrix) {
	n := g.NumVertices()
	for i := 0; i < n; i++ {
		row := dst.Row(i)
		in := g.In(i)
		if len(in) == 0 {
			for j := range row {
				row[j] = 0
			}
			continue
		}
		inv := 1 / float64(len(in))
		first := src.Row(in[0])
		copy(row, first)
		for _, u := range in[1:] {
			r := src.Row(u)
			for j := range row {
				row[j] += r[j]
			}
		}
		for j := range row {
			row[j] *= inv
		}
	}
}

// ApplyQT computes dst = src * Q^T: column j of dst is the average of the
// columns of src indexed by I(j). Implemented row-wise for locality.
func ApplyQT(g *graph.Graph, src, dst *simmat.Matrix) {
	n := g.NumVertices()
	for i := 0; i < n; i++ {
		srow := src.Row(i)
		drow := dst.Row(i)
		for j := 0; j < n; j++ {
			in := g.In(j)
			if len(in) == 0 {
				drow[j] = 0
				continue
			}
			sum := 0.0
			for _, u := range in {
				sum += srow[u]
			}
			drow[j] = sum / float64(len(in))
		}
	}
}

// Conjugate computes dst = Q * src * Q^T using tmp as scratch. All three
// matrices must be n x n and distinct.
func Conjugate(g *graph.Graph, src, tmp, dst *simmat.Matrix) {
	ApplyQ(g, src, tmp)
	ApplyQT(g, tmp, dst)
}

// FixedPoint runs k iterations of S_{k+1} = C Q S_k Q^T + (1-C) I starting
// from S_0 = (1-C) I and returns S_k.
func FixedPoint(g *graph.Graph, c float64, k int) (*simmat.Matrix, error) {
	if err := check(c, k); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	s := simmat.New(n)
	for i := 0; i < n; i++ {
		s.Set(i, i, 1-c)
	}
	tmp, next := simmat.New(n), simmat.New(n)
	for iter := 0; iter < k; iter++ {
		Conjugate(g, s, tmp, next)
		d := next.Data()
		for i := range d {
			d[i] *= c
		}
		for i := 0; i < n; i++ {
			next.Add(i, i, 1-c)
		}
		s, next = next, s
	}
	return s, nil
}

// GeometricSum returns S_K = (1-C) sum_{i=0..K} C^i Q^i (Q^T)^i (Eq. 12
// truncated after the C^K term).
func GeometricSum(g *graph.Graph, c float64, k int) (*simmat.Matrix, error) {
	if err := check(c, k); err != nil {
		return nil, err
	}
	return seriesSum(g, k, func(i int) float64 { return (1 - c) * math.Pow(c, float64(i)) }), nil
}

// ExponentialSum returns S^_K = e^-C sum_{i=0..K} (C^i/i!) Q^i (Q^T)^i
// (Eq. 13 truncated after the C^K/K! term). This is the reference value the
// differential SimRank iteration Eq. 15 must reproduce exactly.
func ExponentialSum(g *graph.Graph, c float64, k int) (*simmat.Matrix, error) {
	if err := check(c, k); err != nil {
		return nil, err
	}
	ec := math.Exp(-c)
	return seriesSum(g, k, func(i int) float64 {
		return ec * math.Pow(c, float64(i)) / numeric.Factorial(i)
	}), nil
}

// seriesSum accumulates sum_{i=0..k} coeff(i) * Q^i (Q^T)^i.
func seriesSum(g *graph.Graph, k int, coeff func(int) float64) *simmat.Matrix {
	n := g.NumVertices()
	acc := simmat.New(n)
	term := simmat.NewIdentity(n) // Q^i I (Q^T)^i, starting at i=0
	tmp, next := simmat.New(n), simmat.New(n)
	for i := 0; ; i++ {
		ci := coeff(i)
		ad, td := acc.Data(), term.Data()
		for j := range ad {
			ad[j] += ci * td[j]
		}
		if i == k {
			break
		}
		Conjugate(g, term, tmp, next)
		term, next = next, term
	}
	return acc
}

func check(c float64, k int) error {
	if !(c > 0 && c < 1) {
		return fmt.Errorf("matrixform: damping factor %v outside (0,1)", c)
	}
	if k < 0 {
		return fmt.Errorf("matrixform: negative iteration count %d", k)
	}
	return nil
}
