package simrank

import (
	"fmt"
	"time"

	"oipsr/graph"
	"oipsr/internal/core"
	"oipsr/internal/dsr"
	"oipsr/internal/montecarlo"
	"oipsr/internal/mtxsr"
	"oipsr/internal/naive"
	"oipsr/internal/numeric"
	"oipsr/internal/partition"
	"oipsr/internal/prank"
	"oipsr/internal/psum"
	"oipsr/internal/simmat"
)

// Compute runs the selected SimRank engine over g and returns the all-pairs
// scores plus run statistics. See Options for the engine-specific knobs.
//
// When opt.BlockSize > 0 the supported engines (OIPSR, OIPDSR, PsumSR,
// Naive) run against the tiled score-matrix backend: bounded resident
// memory (opt.MaxMemoryBytes) with spill-to-disk, and scores bit-identical
// to the dense backend. Call Scores.Close on tiled results when done.
func Compute(g *graph.Graph, opt Options) (*Scores, *Stats, error) {
	if err := opt.validate(); err != nil {
		return nil, nil, err
	}
	alg := opt.Algorithm
	if alg == "" {
		alg = OIPSR
	}
	if opt.BlockSize > 0 {
		return computeTiled(g, alg, opt)
	}
	switch alg {
	case OIPSR:
		return computeOIP(g, opt)
	case OIPDSR:
		return computeDSR(g, opt)
	case PsumSR:
		return computePsum(g, opt)
	case Naive:
		return computeNaive(g, opt)
	case MtxSR:
		return computeMtx(g, opt)
	case PRank:
		return computePRank(g, opt)
	case MonteCarlo:
		return computeMonteCarlo(g, opt)
	}
	return nil, nil, fmt.Errorf("simrank: unknown algorithm %q", alg)
}

func computePRank(g *graph.Graph, opt Options) (*Scores, *Stats, error) {
	m, st, err := prank.Compute(g, prank.Options{
		CIn:       opt.C,
		COut:      opt.COut,
		Lambda:    opt.Lambda,
		K:         opt.K,
		Eps:       opt.Eps,
		Partition: partitionOptions(opt),
		Workers:   opt.Workers,
	})
	if err != nil {
		return nil, nil, err
	}
	return &Scores{src: m}, &Stats{
		Algorithm:   PRank,
		Iterations:  st.Iterations,
		PlanTime:    st.PlanTime,
		ComputeTime: st.SweepTime,
		InnerAdds:   st.InnerAdds,
		OuterAdds:   st.OuterAdds,
		AuxBytes:    st.AuxBytes,
		StateBytes:  simmat.StateBytes(g.NumVertices(), 4),
		ShareRatio:  (st.InShareRatio + st.OutShareRatio) / 2,
	}, nil
}

func computeMonteCarlo(g *graph.Graph, opt Options) (*Scores, *Stats, error) {
	m, st, err := montecarlo.Compute(g, montecarlo.Options{
		C:       opt.C,
		K:       opt.K,
		Eps:     opt.Eps,
		Walks:   opt.Walks,
		Seed:    opt.Seed,
		Workers: opt.Workers,
	})
	if err != nil {
		return nil, nil, err
	}
	return &Scores{src: m}, &Stats{
		Algorithm:   MonteCarlo,
		Iterations:  st.Walks,
		ComputeTime: st.Elapsed,
		AuxBytes:    st.AuxBytes,
		StateBytes:  simmat.StateBytes(g.NumVertices(), 1),
	}, nil
}

func partitionOptions(opt Options) partition.Options {
	return partition.Options{
		Dense:      opt.DensePartition,
		PairCap:    opt.PairCap,
		UseEdmonds: opt.UseEdmonds,
	}
}

func tileOptions(opt Options) simmat.TileOptions {
	return simmat.TileOptions{
		BlockSize:      opt.BlockSize,
		MaxMemoryBytes: opt.MaxMemoryBytes,
		SpillDir:       opt.SpillDir,
	}
}

// computeTiled dispatches to the tiled-backend engines.
func computeTiled(g *graph.Graph, alg Algorithm, opt Options) (*Scores, *Stats, error) {
	switch alg {
	case OIPSR:
		m, st, err := core.ComputeTiled(g, core.Options{
			C:            opt.C,
			K:            opt.K,
			Eps:          opt.Eps,
			StopDiff:     opt.StopDiff,
			Partition:    partitionOptions(opt),
			DisableOuter: opt.DisableOuterSharing,
			Workers:      opt.Workers,
			Tile:         tileOptions(opt),
		})
		if err != nil {
			return nil, nil, err
		}
		return &Scores{src: m}, &Stats{
			Algorithm:        OIPSR,
			Iterations:       st.Iterations,
			PlanTime:         st.PlanTime,
			ComputeTime:      st.SweepTime,
			InnerAdds:        st.InnerAdds,
			OuterAdds:        st.OuterAdds,
			AuxBytes:         st.AuxBytes,
			StateBytes:       st.StateBytes,
			ShareRatio:       st.ShareRatio,
			AvgDiff:          st.AvgDiff,
			NumSets:          st.NumSets,
			FinalDiff:        st.FinalDiff,
			TilePeakBytes:    st.Tile.HighWaterBytes,
			TileSpills:       st.Tile.Spills,
			TileLoads:        st.Tile.Loads,
			TileSpilledBytes: st.Tile.SpilledBytes,
		}, nil
	case OIPDSR:
		m, st, err := dsr.ComputeTiled(g, dsr.Options{
			C:         opt.C,
			K:         opt.K,
			Eps:       opt.Eps,
			Partition: partitionOptions(opt),
			Workers:   opt.Workers,
			Tile:      tileOptions(opt),
		})
		if err != nil {
			return nil, nil, err
		}
		return &Scores{src: m}, &Stats{
			Algorithm:        OIPDSR,
			Iterations:       st.Iterations,
			PlanTime:         st.PlanTime,
			ComputeTime:      st.SweepTime,
			InnerAdds:        st.InnerAdds,
			OuterAdds:        st.OuterAdds,
			AuxBytes:         st.AuxBytes,
			StateBytes:       st.StateBytes,
			ShareRatio:       st.ShareRatio,
			AvgDiff:          st.AvgDiff,
			NumSets:          st.NumSets,
			TilePeakBytes:    st.Tile.HighWaterBytes,
			TileSpills:       st.Tile.Spills,
			TileLoads:        st.Tile.Loads,
			TileSpilledBytes: st.Tile.SpilledBytes,
		}, nil
	case PsumSR:
		c, k, err := resolveGeometricSchedule(opt)
		if err != nil {
			return nil, nil, err
		}
		t0 := time.Now()
		m, st, err := psum.ComputeTiled(g, psum.Options{
			C: c, K: k, Threshold: opt.Threshold, Workers: opt.Workers,
			Tile: tileOptions(opt),
		})
		if err != nil {
			return nil, nil, err
		}
		return &Scores{src: m}, &Stats{
			Algorithm:        PsumSR,
			Iterations:       st.Iterations,
			ComputeTime:      time.Since(t0),
			InnerAdds:        st.InnerAdds,
			OuterAdds:        st.OuterAdds,
			AuxBytes:         st.AuxBytes,
			StateBytes:       m.Bytes() * 2,
			SievedPairs:      st.SievedPairs,
			TilePeakBytes:    st.Tile.HighWaterBytes,
			TileSpills:       st.Tile.Spills,
			TileLoads:        st.Tile.Loads,
			TileSpilledBytes: st.Tile.SpilledBytes,
		}, nil
	case Naive:
		c, k, err := resolveGeometricSchedule(opt)
		if err != nil {
			return nil, nil, err
		}
		t0 := time.Now()
		m, err := naive.ComputeTiledWorkers(g, c, k, opt.Workers, tileOptions(opt))
		if err != nil {
			return nil, nil, err
		}
		met := m.Store().Metrics()
		return &Scores{src: m}, &Stats{
			Algorithm:        Naive,
			Iterations:       k,
			ComputeTime:      time.Since(t0),
			StateBytes:       m.Bytes() * 2,
			TilePeakBytes:    met.HighWaterBytes,
			TileSpills:       met.Spills,
			TileLoads:        met.Loads,
			TileSpilledBytes: met.SpilledBytes,
		}, nil
	}
	return nil, nil, fmt.Errorf("simrank: the tiled backend (BlockSize > 0) does not support algorithm %q", alg)
}

func computeOIP(g *graph.Graph, opt Options) (*Scores, *Stats, error) {
	m, st, err := core.Compute(g, core.Options{
		C:            opt.C,
		K:            opt.K,
		Eps:          opt.Eps,
		StopDiff:     opt.StopDiff,
		Partition:    partitionOptions(opt),
		DisableOuter: opt.DisableOuterSharing,
		Workers:      opt.Workers,
	})
	if err != nil {
		return nil, nil, err
	}
	return &Scores{src: m}, &Stats{
		Algorithm:   OIPSR,
		Iterations:  st.Iterations,
		PlanTime:    st.PlanTime,
		ComputeTime: st.SweepTime,
		InnerAdds:   st.InnerAdds,
		OuterAdds:   st.OuterAdds,
		AuxBytes:    st.AuxBytes,
		StateBytes:  st.StateBytes,
		ShareRatio:  st.ShareRatio,
		AvgDiff:     st.AvgDiff,
		NumSets:     st.NumSets,
		FinalDiff:   st.FinalDiff,
	}, nil
}

func computeDSR(g *graph.Graph, opt Options) (*Scores, *Stats, error) {
	m, st, err := dsr.Compute(g, dsr.Options{
		C:         opt.C,
		K:         opt.K,
		Eps:       opt.Eps,
		Partition: partitionOptions(opt),
		Workers:   opt.Workers,
	})
	if err != nil {
		return nil, nil, err
	}
	return &Scores{src: m}, &Stats{
		Algorithm:   OIPDSR,
		Iterations:  st.Iterations,
		PlanTime:    st.PlanTime,
		ComputeTime: st.SweepTime,
		InnerAdds:   st.InnerAdds,
		OuterAdds:   st.OuterAdds,
		AuxBytes:    st.AuxBytes,
		StateBytes:  st.StateBytes,
		ShareRatio:  st.ShareRatio,
		AvgDiff:     st.AvgDiff,
		NumSets:     st.NumSets,
	}, nil
}

func computePsum(g *graph.Graph, opt Options) (*Scores, *Stats, error) {
	c, k, err := resolveGeometricSchedule(opt)
	if err != nil {
		return nil, nil, err
	}
	t0 := time.Now()
	m, st, err := psum.Compute(g, psum.Options{C: c, K: k, Threshold: opt.Threshold, Workers: opt.Workers})
	if err != nil {
		return nil, nil, err
	}
	return &Scores{src: m}, &Stats{
		Algorithm:   PsumSR,
		Iterations:  st.Iterations,
		ComputeTime: time.Since(t0),
		InnerAdds:   st.InnerAdds,
		OuterAdds:   st.OuterAdds,
		AuxBytes:    st.AuxBytes,
		StateBytes:  simmat.StateBytes(g.NumVertices(), 2),
		SievedPairs: st.SievedPairs,
	}, nil
}

func computeNaive(g *graph.Graph, opt Options) (*Scores, *Stats, error) {
	c, k, err := resolveGeometricSchedule(opt)
	if err != nil {
		return nil, nil, err
	}
	t0 := time.Now()
	m, err := naive.ComputeWorkers(g, c, k, opt.Workers)
	if err != nil {
		return nil, nil, err
	}
	return &Scores{src: m}, &Stats{
		Algorithm:   Naive,
		Iterations:  k,
		ComputeTime: time.Since(t0),
		StateBytes:  simmat.StateBytes(g.NumVertices(), 2),
	}, nil
}

func computeMtx(g *graph.Graph, opt Options) (*Scores, *Stats, error) {
	c := opt.C
	if c == 0 {
		c = 0.6
	}
	m, st, err := mtxsr.Compute(g, mtxsr.Options{
		C:    c,
		Rank: opt.Rank,
		Seed: opt.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	return &Scores{src: m}, &Stats{
		Algorithm:   MtxSR,
		Iterations:  st.SolveIters,
		PlanTime:    st.SVDTime,
		ComputeTime: st.SolveTime,
		AuxBytes:    st.AuxBytes,
		StateBytes:  simmat.StateBytes(g.NumVertices(), 1),
		Rank:        st.Rank,
	}, nil
}

// resolveGeometricSchedule applies the shared defaulting rules (C = 0.6,
// eps = 1e-3, Lizorkin iteration bound) for the engines that take a plain
// (C, K) pair.
func resolveGeometricSchedule(opt Options) (c float64, k int, err error) {
	c = opt.C
	if c == 0 {
		c = 0.6
	}
	if !(c > 0 && c < 1) {
		return 0, 0, fmt.Errorf("simrank: damping factor %v outside (0,1)", c)
	}
	k = opt.K
	if k < 0 {
		return 0, 0, fmt.Errorf("simrank: negative iteration count %d", k)
	}
	if k == 0 {
		eps := opt.Eps
		if eps == 0 {
			eps = 1e-3
		}
		if !(eps > 0 && eps < 1) {
			return 0, 0, fmt.Errorf("simrank: accuracy eps %v outside (0,1)", eps)
		}
		k = numeric.IterationsConventional(c, eps)
	}
	return c, k, nil
}
