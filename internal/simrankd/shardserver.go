package simrankd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"oipsr/graph"
	"oipsr/simrank/query"
	"oipsr/simrank/shard"
)

// ShardServer is the HTTP handler of one shard backend: it owns the walk
// rows of a contiguous vertex range and answers the internal scatter
// protocol the Router speaks — partial score rows for arbitrary sources,
// join candidate enumeration over a fingerprint range, exact pair scoring
// — plus the same /v1/edges, /healthz, and /metrics surface as the
// single-node daemon. It inherits the full overload discipline (deadline
// attachment, admission control, shedding) through the embedded serving.
//
// Internal endpoints (consumed by the Router, not public API):
//
//	POST /shard/v1/scores           partial rows for the owned range
//	POST /shard/v1/join_candidates  co-located pairs of one fp range
//	POST /shard/v1/join_score       exact scores for candidate pairs
//
// Every response echoes the shard's update generation, so the router can
// detect a backend that was updated behind its back and refuse to cache
// the merge.
type ShardServer struct {
	serving

	// mu serializes /v1/edges (write) against queries (read), exactly
	// like the single-node daemon: the shard index is repaired in place.
	mu      sync.RWMutex
	sh      *shard.Shard
	workers int
	mux     *http.ServeMux

	reqScores   atomic.Int64
	reqJoinCand atomic.Int64
	reqJoinPair atomic.Int64
	reqEdges    atomic.Int64

	updatesTotal  atomic.Int64
	updateMicros  atomic.Int64
	edgesAdded    atomic.Int64
	edgesRemoved  atomic.Int64
	walksRepaired atomic.Int64
}

// NewShardServer returns a handler serving the scatter protocol from sh,
// which must have its source graph attached (foreign sources are
// recomputed from it).
func NewShardServer(sh *shard.Shard, cfg Config) (*ShardServer, error) {
	if sh.Graph() == nil {
		return nil, fmt.Errorf("simrankd: shard server needs the source graph (AttachGraph after load)")
	}
	s := &ShardServer{
		sh:      sh,
		workers: cfg.Workers,
		mux:     http.NewServeMux(),
	}
	s.initServing(cfg)
	s.mux.HandleFunc("/shard/v1/scores", s.limited(s.handleScores))
	s.mux.HandleFunc("/shard/v1/join_candidates", s.limited(s.handleJoinCandidates))
	s.mux.HandleFunc("/shard/v1/join_score", s.limited(s.handleJoinScore))
	s.mux.HandleFunc("/v1/edges", s.limited(s.handleEdges))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s, nil
}

func (s *ShardServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

type shardScoresRequest struct {
	Sources []int `json:"sources"`
}

type shardScoresResponse struct {
	Lo         int    `json:"lo"`
	Hi         int    `json:"hi"`
	Generation uint64 `json:"generation"`
	// Rows holds one partial row per source: Rows[i][v-Lo] is the
	// estimate s(Sources[i], v) for every owned vertex v, bit-identical
	// to that slice of the single-node dense row (float64 values survive
	// the JSON round trip exactly — shortest-form encoding re-parses to
	// the same bits).
	Rows [][]float64 `json:"rows"`
}

// handleScores serves POST /shard/v1/scores: the shard's partial dense
// rows for a batch of sources (owned or foreign).
func (s *ShardServer) handleScores(w http.ResponseWriter, r *http.Request) {
	s.reqScores.Add(1)
	if !s.checkMethod(w, r, http.MethodPost) {
		return
	}
	var req shardScoresRequest
	if !s.decodeJSONBody(w, r, &req) {
		return
	}
	if len(req.Sources) > s.maxBatch {
		s.writeError(w, http.StatusBadRequest, "batch of %d sources exceeds the %d limit", len(req.Sources), s.maxBatch)
		return
	}
	// The same dense-intermediate bound the single-node batch enforces,
	// against this shard's row width.
	if int64(len(req.Sources))*int64(max(s.sh.Width(), 1)) > maxDenseBatchScores {
		s.writeError(w, http.StatusBadRequest,
			"%d sources on a %d-vertex shard exceed %d total scores; split the batch",
			len(req.Sources), s.sh.Width(), maxDenseBatchScores)
		return
	}

	s.mu.RLock()
	defer s.mu.RUnlock()
	rows, err := s.sh.PartialScores(r.Context(), req.Sources, s.workers)
	if err != nil {
		s.writeQueryError(w, err, http.StatusBadRequest)
		return
	}
	body, err := s.marshalBody(shardScoresResponse{
		Lo: s.sh.Lo(), Hi: s.sh.Hi(), Generation: s.sh.Generation(), Rows: rows,
	})
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	writeJSONBytes(w, body)
}

type shardJoinCandRequest struct {
	Threshold     float64 `json:"threshold"`
	FpLo          int     `json:"fp_lo"`
	FpHi          int     `json:"fp_hi"`
	MaxCandidates int     `json:"max_candidates"`
}

type shardJoinCandResponse struct {
	Generation uint64 `json:"generation"`
	// Pairs are the candidate (a, b) vertex pairs, a < b, sorted — kept
	// as integer pairs on the wire because the packed a<<32|b key can
	// exceed exact float64 range in a JSON number.
	Pairs [][2]int `json:"pairs"`
}

// handleJoinCandidates serves POST /shard/v1/join_candidates: the
// co-located candidate pairs of one fingerprint range at a threshold.
func (s *ShardServer) handleJoinCandidates(w http.ResponseWriter, r *http.Request) {
	s.reqJoinCand.Add(1)
	if !s.checkMethod(w, r, http.MethodPost) {
		return
	}
	var req shardJoinCandRequest
	if !s.decodeJSONBody(w, r, &req) {
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys, err := s.sh.JoinCandidates(r.Context(), req.Threshold, req.FpLo, req.FpHi, req.MaxCandidates, s.workers)
	if err != nil {
		s.writeQueryError(w, err, http.StatusBadRequest)
		return
	}
	pairs := make([][2]int, len(keys))
	for i, key := range keys {
		pairs[i] = [2]int{int(key >> 32), int(key & 0xFFFFFFFF)}
	}
	body, err := s.marshalBody(shardJoinCandResponse{Generation: s.sh.Generation(), Pairs: pairs})
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	writeJSONBytes(w, body)
}

type shardJoinScoreRequest struct {
	Pairs [][2]int `json:"pairs"`
}

type wireJoinPair struct {
	A     int     `json:"a"`
	B     int     `json:"b"`
	Score float64 `json:"score"`
}

type shardJoinScoreResponse struct {
	Generation uint64         `json:"generation"`
	Pairs      []wireJoinPair `json:"pairs"`
}

// handleJoinScore serves POST /shard/v1/join_score: exact index estimates
// for candidate pairs, bit-identical to single-node pair scores.
func (s *ShardServer) handleJoinScore(w http.ResponseWriter, r *http.Request) {
	s.reqJoinPair.Add(1)
	if !s.checkMethod(w, r, http.MethodPost) {
		return
	}
	var req shardJoinScoreRequest
	if !s.decodeJSONBody(w, r, &req) {
		return
	}
	keys := make([]uint64, len(req.Pairs))
	for i, p := range req.Pairs {
		if p[0] < 0 || p[1] < 0 {
			s.writeError(w, http.StatusBadRequest, "pair %d: negative vertex", i)
			return
		}
		keys[i] = uint64(p[0])<<32 | uint64(p[1])
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	scored, err := s.sh.ScorePairs(r.Context(), keys, s.workers)
	if err != nil {
		s.writeQueryError(w, err, http.StatusBadRequest)
		return
	}
	pairs := make([]wireJoinPair, len(scored))
	for i, p := range scored {
		pairs[i] = wireJoinPair{A: p.A, B: p.B, Score: p.Score}
	}
	body, err := s.marshalBody(shardJoinScoreResponse{Generation: s.sh.Generation(), Pairs: pairs})
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	writeJSONBytes(w, body)
}

// handleEdges serves POST /v1/edges on a shard: the same request and
// response shapes as the single-node daemon, applied to the shard's graph
// and range-restricted index. The router broadcasts one batch to every
// shard; because edits are idempotent at the graph layer, re-broadcasting
// after a partial failure converges instead of corrupting.
func (s *ShardServer) handleEdges(w http.ResponseWriter, r *http.Request) {
	s.reqEdges.Add(1)
	if !s.checkMethod(w, r, http.MethodPost) {
		return
	}
	var req edgesRequest
	if !s.decodeJSONBody(w, r, &req) {
		return
	}
	edits, errMsg := parseEdits(req.Edits)
	if errMsg != "" {
		s.writeError(w, http.StatusBadRequest, "%s", errMsg)
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	u0 := time.Now()
	stats, err := s.sh.ApplyEdits(edits, s.workers)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, query.ErrTooLarge) {
			code = http.StatusInternalServerError
		}
		s.writeError(w, code, "%v", err)
		return
	}
	updateMicros := time.Since(u0).Microseconds()
	s.updatesTotal.Add(1)
	s.updateMicros.Add(updateMicros)
	s.edgesAdded.Add(int64(stats.EdgesAdded))
	s.edgesRemoved.Add(int64(stats.EdgesRemoved))
	s.walksRepaired.Add(int64(stats.WalksRepaired))

	body, err := s.marshalBody(edgesResponse{
		Added:         stats.EdgesAdded,
		Removed:       stats.EdgesRemoved,
		DirtyVertices: stats.DirtyVertices,
		WalksRepaired: stats.WalksRepaired,
		Generation:    stats.Generation,
		Edges:         s.sh.Graph().NumEdges(),
		UpdateMicros:  updateMicros,
	})
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	writeJSONBytes(w, body)
}

// parseEdits translates wire edits to graph edits, returning a non-empty
// message on the first invalid op. Server, ShardServer, and Router share
// it so their /v1/edges reject identically.
func parseEdits(wire []edgeEdit) ([]graph.Edit, string) {
	edits := make([]graph.Edit, len(wire))
	for i, e := range wire {
		switch e.Op {
		case "add":
			edits[i] = graph.Edit{Op: graph.EditAdd, U: e.U, V: e.V}
		case "remove":
			edits[i] = graph.Edit{Op: graph.EditRemove, U: e.U, V: e.V}
		default:
			return nil, fmt.Sprintf("edit %d: unknown op %q (want \"add\" or \"remove\")", i, e.Op)
		}
	}
	return edits, ""
}

// shardHealthzResponse is the shard-mode /healthz body; the router's
// startup probe consumes it to learn each backend's range, parameters,
// and generation.
type shardHealthzResponse struct {
	Status     string  `json:"status"`
	Vertices   int     `json:"vertices"`
	Lo         int     `json:"lo"`
	Hi         int     `json:"hi"`
	Walks      int     `json:"walks"`
	Horizon    int     `json:"horizon"`
	C          float64 `json:"c"`
	Seed       int64   `json:"seed"`
	IndexBytes int64   `json:"index_bytes"`
	// Backend is the walk-storage backing: "dense" in memory, "mapped"
	// (or "mapped-readat") when serving a demand-paged v2 shard file.
	Backend    string  `json:"backend"`
	Generation uint64  `json:"generation"`
	UptimeSecs float64 `json:"uptime_seconds"`
}

func (s *ShardServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(shardHealthzResponse{
		Status:     "ok",
		Vertices:   s.sh.N(),
		Lo:         s.sh.Lo(),
		Hi:         s.sh.Hi(),
		Walks:      s.sh.Walks(),
		Horizon:    s.sh.Horizon(),
		C:          s.sh.C(),
		Seed:       s.sh.Seed(),
		IndexBytes: s.sh.Bytes(),
		Backend:    s.sh.Backend(),
		Generation: s.sh.Generation(),
		UptimeSecs: time.Since(s.started).Seconds(),
	})
}

func (s *ShardServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	generation := s.sh.Generation()
	lo, hi := s.sh.Lo(), s.sh.Hi()
	indexBytes := s.sh.Bytes()
	s.mu.RUnlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	buildInfoMetric(w, "shard")
	fmt.Fprintf(w, "simrankd_requests_total{endpoint=\"shard_scores\"} %d\n", s.reqScores.Load())
	fmt.Fprintf(w, "simrankd_requests_total{endpoint=\"shard_join_candidates\"} %d\n", s.reqJoinCand.Load())
	fmt.Fprintf(w, "simrankd_requests_total{endpoint=\"shard_join_score\"} %d\n", s.reqJoinPair.Load())
	fmt.Fprintf(w, "simrankd_requests_total{endpoint=\"edges\"} %d\n", s.reqEdges.Load())
	fmt.Fprintf(w, "simrankd_request_errors_total %d\n", s.reqErrors.Load())
	fmt.Fprintf(w, "simrankd_requests_shed_total %d\n", s.shedTotal.Load())
	fmt.Fprintf(w, "simrankd_inflight_requests %d\n", s.inflight.Load())
	fmt.Fprintf(w, "simrankd_queued_requests %d\n", s.queued.Load())
	s.latency.WriteProm(w, "simrankd_request_latency_seconds")
	fmt.Fprintf(w, "simrankd_index_generation %d\n", generation)
	fmt.Fprintf(w, "simrankd_updates_total %d\n", s.updatesTotal.Load())
	fmt.Fprintf(w, "simrankd_update_latency_micros_total %d\n", s.updateMicros.Load())
	fmt.Fprintf(w, "simrankd_update_edges_added_total %d\n", s.edgesAdded.Load())
	fmt.Fprintf(w, "simrankd_update_edges_removed_total %d\n", s.edgesRemoved.Load())
	fmt.Fprintf(w, "simrankd_update_walks_repaired_total %d\n", s.walksRepaired.Load())
	fmt.Fprintf(w, "simrankd_shard_lo %d\n", lo)
	fmt.Fprintf(w, "simrankd_shard_hi %d\n", hi)
	fmt.Fprintf(w, "simrankd_index_bytes %d\n", indexBytes)
}
