package walkindex

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
)

// On-disk formats (all integers little-endian). Both formats share the
// 52-byte header; the version field selects the payload encoding.
//
// Format 1 (dense):
//
//	offset  size  field
//	0       8     magic "SRWKIDX\x00"
//	8       4     format version (1)
//	12      8     n   (vertices, int64)
//	20      8     k   (horizon, int64)
//	28      8     r   (fingerprints, int64)
//	36      8     c   (damping factor, IEEE-754 bits)
//	44      8     seed (int64)
//	52      4*n*r*k   paths ([]int32)
//	...     4     CRC-32 (IEEE) of every preceding byte
//
// Format 2 (compressed, mmap-able; see v2.go for the posting codec):
//
//	offset  size  field
//	0..51         same header fields, version 2
//	52      4     block size B (start vertices per posting block, uint32)
//	56      4     numBlocks = ceil(n/B) (uint32)
//	60      8*(numBlocks+1)  block directory: byte offset of each posting
//	              block within the payload; entry 0 is 0, entry numBlocks
//	              is the payload length
//	...     delta/varint posting blocks (payload)
//	...     4     CRC-32 (IEEE) of every preceding byte
//
// The trailing checksum makes truncation and bit corruption detectable
// without trusting the payload; the version field rejects indexes written
// by a future (or past, incompatible) format revision.
//
// Load order — one documented sequence shared by the v1 and v2 readers,
// for the full index (Load) and shards (LoadShard) alike:
//
//  1. header parse + plausibility guards: nothing payload-sized is
//     allocated from unvalidated fields;
//  2. payload decode, with allocations growing as bytes are actually
//     read, so a forged header on a short stream fails with a truncation
//     error after a proportional allocation;
//  3. checksum verification — a corrupt file reports ErrChecksum even
//     when its decoded entries would also fail validation (a v2 payload
//     whose corruption is structurally undecodable fails at step 2
//     instead, before the trailer is reachable);
//  4. trailing-data probe: Save writes exactly one index per stream, so
//     any byte after the checksum is ErrTrailingData, not slack to
//     ignore;
//  5. per-entry range validation of the decoded paths;
//  6. index construction (initPow last, from validated fields only).

// Supported on-disk format revisions.
const (
	// FormatV1 is the dense format: the raw []int32 path payload.
	FormatV1 = 1
	// FormatV2 is the compressed format: delta/varint posting blocks with
	// a block directory, mmap-able via LoadMapped.
	FormatV2 = 2
	// FormatVersion is the newest revision this build reads and writes.
	FormatVersion = FormatV2
)

var magic = [8]byte{'S', 'R', 'W', 'K', 'I', 'D', 'X', 0}

const headerSize = 8 + 4 + 8 + 8 + 8 + 8 + 8

// Sentinel errors returned by Save and Load (possibly wrapped with detail).
var (
	ErrBadMagic = errors.New("walkindex: not a walk-index file (bad magic)")
	ErrVersion  = errors.New("walkindex: unsupported format version")
	ErrChecksum = errors.New("walkindex: checksum mismatch (corrupted index)")
	// ErrTrailingData reports bytes after the CRC trailer — a concatenated
	// or overlong file. Load used to silently ignore them.
	ErrTrailingData = errors.New("walkindex: trailing data after index")
	// ErrFormatLimits reports an index that exceeds what the on-disk
	// format's load guards accept — Save refuses to write a file Load
	// would refuse to read back.
	ErrFormatLimits = errors.New("walkindex: index exceeds on-disk format limits")
)

// maxElems caps n*r*k at load time so a corrupted header cannot trigger an
// absurd allocation before the checksum is ever seen.
const maxElems = int64(1) << 33

// maxHorizon caps k on its own: initPow allocates k floats even when a
// forged header claims n = 0 (zero payload elements), so the product guard
// alone does not bound it. Real horizons are the iteration counts of the
// Lizorkin bound — double digits.
const maxHorizon = int64(1) << 20

// formatGuard validates at save time everything the load-side header
// guards will check, so every file Save writes is guaranteed loadable.
// Violations wrap ErrFormatLimits.
func formatGuard(rows, k, r int64, c float64, format int) error {
	if rows < 0 || k < 1 || r < 1 {
		return fmt.Errorf("%w: invalid dimensions (rows=%d, k=%d, r=%d)", ErrFormatLimits, rows, k, r)
	}
	if k > maxHorizon {
		return fmt.Errorf("%w: walk horizon k = %d exceeds %d", ErrFormatLimits, k, maxHorizon)
	}
	if format == FormatV2 && k > maxV2Horizon {
		return fmt.Errorf("%w: walk horizon k = %d exceeds %d (format v2)", ErrFormatLimits, k, maxV2Horizon)
	}
	if !(c > 0 && c < 1) {
		return fmt.Errorf("%w: damping factor %v outside (0,1)", ErrFormatLimits, c)
	}
	elems := rows * r * k
	if rows > 0 && (elems/rows/r != k || elems > maxElems) {
		return fmt.Errorf("%w: rows*r*k = %d*%d*%d exceeds %d elements", ErrFormatLimits, rows, r, k, maxElems)
	}
	return nil
}

// Save writes the index to w in format v1, the dense revision every build
// of this package reads. Use SaveFormat with FormatV2 for the compressed,
// mmap-able revision.
func (ix *Index) Save(w io.Writer) error { return ix.SaveFormat(w, FormatV1) }

// SaveFormat writes the index to w in the requested on-disk format. It
// validates the index against the load-side guards first and returns an
// ErrFormatLimits-wrapped error instead of writing an unloadable file.
func (ix *Index) SaveFormat(w io.Writer, format int) error {
	if format != FormatV1 && format != FormatV2 {
		return fmt.Errorf("%w: unknown save format %d", ErrVersion, format)
	}
	if err := formatGuard(int64(ix.n), int64(ix.k), int64(ix.r), ix.c, format); err != nil {
		return err
	}
	var hdr [headerSize]byte
	copy(hdr[:8], magic[:])
	binary.LittleEndian.PutUint32(hdr[8:], uint32(format))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(int64(ix.n)))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(int64(ix.k)))
	binary.LittleEndian.PutUint64(hdr[28:], uint64(int64(ix.r)))
	binary.LittleEndian.PutUint64(hdr[36:], math.Float64bits(ix.c))
	binary.LittleEndian.PutUint64(hdr[44:], uint64(ix.seed))
	if format == FormatV1 {
		return writeDense(w, hdr[:], ix.store.Row, ix.n, "index")
	}
	blocks, err := encodeV2Blocks(ix.store.Row, ix.n, ix.k, ix.r)
	if err != nil {
		return err
	}
	pre := make([]byte, headerSize+8)
	copy(pre, hdr[:])
	binary.LittleEndian.PutUint32(pre[headerSize:], v2BlockVertices)
	binary.LittleEndian.PutUint32(pre[headerSize+4:], uint32(len(blocks)))
	return writeV2(w, pre, blocks, "index")
}

// writeDense writes a format-v1 body: the header, every walk block as raw
// little-endian int32s, and the CRC trailer.
func writeDense(w io.Writer, hdr []byte, rowOf func(v int) []int32, rows int, what string) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriterSize(io.MultiWriter(w, crc), 1<<16)
	if _, err := bw.Write(hdr); err != nil {
		return fmt.Errorf("walkindex: writing %s header: %w", what, err)
	}
	var buf [1 << 14]byte
	nb := 0
	for v := 0; v < rows; v++ {
		for _, e := range rowOf(v) {
			if nb+4 > len(buf) {
				if _, err := bw.Write(buf[:nb]); err != nil {
					return fmt.Errorf("walkindex: writing %s paths: %w", what, err)
				}
				nb = 0
			}
			binary.LittleEndian.PutUint32(buf[nb:], uint32(e))
			nb += 4
		}
	}
	if _, err := bw.Write(buf[:nb]); err != nil {
		return fmt.Errorf("walkindex: writing %s paths: %w", what, err)
	}
	// Flush payload into the CRC before sealing it, then append the sum
	// directly (the checksum is not part of its own coverage).
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("walkindex: writing %s paths: %w", what, err)
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("walkindex: writing %s checksum: %w", what, err)
	}
	return nil
}

// Load reads an index written by Save or SaveFormat, negotiating the
// format from the version field (v1 and v2 both decode into a dense
// in-memory index; use LoadMapped to page a v2 file on demand instead).
// It rejects files with a wrong magic, an unsupported format version, a
// truncated payload, a checksum mismatch, or trailing data after the
// trailer, in the documented load order above.
func Load(r io.Reader) (*Index, error) {
	// The CRC must cover exactly the bytes logically consumed (a tee under
	// bufio would also hash read-ahead, including the trailing checksum),
	// so readFull feeds each chunk to the hash by hand.
	crc := crc32.NewIEEE()
	br := bufio.NewReaderSize(r, 1<<16)

	// Step 1: header parse + plausibility guards.
	var hdr [headerSize]byte
	if err := readFull(br, crc, hdr[:], "header"); err != nil {
		return nil, err
	}
	if [8]byte(hdr[:8]) != magic {
		return nil, ErrBadMagic
	}
	version := binary.LittleEndian.Uint32(hdr[8:])
	if version != FormatV1 && version != FormatV2 {
		return nil, fmt.Errorf("%w: file has version %d, this build reads versions %d and %d", ErrVersion, version, FormatV1, FormatV2)
	}
	n := int64(binary.LittleEndian.Uint64(hdr[12:]))
	k := int64(binary.LittleEndian.Uint64(hdr[20:]))
	fps := int64(binary.LittleEndian.Uint64(hdr[28:]))
	c := math.Float64frombits(binary.LittleEndian.Uint64(hdr[36:]))
	seed := int64(binary.LittleEndian.Uint64(hdr[44:]))
	if n < 0 || k < 1 || fps < 1 {
		return nil, fmt.Errorf("walkindex: invalid header (n=%d, k=%d, r=%d)", n, k, fps)
	}
	if k > maxHorizon {
		return nil, fmt.Errorf("walkindex: implausible walk horizon k = %d", k)
	}
	if !(c > 0 && c < 1) {
		return nil, fmt.Errorf("walkindex: invalid header damping factor %v", c)
	}
	elems := n * fps * k
	if n > 0 && (elems/n/fps != k || elems > maxElems) {
		return nil, fmt.Errorf("walkindex: implausible index size n*r*k = %d*%d*%d", n, fps, k)
	}

	// Step 2: payload decode, allocations growing with bytes read.
	var paths []int32
	var err error
	if version == FormatV1 {
		paths, err = readDensePayload(br, crc, elems, "paths")
	} else {
		paths, err = readV2Payload(br, crc, n, k, fps, "paths")
	}
	if err != nil {
		return nil, err
	}

	// Steps 3+4: checksum, then the trailing-data probe.
	if err := checkTrailer(br, crc, "checksum"); err != nil {
		return nil, err
	}
	// Step 5: per-entry range validation.
	if err := validateEntries(paths, n, "path"); err != nil {
		return nil, err
	}
	// Step 6: construction from validated fields only.
	ix := &Index{n: int(n), k: int(k), r: int(fps), c: c, seed: seed,
		store: newDenseStore(paths, int(fps*k))}
	ix.initPow()
	return ix, nil
}

// readDensePayload reads elems raw little-endian int32s. The slice grows
// with the bytes actually read instead of being sized from the header up
// front: a forged header claiming a huge n*r*k on a short stream fails
// with a truncation error after a proportional allocation, not an absurd
// up-front one.
func readDensePayload(br *bufio.Reader, crc hash.Hash32, elems int64, section string) ([]int32, error) {
	paths := make([]int32, 0, min(elems, 1<<16))
	var buf [1 << 14]byte
	for int64(len(paths)) < elems {
		nb := len(buf)
		if rem := elems - int64(len(paths)); rem < int64(len(buf)/4) {
			nb = int(rem) * 4
		}
		if err := readFull(br, crc, buf[:nb], section); err != nil {
			return nil, err
		}
		for b := 0; b < nb; b += 4 {
			paths = append(paths, int32(binary.LittleEndian.Uint32(buf[b:])))
		}
	}
	return paths, nil
}

// checkTrailer verifies the stored CRC against everything read so far,
// then probes one byte past it: Save writes exactly one index per stream,
// so any trailing byte is ErrTrailingData, not slack to ignore.
func checkTrailer(br *bufio.Reader, crc hash.Hash32, section string) error {
	want := crc.Sum32()
	var sum [4]byte
	if err := readFull(br, nil, sum[:], section); err != nil {
		return err
	}
	if got := binary.LittleEndian.Uint32(sum[:]); got != want {
		return fmt.Errorf("%w: stored %08x, computed %08x", ErrChecksum, got, want)
	}
	if _, err := br.ReadByte(); err == nil {
		return fmt.Errorf("%w (byte after checksum)", ErrTrailingData)
	} else if err != io.EOF {
		return fmt.Errorf("walkindex: probing for trailing data: %w", err)
	}
	return nil
}

// validateEntries range-checks every decoded path entry against the
// vertex count (entries are positions in [0, n), or -1 once dead).
func validateEntries(paths []int32, n int64, what string) error {
	for i, p := range paths {
		if p < -1 || int64(p) >= n {
			return fmt.Errorf("walkindex: %s entry %d out of range: %d", what, i, p)
		}
	}
	return nil
}

// readFull is io.ReadFull with a section-labelled truncation error; the
// bytes read are fed to crc when it is non-nil (nil for the stored
// checksum itself, which is not part of its own coverage).
func readFull(br *bufio.Reader, crc hash.Hash32, p []byte, section string) error {
	if _, err := io.ReadFull(br, p); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return fmt.Errorf("walkindex: truncated index file (short read in %s): %w", section, io.ErrUnexpectedEOF)
		}
		return fmt.Errorf("walkindex: reading %s: %w", section, err)
	}
	if crc != nil {
		crc.Write(p)
	}
	return nil
}
