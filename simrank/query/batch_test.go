package query

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"oipsr/graph/gen"
)

// TestTopKBatchBitIdenticalToTopK: the batched path must reproduce every
// independent TopK call exactly — estimates and exact-reranked — for every
// worker count. This is the acceptance property of the whole batch layer.
func TestTopKBatchBitIdenticalToTopK(t *testing.T) {
	g := gen.CoauthorGraph(180, 4, 21)
	ix, err := BuildIndex(g, Options{Walks: 80, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	sources := []int{0, 17, 17, 42, 99, 179}
	for _, opt := range []*TopKOptions{nil, {Rerank: true}, {Rerank: true, Candidates: 25, PruneEps: 1e-4}} {
		want := make([][]Ranked, len(sources))
		for i, q := range sources {
			want[i], err = ix.TopK(context.Background(), q, 7, opt)
			if err != nil {
				t.Fatal(err)
			}
		}
		for _, workers := range []int{1, 2, 5} {
			got, err := ix.TopKBatch(context.Background(), sources, 7, opt, workers)
			if err != nil {
				t.Fatal(err)
			}
			for i := range sources {
				if len(got[i]) != len(want[i]) {
					t.Fatalf("opt=%+v workers=%d source %d: %d results, want %d", opt, workers, sources[i], len(got[i]), len(want[i]))
				}
				for j := range want[i] {
					if got[i][j] != want[i][j] {
						t.Fatalf("opt=%+v workers=%d source %d result %d: %+v, want %+v",
							opt, workers, sources[i], j, got[i][j], want[i][j])
					}
				}
			}
		}
	}
}

// TestMultiSourceBitIdenticalToSingleSource at the public layer: rows of a
// batch equal independent SingleSource calls bitwise.
func TestMultiSourceBitIdenticalToSingleSource(t *testing.T) {
	g := gen.WebGraph(120, 6, 3)
	ix, err := BuildIndex(g, Options{Walks: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sources := []int{3, 60, 119}
	for _, workers := range []int{1, 3} {
		rows, err := ix.MultiSource(context.Background(), sources, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range sources {
			want, err := ix.SingleSource(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			for v := range want {
				if rows[i][v] != want[v] {
					t.Fatalf("workers=%d q=%d v=%d: %g vs %g", workers, q, v, rows[i][v], want[v])
				}
			}
		}
	}
}

// TestBatchValidation: a bad source is rejected with its batch position
// named; bad k and rerank-without-graph fail the whole call.
func TestBatchValidation(t *testing.T) {
	g := gen.WebGraph(30, 4, 1)
	ix, err := BuildIndex(g, Options{Walks: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.MultiSource(context.Background(), []int{0, 99}, 1); err == nil || !strings.Contains(err.Error(), "batch item 1") {
		t.Fatalf("MultiSource with bad source: %v, want error naming batch item 1", err)
	}
	if _, err := ix.TopKBatch(context.Background(), []int{0, -1}, 5, nil, 1); err == nil {
		t.Fatal("TopKBatch with negative source succeeded")
	}
	if _, err := ix.TopKBatch(context.Background(), []int{0}, 0, nil, 1); err == nil {
		t.Fatal("TopKBatch with k=0 succeeded")
	}

	// A loaded index has no graph attached: rerank must fail batch-wide.
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.TopKBatch(context.Background(), []int{0}, 5, &TopKOptions{Rerank: true}, 1); err == nil {
		t.Fatal("TopKBatch rerank without attached graph succeeded")
	}
}

// TestJoinPublicAPI: the query-layer Join applies defaults, converts pairs,
// and surfaces ErrTooDense.
func TestJoinPublicAPI(t *testing.T) {
	g := gen.CoauthorGraph(100, 4, 9)
	ix, err := BuildIndex(g, Options{Walks: 60, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := ix.Join(context.Background(), 10, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 {
		t.Fatal("Join returned no pairs on a community graph at threshold 0.1")
	}
	for i, p := range pairs {
		if p.A >= p.B {
			t.Fatalf("pair %d not canonical: %+v", i, p)
		}
		if p.Score < 0.1 {
			t.Fatalf("pair %d below threshold: %+v", i, p)
		}
		if i > 0 && pairs[i-1].Score < p.Score {
			t.Fatalf("pairs out of order at %d: %+v then %+v", i, pairs[i-1], p)
		}
		// Scores must be the index estimates, bitwise.
		got, err := ix.Pair(p.A, p.B)
		if err != nil {
			t.Fatal(err)
		}
		if got != p.Score {
			t.Fatalf("pair %d score %g, Pair says %g", i, p.Score, got)
		}
	}
	if _, err := ix.Join(context.Background(), 10, 0, &JoinOptions{MaxCandidates: 3}); !errors.Is(err, ErrTooDense) {
		t.Fatalf("Join with cap 3 returned %v, want ErrTooDense", err)
	}
	if _, err := ix.Join(context.Background(), 10, 0, &JoinOptions{MaxCandidates: -1}); err == nil {
		t.Fatal("Join with negative cap succeeded")
	}
}
