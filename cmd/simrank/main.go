// Command simrank computes all-pairs SimRank scores on a graph and answers
// top-k similarity queries.
//
//	simrank -graph web.txt -algo oip-sr -c 0.6 -eps 1e-3 -query 17 -top 10
//	simrank -gen web -n 1000 -d 11 -algo oip-dsr -query 5 -top 20 -stats
//	simrank -gen web -n 20000 -block 2048 -max-mem 2000000000 -query 5 -stats
//
// Graphs come either from an edge-list file (-graph) or from a built-in
// generator (-gen, see cmd/gengraph for the types). The -algo values are
// the engine registry's names (oipsr/simrank/engine) — oip-sr is the
// default; run with -algo help to list what this build registers.
package main

import (
	"flag"
	"fmt"
	"os"

	"oipsr/graph"
	"oipsr/graph/gen"
	"oipsr/graph/gio"
	"oipsr/simrank"
	"oipsr/simrank/engine"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "edge-list file to load")
		genType   = flag.String("gen", "", "generate instead of load: web | citation | coauthor | er | rmat")
		n         = flag.Int("n", 1000, "generator: vertices")
		d         = flag.Int("d", 8, "generator: average degree")
		seed      = flag.Int64("seed", 1, "generator / SVD seed")
		algo      = flag.String("algo", "oip-sr", "algorithm: "+engine.NameList(" | ")+" (or \"help\" to list)")
		c         = flag.Float64("c", 0.6, "damping factor C")
		k         = flag.Int("k", 0, "iterations (0 = derive from -eps)")
		eps       = flag.Float64("eps", 1e-3, "desired accuracy")
		rank      = flag.Int("rank", 0, "mtx-sr SVD rank (0 = sqrt(n))")
		lambda    = flag.Float64("lambda", 0, "p-rank in-link weight (0 = 0.5)")
		cout      = flag.Float64("cout", 0, "p-rank out-link damping (0 = same as -c)")
		walks     = flag.Int("walks", 0, "monte-carlo fingerprints (0 = 100)")
		workers   = flag.Int("workers", 0, "iteration worker pool size (0 = all CPUs, 1 = serial)")
		block     = flag.Int("block", 0, "tiled backend block size B (0 = dense; oip-sr, oip-dsr, psum-sr, naive)")
		maxMem    = flag.Int64("max-mem", 0, "tiled backend: cap resident score-matrix bytes, spilling tiles to disk (0 = unbounded)")
		spillDir  = flag.String("spill-dir", "", "tiled backend: directory for spilled tiles (default: fresh temp dir)")
		query     = flag.Int("query", -1, "query vertex for a top-k search (-1 = none)")
		top       = flag.Int("top", 10, "top-k size")
		pair      = flag.String("pair", "", "print a single score, format \"a,b\"")
		stats     = flag.Bool("stats", false, "print run statistics")
	)
	flag.Parse()

	// -algo help (and any unregistered name) answers from the registry, the
	// single source of truth for what this build can compute.
	if *algo == "help" {
		fmt.Printf("registered algorithms: %s\n", engine.NameList(", "))
		return
	}
	if !simrank.Algorithm(*algo).Valid() {
		fmt.Fprintf(os.Stderr, "simrank: unknown algorithm %q (registered: %s)\n", *algo, engine.NameList(", "))
		os.Exit(2)
	}

	g, err := loadGraph(*graphPath, *genType, *n, *d, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simrank: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "graph: %s\n", graph.ComputeStats(g))

	// Validate request flags before computing: exiting later would skip the
	// deferred Close that releases the tiled backend's spill directory.
	var pairA, pairB int
	if *pair != "" {
		if _, err := fmt.Sscanf(*pair, "%d,%d", &pairA, &pairB); err != nil {
			fmt.Fprintf(os.Stderr, "simrank: bad -pair %q: %v\n", *pair, err)
			os.Exit(2)
		}
		if pairA < 0 || pairB < 0 || pairA >= g.NumVertices() || pairB >= g.NumVertices() {
			fmt.Fprintf(os.Stderr, "simrank: -pair %q out of range\n", *pair)
			os.Exit(2)
		}
	}
	if *query >= g.NumVertices() {
		fmt.Fprintf(os.Stderr, "simrank: query vertex %d out of range\n", *query)
		os.Exit(2)
	}

	scores, st, err := simrank.Compute(g, simrank.Options{
		Algorithm:      simrank.Algorithm(*algo),
		C:              *c,
		K:              *k,
		Eps:            *eps,
		Rank:           *rank,
		Lambda:         *lambda,
		COut:           *cout,
		Walks:          *walks,
		Seed:           *seed,
		Workers:        *workers,
		BlockSize:      *block,
		MaxMemoryBytes: *maxMem,
		SpillDir:       *spillDir,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "simrank: %v\n", err)
		os.Exit(1)
	}
	defer scores.Close()

	if *stats {
		fmt.Printf("algorithm      %s\n", st.Algorithm)
		fmt.Printf("iterations     %d\n", st.Iterations)
		fmt.Printf("plan time      %v\n", st.PlanTime)
		fmt.Printf("compute time   %v\n", st.ComputeTime)
		fmt.Printf("inner adds     %d\n", st.InnerAdds)
		fmt.Printf("outer adds     %d\n", st.OuterAdds)
		fmt.Printf("aux memory     %d B\n", st.AuxBytes)
		fmt.Printf("state memory   %d B\n", st.StateBytes)
		if st.NumSets > 0 {
			fmt.Printf("share ratio    %.3f (d_sym %.2f over %d sets)\n", st.ShareRatio, st.AvgDiff, st.NumSets)
		}
		if st.Rank > 0 {
			fmt.Printf("svd rank       %d\n", st.Rank)
		}
		if st.Residual > 0 {
			fmt.Printf("residual       %.3g\n", st.Residual)
		}
		if *block > 0 {
			fmt.Printf("tile peak      %d B (spills %d, loads %d)\n", st.TilePeakBytes, st.TileSpills, st.TileLoads)
		}
	}

	if *pair != "" {
		fmt.Printf("s(%d,%d) = %.6f\n", pairA, pairB, scores.Score(pairA, pairB))
	}

	if *query >= 0 {
		fmt.Printf("top-%d most similar to vertex %d:\n", *top, *query)
		for i, r := range scores.TopK(*query, *top) {
			fmt.Printf("%3d. vertex %-8d score %.6f\n", i+1, r.Vertex, r.Score)
		}
	}
}

func loadGraph(path, genType string, n, d int, seed int64) (*graph.Graph, error) {
	switch {
	case path != "" && genType != "":
		return nil, fmt.Errorf("use either -graph or -gen, not both")
	case path != "":
		return gio.LoadEdgeListFile(path)
	case genType != "":
		switch genType {
		case "web":
			return gen.WebGraph(n, d, seed), nil
		case "citation":
			return gen.CitationGraph(n, d, seed), nil
		case "coauthor":
			return gen.CoauthorGraph(n, d, seed), nil
		case "er":
			return gen.ErdosRenyi(n, n*d, seed), nil
		case "rmat":
			return gen.RMAT(n, n*d, gen.DefaultRMAT, seed), nil
		default:
			return nil, fmt.Errorf("unknown generator %q", genType)
		}
	default:
		return nil, fmt.Errorf("provide -graph FILE or -gen TYPE")
	}
}
