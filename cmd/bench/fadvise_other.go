//go:build !linux

package main

// dropPageCache is best-effort: without posix_fadvise the "cold" numbers
// on this platform may still be partially page-cache warm.
func dropPageCache(path string) error { return nil }
