package simrank

import (
	"context"
	"fmt"

	"oipsr/graph"
	"oipsr/simrank/engine"
)

// Compute runs the selected SimRank engine over g and returns the all-pairs
// scores plus run statistics. See Options for the engine-specific knobs.
//
// Engines are looked up in the simrank/engine registry — registry
// membership is what makes an Algorithm valid — and every registered
// engine produces scores bit-identical for any worker count.
//
// When opt.BlockSize > 0 the engines that support it (OIPSR, OIPDSR,
// PsumSR, Naive) run against the tiled score-matrix backend: bounded
// resident memory (opt.MaxMemoryBytes) with spill-to-disk, and scores
// bit-identical to the dense backend. Call Scores.Close on tiled results
// when done.
func Compute(g *graph.Graph, opt Options) (*Scores, *Stats, error) {
	return ComputeContext(context.Background(), g, opt)
}

// ComputeContext is Compute with a context. Engines that advertise
// cancellation (today only Linearized, at solve-step boundaries) return
// ctx.Err() when the context ends mid-computation; the classic sweep
// engines run to completion regardless.
func ComputeContext(ctx context.Context, g *graph.Graph, opt Options) (*Scores, *Stats, error) {
	alg := opt.Algorithm
	if alg == "" {
		alg = OIPSR
	}
	eng, ok := engine.Get(alg)
	if !ok {
		return nil, nil, fmt.Errorf("simrank: unknown algorithm %q", alg)
	}
	p := opt.params()
	if opt.BlockSize > 0 {
		if !eng.Caps().Tiled {
			return nil, nil, fmt.Errorf("simrank: the tiled backend (BlockSize > 0) does not support algorithm %q", alg)
		}
		src, st, err := eng.ComputeTiled(ctx, g, p)
		if err != nil {
			return nil, nil, err
		}
		return &Scores{src: src}, st, nil
	}
	src, st, err := eng.Compute(ctx, g, p)
	if err != nil {
		return nil, nil, err
	}
	return &Scores{src: src}, st, nil
}
