package walkindex

import (
	"bytes"
	"errors"
	"testing"

	"oipsr/graph/gen"
)

// TestV2ReencodeByteIdentical is the re-encode equality property: a v1
// file decoded and re-saved through format v2 and back must reproduce the
// original v1 bytes exactly — the v2 codec is lossless and canonical.
func TestV2ReencodeByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		n, d int
		seed int64
	}{
		{"web", 300, 5, 3},
		{"citation", 257, 4, 8}, // rows not a multiple of the block size
		{"tiny", 3, 2, 1},       // single partial block
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := gen.WebGraph(tc.n, tc.d, tc.seed)
			ix, err := Build(g, Options{Walks: 20, Seed: tc.seed})
			if err != nil {
				t.Fatal(err)
			}
			var v1, v2 bytes.Buffer
			if err := ix.Save(&v1); err != nil {
				t.Fatal(err)
			}
			if err := ix.SaveFormat(&v2, FormatV2); err != nil {
				t.Fatal(err)
			}
			mid, err := Load(bytes.NewReader(v2.Bytes()))
			if err != nil {
				t.Fatalf("loading v2: %v", err)
			}
			if !ix.Equal(mid) {
				t.Fatal("v2 round trip changed the index")
			}
			var back bytes.Buffer
			if err := mid.Save(&back); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(back.Bytes(), v1.Bytes()) {
				t.Fatal("v1 -> v2 -> v1 re-encode is not byte-identical")
			}
			// Canonical encoding: re-saving the v2 load as v2 again must
			// also reproduce the v2 bytes.
			var again bytes.Buffer
			if err := mid.SaveFormat(&again, FormatV2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(again.Bytes(), v2.Bytes()) {
				t.Fatal("v2 re-encode is not byte-identical")
			}
		})
	}
}

// TestV2Compresses: on the bench-style graphs the compressed format must
// be at most half the dense payload (the PR's acceptance bar).
func TestV2Compresses(t *testing.T) {
	g := gen.WebGraph(1000, 8, 21)
	ix, err := Build(g, Options{Walks: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var v1, v2 bytes.Buffer
	if err := ix.Save(&v1); err != nil {
		t.Fatal(err)
	}
	if err := ix.SaveFormat(&v2, FormatV2); err != nil {
		t.Fatal(err)
	}
	if ratio := float64(v2.Len()) / float64(v1.Len()); ratio > 0.5 {
		t.Errorf("v2/v1 size ratio %.3f, want <= 0.5 (%d vs %d bytes)", ratio, v2.Len(), v1.Len())
	}
}

// TestSaveFormatUnknown: formats this build does not write are ErrVersion.
func TestSaveFormatUnknown(t *testing.T) {
	ix := buildSmall(t)
	for _, format := range []int{0, 3, -1} {
		if err := ix.SaveFormat(&bytes.Buffer{}, format); !errors.Is(err, ErrVersion) {
			t.Errorf("SaveFormat(%d) = %v, want ErrVersion", format, err)
		}
	}
}

// TestSaveValidatesLoadGuards is the round-trip asymmetry fix: Save used
// to happily write an index whose dimensions Load would then reject. Now
// every guard the readers enforce is checked at save time, with the
// ErrFormatLimits sentinel, before a byte is written.
func TestSaveValidatesLoadGuards(t *testing.T) {
	for _, tc := range []struct {
		name   string
		ix     *Index
		format int
	}{
		{"horizon over v1 guard", &Index{n: 1, k: int(maxHorizon) + 1, r: 1, c: 0.5}, FormatV1},
		{"horizon over v2 guard", &Index{n: 1, k: int(maxV2Horizon) + 1, r: 1, c: 0.5}, FormatV2},
		{"element overflow", &Index{n: 1 << 30, k: 1 << 10, r: 1 << 10, c: 0.5}, FormatV1},
		{"bad damping", &Index{n: 1, k: 2, r: 1, c: 1.5}, FormatV1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			err := tc.ix.SaveFormat(&buf, tc.format)
			if !errors.Is(err, ErrFormatLimits) {
				t.Fatalf("SaveFormat = %v, want ErrFormatLimits", err)
			}
			if buf.Len() != 0 {
				t.Fatalf("Save wrote %d bytes before failing validation", buf.Len())
			}
		})
	}
	// The v2-only horizon guard must not reject a v1 save of the same index.
	ix := &Index{n: 0, k: int(maxV2Horizon) + 1, r: 1, c: 0.5, store: newDenseStore(nil, (int(maxV2Horizon) + 1))}
	if err := ix.SaveFormat(&bytes.Buffer{}, FormatV1); err != nil {
		t.Errorf("v1 save rejected a horizon only format v2 forbids: %v", err)
	}
}

// TestLoadRejectsTrailingData: bytes after the CRC trailer are a
// concatenated or overlong file, not slack — for both formats, full
// indexes and shards alike.
func TestLoadRejectsTrailingData(t *testing.T) {
	ix := buildSmall(t)
	for _, format := range []int{FormatV1, FormatV2} {
		var buf bytes.Buffer
		if err := ix.SaveFormat(&buf, format); err != nil {
			t.Fatal(err)
		}
		data := append(append([]byte(nil), buf.Bytes()...), 0xEE)
		if _, err := Load(bytes.NewReader(data)); !errors.Is(err, ErrTrailingData) {
			t.Errorf("format %d: Load with a trailing byte = %v, want ErrTrailingData", format, err)
		}
		if _, err := Load(bytes.NewReader(buf.Bytes())); err != nil {
			t.Errorf("format %d: exact file rejected: %v", format, err)
		}
	}

	// Shards: same probe through LoadShard.
	g := gen.WebGraph(50, 4, 2)
	sx, err := BuildShard(g, Options{Walks: 8, Seed: 3}, 10, 30)
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range []int{FormatV1, FormatV2} {
		var buf bytes.Buffer
		if err := sx.SaveFormat(&buf, format); err != nil {
			t.Fatal(err)
		}
		data := append(append([]byte(nil), buf.Bytes()...), 0x00)
		if _, err := LoadShard(bytes.NewReader(data)); !errors.Is(err, ErrTrailingData) {
			t.Errorf("shard format %d: trailing byte = %v, want ErrTrailingData", format, err)
		}
		got, err := LoadShard(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("shard format %d: exact file rejected: %v", format, err)
		}
		if !sx.Equal(got) {
			t.Errorf("shard format %d: round trip changed the shard", format)
		}
	}
}
