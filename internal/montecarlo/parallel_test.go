package montecarlo

import (
	"testing"

	"oipsr/graph"
	"oipsr/graph/gen"
	"oipsr/internal/simmat"
)

// TestParallelBitIdentical: parallelizing the pair-meeting bookkeeping must
// not change the estimate at all — the walk RNG is serial, and distinct
// buckets touch disjoint cells, so estimates and meeting counts match the
// serial run exactly for every worker count.
func TestParallelBitIdentical(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"web":      gen.WebGraph(100, 6, 3),
		"citation": gen.CitationGraph(120, 4, 9),
	} {
		want, wst, err := Compute(g, Options{C: 0.6, K: 5, Walks: 30, Seed: 7, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4} {
			got, gst, err := Compute(g, Options{C: 0.6, K: 5, Walks: 30, Seed: 7, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if d := simmat.MaxDiff(want, got); d != 0 {
				t.Errorf("%s workers=%d: estimates differ by %g, want bit-identical", name, workers, d)
			}
			if wst.Meetings != gst.Meetings {
				t.Errorf("%s workers=%d: meetings diverged: %d vs %d", name, workers, wst.Meetings, gst.Meetings)
			}
		}
	}
}
