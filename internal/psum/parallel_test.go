package psum

import (
	"testing"

	"oipsr/graph"
	"oipsr/graph/gen"
	"oipsr/internal/simmat"
)

// TestParallelBitIdentical: the row-parallel psum-SR loop matches the serial
// engine bit-for-bit, including the threshold-sieving counters.
func TestParallelBitIdentical(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"web":      gen.WebGraph(130, 8, 3),
		"citation": gen.CitationGraph(140, 4, 5),
	} {
		for _, threshold := range []float64{0, 1e-4} {
			want, wst, err := Compute(g, Options{C: 0.6, K: 6, Threshold: threshold, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			got, gst, err := Compute(g, Options{C: 0.6, K: 6, Threshold: threshold, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if d := simmat.MaxDiff(want, got); d != 0 {
				t.Errorf("%s threshold=%g: scores differ by %g, want bit-identical", name, threshold, d)
			}
			if wst.InnerAdds != gst.InnerAdds || wst.OuterAdds != gst.OuterAdds || wst.SievedPairs != gst.SievedPairs {
				t.Errorf("%s threshold=%g: counters diverged: serial %+v pool %+v", name, threshold, wst, gst)
			}
		}
	}
}

// TestWorkerCapAboveN: more workers than rows must not break row coverage.
func TestWorkerCapAboveN(t *testing.T) {
	g := gen.WebGraph(7, 3, 1)
	want, _, err := Compute(g, Options{C: 0.6, K: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Compute(g, Options{C: 0.6, K: 3, Workers: 64})
	if err != nil {
		t.Fatal(err)
	}
	if d := simmat.MaxDiff(want, got); d != 0 {
		t.Errorf("oversubscribed pool diverged by %g", d)
	}
}
