package eval

import (
	"math"
	"math/rand"
	"testing"
)

// Property tests for the ranking metrics: bounds, symmetries, and
// agreement with brute-force oracles on random inputs. Complements the
// example-based tests in eval_test.go.

func randScores(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.Float64()
		if rng.Intn(4) == 0 && i > 0 {
			s[i] = s[rng.Intn(i)] // inject ties
		}
	}
	return s
}

func randPerm(rng *rand.Rand, n int) []int { return rng.Perm(n) }

// TestNDCGBounds: NDCG is in [0, 1] for random relevances and rankings,
// and exactly 1 on the ideal ranking.
func TestNDCGBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(30)
		rel := make([]float64, n)
		for i := range rel {
			rel[i] = float64(rng.Intn(4))
		}
		ranking := randPerm(rng, n)
		p := 1 + rng.Intn(n+3) // p may exceed n
		got := NDCG(rel, ranking, p)
		if got < 0 || got > 1+1e-12 || math.IsNaN(got) {
			t.Fatalf("trial %d: NDCG = %v outside [0,1] (n=%d p=%d)", trial, got, n, p)
		}
		ideal := Rank(rel, nil)
		if ndcg := NDCG(rel, ideal, p); math.Abs(ndcg-1) > 1e-12 {
			t.Fatalf("trial %d: NDCG of ideal ranking = %v, want 1", trial, ndcg)
		}
	}
}

// TestKendallTauProperties: tau is symmetric in its arguments, bounded in
// [-1, 1], exactly 1 against itself and any strictly increasing transform,
// and exactly -1 against an order-reversing transform (when no ties).
func TestKendallTauProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(25)
		a, b := randScores(rng, n), randScores(rng, n)
		tab, tba := KendallTau(a, b), KendallTau(b, a)
		if tab != tba {
			t.Fatalf("trial %d: tau not symmetric: %v vs %v", trial, tab, tba)
		}
		if tab < -1 || tab > 1 || math.IsNaN(tab) {
			t.Fatalf("trial %d: tau = %v outside [-1,1]", trial, tab)
		}
		// Distinct values for the exact +/-1 identities.
		distinct := make([]float64, n)
		for i := range distinct {
			distinct[i] = float64(i) + rng.Float64()*0.5
		}
		rng.Shuffle(n, func(i, j int) { distinct[i], distinct[j] = distinct[j], distinct[i] })
		mono := make([]float64, n)
		anti := make([]float64, n)
		for i, v := range distinct {
			mono[i] = 3*v + 7 // strictly increasing transform
			anti[i] = -v      // order-reversing transform
		}
		if got := KendallTau(distinct, distinct); got != 1 {
			t.Fatalf("trial %d: tau(x,x) = %v, want 1", trial, got)
		}
		if got := KendallTau(distinct, mono); got != 1 {
			t.Fatalf("trial %d: tau under monotone transform = %v, want 1", trial, got)
		}
		if got := KendallTau(distinct, anti); got != -1 {
			t.Fatalf("trial %d: tau under reversal = %v, want -1", trial, got)
		}
	}
}

// TestSpearmanRhoProperties mirrors the tau properties for rho.
func TestSpearmanRhoProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(25)
		a, b := randScores(rng, n), randScores(rng, n)
		rab, rba := SpearmanRho(a, b), SpearmanRho(b, a)
		if math.Abs(rab-rba) > 1e-12 {
			t.Fatalf("trial %d: rho not symmetric: %v vs %v", trial, rab, rba)
		}
		if rab < -1-1e-12 || rab > 1+1e-12 || math.IsNaN(rab) {
			t.Fatalf("trial %d: rho = %v outside [-1,1]", trial, rab)
		}
		distinct := make([]float64, n)
		for i := range distinct {
			distinct[i] = float64(rng.Intn(1000)) + float64(i)/float64(n)
		}
		anti := make([]float64, n)
		for i, v := range distinct {
			anti[i] = -v
		}
		if got := SpearmanRho(distinct, distinct); math.Abs(got-1) > 1e-12 {
			t.Fatalf("trial %d: rho(x,x) = %v, want 1", trial, got)
		}
		if got := SpearmanRho(distinct, anti); math.Abs(got+1) > 1e-12 {
			t.Fatalf("trial %d: rho under reversal = %v, want -1", trial, got)
		}
	}
}

// inversionsOracle counts discordant pairs by brute force over the items
// common to both rankings, independently of the implementation under test.
func inversionsOracle(a, b []int) int {
	posA := map[int]int{}
	for i, item := range a {
		posA[item] = i
	}
	posB := map[int]int{}
	for i, item := range b {
		posB[item] = i
	}
	var common []int
	for _, item := range a {
		if _, ok := posB[item]; ok {
			common = append(common, item)
		}
	}
	inv := 0
	for x := 0; x < len(common); x++ {
		for y := x + 1; y < len(common); y++ {
			i, j := common[x], common[y]
			if (posA[i] < posA[j]) != (posB[i] < posB[j]) {
				inv++
			}
		}
	}
	return inv
}

// TestInversionsAgainstOracle: Inversions matches the brute-force count on
// random permutations, including partially-overlapping item sets; it is 0
// against itself and C(n,2) against the reversal.
func TestInversionsAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(20)
		a := randPerm(rng, n)
		b := randPerm(rng, n)
		if got, want := Inversions(a, b), inversionsOracle(a, b); got != want {
			t.Fatalf("trial %d: Inversions = %d, oracle = %d (a=%v b=%v)", trial, got, want, a, b)
		}
		// Partial overlap: drop a random suffix of b's items.
		bb := append([]int(nil), b...)
		bb = bb[:rng.Intn(n+1)]
		if got, want := Inversions(a, bb), inversionsOracle(a, bb); got != want {
			t.Fatalf("trial %d: partial-overlap Inversions = %d, oracle = %d", trial, got, want)
		}
		if got := Inversions(a, a); got != 0 {
			t.Fatalf("trial %d: Inversions(a,a) = %d", trial, got)
		}
		rev := make([]int, n)
		for i, item := range a {
			rev[n-1-i] = item
		}
		if got := Inversions(a, rev); got != n*(n-1)/2 {
			t.Fatalf("trial %d: Inversions vs reversal = %d, want %d", trial, got, n*(n-1)/2)
		}
	}
}
