package graph

import (
	"fmt"
	"sort"
)

// Stats summarizes the structural properties of a graph that drive SimRank
// cost: size, density, degree spread, and in-neighborhood overlap. The
// overlap fields quantify how much partial-sums sharing is available to
// OIP-SR (Section III of the paper): the more distinct vertices appear in
// multiple in-neighbor sets, the more sub-summations can be reused.
type Stats struct {
	Vertices int
	Edges    int

	AvgDegree   float64 // m / n, the paper's d
	MaxInDeg    int
	MaxOutDeg   int
	EmptyInSets int // vertices with I(v) = empty set (scores vs. them are 0)

	// InSetUnion is |union of all I(v)|; InSetTotal is sum of |I(v)| = m.
	// Sharing is guaranteed on every MST path when InSetUnion < InSetTotal
	// (correctness note, Section III-C).
	InSetUnion int
	InSetTotal int

	// OverlapRatio = 1 - InSetUnion/InSetTotal, in [0, 1); higher means more
	// redundancy available for sharing.
	OverlapRatio float64
}

// ComputeStats scans the graph once and returns its Stats.
func ComputeStats(g *Graph) Stats {
	s := Stats{
		Vertices:  g.NumVertices(),
		Edges:     g.NumEdges(),
		AvgDegree: g.AvgInDegree(),
	}
	seen := make([]bool, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		din, dout := g.InDegree(v), g.OutDegree(v)
		if din > s.MaxInDeg {
			s.MaxInDeg = din
		}
		if dout > s.MaxOutDeg {
			s.MaxOutDeg = dout
		}
		if din == 0 {
			s.EmptyInSets++
		}
		for _, u := range g.In(v) {
			if !seen[u] {
				seen[u] = true
				s.InSetUnion++
			}
		}
	}
	s.InSetTotal = g.NumEdges()
	if s.InSetTotal > 0 {
		s.OverlapRatio = 1 - float64(s.InSetUnion)/float64(s.InSetTotal)
	}
	return s
}

// String renders the stats as one row of the paper's Fig. 5 dataset table.
func (s Stats) String() string {
	return fmt.Sprintf("n=%d m=%d d=%.1f maxIn=%d maxOut=%d emptyIn=%d overlap=%.2f",
		s.Vertices, s.Edges, s.AvgDegree, s.MaxInDeg, s.MaxOutDeg, s.EmptyInSets, s.OverlapRatio)
}

// InDegreeHistogram returns the sorted distinct in-degrees and their counts.
// Used by generator tests to check distribution shapes (power-law vs flat).
func InDegreeHistogram(g *Graph) (degrees, counts []int) {
	hist := make(map[int]int)
	for v := 0; v < g.NumVertices(); v++ {
		hist[g.InDegree(v)]++
	}
	for d := range hist {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	counts = make([]int, len(degrees))
	for i, d := range degrees {
		counts[i] = hist[d]
	}
	return degrees, counts
}
