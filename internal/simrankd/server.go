// Package simrankd implements the simrankd HTTP server: the /v1 query
// endpoints over a persistent walk index (see oipsr/simrank/query), the
// health probe, and Prometheus-style /metrics. cmd/simrankd wires it to
// flags and a listener; cmd/bench drives it in-process for closed-loop
// load benchmarks — the package exists so both share one server.
//
// The server is built to stay predictable under overload:
//
//   - every request runs under a context with a deadline (the configured
//     RequestTimeout, shortened per request by ?timeout_ms=), and the
//     query layer aborts at chunk boundaries when it expires;
//   - a concurrency limiter admits at most MaxInflight requests into the
//     handlers with a bounded wait queue of QueueDepth behind them, and
//     sheds beyond that with 429 + Retry-After instead of queueing
//     unboundedly;
//   - exact-rerank top-k requests degrade to raw walk estimates (marked
//     with a "degraded" field and the X-Simrank-Degraded header) when the
//     remaining deadline budget cannot afford the rerank.
package simrankd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"oipsr/internal/lru"
	"oipsr/simrank/query"
)

// DefaultMaxBatch caps the sources of one /v1/batch request unless
// Config.MaxBatch overrides it.
const DefaultMaxBatch = 1024

// DefaultMaxInflight is the concurrency limit when Config.MaxInflight is
// zero: enough parallelism to keep every core busy with headroom for
// cache hits, small enough that n concurrent sweeps cannot pile up
// unbounded memory.
func DefaultMaxInflight() int { return 4 * runtime.GOMAXPROCS(0) }

// Config configures a Server. The zero value serves with an LRU of
// DefaultCacheSize, all CPUs, default batch/join caps, DefaultMaxInflight
// concurrency with a 2x wait queue, and no server-imposed deadline.
type Config struct {
	// CacheSize is the LRU response-cache capacity in entries; 0 means
	// DefaultCacheSize, negative disables caching.
	CacheSize int
	// Workers sets the worker pool for index repair and batch queries
	// (0 = all CPUs, 1 = serial).
	Workers int
	// MaxBatch caps the sources of one /v1/batch request; 0 means
	// DefaultMaxBatch.
	MaxBatch int
	// JoinMaxCandidates caps the candidate pairs a /v1/join may
	// enumerate; 0 means query.DefaultMaxCandidates.
	JoinMaxCandidates int
	// MaxInflight is the number of /v1 requests allowed to execute
	// concurrently; 0 means DefaultMaxInflight.
	MaxInflight int
	// QueueDepth is the number of requests allowed to wait for an
	// execution slot once MaxInflight are running; beyond it requests are
	// shed with 429. 0 means 2*MaxInflight; negative means no queue
	// (shed as soon as the limiter is full).
	QueueDepth int
	// RequestTimeout is the deadline every /v1 request runs under, and
	// the upper bound a ?timeout_ms= override may ask for. 0 means no
	// server-imposed deadline (overrides still apply).
	RequestTimeout time.Duration
}

// DefaultCacheSize is the response-cache capacity when Config.CacheSize
// is zero.
const DefaultCacheSize = 1024

// Server is the simrankd HTTP handler. Construct with NewServer.
//
// Concurrency: queries hold mu.RLock for their whole execution (the index
// is repaired in place, not swapped), /v1/edges holds mu.Lock while it
// applies the batch. Reads stay fully concurrent with each other; the
// limiter bounds how many of them execute at once.
type Server struct {
	// serving carries the limiter, deadlines, degradation model, error
	// encoding, and overload counters shared with ShardServer and Router.
	serving

	mu      sync.RWMutex
	idx     *query.Index
	workers int
	cache   *lru.Cache[string, []byte]
	mux     *http.ServeMux

	// scorePool recycles dense score rows (one []float64 of length N per
	// in-flight sweep; the vertex count never changes — edge edits repair
	// walks, they don't add vertices).
	scorePool sync.Pool

	// Per-endpoint request counters exported on /metrics.
	reqSingleSource atomic.Int64
	reqTopK         atomic.Int64
	reqEdges        atomic.Int64
	reqBatch        atomic.Int64
	reqJoin         atomic.Int64

	batchItems      atomic.Int64
	batchItemErrors atomic.Int64

	updatesTotal  atomic.Int64
	updateMicros  atomic.Int64
	edgesAdded    atomic.Int64
	edgesRemoved  atomic.Int64
	walksRepaired atomic.Int64
}

// NewServer returns a handler serving queries from idx under cfg.
func NewServer(idx *query.Index, cfg Config) *Server {
	cacheSize := cfg.CacheSize
	if cacheSize == 0 {
		cacheSize = DefaultCacheSize
	}
	s := &Server{
		idx:     idx,
		workers: cfg.Workers,
		cache:   lru.New[string, []byte](cacheSize),
		mux:     http.NewServeMux(),
	}
	s.initServing(cfg)
	n := idx.N()
	s.scorePool.New = func() any { b := make([]float64, n); return &b }

	s.mux.HandleFunc("/v1/single_source", s.limited(s.handleSingleSource))
	s.mux.HandleFunc("/v1/topk", s.limited(s.handleTopK))
	s.mux.HandleFunc("/v1/batch", s.limited(s.handleBatch))
	s.mux.HandleFunc("/v1/join", s.limited(s.handleJoin))
	s.mux.HandleFunc("/v1/edges", s.limited(s.handleEdges))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

type singleSourceResponse struct {
	Query int `json:"query"`
	N     int `json:"n"`
	// Scores is the dense score vector unless min was given.
	Scores []float64 `json:"scores,omitempty"`
	// Results holds only the entries with score >= min, sorted by
	// decreasing score, when the min parameter was given.
	Results []query.Ranked `json:"results,omitempty"`
	// Degraded marks a router-merged response missing at least one
	// shard's partial row (those targets report score 0). The single-node
	// daemon never sets it, so its bodies are unchanged.
	Degraded bool `json:"degraded,omitempty"`
}

// handleSingleSource serves GET/POST
// /v1/single_source?q=17[&min=0.01][&engine=walk|linearized].
func (s *Server) handleSingleSource(w http.ResponseWriter, r *http.Request) {
	s.reqSingleSource.Add(1)
	if !s.checkMethod(w, r, http.MethodGet, http.MethodPost) {
		return
	}
	eng, err := engineParam(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.countEngine(eng)
	q, err := intParam(r, "q", 0, true)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// min is parsed before any cache key is formed, and the key uses its
	// canonical decimal form: "0.01", "0.010", and "1e-2" are one entry.
	minRaw := r.FormValue("min")
	var minVal float64
	if minRaw != "" {
		minVal, err = strconv.ParseFloat(minRaw, 64)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "parameter \"min\": %v", err)
			return
		}
	}

	s.mu.RLock()
	defer s.mu.RUnlock()
	if eng == engineLinearized {
		s.serveSingleSourceExact(w, r, q, minRaw != "", minVal)
		return
	}
	// Dense responses are O(n) bytes each; caching them would make cache
	// memory scale with graph size times -cache entries, so only the
	// thresholded (sparse) form is memoized.
	cacheable := minRaw != ""
	var key string
	if cacheable {
		key = ssCacheKey(s.idx.Generation(), q, minVal)
		if body, ok := s.cache.Get(key); ok {
			writeJSONBytes(w, body)
			return
		}
	}

	buf := s.scorePool.Get().(*[]float64)
	defer s.scorePool.Put(buf)
	scores, err := s.idx.SingleSourceInto(r.Context(), q, *buf)
	if err != nil {
		s.writeQueryError(w, err, http.StatusBadRequest)
		return
	}
	body, err := s.singleSourceBody(q, scores, cacheable, minVal, false)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	if cacheable {
		s.cache.Put(key, body)
	}
	writeJSONBytes(w, body)
}

// ssCacheKey is the response-cache key of a thresholded single-source
// query: the index generation (so updates invalidate atomically), the
// source, and the threshold in canonical decimal form — "0.01", "0.010"
// and "1e-2" share one entry, whether they arrived as a query parameter on
// /v1/single_source or as a JSON number on /v1/batch.
func ssCacheKey(gen uint64, q int, min float64) string {
	return fmt.Sprintf("g%d:ss:%d:%s", gen, q, strconv.FormatFloat(min, 'g', -1, 64))
}

// sparseAbove filters a dense score vector down to the entries (other than
// the query itself) with score >= min, sorted by decreasing score with
// ties broken by vertex id.
func sparseAbove(scores []float64, q int, min float64) []query.Ranked {
	out := []query.Ranked{}
	for v, sc := range scores {
		if v != q && sc >= min {
			out = append(out, query.Ranked{Vertex: v, Score: sc})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Vertex < out[j].Vertex
	})
	return out
}

type topKResponse struct {
	Query    int  `json:"query"`
	K        int  `json:"k"`
	Reranked bool `json:"reranked"`
	// Degraded marks a response that asked for rerank=1 but was served
	// raw walk estimates because the remaining deadline budget could not
	// afford the exact rerank. Scores are then bit-identical to the
	// rerank=0 response. Absent (false) on normal responses, so their
	// bodies are unchanged.
	Degraded bool           `json:"degraded,omitempty"`
	Results  []query.Ranked `json:"results"`
}

// handleTopK serves GET/POST
// /v1/topk?q=17&k=10[&rerank=1][&engine=walk|linearized].
func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	s.reqTopK.Add(1)
	if !s.checkMethod(w, r, http.MethodGet, http.MethodPost) {
		return
	}
	eng, err := engineParam(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.countEngine(eng)
	q, err := intParam(r, "q", 0, true)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	k, err := intParam(r, "k", 10, false)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if k < 1 {
		s.writeError(w, http.StatusBadRequest, "query: top-k size %d < 1", k)
		return
	}
	rerank := boolParam(r, "rerank")
	if eng == engineLinearized && rerank {
		s.writeError(w, http.StatusBadRequest, "\"rerank\" is not valid with engine=linearized (exact scores need no rerank)")
		return
	}

	s.mu.RLock()
	defer s.mu.RUnlock()
	if eng == engineLinearized {
		s.serveTopKExact(w, r, q, k)
		return
	}
	key := topKCacheKey(s.idx.Generation(), q, k, rerank)
	if body, ok := s.cache.Get(key); ok {
		writeJSONBytes(w, body)
		return
	}

	buf := s.scorePool.Get().(*[]float64)
	defer s.scorePool.Put(buf)
	scores, err := s.idx.SingleSourceInto(r.Context(), q, *buf)
	if err != nil {
		s.writeQueryError(w, err, http.StatusBadRequest)
		return
	}

	// Degrade before committing to the rerank, not after failing it: with
	// the sweep done, the raw estimates are already in hand, so a request
	// that cannot afford exact re-scoring still gets a useful answer.
	useRerank := rerank
	pool := s.idx.RerankPoolSize(k, 0)
	degraded := rerank && s.shouldDegrade(r.Context(), pool)
	if degraded {
		useRerank = false
	}
	t1 := time.Now()
	results, err := s.idx.TopKFromScores(r.Context(), scores, q, k, &query.TopKOptions{Rerank: useRerank})
	if err != nil {
		s.writeQueryError(w, err, http.StatusBadRequest)
		return
	}
	if useRerank {
		s.observeRerank(time.Since(t1), pool)
	}

	body, err := s.topKBody(q, k, useRerank, degraded, results)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	if degraded {
		// Degraded bodies are a stopgap under pressure, not the answer the
		// client asked for; caching one would keep serving it after the
		// pressure is gone.
		s.degradedTotal.Add(1)
		w.Header().Set("X-Simrank-Degraded", "true")
	} else {
		s.cache.Put(key, body)
	}
	writeJSONBytes(w, body)
}

// topKCacheKey is the response-cache key of a top-k query, shared between
// /v1/topk and the per-item entries of /v1/batch: a batch warms the cache
// for single queries and vice versa, and the folded-in generation makes
// pre-update entries unservable after an update.
func topKCacheKey(gen uint64, q, k int, rerank bool) string {
	return fmt.Sprintf("g%d:topk:%d:%d:%t", gen, q, k, rerank)
}

type edgeEdit struct {
	Op string `json:"op"` // "add" | "remove"
	U  int    `json:"u"`
	V  int    `json:"v"`
}

type edgesRequest struct {
	Edits []edgeEdit `json:"edits"`
}

type edgesResponse struct {
	// Added/Removed count effective changes; no-op edits are accepted and
	// simply don't contribute.
	Added   int `json:"added"`
	Removed int `json:"removed"`
	// DirtyVertices and WalksRepaired describe the incremental repair.
	DirtyVertices int    `json:"dirty_vertices"`
	WalksRepaired int    `json:"walks_repaired"`
	Generation    uint64 `json:"generation"`
	Edges         int    `json:"edges"` // graph edge count after the batch
	UpdateMicros  int64  `json:"update_micros"`
}

// handleEdges serves POST /v1/edges: a batch of edge adds/removes applied
// to the live graph with an incremental, bit-identical index repair. The
// repair itself is not cancellable (aborting a half-applied repair would
// corrupt the index), so the request deadline gates only admission.
func (s *Server) handleEdges(w http.ResponseWriter, r *http.Request) {
	s.reqEdges.Add(1)
	if !s.checkMethod(w, r, http.MethodPost) {
		return
	}
	var req edgesRequest
	if !s.decodeJSONBody(w, r, &req) {
		return
	}
	edits, errMsg := parseEdits(req.Edits)
	if errMsg != "" {
		s.writeError(w, http.StatusBadRequest, "%s", errMsg)
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	u0 := time.Now()
	gen0 := s.idx.Generation()
	stats, err := s.idx.ApplyEdits(edits, s.workers)
	if err != nil {
		// Invalid edits are the client's fault; an index beyond the
		// incremental-maintenance capacity is ours.
		code := http.StatusBadRequest
		if errors.Is(err, query.ErrTooLarge) {
			code = http.StatusInternalServerError
		}
		s.writeError(w, code, "%v", err)
		return
	}
	if stats.Generation != gen0 {
		// The old generation's cached bodies can never be served again;
		// drop them now instead of letting them squat in the LRU until
		// capacity-evicted.
		s.cache.Clear()
	}
	updateMicros := time.Since(u0).Microseconds()
	s.updatesTotal.Add(1)
	s.updateMicros.Add(updateMicros)
	s.edgesAdded.Add(int64(stats.EdgesAdded))
	s.edgesRemoved.Add(int64(stats.EdgesRemoved))
	s.walksRepaired.Add(int64(stats.WalksRepaired))

	body, err := s.marshalBody(edgesResponse{
		Added:         stats.EdgesAdded,
		Removed:       stats.EdgesRemoved,
		DirtyVertices: stats.DirtyVertices,
		WalksRepaired: stats.WalksRepaired,
		Generation:    stats.Generation,
		Edges:         s.idx.Graph().NumEdges(),
		UpdateMicros:  updateMicros,
	})
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	writeJSONBytes(w, body)
}

type healthzResponse struct {
	Status     string  `json:"status"`
	Vertices   int     `json:"vertices"`
	Walks      int     `json:"walks"`
	Horizon    int     `json:"horizon"`
	C          float64 `json:"c"`
	IndexBytes int64   `json:"index_bytes"`
	// Backend is the walk-storage backing: "dense" in memory, "mapped"
	// (or "mapped-readat") when serving a demand-paged v2 index file.
	Backend    string  `json:"backend"`
	Generation uint64  `json:"generation"`
	UptimeSecs float64 `json:"uptime_seconds"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(healthzResponse{
		Status:     "ok",
		Vertices:   s.idx.N(),
		Walks:      s.idx.Walks(),
		Horizon:    s.idx.Horizon(),
		C:          s.idx.C(),
		IndexBytes: s.idx.Bytes(),
		Backend:    s.idx.Backend(),
		Generation: s.idx.Generation(),
		UptimeSecs: time.Since(s.started).Seconds(),
	})
}

// handleMetrics dumps the counters in the Prometheus text exposition
// format (no client library dependency).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.cache.Stats()
	s.mu.RLock()
	generation := s.idx.Generation()
	vertices := s.idx.N()
	indexBytes := s.idx.Bytes()
	s.mu.RUnlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	buildInfoMetric(w, "serve")
	fmt.Fprintf(w, "simrankd_requests_total{endpoint=\"single_source\"} %d\n", s.reqSingleSource.Load())
	fmt.Fprintf(w, "simrankd_requests_total{endpoint=\"topk\"} %d\n", s.reqTopK.Load())
	fmt.Fprintf(w, "simrankd_requests_total{endpoint=\"edges\"} %d\n", s.reqEdges.Load())
	fmt.Fprintf(w, "simrankd_requests_total{endpoint=\"batch\"} %d\n", s.reqBatch.Load())
	fmt.Fprintf(w, "simrankd_requests_total{endpoint=\"join\"} %d\n", s.reqJoin.Load())
	fmt.Fprintf(w, "simrankd_batch_items_total %d\n", s.batchItems.Load())
	fmt.Fprintf(w, "simrankd_batch_item_errors_total %d\n", s.batchItemErrors.Load())
	fmt.Fprintf(w, "simrankd_request_errors_total %d\n", s.reqErrors.Load())
	fmt.Fprintf(w, "simrankd_requests_shed_total %d\n", s.shedTotal.Load())
	fmt.Fprintf(w, "simrankd_requests_degraded_total %d\n", s.degradedTotal.Load())
	s.writeEngineMetrics(w)
	fmt.Fprintf(w, "simrankd_inflight_requests %d\n", s.inflight.Load())
	fmt.Fprintf(w, "simrankd_queued_requests %d\n", s.queued.Load())
	fmt.Fprintf(w, "simrankd_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "simrankd_cache_misses_total %d\n", misses)
	s.latency.WriteProm(w, "simrankd_request_latency_seconds")
	fmt.Fprintf(w, "simrankd_index_generation %d\n", generation)
	fmt.Fprintf(w, "simrankd_updates_total %d\n", s.updatesTotal.Load())
	fmt.Fprintf(w, "simrankd_update_latency_micros_total %d\n", s.updateMicros.Load())
	fmt.Fprintf(w, "simrankd_update_edges_added_total %d\n", s.edgesAdded.Load())
	fmt.Fprintf(w, "simrankd_update_edges_removed_total %d\n", s.edgesRemoved.Load())
	fmt.Fprintf(w, "simrankd_update_walks_repaired_total %d\n", s.walksRepaired.Load())
	fmt.Fprintf(w, "simrankd_index_vertices %d\n", vertices)
	fmt.Fprintf(w, "simrankd_index_bytes %d\n", indexBytes)
}
