package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestCheckFileClassifiesLinks: broken relative links are reported,
// everything unckeckable or valid is not.
func TestCheckFileClassifiesLinks(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "exists.md"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	doc := `# Doc
[ok](exists.md) [ok dir](sub) [ok anchor](exists.md#part) [pure anchor](#here)
[external](https://example.com/x.md) [mail](mailto:a@b.c)
[broken](missing.md) and [broken2](sub/nope.md "title")
` + "```\n[in fence](also-missing.md)\n```\n" + `
[ref]: missing-ref.md
`
	path := filepath.Join(dir, "doc.md")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	problems, err := CheckFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"missing.md": true, `sub/nope.md "title"`: true, "missing-ref.md": true}
	if len(problems) != len(want) {
		t.Fatalf("got %d problems %v, want %d", len(problems), problems, len(want))
	}
	for _, p := range problems {
		if !want[p.Target] {
			t.Errorf("unexpected problem: %v", p)
		}
	}
}

// TestRepositoryDocsHaveNoBrokenLinks runs the checker over the committed
// documentation — the same gate CI's docs job applies, kept in tier-1 so a
// doc rot is caught by a plain `go test ./...`.
func TestRepositoryDocsHaveNoBrokenLinks(t *testing.T) {
	root := filepath.Join("..", "..")
	docs := []string{"README.md", "ARCHITECTURE.md", "TESTING.md",
		filepath.Join("docs", "API.md")}
	for _, doc := range docs {
		path := filepath.Join(root, doc)
		problems, err := CheckFile(path)
		if err != nil {
			t.Fatalf("%s: %v", doc, err)
		}
		for _, p := range problems {
			t.Errorf("%v", p)
		}
	}
}
