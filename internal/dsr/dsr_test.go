package dsr

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"oipsr/graph"
	"oipsr/graph/gen"
	"oipsr/internal/core"
	"oipsr/internal/matrixform"
	"oipsr/internal/numeric"
	"oipsr/internal/simmat"
)

func randomGraph(rng *rand.Rand, n, maxM int) *graph.Graph {
	b := graph.NewBuilder(n, 0)
	b.EnsureVertices(n)
	for i := 0; i < rng.Intn(maxM+1); i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return b.MustBuild()
}

// TestMatchesExponentialSeries is the central correctness property: the
// iteration Eq. 15 must equal the truncated series Eq. 13 term by term
// ("the value of S^_k equals the sum of the first k terms", Section IV).
func TestMatchesExponentialSeries(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		g := randomGraph(rng, n, 4*n)
		c := 0.3 + 0.6*rng.Float64()
		k := 1 + rng.Intn(7) // K=0 means "derive from Eps" in Options
		want, err := matrixform.ExponentialSum(g, c, k)
		if err != nil {
			return false
		}
		got, _, err := Compute(g, Options{C: c, K: k})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if d := simmat.MaxDiff(got, want); d > 1e-10 {
			t.Logf("seed %d: max diff %g from exponential series", seed, d)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestSharingDoesNotChangeScores: OIP sharing is a reorganization; disabling
// it must yield identical values.
func TestSharingDoesNotChangeScores(t *testing.T) {
	g := gen.WebGraph(200, 9, 11)
	a, _, err := Compute(g, Options{C: 0.8, K: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Compute(g, Options{C: 0.8, K: 6, DisableSharing: true})
	if err != nil {
		t.Fatal(err)
	}
	if d := simmat.MaxDiff(a, b); d > 1e-10 {
		t.Errorf("sharing changed scores by %g", d)
	}
}

// TestSharingSavesWork: with sharing enabled the inner additions drop.
func TestSharingSavesWork(t *testing.T) {
	g := gen.WebGraph(200, 9, 11)
	_, shared, err := Compute(g, Options{C: 0.8, K: 6})
	if err != nil {
		t.Fatal(err)
	}
	_, scratch, err := Compute(g, Options{C: 0.8, K: 6, DisableSharing: true})
	if err != nil {
		t.Fatal(err)
	}
	if shared.InnerAdds >= scratch.InnerAdds {
		t.Errorf("inner adds with sharing %d >= without %d", shared.InnerAdds, scratch.InnerAdds)
	}
	if shared.OuterAdds >= scratch.OuterAdds {
		t.Errorf("outer adds with sharing %d >= without %d", shared.OuterAdds, scratch.OuterAdds)
	}
}

// TestEpsDerivesFig6fIterations: requesting accuracies 1e-2..1e-6 at C=0.8
// must run exactly the OIP-DSR iteration counts of Fig. 6f.
func TestEpsDerivesFig6fIterations(t *testing.T) {
	g := gen.CoauthorGraph(120, 3, 2)
	want := map[float64]int{1e-2: 4, 1e-3: 5, 1e-4: 6, 1e-5: 7, 1e-6: 8}
	for eps, k := range want {
		_, st, err := Compute(g, Options{C: 0.8, Eps: eps})
		if err != nil {
			t.Fatal(err)
		}
		if st.Iterations != k {
			t.Errorf("eps=%g: ran %d iterations, want %d", eps, st.Iterations, k)
		}
	}
}

// TestErrorBoundProposition7: |S^_k - S^| <= C^(k+1)/(k+1)! against a
// deep-iteration reference, through the full OIP-DSR path.
func TestErrorBoundProposition7(t *testing.T) {
	g := gen.CitationGraph(150, 4, 3)
	c := 0.8
	ref, _, err := Compute(g, Options{C: c, K: 30})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 1, 2, 4, 6, 9} {
		s, _, err := Compute(g, Options{C: c, K: k})
		if err != nil {
			t.Fatal(err)
		}
		if d, bound := simmat.MaxDiff(s, ref), numeric.ExponentialTailBound(c, k); d > bound+1e-15 {
			t.Errorf("k=%d: error %g exceeds Proposition 7 bound %g", k, d, bound)
		}
	}
}

// kendallTau computes the rank correlation between two score vectors over
// the same candidate set (used for the relative-order claim of Exp-4).
func kendallTau(a, b []float64) float64 {
	n := len(a)
	concordant, discordant := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pa, pb := a[i]-a[j], b[i]-b[j]
			switch {
			case pa*pb > 0:
				concordant++
			case pa*pb < 0:
				discordant++
			}
		}
	}
	if concordant+discordant == 0 {
		return 1
	}
	return float64(concordant-discordant) / float64(concordant+discordant)
}

// TestPreservesRelativeOrder verifies the paper's headline quality claim
// (Section IV, Exp-4): the differential model fairly preserves the relative
// order of conventional SimRank scores. We require high Kendall tau between
// the per-query rankings of converged OIP-SR and OIP-DSR.
func TestPreservesRelativeOrder(t *testing.T) {
	g := gen.CoauthorGraph(250, 3, 8)
	sr, _, err := core.Compute(g, core.Options{C: 0.6, Eps: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	ds, _, err := Compute(g, Options{C: 0.6, Eps: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	// Pick the 5 highest-degree query vertices, rank all others.
	type vd struct{ v, d int }
	var vds []vd
	for v := 0; v < g.NumVertices(); v++ {
		vds = append(vds, vd{v, g.InDegree(v)})
	}
	sort.Slice(vds, func(i, j int) bool { return vds[i].d > vds[j].d })
	for _, q := range vds[:5] {
		var a, b []float64
		for v := 0; v < g.NumVertices(); v++ {
			if v == q.v {
				continue
			}
			// Restrict to pairs with a meaningful score under either model
			// (comparing the ordering of structural zeros is noise).
			if sr.At(q.v, v) > 1e-9 || ds.At(q.v, v) > 1e-9 {
				a = append(a, sr.At(q.v, v))
				b = append(b, ds.At(q.v, v))
			}
		}
		if len(a) < 5 {
			continue
		}
		if tau := kendallTau(a, b); tau < 0.8 {
			t.Errorf("query %d: Kendall tau %.3f < 0.8 (%d candidates)", q.v, tau, len(a))
		}
	}
}

// TestInvariants: symmetry and non-negativity (the exponential series has
// non-negative terms); entries bounded by 1.
func TestInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := randomGraph(rng, n, 4*n)
		s, _, err := Compute(g, Options{C: 0.7, K: 5})
		if err != nil {
			return false
		}
		return s.CheckSymmetric(1e-10) == nil && s.CheckRange(0, 1, 1e-10) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestFewerIterationsThanConventional: the whole point of Section IV.
func TestFewerIterationsThanConventional(t *testing.T) {
	g := gen.CoauthorGraph(100, 3, 4)
	eps := 1e-4
	_, stSR, err := core.Compute(g, core.Options{C: 0.8, Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	_, stDSR, err := Compute(g, Options{C: 0.8, Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	if stDSR.Iterations*3 > stSR.Iterations {
		t.Errorf("DSR ran %d iterations vs SR %d; want >= 3x fewer", stDSR.Iterations, stSR.Iterations)
	}
}

func TestStateAccounting(t *testing.T) {
	g := gen.CoauthorGraph(50, 3, 4)
	_, st, err := Compute(g, Options{C: 0.6, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	n := int64(g.NumVertices())
	if st.StateBytes != 3*n*n*8 {
		t.Errorf("StateBytes = %d, want 3*n^2*8 = %d", st.StateBytes, 3*n*n*8)
	}
	if st.AuxBytes <= 0 || st.AuxBytes >= st.StateBytes {
		t.Errorf("AuxBytes = %d, want positive and far below state %d", st.AuxBytes, st.StateBytes)
	}
}

func TestBadOptions(t *testing.T) {
	g := graph.MustFromEdges(2, [][2]int{{0, 1}})
	if _, _, err := Compute(g, Options{C: -1, K: 1}); err == nil {
		t.Error("want error for negative C")
	}
	if _, _, err := Compute(g, Options{C: 0.5, K: -1}); err == nil {
		t.Error("want error for negative K")
	}
	if _, _, err := Compute(g, Options{C: 0.5, Eps: 1}); err == nil {
		t.Error("want error for eps = 1")
	}
	s, _, err := Compute(g, Options{C: 0.5, K: 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.At(0, 0); math.Abs(got-math.Exp(-0.5)) > 1e-15 {
		t.Errorf("K=0 diagonal = %g, want e^-C", got)
	}
}
