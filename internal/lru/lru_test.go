package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPutEvict(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf(`Get("a") = %d, %v; want 1, true`, v, ok)
	}
	c.Put("c", 3) // "b" is now least recently used and must be evicted
	if _, ok := c.Get("b"); ok {
		t.Fatal(`"b" survived eviction`)
	}
	for key, want := range map[string]int{"a": 1, "c": 3} {
		if v, ok := c.Get(key); !ok || v != want {
			t.Fatalf("Get(%q) = %d, %v; want %d, true", key, v, ok, want)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", c.Len())
	}
}

func TestPutRefreshesExisting(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // refresh both value and recency
	c.Put("c", 3)  // evicts "b", not "a"
	if v, ok := c.Get("a"); !ok || v != 10 {
		t.Fatalf(`Get("a") = %d, %v; want 10, true`, v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal(`"b" survived eviction after "a" was refreshed`)
	}
}

func TestDisabledCache(t *testing.T) {
	for _, capacity := range []int{0, -3} {
		c := New[int, string](capacity)
		c.Put(1, "x")
		if _, ok := c.Get(1); ok {
			t.Fatalf("capacity %d: Get hit on a disabled cache", capacity)
		}
		if c.Len() != 0 {
			t.Fatalf("capacity %d: Len() = %d, want 0", capacity, c.Len())
		}
	}
}

func TestStats(t *testing.T) {
	c := New[int, int](4)
	c.Put(1, 1)
	c.Get(1)
	c.Get(2)
	c.Get(1)
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("Stats() = %d hits, %d misses; want 2, 1", hits, misses)
	}
}

// TestConcurrent hammers the cache from many goroutines; correctness here
// is "no race, no panic, every hit returns the value put for that key"
// (run under -race in CI).
func TestConcurrent(t *testing.T) {
	c := New[string, int](32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", i%50)
				if v, ok := c.Get(key); ok && v != i%50 {
					t.Errorf("Get(%q) = %d, want %d", key, v, i%50)
					return
				}
				c.Put(key, i%50)
			}
		}(w)
	}
	wg.Wait()
}

func TestClear(t *testing.T) {
	c := New[string, int](4)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a")
	c.Clear()
	if c.Len() != 0 {
		t.Fatalf("Len = %d after Clear, want 0", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("Get hit a cleared entry")
	}
	// Statistics survive; the cache stays usable.
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("Stats after Clear = %d/%d, want 1 hit, 1 miss", hits, misses)
	}
	c.Put("c", 3)
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Fatal("cache unusable after Clear")
	}

	// Clear on a disabled cache is a no-op.
	d := New[string, int](0)
	d.Clear()
	if d.Len() != 0 {
		t.Fatal("disabled cache reports entries")
	}
}
