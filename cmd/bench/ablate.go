package main

import (
	"fmt"
	"time"

	"oipsr/simrank"
)

// runAblations measures the design choices DESIGN.md flags: outer sharing,
// candidate generation strategy, and MST backend. All variants compute
// identical scores (property-tested in internal/core); only cost moves.
func runAblations(cfg config) {
	header("Ablations: OIP-SR design choices on berkstan*", "DESIGN.md")
	g := webGraph(cfg)
	fmt.Printf("workload: n=%d m=%d d=%.1f, K=10 C=0.6\n", g.NumVertices(), g.NumEdges(), g.AvgInDegree())
	fmt.Printf("%-28s | %12s %12s | %14s %14s\n", "variant", "plan", "compute", "inner adds", "outer adds")

	variants := []struct {
		name string
		opt  simrank.Options
	}{
		{"full OIP-SR", simrank.Options{Algorithm: simrank.OIPSR}},
		{"inner sharing only", simrank.Options{Algorithm: simrank.OIPSR, DisableOuterSharing: true}},
		{"dense O(n^2) candidates", simrank.Options{Algorithm: simrank.OIPSR, DensePartition: true}},
		{"Edmonds MST backend", simrank.Options{Algorithm: simrank.OIPSR, UseEdmonds: true}},
		{"pair cap 8", simrank.Options{Algorithm: simrank.OIPSR, PairCap: 8}},
		{"psum-SR (no sharing)", simrank.Options{Algorithm: simrank.PsumSR}},
	}
	for _, v := range variants {
		v.opt.C = 0.6
		v.opt.K = 10
		v.opt.Workers = benchWorkers
		_, st, err := simrank.Compute(g, v.opt)
		must(err)
		fmt.Printf("%-28s | %12v %12v | %14d %14d\n",
			v.name, st.PlanTime.Round(time.Millisecond), st.ComputeTime.Round(time.Millisecond),
			st.InnerAdds, st.OuterAdds)
	}
}
