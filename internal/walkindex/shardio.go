package walkindex

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Shard on-disk format (all integers little-endian):
//
//	offset  size  field
//	0       8     magic "SRWKSHRD"
//	8       4     format version (currently 1)
//	12      8     n    (full-graph vertices, int64)
//	20      8     lo   (first owned vertex, int64)
//	28      8     hi   (one past the last owned vertex, int64)
//	36      8     k    (horizon, int64)
//	44      8     r    (fingerprints, int64)
//	52      8     c    (damping factor, IEEE-754 bits)
//	60      8     seed (int64)
//	68      4*(hi-lo)*r*k   paths ([]int32)
//	...     4     CRC-32 (IEEE) of every preceding byte
//
// The layout mirrors the full-index format (serialize.go) with the owned
// range spliced into the header; the distinct magic keeps a shard file
// from ever loading as a full index or vice versa — Load and LoadShard
// reject each other's files with ErrBadMagic, not a silent misread.

var shardMagic = [8]byte{'S', 'R', 'W', 'K', 'S', 'H', 'R', 'D'}

const shardHeaderSize = 8 + 4 + 7*8

// Save writes the shard to w in the versioned binary format, CRC-sealed
// like the full index.
func (sx *ShardIndex) Save(w io.Writer) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriterSize(io.MultiWriter(w, crc), 1<<16)

	var hdr [shardHeaderSize]byte
	copy(hdr[:8], shardMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], FormatVersion)
	binary.LittleEndian.PutUint64(hdr[12:], uint64(int64(sx.n)))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(int64(sx.lo)))
	binary.LittleEndian.PutUint64(hdr[28:], uint64(int64(sx.hi)))
	binary.LittleEndian.PutUint64(hdr[36:], uint64(int64(sx.k)))
	binary.LittleEndian.PutUint64(hdr[44:], uint64(int64(sx.r)))
	binary.LittleEndian.PutUint64(hdr[52:], math.Float64bits(sx.c))
	binary.LittleEndian.PutUint64(hdr[60:], uint64(sx.seed))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("walkindex: writing shard header: %w", err)
	}

	var buf [1 << 14]byte
	for off := 0; off < len(sx.paths); {
		nb := 0
		for off < len(sx.paths) && nb+4 <= len(buf) {
			binary.LittleEndian.PutUint32(buf[nb:], uint32(sx.paths[off]))
			nb += 4
			off++
		}
		if _, err := bw.Write(buf[:nb]); err != nil {
			return fmt.Errorf("walkindex: writing shard paths: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("walkindex: writing shard paths: %w", err)
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("walkindex: writing shard checksum: %w", err)
	}
	return nil
}

// LoadShard reads a shard written by Save. It applies the same defenses as
// Load: magic/version/range validation before trusting the header,
// incremental payload allocation against forged sizes, a CRC check over
// everything read, and per-entry range validation of the paths.
func LoadShard(r io.Reader) (*ShardIndex, error) {
	crc := crc32.NewIEEE()
	br := bufio.NewReaderSize(r, 1<<16)

	var hdr [shardHeaderSize]byte
	if err := readFull(br, crc, hdr[:], "shard header"); err != nil {
		return nil, err
	}
	if [8]byte(hdr[:8]) != shardMagic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != FormatVersion {
		return nil, fmt.Errorf("%w: file has version %d, this build reads version %d", ErrVersion, v, FormatVersion)
	}
	n := int64(binary.LittleEndian.Uint64(hdr[12:]))
	lo := int64(binary.LittleEndian.Uint64(hdr[20:]))
	hi := int64(binary.LittleEndian.Uint64(hdr[28:]))
	k := int64(binary.LittleEndian.Uint64(hdr[36:]))
	fps := int64(binary.LittleEndian.Uint64(hdr[44:]))
	c := math.Float64frombits(binary.LittleEndian.Uint64(hdr[52:]))
	seed := int64(binary.LittleEndian.Uint64(hdr[60:]))
	if n < 0 || k < 1 || fps < 1 {
		return nil, fmt.Errorf("walkindex: invalid shard header (n=%d, k=%d, r=%d)", n, k, fps)
	}
	if lo < 0 || hi < lo || hi > n {
		return nil, fmt.Errorf("walkindex: invalid shard header range [%d,%d) with n=%d", lo, hi, n)
	}
	if k > maxHorizon {
		return nil, fmt.Errorf("walkindex: implausible walk horizon k = %d", k)
	}
	if !(c > 0 && c < 1) {
		return nil, fmt.Errorf("walkindex: invalid shard header damping factor %v", c)
	}
	width := hi - lo
	elems := width * fps * k
	if width > 0 && (elems/width/fps != k || elems > maxElems) {
		return nil, fmt.Errorf("walkindex: implausible shard size width*r*k = %d*%d*%d", width, fps, k)
	}

	paths := make([]int32, 0, min(elems, 1<<16))
	var buf [1 << 14]byte
	for int64(len(paths)) < elems {
		nb := len(buf)
		if rem := elems - int64(len(paths)); rem < int64(len(buf)/4) {
			nb = int(rem) * 4
		}
		if err := readFull(br, crc, buf[:nb], "shard paths"); err != nil {
			return nil, err
		}
		for b := 0; b < nb; b += 4 {
			paths = append(paths, int32(binary.LittleEndian.Uint32(buf[b:])))
		}
	}
	sx := &ShardIndex{n: int(n), lo: int(lo), hi: int(hi), k: int(k), r: int(fps), c: c, seed: seed, paths: paths}
	sx.pow = make([]float64, sx.k)
	w := 1.0
	for t := 0; t < sx.k; t++ {
		w *= sx.c
		sx.pow[t] = w
	}

	want := crc.Sum32()
	var sum [4]byte
	if err := readFull(br, nil, sum[:], "shard checksum"); err != nil {
		return nil, err
	}
	if got := binary.LittleEndian.Uint32(sum[:]); got != want {
		return nil, fmt.Errorf("%w: stored %08x, computed %08x", ErrChecksum, got, want)
	}
	for i, p := range sx.paths {
		if p < -1 || int64(p) >= n {
			return nil, fmt.Errorf("walkindex: shard path entry %d out of range: %d", i, p)
		}
	}
	return sx, nil
}
