// Package mtxsr implements mtx-SR, the SVD-based SimRank approximation of
// Li et al. (EDBT 2010), the paper's matrix-form baseline [14].
//
// Starting from the series form S = (1-C) sum_i C^i Q^i (Q^T)^i (Eq. 12)
// and a rank-r truncated SVD Q ~ U S V^T, powers collapse through the small
// matrix W = S V^T U:
//
//	Q^i (Q^T)^i ~ U W^(i-1) S^2 (W^T)^(i-1) U^T   (i >= 1)
//
// so S ~ (1-C) (I + C * U M U^T) where M is the r x r fixed point of
// M = S^2 + C W M W^T. The heavy objects are U (n x r) and the final
// materialization; this is why the paper finds mtx-SR at least an order of
// magnitude more memory-hungry than the partial-sums family and only usable
// on low-rank graphs like DBLP (its SVD "destroys the sparsity of a graph").
//
// The truncation error is uncontrolled on general digraphs — the paper
// points out the approximation-error bound is unknown for digraphs — so the
// package reports the achieved fixed-point residual but makes no accuracy
// promise beyond rank = n, where it recovers Eq. 12 exactly.
package mtxsr

import (
	"fmt"
	"math"
	"time"

	"oipsr/graph"
	"oipsr/internal/linalg"
	"oipsr/internal/par"
	"oipsr/internal/simmat"
)

// Options configure an mtx-SR run.
type Options struct {
	// C is the damping factor in (0,1). Defaults to 0.6.
	C float64
	// Rank is the SVD truncation rank r. Defaults to ceil(sqrt(n)), the
	// low-rank regime Li et al. target.
	Rank int
	// PowerIters is the number of subspace-iteration rounds. Defaults to 8.
	PowerIters int
	// SolveTol is the max-norm tolerance for the M fixed point. Defaults to
	// 1e-12.
	SolveTol float64
	// Seed seeds the randomized SVD start block.
	Seed int64
	// Workers sets the worker-pool size for the dense linear algebra
	// (operator applies, matmuls, the output materialization): 1 means
	// serial, anything below 1 means all CPUs. Scores are bit-identical for
	// every worker count — workers own disjoint output rows and the per-row
	// arithmetic does not depend on the partition.
	Workers int
}

// Stats reports phase times and the memory that makes mtx-SR explode
// relative to the partial-sums algorithms.
type Stats struct {
	Rank       int
	SVDTime    time.Duration
	SolveTime  time.Duration
	SolveIters int
	Residual   float64 // final fixed-point residual of M
	AuxBytes   int64   // U, V, M, W and scratch (excludes the output matrix)
}

type qOperator struct {
	g       *graph.Graph
	workers int
}

func (q qOperator) Dims() (int, int) {
	n := q.g.NumVertices()
	return n, n
}

// Apply computes dst = Q*x: row i of dst is the average of x's rows over
// I(i). Rows are independent, so the worker partition cannot change the
// result.
func (q qOperator) Apply(x, dst *linalg.Dense) {
	n := q.g.NumVertices()
	k := x.Cols()
	workers := par.ResolveMax(q.workers, n)
	par.Do(workers, func(w int) {
		lo, hi := par.Range(n, workers, w)
		for i := lo; i < hi; i++ {
			drow := dst.Row(i)
			for j := 0; j < k; j++ {
				drow[j] = 0
			}
			in := q.g.In(i)
			if len(in) == 0 {
				continue
			}
			inv := 1 / float64(len(in))
			for _, u := range in {
				xrow := x.Row(u)
				for j := 0; j < k; j++ {
					drow[j] += xrow[j]
				}
			}
			for j := 0; j < k; j++ {
				drow[j] *= inv
			}
		}
	})
}

// ApplyT computes dst = Q^T*x: dst[j] = sum over i in O(j) of x[i]/|I(i)|.
// Rows of dst are independent, as in Apply.
func (q qOperator) ApplyT(x, dst *linalg.Dense) {
	n := q.g.NumVertices()
	k := x.Cols()
	workers := par.ResolveMax(q.workers, n)
	par.Do(workers, func(w int) {
		lo, hi := par.Range(n, workers, w)
		for j := lo; j < hi; j++ {
			drow := dst.Row(j)
			for c := 0; c < k; c++ {
				drow[c] = 0
			}
			for _, i := range q.g.Out(j) {
				inv := 1 / float64(q.g.InDegree(i))
				xrow := x.Row(i)
				for c := 0; c < k; c++ {
					drow[c] += inv * xrow[c]
				}
			}
		}
	})
}

// Compute runs mtx-SR and returns the approximate similarity matrix.
func (o *Options) normalize(n int) error {
	if o.C == 0 {
		o.C = 0.6
	}
	if !(o.C > 0 && o.C < 1) {
		return fmt.Errorf("mtxsr: damping factor %v outside (0,1)", o.C)
	}
	if o.Rank == 0 {
		o.Rank = int(math.Ceil(math.Sqrt(float64(n))))
	}
	if o.Rank < 1 || o.Rank > n {
		return fmt.Errorf("mtxsr: rank %d out of range [1,%d]", o.Rank, n)
	}
	if o.PowerIters == 0 {
		o.PowerIters = 8
	}
	if o.SolveTol == 0 {
		o.SolveTol = 1e-12
	}
	return nil
}

// Compute runs mtx-SR on g.
func Compute(g *graph.Graph, opt Options) (*simmat.Matrix, *Stats, error) {
	n := g.NumVertices()
	if err := opt.normalize(n); err != nil {
		return nil, nil, err
	}
	st := &Stats{Rank: opt.Rank}

	t0 := time.Now()
	svd, err := linalg.TruncatedSVDWorkers(qOperator{g, opt.Workers}, opt.Rank, opt.PowerIters, opt.Seed, opt.Workers)
	if err != nil {
		return nil, nil, err
	}
	st.SVDTime = time.Since(t0)

	r := opt.Rank
	// W = diag(sigma) V^T U.
	t1 := time.Now()
	vtU := linalg.MulWorkers(svd.V.T(), svd.U, opt.Workers)
	w := linalg.NewDense(r, r)
	for i := 0; i < r; i++ {
		si := svd.Sigma[i]
		for j := 0; j < r; j++ {
			w.Set(i, j, si*vtU.At(i, j))
		}
	}
	// Fixed point M = Sigma^2 + C W M W^T.
	sigma2 := linalg.NewDense(r, r)
	for i := 0; i < r; i++ {
		sigma2.Set(i, i, svd.Sigma[i]*svd.Sigma[i])
	}
	m := sigma2.Copy()
	const maxSolveIters = 500
	for it := 0; it < maxSolveIters; it++ {
		next := linalg.Mul(linalg.Mul(w, m), w.T()).Scale(opt.C).AddInPlace(sigma2)
		st.Residual = linalg.MaxAbsDiff(next, m)
		m = next
		st.SolveIters = it + 1
		if st.Residual <= opt.SolveTol {
			break
		}
		if math.IsNaN(st.Residual) || st.Residual > 1e9 {
			return nil, nil, fmt.Errorf("mtxsr: fixed-point iteration diverged (residual %g after %d iters); graph is not low-rank enough", st.Residual, it+1)
		}
	}

	// S = (1-C) (I + C U M U^T). The materialization is the n^2 r hot loop;
	// output rows are disjoint, so it parallelizes bit-identically.
	um := linalg.MulWorkers(svd.U, m, opt.Workers) // n x r
	out := simmat.New(n)
	cf := (1 - opt.C) * opt.C
	workers := par.ResolveMax(opt.Workers, n)
	par.Do(workers, func(w int) {
		lo, hi := par.Range(n, workers, w)
		for i := lo; i < hi; i++ {
			umRow := um.Row(i)
			orow := out.Row(i)
			for j := 0; j < n; j++ {
				ujRow := svd.U.Row(j)
				dot := 0.0
				for k := 0; k < r; k++ {
					dot += umRow[k] * ujRow[k]
				}
				orow[j] = cf * dot
			}
			orow[i] += 1 - opt.C
		}
	})
	st.SolveTime = time.Since(t1)
	st.AuxBytes = svd.U.Bytes() + svd.V.Bytes() + int64(r)*8 +
		w.Bytes() + m.Bytes() + sigma2.Bytes() + um.Bytes()
	return out, st, nil
}
