package simmat

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func newTestStore(t *testing.T, opt TileOptions) *TileStore {
	t.Helper()
	s, err := NewTileStore(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// fillCanonical writes random values through SetRowUpper and mirrors them
// into a dense reference.
func fillCanonical(t *testing.T, tm *Tiled, rng *rand.Rand) *Matrix {
	t.Helper()
	n := tm.N()
	ref := New(n)
	row := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			row[j] = rng.Float64()
			ref.Set(i, j, row[j])
			ref.Set(j, i, row[j])
		}
		if err := tm.SetRowUpper(i, row); err != nil {
			t.Fatal(err)
		}
	}
	return ref
}

// TestTiledRoundTrip: SetRowUpper + At/RowInto reproduce a dense symmetric
// matrix exactly for many (n, B) shapes, including B = 1, B = n and ragged
// borders.
func TestTiledRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 7, 16, 33} {
		for _, b := range []int{1, 2, 3, 5, 16, 64} {
			s := newTestStore(t, TileOptions{BlockSize: b})
			tm, err := s.NewTiled(n)
			if err != nil {
				t.Fatal(err)
			}
			ref := fillCanonical(t, tm, rng)
			buf := make([]float64, n)
			for i := 0; i < n; i++ {
				if err := tm.RowInto(i, buf); err != nil {
					t.Fatal(err)
				}
				for j := 0; j < n; j++ {
					if buf[j] != ref.At(i, j) {
						t.Fatalf("n=%d B=%d: RowInto(%d)[%d] = %v, want %v", n, b, i, j, buf[j], ref.At(i, j))
					}
					if got := tm.At(i, j); got != ref.At(i, j) {
						t.Fatalf("n=%d B=%d: At(%d,%d) = %v, want %v", n, b, i, j, got, ref.At(i, j))
					}
				}
			}
			s.Close()
		}
	}
}

// TestTiledIdentityAndZero: fresh matrices read as zeros without
// materializing tiles; NewIdentity materializes only the diagonal.
func TestTiledIdentityAndZero(t *testing.T) {
	s := newTestStore(t, TileOptions{BlockSize: 4})
	z, err := s.NewTiled(10)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Metrics().ResidentBytes; got != 0 {
		t.Errorf("zero matrix resident bytes = %d, want 0", got)
	}
	id, err := s.NewIdentity(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if z.At(i, j) != 0 {
				t.Fatalf("zero At(%d,%d) != 0", i, j)
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("identity At(%d,%d) = %v, want %v", i, j, id.At(i, j), want)
			}
		}
	}
	// 3 diagonal tiles of a 10/4 grid: 4x4 + 4x4 + 2x2 = 36 cells.
	if got := s.Metrics().ResidentBytes; got != 36*8 {
		t.Errorf("identity resident bytes = %d, want %d", got, 36*8)
	}
}

// TestTiledSpillRoundTrip: a budget that cannot hold the working set forces
// spills; values survive eviction and reload bit-exactly, and the resident
// high-water mark respects the cap.
func TestTiledSpillRoundTrip(t *testing.T) {
	dir := t.TempDir()
	const n, b = 32, 8
	tileBytes := int64(b * b * 8)
	budget := 3 * tileBytes
	s := newTestStore(t, TileOptions{BlockSize: b, MaxMemoryBytes: budget, SpillDir: dir})
	tm, err := s.NewTiled(n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	ref := fillCanonical(t, tm, rng)
	m := s.Metrics()
	if m.Spills == 0 {
		t.Fatalf("no spills under budget %d with working set %d", budget, tm.Bytes())
	}
	if m.HighWaterBytes > budget {
		t.Errorf("high-water %d exceeds budget %d", m.HighWaterBytes, budget)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.tile"))
	if len(files) == 0 {
		t.Fatal("no spill files in SpillDir")
	}
	buf := make([]float64, n)
	for i := 0; i < n; i++ {
		if err := tm.RowInto(i, buf); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < n; j++ {
			if buf[j] != ref.At(i, j) {
				t.Fatalf("after spill: (%d,%d) = %v, want %v", i, j, buf[j], ref.At(i, j))
			}
		}
	}
	if s.Metrics().Loads == 0 {
		t.Error("reads touched no spilled tiles")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	files, _ = filepath.Glob(filepath.Join(dir, "*.tile"))
	if len(files) != 0 {
		t.Errorf("Close left %d spill files behind", len(files))
	}
}

// TestTiledCorruptSpillDetected: flipping a byte of a spill file must
// surface ErrTileChecksum on reload, and truncation must error too.
func TestTiledCorruptSpillDetected(t *testing.T) {
	dir := t.TempDir()
	const n, b = 16, 8
	s := newTestStore(t, TileOptions{BlockSize: b, MaxMemoryBytes: int64(b * b * 8), SpillDir: dir})
	tm, err := s.NewTiled(n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	fillCanonical(t, tm, rng)
	files, _ := filepath.Glob(filepath.Join(dir, "*.tile"))
	if len(files) == 0 {
		t.Fatal("expected spill files")
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)/2] ^= 0x40
	if err := os.WriteFile(files[0], corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, n)
	var readErr error
	for i := 0; i < n && readErr == nil; i++ {
		readErr = tm.RowInto(i, buf)
	}
	if !errors.Is(readErr, ErrTileChecksum) {
		t.Errorf("corrupted spill file: got %v, want ErrTileChecksum", readErr)
	}
	if err := os.WriteFile(files[0], data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	readErr = nil
	for i := 0; i < n && readErr == nil; i++ {
		readErr = tm.RowInto(i, buf)
	}
	if readErr == nil {
		t.Error("truncated spill file read back without error")
	}
}

// TestTiledBudgetTooSmall: a budget below one tile cannot be satisfied and
// must surface ErrMemoryBudget rather than thrash or panic.
func TestTiledBudgetTooSmall(t *testing.T) {
	s := newTestStore(t, TileOptions{BlockSize: 8, MaxMemoryBytes: 8, SpillDir: t.TempDir()})
	tm, err := s.NewTiled(16)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]float64, 16)
	err = tm.SetRowUpper(0, row)
	if !errors.Is(err, ErrMemoryBudget) {
		t.Errorf("got %v, want ErrMemoryBudget", err)
	}
}

// TestMaxDiffTiledMatchesDense on mixed materialized/zero tiles.
func TestMaxDiffTiledMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := newTestStore(t, TileOptions{BlockSize: 4})
	a, err := s.NewTiled(13)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.NewIdentity(13)
	if err != nil {
		t.Fatal(err)
	}
	da := fillCanonical(t, a, rng)
	db := NewIdentity(13)
	got, err := MaxDiffTiled(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if want := MaxDiff(da, db); got != want {
		t.Errorf("MaxDiffTiled = %v, dense MaxDiff = %v", got, want)
	}
}

// TestMirrorUpper: the dense canonicalization pass copies the upper
// triangle onto the lower one for every worker count.
func TestMirrorUpper(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, workers := range []int{1, 2, 5} {
		m := New(9)
		for i := 0; i < 9; i++ {
			for j := 0; j < 9; j++ {
				m.Set(i, j, rng.Float64())
			}
		}
		ref := m.Copy()
		m.MirrorUpper(workers)
		for i := 0; i < 9; i++ {
			for j := 0; j < 9; j++ {
				want := ref.At(i, j)
				if i > j {
					want = ref.At(j, i)
				}
				if m.At(i, j) != want {
					t.Fatalf("workers=%d: (%d,%d) = %v, want %v", workers, i, j, m.At(i, j), want)
				}
			}
		}
	}
}
