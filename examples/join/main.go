// Similarity join: find the most similar vertex pairs in a whole graph
// without computing (or storing) the Theta(n^2) all-pairs matrix.
//
// Builds a DBLP-like co-authorship graph, precomputes the walk index of
// simrank/query, and runs query.Join — the all-pairs top-k similarity
// join cmd/simrankd serves as POST /v1/join. The join enumerates only
// pairs whose random walkers ever co-locate at a depth the score
// threshold allows (the contribution-weight prune), then scores exactly
// those candidates, so its cost tracks the answer size rather than n^2.
// The top pairs are cross-checked here against the batch OIP-SR engine,
// which is exact but quadratic.
//
//	go run ./examples/join
package main

import (
	"context"
	"fmt"
	"log"

	"oipsr/graph/gen"
	"oipsr/simrank"
	"oipsr/simrank/query"
)

func main() {
	// Communities make the join non-trivial: co-authors inside one cluster
	// share in-neighbors and score high against each other.
	g := gen.CoauthorGraph(500, 4, 42)
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	idx, err := query.BuildIndex(g, query.Options{Walks: 400, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: R=%d walks of horizon K=%d per vertex (%d KiB)\n\n",
		idx.Walks(), idx.Horizon(), idx.Bytes()/1024)

	// The join: top 15 pairs scoring at least 0.2. Bit-identical for every
	// worker count; ErrTooDense would tell us the threshold admits more
	// candidate pairs than JoinOptions.MaxCandidates.
	const k, threshold = 15, 0.2
	pairs, err := idx.Join(context.Background(), k, threshold, &query.JoinOptions{Workers: 0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-%d similarity join at threshold %.2f: %d pairs\n\n", k, threshold, len(pairs))

	// Ground truth for the comparison column: the exact batch engine with
	// the same truncation — the Theta(n^2) computation the join avoids.
	exact, _, err := simrank.Compute(g, simrank.Options{
		Algorithm: simrank.OIPSR, C: idx.C(), K: idx.Horizon(),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%6s %6s | %9s %9s\n", "a", "b", "estimate", "exact")
	for _, p := range pairs {
		fmt.Printf("%6d %6d | %9.4f %9.4f\n", p.A, p.B, p.Score, exact.Score(p.A, p.B))
	}
	fmt.Println("\n(estimate = walk-index score, the same value SingleSource reports for the")
	fmt.Println(" pair; exact = converged OIP-SR. Estimates carry O(1/sqrt(R)) sampling error.)")
}
