// Package graph provides the directed-graph substrate used by all SimRank
// algorithms in this repository.
//
// A Graph is an immutable directed graph stored in compressed sparse row
// (CSR) form, indexed both ways: for every vertex v the graph exposes the
// sorted in-neighbor list I(v) and the sorted out-neighbor list O(v) as
// zero-copy slices. SimRank is defined in terms of in-neighbor sets, and the
// OIP-SR engine additionally walks out-neighbor lists to enumerate vertices
// whose in-neighbor sets overlap, so both directions are precomputed.
//
// Graphs are built through a Builder (see builder.go) or loaded from disk
// with the gio subpackage. Vertices are dense integers in [0, NumVertices()).
package graph

import "fmt"

// Graph is an immutable directed graph in dual-CSR form.
//
// The zero value is an empty graph with no vertices. All slices returned by
// accessor methods alias internal storage and must not be modified.
type Graph struct {
	n int // number of vertices
	m int // number of edges

	// In-CSR: inList[inStart[v]:inStart[v+1]] is the sorted in-neighbor
	// list of v, i.e. all u with an edge u->v.
	inStart []int
	inList  []int

	// Out-CSR: outList[outStart[v]:outStart[v+1]] is the sorted
	// out-neighbor list of v, i.e. all w with an edge v->w.
	outStart []int
	outList  []int
}

// NumVertices returns the number of vertices n.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the number of directed edges m.
func (g *Graph) NumEdges() int { return g.m }

// In returns the sorted in-neighbor list I(v). The slice aliases internal
// storage and must not be modified.
func (g *Graph) In(v int) []int {
	return g.inList[g.inStart[v]:g.inStart[v+1]]
}

// Out returns the sorted out-neighbor list O(v). The slice aliases internal
// storage and must not be modified.
func (g *Graph) Out(v int) []int {
	return g.outList[g.outStart[v]:g.outStart[v+1]]
}

// InDegree returns |I(v)|.
func (g *Graph) InDegree(v int) int {
	return g.inStart[v+1] - g.inStart[v]
}

// OutDegree returns |O(v)|.
func (g *Graph) OutDegree(v int) int {
	return g.outStart[v+1] - g.outStart[v]
}

// HasEdge reports whether the directed edge u->v exists. It runs in
// O(log |I(v)|) time via binary search on the in-neighbor list of v.
func (g *Graph) HasEdge(u, v int) bool {
	in := g.In(v)
	lo, hi := 0, len(in)
	for lo < hi {
		mid := (lo + hi) / 2
		if in[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(in) && in[lo] == u
}

// AvgInDegree returns m/n, the average in-degree d used throughout the paper
// (and equal to the average out-degree).
func (g *Graph) AvgInDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(g.m) / float64(g.n)
}

// Edges invokes fn for every directed edge (u, v) in increasing order of u
// and, within a source, increasing v. Iteration stops early if fn returns
// false.
func (g *Graph) Edges(fn func(u, v int) bool) {
	for u := 0; u < g.n; u++ {
		for _, v := range g.Out(u) {
			if !fn(u, v) {
				return
			}
		}
	}
}

// Transpose returns a new graph with every edge reversed. The in- and
// out-CSR arrays are swapped; the operation copies the underlying storage so
// the result is independent of the receiver.
func (g *Graph) Transpose() *Graph {
	t := &Graph{
		n:        g.n,
		m:        g.m,
		inStart:  append([]int(nil), g.outStart...),
		inList:   append([]int(nil), g.outList...),
		outStart: append([]int(nil), g.inStart...),
		outList:  append([]int(nil), g.inList...),
	}
	return t
}

// Validate checks internal CSR invariants: monotone offset arrays, neighbor
// ids in range, sorted and duplicate-free adjacency lists, and matching edge
// counts between the two CSR directions. It returns nil for a well-formed
// graph. It is primarily used by tests and by gio when loading untrusted
// input.
func (g *Graph) Validate() error {
	if g.n < 0 {
		return fmt.Errorf("graph: negative vertex count %d", g.n)
	}
	if len(g.inStart) != g.n+1 || len(g.outStart) != g.n+1 {
		return fmt.Errorf("graph: offset array length mismatch (n=%d, |inStart|=%d, |outStart|=%d)",
			g.n, len(g.inStart), len(g.outStart))
	}
	if err := validateCSR("in", g.n, g.inStart, g.inList); err != nil {
		return err
	}
	if err := validateCSR("out", g.n, g.outStart, g.outList); err != nil {
		return err
	}
	if len(g.inList) != g.m || len(g.outList) != g.m {
		return fmt.Errorf("graph: edge count mismatch (m=%d, |inList|=%d, |outList|=%d)",
			g.m, len(g.inList), len(g.outList))
	}
	return nil
}

func validateCSR(dir string, n int, start, list []int) error {
	if start[0] != 0 {
		return fmt.Errorf("graph: %s-CSR offset[0] = %d, want 0", dir, start[0])
	}
	if start[n] != len(list) {
		return fmt.Errorf("graph: %s-CSR offset[n] = %d, want %d", dir, start[n], len(list))
	}
	for v := 0; v < n; v++ {
		if start[v] > start[v+1] {
			return fmt.Errorf("graph: %s-CSR offsets not monotone at vertex %d", dir, v)
		}
		row := list[start[v]:start[v+1]]
		for i, u := range row {
			if u < 0 || u >= n {
				return fmt.Errorf("graph: %s-neighbor %d of vertex %d out of range [0,%d)", dir, u, v, n)
			}
			if i > 0 && row[i-1] >= u {
				return fmt.Errorf("graph: %s-neighbors of vertex %d not strictly sorted at index %d", dir, v, i)
			}
		}
	}
	return nil
}
