package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"time"

	"oipsr/graph"
	"oipsr/simrank/query"
)

// runUpdatesWorkload measures the dynamic-update path simrankd's
// POST /v1/edges exercises: incremental walk-index repair latency vs a
// full rebuild, across edit-batch sizes. The incremental path recomputes
// only walks through vertices whose in-neighbor list changed, so small
// batches should repair orders of magnitude faster than a rebuild; large
// batches show where the crossover lives. Repairs are verified
// bit-identical to the rebuild before any number is reported.
func runUpdatesWorkload(cfg config) {
	header("Dynamic updates: incremental repair vs full rebuild", "simrankd /v1/edges workload")

	const walks = 200
	batchSizes := []int{1, 10, 100, 1000}

	type workload struct {
		name string
		g    *graph.Graph
	}
	workloads := []workload{
		{"berkstan*", webGraph(cfg)},
		{"patent*", patentGraph(cfg)},
	}

	fmt.Printf("walks per vertex R=%d, workers=%d\n\n", walks, benchWorkers)
	fmt.Printf("%-10s | %7s %6s | %6s %8s %9s | %10s %10s %8s\n",
		"workload", "n", "batch", "dirty", "repaired", "repair", "rebuild", "prewarm", "speedup")

	for _, wl := range workloads {
		g := wl.g
		n := g.NumVertices()
		opt := query.Options{Walks: walks, Seed: cfg.seed, Workers: benchWorkers}
		base, err := query.BuildIndex(g, opt)
		must(err)
		// Snapshot the base index once; every batch size starts from a
		// pristine load of it, exactly like a restarted server would.
		var snap bytes.Buffer
		must(base.Save(&snap))

		for _, batch := range batchSizes {
			rng := rand.New(rand.NewSource(cfg.seed + int64(batch)))
			edits := randomEditBatch(rng, g, batch)
			g2, _, err := g.ApplyEdits(edits)
			must(err)

			inc, err := query.Load(bytes.NewReader(snap.Bytes()))
			must(err)
			must(inc.AttachGraph(g))
			// The one-time inverted-visit-index build is reported
			// separately: a serving process pays it once, not per batch.
			t0 := time.Now()
			must(inc.PrepareUpdates(benchWorkers))
			prewarm := time.Since(t0)

			t0 = time.Now()
			stats, err := inc.ApplyEdits(edits, benchWorkers)
			must(err)
			repair := time.Since(t0)

			t0 = time.Now()
			fresh, err := query.BuildIndex(g2, opt)
			must(err)
			rebuild := time.Since(t0)

			if !inc.Equal(fresh) {
				panic("updates workload: incremental repair not bit-identical to rebuild")
			}

			speedup := float64(rebuild) / float64(max(repair, 1))
			emitJSON("updates", map[string]any{
				"workload":        wl.name,
				"n":               n,
				"m":               g.NumEdges(),
				"walks":           walks,
				"batch":           batch,
				"edges_added":     stats.EdgesAdded,
				"edges_removed":   stats.EdgesRemoved,
				"dirty_vertices":  stats.DirtyVertices,
				"walks_repaired":  stats.WalksRepaired,
				"repair_seconds":  seconds(repair),
				"rebuild_seconds": seconds(rebuild),
				"prewarm_seconds": seconds(prewarm),
				"speedup":         speedup,
			})
			fmt.Printf("%-10s | %7d %6d | %6d %8d %9v | %10v %10v %7.1fx\n",
				wl.name, n, batch, stats.DirtyVertices, stats.WalksRepaired,
				repair.Round(time.Microsecond), rebuild.Round(time.Millisecond),
				prewarm.Round(time.Millisecond), speedup)
		}
	}
	fmt.Println("\n(repair = incremental ApplyEdits; prewarm = one-time inverted visit index build.")
	fmt.Println(" Every repair is verified bit-identical to the rebuilt index before timing is reported.)")
}

// randomEditBatch draws a mixed batch against g: half removals of existing
// edges, half adds of random pairs (some of which may be no-ops).
func randomEditBatch(rng *rand.Rand, g *graph.Graph, count int) []graph.Edit {
	n := g.NumVertices()
	var existing [][2]int
	g.Edges(func(u, v int) bool {
		existing = append(existing, [2]int{u, v})
		return true
	})
	edits := make([]graph.Edit, count)
	for i := range edits {
		if len(existing) > 0 && rng.Intn(2) == 0 {
			e := existing[rng.Intn(len(existing))]
			edits[i] = graph.Edit{Op: graph.EditRemove, U: e[0], V: e[1]}
		} else {
			edits[i] = graph.Edit{Op: graph.EditAdd, U: rng.Intn(n), V: rng.Intn(n)}
		}
	}
	return edits
}
