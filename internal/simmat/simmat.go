// Package simmat provides the dense n x n similarity-score matrix shared by
// every SimRank engine in this repository, along with the comparison
// utilities the tests and experiments use (max-norm distance, symmetry and
// range checks).
//
// All-pairs SimRank inherently produces Theta(n^2) scores; engines hold two
// such matrices (previous and next iterate). Rows are the natural unit of
// work — s_k(a, *) — so the matrix exposes zero-copy row access.
package simmat

import (
	"fmt"
	"math"

	"oipsr/internal/par"
)

// Matrix is a dense row-major n x n score matrix.
type Matrix struct {
	n    int
	data []float64
}

// New returns an all-zero n x n matrix.
func New(n int) *Matrix {
	return &Matrix{n: n, data: make([]float64, n*n)}
}

// NewIdentity returns the n x n identity, the s_0 of every iterative model.
func NewIdentity(n int) *Matrix {
	m := New(n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// N returns the dimension.
func (m *Matrix) N() int { return m.n }

// At returns m[i,j].
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.n+j] }

// Set assigns m[i,j] = v.
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.n+j] = v }

// Add increments m[i,j] by v.
func (m *Matrix) Add(i, j int, v float64) { m.data[i*m.n+j] += v }

// Row returns row i as a slice aliasing internal storage.
func (m *Matrix) Row(i int) []float64 { return m.data[i*m.n : (i+1)*m.n] }

// Data returns the backing slice (row-major). Intended for engines' inner
// loops; external callers should prefer At/Row.
func (m *Matrix) Data() []float64 { return m.data }

// Fill sets every entry to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.data {
		m.data[i] = v
	}
}

// Reset zeroes the matrix.
func (m *Matrix) Reset() { m.Fill(0) }

// Copy returns a deep copy.
func (m *Matrix) Copy() *Matrix {
	c := New(m.n)
	copy(c.data, m.data)
	return c
}

// Bytes reports the memory footprint of the backing array.
func (m *Matrix) Bytes() int64 { return int64(len(m.data)) * 8 }

// StateBytes reports the memory footprint of `matrices` dense n x n float64
// score matrices. It is the single definition of the n^2 "state memory"
// every engine reports, so per-engine accounting cannot drift.
func StateBytes(n, matrices int) int64 {
	return int64(matrices) * int64(n) * int64(n) * 8
}

// MaxDiff returns max_{i,j} |a[i,j] - b[i,j]|, the max-norm distance used by
// every convergence statement in the paper (Proposition 7 uses the max
// norm explicitly).
func MaxDiff(a, b *Matrix) float64 {
	if a.n != b.n {
		panic(fmt.Sprintf("simmat: dimension mismatch %d vs %d", a.n, b.n))
	}
	d := 0.0
	for i := range a.data {
		if x := math.Abs(a.data[i] - b.data[i]); x > d {
			d = x
		}
	}
	return d
}

// MaxDiffWorkers is MaxDiff computed by a pool of workers over contiguous
// blocks of the backing arrays. Max is order-independent, so the result is
// exactly MaxDiff for every worker count (workers < 1 = GOMAXPROCS).
func MaxDiffWorkers(a, b *Matrix, workers int) float64 {
	if a.n != b.n {
		panic(fmt.Sprintf("simmat: dimension mismatch %d vs %d", a.n, b.n))
	}
	workers = par.Resolve(workers)
	if workers == 1 {
		return MaxDiff(a, b)
	}
	local := make([]float64, workers)
	par.Do(workers, func(w int) {
		lo, hi := par.Range(len(a.data), workers, w)
		d := 0.0
		for i := lo; i < hi; i++ {
			if x := math.Abs(a.data[i] - b.data[i]); x > d {
				d = x
			}
		}
		local[w] = d
	})
	d := 0.0
	for _, x := range local {
		if x > d {
			d = x
		}
	}
	return d
}

// CheckSymmetric returns an error if |m[i,j] - m[j,i]| > tol anywhere.
// SimRank is symmetric by definition; engines must preserve this.
func (m *Matrix) CheckSymmetric(tol float64) error {
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return fmt.Errorf("simmat: asymmetry at (%d,%d): %g vs %g", i, j, m.At(i, j), m.At(j, i))
			}
		}
	}
	return nil
}

// CheckRange returns an error if any entry falls outside [lo-tol, hi+tol].
// Conventional SimRank scores lie in [0, 1].
func (m *Matrix) CheckRange(lo, hi, tol float64) error {
	for i, v := range m.data {
		if v < lo-tol || v > hi+tol {
			return fmt.Errorf("simmat: entry (%d,%d) = %g outside [%g,%g]", i/m.n, i%m.n, v, lo, hi)
		}
	}
	return nil
}
