package walkindex

import (
	"bytes"
	"math/rand"
	"testing"

	"oipsr/graph"
	"oipsr/graph/gen"
)

// saveLoadRoundTrip serializes ix and loads it back, so tests can exercise
// behavior on an index without in-memory derived state.
func saveLoadRoundTrip(t *testing.T, ix *Index) *Index {
	t.Helper()
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return loaded
}

// randomEdits draws a mixed add/remove batch against g: removals of
// existing edges, additions of arbitrary pairs (which may be no-ops).
func randomEdits(rng *rand.Rand, g *graph.Graph, count int) []graph.Edit {
	n := g.NumVertices()
	var existing [][2]int
	g.Edges(func(u, v int) bool {
		existing = append(existing, [2]int{u, v})
		return true
	})
	edits := make([]graph.Edit, count)
	for i := range edits {
		if len(existing) > 0 && rng.Intn(2) == 0 {
			e := existing[rng.Intn(len(existing))]
			edits[i] = graph.Edit{Op: graph.EditRemove, U: e[0], V: e[1]}
		} else {
			edits[i] = graph.Edit{Op: graph.EditAdd, U: rng.Intn(n), V: rng.Intn(n)}
		}
	}
	return edits
}

// TestUpdateBitIdenticalProperty is the acceptance property: for random
// edit batches on random graphs, Update produces an index Equal() to a
// fresh Build on the edited graph, for every worker count — including
// across chains of successive batches, which also exercises the
// incremental patching of the inverted visit index.
func TestUpdateBitIdenticalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(60)
		g := gen.ErdosRenyi(n, 2+rng.Intn(5*n), rng.Int63())
		opt := Options{Walks: 10 + rng.Intn(30), Seed: rng.Int63(), Workers: 1}

		for _, workers := range []int{1, 2, 3, 7} {
			opt.Workers = workers
			ix, err := Build(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			cur := g
			for batch := 0; batch < 3; batch++ {
				edits := randomEdits(rng, cur, 1+rng.Intn(12))
				next, sum, err := cur.ApplyEdits(edits)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := ix.Update(next, sum.DirtyIn, workers); err != nil {
					t.Fatal(err)
				}
				fresh, err := Build(next, opt)
				if err != nil {
					t.Fatal(err)
				}
				if !ix.Equal(fresh) {
					t.Fatalf("trial %d workers %d batch %d: Update != fresh Build (n=%d, %d edits, %d dirty)",
						trial, workers, batch, n, len(edits), len(sum.DirtyIn))
				}
				cur = next
			}
		}
	}
}

// TestUpdateResurrectsDeadWalks: adding an in-edge to a previously
// in-degree-0 vertex must revive the walks that died there.
func TestUpdateResurrectsDeadWalks(t *testing.T) {
	// 0 <- 1 <- 2; vertex 0 has in-degree 0, so every walk from any vertex
	// eventually dies at 0.
	g := graph.MustFromEdges(3, [][2]int{{0, 1}, {1, 2}})
	ix, err := Build(g, Options{Walks: 20, K: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// All of vertex 0's walks are dead from the first step.
	for fp := 0; fp < 20; fp++ {
		if ix.store.Row(0)[fp*6] != -1 {
			t.Fatalf("walk (0,%d) alive on a source vertex", fp)
		}
	}
	g2, sum, err := g.ApplyEdits([]graph.Edit{{Op: graph.EditAdd, U: 2, V: 0}})
	if err != nil {
		t.Fatal(err)
	}
	changed, err := ix.Update(g2, sum.DirtyIn, 1)
	if err != nil {
		t.Fatal(err)
	}
	if changed == 0 {
		t.Fatal("cycle-closing edit repaired no walks")
	}
	fresh, err := Build(g2, Options{Walks: 20, K: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Equal(fresh) {
		t.Fatal("resurrected index != fresh build")
	}
	// On the 0->1->2->0 cycle no walk can die anymore.
	for v := 0; v < ix.n; v++ {
		for i, p := range ix.store.Row(v) {
			if p == -1 {
				t.Fatalf("path entry %d of vertex %d still dead after the cycle closed", i, v)
			}
		}
	}
}

// TestUpdateNoopBatch: a dirty set that changes nothing repairs nothing
// and leaves the index bit-identical.
func TestUpdateNoopBatch(t *testing.T) {
	g := gen.WebGraph(40, 5, 3)
	ix, err := Build(g, Options{Walks: 15, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	before, err := Build(g, Options{Walks: 15, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	changed, err := ix.Update(g, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if changed != 0 {
		t.Fatalf("empty dirty set repaired %d walks", changed)
	}
	// Extra dirty vertices whose in-lists did not change are harmless.
	changed, err = ix.Update(g, []int{0, 1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Equal(before) {
		t.Fatalf("no-op update changed the index (%d walks repaired)", changed)
	}
}

// TestUpdateAfterLoad: the visit index is derived state, so Update must
// work on a Load()ed index exactly as on the original.
func TestUpdateAfterLoad(t *testing.T) {
	g := gen.CitationGraph(50, 4, 8)
	opt := Options{Walks: 25, Seed: 13}
	ix, err := Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	loaded := saveLoadRoundTrip(t, ix)

	g2, sum, err := g.ApplyEdits([]graph.Edit{
		{Op: graph.EditAdd, U: 7, V: 3},
		{Op: graph.EditRemove, U: g.In(1)[0], V: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.Update(g2, sum.DirtyIn, 2); err != nil {
		t.Fatal(err)
	}
	fresh, err := Build(g2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Equal(fresh) {
		t.Fatal("update after Load != fresh build")
	}
}

func TestUpdateValidation(t *testing.T) {
	g := gen.WebGraph(20, 4, 1)
	ix, err := Build(g, Options{Walks: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	other := gen.WebGraph(21, 4, 1)
	if _, err := ix.Update(other, nil, 1); err == nil {
		t.Error("Update accepted a graph with a different vertex count")
	}
	if _, err := ix.Update(g, []int{-1}, 1); err == nil {
		t.Error("Update accepted a negative dirty vertex")
	}
	if _, err := ix.Update(g, []int{20}, 1); err == nil {
		t.Error("Update accepted an out-of-range dirty vertex")
	}
}
