// Package dsr implements the paper's second contribution (Section IV): the
// differential SimRank model defined by the matrix ODE of Definition 2,
//
//	dS^(t)/dt = Q S^(t) Q^T,  S^(0) = e^-C I_n,  S^ := S^(C),
//
// whose exact solution is the exponential series of Eq. 13. Instead of the
// Euler method (whose step size is hard to pick), the engine runs the
// paper's iteration Eq. 15:
//
//	T_{k+1} = Q T_k Q^T
//	S^_{k+1} = S^_k + e^-C * C^(k+1)/(k+1)! * T_{k+1}
//
// with T_0 = I and S^_0 = e^-C I. The error after k steps is bounded by
// C^(k+1)/(k+1)! (Proposition 7), so for accuracy eps the engine runs the
// exact iteration count of numeric.IterationsDifferentialExact — an
// exponential improvement over the conventional model's geometric rate.
//
// The T recurrence has exactly the shape of Eq. 2 without the damping
// factor, so the OIP machinery of Section III applies unchanged: this engine
// drives the same partial-sums-sharing Sweeper as OIP-SR (the combination
// the paper calls OIP-DSR).
package dsr

import (
	"fmt"
	"math"
	"time"

	"oipsr/graph"
	"oipsr/internal/core"
	"oipsr/internal/numeric"
	"oipsr/internal/par"
	"oipsr/internal/partition"
	"oipsr/internal/simmat"
)

// Options configure an OIP-DSR computation.
type Options struct {
	// C is the damping factor in (0,1). Defaults to 0.6.
	C float64

	// K is the number of iterations of Eq. 15. If zero it is derived from
	// Eps via Proposition 7 (smallest k with C^(k+1)/(k+1)! <= Eps).
	K int

	// Eps is the desired accuracy used when K == 0; defaults to 1e-3.
	Eps float64

	// Partition forwards to DMST-Reduce.
	Partition partition.Options

	// DisableSharing computes T_{k+1} with plain psum-style partial sums
	// instead of OIP sharing (the paper's "DSR without OIP" configuration,
	// used to isolate the convergence-rate gain from the sharing gain).
	DisableSharing bool

	// Workers sets the sweep worker-pool size: 1 means serial, anything
	// below 1 means runtime.GOMAXPROCS(0). Scores and operation counts are
	// bit-identical for every value (see the core package comment).
	Workers int

	// Tile selects the tiled score-matrix backend when Tile.BlockSize > 0
	// (ComputeTiled only; Compute ignores it).
	Tile simmat.TileOptions
}

func (o *Options) normalize() error {
	if o.C == 0 {
		o.C = 0.6
	}
	if !(o.C > 0 && o.C < 1) {
		return fmt.Errorf("dsr: damping factor %v outside (0,1)", o.C)
	}
	if o.K < 0 {
		return fmt.Errorf("dsr: negative iteration count %d", o.K)
	}
	if o.K == 0 {
		if o.Eps == 0 {
			o.Eps = 1e-3
		}
		if !(o.Eps > 0 && o.Eps < 1) {
			return fmt.Errorf("dsr: accuracy eps %v outside (0,1)", o.Eps)
		}
		o.K = numeric.IterationsDifferentialExact(o.C, o.Eps)
	}
	return nil
}

// Stats mirrors core.Stats for the differential engine.
type Stats struct {
	Iterations int
	PlanTime   time.Duration
	SweepTime  time.Duration

	InnerAdds  int64
	OuterAdds  int64
	AuxBytes   int64 // plan + sweep buffers (the paper's "intermediate memory")
	StateBytes int64 // n^2 state: accumulator plus the two auxiliary T_k matrices

	NumSets          int
	PlanAdditions    int
	ScratchAdditions int
	ShareRatio       float64
	AvgDiff          float64

	// Tile reports the tile store's accounting (ComputeTiled only).
	Tile simmat.TileMetrics
}

// Compute runs the differential SimRank iteration Eq. 15 and returns S^_K
// with run statistics.
func Compute(g *graph.Graph, opt Options) (*simmat.Matrix, *Stats, error) {
	if err := opt.normalize(); err != nil {
		return nil, nil, err
	}
	st := &Stats{}

	t0 := time.Now()
	var plan *partition.Plan
	if opt.DisableSharing {
		plan = partition.TrivialPlan(g)
	} else {
		var err error
		plan, err = partition.BuildPlan(g, opt.Partition)
		if err != nil {
			return nil, nil, err
		}
	}
	st.PlanTime = time.Since(t0)
	st.NumSets = plan.NumSets
	st.PlanAdditions = plan.Additions
	st.ScratchAdditions = plan.ScratchAdditions
	st.ShareRatio = plan.ShareRatio()
	st.AvgDiff = plan.AvgDiff

	n := g.NumVertices()
	expC := math.Exp(-opt.C)

	// S^_0 = e^-C I; T_0 = I.
	acc := simmat.New(n)
	for i := 0; i < n; i++ {
		acc.Set(i, i, expC)
	}
	tPrev := simmat.NewIdentity(n)
	tNext := simmat.New(n)
	sw := core.NewParallelSweeper(g, plan, opt.DisableSharing, opt.Workers)
	workers := sw.Workers()

	t1 := time.Now()
	coeff := expC
	for k := 0; k < opt.K; k++ {
		// T_{k+1} = Q T_k Q^T via the shared sweep (damp=1, free diagonal).
		sw.Sweep(tPrev, tNext, 1, false)
		st.Iterations++
		coeff *= opt.C / float64(k+1) // e^-C * C^(k+1)/(k+1)!
		ad, td := acc.Data(), tNext.Data()
		// Element-wise, so splitting across workers is bit-identical.
		par.Do(workers, func(w int) {
			lo, hi := par.Range(len(ad), workers, w)
			for i := lo; i < hi; i++ {
				ad[i] += coeff * td[i]
			}
		})
		tPrev, tNext = tNext, tPrev
	}
	st.SweepTime = time.Since(t1)
	sws := sw.Stats()
	st.InnerAdds, st.OuterAdds = sws.InnerAdds, sws.OuterAdds
	st.AuxBytes = sw.AuxBytes() + plan.Bytes()
	st.StateBytes = acc.Bytes() + tPrev.Bytes() + tNext.Bytes()
	return acc, st, nil
}

// ComputeTiled runs the differential iteration against the tiled backend
// selected by opt.Tile: the accumulator and both T_k ping-pong iterates
// share one TileStore, so opt.Tile's MaxMemoryBytes bounds the whole 3n^2
// state. Scores are bit-identical to Compute for every block size and
// worker count. The caller owns the result: Close it to release the store.
func ComputeTiled(g *graph.Graph, opt Options) (*simmat.Tiled, *Stats, error) {
	if err := opt.normalize(); err != nil {
		return nil, nil, err
	}
	store, err := simmat.NewTileStore(opt.Tile)
	if err != nil {
		return nil, nil, err
	}
	fail := func(err error) (*simmat.Tiled, *Stats, error) {
		store.Close()
		return nil, nil, err
	}
	st := &Stats{}

	t0 := time.Now()
	var plan *partition.Plan
	if opt.DisableSharing {
		plan = partition.TrivialPlan(g)
	} else {
		plan, err = partition.BuildPlan(g, opt.Partition)
		if err != nil {
			return fail(err)
		}
	}
	st.PlanTime = time.Since(t0)
	st.NumSets = plan.NumSets
	st.PlanAdditions = plan.Additions
	st.ScratchAdditions = plan.ScratchAdditions
	st.ShareRatio = plan.ShareRatio()
	st.AvgDiff = plan.AvgDiff

	n := g.NumVertices()
	expC := math.Exp(-opt.C)

	acc, err := store.NewDiagonal(n, expC) // S^_0 = e^-C I
	if err != nil {
		return fail(err)
	}
	tPrev, err := store.NewIdentity(n) // T_0 = I
	if err != nil {
		return fail(err)
	}
	tNext, err := store.NewTiled(n)
	if err != nil {
		return fail(err)
	}
	sw := core.NewParallelSweeper(g, plan, opt.DisableSharing, opt.Workers)
	workers := sw.Workers()

	t1 := time.Now()
	coeff := expC
	for k := 0; k < opt.K; k++ {
		if err := sw.SweepTiled(tPrev, tNext, 1, false); err != nil {
			return fail(err)
		}
		st.Iterations++
		coeff *= opt.C / float64(k+1) // e^-C * C^(k+1)/(k+1)!
		if err := acc.AddScaled(tNext, coeff, workers); err != nil {
			return fail(err)
		}
		tPrev, tNext = tNext, tPrev
	}
	st.SweepTime = time.Since(t1)
	sws := sw.Stats()
	st.InnerAdds, st.OuterAdds = sws.InnerAdds, sws.OuterAdds
	st.AuxBytes = sw.AuxBytes() + plan.Bytes()
	st.StateBytes = acc.Bytes() + tPrev.Bytes() + tNext.Bytes()
	tPrev.Release()
	tNext.Release()
	st.Tile = store.Metrics()
	return acc, st, nil
}
