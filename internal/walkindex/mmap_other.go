//go:build !unix

package walkindex

import (
	"errors"
	"os"
)

var errNoMmap = errors.New("walkindex: mmap not supported on this platform")

// mmapFile always fails here; fileBacking falls back to ReadAt.
func mmapFile(*os.File, int64) ([]byte, error) {
	return nil, errNoMmap
}

func munmapFile([]byte) error { return nil }
