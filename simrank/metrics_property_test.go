package simrank

import (
	"math"
	"math/rand"
	"testing"
)

// Property checks on the public metrics wrappers (the implementations have
// their own property suite in internal/eval; this pins the exported
// surface to the same laws).
func TestMetricsProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(20)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i], b[i] = rng.Float64(), rng.Float64()
		}
		if KendallTau(a, b) != KendallTau(b, a) {
			t.Fatal("KendallTau not symmetric")
		}
		if rho := SpearmanRho(a, b); rho < -1-1e-12 || rho > 1+1e-12 {
			t.Fatalf("SpearmanRho = %v outside [-1,1]", rho)
		}
		ideal := rng.Perm(n)
		rel := GradeByRank(n, ideal, []int{n / 3, 2 * n / 3})
		ranking := rng.Perm(n)
		if v := NDCG(rel, ranking, n); v < 0 || v > 1+1e-12 || math.IsNaN(v) {
			t.Fatalf("NDCG = %v outside [0,1]", v)
		}
		if v := NDCG(rel, ideal, n); math.Abs(v-1) > 1e-12 {
			t.Fatalf("NDCG of the grading's own ideal ranking = %v, want 1", v)
		}
		if ov := TopKOverlap(ideal, ideal); ov != 1 {
			t.Fatalf("TopKOverlap(x,x) = %v", ov)
		}
		if inv := Inversions(ideal, ideal); inv != 0 {
			t.Fatalf("Inversions(x,x) = %d", inv)
		}
	}
}
