package simrankd

import (
	"context"
	"sync/atomic"
	"time"
)

// Deadline-aware degradation. An exact rerank multiplies a top-k request's
// cost by orders of magnitude (the pruned partial-sums recursion per
// candidate vs one pass over a precomputed row). Under a deadline that the
// rerank would blow, the server can still answer well: the raw walk
// estimates are already computed — the rerank only re-scores their top
// pool — so serving them is free, and the paper's own accuracy story says
// they are good estimates, not garbage. Degraded responses carry
// "degraded":true and the X-Simrank-Degraded header, are never cached, and
// are bit-identical to what rerank=0 would have returned.
//
// The cost model is an EWMA of measured per-candidate rerank nanoseconds,
// updated after every exact rerank this process serves (single top-k and
// batch chunks both feed it). Before the first completed rerank there is
// no estimate and nothing degrades — the first request simply tries, and
// either completes (seeding the model) or times out into a clean 503.
//
// ?engine=linearized requests degrade by the same rules through a second
// EWMA cell: when the remaining deadline cannot afford an exact
// single-source solve (whole-query cost, observed after every steady-state
// solve), the request is served the walk estimates instead — marked
// degraded, never cached — exactly like a rerank the budget cannot afford.

// rerankSafety is the headroom multiplier on the estimated rerank cost: a
// rerank is only attempted when at least twice its EWMA estimate remains,
// because blowing the deadline mid-rerank wastes everything while
// degrading a borderline request costs one field.
const rerankSafety = 2

// rerankEWMAWeight is the denominator of the EWMA step: each observation
// moves the estimate by 1/8 of the difference — smooth enough to ride out
// one anomalous request, fast enough to track a cache gone cold within a
// dozen requests.
const rerankEWMAWeight = 8

// ewmaObserve folds one observation (nanoseconds) into cell: the first
// observation seeds the estimate outright, later ones move it by
// 1/rerankEWMAWeight of the difference.
func ewmaObserve(cell *atomic.Uint64, obs int64) {
	if obs < 1 {
		obs = 1
	}
	for {
		old := cell.Load()
		if old == 0 {
			// First observation seeds the estimate outright.
			if cell.CompareAndSwap(0, uint64(obs)) {
				return
			}
			continue
		}
		step := (obs - int64(old)) / rerankEWMAWeight
		if step == 0 && obs != int64(old) {
			// Small differences must still move the estimate, or it
			// freezes near the first observation.
			if obs > int64(old) {
				step = 1
			} else {
				step = -1
			}
		}
		if cell.CompareAndSwap(old, uint64(int64(old)+step)) {
			return
		}
	}
}

// observeRerank folds one completed exact rerank of `candidates` pool
// entries into the per-candidate cost EWMA.
func (sv *serving) observeRerank(elapsed time.Duration, candidates int) {
	if candidates <= 0 {
		return
	}
	ewmaObserve(&sv.rerankNanosPerCand, elapsed.Nanoseconds()/int64(candidates))
}

// observeExact folds one completed exact (linearized) single-source solve
// into the whole-query cost EWMA. Callers skip the call that also paid the
// one-time diagonal solve, so the model tracks steady-state query cost.
func (sv *serving) observeExact(elapsed time.Duration) {
	ewmaObserve(&sv.exactNanos, elapsed.Nanoseconds())
}

// shouldDegrade reports whether an exact rerank of `candidates` pool
// entries no longer fits the request's remaining deadline budget. No
// deadline or no cost estimate yet means never degrade.
func (sv *serving) shouldDegrade(ctx context.Context, candidates int) bool {
	deadline, ok := ctx.Deadline()
	if !ok || candidates <= 0 {
		return false
	}
	per := sv.rerankNanosPerCand.Load()
	if per == 0 {
		return false
	}
	need := time.Duration(per*uint64(candidates)) * rerankSafety
	return time.Until(deadline) < need
}

// shouldDegradeExact reports whether an exact (linearized) single-source
// solve no longer fits the request's remaining deadline budget. As with
// shouldDegrade, no deadline or no cost estimate yet means never degrade —
// the first exact query simply tries, and either completes (seeding the
// model) or times out into a clean 503.
func (sv *serving) shouldDegradeExact(ctx context.Context) bool {
	deadline, ok := ctx.Deadline()
	if !ok {
		return false
	}
	per := sv.exactNanos.Load()
	if per == 0 {
		return false
	}
	need := time.Duration(per) * rerankSafety
	return time.Until(deadline) < need
}
