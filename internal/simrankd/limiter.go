package simrankd

import (
	"context"
	"net/http"
	"strconv"
	"time"
)

// Admission control. Every /v1 endpoint runs behind limited(), which does
// three things before the handler sees the request:
//
//  1. attaches the request deadline — the configured RequestTimeout,
//     shortened (never extended) by a ?timeout_ms= override — so the
//     query layer can abandon work the client will no longer wait for;
//  2. acquires one of maxInflight execution slots, waiting in a bounded
//     queue of queueDepth when all are busy — a burst briefly queues
//     instead of failing, sustained overload fails fast;
//  3. sheds with 429 + Retry-After once the queue is full, and with 503
//     when the deadline expires while still queued — the two signals a
//     load balancer needs to back off instead of piling on.
//
// The whole request, queue wait included, is folded into the latency
// histogram: under overload the queue IS the latency, and a histogram
// that hides it would report a healthy server while clients time out.

// limited wraps a /v1 handler with deadline attachment and the
// concurrency limiter.
func (sv *serving) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		defer func() { sv.latency.Observe(time.Since(t0)) }()

		// The override is read from the URL only: FormValue would consume
		// a POST body, and /v1/batch, /v1/join, /v1/edges carry JSON there.
		timeout := sv.requestTimeout
		if raw := r.URL.Query().Get("timeout_ms"); raw != "" {
			ms, err := strconv.Atoi(raw)
			if err != nil || ms < 1 {
				sv.writeError(w, http.StatusBadRequest, "parameter \"timeout_ms\": want a positive integer, got %q", raw)
				return
			}
			// The server's timeout is also the cap: a client may ask for
			// less time than the default, never more.
			if d := time.Duration(ms) * time.Millisecond; timeout == 0 || d < timeout {
				timeout = d
			}
		}
		if timeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), timeout)
			defer cancel()
			r = r.WithContext(ctx)
		}

		select {
		case sv.sem <- struct{}{}:
		default:
			// All slots busy: reserve a queue position, shed if over.
			if sv.queued.Add(1) > int64(sv.queueDepth) {
				sv.queued.Add(-1)
				sv.shedTotal.Add(1)
				w.Header().Set("Retry-After", "1")
				sv.writeError(w, http.StatusTooManyRequests,
					"server saturated: %d requests in flight and %d queued; retry with backoff",
					sv.maxInflight, sv.queueDepth)
				return
			}
			select {
			case sv.sem <- struct{}{}:
				sv.queued.Add(-1)
			case <-r.Context().Done():
				sv.queued.Add(-1)
				sv.writeQueryError(w, r.Context().Err(), http.StatusServiceUnavailable)
				return
			}
		}
		sv.inflight.Add(1)
		defer func() {
			sv.inflight.Add(-1)
			<-sv.sem
		}()
		if sv.testHookInflight != nil {
			sv.testHookInflight(r)
		}
		h(w, r)
	}
}
