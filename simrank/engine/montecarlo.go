package engine

import (
	"context"

	"oipsr/graph"
	"oipsr/internal/montecarlo"
	"oipsr/internal/simmat"
)

func init() { Register(monteCarloEngine{base{MonteCarlo}}) }

// monteCarloEngine is the Fogaras-Racz first-meeting-time estimator.
type monteCarloEngine struct{ base }

func (monteCarloEngine) Caps() Caps { return Caps{AllPairs: true} }

func (monteCarloEngine) Compute(_ context.Context, g *graph.Graph, p Params) (simmat.Source, *Stats, error) {
	m, st, err := montecarlo.Compute(g, montecarlo.Options{
		C:       p.C,
		K:       p.K,
		Eps:     p.Eps,
		Walks:   p.Walks,
		Seed:    p.Seed,
		Workers: p.Workers,
	})
	if err != nil {
		return nil, nil, err
	}
	return m, &Stats{
		Algorithm:   MonteCarlo,
		Iterations:  st.Walks,
		ComputeTime: st.Elapsed,
		AuxBytes:    st.AuxBytes,
		StateBytes:  simmat.StateBytes(g.NumVertices(), 1),
	}, nil
}
