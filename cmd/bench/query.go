package main

import (
	"context"
	"fmt"
	"sort"
	"time"

	"oipsr/graph"
	"oipsr/graph/gen"
	"oipsr/internal/eval"
	"oipsr/simrank"
	"oipsr/simrank/query"
)

// runQueryWorkload measures the serving layer: walk-index build time and
// size, single-source and top-k query latency (p50/p99), and — on a small
// graph where exact OIP-SR is cheap — top-k precision of the index with
// and without exact reranking. This is the workload cmd/simrankd puts
// online; the batch experiments measure throughput of computing
// everything, this one measures latency of answering one question.
func runQueryWorkload(cfg config) {
	header("Query serving: walk index latency & accuracy", "simrankd workload")

	const (
		walks = 200
		topK  = 10
	)
	type workload struct {
		name string
		g    *graph.Graph
	}
	workloads := []workload{
		{"berkstan*", webGraph(cfg)},
		{"patent*", patentGraph(cfg)},
		{"web-small", gen.WebGraph(200, 8, cfg.seed)}, // precision reference fits exact OIP-SR
	}

	fmt.Printf("walks per vertex R=%d, top-k=%d, workers=%d\n\n", walks, topK, benchWorkers)
	fmt.Printf("%-10s | %7s %9s %9s | %9s %9s | %9s %9s | %9s %9s\n",
		"workload", "n", "build", "idx bytes",
		"ss p50", "ss p99", "topk p50", "topk p99", "rr p50", "rr p99")

	for _, wl := range workloads {
		g := wl.g
		n := g.NumVertices()

		t0 := time.Now()
		idx, err := query.BuildIndex(g, query.Options{Walks: walks, Seed: cfg.seed, Workers: benchWorkers})
		must(err)
		buildTime := time.Since(t0)

		queries := queryVertices(n, 64)
		ssP50, ssP99 := latencies(queries, func(q int) {
			_, err := idx.SingleSource(context.Background(), q)
			must(err)
		})
		tkP50, tkP99 := latencies(queries, func(q int) {
			_, err := idx.TopK(context.Background(), q, topK, nil)
			must(err)
		})
		rrP50, rrP99 := latencies(queries, func(q int) {
			_, err := idx.TopK(context.Background(), q, topK, &query.TopKOptions{Rerank: true})
			must(err)
		})

		rec := map[string]any{
			"workload":          wl.name,
			"n":                 n,
			"m":                 g.NumEdges(),
			"walks":             walks,
			"horizon":           idx.Horizon(),
			"k":                 topK,
			"build_seconds":     seconds(buildTime),
			"index_bytes":       idx.Bytes(),
			"single_source_p50": seconds(ssP50),
			"single_source_p99": seconds(ssP99),
			"topk_p50":          seconds(tkP50),
			"topk_p99":          seconds(tkP99),
			"topk_rerank_p50":   seconds(rrP50),
			"topk_rerank_p99":   seconds(rrP99),
		}

		// Exact OIP-SR ground truth is Theta(n^2): only on the small graph.
		if n <= 400 {
			exact, _, err := simrank.Compute(g, simrank.Options{
				Algorithm: simrank.OIPSR, C: idx.C(), K: idx.Horizon(), Workers: benchWorkers,
			})
			must(err)
			var sumRaw, sumRerank float64
			for _, q := range queries {
				raw, err := idx.TopK(context.Background(), q, topK, nil)
				must(err)
				rr, err := idx.TopK(context.Background(), q, topK, &query.TopKOptions{Rerank: true})
				must(err)
				sumRaw += precisionAtK(exact.Row(q), q, raw, topK)
				sumRerank += precisionAtK(exact.Row(q), q, rr, topK)
			}
			rec["precision_raw"] = sumRaw / float64(len(queries))
			rec["precision_rerank"] = sumRerank / float64(len(queries))
		}
		emitJSON("query", rec)

		fmt.Printf("%-10s | %7d %9v %9d | %9v %9v | %9v %9v | %9v %9v\n",
			wl.name, n, buildTime.Round(time.Millisecond), idx.Bytes(),
			ssP50.Round(time.Microsecond), ssP99.Round(time.Microsecond),
			tkP50.Round(time.Microsecond), tkP99.Round(time.Microsecond),
			rrP50.Round(time.Microsecond), rrP99.Round(time.Microsecond))
		if p, ok := rec["precision_raw"]; ok {
			fmt.Printf("%-10s | precision@%d vs exact OIP-SR: raw %.3f, reranked %.3f\n",
				"", topK, p, rec["precision_rerank"])
		}
	}
	fmt.Println("\n(ss = single-source; rr = top-k with exact rerank. Index size is 4*n*R*K bytes.)")
}

// queryVertices spreads count query vertices evenly over [0, n).
func queryVertices(n, count int) []int {
	if count > n {
		count = n
	}
	qs := make([]int, count)
	for i := range qs {
		qs[i] = i * n / count
	}
	return qs
}

// latencies runs fn once per query vertex and returns the p50 and p99 of
// the per-call wall times.
func latencies(queries []int, fn func(q int)) (p50, p99 time.Duration) {
	durs := make([]time.Duration, len(queries))
	for i, q := range queries {
		t0 := time.Now()
		fn(q)
		durs[i] = time.Since(t0)
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	return percentile(durs, 50), percentile(durs, 99)
}

func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := len(sorted) * p / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// precisionAtK adapts eval.PrecisionAtK (the same tie-fair threshold
// metric the simrank/query accuracy tests assert on) to a []query.Ranked
// result list.
func precisionAtK(exactRow []float64, q int, got []query.Ranked, k int) float64 {
	ids := make([]int, len(got))
	for i, r := range got {
		ids[i] = r.Vertex
	}
	return eval.PrecisionAtK(exactRow, q, ids, k)
}
