package linalg

import (
	"fmt"
	"math"
	"sort"
)

// SymEig computes the eigendecomposition of a small symmetric matrix a via
// the cyclic Jacobi rotation method: a = v * diag(w) * v^T with eigenvalues
// w sorted in decreasing order and orthonormal eigenvector columns in v.
// The input is not modified. Intended for the r x r Rayleigh-Ritz matrices
// of the truncated SVD (r is the low rank, typically <= a few hundred).
func SymEig(a *Dense) (w []float64, v *Dense) {
	n := a.Rows()
	if a.Cols() != n {
		panic(fmt.Sprintf("linalg: SymEig needs a square matrix, got %dx%d", n, a.Cols()))
	}
	m := a.Copy()
	v = Identity(n)

	const maxSweeps = 60
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.At(i, j) * m.At(i, j)
			}
		}
		if off < 1e-28*float64(n*n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Apply the rotation to rows/cols p and q of m.
				for k := 0; k < n; k++ {
					akp, akq := m.At(k, p), m.At(k, q)
					m.Set(k, p, c*akp-s*akq)
					m.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := m.At(p, k), m.At(q, k)
					m.Set(p, k, c*apk-s*aqk)
					m.Set(q, k, s*apk+c*aqk)
				}
				// Accumulate eigenvectors.
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	w = make([]float64, n)
	for i := 0; i < n; i++ {
		w[i] = m.At(i, i)
	}
	// Sort eigenpairs by decreasing eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return w[idx[i]] > w[idx[j]] })
	ws := make([]float64, n)
	vs := NewDense(n, n)
	for newCol, oldCol := range idx {
		ws[newCol] = w[oldCol]
		for i := 0; i < n; i++ {
			vs.Set(i, newCol, v.At(i, oldCol))
		}
	}
	return ws, vs
}
