package linalg

import (
	"fmt"
	"math"
	"math/rand"
)

// Operator is a matrix presented only through products with dense blocks.
// The SVD routine uses it so that sparse matrices (like the SimRank
// transition matrix Q) are never materialized.
type Operator interface {
	// Dims returns the operator's (rows, cols).
	Dims() (r, c int)
	// Apply computes dst = A*x for a cols x k block x, writing a rows x k
	// block into dst.
	Apply(x, dst *Dense)
	// ApplyT computes dst = A^T*x for a rows x k block x, writing a
	// cols x k block into dst.
	ApplyT(x, dst *Dense)
}

// SVDResult holds a truncated singular value decomposition A ~ U S V^T.
type SVDResult struct {
	U     *Dense    // rows x r, orthonormal columns (left singular vectors)
	V     *Dense    // cols x r, orthonormal columns (right singular vectors)
	Sigma []float64 // r singular values, decreasing
}

// TruncatedSVD computes the top-rank singular triplets of op via subspace
// iteration on A A^T with Rayleigh-Ritz extraction:
//
//	repeat: X <- orth(A (A^T X)); T = X^T A A^T X; rotate X by eigvecs(T)
//
// iters rounds of power iteration (8 is plenty for the damped SimRank
// series, whose accuracy is dominated by the rank cutoff rather than the
// subspace angle), seeded deterministically.
func TruncatedSVD(op Operator, rank, iters int, seed int64) (*SVDResult, error) {
	return TruncatedSVDWorkers(op, rank, iters, seed, 1)
}

// TruncatedSVDWorkers is TruncatedSVD with the dense products computed by a
// worker pool (par.Resolve semantics). The operator applies run on whatever
// parallelism op itself implements; results are bit-identical for every
// worker count.
func TruncatedSVDWorkers(op Operator, rank, iters int, seed int64, workers int) (*SVDResult, error) {
	rows, cols := op.Dims()
	if rank <= 0 || rank > rows || rank > cols {
		return nil, fmt.Errorf("linalg: rank %d out of range for %dx%d operator", rank, rows, cols)
	}
	if iters < 1 {
		iters = 1
	}
	rng := rand.New(rand.NewSource(seed))

	x := NewDense(rows, rank)
	for i := 0; i < rows; i++ {
		for j := 0; j < rank; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
	}
	x, _ = ThinQR(x)

	tmpC := NewDense(cols, rank)
	tmpR := NewDense(rows, rank)
	for it := 0; it < iters; it++ {
		op.ApplyT(x, tmpC)   // A^T X
		op.Apply(tmpC, tmpR) // A A^T X
		x, _ = ThinQR(tmpR)
	}

	// Rayleigh-Ritz: T = (A^T X)^T (A^T X) = X^T A A^T X, eigenpairs give
	// the singular values squared and the rotation aligning X with U.
	op.ApplyT(x, tmpC) // B = A^T X  (cols x rank), B^T B = T
	t := MulWorkers(tmpC.T(), tmpC, workers)
	w, rot := SymEig(t)

	u := MulWorkers(x, rot, workers)
	sigma := make([]float64, rank)
	for i, wi := range w {
		if wi < 0 {
			wi = 0
		}
		sigma[i] = math.Sqrt(wi)
	}
	// V = A^T U diag(1/sigma); zero singular values get zero vectors.
	btu := MulWorkers(tmpC, rot, workers) // A^T X rot = A^T U
	v := NewDense(cols, rank)
	for j := 0; j < rank; j++ {
		if sigma[j] <= 1e-300 {
			continue
		}
		inv := 1 / sigma[j]
		for i := 0; i < cols; i++ {
			v.Set(i, j, btu.At(i, j)*inv)
		}
	}
	return &SVDResult{U: u, V: v, Sigma: sigma}, nil
}

// DenseOperator adapts a Dense matrix to the Operator interface (used by
// tests to validate TruncatedSVD against explicit matrices).
type DenseOperator struct{ M *Dense }

// Dims implements Operator.
func (d DenseOperator) Dims() (int, int) { return d.M.Rows(), d.M.Cols() }

// Apply implements Operator.
func (d DenseOperator) Apply(x, dst *Dense) {
	res := Mul(d.M, x)
	copy(dst.data, res.data)
}

// ApplyT implements Operator.
func (d DenseOperator) ApplyT(x, dst *Dense) {
	res := Mul(d.M.T(), x)
	copy(dst.data, res.data)
}
