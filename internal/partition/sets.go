// Package partition implements the in-neighbor-set machinery of Section III:
// transition costs between sets (Eq. 7), the candidate cost graph of
// DMST-Reduce, and the resulting partial-sums sharing plan (the partitions
// of Eq. 8 / Fig. 3a organized as a tree with per-edge symmetric
// differences).
//
// All set operations work on strictly sorted int slices, which is the form
// the graph package hands out in-neighbor lists in.
package partition

// SortedIntersect returns the intersection of two strictly sorted slices as
// a new sorted slice.
func SortedIntersect(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// SortedDiff returns a \ b for strictly sorted slices as a new sorted slice.
func SortedDiff(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) {
		switch {
		case j >= len(b) || a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			j++
		default:
			i++
			j++
		}
	}
	return out
}

// SymmetricDiffSize returns |a (+) b| = |a\b| + |b\a| for strictly sorted
// slices without materializing the difference.
func SymmetricDiffSize(a, b []int) int {
	n := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			n++
			i++
		case a[i] > b[j]:
			n++
			j++
		default:
			i++
			j++
		}
	}
	return n + (len(a) - i) + (len(b) - j)
}

// IntersectSize returns |a ∩ b| for strictly sorted slices.
func IntersectSize(a, b []int) int {
	n := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// TransitionCost computes TC_{A->B} of Eq. 7: the number of additions needed
// to obtain Partial_B given Partial_A, i.e. min(|A (+) B|, |B|-1). It is
// meaningful for |A| <= |B| (the only direction DMST-Reduce uses); the
// formula itself is total.
func TransitionCost(a, b []int) int {
	sd := SymmetricDiffSize(a, b)
	scratch := len(b) - 1
	if scratch < sd {
		return scratch
	}
	return sd
}

// ScratchCost returns the additions needed to compute Partial_B from
// nothing: |B| - 1, or 0 for empty or singleton sets. This is the weight of
// the root edge in the DMST-Reduce cost graph.
func ScratchCost(b []int) int {
	if len(b) <= 1 {
		return 0
	}
	return len(b) - 1
}
