package par

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(3); got != 3 {
		t.Errorf("Resolve(3) = %d", got)
	}
	if got := Resolve(1); got != 1 {
		t.Errorf("Resolve(1) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	for _, w := range []int{0, -5} {
		if got := Resolve(w); got != want {
			t.Errorf("Resolve(%d) = %d, want GOMAXPROCS = %d", w, got, want)
		}
	}
}

func TestRangeCoversExactly(t *testing.T) {
	for _, tc := range []struct{ n, parts int }{
		{0, 1}, {1, 1}, {10, 1}, {10, 3}, {3, 10}, {100, 7}, {7, 7},
	} {
		covered := make([]int, tc.n)
		prevHi := 0
		for w := 0; w < tc.parts; w++ {
			lo, hi := Range(tc.n, tc.parts, w)
			if lo != prevHi {
				t.Fatalf("Range(%d,%d,%d): gap or overlap at %d (lo=%d)", tc.n, tc.parts, w, prevHi, lo)
			}
			if hi-lo < 0 || hi-lo > tc.n/tc.parts+1 {
				t.Fatalf("Range(%d,%d,%d): block size %d unbalanced", tc.n, tc.parts, w, hi-lo)
			}
			for i := lo; i < hi; i++ {
				covered[i]++
			}
			prevHi = hi
		}
		if prevHi != tc.n {
			t.Fatalf("Range(%d,%d,*): covered [0,%d), want [0,%d)", tc.n, tc.parts, prevHi, tc.n)
		}
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("Range(%d,%d,*): index %d covered %d times", tc.n, tc.parts, i, c)
			}
		}
	}
}

func TestCancelChecker(t *testing.T) {
	// An uncancelled context never stops the loop.
	c := NewCancelChecker(context.Background(), 4)
	for i := 0; i < 100; i++ {
		if err := c.Stop(); err != nil {
			t.Fatalf("Stop() = %v on a live context", err)
		}
	}

	// After cancellation, Stop reports the error within one interval and
	// latches it.
	ctx, cancel := context.WithCancel(context.Background())
	c = NewCancelChecker(ctx, 4)
	if err := c.Stop(); err != nil {
		t.Fatalf("Stop() = %v before cancel", err)
	}
	cancel()
	var stopped error
	for i := 0; i < 4 && stopped == nil; i++ {
		stopped = c.Stop()
	}
	if !errors.Is(stopped, context.Canceled) {
		t.Fatalf("Stop() = %v within an interval of cancel, want context.Canceled", stopped)
	}
	for i := 0; i < 10; i++ {
		if !errors.Is(c.Stop(), context.Canceled) {
			t.Fatal("Stop() unlatched after reporting cancellation")
		}
	}

	// A pre-cancelled context stops on the first call when interval <= 1.
	pre, cancelPre := context.WithCancel(context.Background())
	cancelPre()
	if err := NewCancelChecker(pre, 0).Stop(); !errors.Is(err, context.Canceled) {
		t.Fatalf("interval 0: first Stop() = %v, want context.Canceled", err)
	}
}

func TestDoRunsAllWorkers(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		var ran atomic.Int64
		seen := make([]atomic.Bool, workers)
		Do(workers, func(w int) {
			ran.Add(1)
			seen[w].Store(true)
		})
		if ran.Load() != int64(workers) {
			t.Errorf("Do(%d): %d invocations", workers, ran.Load())
		}
		for w := range seen {
			if !seen[w].Load() {
				t.Errorf("Do(%d): worker %d never ran", workers, w)
			}
		}
	}
}
