package simrankd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"oipsr/simrank/query"
)

// ndjsonLines splits an NDJSON body into its lines, without the trailing
// newline of each.
func ndjsonLines(t *testing.T, body []byte) [][]byte {
	t.Helper()
	if len(body) == 0 {
		return nil
	}
	if body[len(body)-1] != '\n' {
		t.Fatalf("NDJSON body does not end in a newline: %q", body)
	}
	return bytes.Split(bytes.TrimSuffix(body, []byte{'\n'}), []byte{'\n'})
}

// TestBatchByteIdenticalToSingleEndpoints: every line /v1/batch streams
// must be byte-for-byte the response of the corresponding single-query
// endpoint — the guarantee that lets the two share cache entries.
func TestBatchByteIdenticalToSingleEndpoints(t *testing.T) {
	_, idx := testIndex(t)
	ts := httptest.NewServer(newServer(idx, 64, 2))
	defer ts.Close()

	sources := []int{3, 77, 3, 149}
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json",
		strings.NewReader(`{"mode":"topk","sources":[3,77,3,149],"k":5,"rerank":true}`))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, buf.Bytes())
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("batch Content-Type %q, want application/x-ndjson", ct)
	}
	body := buf.Bytes()
	lines := ndjsonLines(t, body)
	if len(lines) != len(sources) {
		t.Fatalf("%d lines for %d sources", len(lines), len(sources))
	}
	for i, q := range sources {
		_, single := get(t, fmt.Sprintf("%s/v1/topk?q=%d&k=5&rerank=1", ts.URL, q))
		if !bytes.Equal(append(lines[i], '\n'), single) {
			t.Fatalf("batch line %d differs from /v1/topk for q=%d:\n%s\nvs\n%s", i, q, lines[i], single)
		}
	}

	var code int
	code, body = postJSON(t, ts.URL+"/v1/batch", `{"mode":"single_source","sources":[3,77],"min":0.01}`)
	if code != http.StatusOK {
		t.Fatalf("single_source batch status %d: %s", code, body)
	}
	lines = ndjsonLines(t, body)
	for i, q := range []int{3, 77} {
		_, single := get(t, fmt.Sprintf("%s/v1/single_source?q=%d&min=0.01", ts.URL, q))
		if !bytes.Equal(append(lines[i], '\n'), single) {
			t.Fatalf("batch ss line %d differs from /v1/single_source for q=%d", i, q)
		}
	}

	// Dense mode (no min) works too, just uncached.
	code, body = postJSON(t, ts.URL+"/v1/batch", `{"mode":"single_source","sources":[5]}`)
	if code != http.StatusOK {
		t.Fatalf("dense batch status %d: %s", code, body)
	}
	var dense singleSourceResponse
	if err := json.Unmarshal(ndjsonLines(t, body)[0], &dense); err != nil {
		t.Fatal(err)
	}
	if dense.Query != 5 || len(dense.Scores) != idx.N() {
		t.Fatalf("dense line: query %d, %d scores (n=%d)", dense.Query, len(dense.Scores), idx.N())
	}
}

// TestBatchPerItemErrorIsolation: invalid sources produce error lines in
// their positions; every valid source is still answered, and the request
// as a whole succeeds.
func TestBatchPerItemErrorIsolation(t *testing.T) {
	_, idx := testIndex(t)
	srv := newServer(idx, 64, 1)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	code, body := postJSON(t, ts.URL+"/v1/batch", `{"mode":"topk","sources":[2,99999,-1,7],"k":3}`)
	if code != http.StatusOK {
		t.Fatalf("mixed batch status %d, want 200: %s", code, body)
	}
	lines := ndjsonLines(t, body)
	if len(lines) != 4 {
		t.Fatalf("%d lines, want 4", len(lines))
	}
	for _, i := range []int{0, 3} {
		var ok topKResponse
		if err := json.Unmarshal(lines[i], &ok); err != nil || len(ok.Results) != 3 {
			t.Fatalf("line %d not a valid topk response: %s", i, lines[i])
		}
	}
	for i, wantSrc := range map[int]int{1: 99999, 2: -1} {
		var fail batchItemError
		if err := json.Unmarshal(lines[i], &fail); err != nil || fail.Error == "" || fail.Source != wantSrc {
			t.Fatalf("line %d not an error line for source %d: %s", i, wantSrc, lines[i])
		}
	}
	if got := srv.batchItemErrors.Load(); got != 2 {
		t.Fatalf("batchItemErrors = %d, want 2", got)
	}

	// An all-invalid batch still succeeds at the request level.
	code, body = postJSON(t, ts.URL+"/v1/batch", `{"sources":[99999]}`)
	if code != http.StatusOK {
		t.Fatalf("all-invalid batch status %d, want 200: %s", code, body)
	}
}

// TestBatchCacheKeyCanonicalization: equivalent parameter spellings across
// /v1/batch and the single endpoints land on one cache entry, keyed by the
// index generation.
func TestBatchCacheKeyCanonicalization(t *testing.T) {
	_, idx := testIndex(t)
	srv := newServer(idx, 64, 1)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Batch fills the cache; the differently-spelled single queries and an
	// identical re-batch must all hit.
	postJSON(t, ts.URL+"/v1/batch", `{"mode":"single_source","sources":[4,9],"min":0.010}`)
	hits0, _ := srv.cache.Stats()
	get(t, ts.URL+"/v1/single_source?q=4&min=1e-2")
	get(t, ts.URL+"/v1/single_source?q=9&min=0.01")
	postJSON(t, ts.URL+"/v1/batch", `{"mode":"single_source","sources":[4,9],"min":1.0e-2}`)
	hits1, misses1 := srv.cache.Stats()
	if hits1-hits0 != 4 {
		t.Fatalf("canonicalized re-queries: %d hits, want 4 (misses %d)", hits1-hits0, misses1)
	}

	// Same across /v1/batch topk and /v1/topk.
	postJSON(t, ts.URL+"/v1/batch", `{"mode":"topk","sources":[11],"k":5}`)
	hits0, _ = srv.cache.Stats()
	get(t, ts.URL+"/v1/topk?q=11&k=5")
	hits1, _ = srv.cache.Stats()
	if hits1-hits0 != 1 {
		t.Fatalf("/v1/topk after batch: %d new hits, want 1", hits1-hits0)
	}

	// A duplicated source inside one batch is computed once and served to
	// both positions.
	code, body := postJSON(t, ts.URL+"/v1/batch", `{"mode":"topk","sources":[21,21],"k":4}`)
	if code != http.StatusOK {
		t.Fatalf("dup batch status %d", code)
	}
	lines := ndjsonLines(t, body)
	if !bytes.Equal(lines[0], lines[1]) {
		t.Fatal("duplicate sources got different lines")
	}
}

// TestBatchGenerationAwareness: a graph edit bumps the generation, so a
// repeated batch recomputes instead of serving pre-edit bytes.
func TestBatchGenerationAwareness(t *testing.T) {
	_, idx := testIndex(t)
	srv := newServer(idx, 64, 1)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const req = `{"mode":"topk","sources":[8],"k":5}`
	_, before := postJSON(t, ts.URL+"/v1/batch", req)
	if code, body := postJSON(t, ts.URL+"/v1/edges", `{"edits":[{"op":"add","u":8,"v":140},{"op":"add","u":140,"v":8}]}`); code != http.StatusOK {
		t.Fatalf("edges status %d: %s", code, body)
	}
	_, after := postJSON(t, ts.URL+"/v1/batch", req)
	want, err := srv.idx.TopK(context.Background(), 8, 5, &query.TopKOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var got topKResponse
	if err := json.Unmarshal(ndjsonLines(t, after)[0], &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(want) {
		t.Fatalf("post-edit batch: %d results, want %d", len(got.Results), len(want))
	}
	for i := range want {
		if got.Results[i] != want[i] {
			t.Fatalf("post-edit batch result %d = %+v, want %+v (stale pre-edit bytes? before=%s)", i, got.Results[i], want[i], before)
		}
	}
}

// TestBatchRequestValidation: request-level problems fail the whole call
// with a 4xx and a JSON error.
func TestBatchRequestValidation(t *testing.T) {
	_, idx := testIndex(t)
	srv := newServer(idx, 64, 1)
	srv.maxBatch = 2
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, tc := range []struct {
		name, body string
	}{
		{"bad json", `{"sources":`},
		{"unknown field", `{"sources":[1],"bogus":true}`},
		{"bad mode", `{"mode":"pagerank","sources":[1]}`},
		{"min in topk", `{"mode":"topk","sources":[1],"min":0.1}`},
		{"k in single_source", `{"mode":"single_source","sources":[1],"k":5}`},
		{"rerank in single_source", `{"mode":"single_source","sources":[1],"rerank":true}`},
		{"negative k", `{"mode":"topk","sources":[1],"k":-2}`},
		{"too many sources", `{"sources":[1,2,3]}`},
	} {
		code, body := postJSON(t, ts.URL+"/v1/batch", tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, code, body)
		}
	}
	if code, _ := get(t, ts.URL+"/v1/batch"); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/batch: %d, want 405", code)
	}

	// A dense single_source batch whose output would exceed the score cap
	// is refused before any work happens (n=150 here, so the cap needs
	// maxDenseBatchScores/150 + 1 sources).
	srv.maxBatch = maxDenseBatchScores // lift the source-count limit
	var big strings.Builder
	big.WriteString(`{"mode":"single_source","sources":[0`)
	for i := 0; i < maxDenseBatchScores/150+1; i++ {
		big.WriteString(",0")
	}
	big.WriteString(`]}`)
	if code, body := postJSON(t, ts.URL+"/v1/batch", big.String()); code != http.StatusBadRequest ||
		!strings.Contains(string(body), "dense batch") {
		t.Errorf("oversize dense batch: status %d, body %s", code, body)
	}
}

// TestBatchChunk: the per-chunk source count keeps chunk*n within the
// score cap and never rounds to zero.
func TestBatchChunk(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{1, maxDenseBatchScores},
		{150, maxDenseBatchScores / 150},
		{maxDenseBatchScores, 1},
		{maxDenseBatchScores * 10, 1},
		{0, maxDenseBatchScores},
	} {
		if got := batchChunk(tc.n); got != tc.want {
			t.Errorf("batchChunk(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

// TestJoinEndpoint: /v1/join returns the same pairs the library Join
// produces, caches canonically, and maps a too-dense request to a 400.
func TestJoinEndpoint(t *testing.T) {
	_, idx := testIndex(t)
	srv := newServer(idx, 64, 2)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	code, body := postJSON(t, ts.URL+"/v1/join", `{"k":8,"threshold":0.05}`)
	if code != http.StatusOK {
		t.Fatalf("join status %d: %s", code, body)
	}
	var resp joinResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	want, err := srv.idx.Join(context.Background(), 8, 0.05, &query.JoinOptions{MaxCandidates: srv.joinMaxCand, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Pairs) != len(want) {
		t.Fatalf("join returned %d pairs, want %d", len(resp.Pairs), len(want))
	}
	for i := range want {
		if resp.Pairs[i] != want[i] {
			t.Fatalf("join pair %d = %+v, want %+v", i, resp.Pairs[i], want[i])
		}
	}

	// Canonicalized parameters share a cache entry.
	hits0, _ := srv.cache.Stats()
	postJSON(t, ts.URL+"/v1/join", `{"k":8,"threshold":5e-2}`)
	hits1, _ := srv.cache.Stats()
	if hits1-hits0 != 1 {
		t.Fatalf("canonicalized join re-query: %d new hits, want 1", hits1-hits0)
	}

	srv.joinMaxCand = 3
	if code, body := postJSON(t, ts.URL+"/v1/join", `{"k":8,"threshold":0}`); code != http.StatusBadRequest {
		t.Fatalf("too-dense join: status %d, want 400 (%s)", code, body)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/join", `{"k":-1}`); code != http.StatusBadRequest {
		t.Fatal("negative k join accepted")
	}
	if code, _ := get(t, ts.URL+"/v1/join"); code != http.StatusMethodNotAllowed {
		t.Fatal("GET /v1/join not rejected")
	}
}
