package walkindex

// PathStore is the storage seam between the query/update machinery and the
// bytes that back a walk index. Every reader — SingleSource, MultiSource,
// TopK's rerank, Join, the shard sweeps, and the incremental-update repair —
// goes through Row/MutableRow, so an Index answers bit-identically whether
// its walks live in one dense in-memory slice (fresh builds, format-v1
// loads, fully-decoded v2 loads) or are paged on demand from an mmapped
// format-v2 file (LoadMapped).
//
// A store is safe for concurrent Row calls. MutableRow is only called by
// Update, which callers already serialize against queries; a mapped store
// additionally tracks the blocks MutableRow touched so a flush can rewrite
// just those (see mapped.go).
type PathStore interface {
	// Row returns the read-only walk block of store-local vertex v: r*k
	// entries, walk-major (entry fp*k+t is the position of v's
	// fingerprint-fp walker after step t+1, or -1 once dead). The slice is
	// valid until the store is closed and must not be mutated.
	Row(v int) []int32

	// MutableRow returns v's walk block for in-place repair. For a mapped
	// store this materializes the containing block into a writable overlay
	// and marks it dirty for the next flush.
	MutableRow(v int) []int32

	// Prefetch declares an imminent sequential Row sweep over store-local
	// vertices [lo, hi), letting a paged store decode the upcoming posting
	// blocks ahead of the reader. It is advisory and asynchronous: answers
	// are bit-identical with or without it, and a store with nothing to
	// page (dense) ignores it. Safe to call concurrently with Row.
	Prefetch(lo, hi int)

	// Flat returns the whole store as one vertex-major slice when the
	// walks are materialized in memory, and nil otherwise. Callers with a
	// slot-major access pattern (Join's candidate enumeration) use it as a
	// fast path and fall back to Row when it is nil.
	Flat() []int32

	// Rows returns the number of stored start vertices.
	Rows() int

	// Bytes returns the resident in-memory size of the path storage — the
	// full payload for a dense store, the decoded-block cache footprint
	// for a mapped one.
	Bytes() int64

	// Kind names the backend ("dense" or "mapped") for logs and metrics.
	Kind() string

	// Close releases backing resources (file handles, mappings). The
	// store must not be used afterwards. Closing a dense store is a no-op.
	Close() error
}

// denseStore backs an index with one flat materialized slice — the layout
// Build produces and format v1 stores verbatim.
type denseStore struct {
	paths  []int32
	stride int // r*k entries per vertex
}

func newDenseStore(paths []int32, stride int) *denseStore {
	return &denseStore{paths: paths, stride: stride}
}

func (s *denseStore) Row(v int) []int32        { return s.paths[v*s.stride : (v+1)*s.stride] }
func (s *denseStore) MutableRow(v int) []int32 { return s.paths[v*s.stride : (v+1)*s.stride] }
func (s *denseStore) Prefetch(lo, hi int)      {} // nothing to page
func (s *denseStore) Flat() []int32            { return s.paths }
func (s *denseStore) Rows() int                { return len(s.paths) / s.stride }
func (s *denseStore) Bytes() int64             { return int64(len(s.paths)) * 4 }
func (s *denseStore) Kind() string             { return "dense" }
func (s *denseStore) Close() error             { return nil }
