package walkindex

import (
	"context"
	"sort"

	"oipsr/internal/par"
)

// Batched multi-source queries.
//
// A SingleSource call sweeps the whole path store once, comparing every
// stored target position against the source's walker at the same
// (fingerprint, step). Answering a batch of S sources with S independent
// calls therefore sweeps the store S times — O(S*n*R*K) — even though the
// sweeps read identical data. MultiSource amortizes that shared traversal:
// the batch's source walker positions are gathered into one sorted table
// per (fingerprint, step) slot, and a single sweep over the path store
// looks each target position up in its slot's table, crediting every
// source whose walker stands there in one step. The sweep costs
// O(n*R*K*log S) lookups plus one accumulator update per first meeting, so
// cost per source shrinks as the batch grows.
//
// The sweep is node-parallel over targets: each worker owns a contiguous
// target range and writes disjoint cells of the per-source score rows, with
// the slot tables shared read-only — the same discipline as Build, so
// results are bit-identical for every worker count.

// srcEntry records that the batch source with ordinal si has its walker at
// position pos in some (fingerprint, step) slot of the slot table.
type srcEntry struct {
	pos int32
	si  int32
}

// MultiSource estimates s(q, v) for every source q in sources and every
// target v, returning one dense score row per source (out[i][v] is
// s(sources[i], v); the entry for the source itself is exactly 1). Every
// row is bit-identical to SingleSource(sources[i], nil), for every worker
// count (1 = serial, <1 = all CPUs): per (source, target) pair the same
// first-meeting weights are accumulated in the same fingerprint order and
// scaled by the same 1/R, so not even the floating-point rounding differs.
//
// Sources must be valid vertex ids (the query layer validates); duplicates
// are allowed and produce identical rows.
//
// Cancelling ctx abandons the sweep at the next chunk boundary (every
// worker polls between target vertices) and returns the context's error;
// the returned rows are then nil. An uncancelled ctx never changes the
// result.
func (ix *Index) MultiSource(ctx context.Context, sources []int, workers int) ([][]float64, error) {
	out := make([][]float64, len(sources))
	for i := range out {
		out[i] = make([]float64, ix.n)
	}
	if len(sources) == 0 {
		return out, nil
	}

	// Slot tables: slot (fp, t) holds the living source walker positions at
	// step t of fingerprint fp, sorted by position, as
	// entries[off[fp*k+t]:off[fp*k+t+1]]. Dead walkers are excluded; since a
	// dead walk stays dead, slot sizes are non-increasing in t within one
	// fingerprint, and an empty slot ends the sweep's step loop early.
	nslots := ix.r * ix.k
	off := make([]int, nslots+1)
	tableCheck := par.NewCancelChecker(ctx, 4) // each source is O(R·K) table work
	for _, q := range sources {
		if err := tableCheck.Stop(); err != nil {
			return nil, err
		}
		blk := ix.store.Row(q)
		for fp := 0; fp < ix.r; fp++ {
			row := blk[fp*ix.k : (fp+1)*ix.k]
			for t, p := range row {
				if p < 0 {
					break
				}
				off[fp*ix.k+t+1]++
			}
		}
	}
	for i := 1; i <= nslots; i++ {
		off[i] += off[i-1]
	}
	entries := make([]srcEntry, off[nslots])
	cur := make([]int, nslots)
	copy(cur, off[:nslots])
	for si, q := range sources {
		blk := ix.store.Row(q)
		for fp := 0; fp < ix.r; fp++ {
			row := blk[fp*ix.k : (fp+1)*ix.k]
			for t, p := range row {
				if p < 0 {
					break
				}
				slot := fp*ix.k + t
				entries[cur[slot]] = srcEntry{pos: p, si: int32(si)}
				cur[slot]++
			}
		}
	}
	for s := 0; s < nslots; s++ {
		seg := entries[off[s]:off[s+1]]
		sort.Slice(seg, func(i, j int) bool {
			if seg[i].pos != seg[j].pos {
				return seg[i].pos < seg[j].pos
			}
			return seg[i].si < seg[j].si
		})
	}

	inv := 1 / float64(ix.r)
	parts := par.ResolveMax(workers, ix.n)
	par.Do(parts, func(w int) {
		lo, hi := par.Range(ix.n, parts, w)
		ix.store.Prefetch(lo, hi) // each worker sweeps its target range in order
		check := par.NewCancelChecker(ctx, cancelCheckTargets)
		acc := make([]float64, len(sources))
		// met[si] == epoch marks "si already met the current (target,
		// fingerprint)"; bumping the epoch clears all marks at once.
		met := make([]int, len(sources))
		epoch := 0
		for v := lo; v < hi; v++ {
			if check.Stop() != nil {
				return // partial rows are discarded below
			}
			for i := range acc {
				acc[i] = 0
			}
			blk := ix.store.Row(v)
			for fp := 0; fp < ix.r; fp++ {
				epoch++
				row := blk[fp*ix.k : (fp+1)*ix.k]
				for t, pv := range row {
					if pv < 0 {
						break // a dead target never meets anyone
					}
					seg := entries[off[fp*ix.k+t]:off[fp*ix.k+t+1]]
					if len(seg) == 0 {
						break // every source walker is already dead
					}
					i := sort.Search(len(seg), func(i int) bool { return seg[i].pos >= pv })
					for ; i < len(seg) && seg[i].pos == pv; i++ {
						si := seg[i].si
						if met[si] == epoch {
							continue // first meeting only: C^(t+1) once per fp
						}
						met[si] = epoch
						acc[si] += ix.pow[t]
					}
				}
			}
			for si := range acc {
				out[si][v] = acc[si] * inv
			}
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Overwrite each source's own entry with the exact 1 SingleSource
	// promises (the sweep instead credits the trivial self-meeting at the
	// first step, which would leave C there).
	for si, q := range sources {
		out[si][q] = 1
	}
	return out, nil
}
