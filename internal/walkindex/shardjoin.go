package walkindex

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"oipsr/graph"
	"oipsr/internal/par"
)

// Sharded similarity join.
//
// The join shards along the FINGERPRINT axis, not the vertex axis: a
// candidate pair is any two vertices co-located at some (fingerprint,
// step) slot within the prune depth, and one fingerprint's slots need the
// positions of ALL n vertices — which every shard can produce, because
// walk prefixes are pure hash recomputations (walkFrom) regardless of who
// stores them. Each shard of a fleet therefore enumerates a disjoint
// fingerprint range, the router unions the candidate sets (each a subset
// of the distinct-pair union, so the cap trips exactly when the
// single-node merge would), and pair scoring scatters back across shards,
// each scoring through the same pairFromRows arithmetic. FinishJoin on the
// merged scored pairs then reproduces Index.Join bitwise.

// JoinCandidates enumerates the co-located vertex pairs of fingerprints
// [fpLo, fpHi) within the threshold's prune depth, returning canonical
// a<b keys (a<<32|b) in ascending order. The union of the key sets over a
// partition of [0, R) is exactly the candidate set Index.Join enumerates.
// maxCandidates caps this shard's set — every per-shard set is a subset of
// the full distinct-pair union, so a shard overflow implies the
// single-node join overflows too (the converse is caught by the caller's
// merge, which must re-apply the cap as the union grows).
//
// g must be the graph the shard was built on (or repaired to); it supplies
// the walk prefixes of vertices the shard does not store.
func (sx *ShardIndex) JoinCandidates(ctx context.Context, g *graph.Graph, threshold float64, fpLo, fpHi, maxCandidates, workers int) ([]uint64, error) {
	if fpLo < 0 || fpHi < fpLo || fpHi > sx.r {
		return nil, fmt.Errorf("walkindex: fingerprint range [%d,%d) outside [0,%d)", fpLo, fpHi, sx.r)
	}
	if maxCandidates < 1 {
		return nil, fmt.Errorf("walkindex: join candidate cap %d < 1", maxCandidates)
	}
	maxT := joinDepth(sx.pow, threshold)
	if maxT < 0 || sx.n < 2 || fpLo == fpHi {
		return []uint64{}, ctx.Err()
	}

	// Same enumeration as Join phase 1, with one addition: positions of
	// vertices outside [lo, hi) are recomputed per fingerprint as prefix
	// walks (depth maxT+1), bit-identical to the rows the owning shard
	// stores. The recomputation is O(n·(maxT+1)) per fingerprint — the same
	// order as scanning the slots it feeds.
	hseed := splitmix64(uint64(sx.seed))
	depth := maxT + 1
	parts := par.ResolveMax(workers, fpHi-fpLo)
	sets := make([]map[uint64]struct{}, parts)
	var overflow atomic.Bool
	par.Do(parts, func(w int) {
		wlo, whi := par.Range(fpHi-fpLo, parts, w)
		check := par.NewCancelChecker(ctx, 1) // each slot is O(n) work
		set := make(map[uint64]struct{})
		pos := make([]int32, sx.n*depth) // pos[v*depth+t]
		head := make([]int32, sx.n)
		next := make([]int32, sx.n)
		for fp := fpLo + wlo; fp < fpLo+whi; fp++ {
			if overflow.Load() || check.Stop() != nil {
				return
			}
			sx.store.Prefetch(0, sx.hi-sx.lo) // owned rows stream in vertex order
			for v := 0; v < sx.n; v++ {
				row := pos[v*depth : (v+1)*depth]
				if sx.Owns(v) {
					copy(row, sx.store.Row(v - sx.lo)[fp*sx.k:(fp+1)*sx.k])
				} else {
					walkFrom(g, hseed, fp, 0, v, row)
				}
			}
			for t := 0; t <= maxT; t++ {
				if overflow.Load() || check.Stop() != nil {
					return
				}
				for i := range head {
					head[i] = -1
				}
				alive := false
				for v := 0; v < sx.n; v++ {
					p := pos[v*depth+t]
					if p < 0 {
						continue
					}
					alive = true
					next[v] = head[p]
					head[p] = int32(v)
				}
				if !alive {
					break // every walker of this fingerprint is dead
				}
				for p := 0; p < sx.n; p++ {
					for b := head[p]; b >= 0; b = next[b] {
						for a := next[b]; a >= 0; a = next[a] {
							set[uint64(a)<<32|uint64(b)] = struct{}{}
							if len(set) > maxCandidates {
								overflow.Store(true)
								return
							}
						}
					}
				}
			}
		}
		sets[w] = set
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if overflow.Load() {
		return nil, TooDenseError(threshold, maxCandidates)
	}
	merged := sets[0]
	for _, set := range sets[1:] {
		for key := range set {
			merged[key] = struct{}{}
			if len(merged) > maxCandidates {
				return nil, TooDenseError(threshold, maxCandidates)
			}
		}
	}
	keys := make([]uint64, 0, len(merged))
	for key := range merged {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys, nil
}

// ScorePairs computes the exact estimate of every candidate key (canonical
// a<<32|b), bit-identical to Index.Pair — rows of unowned vertices are
// recomputed and memoized per worker. Cancelling ctx abandons the scoring
// and returns the context's error.
func (sx *ShardIndex) ScorePairs(ctx context.Context, g *graph.Graph, keys []uint64, workers int) ([]JoinPair, error) {
	pairs := make([]JoinPair, len(keys))
	if len(keys) == 0 {
		return pairs, ctx.Err()
	}
	parts := par.ResolveMax(workers, len(keys))
	par.Do(parts, func(w int) {
		lo, hi := par.Range(len(keys), parts, w)
		check := par.NewCancelChecker(ctx, cancelCheckTargets)
		// Foreign rows memoize per worker: candidate keys are sorted, so
		// repeated a-sides hit the cache run-length style, and heavily
		// co-located b-sides (hub vertices) hit it across keys.
		cache := make(map[int][]int32)
		rowFor := func(v int) []int32 {
			if sx.Owns(v) {
				return sx.ownedRow(v)
			}
			if row, ok := cache[v]; ok {
				return row
			}
			row := sx.sourceRow(g, v, make([]int32, sx.r*sx.k))
			cache[v] = row
			return row
		}
		for i := lo; i < hi; i++ {
			if check.Stop() != nil {
				return // partial scores are discarded below
			}
			a, b := int(keys[i]>>32), int(keys[i]&0xFFFFFFFF)
			pairs[i] = JoinPair{A: a, B: b, Score: pairFromRows(rowFor(a), rowFor(b), sx.pow, sx.k, sx.r)}
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return pairs, nil
}
