package main

import (
	"context"
	"fmt"
	"time"

	"oipsr/graph"
	"oipsr/simrank/query"
)

// runBatchWorkload measures the batched serving path simrankd's /v1/batch
// and /v1/join put online: one shared traversal of the walk index for a
// whole batch of sources versus N independent SingleSource calls, across
// batch sizes, plus the all-pairs top-k similarity join. Every batched
// result is verified bit-identical to the independent calls before timing
// is reported — the speedup must never come from answering a different
// question.
func runBatchWorkload(cfg config) {
	header("Batched queries: shared traversal vs independent calls", "simrankd /v1/batch workload")

	const walks = 200
	batchSizes := []int{1, 4, 16, 64}

	type workload struct {
		name string
		g    *graph.Graph
	}
	workloads := []workload{
		{"berkstan*", webGraph(cfg)},
		{"patent*", patentGraph(cfg)},
	}

	fmt.Printf("walks per vertex R=%d, workers=%d\n\n", walks, benchWorkers)
	fmt.Printf("%-10s | %7s %6s | %12s %12s | %12s %12s | %8s\n",
		"workload", "n", "batch", "indep total", "batch total", "indep/src", "batch/src", "speedup")

	for _, wl := range workloads {
		g := wl.g
		n := g.NumVertices()
		idx, err := query.BuildIndex(g, query.Options{Walks: walks, Seed: cfg.seed, Workers: benchWorkers})
		must(err)

		for _, batch := range batchSizes {
			sources := queryVertices(n, batch)

			// Independent baseline: one SingleSource traversal per source.
			t0 := time.Now()
			indep := make([][]float64, len(sources))
			for i, q := range sources {
				indep[i], err = idx.SingleSource(context.Background(), q)
				must(err)
			}
			indepTime := time.Since(t0)

			// Batched: one shared traversal for the whole batch.
			t0 = time.Now()
			rows, err := idx.MultiSource(context.Background(), sources, benchWorkers)
			must(err)
			batchTime := time.Since(t0)

			for i := range sources {
				for v := range rows[i] {
					if rows[i][v] != indep[i][v] {
						panic("batch workload: MultiSource not bit-identical to SingleSource")
					}
				}
			}

			perSrcIndep := indepTime / time.Duration(len(sources))
			perSrcBatch := batchTime / time.Duration(len(sources))
			speedup := float64(indepTime) / float64(max(batchTime, 1))
			emitJSON("batch", map[string]any{
				"workload":                       wl.name,
				"n":                              n,
				"m":                              g.NumEdges(),
				"walks":                          walks,
				"batch":                          len(sources),
				"independent_seconds":            seconds(indepTime),
				"batched_seconds":                seconds(batchTime),
				"independent_per_source_seconds": seconds(perSrcIndep),
				"batched_per_source_seconds":     seconds(perSrcBatch),
				"speedup":                        speedup,
			})
			fmt.Printf("%-10s | %7d %6d | %12v %12v | %12v %12v | %7.2fx\n",
				wl.name, n, len(sources),
				indepTime.Round(time.Microsecond), batchTime.Round(time.Microsecond),
				perSrcIndep.Round(time.Microsecond), perSrcBatch.Round(time.Microsecond), speedup)
		}

		// The similarity join at a few thresholds: pair yield and time.
		for _, threshold := range []float64{0.2, 0.1, 0.05} {
			t0 := time.Now()
			pairs, err := idx.Join(context.Background(), 50, threshold, &query.JoinOptions{Workers: benchWorkers})
			joinTime := time.Since(t0)
			if err != nil {
				fmt.Printf("%-10s | join theta=%.2f: %v\n", wl.name, threshold, err)
				continue
			}
			emitJSON("batch", map[string]any{
				"workload":     wl.name,
				"n":            n,
				"m":            g.NumEdges(),
				"walks":        walks,
				"join_theta":   threshold,
				"join_k":       50,
				"join_pairs":   len(pairs),
				"join_seconds": seconds(joinTime),
			})
			var top string
			if len(pairs) > 0 {
				top = fmt.Sprintf(", top (%d,%d)=%.3f", pairs[0].A, pairs[0].B, pairs[0].Score)
			}
			fmt.Printf("%-10s | join theta=%.2f: %d pairs in %v%s\n",
				wl.name, threshold, len(pairs), joinTime.Round(time.Millisecond), top)
		}
	}
	fmt.Println("\n(Batched rows are verified bit-identical to independent SingleSource calls")
	fmt.Println(" before any timing is reported. speedup = independent total / batched total.)")
}
