// Package psum implements psum-SR, the Lizorkin et al. algorithm the paper
// treats as the state of the art (reference [16]): SimRank iteration with
// partial sums memoization (Eqs. 4-5) but without any sharing across
// different in-neighbor sets.
//
// For every vertex a it materializes Partial_{I(a)}(y) = sum_{x in I(a)}
// s_k(x, y) once per iteration and reuses it for all second arguments b,
// bringing the naive O(K d^2 n^2) down to O(K d n^2). The package also
// implements the two auxiliary optimizations of [16] the paper mentions:
// essential-pair skipping (pairs with an empty in-neighbor set are a-priori
// zero and never touched) and threshold-sieved similarities (scores below a
// user threshold are clamped to zero, trading accuracy for fewer non-zeros).
//
// Rows are embarrassingly parallel — row a depends only on the previous
// iterate — so with Workers > 1 the row loop is split across a worker pool,
// each worker owning its own partial-sum buffer and counters. Every row's
// arithmetic is unchanged, so scores and counts are bit-identical for every
// worker count.
package psum

import (
	"fmt"

	"oipsr/graph"
	"oipsr/internal/par"
	"oipsr/internal/simmat"
)

// Options configure a psum-SR run.
type Options struct {
	C float64 // damping factor in (0,1)
	K int     // number of iterations (>= 0)

	// Threshold enables threshold-sieved similarities: after each iteration
	// every score strictly below Threshold is set to 0. Zero disables
	// sieving (exact psum-SR).
	Threshold float64

	// Workers sets the row worker-pool size: 1 means serial, anything below
	// 1 means runtime.GOMAXPROCS(0).
	Workers int
}

// Stats reports the work an invocation performed, in the units the paper
// argues about: scalar additions spent building (inner) partial sums and
// consuming them (outer sums), plus the auxiliary memory beyond the two
// score matrices.
type Stats struct {
	Iterations  int
	InnerAdds   int64 // scalar additions building Partial_{I(a)}(.)
	OuterAdds   int64 // scalar additions summing partials over I(b)
	SievedPairs int64 // scores clamped to zero by the threshold
	AuxBytes    int64 // partial-sum buffers (one per worker)
}

// Compute runs psum-SR and returns s_K together with run statistics.
func Compute(g *graph.Graph, opt Options) (*simmat.Matrix, *Stats, error) {
	if !(opt.C > 0 && opt.C < 1) {
		return nil, nil, fmt.Errorf("psum: damping factor %v outside (0,1)", opt.C)
	}
	if opt.K < 0 {
		return nil, nil, fmt.Errorf("psum: negative iteration count %d", opt.K)
	}
	n := g.NumVertices()
	workers := par.ResolveMax(opt.Workers, n)
	st := &Stats{AuxBytes: int64(workers) * int64(n) * 8}
	prev := simmat.NewIdentity(n)
	if opt.K == 0 {
		return prev, st, nil
	}
	next := simmat.New(n)
	partials := make([][]float64, workers)
	for w := range partials {
		partials[w] = make([]float64, n)
	}
	// Reciprocal in-degrees: one multiplication instead of one division per
	// vertex pair in the inner loop.
	invDeg := make([]float64, n)
	for v := 0; v < n; v++ {
		if d := g.InDegree(v); d > 0 {
			invDeg[v] = 1 / float64(d)
		}
	}

	stats := make([]Stats, workers)
	for iter := 0; iter < opt.K; iter++ {
		st.Iterations++
		par.Do(workers, func(w int) {
			lo, hi := par.Range(n, workers, w)
			partial := partials[w]
			// Count into locals to keep the hot loops off the shared stats
			// slice (false sharing); fold in once after the row range.
			var wst Stats
			for a := lo; a < hi; a++ {
				ia := g.In(a)
				rowNext := next.Row(a)
				if len(ia) == 0 {
					// Essential-pair skipping: s(a,b) = 0 for all b != a.
					for b := range rowNext {
						rowNext[b] = 0
					}
					rowNext[a] = 1
					continue
				}
				// Memorize Partial_{I(a)}(y) for every y (Eq. 4).
				row0 := prev.Row(ia[0])
				copy(partial, row0)
				for _, x := range ia[1:] {
					rx := prev.Row(x)
					for y := range partial {
						partial[y] += rx[y]
					}
				}
				wst.InnerAdds += int64(len(ia)-1) * int64(n)

				// Consume the partial sums for every b (Eq. 5).
				scaleA := opt.C * invDeg[a]
				for b := 0; b < n; b++ {
					if b == a {
						rowNext[b] = 1
						continue
					}
					ib := g.In(b)
					if len(ib) == 0 {
						rowNext[b] = 0
						continue
					}
					sum := 0.0
					for _, j := range ib {
						sum += partial[j]
					}
					wst.OuterAdds += int64(len(ib) - 1)
					v := scaleA * invDeg[b] * sum
					if opt.Threshold > 0 && v < opt.Threshold {
						if v != 0 {
							wst.SievedPairs++
						}
						v = 0
					}
					rowNext[b] = v
				}
			}
			stats[w].InnerAdds += wst.InnerAdds
			stats[w].OuterAdds += wst.OuterAdds
			stats[w].SievedPairs += wst.SievedPairs
		})
		prev, next = next, prev
	}
	for w := range stats {
		st.InnerAdds += stats[w].InnerAdds
		st.OuterAdds += stats[w].OuterAdds
		st.SievedPairs += stats[w].SievedPairs
	}
	return prev, st, nil
}
