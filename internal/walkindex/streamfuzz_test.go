package walkindex

import (
	"bytes"
	"testing"

	"oipsr/graph"
)

// FuzzStreamSliceBoundary fuzzes the streaming encoder's slice-boundary
// path: the budget decides where vertex-range slices cut across 64-vertex
// posting blocks, and wherever the cut lands — mid-block, at a block
// edge, one vertex per slice — the emitted file must stay byte-identical
// to the materialized SaveFormat(FormatV2) writer, for both full indexes
// and shard ranges. The seed corpus under testdata/fuzz pins the known
// hard geometries (budget 1, cuts at 63/64/65, shard ranges straddling a
// block).
func FuzzStreamSliceBoundary(f *testing.F) {
	// n8, deg, walks, k, budget, seed, lo8, hi8
	f.Add(uint8(65), uint8(3), uint8(4), uint8(3), int64(1), int64(7), uint8(10), uint8(200))
	f.Add(uint8(130), uint8(2), uint8(6), uint8(0), int64(63*24), int64(21), uint8(64), uint8(1))
	f.Add(uint8(200), uint8(3), uint8(8), uint8(5), int64(257), int64(-3), uint8(37), uint8(144))
	f.Add(uint8(1), uint8(0), uint8(1), uint8(1), int64(1), int64(0), uint8(0), uint8(255))
	f.Add(uint8(64), uint8(4), uint8(3), uint8(2), int64(1<<20), int64(99), uint8(0), uint8(64))
	f.Fuzz(func(t *testing.T, n8, deg, walks, k uint8, budget, seed int64, lo8, hi8 uint8) {
		n := int(n8)%200 + 1
		opt := Options{Walks: int(walks)%12 + 1, K: int(k) % 10, Seed: seed}
		if budget < 1 {
			budget = 1 - budget // negative/zero budgets are a rejection test, not this one
		}

		// Deterministic edge soup from the fuzzed seed — splitmix64 keeps the
		// graph a pure function of the input bytes.
		s := splitmix64(uint64(seed) ^ 0x9e3779b97f4a7c15)
		edges := make([][2]int, 0, n*(int(deg)%4))
		for i := 0; i < cap(edges); i++ {
			s = splitmix64(s)
			u := int(s % uint64(n))
			s = splitmix64(s)
			edges = append(edges, [2]int{u, int(s % uint64(n))})
		}
		g := graph.MustFromEdges(n, edges)

		ix, err := Build(g, opt)
		if err != nil {
			t.Skip() // invalid option combination; rejection is tested elsewhere
		}
		var want bytes.Buffer
		if err := ix.SaveFormat(&want, FormatV2); err != nil {
			t.Fatal(err)
		}
		var got memWriterAt
		st, err := BuildStreaming(g, opt, &got, budget)
		if err != nil {
			t.Fatalf("BuildStreaming(n=%d, budget=%d): %v", n, budget, err)
		}
		if !bytes.Equal(got.buf, want.Bytes()) {
			t.Fatalf("streamed index differs from materialized v2 (n=%d budget=%d slice=%d)", n, budget, st.SliceVertices)
		}

		// Shard range derived from the same bytes: lo anywhere, hi at or past
		// it — empty ranges included.
		lo := int(lo8) % (n + 1)
		hi := lo + int(hi8)%(n-lo+1)
		sx, err := BuildShard(g, opt, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		var wantS bytes.Buffer
		if err := sx.SaveFormat(&wantS, FormatV2); err != nil {
			t.Fatal(err)
		}
		var gotS memWriterAt
		if _, err := BuildShardStreaming(g, opt, lo, hi, &gotS, budget); err != nil {
			t.Fatalf("BuildShardStreaming([%d,%d), budget=%d): %v", lo, hi, budget, err)
		}
		if !bytes.Equal(gotS.buf, wantS.Bytes()) {
			t.Fatalf("streamed shard [%d,%d) differs from materialized v2 (budget=%d)", lo, hi, budget)
		}
	})
}
