package engine

import (
	"context"
	"time"

	"oipsr/graph"
	"oipsr/internal/linsr"
	"oipsr/internal/par"
	"oipsr/internal/simmat"
)

func init() { Register(linearizedEngine{base{Linearized}}) }

// linearizedEngine is Maehara et al.'s linearization (internal/linsr): a
// one-off diagonal-correction solve, then exact single-source rows with no
// n² state. All-pairs output is each row's single-source answer, so any
// row of Compute is bit-identical to the same SingleSource call.
type linearizedEngine struct{ base }

func (linearizedEngine) Caps() Caps {
	return Caps{AllPairs: true, SingleSource: true, SinglePair: true}
}

// solverParams maps the normalized Params onto linsr.Options: Eps is the
// solve tolerance, K (when set) pins the series horizon like the geometric
// engines' iteration count.
func solverParams(p Params) linsr.Options {
	return linsr.Options{C: p.C, Tol: p.Eps, T: p.K, Workers: p.Workers}
}

func (linearizedEngine) Compute(ctx context.Context, g *graph.Graph, p Params) (simmat.Source, *Stats, error) {
	sol, err := linsr.New(ctx, g, solverParams(p))
	if err != nil {
		return nil, nil, err
	}
	t0 := time.Now()
	n := g.NumVertices()
	m := simmat.New(n)
	workers := par.ResolveMax(p.Workers, n)
	errs := make([]error, workers)
	par.Do(workers, func(w int) {
		sc := sol.NewScratch()
		lo, hi := par.Range(n, workers, w)
		for q := lo; q < hi; q++ {
			if _, err := sol.SingleSourceScratch(ctx, q, m.Row(q), sc); err != nil {
				errs[w] = err
				return
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return m, linearizedStats(sol, n, time.Since(t0), simmat.StateBytes(n, 1)), nil
}

func (linearizedEngine) SingleSource(ctx context.Context, g *graph.Graph, p Params, q int) ([]float64, *Stats, error) {
	sol, err := linsr.New(ctx, g, solverParams(p))
	if err != nil {
		return nil, nil, err
	}
	t0 := time.Now()
	row, err := sol.SingleSource(ctx, q, nil)
	if err != nil {
		return nil, nil, err
	}
	return row, linearizedStats(sol, g.NumVertices(), time.Since(t0), 0), nil
}

func linearizedStats(sol *linsr.Solver, n int, compute time.Duration, stateBytes int64) *Stats {
	st := sol.Stats()
	return &Stats{
		Algorithm:   Linearized,
		Iterations:  st.SolveIters,
		PlanTime:    st.BuildTime,
		ComputeTime: compute,
		Residual:    st.Residual,
		AuxBytes:    st.AuxBytes,
		StateBytes:  stateBytes,
	}
}
