package simrank

import (
	"fmt"
	"time"
)

// Algorithm selects the SimRank engine.
type Algorithm string

// The available engines. See the package documentation for the trade-offs.
const (
	// OIPSR is the paper's partial-sums-sharing algorithm (Algorithm 1),
	// the default.
	OIPSR Algorithm = "oip-sr"
	// OIPDSR is the differential (exponential-convergence) SimRank with
	// OIP sharing.
	OIPDSR Algorithm = "oip-dsr"
	// PsumSR is Lizorkin et al.'s partial sums memoization baseline.
	PsumSR Algorithm = "psum-sr"
	// Naive is the original Jeh-Widom iteration.
	Naive Algorithm = "naive"
	// MtxSR is Li et al.'s SVD-based low-rank approximation.
	MtxSR Algorithm = "mtx-sr"
	// PRank is Penetrating Rank (Zhao et al.): SimRank generalized to use
	// both in- and out-links, with OIP sharing applied in both directions —
	// the extension the paper's Related Work describes.
	PRank Algorithm = "p-rank"
	// MonteCarlo is the Fogaras-Racz sampling estimator: s(a,b) is
	// estimated from the first meeting time of coupled reverse random
	// walks. Probabilistic; Theta(n^2) time independent of K.
	MonteCarlo Algorithm = "monte-carlo"
)

// Valid reports whether a is a known algorithm.
func (a Algorithm) Valid() bool {
	switch a {
	case OIPSR, OIPDSR, PsumSR, Naive, MtxSR, PRank, MonteCarlo:
		return true
	}
	return false
}

// Options configure Compute. The zero value means: OIP-SR, C = 0.6,
// accuracy eps = 1e-3 (the paper's defaults).
type Options struct {
	// Algorithm selects the engine; empty means OIPSR.
	Algorithm Algorithm

	// C is the damping factor in (0,1); 0 means 0.6.
	C float64

	// K fixes the iteration count. 0 means derive it from Eps: the
	// Lizorkin bound ceil(log_C eps)-style count for the geometric engines,
	// the Proposition-7 count for OIPDSR.
	K int

	// Eps is the desired accuracy when K == 0; 0 means 1e-3.
	Eps float64

	// Workers sets the worker-pool size of the iteration phase: 1 means
	// serial, anything below 1 means runtime.GOMAXPROCS(0). Every engine
	// partitions work so that scores — and, where reported, operation
	// counts — are bit-identical for every worker count; MtxSR's dense
	// linear algebra currently ignores the option.
	Workers int

	// StopDiff, when positive, stops geometric engines early once the
	// max-norm difference of successive iterates falls to or below it
	// (OIP-SR only; ignored elsewhere).
	StopDiff float64

	// Threshold enables psum-SR threshold sieving (PsumSR only).
	Threshold float64

	// Rank is the SVD truncation rank (MtxSR only); 0 means ceil(sqrt(n)).
	Rank int

	// Seed seeds randomized stages (MtxSR's SVD start block, MonteCarlo's
	// walks).
	Seed int64

	// Lambda weights P-Rank's in-link term against its out-link term
	// (PRank only); 0 means the balanced 0.5, 1 recovers SimRank.
	Lambda float64

	// COut is P-Rank's out-link damping factor (PRank only); 0 means C.
	COut float64

	// Walks is the number of sampled walk pairs per vertex pair
	// (MonteCarlo only); 0 means 100.
	Walks int

	// DisableOuterSharing ablates outer partial-sums sharing (OIPSR only).
	DisableOuterSharing bool

	// DensePartition builds the paper's O(n^2) DMST cost table instead of
	// the lossless overlap-based candidates (OIPSR / OIPDSR).
	DensePartition bool

	// UseEdmonds forces the general Chu-Liu/Edmonds MST backend instead of
	// the greedy DAG fast path (OIPSR / OIPDSR).
	UseEdmonds bool

	// PairCap bounds candidate-pair generation per shared in-neighbor
	// (OIPSR / OIPDSR); 0 means unlimited.
	PairCap int

	// BlockSize, when positive, selects the tiled score-matrix backend:
	// the n x n state becomes a grid of BlockSize x BlockSize tiles with
	// symmetric (upper-triangular) storage, a bounded working set, and
	// spill-to-disk for evicted tiles. Supported by OIPSR, OIPDSR, PsumSR
	// and Naive; scores are bit-identical to the dense backend for every
	// block size and worker count. Results computed this way hold tile
	// resources — call Scores.Close when done.
	BlockSize int

	// MaxMemoryBytes caps the resident tile bytes of the whole computation
	// (all score matrices together) when the tiled backend is selected;
	// least-recently-used tiles are evicted to SpillDir when the cap is
	// hit. 0 means unbounded. Ignored unless BlockSize > 0.
	MaxMemoryBytes int64

	// SpillDir is where evicted tiles are written (a fresh temporary
	// directory when empty, removed on Scores.Close). Ignored unless
	// BlockSize > 0.
	SpillDir string
}

func (o Options) validate() error {
	if o.Algorithm != "" && !o.Algorithm.Valid() {
		return fmt.Errorf("simrank: unknown algorithm %q", o.Algorithm)
	}
	return nil
}

// Stats reports what a computation did. Fields not applicable to the chosen
// engine are zero.
type Stats struct {
	Algorithm  Algorithm
	Iterations int

	// PlanTime covers preprocessing (DMST-Reduce for the OIP engines, the
	// truncated SVD for MtxSR); ComputeTime covers the iteration phase.
	PlanTime    time.Duration
	ComputeTime time.Duration

	// InnerAdds and OuterAdds count scalar additions on inner/outer partial
	// sums (the paper's cost unit). Zero for Naive and MtxSR.
	InnerAdds int64
	OuterAdds int64

	// AuxBytes is auxiliary memory beyond the score matrices — the
	// "intermediate memory" of the paper's Fig. 6d. StateBytes is the
	// n^2-sized state the engine holds while running.
	AuxBytes   int64
	StateBytes int64

	// Sharing metrics (OIP engines): fraction of partial-sum additions
	// avoided, the mean symmetric-difference size d_(+) over shared MST
	// edges, and the number of non-empty in-neighbor sets.
	ShareRatio float64
	AvgDiff    float64
	NumSets    int

	// FinalDiff is the last successive-iterate max-norm difference when
	// StopDiff was used.
	FinalDiff float64

	// Rank is the SVD rank used (MtxSR).
	Rank int

	// SievedPairs counts threshold-sieved scores (PsumSR).
	SievedPairs int64

	// Tiled-backend accounting (zero unless Options.BlockSize > 0):
	// TilePeakBytes is the peak resident tile memory, TileSpills counts
	// dirty tiles evicted to disk, TileLoads counts tiles paged back in,
	// and TileSpilledBytes is the exact cumulative spill traffic.
	TilePeakBytes    int64
	TileSpills       int64
	TileLoads        int64
	TileSpilledBytes int64
}
