// Quickstart: compute SimRank on the paper's running example.
//
// Builds the 9-vertex citation network of Fig. 1a, computes all-pairs
// SimRank with the default engine (OIP-SR, C = 0.6, accuracy 1e-3), prints
// the similarity of a few pairs from the worked example of Fig. 4, and
// answers a top-k query.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"oipsr/graph"
	"oipsr/simrank"
)

func main() {
	// Vertex ids for the paper's Fig. 1a: a=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7 i=8.
	// An edge u -> v means "u cites v"... in SimRank terms, u is an
	// in-neighbor of v.
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i"}
	const (
		a, b, c, d, e, f, g, h, i = 0, 1, 2, 3, 4, 5, 6, 7, 8
	)
	gr := graph.MustFromEdges(9, [][2]int{
		{b, a}, {g, a}, // I(a) = {b, g}
		{e, b}, {f, b}, {g, b}, {i, b}, // I(b) = {e, f, g, i}
		{b, c}, {d, c}, {g, c}, // I(c) = {b, d, g}
		{a, d}, {e, d}, {f, d}, {i, d}, // I(d) = {a, e, f, i}
		{f, e}, {g, e}, // I(e) = {f, g}
		{b, h}, {d, h}, // I(h) = {b, d}
	})

	scores, stats, err := simrank.Compute(gr, simrank.Options{}) // all defaults
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("computed %d iterations of OIP-SR in %v (+%v planning)\n",
		stats.Iterations, stats.ComputeTime, stats.PlanTime)
	fmt.Printf("partial-sums sharing saved %.0f%% of the additions psum-SR would spend\n\n",
		100*stats.ShareRatio)

	fmt.Println("pairwise similarities (paper's running example):")
	for _, pair := range [][2]int{{a, b}, {a, d}, {a, c}, {h, c}, {b, d}} {
		fmt.Printf("  s(%s, %s) = %.4f\n", names[pair[0]], names[pair[1]],
			scores.Score(pair[0], pair[1]))
	}

	fmt.Println("\npapers most similar to d:")
	for rank, r := range scores.TopK(d, 3) {
		fmt.Printf("  %d. %s (%.4f)\n", rank+1, names[r.Vertex], r.Score)
	}
}
