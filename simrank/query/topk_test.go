package query

import (
	"context"
	"math"
	"testing"

	"oipsr/graph"
	"oipsr/graph/gen"
	"oipsr/internal/eval"
	"oipsr/simrank"
)

// exactScores runs the batch OIP-SR engine as ground truth, with the same
// damping factor and truncation the index uses.
func exactScores(t *testing.T, g *graph.Graph, c float64, k int) *simrank.Scores {
	t.Helper()
	scores, _, err := simrank.Compute(g, simrank.Options{
		Algorithm: simrank.OIPSR, C: c, K: k,
	})
	if err != nil {
		t.Fatal(err)
	}
	return scores
}

// precisionAtK adapts eval.PrecisionAtK (the tie-fair threshold metric the
// bench query workload also reports) to a []Ranked result list.
func precisionAtK(exactRow []float64, q int, got []Ranked, k int) float64 {
	ids := make([]int, len(got))
	for i, r := range got {
		ids[i] = r.Vertex
	}
	return eval.PrecisionAtK(exactRow, q, ids, k)
}

// TestTopKPrecisionVsExact is the accuracy gate of the satellite checklist:
// on <=200-vertex generated graphs with a fixed seed, index top-10 must
// reach precision@10 >= 0.9 against exact OIP-SR, both raw and reranked.
func TestTopKPrecisionVsExact(t *testing.T) {
	const k = 10
	cases := []struct {
		name  string
		g     *graph.Graph
		walks int
	}{
		{"web150", gen.WebGraph(150, 8, 101), 1200},
		{"citation200", gen.CitationGraph(200, 5, 102), 2400},
		{"coauthor180", gen.CoauthorGraph(180, 4, 103), 1200},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ix, err := BuildIndex(tc.g, Options{Walks: tc.walks, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			exact := exactScores(t, tc.g, ix.C(), ix.Horizon())

			queries := spread(tc.g.NumVertices(), 8)
			var sumRaw, sumRerank float64
			for _, q := range queries {
				row := exact.Row(q)
				raw, err := ix.TopK(context.Background(), q, k, nil)
				if err != nil {
					t.Fatal(err)
				}
				sumRaw += precisionAtK(row, q, raw, k)

				rr, err := ix.TopK(context.Background(), q, k, &TopKOptions{Rerank: true})
				if err != nil {
					t.Fatal(err)
				}
				sumRerank += precisionAtK(row, q, rr, k)
			}
			nq := float64(len(queries))
			if p := sumRaw / nq; p < 0.9 {
				t.Errorf("raw precision@%d = %.3f, want >= 0.9", k, p)
			}
			if p := sumRerank / nq; p < 0.9 {
				t.Errorf("reranked precision@%d = %.3f, want >= 0.9", k, p)
			}
			t.Logf("%s: precision@%d raw %.3f, reranked %.3f",
				tc.name, k, sumRaw/nq, sumRerank/nq)
		})
	}
}

// spread returns count query vertices spaced evenly over [0, n).
func spread(n, count int) []int {
	if count > n {
		count = n
	}
	qs := make([]int, count)
	for i := range qs {
		qs[i] = i * n / count
	}
	return qs
}

// TestExactScorerMatchesBatch: the pruned partial-sums recursion must
// reproduce the batch engine's truncated scores when the prune threshold
// is effectively off.
func TestExactScorerMatchesBatch(t *testing.T) {
	g := gen.WebGraph(60, 5, 55)
	const c, k = 0.6, 8
	exact := exactScores(t, g, c, k)
	ex := newExactScorer(g, c, k, 1e-15)
	for a := 0; a < 60; a += 5 {
		for b := 0; b < 60; b += 7 {
			got := ex.pair(a, b)
			want := exact.Score(a, b)
			if math.Abs(got-want) > 1e-8 {
				t.Fatalf("exactScorer(%d,%d) = %.12f, batch = %.12f", a, b, got, want)
			}
		}
	}
}

// TestExactScorerPruning: coarser prune thresholds only degrade scores,
// and the default threshold stays close to the unpruned value.
func TestExactScorerPruning(t *testing.T) {
	g := gen.WebGraph(60, 5, 56)
	const c, k = 0.6, 10
	full := newExactScorer(g, c, k, 1e-15)
	def := newExactScorer(g, c, k, 1e-5) // the TopK default
	for a := 0; a < 60; a += 9 {
		for b := 0; b < 60; b += 4 {
			f, d := full.pair(a, b), def.pair(a, b)
			// Pruning only removes non-negative contribution mass.
			if d > f+1e-12 {
				t.Fatalf("pruned s(%d,%d) = %.9f exceeds unpruned %.9f", a, b, d, f)
			}
			if f-d > 1e-3 {
				t.Fatalf("default pruning changed s(%d,%d) by %.6f, want <= 1e-3", a, b, f-d)
			}
		}
	}
}

// TestRerankImprovesOrNotWorse: on a small graph with a deliberately
// noisy index (few walks), reranking must not lower mean precision.
func TestRerankImprovesOrNotWorse(t *testing.T) {
	g := gen.WebGraph(120, 7, 77)
	ix, err := BuildIndex(g, Options{Walks: 80, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	exact := exactScores(t, g, ix.C(), ix.Horizon())
	const k = 10
	var sumRaw, sumRerank float64
	queries := spread(120, 10)
	for _, q := range queries {
		row := exact.Row(q)
		raw, err := ix.TopK(context.Background(), q, k, nil)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := ix.TopK(context.Background(), q, k, &TopKOptions{Rerank: true})
		if err != nil {
			t.Fatal(err)
		}
		sumRaw += precisionAtK(row, q, raw, k)
		sumRerank += precisionAtK(row, q, rr, k)
	}
	if sumRerank < sumRaw-1e-9 {
		t.Errorf("rerank lowered mean precision: raw %.3f, reranked %.3f",
			sumRaw/float64(len(queries)), sumRerank/float64(len(queries)))
	}
}
