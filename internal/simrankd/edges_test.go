package simrankd

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"oipsr/graph"
	"oipsr/graph/gen"
	"oipsr/simrank/query"
)

func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// testEditBatch builds the canonical e2e batch against g: a few fresh
// adds plus removals of g's first two actual edges, returned both as the
// POST /v1/edges JSON body and as the equivalent graph.Edit slice.
func testEditBatch(t *testing.T, g *graph.Graph) (string, []graph.Edit) {
	t.Helper()
	edits := []graph.Edit{
		{Op: graph.EditAdd, U: 0, V: 9}, {Op: graph.EditAdd, U: 9, V: 0}, {Op: graph.EditAdd, U: 0, V: 17},
		{Op: graph.EditAdd, U: 33, V: 14}, {Op: graph.EditAdd, U: 60, V: 61}, {Op: graph.EditAdd, U: 61, V: 60},
	}
	count := 0
	g.Edges(func(u, v int) bool {
		edits = append(edits, graph.Edit{Op: graph.EditRemove, U: u, V: v})
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatal("test graph has fewer than 2 edges")
	}
	var reqs []edgeEdit
	for _, e := range edits {
		op := "add"
		if e.Op == graph.EditRemove {
			op = "remove"
		}
		reqs = append(reqs, edgeEdit{Op: op, U: e.U, V: e.V})
	}
	body, err := json.Marshal(edgesRequest{Edits: reqs})
	if err != nil {
		t.Fatal(err)
	}
	return string(body), edits
}

// TestEdgesEndToEnd is the acceptance e2e: POST /v1/edges followed by
// queries must return byte-identical bodies to a restarted server whose
// index was built fresh on the edited graph.
func TestEdgesEndToEnd(t *testing.T) {
	g := gen.WebGraph(100, 8, 55)
	opt := query.Options{Walks: 300, Seed: 9}
	idx, err := query.BuildIndex(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	live := httptest.NewServer(newServer(idx, 64, 2))
	defer live.Close()
	editsJSON, edits := testEditBatch(t, g)

	// Warm the cache with pre-edit responses on the queries we will
	// re-issue post-edit.
	queries := []string{
		"/v1/topk?q=9&k=10",
		"/v1/topk?q=0&k=5&rerank=1",
		"/v1/single_source?q=9&min=0.001",
		"/v1/single_source?q=61",
	}
	preEdit := map[string][]byte{}
	for _, p := range queries {
		code, body := get(t, live.URL+p)
		if code != http.StatusOK {
			t.Fatalf("pre-edit GET %s: status %d, body %s", p, code, body)
		}
		preEdit[p] = body
		get(t, live.URL+p) // second hit comes from the LRU
	}

	code, body := postJSON(t, live.URL+"/v1/edges", editsJSON)
	if code != http.StatusOK {
		t.Fatalf("POST /v1/edges: status %d, body %s", code, body)
	}
	var er edgesResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Generation != 1 || er.Added == 0 || er.Removed == 0 || er.WalksRepaired == 0 {
		t.Fatalf("edges response = %+v, want generation 1 with effective changes", er)
	}

	// The "restarted server": fresh index built on the edited graph.
	g2, _, err := g.ApplyEdits(edits)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != er.Edges {
		t.Fatalf("server reports %d edges, offline edit gives %d", er.Edges, g2.NumEdges())
	}
	fresh, err := query.BuildIndex(g2, opt)
	if err != nil {
		t.Fatal(err)
	}
	restarted := httptest.NewServer(newServer(fresh, 64, 2))
	defer restarted.Close()

	for _, p := range queries {
		codeL, bodyL := get(t, live.URL+p)
		codeR, bodyR := get(t, restarted.URL+p)
		if codeL != http.StatusOK || codeR != http.StatusOK {
			t.Fatalf("post-edit GET %s: status %d / %d", p, codeL, codeR)
		}
		if !bytes.Equal(bodyL, bodyR) {
			t.Errorf("post-edit %s: live body differs from restarted server\nlive:      %s\nrestarted: %s", p, bodyL, bodyR)
		}
		if bytes.Equal(bodyL, preEdit[p]) && p != "/v1/single_source?q=61" {
			// q=61 gained its first edges, so its pre-edit body (all zeros)
			// must change; the others were chosen to change too — but the
			// real guarantee is live == restarted, checked above.
			t.Logf("note: %s response unchanged by the batch", p)
		}
	}
}

// TestEdgesInvalidatesCache: a cached pre-edit response must never be
// served after an update, even for the identical URL.
func TestEdgesInvalidatesCache(t *testing.T) {
	g := gen.WebGraph(80, 6, 12)
	idx, err := query.BuildIndex(g, query.Options{Walks: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(idx, 64, 1)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const url = "/v1/topk?q=7&k=5"
	get(t, ts.URL+url)
	get(t, ts.URL+url)
	hits0, misses0 := srv.cache.Stats()
	if hits0 != 1 || misses0 != 1 {
		t.Fatalf("warmup: hits=%d misses=%d, want 1/1", hits0, misses0)
	}

	// An effective edit bumps the generation; the same URL must miss the
	// cache (the old entry's key embeds the old generation).
	code, body := postJSON(t, ts.URL+"/v1/edges", `{"edits":[{"op":"add","u":50,"v":7},{"op":"add","u":51,"v":7}]}`)
	if code != http.StatusOK {
		t.Fatalf("POST /v1/edges: status %d, body %s", code, body)
	}
	get(t, ts.URL+url)
	hits1, misses1 := srv.cache.Stats()
	if hits1 != hits0 {
		t.Fatalf("post-edit request hit the stale cache (hits %d -> %d)", hits0, hits1)
	}
	if misses1 != misses0+1 {
		t.Fatalf("post-edit request missed %d times, want exactly one more than %d", misses1, misses0)
	}

	// A pure no-op batch must NOT invalidate: generation stays, cache hits.
	code, body = postJSON(t, ts.URL+"/v1/edges", `{"edits":[{"op":"add","u":50,"v":7}]}`)
	if code != http.StatusOK {
		t.Fatalf("no-op POST /v1/edges: status %d, body %s", code, body)
	}
	var er edgesResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Added != 0 || er.Removed != 0 || er.Generation != 1 {
		t.Fatalf("no-op batch response = %+v", er)
	}
	get(t, ts.URL+url)
	hits2, _ := srv.cache.Stats()
	if hits2 != hits1+1 {
		t.Fatalf("no-op batch invalidated the cache (hits %d -> %d)", hits1, hits2)
	}
}

// TestConcurrentQueriesAndUpdates hammers the server with parallel reads
// while edit batches land, verifying the RWMutex guard under -race and
// that every response is well-formed at whatever generation served it.
func TestConcurrentQueriesAndUpdates(t *testing.T) {
	g := gen.WebGraph(60, 6, 31)
	idx, err := query.BuildIndex(g, query.Options{Walks: 100, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(idx, 32, 2))
	defer ts.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				q := (i*7 + r) % 60
				code, body := get(t, ts.URL+"/v1/topk?q="+strconv.Itoa(q)+"&k=5")
				if code != http.StatusOK {
					t.Errorf("reader %d: status %d, body %s", r, code, body)
					return
				}
				var resp topKResponse
				if err := json.Unmarshal(body, &resp); err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
			}
		}(r)
	}
	for i := 0; i < 10; i++ {
		u, v := (i*13)%60, (i*29+7)%60
		op := "add"
		if i%3 == 2 {
			op = "remove"
		}
		body := `{"edits":[{"op":"` + op + `","u":` + strconv.Itoa(u) + `,"v":` + strconv.Itoa(v) + `}]}`
		if code, resp := postJSON(t, ts.URL+"/v1/edges", body); code != http.StatusOK {
			t.Fatalf("update %d: status %d, body %s", i, code, resp)
		}
	}
	close(done)
	wg.Wait()
}

// TestEdgesValidation: malformed bodies and invalid edits are rejected
// without changing the served graph.
func TestEdgesValidation(t *testing.T) {
	g := gen.WebGraph(40, 5, 2)
	idx, err := query.BuildIndex(g, query.Options{Walks: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(idx, 16, 1))
	defer ts.Close()

	for _, body := range []string{
		`not json`,
		`{"edits":[{"op":"frobnicate","u":0,"v":1}]}`,
		`{"edits":[{"op":"add","u":0,"v":40}]}`, // out of range
		`{"edits":[{"op":"add","u":-1,"v":0}]}`, // negative
		`{"editz":[{"op":"add","u":0,"v":1}]}`,  // unknown field
	} {
		code, resp := postJSON(t, ts.URL+"/v1/edges", body)
		if code != http.StatusBadRequest {
			t.Errorf("POST /v1/edges %q: status %d, want 400 (resp %s)", body, code, resp)
		}
	}
	// Nothing above may have bumped the generation.
	if idx.Generation() != 0 {
		t.Fatalf("rejected batches bumped generation to %d", idx.Generation())
	}
}

// TestMethodNotAllowed: /v1 endpoints answer 405 (with Allow) for methods
// they don't serve, instead of silently handling them.
func TestMethodNotAllowed(t *testing.T) {
	_, idx := testIndex(t)
	ts := httptest.NewServer(newServer(idx, 16, 1))
	defer ts.Close()

	check := func(method, path, wantAllow string) {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405 (body %s)", method, path, resp.StatusCode, body)
		}
		if got := resp.Header.Get("Allow"); got != wantAllow {
			t.Errorf("%s %s: Allow = %q, want %q", method, path, got, wantAllow)
		}
	}
	check(http.MethodDelete, "/v1/topk?q=1", "GET, POST")
	check(http.MethodPut, "/v1/single_source?q=1", "GET, POST")
	check(http.MethodGet, "/v1/edges", "POST")
	check(http.MethodDelete, "/v1/edges", "POST")
}

// TestMinCacheKeyCanonical: equivalent spellings of min must share one
// cache entry, keyed on the parsed value.
func TestMinCacheKeyCanonical(t *testing.T) {
	_, idx := testIndex(t)
	srv := newServer(idx, 64, 1)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var bodies [][]byte
	for _, m := range []string{"0.01", "0.010", "1e-2"} {
		code, body := get(t, ts.URL+"/v1/single_source?q=3&min="+m)
		if code != http.StatusOK {
			t.Fatalf("min=%s: status %d", m, code)
		}
		bodies = append(bodies, body)
	}
	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatal("equivalent min spellings returned different bodies")
		}
	}
	hits, misses := srv.cache.Stats()
	if misses != 1 || hits != 2 {
		t.Fatalf("cache stats hits=%d misses=%d, want 2 hits / 1 miss for three equivalent spellings", hits, misses)
	}
}

// TestErrorPathsCountLatency: 4xx responses contribute latency samples
// (the pre-fix code only counted successes, skewing the average).
func TestErrorPathsCountLatency(t *testing.T) {
	_, idx := testIndex(t)
	srv := newServer(idx, 16, 1)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	get(t, ts.URL+"/v1/topk")              // 400: missing q
	get(t, ts.URL+"/v1/single_source?q=x") // 400: bad q
	postJSON(t, ts.URL+"/v1/edges", `bad`) // 400: bad body
	if n := srv.latency.Count(); n != 3 {
		t.Fatalf("latency samples = %d after 3 error responses, want 3", n)
	}
	get(t, ts.URL+"/v1/topk?q=1&k=3")
	if n := srv.latency.Count(); n != 4 {
		t.Fatalf("latency samples = %d after a success, want 4", n)
	}
}
