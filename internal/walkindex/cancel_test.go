package walkindex

import (
	"context"
	"errors"
	"testing"
	"time"

	"oipsr/graph/gen"
)

// TestQueriesHonorCancellation: a cancelled context aborts every query
// path with the context's error instead of completing the sweep.
func TestQueriesHonorCancellation(t *testing.T) {
	g := gen.WebGraph(300, 6, 17)
	ix, err := Build(g, Options{Walks: 50, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := ix.SingleSource(cancelled, 5, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("SingleSource on cancelled ctx: err = %v, want context.Canceled", err)
	}
	for _, workers := range []int{1, 3} {
		if _, err := ix.MultiSource(cancelled, []int{1, 2, 3}, workers); !errors.Is(err, context.Canceled) {
			t.Errorf("MultiSource(workers=%d) on cancelled ctx: err = %v, want context.Canceled", workers, err)
		}
		if _, err := ix.Join(cancelled, 10, 0.05, 1<<20, workers); !errors.Is(err, context.Canceled) {
			t.Errorf("Join(workers=%d) on cancelled ctx: err = %v, want context.Canceled", workers, err)
		}
	}

	// An expired deadline surfaces as DeadlineExceeded, the error servers
	// map to their timeout status.
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := ix.SingleSource(expired, 0, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("SingleSource on expired deadline: err = %v, want context.DeadlineExceeded", err)
	}
}

// TestCancellationMidSweep: cancelling while a sweep is in flight makes it
// return promptly with the context's error (the chunk-boundary polls).
func TestCancellationMidSweep(t *testing.T) {
	g := gen.WebGraph(400, 8, 23)
	ix, err := Build(g, Options{Walks: 200, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		for {
			if _, err := ix.MultiSource(ctx, []int{0, 50, 100, 150}, 2); err != nil {
				done <- err
				return
			}
		}
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("mid-sweep cancel returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sweep did not notice cancellation within 5s")
	}
}
