package simrankd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"oipsr/graph"
	"oipsr/internal/lru"
	"oipsr/simrank/query"
	"oipsr/simrank/shard"
)

// Router is the stateless scatter/gather front of a shard fleet. It
// serves the exact public /v1 surface of the single-node daemon —
// single_source, topk, batch, join, edges — by scattering each query to
// the shard backends over HTTP and merging their partials:
//
//   - dense score rows merge by concatenation (each shard owns a disjoint
//     contiguous vertex range), so no float arithmetic happens in the
//     merge and the assembled row is bit-identical to the single-node one;
//   - top-k ranking and the optional exact rerank run once, at the
//     router, over the merged row (the exact scorer's memoization is not
//     bit-stable across visiting orders, so per-shard reranking would
//     diverge);
//   - joins scatter along the fingerprint axis (each backend enumerates
//     candidates for one fp range), union at the router, and scatter pair
//     scoring back to the owner of each pair's first vertex;
//   - /v1/edges broadcasts to every backend — edits are idempotent at the
//     graph layer, so retrying a partially-applied broadcast converges.
//
// The router holds the full graph (tiny next to the walk rows, which live
// only on the shards) for reranking and for validating edits, and an LRU
// response cache keyed by the per-shard generation vector: any shard
// update changes the vector, so stale merges are unreachable, exactly the
// single-node generation-key scheme lifted to a fleet.
//
// Overload discipline is inherited wholesale from the embedded serving:
// deadlines, admission control, shedding. On top of it, each scatter leg
// runs under ShardTimeout; a backend that sheds, fails, or times out
// mid-scatter costs its vertex range, not the request — the merged answer
// reports zeros for the missing range, carries "degraded":true and the
// X-Simrank-Degraded header, and is never cached.
type Router struct {
	serving

	// mu guards g and gens: queries hold RLock for their whole
	// scatter/merge (so an edits broadcast cannot interleave), /v1/edges
	// holds Lock across its broadcast.
	mu   sync.RWMutex
	g    *graph.Graph
	gens []uint64

	client       *http.Client
	backends     []string
	ranges       []shard.Range
	fpRanges     []shard.Range
	shardTimeout time.Duration

	n       int
	walks   int
	horizon int
	c       float64

	cache *lru.Cache[string, []byte]
	mux   *http.ServeMux

	// exact holds the lazily-built linearized solver behind the router's
	// ?engine=linearized queries (see engine.go) — the router has the full
	// graph, so exact rows are solved locally, not scattered.
	exact routerExact

	reqSingleSource atomic.Int64
	reqTopK         atomic.Int64
	reqBatch        atomic.Int64
	reqJoin         atomic.Int64
	reqEdges        atomic.Int64

	batchItems      atomic.Int64
	batchItemErrors atomic.Int64

	// shardErrors counts failed scatter legs (shed, error, timeout) —
	// each one degrades a merged answer.
	shardErrors  atomic.Int64
	updatesTotal atomic.Int64
	updateMicros atomic.Int64
}

// DefaultShardTimeout bounds one scatter leg when RouterConfig.ShardTimeout
// is zero: long enough for a cold partial sweep, short enough that a hung
// backend degrades the answer instead of consuming the whole request
// deadline.
const DefaultShardTimeout = 5 * time.Second

// RouterConfig configures a Router: the shared serving knobs plus the
// per-backend scatter deadline.
type RouterConfig struct {
	Config
	// ShardTimeout is the deadline of one scatter leg to one backend
	// (always also capped by the request deadline); 0 means
	// DefaultShardTimeout.
	ShardTimeout time.Duration
}

// NewRouter probes every backend's /healthz, validates that they form a
// contiguous partition of one index (same n, walks, horizon, c, seed;
// ranges covering [0, n)), and returns the scatter/gather handler. g must
// be the same graph the shards were built on — the router reranks and
// validates edits against it. Backends may be listed in any order.
func NewRouter(g *graph.Graph, backends []string, cfg RouterConfig) (*Router, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("simrankd: router needs at least one shard backend")
	}
	rt := &Router{
		g:            g,
		client:       &http.Client{},
		shardTimeout: cfg.ShardTimeout,
		mux:          http.NewServeMux(),
	}
	if rt.shardTimeout <= 0 {
		rt.shardTimeout = DefaultShardTimeout
	}
	rt.initServing(cfg.Config)
	cacheSize := cfg.CacheSize
	if cacheSize == 0 {
		cacheSize = DefaultCacheSize
	}
	rt.cache = lru.New[string, []byte](cacheSize)

	// Probe each backend, then sort by range so backends[i] owns ranges[i]
	// in ascending vertex order.
	type probed struct {
		url string
		h   shardHealthzResponse
	}
	probes := make([]probed, 0, len(backends))
	for _, base := range backends {
		base = strings.TrimRight(base, "/")
		ctx, cancel := context.WithTimeout(context.Background(), rt.shardTimeout)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("simrankd: probing %s: %w", base, err)
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("simrankd: probing %s: %w", base, err)
		}
		var h shardHealthzResponse
		err = json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		cancel()
		if err != nil {
			return nil, fmt.Errorf("simrankd: probing %s: %w", base, err)
		}
		probes = append(probes, probed{url: base, h: h})
	}
	sort.Slice(probes, func(i, j int) bool { return probes[i].h.Lo < probes[j].h.Lo })

	first := probes[0].h
	if g.NumVertices() != first.Vertices {
		return nil, fmt.Errorf("simrankd: router graph has %d vertices, shards were built on %d", g.NumVertices(), first.Vertices)
	}
	next := 0
	for _, p := range probes {
		h := p.h
		if h.Vertices != first.Vertices || h.Walks != first.Walks || h.Horizon != first.Horizon ||
			h.C != first.C || h.Seed != first.Seed {
			return nil, fmt.Errorf("simrankd: backend %s disagrees with the fleet (n=%d walks=%d horizon=%d c=%v seed=%d)",
				p.url, h.Vertices, h.Walks, h.Horizon, h.C, h.Seed)
		}
		if h.Lo != next || h.Hi < h.Lo {
			return nil, fmt.Errorf("simrankd: backend %s range [%d,%d) breaks the partition at %d", p.url, h.Lo, h.Hi, next)
		}
		next = h.Hi
		rt.backends = append(rt.backends, p.url)
		rt.ranges = append(rt.ranges, shard.Range{Lo: h.Lo, Hi: h.Hi})
		rt.gens = append(rt.gens, h.Generation)
	}
	if next != first.Vertices {
		return nil, fmt.Errorf("simrankd: backends cover [0,%d) of [0,%d)", next, first.Vertices)
	}
	rt.n = first.Vertices
	rt.walks = first.Walks
	rt.horizon = first.Horizon
	rt.c = first.C
	fpRanges, err := shard.Plan(rt.walks, len(rt.backends))
	if err != nil {
		return nil, err
	}
	rt.fpRanges = fpRanges

	rt.mux.HandleFunc("/v1/single_source", rt.limited(rt.handleSingleSource))
	rt.mux.HandleFunc("/v1/topk", rt.limited(rt.handleTopK))
	rt.mux.HandleFunc("/v1/batch", rt.limited(rt.handleBatch))
	rt.mux.HandleFunc("/v1/join", rt.limited(rt.handleJoin))
	rt.mux.HandleFunc("/v1/edges", rt.limited(rt.handleEdges))
	rt.mux.HandleFunc("/healthz", rt.handleHealthz)
	rt.mux.HandleFunc("/metrics", rt.handleMetrics)
	return rt, nil
}

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mux.ServeHTTP(w, r)
}

// shardHTTPError is a non-200 answer from a backend, preserving the
// status so join-candidate 400s (deterministic client errors, e.g.
// too-dense) can be propagated verbatim while 429/5xx degrade.
type shardHTTPError struct {
	status int
	msg    string
}

func (e *shardHTTPError) Error() string { return e.msg }

// postShard posts one JSON request to a backend and decodes the JSON
// response, under a child deadline of shardTimeout (the request deadline
// still applies — a leg never outlives its request).
func (rt *Router) postShard(ctx context.Context, base, path string, reqBody, out any) error {
	payload, err := json.Marshal(reqBody)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(ctx, rt.shardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eresp errorResponse
		if derr := json.NewDecoder(resp.Body).Decode(&eresp); derr != nil || eresp.Error == "" {
			eresp.Error = fmt.Sprintf("backend %s: status %d", base, resp.StatusCode)
		}
		return &shardHTTPError{status: resp.StatusCode, msg: eresp.Error}
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// genTagLocked renders the per-shard generation vector as the cache-key
// prefix ("0.0.2" for three shards). Callers hold mu (either side).
func (rt *Router) genTagLocked() string {
	var b strings.Builder
	for i, g := range rt.gens {
		if i > 0 {
			b.WriteByte('.')
		}
		fmt.Fprintf(&b, "%d", g)
	}
	return b.String()
}

// Router cache keys mirror the single-node ones with the generation
// vector in place of the single generation; the per-request parameter
// canonicalization (threshold decimal form, etc.) is shared.
func rtSSKey(tag string, q int, min float64) string {
	return fmt.Sprintf("g%s:ss:%d:%s", tag, q, strconv.FormatFloat(min, 'g', -1, 64))
}

func rtTopKKey(tag string, q, k int, rerank bool) string {
	return fmt.Sprintf("g%s:topk:%d:%d:%t", tag, q, k, rerank)
}

func rtJoinKey(tag string, k int, threshold float64, maxCand int) string {
	return fmt.Sprintf("g%s:join:%d:%s:%d", tag, k,
		strconv.FormatFloat(threshold, 'g', -1, 64), maxCand)
}

// scatterScores scatters one batch of sources to every backend and merges
// the partial rows into rows (caller-allocated, len(sources) × n, zeroed).
// It reports degraded=true when any backend's partial is missing (failed,
// shed, timed out) or was served at a generation other than the recorded
// one — either way the merge is not the current single-node answer and
// must not be cached. Callers hold mu.RLock.
func (rt *Router) scatterScores(ctx context.Context, sources []int, rows [][]float64) (degraded bool, err error) {
	var wg sync.WaitGroup
	failed := make([]bool, len(rt.backends))
	for i := range rt.backends {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := rt.ranges[i]
			var resp shardScoresResponse
			if err := rt.postShard(ctx, rt.backends[i], "/shard/v1/scores", shardScoresRequest{Sources: sources}, &resp); err != nil {
				failed[i] = true
				return
			}
			if resp.Lo != want.Lo || resp.Hi != want.Hi || len(resp.Rows) != len(sources) ||
				resp.Generation != rt.gens[i] {
				failed[i] = true
				return
			}
			for si, row := range resp.Rows {
				if len(row) != want.Hi-want.Lo {
					failed[i] = true
					return
				}
				copy(rows[si][want.Lo:want.Hi], row)
			}
		}(i)
	}
	wg.Wait()
	// A dead request deadline explains every leg failing; report the
	// context (503) rather than a fully-zeroed "degraded" answer.
	if err := ctx.Err(); err != nil {
		return false, err
	}
	for _, f := range failed {
		if f {
			rt.shardErrors.Add(1)
			degraded = true
		}
	}
	return degraded, nil
}

// handleSingleSource serves GET/POST /v1/single_source?q=17[&min=0.01] —
// the same contract (and byte-identical bodies) as the single-node
// daemon, assembled from per-shard partial rows.
func (rt *Router) handleSingleSource(w http.ResponseWriter, r *http.Request) {
	rt.reqSingleSource.Add(1)
	if !rt.checkMethod(w, r, http.MethodGet, http.MethodPost) {
		return
	}
	eng, err := engineParam(r)
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rt.countEngine(eng)
	q, err := intParam(r, "q", 0, true)
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	minRaw := r.FormValue("min")
	var minVal float64
	if minRaw != "" {
		minVal, err = strconv.ParseFloat(minRaw, 64)
		if err != nil {
			rt.writeError(w, http.StatusBadRequest, "parameter \"min\": %v", err)
			return
		}
	}
	if q < 0 || q >= rt.n {
		rt.writeError(w, http.StatusBadRequest, "query: vertex %d out of range [0,%d)", q, rt.n)
		return
	}

	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if eng == engineLinearized {
		rt.serveSingleSourceExact(w, r, q, minRaw != "", minVal)
		return
	}
	cacheable := minRaw != ""
	var key string
	if cacheable {
		key = rtSSKey(rt.genTagLocked(), q, minVal)
		if body, ok := rt.cache.Get(key); ok {
			writeJSONBytes(w, body)
			return
		}
	}

	rows := [][]float64{make([]float64, rt.n)}
	degraded, err := rt.scatterScores(r.Context(), []int{q}, rows)
	if err != nil {
		rt.writeQueryError(w, err, http.StatusBadRequest)
		return
	}
	body, err := rt.singleSourceBody(q, rows[0], cacheable, minVal, degraded)
	if err != nil {
		rt.writeError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	if degraded {
		rt.degradedTotal.Add(1)
		w.Header().Set("X-Simrank-Degraded", "true")
	} else if cacheable {
		rt.cache.Put(key, body)
	}
	writeJSONBytes(w, body)
}

// handleTopK serves GET/POST /v1/topk?q=17&k=10[&rerank=1]. The merged
// dense row is ranked (and optionally exactly reranked against the
// router's graph) in one place, so results are bit-identical to the
// single-node daemon's. Degradation composes: a missing shard degrades
// the estimates themselves (and disables rerank — exact scores over an
// incomplete row would be wrong confidently); a rerank the deadline
// cannot afford degrades to raw estimates exactly like the single node.
func (rt *Router) handleTopK(w http.ResponseWriter, r *http.Request) {
	rt.reqTopK.Add(1)
	if !rt.checkMethod(w, r, http.MethodGet, http.MethodPost) {
		return
	}
	eng, err := engineParam(r)
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rt.countEngine(eng)
	q, err := intParam(r, "q", 0, true)
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	k, err := intParam(r, "k", 10, false)
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if k < 1 {
		rt.writeError(w, http.StatusBadRequest, "query: top-k size %d < 1", k)
		return
	}
	if q < 0 || q >= rt.n {
		rt.writeError(w, http.StatusBadRequest, "query: vertex %d out of range [0,%d)", q, rt.n)
		return
	}
	rerank := boolParam(r, "rerank")
	if eng == engineLinearized && rerank {
		rt.writeError(w, http.StatusBadRequest, "\"rerank\" is not valid with engine=linearized (exact scores need no rerank)")
		return
	}

	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if eng == engineLinearized {
		rt.serveTopKExact(w, r, q, k)
		return
	}
	key := rtTopKKey(rt.genTagLocked(), q, k, rerank)
	if body, ok := rt.cache.Get(key); ok {
		writeJSONBytes(w, body)
		return
	}

	rows := [][]float64{make([]float64, rt.n)}
	shardDegraded, err := rt.scatterScores(r.Context(), []int{q}, rows)
	if err != nil {
		rt.writeQueryError(w, err, http.StatusBadRequest)
		return
	}

	useRerank := rerank && !shardDegraded
	pool := query.RerankPool(rt.n, k, 0)
	budgetDegraded := useRerank && rt.shouldDegrade(r.Context(), pool)
	if budgetDegraded {
		useRerank = false
	}
	degraded := shardDegraded || budgetDegraded
	kEff := k
	if kEff > rt.n-1 {
		kEff = rt.n - 1
	}
	t1 := time.Now()
	results, err := query.RankScores(r.Context(), rt.g, rt.c, rt.horizon, rows[0], q, kEff, &query.TopKOptions{Rerank: useRerank})
	if err != nil {
		rt.writeQueryError(w, err, http.StatusBadRequest)
		return
	}
	if useRerank {
		rt.observeRerank(time.Since(t1), pool)
	}

	body, err := rt.topKBody(q, k, useRerank, degraded, results)
	if err != nil {
		rt.writeError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	if degraded {
		rt.degradedTotal.Add(1)
		w.Header().Set("X-Simrank-Degraded", "true")
	} else {
		rt.cache.Put(key, body)
	}
	writeJSONBytes(w, body)
}

// handleEdges serves POST /v1/edges at the router: validate and apply the
// batch to the router's own graph, then broadcast it to every backend.
// Edits are idempotent at the graph layer, so when the broadcast reaches
// only part of the fleet the client simply retries the same batch — the
// shards that already applied it answer with no-op stats and an unchanged
// generation, the rest catch up, and the fleet converges. Until then the
// router's recorded generations disagree with the stale shards, which
// marks every touched answer degraded and uncacheable (scatterScores'
// generation echo check) rather than wrong.
func (rt *Router) handleEdges(w http.ResponseWriter, r *http.Request) {
	rt.reqEdges.Add(1)
	if !rt.checkMethod(w, r, http.MethodPost) {
		return
	}
	var req edgesRequest
	if !rt.decodeJSONBody(w, r, &req) {
		return
	}
	edits, errMsg := parseEdits(req.Edits)
	if errMsg != "" {
		rt.writeError(w, http.StatusBadRequest, "%s", errMsg)
		return
	}

	rt.mu.Lock()
	defer rt.mu.Unlock()
	u0 := time.Now()
	// Apply locally first: this validates the batch once (an out-of-range
	// edit is rejected here with the single-node error text, before any
	// backend sees it) and keeps the router's graph — the rerank oracle —
	// in lockstep with the fleet.
	g2, sum, err := rt.g.ApplyEdits(edits)
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// realChange mirrors the per-shard no-op rule: a batch that dirties no
	// vertex keeps every shard's generation (and every cached response).
	realChange := len(sum.DirtyIn) > 0 || len(sum.DirtyOut) > 0
	var (
		firstResp     *edgesResponse
		walksRepaired int
		failures      []string
	)
	for i, base := range rt.backends {
		var resp edgesResponse
		if err := rt.postShard(r.Context(), base, "/v1/edges", req, &resp); err != nil {
			rt.shardErrors.Add(1)
			failures = append(failures, fmt.Sprintf("%s: %v", base, err))
			// Record the generation this shard WILL reach once the batch
			// lands (generation counters advance identically for identical
			// batch streams). Until a retry converges it, the shard's
			// echoed generation trails the recorded one, so every answer
			// touching its range is marked degraded and kept out of the
			// cache instead of served as current.
			if realChange {
				rt.gens[i]++
			}
			continue
		}
		if firstResp == nil {
			firstResp = &resp
		}
		walksRepaired += resp.WalksRepaired
		rt.gens[i] = resp.Generation
	}
	rt.g = g2
	if realChange {
		// Every cached merge embeds the old generation vector; none can be
		// served again.
		rt.cache.Clear()
	}
	updateMicros := time.Since(u0).Microseconds()
	rt.updatesTotal.Add(1)
	rt.updateMicros.Add(updateMicros)

	if len(failures) > 0 {
		rt.writeError(w, http.StatusBadGateway,
			"edits applied to %d of %d shards (%s); retry the same batch to converge",
			len(rt.backends)-len(failures), len(rt.backends), strings.Join(failures, "; "))
		return
	}
	body, err := rt.marshalBody(edgesResponse{
		Added:         sum.Added,
		Removed:       sum.Removed,
		DirtyVertices: len(sum.DirtyIn),
		WalksRepaired: walksRepaired,
		Generation:    firstResp.Generation,
		Edges:         rt.g.NumEdges(),
		UpdateMicros:  updateMicros,
	})
	if err != nil {
		rt.writeError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	writeJSONBytes(w, body)
}

// routerHealthzResponse is the router-mode /healthz body.
type routerHealthzResponse struct {
	Status      string   `json:"status"`
	Vertices    int      `json:"vertices"`
	Walks       int      `json:"walks"`
	Horizon     int      `json:"horizon"`
	C           float64  `json:"c"`
	Shards      int      `json:"shards"`
	Generations []uint64 `json:"generations"`
	UptimeSecs  float64  `json:"uptime_seconds"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rt.mu.RLock()
	gens := append([]uint64(nil), rt.gens...)
	rt.mu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(routerHealthzResponse{
		Status:      "ok",
		Vertices:    rt.n,
		Walks:       rt.walks,
		Horizon:     rt.horizon,
		C:           rt.c,
		Shards:      len(rt.backends),
		Generations: gens,
		UptimeSecs:  time.Since(rt.started).Seconds(),
	})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	hits, misses := rt.cache.Stats()
	rt.mu.RLock()
	gens := append([]uint64(nil), rt.gens...)
	rt.mu.RUnlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	buildInfoMetric(w, "router")
	fmt.Fprintf(w, "simrankd_requests_total{endpoint=\"single_source\"} %d\n", rt.reqSingleSource.Load())
	fmt.Fprintf(w, "simrankd_requests_total{endpoint=\"topk\"} %d\n", rt.reqTopK.Load())
	fmt.Fprintf(w, "simrankd_requests_total{endpoint=\"edges\"} %d\n", rt.reqEdges.Load())
	fmt.Fprintf(w, "simrankd_requests_total{endpoint=\"batch\"} %d\n", rt.reqBatch.Load())
	fmt.Fprintf(w, "simrankd_requests_total{endpoint=\"join\"} %d\n", rt.reqJoin.Load())
	fmt.Fprintf(w, "simrankd_batch_items_total %d\n", rt.batchItems.Load())
	fmt.Fprintf(w, "simrankd_batch_item_errors_total %d\n", rt.batchItemErrors.Load())
	fmt.Fprintf(w, "simrankd_request_errors_total %d\n", rt.reqErrors.Load())
	fmt.Fprintf(w, "simrankd_requests_shed_total %d\n", rt.shedTotal.Load())
	fmt.Fprintf(w, "simrankd_requests_degraded_total %d\n", rt.degradedTotal.Load())
	rt.writeEngineMetrics(w)
	fmt.Fprintf(w, "simrankd_shard_errors_total %d\n", rt.shardErrors.Load())
	fmt.Fprintf(w, "simrankd_inflight_requests %d\n", rt.inflight.Load())
	fmt.Fprintf(w, "simrankd_queued_requests %d\n", rt.queued.Load())
	fmt.Fprintf(w, "simrankd_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "simrankd_cache_misses_total %d\n", misses)
	rt.latency.WriteProm(w, "simrankd_request_latency_seconds")
	fmt.Fprintf(w, "simrankd_updates_total %d\n", rt.updatesTotal.Load())
	fmt.Fprintf(w, "simrankd_update_latency_micros_total %d\n", rt.updateMicros.Load())
	for i, g := range gens {
		fmt.Fprintf(w, "simrankd_shard_generation{shard=\"%d\"} %d\n", i, g)
	}
	fmt.Fprintf(w, "simrankd_index_vertices %d\n", rt.n)
}
