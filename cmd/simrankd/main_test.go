package main

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"oipsr/simrank/query"
)

// goodOptions is a valid baseline; each failure case perturbs one field.
func goodOptions() options {
	return options{
		mode:        "serve",
		maxBatch:    256,
		joinCand:    100000,
		maxInflight: 8,
		queueDepth:  0,
		reqTimeout:  10 * time.Second,
		drain:       10 * time.Second,
		indexFormat: query.FormatV2,
	}
}

func TestValidateRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*options)
		want string // substring of the error
	}{
		{"bad_mode", func(o *options) { o.mode = "cluster" }, "-mode"},
		{"zero_max_batch", func(o *options) { o.maxBatch = 0 }, "-max-batch"},
		{"neg_join_cand", func(o *options) { o.joinCand = -5 }, "-join-max-candidates"},
		{"zero_inflight", func(o *options) { o.maxInflight = 0 }, "-max-inflight"},
		{"neg_inflight", func(o *options) { o.maxInflight = -3 }, "-max-inflight"},
		{"queue_below_sentinel", func(o *options) { o.queueDepth = -2 }, "-queue-depth"},
		{"neg_timeout", func(o *options) { o.reqTimeout = -time.Second }, "-request-timeout"},
		{"neg_drain", func(o *options) { o.drain = -time.Second }, "-shutdown-drain"},
		{"build_no_shards", func(o *options) { o.mode = "build-shards"; o.shardDir = "x" }, "-shards"},
		{"build_no_dir", func(o *options) { o.mode = "build-shards"; o.shards = 2 }, "-shard-dir"},
		{"shard_no_source", func(o *options) { o.mode = "shard" }, "-shard-dir"},
		{"shard_neg_ordinal", func(o *options) { o.mode = "shard"; o.shards = 2; o.shardOrdinal = -1 }, "-shard-ordinal"},
		{"shard_ordinal_oob", func(o *options) { o.mode = "shard"; o.shards = 2; o.shardOrdinal = 2 }, "-shard-ordinal"},
		{"router_no_backends", func(o *options) { o.mode = "router" }, "-backends"},
		{"router_blank_backends", func(o *options) { o.mode = "router"; o.backends = " , ," }, "-backends"},
		{"router_neg_shard_timeout", func(o *options) {
			o.mode = "router"
			o.backends = "http://a:1"
			o.shardTimeout = -time.Second
		}, "-shard-timeout"},
		{"bad_index_format", func(o *options) { o.indexFormat = 3 }, "-index-format"},
		{"mmap_no_index", func(o *options) { o.indexMmap = true }, "-index"},
		{"mmap_v1_format", func(o *options) {
			o.indexMmap = true
			o.indexPath = "walks.idx"
			o.indexFormat = query.FormatV1
		}, "-index-format"},
		{"mmap_router", func(o *options) {
			o.mode = "router"
			o.backends = "http://a:1"
			o.indexMmap = true
		}, "-index-mmap"},
		{"mmap_shard_no_dir", func(o *options) {
			o.mode = "shard"
			o.shards = 2
			o.indexMmap = true
		}, "-shard-dir"},
		{"neg_build_budget", func(o *options) { o.buildBudget = -1 }, "-build-budget"},
		{"budget_no_index", func(o *options) { o.buildBudget = 1 << 20 }, "-index"},
		{"budget_v1_format", func(o *options) {
			o.buildBudget = 1 << 20
			o.indexPath = "walks.idx"
			o.indexFormat = query.FormatV1
		}, "-index-format"},
		{"budget_shard_mode", func(o *options) {
			o.mode = "shard"
			o.shards = 2
			o.buildBudget = 1 << 20
		}, "-build-budget"},
		{"budget_router_mode", func(o *options) {
			o.mode = "router"
			o.backends = "http://a:1"
			o.buildBudget = 1 << 20
		}, "-build-budget"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := goodOptions()
			tc.mut(&o)
			err := validate(&o)
			if err == nil {
				t.Fatalf("validate accepted %+v", o)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name the offending flag %q", err, tc.want)
			}
		})
	}
}

func TestValidateAcceptsGoodFlags(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*options)
	}{
		{"serve_defaults", func(o *options) {}},
		{"no_queue_sentinel", func(o *options) { o.queueDepth = -1 }},
		{"no_timeout", func(o *options) { o.reqTimeout = 0 }},
		{"build_shards", func(o *options) { o.mode = "build-shards"; o.shards = 4; o.shardDir = "s/" }},
		{"shard_from_dir", func(o *options) { o.mode = "shard"; o.shardDir = "s/"; o.shardOrdinal = 7 }},
		{"shard_in_memory", func(o *options) { o.mode = "shard"; o.shards = 3; o.shardOrdinal = 2 }},
		{"router", func(o *options) { o.mode = "router"; o.backends = "http://a:1, http://b:2" }},
		{"serve_mmap", func(o *options) { o.indexMmap = true; o.indexPath = "walks.idx" }},
		{"shard_mmap", func(o *options) { o.mode = "shard"; o.shardDir = "s/"; o.indexMmap = true }},
		{"serve_budget", func(o *options) { o.buildBudget = 256 << 20; o.indexPath = "walks.idx" }},
		{"serve_budget_mmap", func(o *options) {
			o.buildBudget = 1 << 20
			o.indexPath = "walks.idx"
			o.indexMmap = true
		}},
		{"build_shards_budget", func(o *options) {
			o.mode = "build-shards"
			o.shards = 4
			o.shardDir = "s/"
			o.buildBudget = 64 << 20
		}},
		{"build_v1", func(o *options) {
			o.mode = "build-shards"
			o.shards = 4
			o.shardDir = "s/"
			o.indexFormat = query.FormatV1
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := goodOptions()
			tc.mut(&o)
			if err := validate(&o); err != nil {
				t.Fatalf("validate rejected %+v: %v", o, err)
			}
		})
	}
}

func TestSplitBackends(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{" , ,", nil},
		{"http://a:1", []string{"http://a:1"}},
		{"http://a:1,http://b:2", []string{"http://a:1", "http://b:2"}},
		{" http://a:1 , http://b:2 ", []string{"http://a:1", "http://b:2"}},
	}
	for _, tc := range cases {
		if got := splitBackends(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("splitBackends(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
