package psum

import (
	"math/rand"
	"testing"

	"oipsr/graph"
	"oipsr/internal/simmat"
)

// TestComputeTiledBitIdentical: psum-SR against the tiled backend equals
// the dense path bit for bit for every block size and worker count, with
// exact operation and sieve counts, including under a spilling budget and
// with threshold sieving on.
func TestComputeTiledBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 27
	b := graph.NewBuilder(n, 0)
	b.EnsureVertices(n)
	for i := 0; i < 4*n; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	g := b.MustBuild()
	for _, threshold := range []float64{0, 1e-3} {
		base := Options{C: 0.6, K: 5, Threshold: threshold, Workers: 1}
		dense, dst, err := Compute(g, base)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]float64, n)
		for _, block := range []int{1, 5, n, n + 2} {
			for _, workers := range []int{1, 3} {
				for _, budget := range []int64{0, int64(4 * block * block * 8)} {
					opt := base
					opt.Workers = workers
					opt.Tile = simmat.TileOptions{BlockSize: block, MaxMemoryBytes: budget}
					if budget > 0 {
						opt.Tile.SpillDir = t.TempDir()
					}
					tiled, tst, err := ComputeTiled(g, opt)
					if err != nil {
						t.Fatal(err)
					}
					for i := 0; i < n; i++ {
						if err := tiled.RowInto(i, buf); err != nil {
							t.Fatal(err)
						}
						for j := 0; j < n; j++ {
							if buf[j] != dense.At(i, j) {
								t.Fatalf("thr=%v block=%d workers=%d budget=%d: (%d,%d): %v != %v",
									threshold, block, workers, budget, i, j, buf[j], dense.At(i, j))
							}
						}
					}
					if tst.InnerAdds != dst.InnerAdds || tst.OuterAdds != dst.OuterAdds || tst.SievedPairs != dst.SievedPairs {
						t.Errorf("thr=%v block=%d workers=%d: counts drifted: inner %d/%d outer %d/%d sieved %d/%d",
							threshold, block, workers, tst.InnerAdds, dst.InnerAdds,
							tst.OuterAdds, dst.OuterAdds, tst.SievedPairs, dst.SievedPairs)
					}
					tiled.Close()
				}
			}
		}
	}
}
