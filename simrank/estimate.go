package simrank

import (
	"fmt"

	"oipsr/internal/numeric"
)

// IterationEstimate bundles the a-priori iteration counts for a given
// damping factor and accuracy, the quantities tabulated in the paper's
// Fig. 6f.
type IterationEstimate struct {
	// Conventional is the geometric-model count (smallest K with
	// C^(K+1) <= eps), used by OIPSR / PsumSR / Naive.
	Conventional int
	// Differential is the exact exponential-model count (smallest K with
	// C^(K+1)/(K+1)! <= eps), used by OIPDSR.
	Differential int
	// Lambert is the closed-form estimate of Corollary 1 (Lambert W).
	Lambert int
	// Log is the Lambert-free estimate of Corollary 2; LogValid reports
	// whether eps is inside its validity range.
	Log      int
	LogValid bool
}

// EstimateIterations computes all iteration estimates for damping factor c
// and accuracy eps.
func EstimateIterations(c, eps float64) (IterationEstimate, error) {
	if !(c > 0 && c < 1) {
		return IterationEstimate{}, fmt.Errorf("simrank: damping factor %v outside (0,1)", c)
	}
	if !(eps > 0 && eps < 1) {
		return IterationEstimate{}, fmt.Errorf("simrank: accuracy eps %v outside (0,1)", eps)
	}
	est := IterationEstimate{
		Conventional: numeric.IterationsConventional(c, eps),
		Differential: numeric.IterationsDifferentialExact(c, eps),
		Lambert:      numeric.IterationsDifferentialLambert(c, eps),
	}
	est.Log, est.LogValid = numeric.IterationsDifferentialLog(c, eps)
	return est, nil
}

// GeometricErrorBound returns the conventional-model error bound after k
// iterations, C^(k+1).
func GeometricErrorBound(c float64, k int) float64 {
	return numeric.GeometricTailBound(c, k)
}

// DifferentialErrorBound returns the differential-model error bound after k
// iterations, C^(k+1)/(k+1)! (Proposition 7).
func DifferentialErrorBound(c float64, k int) float64 {
	return numeric.ExponentialTailBound(c, k)
}
