// Package linalg provides the dense linear algebra the mtx-SR baseline
// (Li et al., EDBT 2010 — reference [14] of the paper) is built on: dense
// matrices, thin Householder QR, a cyclic Jacobi symmetric eigensolver, and
// truncated SVD of sparse operators via subspace iteration with
// Rayleigh-Ritz extraction.
//
// Everything is implemented from scratch on float64 slices; matrices are
// row-major. The package is deliberately small: it contains exactly the
// operations the SVD-based SimRank approximation needs, implemented
// straightforwardly and validated against explicit oracles in the tests.
package linalg

import (
	"fmt"

	"oipsr/internal/par"
)

// Dense is a dense row-major rows x cols matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zero rows x cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// Rows returns the row count.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Dense) Cols() int { return m.cols }

// At returns m[i,j].
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns m[i,j] = v.
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns row i aliasing internal storage.
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Copy returns a deep copy.
func (m *Dense) Copy() *Dense {
	c := NewDense(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Bytes reports the backing array's memory footprint.
func (m *Dense) Bytes() int64 { return int64(len(m.data)) * 8 }

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns a*b. Panics on dimension mismatch.
func Mul(a, b *Dense) *Dense { return MulWorkers(a, b, 1) }

// MulWorkers returns a*b with output rows computed in parallel across the
// given worker-pool size (par.Resolve semantics: < 1 means all CPUs). Each
// output row depends on one row of a and all of b, both read-only, and the
// per-row accumulation order is independent of the partition — results are
// bit-identical to the serial product for every worker count. Panics on
// dimension mismatch.
func MulWorkers(a, b *Dense, workers int) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	c := NewDense(a.rows, b.cols)
	w := par.ResolveMax(workers, a.rows)
	par.Do(w, func(id int) {
		lo, hi := par.Range(a.rows, w, id)
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			crow := c.Row(i)
			for k, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.Row(k)
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	})
	return c
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Scale multiplies every entry in place and returns the receiver.
func (m *Dense) Scale(s float64) *Dense {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// AddInPlace adds b entrywise into m. Panics on dimension mismatch.
func (m *Dense) AddInPlace(b *Dense) *Dense {
	if m.rows != b.rows || m.cols != b.cols {
		panic("linalg: AddInPlace dimension mismatch")
	}
	for i := range m.data {
		m.data[i] += b.data[i]
	}
	return m
}

// MaxAbsDiff returns the max-norm distance between two equally-sized
// matrices.
func MaxAbsDiff(a, b *Dense) float64 {
	if a.rows != b.rows || a.cols != b.cols {
		panic("linalg: MaxAbsDiff dimension mismatch")
	}
	d := 0.0
	for i := range a.data {
		x := a.data[i] - b.data[i]
		if x < 0 {
			x = -x
		}
		if x > d {
			d = x
		}
	}
	return d
}
