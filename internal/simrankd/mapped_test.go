package simrankd

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"oipsr/graph/gen"
	"oipsr/simrank/query"
)

// TestMappedServesBitIdenticalResponses: a server over a demand-paged
// (mmap-backed) format-v2 index must answer every endpoint with bodies
// byte-identical to a server over the same index decoded densely — before
// and after a live POST /v1/edges batch, which for the mapped index also
// rewrites the backing file.
func TestMappedServesBitIdenticalResponses(t *testing.T) {
	g := gen.WebGraph(150, 8, 101)
	built, err := query.BuildIndex(g, query.Options{Walks: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "walks.v2.idx")
	if err := built.SaveFileFormat(path, query.FormatV2); err != nil {
		t.Fatal(err)
	}

	dense, err := query.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dense.AttachGraph(g); err != nil {
		t.Fatal(err)
	}
	mapped, err := query.LoadFileMapped(path, query.MappedOptions{CacheBlocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	if err := mapped.AttachGraph(g); err != nil {
		t.Fatal(err)
	}
	if b := mapped.Backend(); b != "mapped" && b != "mapped-readat" {
		t.Fatalf("mapped index backend = %q", b)
	}

	tsDense := httptest.NewServer(newServer(dense, 0, 1))
	defer tsDense.Close()
	tsMapped := httptest.NewServer(newServer(mapped, 0, 1))
	defer tsMapped.Close()

	queryPaths := []string{
		"/v1/topk?q=3&k=10",
		"/v1/topk?q=77&k=5&rerank=1",
		"/v1/single_source?q=42",
		"/v1/single_source?q=8&min=0.01",
	}
	compare := func(stage string) {
		t.Helper()
		for _, p := range queryPaths {
			codeD, bodyD := get(t, tsDense.URL+p)
			codeM, bodyM := get(t, tsMapped.URL+p)
			if codeD != http.StatusOK || codeM != http.StatusOK {
				t.Fatalf("%s %s: status %d / %d", stage, p, codeD, codeM)
			}
			if string(bodyD) != string(bodyM) {
				t.Fatalf("%s %s: dense and mapped responses differ:\n%s\n%s", stage, p, bodyD, bodyM)
			}
		}
		codeD, bodyD := postJSON(t, tsDense.URL+"/v1/batch", `{"sources":[1,5,120],"k":6}`)
		codeM, bodyM := postJSON(t, tsMapped.URL+"/v1/batch", `{"sources":[1,5,120],"k":6}`)
		if codeD != http.StatusOK || codeM != http.StatusOK {
			t.Fatalf("%s /v1/batch: status %d / %d", stage, codeD, codeM)
		}
		if string(bodyD) != string(bodyM) {
			t.Fatalf("%s /v1/batch: responses differ:\n%s\n%s", stage, bodyD, bodyM)
		}
		codeD, bodyD = postJSON(t, tsDense.URL+"/v1/join", `{"threshold":0.05,"k":10}`)
		codeM, bodyM = postJSON(t, tsMapped.URL+"/v1/join", `{"threshold":0.05,"k":10}`)
		if codeD != http.StatusOK || codeM != http.StatusOK {
			t.Fatalf("%s /v1/join: status %d / %d", stage, codeD, codeM)
		}
		if string(bodyD) != string(bodyM) {
			t.Fatalf("%s /v1/join: responses differ:\n%s\n%s", stage, bodyD, bodyM)
		}
	}
	compare("pre-edit")

	body, _ := testEditBatch(t, g)
	codeD, respD := postJSON(t, tsDense.URL+"/v1/edges", body)
	codeM, respM := postJSON(t, tsMapped.URL+"/v1/edges", body)
	if codeD != http.StatusOK || codeM != http.StatusOK {
		t.Fatalf("/v1/edges: status %d (%s) / %d (%s)", codeD, respD, codeM, respM)
	}
	// The edges response embeds wall-clock timing; compare everything else.
	var editD, editM map[string]any
	if err := json.Unmarshal(respD, &editD); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(respM, &editM); err != nil {
		t.Fatal(err)
	}
	delete(editD, "update_micros")
	delete(editM, "update_micros")
	jd, _ := json.Marshal(editD)
	jm, _ := json.Marshal(editM)
	if string(jd) != string(jm) {
		t.Fatalf("/v1/edges: dense and mapped responses differ:\n%s\n%s", respD, respM)
	}
	compare("post-edit")

	// The edit batch flushed through to the backing file: a fresh dense
	// load of it must agree with the live mapped server.
	reloaded, err := query.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := reloaded.AttachGraph(dense.Graph()); err != nil {
		t.Fatal(err)
	}
	tsReloaded := httptest.NewServer(newServer(reloaded, 0, 1))
	defer tsReloaded.Close()
	for _, p := range queryPaths {
		_, bodyM := get(t, tsMapped.URL+p)
		_, bodyR := get(t, tsReloaded.URL+p)
		if string(bodyM) != string(bodyR) {
			t.Fatalf("reload %s: edited file does not reproduce the live mapped answers:\n%s\n%s", p, bodyM, bodyR)
		}
	}

	var hz struct {
		Backend string `json:"backend"`
	}
	_, hzBody := get(t, tsMapped.URL+"/healthz")
	if err := json.Unmarshal(hzBody, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Backend != mapped.Backend() {
		t.Fatalf("healthz backend = %q, want %q", hz.Backend, mapped.Backend())
	}
}
