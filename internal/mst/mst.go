// Package mst computes minimum spanning arborescences (directed minimum
// spanning trees) of weighted digraphs.
//
// The DMST-Reduce procedure of the paper (Section III-C) builds a weighted
// digraph over in-neighbor sets and extracts a directed MST rooted at a
// virtual node to obtain a topological order for partial-sums sharing. The
// paper cites Gabow et al. [7]; this package implements the classic
// Chu-Liu/Edmonds contraction algorithm (O(V*E), ample for the candidate
// graphs produced here) plus a linear-time specialization for DAG inputs,
// which is what the candidate construction emits when ties in the in-degree
// order are broken consistently.
package mst

import (
	"errors"
	"fmt"
)

// Edge is a weighted directed edge From -> To.
type Edge struct {
	From, To int
	Weight   float64
}

// Arborescence is a spanning tree of a digraph oriented away from Root:
// every vertex other than the root has exactly one parent.
type Arborescence struct {
	Root   int
	Parent []int // Parent[v] = u for the tree edge u->v; Parent[Root] = -1
	Edge   []int // Edge[v] = index into the input edge slice; -1 for the root
	Total  float64
}

// ErrUnreachable is returned when some vertex has no path from the root, so
// no spanning arborescence exists.
var ErrUnreachable = errors.New("mst: not all vertices reachable from root")

// Edmonds computes a minimum spanning arborescence of the digraph with n
// vertices and the given edge list, rooted at root. Self-loops are ignored.
// Parallel edges are allowed (the cheapest relevant one wins). The
// implementation is the recursive Chu-Liu/Edmonds contraction with original
// edge-identity tracking, so the returned Arborescence references input
// edges directly.
func Edmonds(n, root int, edges []Edge) (*Arborescence, error) {
	if root < 0 || root >= n {
		return nil, fmt.Errorf("mst: root %d out of range [0,%d)", root, n)
	}
	for _, e := range edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return nil, fmt.Errorf("mst: edge (%d,%d) out of range [0,%d)", e.From, e.To, n)
		}
	}
	ids := make([]int, len(edges))
	work := make([]Edge, len(edges))
	copy(work, edges)
	for i := range ids {
		ids[i] = i
	}
	chosen, err := edmondsRec(n, root, work, ids)
	if err != nil {
		return nil, err
	}
	a := &Arborescence{
		Root:   root,
		Parent: make([]int, n),
		Edge:   make([]int, n),
	}
	for v := range a.Parent {
		a.Parent[v] = -1
		a.Edge[v] = -1
	}
	for _, id := range chosen {
		e := edges[id]
		a.Parent[e.To] = e.From
		a.Edge[e.To] = id
		a.Total += e.Weight
	}
	return a, nil
}

// edmondsRec solves the problem on the current contracted graph. ids[i]
// carries the original edge index of work edge i through contractions. It
// returns the original indices of the chosen arborescence edges.
func edmondsRec(n, root int, edges []Edge, ids []int) ([]int, error) {
	const none = -1

	// 1. Cheapest incoming edge for every non-root vertex.
	bestEdge := make([]int, n)
	for v := range bestEdge {
		bestEdge[v] = none
	}
	for i, e := range edges {
		if e.From == e.To || e.To == root {
			continue
		}
		if bestEdge[e.To] == none || e.Weight < edges[bestEdge[e.To]].Weight {
			bestEdge[e.To] = i
		}
	}
	for v := 0; v < n; v++ {
		if v != root && bestEdge[v] == none {
			return nil, ErrUnreachable
		}
	}

	// 2. Detect cycles among the selected in-edges.
	comp := make([]int, n) // contracted component id, or -1 until assigned
	state := make([]int, n)
	for v := range comp {
		comp[v] = none
	}
	nComp := 0
	for v := 0; v < n; v++ {
		if state[v] != 0 {
			continue
		}
		// Walk parents until hitting the root, a visited vertex, or a cycle.
		path := []int{}
		u := v
		for u != root && state[u] == 0 {
			state[u] = 1 // on current path
			path = append(path, u)
			u = edges[bestEdge[u]].From
		}
		if u != root && state[u] == 1 {
			// Found a new cycle; u is on the current path.
			cid := nComp
			nComp++
			w := u
			for {
				comp[w] = cid
				w = edges[bestEdge[w]].From
				if w == u {
					break
				}
			}
		}
		for _, p := range path {
			state[p] = 2
		}
	}

	if nComp == 0 {
		// No cycles: the selected edges form the optimum arborescence.
		chosen := make([]int, 0, n-1)
		for v := 0; v < n; v++ {
			if v != root {
				chosen = append(chosen, ids[bestEdge[v]])
			}
		}
		return chosen, nil
	}

	// 3. Contract: cycle vertices keep their cycle component id; all other
	// vertices get fresh ids after the cycle ids.
	for v := 0; v < n; v++ {
		if comp[v] == none {
			comp[v] = nComp
			nComp++
		}
	}
	newRoot := comp[root]

	// 4. Rebuild edges between components. For an edge entering a contracted
	// cycle at vertex t, the adjusted weight is w - weight(bestEdge[t]):
	// choosing it means discarding the cycle's own in-edge at t.
	var (
		newEdges []Edge
		newIDs   []int
		enters   []int // for each new edge, the original entry vertex (or -1)
	)
	// Components with more than one member are exactly the contracted cycles.
	inCycle := make([]bool, nComp)
	compSize := make([]int, nComp)
	for v := 0; v < n; v++ {
		compSize[comp[v]]++
	}
	for c, s := range compSize {
		inCycle[c] = s > 1
	}
	for i, e := range edges {
		cu, cv := comp[e.From], comp[e.To]
		if cu == cv {
			continue
		}
		w := e.Weight
		entry := -1
		if inCycle[cv] {
			w -= edges[bestEdge[e.To]].Weight
			entry = e.To
		}
		newEdges = append(newEdges, Edge{From: cu, To: cv, Weight: w})
		newIDs = append(newIDs, ids[i])
		enters = append(enters, entry)
	}

	sub, err := edmondsRec(nComp, newRoot, newEdges, newIDs)
	if err != nil {
		return nil, err
	}

	// 5. Expand: start with all cycle edges selected, then for each chosen
	// contracted edge entering a cycle at vertex t, drop the cycle edge into
	// t. Map original edge id -> entry vertex for the chosen set.
	entryOf := make(map[int]int, len(newIDs))
	for i, id := range newIDs {
		if enters[i] != -1 {
			// Multiple contracted edges can share an original id only if the
			// input had duplicate ids, which Edmonds never produces.
			entryOf[id] = enters[i]
		}
	}
	chosenSet := make(map[int]bool, len(sub))
	for _, id := range sub {
		chosenSet[id] = true
	}
	dropInEdge := make([]bool, n)
	for _, id := range sub {
		if t, ok := entryOf[id]; ok && chosenSet[id] {
			dropInEdge[t] = true
		}
	}
	var chosen []int
	chosen = append(chosen, sub...)
	for v := 0; v < n; v++ {
		if v != root && inCycle[comp[v]] && !dropInEdge[v] {
			chosen = append(chosen, ids[bestEdge[v]])
		}
	}
	return chosen, nil
}
