// Package engine defines the pluggable SimRank engine registry.
//
// An Engine is one SimRank backend: it declares its capabilities (all-pairs,
// tiled all-pairs, single-source, single-pair) and exposes uniform
// Compute/ComputeTiled/SingleSource entry points over a normalized Params
// struct. The seven classic backends (oip-sr, oip-dsr, psum-sr, naive,
// mtx-sr, p-rank, monte-carlo) self-register from this package's init
// functions; the linearized engine (internal/linsr) registers alongside
// them. simrank.Compute is a thin dispatch over this registry, and registry
// membership is the single source of truth for Algorithm.Valid and the
// cmd/simrank -algo help text.
//
// Engines must be deterministic: for a fixed Params, scores are
// bit-identical for every worker count. Entry points a backend does not
// support return an error (see Caps); callers gate on Caps before
// dispatching when they want a friendlier failure mode.
package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"oipsr/graph"
	"oipsr/internal/numeric"
	"oipsr/internal/partition"
	"oipsr/internal/simmat"
)

// Algorithm names a registered SimRank engine.
type Algorithm string

// The built-in engines. See the simrank package documentation for the
// trade-offs.
const (
	// OIPSR is the paper's partial-sums-sharing algorithm (Algorithm 1),
	// the default.
	OIPSR Algorithm = "oip-sr"
	// OIPDSR is the differential (exponential-convergence) SimRank with
	// OIP sharing.
	OIPDSR Algorithm = "oip-dsr"
	// PsumSR is Lizorkin et al.'s partial sums memoization baseline.
	PsumSR Algorithm = "psum-sr"
	// Naive is the original Jeh-Widom iteration.
	Naive Algorithm = "naive"
	// MtxSR is Li et al.'s SVD-based low-rank approximation.
	MtxSR Algorithm = "mtx-sr"
	// PRank is Penetrating Rank (Zhao et al.): SimRank generalized to use
	// both in- and out-links, with OIP sharing applied in both directions —
	// the extension the paper's Related Work describes.
	PRank Algorithm = "p-rank"
	// MonteCarlo is the Fogaras-Racz sampling estimator: s(a,b) is
	// estimated from the first meeting time of coupled reverse random
	// walks. Probabilistic; Theta(n^2) time independent of K.
	MonteCarlo Algorithm = "monte-carlo"
	// Linearized is Maehara et al.'s linearization: SimRank as the solution
	// of S = C·Q·S·Qᵀ + D for a diagonal correction D, answering exact
	// single-source and single-pair queries with no n² state.
	Linearized Algorithm = "linearized"
)

// Valid reports whether a names a registered engine.
func (a Algorithm) Valid() bool {
	_, ok := Get(a)
	return ok
}

// Caps declares which entry points an engine supports.
type Caps struct {
	// AllPairs: Compute materializes the full score matrix.
	AllPairs bool
	// Tiled: ComputeTiled runs against the tiled score-matrix backend
	// (bounded resident memory, spill-to-disk).
	Tiled bool
	// SingleSource: SingleSource answers one row without n² state.
	SingleSource bool
	// SinglePair: the backend can score one (a,b) pair without a full row
	// (served through the engine's own package, e.g. linsr.Solver.Pair;
	// the registry interface carries no pair entry point).
	SinglePair bool
}

// Params is the normalized option set handed to engines. It mirrors
// simrank.Options with the tiled-backend knobs folded into Tile; each
// engine reads the fields it documents and ignores the rest, applying its
// own defaulting (C = 0.6, eps = 1e-3, ...) exactly as before the registry
// existed.
type Params struct {
	C       float64
	K       int
	Eps     float64
	Workers int

	StopDiff  float64
	Threshold float64
	Rank      int
	Seed      int64
	Lambda    float64
	COut      float64
	Walks     int

	DisableOuterSharing bool
	DensePartition      bool
	UseEdmonds          bool
	PairCap             int

	Tile simmat.TileOptions
}

// Engine is one SimRank backend behind the registry seam.
//
// Compute and ComputeTiled materialize all-pairs scores; SingleSource
// answers one row. Backends ignore ctx unless they advertise cancellation
// (today only Linearized checks it, at solve-step boundaries); entry points
// outside the engine's Caps return an error.
type Engine interface {
	Name() Algorithm
	Caps() Caps
	Compute(ctx context.Context, g *graph.Graph, p Params) (simmat.Source, *Stats, error)
	ComputeTiled(ctx context.Context, g *graph.Graph, p Params) (simmat.Source, *Stats, error)
	SingleSource(ctx context.Context, g *graph.Graph, p Params, q int) ([]float64, *Stats, error)
}

var (
	regMu    sync.RWMutex
	registry = make(map[Algorithm]Engine)
)

// Register adds e to the registry. Registering two engines under one name
// panics: engine names are API surface (CLI flags, HTTP parameters) and a
// silent override would repoint them.
func Register(e Engine) {
	name := e.Name()
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("engine: duplicate registration of %q", name))
	}
	registry[name] = e
}

// Get returns the engine registered under a.
func Get(a Algorithm) (Engine, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := registry[a]
	return e, ok
}

// Names returns the registered engine names, sorted.
func Names() []Algorithm {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]Algorithm, 0, len(registry))
	for a := range registry {
		names = append(names, a)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	return names
}

// NameList returns the registered engine names joined by sep, for flag help
// text and error messages.
func NameList(sep string) string {
	names := Names()
	parts := make([]string, len(names))
	for i, a := range names {
		parts[i] = string(a)
	}
	return strings.Join(parts, sep)
}

// base supplies Name and the not-supported entry points; engine
// implementations embed it and override what they support.
type base struct{ name Algorithm }

func (b base) Name() Algorithm { return b.name }

func (b base) Compute(context.Context, *graph.Graph, Params) (simmat.Source, *Stats, error) {
	return nil, nil, fmt.Errorf("simrank: algorithm %q does not materialize all-pairs scores", b.name)
}

func (b base) ComputeTiled(context.Context, *graph.Graph, Params) (simmat.Source, *Stats, error) {
	return nil, nil, fmt.Errorf("simrank: the tiled backend (BlockSize > 0) does not support algorithm %q", b.name)
}

func (b base) SingleSource(context.Context, *graph.Graph, Params, int) ([]float64, *Stats, error) {
	return nil, nil, fmt.Errorf("simrank: algorithm %q does not answer single-source queries", b.name)
}

// partitionOptions maps the shared partition knobs.
func partitionOptions(p Params) partition.Options {
	return partition.Options{
		Dense:      p.DensePartition,
		PairCap:    p.PairCap,
		UseEdmonds: p.UseEdmonds,
	}
}

// geometricSchedule applies the shared defaulting rules (C = 0.6,
// eps = 1e-3, Lizorkin iteration bound) for the engines that take a plain
// (C, K) pair.
func geometricSchedule(p Params) (c float64, k int, err error) {
	c = p.C
	if c == 0 {
		c = 0.6
	}
	if !(c > 0 && c < 1) {
		return 0, 0, fmt.Errorf("simrank: damping factor %v outside (0,1)", c)
	}
	k = p.K
	if k < 0 {
		return 0, 0, fmt.Errorf("simrank: negative iteration count %d", k)
	}
	if k == 0 {
		eps := p.Eps
		if eps == 0 {
			eps = 1e-3
		}
		if !(eps > 0 && eps < 1) {
			return 0, 0, fmt.Errorf("simrank: accuracy eps %v outside (0,1)", eps)
		}
		k = numeric.IterationsConventional(c, eps)
	}
	return c, k, nil
}
