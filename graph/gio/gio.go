// Package gio reads and writes graphs in the plain edge-list format used by
// SNAP-style datasets (the paper loads BERKSTAN and PATENT from such files)
// and in a compact gob-encoded binary format for fast reloads.
//
// Edge-list format: one "src dst" pair of decimal vertex ids per line,
// whitespace separated. Lines starting with '#' or '%' are comments. Blank
// lines are ignored. Vertex ids must be non-negative; the graph spans
// [0, max id] unless a larger vertex count is forced with ReadEdgeListN.
package gio

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"oipsr/graph"
)

// ReadEdgeList parses an edge list from r and builds a graph.
func ReadEdgeList(r io.Reader) (*graph.Graph, error) {
	return readEdgeList(r, 0, 0)
}

// ReadEdgeListN is ReadEdgeList but guarantees at least n vertices in the
// result, which matters for datasets with trailing isolated vertices.
func ReadEdgeListN(r io.Reader, n int) (*graph.Graph, error) {
	return readEdgeList(r, n, 0)
}

// ReadEdgeListLimit is ReadEdgeList with a hard cap on vertex ids: any edge
// naming an id >= maxVertices is rejected with an error instead of growing
// the graph. Use it on untrusted inputs, where a single adversarial line
// like "0 99999999999999" would otherwise force an absurd allocation
// before any semantic validation can run.
func ReadEdgeListLimit(r io.Reader, maxVertices int) (*graph.Graph, error) {
	if maxVertices <= 0 {
		return nil, fmt.Errorf("gio: vertex limit %d, want > 0", maxVertices)
	}
	return readEdgeList(r, 0, maxVertices)
}

func readEdgeList(r io.Reader, n, maxVertices int) (*graph.Graph, error) {
	b := graph.NewBuilder(n, 0)
	b.EnsureVertices(n)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("gio: line %d: want \"src dst\", got %q", lineno, line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("gio: line %d: bad source id %q: %v", lineno, fields[0], err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("gio: line %d: bad destination id %q: %v", lineno, fields[1], err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("gio: line %d: negative vertex id", lineno)
		}
		if maxVertices > 0 && (u >= maxVertices || v >= maxVertices) {
			return nil, fmt.Errorf("gio: line %d: vertex id %d exceeds limit %d", lineno, max(u, v), maxVertices)
		}
		b.AddEdge(u, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("gio: reading edge list: %w", err)
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// WriteEdgeList writes g as an edge list with a header comment recording the
// vertex and edge counts.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# vertices: %d edges: %d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	var werr error
	g.Edges(func(u, v int) bool {
		_, werr = fmt.Fprintf(bw, "%d %d\n", u, v)
		return werr == nil
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// LoadEdgeListFile reads an edge-list file from disk.
func LoadEdgeListFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeList(bufio.NewReader(f))
}

// SaveEdgeListFile writes g to an edge-list file, creating or truncating it.
func SaveEdgeListFile(path string, g *graph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEdgeList(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// binaryGraph is the gob wire representation: the edge list plus vertex
// count, which is compact and rebuilds through the validating Builder.
type binaryGraph struct {
	N     int
	Edges [][2]int
}

// WriteBinary encodes g in the gob binary format.
func WriteBinary(w io.Writer, g *graph.Graph) error {
	bg := binaryGraph{N: g.NumVertices(), Edges: make([][2]int, 0, g.NumEdges())}
	g.Edges(func(u, v int) bool {
		bg.Edges = append(bg.Edges, [2]int{u, v})
		return true
	})
	return gob.NewEncoder(w).Encode(&bg)
}

// ReadBinary decodes a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*graph.Graph, error) {
	var bg binaryGraph
	if err := gob.NewDecoder(r).Decode(&bg); err != nil {
		return nil, fmt.Errorf("gio: decoding binary graph: %w", err)
	}
	g, err := graph.FromEdges(bg.N, bg.Edges)
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
