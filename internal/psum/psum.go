// Package psum implements psum-SR, the Lizorkin et al. algorithm the paper
// treats as the state of the art (reference [16]): SimRank iteration with
// partial sums memoization (Eqs. 4-5) but without any sharing across
// different in-neighbor sets.
//
// For every vertex a it materializes Partial_{I(a)}(y) = sum_{x in I(a)}
// s_k(x, y) once per iteration and reuses it for all second arguments b,
// bringing the naive O(K d^2 n^2) down to O(K d n^2). The package also
// implements the two auxiliary optimizations of [16] the paper mentions:
// essential-pair skipping (pairs with an empty in-neighbor set are a-priori
// zero and never touched) and threshold-sieved similarities (scores below a
// user threshold are clamped to zero, trading accuracy for fewer non-zeros).
//
// Rows are embarrassingly parallel — row a depends only on the previous
// iterate — so with Workers > 1 the row loop is split across a worker pool,
// each worker owning its own partial-sum buffer and counters. Every row's
// arithmetic is unchanged, so scores and counts are bit-identical for every
// worker count.
//
// Each iterate is canonicalized after the row barrier (the row-min(a,b)
// value is the score of both orderings; see the simmat package comment),
// which is what lets ComputeTiled — the same arithmetic against the
// upper-triangular tiled backend — produce bit-identical scores under a
// bounded memory budget.
package psum

import (
	"fmt"

	"oipsr/graph"
	"oipsr/internal/par"
	"oipsr/internal/simmat"
)

// Options configure a psum-SR run.
type Options struct {
	C float64 // damping factor in (0,1)
	K int     // number of iterations (>= 0)

	// Threshold enables threshold-sieved similarities: after each iteration
	// every score strictly below Threshold is set to 0. Zero disables
	// sieving (exact psum-SR).
	Threshold float64

	// Workers sets the row worker-pool size: 1 means serial, anything below
	// 1 means runtime.GOMAXPROCS(0).
	Workers int

	// Tile selects the tiled score-matrix backend when Tile.BlockSize > 0
	// (ComputeTiled only; Compute ignores it).
	Tile simmat.TileOptions
}

// Stats reports the work an invocation performed, in the units the paper
// argues about: scalar additions spent building (inner) partial sums and
// consuming them (outer sums), plus the auxiliary memory beyond the two
// score matrices.
type Stats struct {
	Iterations  int
	InnerAdds   int64 // scalar additions building Partial_{I(a)}(.)
	OuterAdds   int64 // scalar additions summing partials over I(b)
	SievedPairs int64 // scores clamped to zero by the threshold
	AuxBytes    int64 // partial-sum buffers (one per worker)

	// Tile reports the tile store's accounting (ComputeTiled only).
	Tile simmat.TileMetrics
}

// Compute runs psum-SR and returns s_K together with run statistics.
func Compute(g *graph.Graph, opt Options) (*simmat.Matrix, *Stats, error) {
	if !(opt.C > 0 && opt.C < 1) {
		return nil, nil, fmt.Errorf("psum: damping factor %v outside (0,1)", opt.C)
	}
	if opt.K < 0 {
		return nil, nil, fmt.Errorf("psum: negative iteration count %d", opt.K)
	}
	n := g.NumVertices()
	workers := par.ResolveMax(opt.Workers, n)
	st := &Stats{AuxBytes: int64(workers) * int64(n) * 8}
	prev := simmat.NewIdentity(n)
	if opt.K == 0 {
		return prev, st, nil
	}
	next := simmat.New(n)
	partials := make([][]float64, workers)
	for w := range partials {
		partials[w] = make([]float64, n)
	}
	// Reciprocal in-degrees: one multiplication instead of one division per
	// vertex pair in the inner loop.
	invDeg := make([]float64, n)
	for v := 0; v < n; v++ {
		if d := g.InDegree(v); d > 0 {
			invDeg[v] = 1 / float64(d)
		}
	}

	stats := make([]Stats, workers)
	for iter := 0; iter < opt.K; iter++ {
		st.Iterations++
		par.Do(workers, func(w int) {
			lo, hi := par.Range(n, workers, w)
			partial := partials[w]
			// Count into locals to keep the hot loops off the shared stats
			// slice (false sharing); fold in once after the row range.
			var wst Stats
			for a := lo; a < hi; a++ {
				ia := g.In(a)
				rowNext := next.Row(a)
				if len(ia) == 0 {
					// Essential-pair skipping: s(a,b) = 0 for all b != a.
					for b := range rowNext {
						rowNext[b] = 0
					}
					rowNext[a] = 1
					continue
				}
				// Memorize Partial_{I(a)}(y) for every y (Eq. 4).
				row0 := prev.Row(ia[0])
				copy(partial, row0)
				for _, x := range ia[1:] {
					rx := prev.Row(x)
					for y := range partial {
						partial[y] += rx[y]
					}
				}
				wst.InnerAdds += int64(len(ia)-1) * int64(n)

				consumeRow(g, a, opt.C, opt.Threshold, invDeg, partial, rowNext, &wst)
			}
			stats[w].InnerAdds += wst.InnerAdds
			stats[w].OuterAdds += wst.OuterAdds
			stats[w].SievedPairs += wst.SievedPairs
		})
		// Canonicalize the iterate: the row-min(a,b) value becomes the
		// score of both orderings (copies only; see package comment).
		next.MirrorUpper(workers)
		prev, next = next, prev
	}
	for w := range stats {
		st.InnerAdds += stats[w].InnerAdds
		st.OuterAdds += stats[w].OuterAdds
		st.SievedPairs += stats[w].SievedPairs
	}
	return prev, st, nil
}

// consumeRow consumes the memorized partial sums for every second argument
// b (Eq. 5), writing the full row into row. Shared verbatim by the dense
// and tiled paths so their per-cell arithmetic cannot drift.
func consumeRow(g *graph.Graph, a int, c, threshold float64, invDeg, partial, row []float64, wst *Stats) {
	n := g.NumVertices()
	scaleA := c * invDeg[a]
	for b := 0; b < n; b++ {
		if b == a {
			row[b] = 1
			continue
		}
		ib := g.In(b)
		if len(ib) == 0 {
			row[b] = 0
			continue
		}
		sum := 0.0
		for _, j := range ib {
			sum += partial[j]
		}
		wst.OuterAdds += int64(len(ib) - 1)
		v := scaleA * invDeg[b] * sum
		if threshold > 0 && v < threshold {
			if v != 0 {
				wst.SievedPairs++
			}
			v = 0
		}
		row[b] = v
	}
}

// ComputeTiled runs psum-SR against the tiled score-matrix backend
// selected by opt.Tile: both iterates share one TileStore, so
// opt.Tile.MaxMemoryBytes bounds the whole n^2 state with spill-to-disk
// for evicted tiles. Scores and counts are bit-identical to Compute for
// every block size and worker count. The caller owns the result: Close it
// to release the store and its spill files.
func ComputeTiled(g *graph.Graph, opt Options) (*simmat.Tiled, *Stats, error) {
	if !(opt.C > 0 && opt.C < 1) {
		return nil, nil, fmt.Errorf("psum: damping factor %v outside (0,1)", opt.C)
	}
	if opt.K < 0 {
		return nil, nil, fmt.Errorf("psum: negative iteration count %d", opt.K)
	}
	store, err := simmat.NewTileStore(opt.Tile)
	if err != nil {
		return nil, nil, err
	}
	fail := func(err error) (*simmat.Tiled, *Stats, error) {
		store.Close()
		return nil, nil, err
	}
	n := g.NumVertices()
	workers := par.ResolveMax(opt.Workers, n)
	st := &Stats{AuxBytes: int64(workers) * int64(n) * 3 * 8}
	prev, err := store.NewIdentity(n)
	if err != nil {
		return fail(err)
	}
	if opt.K == 0 {
		st.Tile = store.Metrics()
		return prev, st, nil
	}
	next, err := store.NewTiled(n)
	if err != nil {
		return fail(err)
	}
	// Per-worker scratch: the partial-sum vector, a staging buffer for rows
	// of prev, and the emit target row.
	partials := make([][]float64, workers)
	rowTmps := make([][]float64, workers)
	rowBufs := make([][]float64, workers)
	for w := 0; w < workers; w++ {
		partials[w] = make([]float64, n)
		rowTmps[w] = make([]float64, n)
		rowBufs[w] = make([]float64, n)
	}
	invDeg := make([]float64, n)
	for v := 0; v < n; v++ {
		if d := g.InDegree(v); d > 0 {
			invDeg[v] = 1 / float64(d)
		}
	}

	stats := make([]Stats, workers)
	errs := make([]error, workers)
	for iter := 0; iter < opt.K; iter++ {
		st.Iterations++
		par.Do(workers, func(w int) {
			lo, hi := par.Range(n, workers, w)
			partial, rowTmp, rowBuf := partials[w], rowTmps[w], rowBufs[w]
			var wst Stats
			for a := lo; a < hi; a++ {
				ia := g.In(a)
				if len(ia) == 0 {
					// Essential-pair skipping: the same all-zero row with a
					// unit diagonal the dense path writes.
					for b := range rowBuf {
						rowBuf[b] = 0
					}
					rowBuf[a] = 1
					if errs[w] = next.SetRowUpper(a, rowBuf); errs[w] != nil {
						return
					}
					continue
				}
				// Memorize Partial_{I(a)}(y) (Eq. 4) from tile-assembled
				// rows; the per-element accumulation order is unchanged.
				if errs[w] = prev.RowInto(ia[0], partial); errs[w] != nil {
					return
				}
				for _, x := range ia[1:] {
					if errs[w] = prev.RowInto(x, rowTmp); errs[w] != nil {
						return
					}
					for y := range partial {
						partial[y] += rowTmp[y]
					}
				}
				wst.InnerAdds += int64(len(ia)-1) * int64(n)

				consumeRow(g, a, opt.C, opt.Threshold, invDeg, partial, rowBuf, &wst)
				if errs[w] = next.SetRowUpper(a, rowBuf); errs[w] != nil {
					return
				}
			}
			stats[w].InnerAdds += wst.InnerAdds
			stats[w].OuterAdds += wst.OuterAdds
			stats[w].SievedPairs += wst.SievedPairs
		})
		for _, err := range errs {
			if err != nil {
				return fail(err)
			}
		}
		prev, next = next, prev
	}
	for w := range stats {
		st.InnerAdds += stats[w].InnerAdds
		st.OuterAdds += stats[w].OuterAdds
		st.SievedPairs += stats[w].SievedPairs
	}
	next.Release()
	st.Tile = store.Metrics()
	return prev, st, nil
}
