package simmat

import (
	"math/rand"
	"testing"
)

// TestMaxDiffWorkersMatchesSerial: max is order-independent, so the blocked
// parallel reduction must return exactly the serial answer.
func TestMaxDiffWorkersMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 7, 50} {
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
				b.Set(i, j, rng.NormFloat64())
			}
		}
		want := MaxDiff(a, b)
		for _, workers := range []int{1, 2, 3, 16} {
			if got := MaxDiffWorkers(a, b, workers); got != want {
				t.Errorf("n=%d workers=%d: MaxDiffWorkers = %g, MaxDiff = %g", n, workers, got, want)
			}
		}
	}
}

func TestMaxDiffWorkersDimensionMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on dimension mismatch")
		}
	}()
	MaxDiffWorkers(New(3), New(4), 2)
}

func TestStateBytes(t *testing.T) {
	if got := StateBytes(10, 2); got != 2*10*10*8 {
		t.Errorf("StateBytes(10,2) = %d", got)
	}
	// Must agree with the matrices it accounts for.
	m := New(37)
	if got := StateBytes(37, 3); got != 3*m.Bytes() {
		t.Errorf("StateBytes(37,3) = %d, want %d", got, 3*m.Bytes())
	}
	if StateBytes(0, 5) != 0 {
		t.Error("StateBytes(0,5) != 0")
	}
}
