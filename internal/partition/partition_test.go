package partition

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"oipsr/graph"
)

func TestSetOps(t *testing.T) {
	a := []int{1, 3, 5, 7}
	b := []int{3, 4, 5, 8}
	if got := SortedIntersect(a, b); !reflect.DeepEqual(got, []int{3, 5}) {
		t.Errorf("intersect = %v", got)
	}
	if got := SortedDiff(a, b); !reflect.DeepEqual(got, []int{1, 7}) {
		t.Errorf("a\\b = %v", got)
	}
	if got := SortedDiff(b, a); !reflect.DeepEqual(got, []int{4, 8}) {
		t.Errorf("b\\a = %v", got)
	}
	if got := SymmetricDiffSize(a, b); got != 4 {
		t.Errorf("symdiff = %d, want 4", got)
	}
	if got := IntersectSize(a, b); got != 2 {
		t.Errorf("intersect size = %d, want 2", got)
	}
	if got := SymmetricDiffSize(nil, b); got != 4 {
		t.Errorf("symdiff(nil,b) = %d, want 4", got)
	}
	if got := SortedIntersect(nil, b); got != nil {
		t.Errorf("intersect(nil,b) = %v, want nil", got)
	}
}

// TestSetOpsProperties checks the algebra the sharing rewrite relies on:
// |A(+)B| = |A| + |B| - 2|A∩B| and B = (A∩B) ∪ (B\A) as a disjoint union.
func TestSetOpsProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() []int {
			m := make(map[int]bool)
			for i := 0; i < rng.Intn(12); i++ {
				m[rng.Intn(20)] = true
			}
			var s []int
			for k := 0; k < 20; k++ {
				if m[k] {
					s = append(s, k)
				}
			}
			return s
		}
		a, b := mk(), mk()
		if SymmetricDiffSize(a, b) != len(a)+len(b)-2*IntersectSize(a, b) {
			return false
		}
		// Disjoint union reconstruction (Eq. 8).
		shared, resid := SortedIntersect(b, a), SortedDiff(b, a)
		merged := append(append([]int(nil), shared...), resid...)
		m := make(map[int]bool)
		for _, x := range merged {
			if m[x] {
				return false // not disjoint
			}
			m[x] = true
		}
		if len(merged) != len(b) {
			return false
		}
		for _, x := range b {
			if !m[x] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// paperGraph is the Fig. 1a network; ids a=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7 i=8.
func paperGraph(t testing.TB) *graph.Graph {
	t.Helper()
	const (
		a, b, c, d, e, f, gg, h, i = 0, 1, 2, 3, 4, 5, 6, 7, 8
	)
	return graph.MustFromEdges(9, [][2]int{
		{b, a}, {gg, a},
		{e, b}, {f, b}, {gg, b}, {i, b},
		{b, c}, {d, c}, {gg, c},
		{a, d}, {e, d}, {f, d}, {i, d},
		{f, e}, {gg, e},
		{b, h}, {d, h},
	})
}

// TestFig2bTransitionCosts checks the # cells of Fig. 2b: the transition
// costs that make sharing worthwhile.
func TestFig2bTransitionCosts(t *testing.T) {
	g := paperGraph(t)
	const (
		a, b, c, d, e, h = 0, 1, 2, 3, 4, 7
	)
	cases := []struct {
		from, to int
		want     int
	}{
		{a, c, 1}, // I(a)->I(c): symdiff {d}, cheaper than 2 from scratch
		{h, c, 1}, // I(h)->I(c): symdiff {g}
		{e, b, 2}, // I(e)->I(b): symdiff {e,i}, cheaper than 3
		{b, d, 2}, // I(b)->I(d): symdiff {g,a}, the footnote example
		{a, e, 1}, // min(|{b,f}|=2, |I(e)|-1=1) = 1: scratch wins
		{a, b, 3}, // min(4, 3) = 3
		{c, d, 3}, // min(7, 3) = 3
	}
	for _, cse := range cases {
		if got := TransitionCost(g.In(cse.from), g.In(cse.to)); got != cse.want {
			t.Errorf("TC I(%d)->I(%d) = %d, want %d", cse.from, cse.to, got, cse.want)
		}
	}
	if got := ScratchCost(g.In(b)); got != 3 {
		t.Errorf("scratch cost of I(b) = %d, want 3", got)
	}
	if got := ScratchCost(nil); got != 0 {
		t.Errorf("scratch cost of empty = %d, want 0", got)
	}
}

// TestFig3aPlan reproduces the partitions of Fig. 3a: the plan must make
// a, e, h roots and derive c from a, b from e, d from b with the exact
// Add/Sub lists of the figure.
func TestFig3aPlan(t *testing.T) {
	g := paperGraph(t)
	p, err := BuildPlan(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const (
		a, b, c, d, e, h = 0, 1, 2, 3, 4, 7
	)
	wantParent := map[int]int{a: -1, e: -1, h: -1, c: a, b: e, d: b}
	for v, wp := range wantParent {
		if p.Parent[v] != wp {
			t.Errorf("parent of %d = %d, want %d", v, p.Parent[v], wp)
		}
	}
	// I(c) = I(a) + {d}: Add {3}, Sub {}.
	if !reflect.DeepEqual(p.Add[c], []int{3}) || len(p.Sub[c]) != 0 {
		t.Errorf("c: add=%v sub=%v, want add=[3] sub=[]", p.Add[c], p.Sub[c])
	}
	// I(b) = I(e) + {e, i}: Add {4, 8}, Sub {}.
	if !reflect.DeepEqual(p.Add[b], []int{4, 8}) || len(p.Sub[b]) != 0 {
		t.Errorf("b: add=%v sub=%v, want add=[4 8] sub=[]", p.Add[b], p.Sub[b])
	}
	// I(d) = I(b) - {g} + {a}: Add {0}, Sub {6}.
	if !reflect.DeepEqual(p.Add[d], []int{0}) || !reflect.DeepEqual(p.Sub[d], []int{6}) {
		t.Errorf("d: add=%v sub=%v, want add=[0] sub=[6]", p.Add[d], p.Sub[d])
	}
	if p.Additions != 8 {
		t.Errorf("plan additions = %d, want 8 (Fig. 2c MST weight)", p.Additions)
	}
	if p.ScratchAdditions != 1+3+2+3+1+1 {
		t.Errorf("scratch additions = %d, want 11", p.ScratchAdditions)
	}
	if p.NumSets != 6 {
		t.Errorf("NumSets = %d, want 6", p.NumSets)
	}
	if p.SharedEdges != 3 {
		t.Errorf("SharedEdges = %d, want 3", p.SharedEdges)
	}
	// d_(+) over the three shared edges: (1 + 2 + 2)/3.
	if p.AvgDiff < 1.66 || p.AvgDiff > 1.67 {
		t.Errorf("AvgDiff = %g, want 5/3", p.AvgDiff)
	}
	if r := p.ShareRatio(); r < 0.27 || r > 0.28 {
		t.Errorf("ShareRatio = %g, want 3/11", r)
	}
}

func TestPartitionOfReconstructs(t *testing.T) {
	g := paperGraph(t)
	p, err := BuildPlan(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if g.InDegree(v) == 0 {
			continue
		}
		shared, resid := p.PartitionOf(g, v)
		union := map[int]bool{}
		for _, x := range shared {
			union[x] = true
		}
		for _, x := range resid {
			if union[x] {
				t.Fatalf("vertex %d: partition blocks overlap at %d", v, x)
			}
			union[x] = true
		}
		if len(union) != g.InDegree(v) {
			t.Fatalf("vertex %d: partition covers %d elements, want %d", v, len(union), g.InDegree(v))
		}
		for _, x := range g.In(v) {
			if !union[x] {
				t.Fatalf("vertex %d: partition misses in-neighbor %d", v, x)
			}
		}
	}
}

// TestSparseCandidatesLossless: the overlap-based candidate generation must
// produce a plan exactly as cheap as the paper's dense O(n^2) table.
func TestSparseCandidatesLossless(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		b := graph.NewBuilder(n, 0)
		b.EnsureVertices(n)
		for i := 0; i < rng.Intn(5*n); i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g := b.MustBuild()
		sparse, err := BuildPlan(g, Options{})
		if err != nil {
			t.Log(err)
			return false
		}
		dense, err := BuildPlan(g, Options{Dense: true})
		if err != nil {
			t.Log(err)
			return false
		}
		if sparse.TreeWeight != dense.TreeWeight {
			t.Logf("seed %d: sparse MST %d != dense MST %d", seed, sparse.TreeWeight, dense.TreeWeight)
			return false
		}
		// With the deterministic greedy tie-break the trees are identical,
		// so the linearized costs agree as well.
		if sparse.Additions != dense.Additions {
			t.Logf("seed %d: sparse %d != dense %d", seed, sparse.Additions, dense.Additions)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestEdmondsMatchesGreedy: both MST backends must reach the same total cost
// on the DAG-shaped candidate graphs DMST-Reduce produces.
func TestEdmondsMatchesGreedy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		b := graph.NewBuilder(n, 0)
		b.EnsureVertices(n)
		for i := 0; i < rng.Intn(4*n); i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g := b.MustBuild()
		greedy, err := BuildPlan(g, Options{})
		if err != nil {
			return false
		}
		edm, err := BuildPlan(g, Options{UseEdmonds: true})
		if err != nil {
			return false
		}
		// Both are minimum arborescences of the same cost graph; the
		// linearized Additions may differ when the backends break weight
		// ties differently, but the tree weight may not.
		return greedy.TreeWeight == edm.TreeWeight
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPlanNeverWorseThanScratch: sharing can only reduce additions, and the
// plan on disjoint in-neighbor sets degrades gracefully to psum-SR cost
// (the paper's worst-case claim in Proposition 5).
func TestPlanNeverWorseThanScratch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		b := graph.NewBuilder(n, 0)
		b.EnsureVertices(n)
		for i := 0; i < rng.Intn(5*n); i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g := b.MustBuild()
		p, err := BuildPlan(g, Options{})
		if err != nil {
			return false
		}
		return p.Additions <= p.ScratchAdditions
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}

	// Pairwise-disjoint in-sets: no sharing possible, cost equals scratch.
	g := graph.MustFromEdges(6, [][2]int{{0, 1}, {2, 1}, {3, 4}, {5, 4}})
	p, err := BuildPlan(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Additions != p.ScratchAdditions {
		t.Errorf("disjoint sets: additions %d != scratch %d", p.Additions, p.ScratchAdditions)
	}
	if p.SharedEdges != 0 {
		t.Errorf("disjoint sets: SharedEdges = %d, want 0", p.SharedEdges)
	}
}

// TestIdenticalInSetsShareForFree: vertices with identical in-neighbor sets
// (common in copy-model web graphs) cost zero extra additions.
func TestIdenticalInSetsShareForFree(t *testing.T) {
	// Vertices 3 and 4 both have I = {0,1,2}.
	g := graph.MustFromEdges(5, [][2]int{
		{0, 3}, {1, 3}, {2, 3},
		{0, 4}, {1, 4}, {2, 4},
	})
	p, err := BuildPlan(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// One set from scratch (2 additions), the twin derived for free.
	if p.Additions != 2 {
		t.Errorf("additions = %d, want 2", p.Additions)
	}
	if p.SharedEdges != 1 || p.AvgDiff != 0 {
		t.Errorf("shared=%d avgDiff=%g, want 1 edge with zero diff", p.SharedEdges, p.AvgDiff)
	}
}

func TestPairCapStillValid(t *testing.T) {
	g := paperGraph(t)
	p, err := BuildPlan(g, Options{PairCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Capped candidate generation may lose sharing but must stay a valid
	// plan covering all non-empty sets.
	if p.NumSets != 6 {
		t.Errorf("NumSets = %d, want 6", p.NumSets)
	}
	if p.Additions > p.ScratchAdditions {
		t.Errorf("capped plan additions %d exceed scratch %d", p.Additions, p.ScratchAdditions)
	}
	covered := 0
	for v := 0; v < g.NumVertices(); v++ {
		if g.InDegree(v) > 0 {
			if p.Parent[v] >= 0 || contains(p.Roots, v) {
				covered++
			}
		}
	}
	if covered != 6 {
		t.Errorf("plan covers %d sets, want 6", covered)
	}
}

func contains(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

// TestStepViewsConsistent: the flattened ChainSteps/TreeSteps must cover
// every non-empty set exactly once, reference valid earlier parents, and
// agree with the Parent/TreeParent arrays.
func TestStepViewsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		b := graph.NewBuilder(n, 0)
		b.EnsureVertices(n)
		for i := 0; i < rng.Intn(5*n); i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g := b.MustBuild()
		for _, p := range []*Plan{mustPlan(t, g, Options{}), TrivialPlan(g)} {
			if len(p.ChainSteps) != p.NumSets || len(p.TreeSteps) != p.NumSets {
				t.Logf("seed %d: step count %d/%d != sets %d", seed, len(p.ChainSteps), len(p.TreeSteps), p.NumSets)
				return false
			}
			if !checkSteps(t, g, p.ChainSteps, p.Parent, true) {
				return false
			}
			if !checkSteps(t, g, p.TreeSteps, p.TreeParent, false) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func mustPlan(t *testing.T, g *graph.Graph, opt Options) *Plan {
	t.Helper()
	p, err := BuildPlan(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func checkSteps(t *testing.T, g *graph.Graph, steps []Step, parent []int, chain bool) bool {
	seen := make(map[int]int) // vertex -> step index
	for i, s := range steps {
		if g.InDegree(s.Vertex) == 0 {
			t.Logf("step %d covers empty-set vertex %d", i, s.Vertex)
			return false
		}
		if _, dup := seen[s.Vertex]; dup {
			t.Logf("vertex %d appears twice in steps", s.Vertex)
			return false
		}
		seen[s.Vertex] = i
		switch {
		case s.Parent < 0:
			if parent[s.Vertex] != -1 {
				t.Logf("step %d: scratch step but parent array says %d", i, parent[s.Vertex])
				return false
			}
		case int(s.Parent) >= i:
			t.Logf("step %d references a later parent %d", i, s.Parent)
			return false
		default:
			pv := steps[s.Parent].Vertex
			if parent[s.Vertex] != pv {
				t.Logf("step %d: parent %d disagrees with array %d", i, pv, parent[s.Vertex])
				return false
			}
			if chain && int(s.Parent) != i-1 {
				t.Logf("chain step %d has non-consecutive parent %d", i, s.Parent)
				return false
			}
		}
	}
	return true
}

// TestChainCostMatchesAdditions: summing the per-step costs reproduces the
// Plan.Additions bookkeeping.
func TestChainCostMatchesAdditions(t *testing.T) {
	g := paperGraph(t)
	p := mustPlan(t, g, Options{})
	total := 0
	for _, s := range p.ChainSteps {
		if s.Parent < 0 {
			total += ScratchCost(g.In(s.Vertex))
		} else {
			total += len(p.Add[s.Vertex]) + len(p.Sub[s.Vertex])
		}
	}
	if total != p.Additions {
		t.Errorf("step cost sum %d != Additions %d", total, p.Additions)
	}
	// And the tree steps reproduce TreeWeight.
	total = 0
	for _, s := range p.TreeSteps {
		if s.Parent < 0 {
			total += ScratchCost(g.In(s.Vertex))
		} else {
			total += len(p.TreeAdd[s.Vertex]) + len(p.TreeSub[s.Vertex])
		}
	}
	if total != p.TreeWeight {
		t.Errorf("tree step cost sum %d != TreeWeight %d", total, p.TreeWeight)
	}
}

// TestLinearizationNeverWorseThanUndo: the chain cost is bounded by the
// tree weight plus the undo cost a branching traversal would pay (every
// shared edge applied and undone at most once more).
func TestLinearizationNeverWorseThanUndo(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		b := graph.NewBuilder(n, 0)
		b.EnsureVertices(n)
		for i := 0; i < rng.Intn(6*n); i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g := b.MustBuild()
		p := mustPlan(t, g, Options{})
		if p.Additions > 2*p.TreeWeight {
			t.Logf("seed %d: chain cost %d > 2x tree weight %d", seed, p.Additions, p.TreeWeight)
			return false
		}
		return p.Additions <= p.ScratchAdditions
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
