package walkindex

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"oipsr/graph"
	"oipsr/internal/par"
)

// Out-of-core streaming builds.
//
// Build materializes the full dense path payload (n*R*K int32s) before
// anything reaches disk, which caps the graphs it can index at available
// memory — exactly the limit the compressed on-disk format was built to
// escape. BuildStreaming removes it: walks are generated in vertex-range
// slices sized to a caller-supplied byte budget and encoded straight to
// format-v2 posting blocks, so peak memory is bounded by the budget, never
// by n. The output is byte-identical to SaveFormat(FormatV2) on a full
// Build — same header, same directory, same block bytes, same CRC trailer
// — because both sides share the walk hash (edgeChoice is a pure function
// of (seed, fingerprint, step, vertex), so any vertex range is computable
// independently) and the posting codec (appendWalk needs only the
// immediately preceding vertex's row, which the slice loop carries across
// slice boundaries and resets at block boundaries).
//
// Format v2 places the block directory BEFORE the payload, but directory
// offsets are cumulative block lengths known only after encoding. The
// builder therefore writes through an io.WriterAt: header and meta land at
// offset 0 up front, posting blocks stream sequentially into the payload
// region, and each block's directory entry is patched into the directory
// region the moment the block's length is known. Directory entries are
// produced in file order, so the CRC over the head (header + meta +
// directory) streams alongside; the trailer is then CRC(head)‖CRC(payload)
// merged with crc32Combine, and the one-pass file carries the exact
// checksum a buffered writeV2 would have produced.

// StreamStats reports what a streaming build wrote, with the resolved
// build parameters (defaults filled, K derived from Eps) so callers can
// record what was actually built — shard.BuildAllStreaming builds its
// manifest entries from them.
type StreamStats struct {
	// Rows is the number of start vertices written: n for a full index,
	// hi-lo for a shard.
	Rows  int
	K     int
	Walks int
	C     float64
	Seed  int64

	// Bytes is the total file size, CRC trailer included.
	Bytes int64
	// CRC32 is the trailer checksum — the CRC-32 (IEEE) of every byte
	// before the trailer, which is also the value a shard manifest records
	// for the file.
	CRC32 uint32

	// SliceVertices is the generation slice width the budget resolved to;
	// Slices and Blocks count what was generated and encoded.
	SliceVertices int
	Slices        int
	Blocks        int
}

// BuildStreaming builds the walk index for g and writes it to w in format
// v2, generating walks in vertex slices of at most budgetBytes of decoded
// path data instead of materializing the whole index. The bytes written
// are identical to SaveFormat(w, FormatV2) on Build(g, opt) — for any
// budget and any worker count — so files from the two paths are
// interchangeable, byte for byte. Small fixed overheads (one encoded
// posting block, one carried row, the write buffer) ride on top of the
// budget; a budget below one row's 4*R*K bytes degrades to one-vertex
// slices rather than failing.
func BuildStreaming(g *graph.Graph, opt Options, w io.WriterAt, budgetBytes int64) (*StreamStats, error) {
	if err := opt.resolve(); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	if err := formatGuard(int64(n), int64(opt.K), int64(opt.Walks), opt.C, FormatV2); err != nil {
		return nil, err
	}
	var hdr [headerSize]byte
	copy(hdr[:8], magic[:])
	binary.LittleEndian.PutUint32(hdr[8:], FormatV2)
	binary.LittleEndian.PutUint64(hdr[12:], uint64(int64(n)))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(int64(opt.K)))
	binary.LittleEndian.PutUint64(hdr[28:], uint64(int64(opt.Walks)))
	binary.LittleEndian.PutUint64(hdr[36:], math.Float64bits(opt.C))
	binary.LittleEndian.PutUint64(hdr[44:], uint64(opt.Seed))
	return streamV2(g, opt, 0, n, hdr[:], w, budgetBytes, "index")
}

// BuildShardStreaming is BuildStreaming for the shard of vertex range
// [lo, hi): the bytes written are identical to
// ShardIndex.SaveFormat(w, FormatV2) on BuildShard(g, opt, lo, hi).
func BuildShardStreaming(g *graph.Graph, opt Options, lo, hi int, w io.WriterAt, budgetBytes int64) (*StreamStats, error) {
	if err := opt.resolve(); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	if lo < 0 || hi < lo || hi > n {
		return nil, fmt.Errorf("walkindex: shard range [%d,%d) outside [0,%d)", lo, hi, n)
	}
	if err := formatGuard(int64(hi-lo), int64(opt.K), int64(opt.Walks), opt.C, FormatV2); err != nil {
		return nil, err
	}
	var hdr [shardHeaderSize]byte
	copy(hdr[:8], shardMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], FormatV2)
	binary.LittleEndian.PutUint64(hdr[12:], uint64(int64(n)))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(int64(lo)))
	binary.LittleEndian.PutUint64(hdr[28:], uint64(int64(hi)))
	binary.LittleEndian.PutUint64(hdr[36:], uint64(int64(opt.K)))
	binary.LittleEndian.PutUint64(hdr[44:], uint64(int64(opt.Walks)))
	binary.LittleEndian.PutUint64(hdr[52:], math.Float64bits(opt.C))
	binary.LittleEndian.PutUint64(hdr[60:], uint64(opt.Seed))
	return streamV2(g, opt, lo, hi, hdr[:], w, budgetBytes, "shard")
}

// streamSliceVertices resolves the byte budget to a generation slice width
// in vertices: as many rows of 4*stride bytes as fit, at least one, at
// most rows.
func streamSliceVertices(budget int64, stride, rows int) int {
	s := budget / (4 * int64(stride))
	if s < 1 {
		s = 1
	}
	if rows > 0 && s > int64(rows) {
		s = int64(rows)
	}
	return int(s)
}

// streamV2 is the shared one-pass core of BuildStreaming and
// BuildShardStreaming; opt is already resolved and hdr is the caller's
// format header (index or shard). Rows [lo, hi) of g are generated slice
// by slice and encoded block by block into w.
func streamV2(g *graph.Graph, opt Options, lo, hi int, hdr []byte, w io.WriterAt, budget int64, what string) (*StreamStats, error) {
	if budget < 1 {
		return nil, fmt.Errorf("walkindex: streaming %s build budget %d bytes, want >= 1", what, budget)
	}
	rows := hi - lo
	k, r := opt.K, opt.Walks
	stride := r * k
	nb := int(v2NumBlocks(int64(rows), v2BlockVertices))

	// pre is exactly what writeV2 hashes and writes first: the caller's
	// header plus the v2 block size/count meta.
	pre := make([]byte, len(hdr)+8)
	copy(pre, hdr)
	binary.LittleEndian.PutUint32(pre[len(hdr):], v2BlockVertices)
	binary.LittleEndian.PutUint32(pre[len(hdr)+4:], uint32(nb))
	dirOff := int64(len(pre))
	payloadOff := dirOff + 8*int64(nb+1)

	// The head CRC streams over pre and the directory entries in file
	// order — block b's end offset is known the moment block b finishes,
	// and entries are patched into the directory region as they appear, so
	// neither the directory nor the payload is ever held in memory.
	headCRC := crc32.NewIEEE()
	headCRC.Write(pre)
	if _, err := w.WriteAt(pre, 0); err != nil {
		return nil, fmt.Errorf("walkindex: writing %s header: %w", what, err)
	}
	writeDirEntry := func(i int, off int64) error {
		var e [8]byte
		binary.LittleEndian.PutUint64(e[:], uint64(off))
		headCRC.Write(e[:])
		if _, err := w.WriteAt(e[:], dirOff+8*int64(i)); err != nil {
			return fmt.Errorf("walkindex: writing %s directory: %w", what, err)
		}
		return nil
	}
	if err := writeDirEntry(0, 0); err != nil {
		return nil, err
	}

	payloadCRC := crc32.NewIEEE()
	pw := bufio.NewWriterSize(io.MultiWriter(io.NewOffsetWriter(w, payloadOff), payloadCRC), 1<<16)

	sliceW := streamSliceVertices(budget, stride, rows)
	sliceBuf := make([]int32, sliceW*stride)
	prevRow := make([]int32, stride) // last row of the previous slice
	var enc []byte                   // current posting block's encoding
	payloadLen := int64(0)
	blocks, slices := 0, 0

	hseed := splitmix64(uint64(opt.Seed))
	for slo := 0; slo < rows; slo += sliceW {
		shi := min(slo+sliceW, rows)
		width := shi - slo
		slices++

		// Generate the slice exactly as Build generates its rows: the walk
		// hash makes every vertex independent, so any worker count (and any
		// slicing) produces the same paths bit for bit.
		workers := par.ResolveMax(opt.Workers, width)
		par.Do(workers, func(wk int) {
			wlo, whi := par.Range(width, workers, wk)
			for v := wlo; v < whi; v++ {
				base := v * stride
				for fp := 0; fp < r; fp++ {
					walkFrom(g, hseed, fp, 0, lo+slo+v, sliceBuf[base+fp*k:base+(fp+1)*k])
				}
			}
		})

		for v := slo; v < shi; v++ {
			row := sliceBuf[(v-slo)*stride : (v-slo+1)*stride]
			// The codec's predecessor row: none at a block boundary, the
			// carried copy at a slice boundary, the in-slice neighbor
			// otherwise — the same predecessor appendV2Block would see.
			var prev []int32
			switch {
			case v%v2BlockVertices == 0:
				prev = nil
			case v == slo:
				prev = prevRow
			default:
				prev = sliceBuf[(v-slo-1)*stride : (v-slo)*stride]
			}
			for fp := 0; fp < r; fp++ {
				var p []int32
				if prev != nil {
					p = prev[fp*k : (fp+1)*k]
				}
				var err error
				enc, err = appendWalk(enc, row[fp*k:(fp+1)*k], p)
				if err != nil {
					return nil, err
				}
			}
			if (v+1)%v2BlockVertices == 0 || v+1 == rows {
				if len(enc) > maxV2BlockBytes {
					return nil, fmt.Errorf("%w: encoded posting block of %d bytes exceeds %d", ErrFormatLimits, len(enc), maxV2BlockBytes)
				}
				if _, err := pw.Write(enc); err != nil {
					return nil, fmt.Errorf("walkindex: writing %s blocks: %w", what, err)
				}
				payloadLen += int64(len(enc))
				blocks++
				if err := writeDirEntry(blocks, payloadLen); err != nil {
					return nil, err
				}
				enc = enc[:0]
			}
		}
		copy(prevRow, sliceBuf[(width-1)*stride:width*stride])
	}
	if err := pw.Flush(); err != nil {
		return nil, fmt.Errorf("walkindex: writing %s blocks: %w", what, err)
	}

	// The trailer covers head ‖ payload, which were hashed separately;
	// crc32Combine merges the two sums into the CRC of the concatenation.
	fileCRC := crc32Combine(headCRC.Sum32(), payloadCRC.Sum32(), payloadLen)
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], fileCRC)
	if _, err := w.WriteAt(sum[:], payloadOff+payloadLen); err != nil {
		return nil, fmt.Errorf("walkindex: writing %s checksum: %w", what, err)
	}

	return &StreamStats{
		Rows: rows, K: k, Walks: r, C: opt.C, Seed: opt.Seed,
		Bytes: payloadOff + payloadLen + 4, CRC32: fileCRC,
		SliceVertices: sliceW, Slices: slices, Blocks: blocks,
	}, nil
}

// crc32Combine returns the CRC-32 (IEEE) of the concatenation a‖b given
// crcA = CRC(a), crcB = CRC(b), and len(b) — without re-reading any bytes.
// CRC-32 is linear over GF(2): appending lenB zero bytes to a multiplies
// its CRC by x^(8*lenB) in the quotient ring, an operator applied here as
// a 32×32 bit matrix raised to the 8*lenB-th power by repeated squaring
// (the zlib crc32_combine construction), and XORing crcB then accounts for
// b's actual bytes.
func crc32Combine(crcA, crcB uint32, lenB int64) uint32 {
	if lenB <= 0 {
		return crcA
	}
	var even, odd [32]uint32
	// odd = the one-zero-BIT operator: the CRC register shifts right one,
	// feeding back the reflected polynomial.
	odd[0] = crc32.IEEE
	for i := 1; i < 32; i++ {
		odd[i] = 1 << (i - 1)
	}
	gf2MatrixSquare(&even, &odd) // even = 2 zero bits
	gf2MatrixSquare(&odd, &even) // odd  = 4 zero bits
	crc := crcA
	for {
		gf2MatrixSquare(&even, &odd) // 8, 32, ... zero bits
		if lenB&1 != 0 {
			crc = gf2MatrixTimes(&even, crc)
		}
		lenB >>= 1
		if lenB == 0 {
			break
		}
		gf2MatrixSquare(&odd, &even) // 16, 64, ... zero bits
		if lenB&1 != 0 {
			crc = gf2MatrixTimes(&odd, crc)
		}
		lenB >>= 1
		if lenB == 0 {
			break
		}
	}
	return crc ^ crcB
}

// gf2MatrixTimes multiplies the GF(2) bit matrix mat by the bit vector vec.
func gf2MatrixTimes(mat *[32]uint32, vec uint32) uint32 {
	var sum uint32
	for i := 0; vec != 0; i, vec = i+1, vec>>1 {
		if vec&1 != 0 {
			sum ^= mat[i]
		}
	}
	return sum
}

// gf2MatrixSquare sets dst = src², composing the zero-bit operator with
// itself.
func gf2MatrixSquare(dst, src *[32]uint32) {
	for i := range src {
		dst[i] = gf2MatrixTimes(src, src[i])
	}
}
