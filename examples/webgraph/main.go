// Webgraph: similar-page search on a boilerplate-heavy web graph, showing
// where OIP-SR's partial-sums sharing pays off.
//
// Web crawls are the paper's best case: pages sharing navigation templates
// have near-identical in-neighbor sets, so most partial sums can be derived
// from one another instead of recomputed. This example generates a
// BERKSTAN-shaped graph, runs three engines at the same accuracy, and
// prints the cost breakdown the paper argues about — additions spent,
// sharing ratio, auxiliary memory — alongside wall-clock times.
//
//	go run ./examples/webgraph
package main

import (
	"fmt"
	"log"
	"time"

	"oipsr/graph"
	"oipsr/graph/gen"
	"oipsr/simrank"
)

func main() {
	const (
		n      = 1500
		avgDeg = 11 // BERKSTAN-like density
	)
	g := gen.WebGraph(n, avgDeg, 3)
	fmt.Printf("web graph: %s\n\n", graph.ComputeStats(g))

	type row struct {
		alg   simrank.Algorithm
		t     time.Duration
		stats *simrank.Stats
	}
	var rows []row
	for _, alg := range []simrank.Algorithm{simrank.PsumSR, simrank.OIPSR, simrank.OIPDSR} {
		start := time.Now()
		_, st, err := simrank.Compute(g, simrank.Options{Algorithm: alg, C: 0.6, Eps: 1e-3})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{alg, time.Since(start), st})
	}

	fmt.Printf("%-10s %6s %12s %16s %16s %12s\n",
		"engine", "iters", "time", "inner adds", "outer adds", "aux memory")
	for _, r := range rows {
		fmt.Printf("%-10s %6d %12v %16d %16d %12d\n",
			r.alg, r.stats.Iterations, r.t.Round(time.Millisecond),
			r.stats.InnerAdds, r.stats.OuterAdds, r.stats.AuxBytes)
	}
	oip := rows[1].stats
	psum := rows[0].stats
	fmt.Printf("\nsharing ratio %.2f: OIP-SR spends %.1fx fewer additions than psum-SR\n",
		oip.ShareRatio,
		float64(psum.InnerAdds+psum.OuterAdds)/float64(oip.InnerAdds+oip.OuterAdds))

	// Similar-page search for the most linked-to page.
	scores, _, err := simrank.Compute(g, simrank.Options{C: 0.6, Eps: 1e-3})
	if err != nil {
		log.Fatal(err)
	}
	query := 0
	for v := 0; v < n; v++ {
		if g.InDegree(v) > g.InDegree(query) {
			query = v
		}
	}
	fmt.Printf("\npages most similar to page #%d (%d in-links):\n", query, g.InDegree(query))
	for i, r := range scores.TopK(query, 5) {
		fmt.Printf("  %d. page #%-6d score %.5f (%d in-links)\n",
			i+1, r.Vertex, r.Score, g.InDegree(r.Vertex))
	}
}
