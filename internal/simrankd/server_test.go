package simrankd

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"oipsr/graph"
	"oipsr/graph/gen"
	"oipsr/internal/eval"
	"oipsr/simrank"
	"oipsr/simrank/query"
)

func testIndex(t *testing.T) (*graph.Graph, *query.Index) {
	t.Helper()
	g := gen.WebGraph(150, 8, 101)
	idx, err := query.BuildIndex(g, query.Options{Walks: 1200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return g, idx
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestTopKEndToEnd is the acceptance test: serve /v1/topk from a built
// index and match exact OIP-SR top-k within the precision bound.
func TestTopKEndToEnd(t *testing.T) {
	g, idx := testIndex(t)
	ts := httptest.NewServer(newServer(idx, 64, 1))
	defer ts.Close()

	exact, _, err := simrank.Compute(g, simrank.Options{
		Algorithm: simrank.OIPSR, C: idx.C(), K: idx.Horizon(),
	})
	if err != nil {
		t.Fatal(err)
	}

	const k = 10
	for _, rerank := range []string{"", "&rerank=1"} {
		var sum float64
		queries := []int{0, 19, 37, 56, 75, 93, 112, 131}
		for _, q := range queries {
			code, body := get(t, ts.URL+"/v1/topk?q="+strconv.Itoa(q)+"&k=10"+rerank)
			if code != http.StatusOK {
				t.Fatalf("GET /v1/topk?q=%d: status %d, body %s", q, code, body)
			}
			var resp topKResponse
			if err := json.Unmarshal(body, &resp); err != nil {
				t.Fatalf("decoding response: %v", err)
			}
			if resp.Query != q || resp.K != k || len(resp.Results) != k {
				t.Fatalf("response header mismatch: %+v", resp)
			}
			sum += precisionAtK(exact.Row(q), q, resp.Results, k)
		}
		p := sum / float64(len(queries))
		if p < 0.9 {
			t.Errorf("rerank=%q: served precision@%d = %.3f, want >= 0.9", rerank, k, p)
		}
	}
}

// TestSaveLoadServesBitIdenticalResponses: an index saved to disk and
// loaded back must answer every query with byte-identical bodies.
func TestSaveLoadServesBitIdenticalResponses(t *testing.T) {
	g, idx := testIndex(t)
	path := filepath.Join(t.TempDir(), "walks.idx")
	if err := idx.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := query.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.AttachGraph(g); err != nil {
		t.Fatal(err)
	}

	tsA := httptest.NewServer(newServer(idx, 0, 1))
	defer tsA.Close()
	tsB := httptest.NewServer(newServer(loaded, 0, 1))
	defer tsB.Close()

	for _, path := range []string{
		"/v1/topk?q=3&k=10",
		"/v1/topk?q=77&k=5&rerank=1",
		"/v1/single_source?q=42",
		"/v1/single_source?q=8&min=0.01",
	} {
		codeA, bodyA := get(t, tsA.URL+path)
		codeB, bodyB := get(t, tsB.URL+path)
		if codeA != http.StatusOK || codeB != http.StatusOK {
			t.Fatalf("%s: status %d / %d", path, codeA, codeB)
		}
		if string(bodyA) != string(bodyB) {
			t.Fatalf("%s: responses differ after Save/Load:\n%s\n%s", path, bodyA, bodyB)
		}
	}
}

func TestSingleSourceEndpoint(t *testing.T) {
	_, idx := testIndex(t)
	ts := httptest.NewServer(newServer(idx, 64, 1))
	defer ts.Close()

	code, body := get(t, ts.URL+"/v1/single_source?q=12")
	if code != http.StatusOK {
		t.Fatalf("status %d, body %s", code, body)
	}
	var resp singleSourceResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.N != idx.N() || len(resp.Scores) != idx.N() {
		t.Fatalf("got n=%d, %d scores; want %d", resp.N, len(resp.Scores), idx.N())
	}
	want, err := idx.SingleSource(context.Background(), 12)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if resp.Scores[v] != want[v] {
			t.Fatalf("scores[%d] = %g, want %g", v, resp.Scores[v], want[v])
		}
	}

	// Sparse form: every returned entry clears the threshold, in order.
	code, body = get(t, ts.URL+"/v1/single_source?q=12&min=0.005")
	if code != http.StatusOK {
		t.Fatalf("sparse: status %d, body %s", code, body)
	}
	var sparse singleSourceResponse
	if err := json.Unmarshal(body, &sparse); err != nil {
		t.Fatal(err)
	}
	if len(sparse.Scores) != 0 {
		t.Fatal("sparse response included the dense vector")
	}
	for i, e := range sparse.Results {
		if e.Score < 0.005 || e.Vertex == 12 {
			t.Fatalf("sparse entry %d below threshold or self: %+v", i, e)
		}
		if i > 0 && e.Score > sparse.Results[i-1].Score {
			t.Fatalf("sparse entries not sorted at %d", i)
		}
	}
}

func TestErrorResponses(t *testing.T) {
	_, idx := testIndex(t)
	ts := httptest.NewServer(newServer(idx, 64, 1))
	defer ts.Close()

	for _, tc := range []string{
		"/v1/topk",              // missing q
		"/v1/topk?q=abc",        // non-integer q
		"/v1/topk?q=99999&k=10", // out of range
		"/v1/topk?q=3&k=0",      // bad k
		"/v1/single_source?q=-2",
		"/v1/single_source?q=1&min=xyz",
	} {
		code, body := get(t, ts.URL+tc)
		if code != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400 (body %s)", tc, code, body)
		}
		var e errorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("GET %s: non-JSON error body %s", tc, body)
		}
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, idx := testIndex(t)
	ts := httptest.NewServer(newServer(idx, 64, 1))
	defer ts.Close()

	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	var h healthzResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Vertices != idx.N() || h.Walks != idx.Walks() {
		t.Fatalf("healthz = %+v", h)
	}

	// Same query twice: the second hit must come from the LRU.
	get(t, ts.URL+"/v1/topk?q=5&k=10")
	get(t, ts.URL+"/v1/topk?q=5&k=10")

	code, body = get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	text := string(body)
	for _, want := range []string{
		`simrankd_requests_total{endpoint="topk"} 2`,
		"simrankd_cache_hits_total 1",
		"simrankd_cache_misses_total 1",
		"simrankd_index_vertices 150",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
}

// precisionAtK adapts eval.PrecisionAtK (the same tie-fair threshold
// metric the simrank/query accuracy tests use) to a []query.Ranked list.
func precisionAtK(exactRow []float64, q int, got []query.Ranked, k int) float64 {
	ids := make([]int, len(got))
	for i, r := range got {
		ids[i] = r.Vertex
	}
	return eval.PrecisionAtK(exactRow, q, ids, k)
}
