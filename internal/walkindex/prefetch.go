package walkindex

import "sync/atomic"

// Block readahead for the mapped store.
//
// A mapped index pays one posting-block decode per cache miss, on the
// query path. Point lookups amortize that through the LRU, but the
// scan-heavy queries — MultiSource's target sweep, Join's per-fingerprint
// position materialization, the shard partials — walk the whole store in
// ascending vertex order and miss on every new block, serializing decode
// behind the sweep. The prefetch pool moves those decodes off the hot
// path: a small fixed set of workers drains a bounded queue of block ids,
// decoding each into the LRU just ahead of the reader.
//
// Two things feed the queue. Sweeps that know their range declare it up
// front through PathStore.Prefetch, which seeds the first window and
// primes a detector slot so every subsequent block access rolls the window
// forward. Everything else goes through sequential-scan detection on the
// Row path: a handful of atomic stream slots (one per concurrently
// sweeping reader, replaced round-robin) each remember the next block an
// ascending scan would touch, and a confirmed continuation schedules the
// blocks behind it — the kernel-readahead idea applied to decoded blocks.
//
// Everything is advisory. The queue drops on overflow, depth is clamped
// below the cache capacity so readahead cannot evict the block under the
// reader, and a prefetched block is bit-identical to a demand-decoded one
// — so answers never depend on whether the pool kept up.

// DefaultPrefetchBlocks is the readahead depth used when
// MappedOptions.PrefetchBlocks is zero.
const DefaultPrefetchBlocks = 8

// prefetchWorkers is the pool size; prefetchQueue bounds the pending block
// ids (overflow drops, it never blocks the reader).
const (
	prefetchWorkers = 2
	prefetchQueue   = 64
)

// detectorStreams is how many interleaved sequential scans the detector
// tracks — one slot per sweeping worker, a few spares for point-query
// noise. Slots are replaced round-robin, so a burst of random accesses
// recycles them without touching an active stream's slot.
const detectorStreams = 8

// streamDetector recognizes ascending block-sequential access patterns.
// Each slot holds the next block id its stream expects (b+1 after an
// access to b); the zero value primes every slot for a scan starting at
// block 0, the common case. All methods are safe for concurrent use.
type streamDetector struct {
	slots [detectorStreams]atomic.Int64
	clock atomic.Uint32
}

// observe records an access to block b and reports whether it continues a
// tracked ascending stream (the signal to schedule readahead). Repeated
// accesses within one block — 64 Row calls land in the same posting block
// — match the already-advanced slot and are not counted again, so they
// neither re-schedule nor thrash the slots.
func (d *streamDetector) observe(b int64) bool {
	for i := range d.slots {
		v := d.slots[i].Load()
		if v == b+1 {
			return false
		}
		if v == b && d.slots[i].CompareAndSwap(b, b+1) {
			return true
		}
	}
	d.slots[d.clock.Add(1)%detectorStreams].Store(b + 1)
	return false
}

// prime points a slot at block b so a declared sweep's first access counts
// as a continuation immediately instead of after one warm-up block.
func (d *streamDetector) prime(b int64) {
	d.slots[d.clock.Add(1)%detectorStreams].Store(b)
}

// startPrefetch launches the worker pool; no-op when the resolved depth is
// zero (prefetch disabled, or a cache too small to hold readahead).
func (ms *mappedStore) startPrefetch() {
	if ms.pfDepth == 0 {
		return
	}
	ms.pfq = make(chan int, prefetchQueue)
	ms.pfStop = make(chan struct{})
	ms.pfWG.Add(prefetchWorkers)
	for i := 0; i < prefetchWorkers; i++ {
		go ms.prefetchLoop()
	}
}

// stopPrefetch quiesces the pool: after it returns no worker touches the
// backing file or the cache again. Close calls it before releasing the
// mapping; it is idempotent.
func (ms *mappedStore) stopPrefetch() {
	if ms.pfDepth == 0 {
		return
	}
	ms.pfOnce.Do(func() { close(ms.pfStop) })
	ms.pfWG.Wait()
}

func (ms *mappedStore) prefetchLoop() {
	defer ms.pfWG.Done()
	for {
		// The stop probe comes first so a closed store wins over a backlog.
		select {
		case <-ms.pfStop:
			return
		default:
		}
		select {
		case <-ms.pfStop:
			return
		case b := <-ms.pfq:
			ms.prefetchBlock(b)
		}
	}
}

// prefetchBlock decodes block b into the LRU unless it is already resident
// (cached or dirty in the overlay). The read lock spans decode + cache
// fill: flush takes the write side across its backing-file swap and
// overlay demotion, so a worker can never publish a block decoded from
// superseded bytes over the repaired one.
func (ms *mappedStore) prefetchBlock(b int) {
	ms.pfMu.RLock()
	defer ms.pfMu.RUnlock()
	ms.mu.Lock()
	_, dirty := ms.overlay[b]
	ms.mu.Unlock()
	if dirty {
		return
	}
	if _, ok := ms.cache.Get(b); ok {
		return
	}
	ms.cache.Put(b, ms.decodeBlock(b))
	ms.pfLoads.Add(1)
}

// schedule enqueues block b for the pool, dropping it when the queue is
// full — readahead is advisory, the reader must never wait on it.
func (ms *mappedStore) schedule(b int) {
	if b < 0 || b >= ms.nb {
		return
	}
	select {
	case ms.pfq <- b:
	default:
	}
}

// scheduleWindow enqueues the readahead window behind block b.
func (ms *mappedStore) scheduleWindow(b int) {
	for nb := b + 1; nb <= b+ms.pfDepth; nb++ {
		ms.schedule(nb)
	}
}

// Prefetch implements PathStore: a sweep declares the store-local vertex
// range [lo, hi) it is about to read in ascending order. The first window
// of covering blocks is seeded immediately and a detector slot is primed
// so the sweep's own block accesses keep the window rolling.
func (ms *mappedStore) Prefetch(lo, hi int) {
	if ms.pfDepth == 0 || lo >= hi || lo < 0 {
		return
	}
	b0 := lo / ms.blockB
	last := (hi - 1) / ms.blockB
	ms.det.prime(int64(b0))
	for b := b0; b <= min(b0+ms.pfDepth, last); b++ {
		ms.schedule(b)
	}
}
