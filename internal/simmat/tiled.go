package simmat

import (
	"container/list"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"

	"oipsr/internal/par"
)

// TileOptions configure the tiled score-matrix backend.
type TileOptions struct {
	// BlockSize is the tile edge B: the matrix becomes a grid of B x B
	// tiles (ragged at the right/bottom edge), of which only the canonical
	// upper-triangular half is stored. Zero or negative disables tiling.
	BlockSize int

	// MaxMemoryBytes caps the resident tile bytes of the whole computation
	// (all matrices sharing one TileStore). When the cap is hit, the least
	// recently used unpinned tile is evicted — spilled to disk if dirty.
	// Zero means unbounded.
	MaxMemoryBytes int64

	// SpillDir is where evicted tiles are written. Empty means a fresh
	// temporary directory created on first spill and removed on Close.
	SpillDir string
}

// Enabled reports whether the options select the tiled backend.
func (o TileOptions) Enabled() bool { return o.BlockSize > 0 }

// ErrMemoryBudget is returned when a tile must be brought into memory but
// every resident tile is pinned, so the MaxMemoryBytes cap cannot be met.
var ErrMemoryBudget = errors.New("simmat: working set exceeds MaxMemoryBytes with all tiles pinned")

// TileMetrics is a snapshot of a TileStore's accounting.
type TileMetrics struct {
	ResidentBytes  int64 // tile bytes currently in memory
	HighWaterBytes int64 // peak resident bytes over the store's lifetime
	Spills         int64 // dirty tiles written to disk
	Loads          int64 // tiles paged back in from disk
	SpilledBytes   int64 // cumulative bytes written to spill files
}

// TileStore is the shared memory manager of one tiled computation: every
// Tiled matrix of a run draws tiles from the same store, so MaxMemoryBytes
// bounds the run's whole n^2 state, not one matrix. The store is safe for
// concurrent use; every operation pins at most one tile at a time, so the
// bound is respected up to workers * tileBytes of pinned slack.
//
// Known limitation: spill and reload I/O runs under the store mutex, so
// concurrent workers serialize on tile faults. Budgets comfortably above
// the hot working set are unaffected (residency changes are rare); heavily
// over-committed multi-worker runs degrade toward disk-bound serial speed
// — correct, bounded, but not parallel. Lifting the I/O out of the lock
// (per-entry busy states) is the known next step.
type TileStore struct {
	mu        sync.Mutex
	blockSize int
	budget    int64
	spillDir  string // configured; "" = temp dir on demand
	dir       string // actual directory once created
	ownsDir   bool
	lru       *list.List // of *tileEntry; front = most recently used
	mats      []*Tiled
	metrics   TileMetrics
	closed    bool
}

// NewTileStore creates a store for the given options. BlockSize must be
// positive.
func NewTileStore(opt TileOptions) (*TileStore, error) {
	if opt.BlockSize <= 0 {
		return nil, fmt.Errorf("simmat: tile block size %d, want > 0", opt.BlockSize)
	}
	if opt.MaxMemoryBytes < 0 {
		return nil, fmt.Errorf("simmat: negative MaxMemoryBytes %d", opt.MaxMemoryBytes)
	}
	return &TileStore{
		blockSize: opt.BlockSize,
		budget:    opt.MaxMemoryBytes,
		spillDir:  opt.SpillDir,
		lru:       list.New(),
	}, nil
}

// Metrics returns a snapshot of the store's accounting counters.
func (s *TileStore) Metrics() TileMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.metrics
}

// Close releases every matrix of the store and removes all spill files (the
// whole directory when the store created it). The store is unusable
// afterwards.
func (s *TileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var firstErr error
	for _, t := range s.mats {
		s.releaseLocked(t, s.ownsDir)
	}
	s.mats = nil
	if s.dir != "" && s.ownsDir {
		if err := os.RemoveAll(s.dir); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// tileEntry is one canonical tile: its data when resident, its pin count,
// and whether a valid spill file exists on disk.
type tileEntry struct {
	owner      *Tiled
	bi, bj     int
	rows, cols int
	data       []float64 // nil when not resident
	pins       int
	dirty      bool // resident data newer than any spill file
	spilled    bool // a valid spill file exists
	elem       *list.Element
}

func (e *tileEntry) bytes() int64 { return int64(e.rows) * int64(e.cols) * 8 }

// Tiled is the tiled, symmetric score-matrix backend: the logical n x n
// matrix is a grid of BlockSize x BlockSize tiles of which only the upper
// triangle (bi <= bj) is stored; reads of (i, j) with i > j mirror the
// canonical cell (j, i). Tiles materialize lazily (an untouched tile reads
// as zeros) and are evicted/spilled by the owning TileStore under its
// memory budget.
//
// Concurrency: distinct goroutines may concurrently read any tiles and
// write disjoint logical rows (the engines' discipline); the store
// serializes residency changes internally.
type Tiled struct {
	store *TileStore
	id    int
	n     int
	b     int
	nb    int
	tiles []tileEntry // canonical entries, row-major over the upper grid
}

var _ Source = (*Tiled)(nil)

// NewTiled returns an all-zero n x n tiled matrix drawing from s.
func (s *TileStore) NewTiled(n int) (*Tiled, error) {
	if n < 0 {
		return nil, fmt.Errorf("simmat: negative dimension %d", n)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("simmat: tile store is closed")
	}
	b := s.blockSize
	nb := 0
	if n > 0 {
		nb = (n + b - 1) / b
	}
	t := &Tiled{store: s, id: len(s.mats), n: n, b: b, nb: nb,
		tiles: make([]tileEntry, nb*(nb+1)/2)}
	for bi := 0; bi < nb; bi++ {
		for bj := bi; bj < nb; bj++ {
			e := &t.tiles[t.tileIndex(bi, bj)]
			e.owner, e.bi, e.bj = t, bi, bj
			e.rows = t.blockLen(bi)
			e.cols = t.blockLen(bj)
		}
	}
	s.mats = append(s.mats, t)
	return t, nil
}

// NewIdentity returns the n x n tiled identity (the s_0 of every iterative
// model); only the diagonal tiles materialize.
func (s *TileStore) NewIdentity(n int) (*Tiled, error) {
	return s.NewDiagonal(n, 1)
}

// NewDiagonal returns the n x n tiled matrix v * I.
func (s *TileStore) NewDiagonal(n int, v float64) (*Tiled, error) {
	t, err := s.NewTiled(n)
	if err != nil {
		return nil, err
	}
	for bi := 0; bi < t.nb; bi++ {
		e := &t.tiles[t.tileIndex(bi, bi)]
		data, err := s.acquire(e, true)
		if err != nil {
			return nil, err
		}
		for r := 0; r < e.rows; r++ {
			data[r*e.cols+r] = v
		}
		s.unpin(e, true)
	}
	return t, nil
}

// N returns the dimension.
func (t *Tiled) N() int { return t.n }

// BlockSize returns the tile edge B.
func (t *Tiled) BlockSize() int { return t.b }

// Bytes reports the logical canonical storage: the upper triangle incl.
// diagonal tiles, whether resident, spilled, or still zero.
func (t *Tiled) Bytes() int64 {
	var b int64
	for i := range t.tiles {
		b += t.tiles[i].bytes()
	}
	return b
}

// blockLen returns the edge length of block bi (ragged at the border).
func (t *Tiled) blockLen(bi int) int {
	if hi := (bi + 1) * t.b; hi > t.n {
		return t.n - bi*t.b
	}
	return t.b
}

// tileIndex maps canonical block coordinates (bi <= bj) to the entry index.
func (t *Tiled) tileIndex(bi, bj int) int {
	return bi*t.nb - bi*(bi-1)/2 + (bj - bi)
}

// At returns the score at (i, j), mirroring the canonical upper cell for
// i > j. It panics if a spilled tile cannot be read back (possible only
// with spill enabled and a failing disk); error-aware callers should use
// RowInto.
func (t *Tiled) At(i, j int) float64 {
	if i > j {
		i, j = j, i
	}
	e := &t.tiles[t.tileIndex(i/t.b, j/t.b)]
	data, err := t.store.acquire(e, false)
	if err != nil {
		panic(fmt.Sprintf("simmat: reading tile (%d,%d): %v", e.bi, e.bj, err))
	}
	if data == nil {
		return 0
	}
	v := data[(i-e.bi*t.b)*e.cols+(j-e.bj*t.b)]
	t.store.unpin(e, false)
	return v
}

// RowInto assembles logical row i into dst (len >= n), mirroring lower-
// triangle cells from their canonical tiles.
func (t *Tiled) RowInto(i int, dst []float64) error {
	bi := i / t.b
	for bj := 0; bj < t.nb; bj++ {
		c0 := bj * t.b
		cl := t.blockLen(bj)
		var e *tileEntry
		if bj < bi {
			e = &t.tiles[t.tileIndex(bj, bi)]
		} else {
			e = &t.tiles[t.tileIndex(bi, bj)]
		}
		data, err := t.store.acquire(e, false)
		if err != nil {
			return fmt.Errorf("simmat: reading tile (%d,%d): %w", e.bi, e.bj, err)
		}
		if data == nil { // untouched tile: logical zeros
			for j := c0; j < c0+cl; j++ {
				dst[j] = 0
			}
			continue
		}
		switch {
		case bj < bi:
			// Canonical tile (bj, bi): logical (i, j) lives at (j, i).
			col := i - e.bj*t.b
			for r := 0; r < e.rows; r++ {
				dst[c0+r] = data[r*e.cols+col]
			}
		case bj == bi:
			// Diagonal tile: transposed below the in-block diagonal,
			// straight from it on.
			r0 := e.bi * t.b
			ri := i - r0
			for j := c0; j < i && j < c0+cl; j++ {
				dst[j] = data[(j-r0)*e.cols+ri]
			}
			if i < c0+cl {
				copy(dst[i:c0+cl], data[ri*e.cols+(i-r0):ri*e.cols+e.cols])
			}
		default:
			copy(dst[c0:c0+cl], data[(i-e.bi*t.b)*e.cols:(i-e.bi*t.b)*e.cols+e.cols])
		}
		t.store.unpin(e, false)
	}
	return nil
}

// SetRowUpper writes the canonical segment of logical row u — the cells
// (u, j) for j in [u, n) — from row (a full-length slice indexed by j).
// Cells left of the diagonal are owned by earlier rows and ignored.
// Concurrent callers must write distinct rows.
func (t *Tiled) SetRowUpper(u int, row []float64) error {
	bu := u / t.b
	r0 := bu * t.b
	for bj := bu; bj < t.nb; bj++ {
		e := &t.tiles[t.tileIndex(bu, bj)]
		data, err := t.store.acquire(e, true)
		if err != nil {
			return fmt.Errorf("simmat: writing tile (%d,%d): %w", e.bi, e.bj, err)
		}
		c0 := bj * t.b
		lo := c0
		if bj == bu {
			lo = u // diagonal tile: only the in-block upper part
		}
		copy(data[(u-r0)*e.cols+(lo-c0):(u-r0)*e.cols+e.cols], row[lo:c0+e.cols])
		t.store.unpin(e, true)
	}
	return nil
}

// Dense assembles the full logical matrix into a dense Matrix. Intended for
// tests and small results only — it allocates the n^2 storage the tiled
// backend exists to avoid.
func (t *Tiled) Dense() (*Matrix, error) {
	m := New(t.n)
	for i := 0; i < t.n; i++ {
		if err := t.RowInto(i, m.Row(i)); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Release frees this matrix: resident tiles are dropped and its spill files
// deleted. The store stays usable for its other matrices.
func (t *Tiled) Release() {
	t.store.mu.Lock()
	defer t.store.mu.Unlock()
	t.store.releaseLocked(t, false)
}

// Close closes the whole underlying store (see TileStore.Close). Call it on
// the final result matrix when done.
func (t *Tiled) Close() error { return t.store.Close() }

// Store returns the owning TileStore (for metrics).
func (t *Tiled) Store() *TileStore { return t.store }

// AddScaled adds coeff * src into t elementwise (t += coeff * src), the
// accumulation step of the differential engine. Both must share dimension
// and block size. Never-materialized src tiles contribute exact zeros and
// are skipped, leaving the corresponding t tiles untouched — bit-identical
// to the dense elementwise loop, since x + coeff*0 == x for the
// non-negative scores the engines hold. The work is split over workers
// whole tiles at a time; elementwise arithmetic makes any split
// bit-identical.
func (t *Tiled) AddScaled(src *Tiled, coeff float64, workers int) error {
	if t.n != src.n || t.b != src.b {
		return fmt.Errorf("simmat: tiled shape mismatch (n %d vs %d, B %d vs %d)", t.n, src.n, t.b, src.b)
	}
	workers = par.ResolveMax(workers, len(t.tiles))
	errs := make([]error, workers)
	par.Do(workers, func(w int) {
		// Stage the src tile through a scratch copy so only one tile is
		// pinned at a time, preserving the store's one-pin-per-worker
		// budget slack (a budget that sustains the sweep must sustain the
		// accumulation too).
		var scratch []float64
		lo, hi := par.Range(len(t.tiles), workers, w)
		for i := lo; i < hi; i++ {
			es := &src.tiles[i]
			sd, err := src.store.acquire(es, false)
			if err != nil {
				errs[w] = err
				return
			}
			if sd == nil {
				continue
			}
			if len(scratch) < len(sd) {
				scratch = make([]float64, len(sd))
			}
			copy(scratch[:len(sd)], sd)
			src.store.unpin(es, false)
			ed := &t.tiles[i]
			dd, err := t.store.acquire(ed, true)
			if err != nil {
				errs[w] = err
				return
			}
			for k := range dd {
				dd[k] += coeff * scratch[k]
			}
			t.store.unpin(ed, true)
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// MaxDiffTiled returns max |a - b| over the logical matrices. Both must
// share dimension and block size (the engines' ping-pong pairs do); max is
// order-independent, so the result equals the dense MaxDiff exactly.
func MaxDiffTiled(a, b *Tiled) (float64, error) {
	if a.n != b.n || a.b != b.b {
		return 0, fmt.Errorf("simmat: tiled shape mismatch (n %d vs %d, B %d vs %d)", a.n, b.n, a.b, b.b)
	}
	d := 0.0
	var scratch []float64 // stage a's tile so only one tile is pinned at a time
	for i := range a.tiles {
		ea, eb := &a.tiles[i], &b.tiles[i]
		da, err := a.store.acquire(ea, false)
		if err != nil {
			return 0, err
		}
		na := da != nil
		if na {
			if len(scratch) < len(da) {
				scratch = make([]float64, len(da))
			}
			copy(scratch[:len(da)], da)
			a.store.unpin(ea, false)
		}
		db, err := b.store.acquire(eb, false)
		if err != nil {
			return 0, err
		}
		switch {
		case !na && db == nil:
		case db == nil:
			for _, v := range scratch[:ea.rows*ea.cols] {
				if x := math.Abs(v); x > d {
					d = x
				}
			}
		case !na:
			for _, v := range db {
				if x := math.Abs(v); x > d {
					d = x
				}
			}
		default:
			for k := range db {
				if x := math.Abs(scratch[k] - db[k]); x > d {
					d = x
				}
			}
		}
		if db != nil {
			b.store.unpin(eb, false)
		}
	}
	return d, nil
}

// --- store internals -------------------------------------------------------

// acquire pins e's data into memory: loading it from its spill file, or —
// when materialize is set — allocating a zero tile if it never existed.
// Returns nil (and does not pin) for a never-materialized tile when
// materialize is false. The caller must unpin non-nil results.
func (s *TileStore) acquire(e *tileEntry, materialize bool) ([]float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("simmat: tile store is closed")
	}
	if e.data == nil {
		if !e.spilled && !materialize {
			return nil, nil
		}
		if err := s.ensureBudgetLocked(e.bytes()); err != nil {
			return nil, err
		}
		e.data = make([]float64, e.rows*e.cols)
		if e.spilled {
			if err := readTileFile(s.tilePath(e), e.rows, e.cols, e.data); err != nil {
				e.data = nil
				return nil, err
			}
			s.metrics.Loads++
		}
		s.metrics.ResidentBytes += e.bytes()
		if s.metrics.ResidentBytes > s.metrics.HighWaterBytes {
			s.metrics.HighWaterBytes = s.metrics.ResidentBytes
		}
		e.elem = s.lru.PushFront(e)
	} else if e.elem != nil {
		s.lru.MoveToFront(e.elem)
	}
	e.pins++
	return e.data, nil
}

// unpin releases a pinned tile, marking it dirty when the caller wrote it.
func (s *TileStore) unpin(e *tileEntry, dirty bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e.pins--
	if dirty {
		e.dirty = true
	}
}

// ensureBudgetLocked evicts LRU unpinned tiles until need more bytes fit
// under the budget. Called with s.mu held.
func (s *TileStore) ensureBudgetLocked(need int64) error {
	if s.budget <= 0 {
		return nil
	}
	for s.metrics.ResidentBytes+need > s.budget {
		victim := (*tileEntry)(nil)
		for el := s.lru.Back(); el != nil; el = el.Prev() {
			if e := el.Value.(*tileEntry); e.pins == 0 {
				victim = e
				break
			}
		}
		if victim == nil {
			return ErrMemoryBudget
		}
		if err := s.evictLocked(victim); err != nil {
			return err
		}
	}
	return nil
}

// evictLocked drops one resident tile, spilling it first when dirty.
func (s *TileStore) evictLocked(e *tileEntry) error {
	if e.dirty {
		if err := s.ensureDirLocked(); err != nil {
			return err
		}
		if err := writeTileFile(s.tilePath(e), e.rows, e.cols, e.data); err != nil {
			return err
		}
		e.spilled = true
		e.dirty = false
		s.metrics.Spills++
		s.metrics.SpilledBytes += e.bytes()
	}
	s.metrics.ResidentBytes -= e.bytes()
	s.lru.Remove(e.elem)
	e.elem = nil
	e.data = nil
	return nil
}

// ensureDirLocked creates the spill directory on first use.
func (s *TileStore) ensureDirLocked() error {
	if s.dir != "" {
		return nil
	}
	if s.spillDir != "" {
		if err := os.MkdirAll(s.spillDir, 0o755); err != nil {
			return fmt.Errorf("simmat: creating spill dir: %w", err)
		}
		s.dir = s.spillDir
		return nil
	}
	dir, err := os.MkdirTemp("", "simrank-tiles-")
	if err != nil {
		return fmt.Errorf("simmat: creating spill dir: %w", err)
	}
	s.dir = dir
	s.ownsDir = true
	return nil
}

func (s *TileStore) tilePath(e *tileEntry) string {
	return filepath.Join(s.dir, fmt.Sprintf("m%d_t%d_%d.tile", e.owner.id, e.bi, e.bj))
}

// releaseLocked frees every tile of t; spill files are deleted unless the
// whole directory is about to be removed anyway.
func (s *TileStore) releaseLocked(t *Tiled, dirDoomed bool) {
	for i := range t.tiles {
		e := &t.tiles[i]
		if e.data != nil {
			s.metrics.ResidentBytes -= e.bytes()
			s.lru.Remove(e.elem)
			e.elem = nil
			e.data = nil
		}
		if e.spilled {
			if !dirDoomed {
				os.Remove(s.tilePath(e))
			}
			e.spilled = false
		}
		e.dirty = false
	}
}
