package walkindex

import (
	"context"
	"fmt"
	"sort"

	"oipsr/graph"
	"oipsr/internal/par"
)

// Horizontal sharding of the walk index.
//
// A ShardIndex stores the walks of one contiguous vertex range [lo, hi) of
// a graph — exactly the rows a full Build would store for those start
// vertices, bit for bit. That is enough to answer any query restricted to
// the range, because the coupled walks are pure hash functions of (graph,
// Options): a shard holding the full graph (cheap CSR, tiny next to the
// n·R·K path store) can recompute ANY foreign vertex's walks on demand via
// walkFrom, identical to what the owning shard has stored. Per-target
// scores depend only on the source's walks and the target's stored row, so
// a row of partial scores over [lo, hi) is the exact sub-slice of the
// single-node answer, and a router concatenating per-shard rows reproduces
// SingleSource/MultiSource bitwise — no merge arithmetic, no rounding
// drift.
//
// The similarity join shards along the other axis (fingerprints, see
// shardjoin.go), and incremental updates reuse the repair machinery of
// update.go through the shared storeView.

// ShardIndex is the walk index of vertex range [lo, hi) of an n-vertex
// graph. Safe for concurrent queries; Update is the one mutating operation
// and must be serialized against queries, exactly as for Index.
type ShardIndex struct {
	n      int // vertices in the FULL graph
	lo, hi int // owned vertex range [lo, hi)
	k      int
	r      int
	c      float64
	seed   int64

	// store backs the owned walk blocks: Row(v-lo) holds vertex v's r*k
	// entries, same per-walk layout as Index (see store.go).
	store PathStore

	pow    []float64
	visits [][]visitPosting // lazily built, base lo (see update.go)
}

// BuildShard constructs the walk index of vertex range [lo, hi) of g. The
// stored rows are bit-identical to the corresponding rows of Build(g, opt):
// building n/S-vertex shards on S machines and a full index on one are the
// same computation, partitioned.
func BuildShard(g *graph.Graph, opt Options, lo, hi int) (*ShardIndex, error) {
	if err := opt.resolve(); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	if lo < 0 || hi < lo || hi > n {
		return nil, fmt.Errorf("walkindex: shard range [%d,%d) outside [0,%d)", lo, hi, n)
	}

	paths := make([]int32, (hi-lo)*opt.Walks*opt.K)
	sx := &ShardIndex{
		n:     n,
		lo:    lo,
		hi:    hi,
		k:     opt.K,
		r:     opt.Walks,
		c:     opt.C,
		seed:  opt.Seed,
		store: newDenseStore(paths, opt.Walks*opt.K),
	}
	sx.initPow()

	hseed := splitmix64(uint64(opt.Seed))
	width := hi - lo
	workers := par.ResolveMax(opt.Workers, width)
	par.Do(workers, func(w int) {
		wlo, whi := par.Range(width, workers, w)
		for v := wlo; v < whi; v++ {
			base := v * sx.r * sx.k
			for fp := 0; fp < sx.r; fp++ {
				walkFrom(g, hseed, fp, 0, lo+v, paths[base+fp*sx.k:base+(fp+1)*sx.k])
			}
		}
	})
	return sx, nil
}

func (sx *ShardIndex) initPow() {
	sx.pow = make([]float64, sx.k)
	w := 1.0
	for t := 0; t < sx.k; t++ {
		w *= sx.c
		sx.pow[t] = w
	}
}

// N returns the vertex count of the full graph the shard was built on.
func (sx *ShardIndex) N() int { return sx.n }

// Lo returns the first owned vertex.
func (sx *ShardIndex) Lo() int { return sx.lo }

// Hi returns one past the last owned vertex.
func (sx *ShardIndex) Hi() int { return sx.hi }

// Width returns the number of owned vertices, hi-lo.
func (sx *ShardIndex) Width() int { return sx.hi - sx.lo }

// Owns reports whether the shard stores v's walks.
func (sx *ShardIndex) Owns(v int) bool { return v >= sx.lo && v < sx.hi }

// Horizon returns the walk horizon K.
func (sx *ShardIndex) Horizon() int { return sx.k }

// Walks returns the number of fingerprints R.
func (sx *ShardIndex) Walks() int { return sx.r }

// C returns the damping factor.
func (sx *ShardIndex) C() float64 { return sx.c }

// Seed returns the seed the shard was built with.
func (sx *ShardIndex) Seed() int64 { return sx.seed }

// Bytes returns the resident in-memory size of the path storage.
func (sx *ShardIndex) Bytes() int64 { return sx.store.Bytes() }

// Backend names the storage backend ("dense" or "mapped").
func (sx *ShardIndex) Backend() string { return sx.store.Kind() }

// Close releases the storage backend (the file handle and mapping of a
// mapped shard). No-op for a dense shard.
func (sx *ShardIndex) Close() error { return sx.store.Close() }

// ownedRow returns the stored walk block of owned vertex v (all R walks,
// r*k entries).
func (sx *ShardIndex) ownedRow(v int) []int32 {
	return sx.store.Row(v - sx.lo)
}

// sourceRow returns the full walk block of any vertex q: the stored row
// when the shard owns q, otherwise a recomputation into buf (which must
// hold r*k entries). The recomputed block equals the owning shard's stored
// row bitwise — walkFrom is the code path Build stored it through.
func (sx *ShardIndex) sourceRow(g *graph.Graph, q int, buf []int32) []int32 {
	if sx.Owns(q) {
		return sx.ownedRow(q)
	}
	hseed := splitmix64(uint64(sx.seed))
	for fp := 0; fp < sx.r; fp++ {
		walkFrom(g, hseed, fp, 0, q, buf[fp*sx.k:(fp+1)*sx.k])
	}
	return buf
}

// PartialMultiSource estimates s(q, v) for every source q in sources and
// every OWNED target v in [lo, hi), returning one partial score row per
// source: out[i][v-lo] is s(sources[i], v). Each row is the exact
// [lo, hi) sub-slice of MultiSource's full row on an unsharded index —
// bit-identical, for every worker count — so concatenating the partial
// rows of a covering shard set reproduces the single-node answer without
// any merge arithmetic. Foreign sources (not owned by this shard) are
// recomputed on demand from g, which must be the graph the shard was built
// on (or repaired to via Update).
//
// Sources must be valid vertex ids of the full graph (the serving layer
// validates); duplicates produce identical rows. Cancelling ctx abandons
// the sweep and returns the context's error.
func (sx *ShardIndex) PartialMultiSource(ctx context.Context, g *graph.Graph, sources []int, workers int) ([][]float64, error) {
	width := sx.hi - sx.lo
	out := make([][]float64, len(sources))
	for i := range out {
		out[i] = make([]float64, width)
	}
	if len(sources) == 0 || width == 0 {
		return out, ctx.Err()
	}

	// Materialize every source's walk block once — owned blocks are the
	// stored rows, foreign blocks are recomputed — then build the same
	// sorted slot tables MultiSource builds, from the same positions.
	srcRows := make([][]int32, len(sources))
	tableCheck := par.NewCancelChecker(ctx, 4) // each source is O(R·K) work
	for si, q := range sources {
		if err := tableCheck.Stop(); err != nil {
			return nil, err
		}
		if sx.Owns(q) {
			srcRows[si] = sx.ownedRow(q)
		} else {
			srcRows[si] = sx.sourceRow(g, q, make([]int32, sx.r*sx.k))
		}
	}

	nslots := sx.r * sx.k
	off := make([]int, nslots+1)
	for _, row := range srcRows {
		for fp := 0; fp < sx.r; fp++ {
			for t, p := range row[fp*sx.k : (fp+1)*sx.k] {
				if p < 0 {
					break
				}
				off[fp*sx.k+t+1]++
			}
		}
	}
	for i := 1; i <= nslots; i++ {
		off[i] += off[i-1]
	}
	entries := make([]srcEntry, off[nslots])
	cur := make([]int, nslots)
	copy(cur, off[:nslots])
	for si, row := range srcRows {
		for fp := 0; fp < sx.r; fp++ {
			for t, p := range row[fp*sx.k : (fp+1)*sx.k] {
				if p < 0 {
					break
				}
				slot := fp*sx.k + t
				entries[cur[slot]] = srcEntry{pos: p, si: int32(si)}
				cur[slot]++
			}
		}
	}
	for s := 0; s < nslots; s++ {
		seg := entries[off[s]:off[s+1]]
		sort.Slice(seg, func(i, j int) bool {
			if seg[i].pos != seg[j].pos {
				return seg[i].pos < seg[j].pos
			}
			return seg[i].si < seg[j].si
		})
	}

	// The sweep is MultiSource's, restricted to the owned target range: per
	// (source, target) pair the same first-meeting weights accumulate in
	// the same fingerprint order and scale by the same 1/R, so each cell
	// matches the full sweep's cell bitwise.
	inv := 1 / float64(sx.r)
	parts := par.ResolveMax(workers, width)
	par.Do(parts, func(w int) {
		wlo, whi := par.Range(width, parts, w)
		sx.store.Prefetch(wlo, whi) // each worker sweeps its target range in order
		check := par.NewCancelChecker(ctx, cancelCheckTargets)
		acc := make([]float64, len(sources))
		met := make([]int, len(sources))
		epoch := 0
		for v := wlo; v < whi; v++ {
			if check.Stop() != nil {
				return // partial rows are discarded below
			}
			for i := range acc {
				acc[i] = 0
			}
			blk := sx.store.Row(v)
			for fp := 0; fp < sx.r; fp++ {
				epoch++
				row := blk[fp*sx.k : (fp+1)*sx.k]
				for t, pv := range row {
					if pv < 0 {
						break
					}
					seg := entries[off[fp*sx.k+t]:off[fp*sx.k+t+1]]
					if len(seg) == 0 {
						break
					}
					i := sort.Search(len(seg), func(i int) bool { return seg[i].pos >= pv })
					for ; i < len(seg) && seg[i].pos == pv; i++ {
						si := seg[i].si
						if met[si] == epoch {
							continue
						}
						met[si] = epoch
						acc[si] += sx.pow[t]
					}
				}
			}
			for si := range acc {
				out[si][v] = acc[si] * inv
			}
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// A source's own entry is exactly 1, as SingleSource promises — but only
	// the owning shard holds that cell.
	for si, q := range sources {
		if sx.Owns(q) {
			out[si][q-sx.lo] = 1
		}
	}
	return out, nil
}

// Pair estimates the single score s(a, b) with a and b resolved through
// sourceRow, so neither vertex needs to be owned. Bit-identical to
// Index.Pair on an unsharded index.
func (sx *ShardIndex) Pair(g *graph.Graph, a, b int) float64 {
	if a == b {
		return 1
	}
	var abuf, bbuf []int32
	if !sx.Owns(a) {
		abuf = make([]int32, sx.r*sx.k)
	}
	if !sx.Owns(b) {
		bbuf = make([]int32, sx.r*sx.k)
	}
	return pairFromRows(sx.sourceRow(g, a, abuf), sx.sourceRow(g, b, bbuf), sx.pow, sx.k, sx.r)
}

// PrepareUpdate builds the shard's inverted visit index eagerly; see
// Index.PrepareUpdate.
func (sx *ShardIndex) PrepareUpdate(workers int) error {
	if sx.visits != nil {
		return nil
	}
	if int64(sx.hi-sx.lo)*int64(sx.r) > maxWalks {
		return fmt.Errorf("%w: width*R = %d*%d exceeds %d walks", ErrTooLarge, sx.hi-sx.lo, sx.r, maxWalks)
	}
	sx.visits = buildVisits(sx.repairView(), workers)
	return nil
}

func (sx *ShardIndex) repairView() storeView {
	return storeView{
		store: sx.store, visits: sx.visits,
		k: sx.k, r: sx.r, base: sx.lo, width: sx.hi - sx.lo, nGlobal: sx.n, seed: sx.seed,
	}
}

// Update repairs the shard in place after the graph changed into g; dirty
// lists every vertex of the FULL graph whose in-neighbor list changed
// (dirty vertices outside [lo, hi) still matter — an owned walk can occupy
// them). The repaired shard is bit-identical to BuildShard on the edited
// graph, so every shard of a fleet applying the same edits stays a
// consistent partition of the single-node index. Returns the number of
// walks repaired. See Index.Update for the contract details.
func (sx *ShardIndex) Update(g *graph.Graph, dirty []int, workers int) (int, error) {
	if g.NumVertices() != sx.n {
		return 0, fmt.Errorf("walkindex: updated graph has %d vertices, shard was built on %d", g.NumVertices(), sx.n)
	}
	for _, d := range dirty {
		if d < 0 || d >= sx.n {
			return 0, fmt.Errorf("walkindex: dirty vertex %d out of range [0,%d)", d, sx.n)
		}
	}
	if err := sx.PrepareUpdate(workers); err != nil {
		return 0, err
	}
	repaired := repairStore(g, sx.repairView(), dirty, workers)
	if err := flushStore(sx.store); err != nil {
		return repaired, err
	}
	return repaired, nil
}

// Equal reports whether two shards hold identical parameters, ranges, and
// paths.
func (sx *ShardIndex) Equal(other *ShardIndex) bool {
	if sx.n != other.n || sx.lo != other.lo || sx.hi != other.hi ||
		sx.k != other.k || sx.r != other.r || sx.c != other.c ||
		sx.seed != other.seed {
		return false
	}
	for v := 0; v < sx.hi-sx.lo; v++ {
		a, b := sx.store.Row(v), other.store.Row(v)
		for i, p := range a {
			if b[i] != p {
				return false
			}
		}
	}
	return true
}

// EqualSlice reports whether the shard's stored rows equal the [lo, hi)
// rows of a full index built with the same options — the partition
// invariant the shard tests and conformance checks assert.
func (sx *ShardIndex) EqualSlice(ix *Index) bool {
	if sx.n != ix.n || sx.k != ix.k || sx.r != ix.r || sx.c != ix.c || sx.seed != ix.seed {
		return false
	}
	for v := sx.lo; v < sx.hi; v++ {
		a, b := sx.store.Row(v-sx.lo), ix.store.Row(v)
		for i, p := range a {
			if b[i] != p {
				return false
			}
		}
	}
	return true
}
