// Top-k serving: answer similarity queries from a walk index instead of
// an all-pairs matrix.
//
// Builds a DBLP-like co-authorship graph, precomputes the walk index of
// simrank/query (the structure cmd/simrankd serves from), and answers a
// few top-k queries three ways: raw index estimates, exact-reranked
// estimates, and — since the graph is small enough — the batch OIP-SR
// engine as ground truth. Also demonstrates the Save/Load round trip the
// daemon uses to skip rebuilds at startup.
//
//	go run ./examples/topk
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"oipsr/graph/gen"
	"oipsr/simrank"
	"oipsr/simrank/query"
)

func main() {
	// A small co-authorship network: communities give vertices genuinely
	// similar neighbors, so top-k answers are non-trivial.
	g := gen.CoauthorGraph(400, 4, 42)
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// Build the index: R coupled reverse walks per vertex, deterministic
	// for a fixed seed. 4*n*R*K bytes, no n^2 state anywhere.
	idx, err := query.BuildIndex(g, query.Options{Walks: 400, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: R=%d walks of horizon K=%d per vertex (%d KiB)\n\n",
		idx.Walks(), idx.Horizon(), idx.Bytes()/1024)

	// Ground truth for comparison: the batch engine with the same C and
	// truncation. This is the Theta(n^2) computation the index avoids.
	exact, _, err := simrank.Compute(g, simrank.Options{
		Algorithm: simrank.OIPSR, C: idx.C(), K: idx.Horizon(),
	})
	if err != nil {
		log.Fatal(err)
	}

	const k = 5
	for _, q := range []int{10, 123, 307} {
		estimated, err := idx.TopK(context.Background(), q, k, nil)
		if err != nil {
			log.Fatal(err)
		}
		reranked, err := idx.TopK(context.Background(), q, k, &query.TopKOptions{Rerank: true})
		if err != nil {
			log.Fatal(err)
		}
		batch := exact.TopK(q, k)

		fmt.Printf("top-%d most similar to vertex %d:\n", k, q)
		fmt.Printf("     %-22s %-22s %s\n", "index estimate", "index + rerank", "batch OIP-SR (exact)")
		for i := 0; i < k; i++ {
			fmt.Printf("%3d. v%-5d s=%.4f       v%-5d s=%.4f       v%-5d s=%.4f\n", i+1,
				estimated[i].Vertex, estimated[i].Score,
				reranked[i].Vertex, reranked[i].Score,
				batch[i].Vertex, batch[i].Score)
		}
		fmt.Println()
	}

	// The daemon's startup path: persist the index, reload it, re-attach
	// the graph for reranking. Loaded indexes answer bit-identically.
	path := filepath.Join(os.TempDir(), "topk-example.idx")
	if err := idx.SaveFile(path); err != nil {
		log.Fatal(err)
	}
	defer os.Remove(path)
	loaded, err := query.LoadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := loaded.AttachGraph(g); err != nil {
		log.Fatal(err)
	}
	a, _ := idx.TopK(context.Background(), 10, k, nil)
	b, _ := loaded.TopK(context.Background(), 10, k, nil)
	same := len(a) == len(b)
	for i := range a {
		same = same && a[i] == b[i]
	}
	fmt.Printf("save/load round trip (%d KiB on disk): identical top-k = %v\n",
		sizeKiB(path), same)
}

func sizeKiB(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return fi.Size() / 1024
}
