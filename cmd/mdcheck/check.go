package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline markdown links [text](target) — including images —
// without crossing line boundaries. Reference-style definitions
// ("[label]: target") are matched by refRE. Neither regex tries to be a
// full CommonMark parser; they cover the constructs this repository's
// documentation uses, and CheckFile errs on the side of skipping what it
// cannot classify rather than failing the build on a false positive.
var (
	linkRE = regexp.MustCompile(`!?\[[^\]\n]*\]\(([^)\n]+)\)`)
	refRE  = regexp.MustCompile(`(?m)^\[[^\]\n]+\]:\s+(\S+)`)
)

// Problem describes one broken link.
type Problem struct {
	File   string
	Line   int
	Target string
}

func (p Problem) String() string {
	return fmt.Sprintf("%s:%d: broken link %q", p.File, p.Line, p.Target)
}

// CheckFile parses path as markdown and returns one Problem per relative
// link whose target does not exist on disk. Targets are resolved against
// the file's directory; fragments are stripped; external schemes and pure
// anchors are skipped. Links inside fenced code blocks are ignored.
func CheckFile(path string) ([]Problem, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(path)
	var problems []Problem
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		targets := []string{}
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			targets = append(targets, m[1])
		}
		for _, m := range refRE.FindAllStringSubmatch(line, -1) {
			targets = append(targets, m[1])
		}
		for _, target := range targets {
			if t := relTarget(target); t != "" {
				if _, err := os.Stat(filepath.Join(dir, t)); err != nil {
					problems = append(problems, Problem{File: path, Line: i + 1, Target: target})
				}
			}
		}
	}
	return problems, nil
}

// relTarget reduces a raw link target to the relative path to stat, or ""
// when the link is not checkable on disk (external scheme, pure anchor,
// absolute path, empty).
func relTarget(raw string) string {
	target := strings.TrimSpace(raw)
	// "[text](target "title")" — drop the optional title.
	if i := strings.IndexAny(target, " \t"); i >= 0 {
		target = target[:i]
	}
	target = strings.Trim(target, "<>")
	if target == "" || strings.HasPrefix(target, "#") || strings.HasPrefix(target, "/") {
		return ""
	}
	if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
		return ""
	}
	if i := strings.IndexByte(target, '#'); i >= 0 {
		target = target[:i]
	}
	return target
}
