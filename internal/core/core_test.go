package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"oipsr/graph"
	"oipsr/graph/gen"
	"oipsr/internal/naive"
	"oipsr/internal/partition"
	"oipsr/internal/psum"
	"oipsr/internal/simmat"
)

// paperGraph is the Fig. 1a network; ids a=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7 i=8.
func paperGraph(t testing.TB) *graph.Graph {
	t.Helper()
	const (
		a, b, c, d, e, f, gg, h, i = 0, 1, 2, 3, 4, 5, 6, 7, 8
	)
	return graph.MustFromEdges(9, [][2]int{
		{b, a}, {gg, a},
		{e, b}, {f, b}, {gg, b}, {i, b},
		{b, c}, {d, c}, {gg, c},
		{a, d}, {e, d}, {f, d}, {i, d},
		{f, e}, {gg, e},
		{b, h}, {d, h},
	})
}

func randomGraph(rng *rand.Rand, n, maxM int) *graph.Graph {
	b := graph.NewBuilder(n, 0)
	b.EnsureVertices(n)
	for i := 0; i < rng.Intn(maxM+1); i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return b.MustBuild()
}

// TestMatchesNaiveOracle is the central correctness property: OIP-SR is a
// computational reorganization of Eq. 2 and must reproduce the naive
// iteration bit-for-bit up to floating-point reassociation.
func TestMatchesNaiveOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(18)
		g := randomGraph(rng, n, 5*n)
		c := 0.3 + 0.6*rng.Float64()
		k := 1 + rng.Intn(5)

		want, err := naive.Compute(g, c, k)
		if err != nil {
			return false
		}
		got, _, err := Compute(g, Options{C: c, K: k})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if d := simmat.MaxDiff(got, want); d > 1e-9 {
			t.Logf("seed %d: max diff vs naive %g", seed, d)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestMatchesPsum: psum-SR computes the same iteration, so all three
// engines agree.
func TestMatchesPsum(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := gen.WebGraph(200, 8, 3)
	_ = rng
	c, k := 0.6, 5
	ps, _, err := psum.Compute(g, psum.Options{C: c, K: k})
	if err != nil {
		t.Fatal(err)
	}
	oip, _, err := Compute(g, Options{C: c, K: k})
	if err != nil {
		t.Fatal(err)
	}
	if d := simmat.MaxDiff(ps, oip); d > 1e-9 {
		t.Errorf("max diff vs psum = %g", d)
	}
}

// TestFig4ThroughOIP recomputes the Fig. 4 table through the full OIP path
// (MST plan, inner and outer sharing).
func TestFig4ThroughOIP(t *testing.T) {
	g := paperGraph(t)
	s, _, err := Compute(g, Options{C: 0.6, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	const (
		a, b, c, d, e, h = 0, 1, 2, 3, 4, 7
	)
	want := []struct {
		x      int
		sa, sc float64
	}{
		{a, 1, 0.21}, {e, 0.15, 0.1}, {h, 0.17, 0.22},
		{c, 0.21, 1}, {b, 0.09, 0.06}, {d, 0.02, 0.02},
	}
	for _, w := range want {
		if got := s.At(w.x, a); math.Abs(got-w.sa) > 0.006 {
			t.Errorf("s_2(%d, a) = %.4f, want %.2f", w.x, got, w.sa)
		}
		if got := s.At(w.x, c); math.Abs(got-w.sc) > 0.006 {
			t.Errorf("s_2(%d, c) = %.4f, want %.2f", w.x, got, w.sc)
		}
	}
}

// TestAblationsProduceSameScores: disabling outer sharing, using the dense
// candidate table, or the Edmonds backend must never change the result,
// only the cost.
func TestAblationsProduceSameScores(t *testing.T) {
	g := gen.WebGraph(150, 9, 7)
	base, _, err := Compute(g, Options{C: 0.6, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string]Options{
		"no-outer": {C: 0.6, K: 4, DisableOuter: true},
		"dense":    {C: 0.6, K: 4, Partition: partition.Options{Dense: true}},
		"edmonds":  {C: 0.6, K: 4, Partition: partition.Options{UseEdmonds: true}},
		"paircap":  {C: 0.6, K: 4, Partition: partition.Options{PairCap: 4}},
	}
	for name, opt := range variants {
		got, _, err := Compute(g, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d := simmat.MaxDiff(base, got); d > 1e-9 {
			t.Errorf("%s: max diff %g from baseline", name, d)
		}
	}
}

// TestSharingBeatsScratchOps verifies the operation-count claim behind
// Proposition 5 on an overlap-heavy graph: OIP-SR spends strictly fewer
// inner additions than psum-SR, and outer sharing strictly fewer outer
// additions than the one-by-one fashion.
func TestSharingBeatsScratchOps(t *testing.T) {
	g := gen.WebGraph(300, 10, 1)
	k := 3
	_, stOIP, err := Compute(g, Options{C: 0.6, K: k})
	if err != nil {
		t.Fatal(err)
	}
	_, stPsum, err := psum.Compute(g, psum.Options{C: 0.6, K: k})
	if err != nil {
		t.Fatal(err)
	}
	if stOIP.InnerAdds >= stPsum.InnerAdds {
		t.Errorf("inner adds: OIP %d >= psum %d; sharing bought nothing", stOIP.InnerAdds, stPsum.InnerAdds)
	}
	if stOIP.OuterAdds >= stPsum.OuterAdds {
		t.Errorf("outer adds: OIP %d >= psum %d", stOIP.OuterAdds, stPsum.OuterAdds)
	}
	if stOIP.ShareRatio <= 0.3 {
		t.Errorf("share ratio = %g, want > 0.3 on a boilerplate web graph", stOIP.ShareRatio)
	}
	// Every shared edge must beat recomputing its set from scratch, so the
	// plan is strictly cheaper than psum-SR's per-sweep additions.
	if stOIP.PlanAdditions >= stOIP.ScratchAdditions {
		t.Errorf("plan additions %d >= scratch %d", stOIP.PlanAdditions, stOIP.ScratchAdditions)
	}
}

// TestWorstCaseDisjointSetsDegradesToPsum: with pairwise-disjoint in-sets
// the plan has no sharing and OIP-SR performs exactly psum-SR's additions
// (the worst-case bound of Proposition 5).
func TestWorstCaseDisjointSetsDegradesToPsum(t *testing.T) {
	// 0->4, 1->4 ; 2->5, 3->5 : I(4), I(5) disjoint.
	g := graph.MustFromEdges(6, [][2]int{{0, 4}, {1, 4}, {2, 5}, {3, 5}})
	k := 3
	s, stOIP, err := Compute(g, Options{C: 0.6, K: k})
	if err != nil {
		t.Fatal(err)
	}
	want, stPsum, err := psum.Compute(g, psum.Options{C: 0.6, K: k})
	if err != nil {
		t.Fatal(err)
	}
	if d := simmat.MaxDiff(s, want); d > 1e-12 {
		t.Errorf("scores differ by %g", d)
	}
	if stOIP.InnerAdds != stPsum.InnerAdds {
		t.Errorf("inner adds OIP %d != psum %d on disjoint sets", stOIP.InnerAdds, stPsum.InnerAdds)
	}
	if stOIP.ShareRatio != 0 {
		t.Errorf("share ratio = %g, want 0", stOIP.ShareRatio)
	}
}

// TestEpsDerivesIterations: with K unset the engine must run the Lizorkin
// iteration count for the requested accuracy.
func TestEpsDerivesIterations(t *testing.T) {
	g := paperGraph(t)
	_, st, err := Compute(g, Options{C: 0.8, Eps: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations != 41 { // the Section IV worked example
		t.Errorf("iterations = %d, want 41", st.Iterations)
	}
}

// TestStopDiffConvergence: the early-stop rule halts once successive
// iterates agree to within the threshold, and the reported diff honors it.
func TestStopDiffConvergence(t *testing.T) {
	g := gen.CoauthorGraph(200, 3, 5)
	_, st, err := Compute(g, Options{C: 0.8, K: 100, StopDiff: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations >= 100 {
		t.Errorf("early stop never fired (ran %d iterations)", st.Iterations)
	}
	if st.FinalDiff > 1e-4 {
		t.Errorf("final diff %g above threshold", st.FinalDiff)
	}
}

// TestInvariants: symmetry, range, pinned diagonal, zero rows for empty
// in-sets — on random graphs through the full OIP path.
func TestInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		g := randomGraph(rng, n, 4*n)
		s, _, err := Compute(g, Options{C: 0.7, K: 4})
		if err != nil {
			return false
		}
		if s.CheckSymmetric(1e-10) != nil || s.CheckRange(0, 1, 1e-10) != nil {
			return false
		}
		for v := 0; v < n; v++ {
			if s.At(v, v) != 1 {
				return false
			}
			if g.InDegree(v) == 0 {
				for u := 0; u < n; u++ {
					if u != v && s.At(u, v) != 0 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestStatsPhases(t *testing.T) {
	g := gen.WebGraph(200, 8, 2)
	_, st, err := Compute(g, Options{C: 0.6, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.PlanTime <= 0 || st.SweepTime <= 0 {
		t.Errorf("phase times not recorded: plan=%v sweep=%v", st.PlanTime, st.SweepTime)
	}
	if st.AuxBytes <= 0 {
		t.Error("aux bytes not accounted")
	}
	if st.NumSets == 0 || st.PlanAdditions == 0 {
		t.Error("plan metrics not propagated")
	}
}

func TestBadOptions(t *testing.T) {
	g := paperGraph(t)
	if _, _, err := Compute(g, Options{C: 1.5, K: 1}); err == nil {
		t.Error("want error for C out of range")
	}
	if _, _, err := Compute(g, Options{C: 0.6, K: -1}); err == nil {
		t.Error("want error for negative K")
	}
	if _, _, err := Compute(g, Options{C: 0.6, Eps: 7}); err == nil {
		t.Error("want error for eps out of range")
	}
}

func TestDefaultsApplied(t *testing.T) {
	g := paperGraph(t)
	_, st, err := Compute(g, Options{}) // C=0.6, eps=1e-3
	if err != nil {
		t.Fatal(err)
	}
	// ceil(log_0.6(1e-3)) - 1 = ceil(13.52 - 1) = 13.
	if st.Iterations != 13 {
		t.Errorf("default iterations = %d, want 13 (C=0.6, eps=1e-3)", st.Iterations)
	}
}
