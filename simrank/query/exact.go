package query

import (
	"oipsr/graph"
)

// exactScorer computes exact truncated SimRank scores for individual pairs
// by the memoized recursion
//
//	s_0(a,b) = [a == b]
//	s_d(a,b) = C/(|I(a)||I(b)|) * sum_{x in I(a), y in I(b)} s_{d-1}(x,y)
//
// — the per-pair form of the partial-sums iteration, pruned by branch
// contribution: a subtree entered with accumulated weight w (the product
// of C/(|I||I|) factors along the path from the root pair) can change the
// root score by at most w, so descent stops once w < pruneEps. The weight
// collapses quickly through high-degree vertices — exactly where naive
// expansion explodes — so reranking stays fast even on hub-heavy graphs.
//
// The memo is keyed on (pair, remaining depth) and shared across all
// candidates of one rerank call. Each entry records the weight it was
// computed at; a lookup reuses it only for weights <= that (pruned
// branches lost at most pruneEps of root contribution when stored, and
// rescaling by a smaller weight only shrinks that loss), so reuse never
// degrades accuracy. Cost depends on in-degrees and C, not on n, which is
// the point: reranking a candidate pool touches only the reverse
// neighborhood of the query.
type exactScorer struct {
	g        *graph.Graph
	c        float64
	k        int // truncation depth (matches the index horizon)
	pruneEps float64
	memo     map[memoKey]memoVal
}

type memoKey struct {
	a, b int // canonical a <= b (SimRank is symmetric)
	rem  int // remaining iterations
}

type memoVal struct {
	score  float64
	weight float64 // branch weight the entry was computed at
}

func newExactScorer(g *graph.Graph, c float64, k int, pruneEps float64) *exactScorer {
	return &exactScorer{
		g:        g,
		c:        c,
		k:        k,
		pruneEps: pruneEps,
		memo:     make(map[memoKey]memoVal),
	}
}

// pair returns s_k(a, b), the value iteration k of the batch engines
// assigns, up to the pruning threshold.
func (e *exactScorer) pair(a, b int) float64 {
	return e.score(a, b, e.k, 1)
}

func (e *exactScorer) score(a, b, rem int, w float64) float64 {
	if a == b {
		return 1
	}
	if rem == 0 || w < e.pruneEps {
		return 0
	}
	if a > b {
		a, b = b, a
	}
	key := memoKey{a: a, b: b, rem: rem}
	if ent, ok := e.memo[key]; ok && w <= ent.weight {
		return ent.score
	}
	ia, ib := e.g.In(a), e.g.In(b)
	var s float64
	if len(ia) > 0 && len(ib) > 0 {
		scale := e.c / float64(len(ia)*len(ib))
		cw := w * scale
		var sum float64
		for _, x := range ia {
			for _, y := range ib {
				sum += e.score(x, y, rem-1, cw)
			}
		}
		s = scale * sum
	}
	e.memo[key] = memoVal{score: s, weight: w}
	return s
}
