package simrankd

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"oipsr/graph/gen"
	"oipsr/simrank/query"
)

// smallIndex is a cheaper index than testIndex for tests that exercise
// the serving machinery rather than accuracy.
func smallIndex(t *testing.T) *query.Index {
	t.Helper()
	g := gen.WebGraph(120, 6, 55)
	idx, err := query.BuildIndex(g, query.Options{Walks: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// waitFor polls cond every millisecond until it holds or the deadline
// passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestSheddingUnderSaturation: with every execution slot held and the
// wait queue full, the next request is shed immediately with 429 and a
// Retry-After header — it must not queue unboundedly or hang. Queued
// requests complete normally once slots free up.
func TestSheddingUnderSaturation(t *testing.T) {
	idx := smallIndex(t)
	srv := NewServer(idx, Config{CacheSize: -1, Workers: 1, MaxInflight: 1, QueueDepth: 1})
	entered := make(chan struct{}, 8)
	gate := make(chan struct{})
	srv.testHookInflight = func(*http.Request) {
		entered <- struct{}{}
		<-gate
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	type result struct {
		code int
		err  error
	}
	results := make(chan result, 2)
	do := func() {
		resp, err := http.Get(ts.URL + "/v1/topk?q=1&k=5")
		if err != nil {
			results <- result{0, err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		results <- result{resp.StatusCode, nil}
	}

	go do() // A: takes the only slot, blocks in the hook
	<-entered
	go do() // B: queues
	waitFor(t, "request B to queue", func() bool { return srv.queued.Load() == 1 })

	// C: slot busy, queue full -> shed now.
	resp, err := http.Get(ts.URL + "/v1/topk?q=2&k=5")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request: status %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After header")
	}
	if !strings.Contains(string(body), "saturated") {
		t.Errorf("429 body = %s, want a saturation explanation", body)
	}
	if got := srv.shedTotal.Load(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}

	close(gate) // A finishes; B gets the slot and sails through the open gate
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil || r.code != http.StatusOK {
			t.Fatalf("held/queued request: code %d err %v, want 200", r.code, r.err)
		}
	}

	// The counters surface on /metrics in the Prometheus text format.
	code, metrics := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	for _, want := range []string{
		"simrankd_requests_shed_total 1",
		"simrankd_inflight_requests 0",
		"simrankd_requests_degraded_total 0",
		`simrankd_request_latency_seconds_bucket{le="+Inf"} 3`,
		"simrankd_request_latency_seconds_count 3",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestQueuedRequestDeadline: a request whose deadline expires while still
// waiting for an execution slot gets a 503, not an eternity in the queue.
func TestQueuedRequestDeadline(t *testing.T) {
	idx := smallIndex(t)
	srv := NewServer(idx, Config{CacheSize: -1, Workers: 1, MaxInflight: 1, QueueDepth: 4})
	entered := make(chan struct{}, 1)
	gate := make(chan struct{})
	srv.testHookInflight = func(*http.Request) {
		select {
		case entered <- struct{}{}:
			<-gate
		default: // later requests pass through
		}
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	// Registered after ts.Close so it runs first: Close waits for the
	// gated request, which only finishes once the gate opens.
	defer close(gate)

	go http.Get(ts.URL + "/v1/topk?q=1&k=5") // holds the slot
	<-entered

	resp, err := http.Get(ts.URL + "/v1/topk?q=2&k=5&timeout_ms=50")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queued past deadline: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 response missing Retry-After header")
	}
}

// TestTimeoutParamValidation: a malformed or non-positive timeout_ms is a
// 400, and it may only shorten the server's timeout, never extend it.
func TestTimeoutParamValidation(t *testing.T) {
	idx := smallIndex(t)
	srv := NewServer(idx, Config{CacheSize: -1, Workers: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, bad := range []string{"abc", "0", "-5", "1.5"} {
		code, _ := get(t, ts.URL+"/v1/topk?q=1&k=5&timeout_ms="+bad)
		if code != http.StatusBadRequest {
			t.Errorf("timeout_ms=%s: status %d, want 400", bad, code)
		}
	}
}

// TestDegradedTopK: when the remaining deadline cannot afford the exact
// rerank, /v1/topk serves the raw walk estimates — bit-identical to the
// rerank=0 response — marked by the degraded field and X-Simrank-Degraded
// header, and never cached.
func TestDegradedTopK(t *testing.T) {
	idx := smallIndex(t)
	srv := NewServer(idx, Config{Workers: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// The estimate-only baseline the degraded response must match.
	var raw topKResponse
	code, body := get(t, ts.URL+"/v1/topk?q=3&k=8")
	if code != http.StatusOK {
		t.Fatalf("baseline: status %d", code)
	}
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}

	// Seed the cost model with an absurd per-candidate cost so any
	// deadline triggers degradation deterministically.
	srv.rerankNanosPerCand.Store(uint64(time.Second))

	resp, err := http.Get(ts.URL + "/v1/topk?q=3&k=8&rerank=1&timeout_ms=1000")
	if err != nil {
		t.Fatal(err)
	}
	dbody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded request: status %d (body %s)", resp.StatusCode, dbody)
	}
	if got := resp.Header.Get("X-Simrank-Degraded"); got != "true" {
		t.Errorf("X-Simrank-Degraded = %q, want \"true\"", got)
	}
	var deg topKResponse
	if err := json.Unmarshal(dbody, &deg); err != nil {
		t.Fatal(err)
	}
	if !deg.Degraded || deg.Reranked {
		t.Errorf("degraded response flags: degraded=%t reranked=%t, want true/false", deg.Degraded, deg.Reranked)
	}
	if len(deg.Results) != len(raw.Results) {
		t.Fatalf("degraded results: %d entries, raw %d", len(deg.Results), len(raw.Results))
	}
	for i := range raw.Results {
		if deg.Results[i] != raw.Results[i] {
			t.Fatalf("degraded result %d = %+v, raw estimate %+v — degraded responses must be bit-identical to rerank=0", i, deg.Results[i], raw.Results[i])
		}
	}
	if got := srv.degradedTotal.Load(); got != 1 {
		t.Errorf("degraded counter = %d, want 1", got)
	}

	// Degraded bodies must not be cached: the same rerank=1 request with
	// a comfortable budget (no deadline) gets the exact answer.
	srv.rerankNanosPerCand.Store(0)
	code, body = get(t, ts.URL+"/v1/topk?q=3&k=8&rerank=1")
	if code != http.StatusOK {
		t.Fatalf("exact follow-up: status %d", code)
	}
	var exact topKResponse
	if err := json.Unmarshal(body, &exact); err != nil {
		t.Fatal(err)
	}
	if !exact.Reranked || exact.Degraded {
		t.Fatalf("follow-up served flags reranked=%t degraded=%t — a degraded body leaked into the cache", exact.Reranked, exact.Degraded)
	}
}

// TestDegradedBatch: a topk batch under a starved deadline degrades
// per-chunk, marks the response, and keeps the degraded lines out of the
// cache shared with /v1/topk.
func TestDegradedBatch(t *testing.T) {
	idx := smallIndex(t)
	srv := NewServer(idx, Config{Workers: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	srv.rerankNanosPerCand.Store(uint64(time.Second))
	resp, err := http.Post(ts.URL+"/v1/batch?timeout_ms=1000", "application/json",
		strings.NewReader(`{"mode":"topk","sources":[1,2,3],"k":5,"rerank":true}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d (body %s)", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Simrank-Degraded"); got != "true" {
		t.Errorf("X-Simrank-Degraded = %q, want \"true\"", got)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 3 {
		t.Fatalf("batch returned %d lines, want 3", len(lines))
	}
	for _, line := range lines {
		var item topKResponse
		if err := json.Unmarshal([]byte(line), &item); err != nil {
			t.Fatal(err)
		}
		if !item.Degraded || item.Reranked {
			t.Fatalf("batch line %s: want degraded estimates", line)
		}
	}

	// The rerank=1 cache keys must not have been filled with degraded
	// bodies: an exact single query afterwards reranks for real.
	srv.rerankNanosPerCand.Store(0)
	code, sbody := get(t, ts.URL+"/v1/topk?q=1&k=5&rerank=1")
	if code != http.StatusOK {
		t.Fatalf("follow-up: status %d", code)
	}
	var exact topKResponse
	if err := json.Unmarshal(sbody, &exact); err != nil {
		t.Fatal(err)
	}
	if !exact.Reranked || exact.Degraded {
		t.Fatalf("follow-up flags reranked=%t degraded=%t — degraded batch line leaked into the cache", exact.Reranked, exact.Degraded)
	}
}

// TestClientDisconnectCancelsPromptly: when the client goes away
// mid-request, the handler's context cancels and the request finishes
// promptly instead of computing an answer nobody will read.
func TestClientDisconnectCancelsPromptly(t *testing.T) {
	idx := smallIndex(t)
	srv := NewServer(idx, Config{CacheSize: -1, Workers: 1, MaxInflight: 1})
	entered := make(chan struct{}, 1)
	srv.testHookInflight = func(*http.Request) {
		select {
		case entered <- struct{}{}:
		default:
		}
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/single_source?q=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		done <- err
	}()
	<-entered
	cancel()
	if err := <-done; err == nil {
		t.Log("client finished before the cancel landed; still checking server drain")
	}
	// The handler must release its slot promptly — the canceled context
	// aborts the sweep at a chunk boundary.
	waitFor(t, "handler to finish after disconnect", func() bool { return srv.inflight.Load() == 0 })
}

// TestBatchStreamTerminalLineOnCancel: an NDJSON stream whose context
// dies mid-stream (graceful-shutdown drain expiry cancelling in-flight
// requests) ends with a single terminal error line marked truncated, so
// clients cannot mistake the cut stream for a complete one.
func TestBatchStreamTerminalLineOnCancel(t *testing.T) {
	idx := smallIndex(t)
	srv := NewServer(idx, Config{CacheSize: -1, Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv.testHookBatchLine = func(line int) {
		if line == 0 {
			cancel() // the drain deadline fires between lines 0 and 1
		}
	}

	req := httptest.NewRequest(http.MethodPost, "/v1/batch",
		strings.NewReader(`{"mode":"topk","sources":[1,2,3,4],"k":3}`))
	req = req.WithContext(ctx)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)

	if rec.Code != http.StatusOK {
		t.Fatalf("batch: status %d", rec.Code)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("stream has %d lines, want line 0 plus the terminal error:\n%s", len(lines), rec.Body.String())
	}
	var first topKResponse
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 not a topk response: %v", err)
	}
	var term batchTerminal
	if err := json.Unmarshal([]byte(lines[1]), &term); err != nil {
		t.Fatalf("terminal line not parseable: %v", err)
	}
	if !term.Truncated || !strings.Contains(term.Error, "truncated") {
		t.Fatalf("terminal line = %+v, want truncated error", term)
	}
}

// TestConcurrentQueriesEditsAndLimiterChurn mixes concurrent queries,
// graph edits, and limiter churn (shed and queued requests) — the test
// the race detector watches in CI's serve-hardening job.
func TestConcurrentQueriesEditsAndLimiterChurn(t *testing.T) {
	g := gen.WebGraph(100, 6, 77)
	idx, err := query.BuildIndex(g, query.Options{Walks: 40, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(idx, Config{CacheSize: 64, Workers: 2, MaxInflight: 2, QueueDepth: 2, RequestTimeout: 2 * time.Second})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var wg sync.WaitGroup
	fail := make(chan string, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				var resp *http.Response
				var err error
				switch i % 3 {
				case 0:
					resp, err = http.Get(fmt.Sprintf("%s/v1/topk?q=%d&k=5", ts.URL, (w*31+i)%100))
				case 1:
					resp, err = http.Get(fmt.Sprintf("%s/v1/single_source?q=%d&min=0.01", ts.URL, (w*17+i)%100))
				case 2:
					resp, err = http.Post(ts.URL+"/v1/batch", "application/json",
						strings.NewReader(fmt.Sprintf(`{"mode":"topk","sources":[%d,%d],"k":4}`, i%100, (i+w)%100)))
				}
				if err != nil {
					fail <- err.Error()
					return
				}
				io.Copy(io.Discard, resp.Body)
				code := resp.StatusCode
				resp.Body.Close()
				// Overload answers (429, 503) are correct behavior here;
				// anything else non-200 is a bug.
				if code != http.StatusOK && code != http.StatusTooManyRequests && code != http.StatusServiceUnavailable {
					fail <- fmt.Sprintf("worker %d request %d: status %d", w, i, code)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 12; i++ {
			op := "add"
			if i%2 == 1 {
				op = "remove"
			}
			body := fmt.Sprintf(`{"edits":[{"op":%q,"u":%d,"v":%d}]}`, op, i%100, (i*7+1)%100)
			resp, err := http.Post(ts.URL+"/v1/edges", "application/json", strings.NewReader(body))
			if err != nil {
				fail <- err.Error()
				return
			}
			io.Copy(io.Discard, resp.Body)
			code := resp.StatusCode
			resp.Body.Close()
			if code != http.StatusOK && code != http.StatusTooManyRequests && code != http.StatusServiceUnavailable {
				fail <- fmt.Sprintf("edit %d: status %d", i, code)
				return
			}
		}
	}()
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Error(msg)
	}

	// The server must end quiescent: no slot leaked by any path.
	if got := srv.inflight.Load(); got != 0 {
		t.Errorf("inflight = %d after all requests finished, want 0", got)
	}
	if got := srv.queued.Load(); got != 0 {
		t.Errorf("queued = %d after all requests finished, want 0", got)
	}
}

// TestEditsAreLimited: /v1/edges runs behind the same limiter as queries,
// so a flood of edits cannot bypass admission control.
func TestEditsAreLimited(t *testing.T) {
	idx := smallIndex(t)
	srv := NewServer(idx, Config{CacheSize: -1, Workers: 1, MaxInflight: 1, QueueDepth: -1})
	entered := make(chan struct{}, 1)
	gate := make(chan struct{})
	srv.testHookInflight = func(*http.Request) {
		select {
		case entered <- struct{}{}:
			<-gate
		default:
		}
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	go http.Get(ts.URL + "/v1/topk?q=1&k=3") // holds the slot
	<-entered
	code, _ := postJSON(t, ts.URL+"/v1/edges", `{"edits":[{"op":"add","u":0,"v":1}]}`)
	close(gate)
	if code != http.StatusTooManyRequests {
		t.Fatalf("edit under saturation: status %d, want 429", code)
	}
}
