package engine_test

import (
	"context"
	"math"
	"strings"
	"testing"

	"oipsr/graph/gen"
	"oipsr/simrank"
	"oipsr/simrank/engine"
)

// TestEveryEngineRoundTripsThroughCompute is the registry gate: every
// registered engine with all-pairs capability must dispatch through
// simrank.Compute and produce a sane score matrix (unit diagonal up to its
// model/tolerance, scores in [0,1] up to rounding) — no engine may register
// without being reachable from the public seam.
func TestEveryEngineRoundTripsThroughCompute(t *testing.T) {
	g := gen.WebGraph(40, 5, 3)
	n := g.NumVertices()
	names := engine.Names()
	if len(names) < 8 {
		t.Fatalf("expected at least 8 registered engines, got %v", names)
	}
	for _, alg := range names {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			e, ok := engine.Get(alg)
			if !ok {
				t.Fatalf("Get(%q) missed an engine returned by Names", alg)
			}
			if !e.Caps().AllPairs {
				t.Skipf("%s does not materialize all-pairs scores", alg)
			}
			opt := simrank.Options{Algorithm: alg, C: 0.6, Workers: 2}
			switch alg {
			case simrank.MtxSR:
				// Full rank recovers the matrix-form model exactly; lower
				// ranks carry uncontrolled truncation error on digraphs.
				opt.Rank = n
			case simrank.MonteCarlo:
				opt.Walks = 200
				opt.Seed = 5
			}
			s, st, err := simrank.Compute(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			if st.Algorithm != alg {
				t.Errorf("Stats.Algorithm = %q, want %q", st.Algorithm, alg)
			}
			// The free-diagonal models (oip-dsr's differential exponential
			// form, mtx-sr's matrix form) do not pin s(a,a) = 1; every
			// other engine must. Everything must be a similarity score,
			// and a vertex is always positively similar to itself.
			pinnedDiag := alg != simrank.MtxSR && alg != simrank.OIPDSR
			for i := 0; i < n; i++ {
				row := s.Row(i)
				if pinnedDiag && math.Abs(row[i]-1) > 1e-6 {
					t.Fatalf("s(%d,%d) = %g, want ~1", i, i, row[i])
				}
				if row[i] <= 0 {
					t.Fatalf("s(%d,%d) = %g, want > 0", i, i, row[i])
				}
				for j, v := range row {
					if v < -1e-9 || v > 1+1e-9 {
						t.Fatalf("s(%d,%d) = %g outside [0,1]", i, j, v)
					}
				}
			}
			s.Close()
		})
	}
}

// TestValidDerivesFromRegistry: Algorithm.Valid is registry membership,
// nothing else.
func TestValidDerivesFromRegistry(t *testing.T) {
	for _, alg := range engine.Names() {
		if !alg.Valid() {
			t.Errorf("registered %q reports Valid() == false", alg)
		}
	}
	if engine.Algorithm("no-such-engine").Valid() {
		t.Error(`Valid("no-such-engine") == true`)
	}
	if engine.Algorithm("").Valid() {
		t.Error(`Valid("") == true`)
	}
}

// TestNameList feeds CLI help text; it must contain every registered name
// exactly once, sorted.
func TestNameList(t *testing.T) {
	list := engine.NameList(" | ")
	parts := strings.Split(list, " | ")
	names := engine.Names()
	if len(parts) != len(names) {
		t.Fatalf("NameList has %d entries, registry %d: %q", len(parts), len(names), list)
	}
	for i, alg := range names {
		if parts[i] != string(alg) {
			t.Errorf("NameList[%d] = %q, want %q", i, parts[i], alg)
		}
		if i > 0 && !(names[i-1] < alg) {
			t.Errorf("Names not sorted: %q before %q", names[i-1], alg)
		}
	}
}

// TestUnknownAlgorithmError pins the public error text the registry
// refactor must not change.
func TestUnknownAlgorithmError(t *testing.T) {
	g := gen.WebGraph(10, 3, 1)
	_, _, err := simrank.Compute(g, simrank.Options{Algorithm: "bogus"})
	if err == nil || err.Error() != `simrank: unknown algorithm "bogus"` {
		t.Fatalf("err = %v", err)
	}
	_, _, err = simrank.Compute(g, simrank.Options{Algorithm: simrank.MtxSR, BlockSize: 4})
	if err == nil || err.Error() != `simrank: the tiled backend (BlockSize > 0) does not support algorithm "mtx-sr"` {
		t.Fatalf("tiled mtx-sr err = %v", err)
	}
}

// TestDuplicateRegistrationPanics: engine names are API surface; silent
// override would repoint CLI flags and HTTP parameters.
func TestDuplicateRegistrationPanics(t *testing.T) {
	e, _ := engine.Get(simrank.Naive)
	defer func() {
		if recover() == nil {
			t.Error("Register(duplicate) did not panic")
		}
	}()
	engine.Register(e)
}

// TestCancelledLinearizedCompute: the one ctx-aware engine must surface
// cancellation through ComputeContext.
func TestCancelledLinearizedCompute(t *testing.T) {
	g := gen.WebGraph(60, 5, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := simrank.ComputeContext(ctx, g, simrank.Options{Algorithm: simrank.Linearized})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
