// Package core implements OIP-SR, the paper's primary contribution
// (Algorithm 1): SimRank iteration with both inner and outer partial-sums
// sharing driven by the minimum-spanning-tree plan of DMST-Reduce.
//
// One iteration ("sweep") walks the plan's chain steps — the paper's
// Fig. 2d path decomposition. At each step the inner partial-sum vector
// Partial_{I(u)}(.) is derived from the previous set's vector by applying
// the symmetric difference of the two in-neighbor sets (Proposition 3 /
// Eq. 9), or rebuilt from scratch at chain starts. For every set the sweep
// then runs procedure OP — a pass over the plan's tree steps with one
// scalar accumulator per tree node — to produce the full row s_{k+1}(u, .)
// via outer partial sums (Proposition 4 / Eqs. 10-11).
package core

import (
	"oipsr/graph"
	"oipsr/internal/partition"
	"oipsr/internal/simmat"
)

// SweepStats accumulates operation counts across sweeps. Additions are
// scalar float64 additions/subtractions, the unit the OIP cost model (and
// the NP-hardness reduction) is stated in.
type SweepStats struct {
	InnerAdds int64 // building/deriving inner partial-sum vectors
	OuterAdds int64 // deriving outer partial sums in procedure OP
}

// Sweeper applies the pairwise in-neighbor averaging operator
//
//	next(a,b) = damp / (|I(a)| |I(b)|) * sum_{i in I(a), j in I(b)} prev(i,j)
//
// using inner+outer partial-sums sharing. It owns the O(n) scratch buffers,
// so one Sweeper can be reused across iterations and algorithms: OIP-SR
// calls it with damp = C and pinned diagonal, the differential engine
// (OIP-DSR) with damp = 1 and a free diagonal for its T_k recurrence.
type Sweeper struct {
	g    *graph.Graph
	plan *partition.Plan

	partial []float64 // Partial_{I(u)}(y) for the current chain position
	invDeg  []float64 // 1/|I(v)|, 0 for empty sets (avoids n^2 divisions)
	vals    []float64 // per-tree-step outer partial sums (procedure OP)

	disableOuter bool
	stats        SweepStats
}

// NewSweeper builds a Sweeper for g with the given plan. If disableOuter is
// true, procedure OP is replaced by the psum-SR one-by-one outer summation
// (the ablation of Section III-B: inner sharing only).
func NewSweeper(g *graph.Graph, plan *partition.Plan, disableOuter bool) *Sweeper {
	n := g.NumVertices()
	inv := make([]float64, n)
	for v := 0; v < n; v++ {
		if d := g.InDegree(v); d > 0 {
			inv[v] = 1 / float64(d)
		}
	}
	return &Sweeper{
		g:            g,
		plan:         plan,
		partial:      make([]float64, n),
		invDeg:       inv,
		vals:         make([]float64, len(plan.TreeSteps)),
		disableOuter: disableOuter,
	}
}

// Stats returns the cumulative operation counts.
func (sw *Sweeper) Stats() SweepStats { return sw.stats }

// AuxBytes reports the auxiliary memory held by the sweeper's O(n) buffers
// (the "intermediate memory" of Proposition 5; score matrices excluded).
func (sw *Sweeper) AuxBytes() int64 {
	return int64(len(sw.partial))*8 + int64(len(sw.invDeg))*8 + int64(len(sw.vals))*8
}

// Sweep applies the averaging operator from prev into next. Rows and
// columns of vertices with empty in-neighbor sets become zero; if pinDiag
// is set, every diagonal entry is then forced to 1 (the s(a,a)=1 rule of
// the conventional model).
//
// next must be all-zero, an identity matrix, or the output of a previous
// Sweep over the same graph: the emit stage overwrites exactly the
// (non-empty row, non-empty column) cells plus, below, the empty rows and
// the diagonal, and relies on the remaining cells already being zero. This
// avoids an n^2 clear per iteration; the engines' ping-pong buffers satisfy
// the requirement by construction.
func (sw *Sweeper) Sweep(prev, next *simmat.Matrix, damp float64, pinDiag bool) {
	g, plan := sw.g, sw.plan
	n := g.NumVertices()
	// Rows of empty in-neighbor sets are never written by emitRow but may
	// hold a stale diagonal 1 from an identity-initialized buffer.
	for v := 0; v < n; v++ {
		if sw.invDeg[v] == 0 {
			row := next.Row(v)
			for i := range row {
				row[i] = 0
			}
		}
	}

	// Walk the chain steps: from scratch at chain starts (lines 5-6 of
	// Algorithm 1), otherwise by the consecutive symmetric difference
	// (Eq. 9; lines 10-11). Chains never branch, so no undo is needed.
	for _, step := range plan.ChainSteps {
		u := step.Vertex
		if step.Parent < 0 {
			sw.buildScratch(prev, u)
		} else {
			sw.applyDiff(prev, plan.Add[u], plan.Sub[u])
		}
		sw.emitRow(next, u, damp)
	}

	if pinDiag {
		for v := 0; v < n; v++ {
			next.Set(v, v, 1)
		}
	}
}

// buildScratch fills sw.partial with the sum of prev rows over I(root).
func (sw *Sweeper) buildScratch(prev *simmat.Matrix, root int) {
	in := sw.g.In(root)
	copy(sw.partial, prev.Row(in[0]))
	for _, x := range in[1:] {
		rx := prev.Row(x)
		for y, v := range rx {
			sw.partial[y] += v
		}
	}
	sw.stats.InnerAdds += int64(len(in)-1) * int64(len(sw.partial))
}

// applyDiff updates sw.partial by adding the prev rows in add and
// subtracting those in sub.
func (sw *Sweeper) applyDiff(prev *simmat.Matrix, add, sub []int) {
	for _, x := range add {
		rx := prev.Row(x)
		for y, v := range rx {
			sw.partial[y] += v
		}
	}
	for _, x := range sub {
		rx := prev.Row(x)
		for y, v := range rx {
			sw.partial[y] -= v
		}
	}
	sw.stats.InnerAdds += int64(len(add)+len(sub)) * int64(len(sw.partial))
}

// emitRow computes next(u, w) for all w from the current partial vector.
// With outer sharing it is procedure OP over the flattened tree steps:
// outer partial sums are scalars, the parent's value sits in sw.vals, and
// branching costs nothing, so the per-row additions equal the MST weight.
// Without outer sharing it is the psum-SR per-target summation.
func (sw *Sweeper) emitRow(next *simmat.Matrix, u int, damp float64) {
	g, plan := sw.g, sw.plan
	row := next.Row(u)
	scaleU := damp * sw.invDeg[u]

	if sw.disableOuter {
		outerAdds := int64(0)
		for w := 0; w < g.NumVertices(); w++ {
			in := g.In(w)
			if len(in) == 0 {
				continue
			}
			sum := 0.0
			for _, j := range in {
				sum += sw.partial[j]
			}
			outerAdds += int64(len(in) - 1)
			row[w] = scaleU * sw.invDeg[w] * sum
		}
		sw.stats.OuterAdds += outerAdds
		return
	}

	outerAdds := int64(0)
	for i, step := range plan.TreeSteps {
		z := step.Vertex
		var val float64
		if step.Parent < 0 {
			// From scratch (line 2 of procedure OP).
			for _, y := range g.In(z) {
				val += sw.partial[y]
			}
			outerAdds += int64(len(g.In(z)) - 1)
		} else {
			// Derive OuterPartial_{I(z)} from the parent's value
			// (Proposition 4; line 8 of procedure OP).
			val = sw.vals[step.Parent]
			for _, y := range plan.TreeAdd[z] {
				val += sw.partial[y]
			}
			for _, y := range plan.TreeSub[z] {
				val -= sw.partial[y]
			}
			outerAdds += int64(len(plan.TreeAdd[z]) + len(plan.TreeSub[z]))
		}
		sw.vals[i] = val
		row[z] = scaleU * sw.invDeg[z] * val
	}
	sw.stats.OuterAdds += outerAdds
}
