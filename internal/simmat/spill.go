package simmat

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// On-disk tile format (all integers little-endian), following the
// walkindex convention of a versioned header plus a trailing CRC:
//
//	offset  size       field
//	0       8          magic "SRTILE\x00\x00"
//	8       4          format version (currently 1)
//	12      4          rows (uint32)
//	16      4          cols (uint32)
//	20      8*rows*cols  payload (float64 IEEE-754 bits)
//	...     4          CRC-32 (IEEE) of every preceding byte
//
// The checksum makes truncation and bit corruption of an evicted tile
// detectable when it is paged back in; the version field rejects spill files
// written by an incompatible revision. Round-tripping is bit-exact: payload
// float64s are stored as their raw IEEE bits.

// TileFormatVersion is the current spill-file format revision.
const TileFormatVersion = 1

var tileMagic = [8]byte{'S', 'R', 'T', 'I', 'L', 'E', 0, 0}

const tileHeaderSize = 8 + 4 + 4 + 4

// Sentinel errors returned when a spilled tile cannot be read back.
var (
	ErrTileMagic    = errors.New("simmat: not a tile spill file (bad magic)")
	ErrTileVersion  = errors.New("simmat: unsupported tile format version")
	ErrTileChecksum = errors.New("simmat: tile checksum mismatch (corrupted spill file)")
)

// writeTileFile writes data (rows x cols, row-major) to path in the
// versioned spill format, replacing any previous file.
func writeTileFile(path string, rows, cols int, data []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("simmat: creating spill file: %w", err)
	}
	crc := crc32.NewIEEE()
	bw := bufio.NewWriterSize(io.MultiWriter(f, crc), 1<<16)

	var hdr [tileHeaderSize]byte
	copy(hdr[:8], tileMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], TileFormatVersion)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(rows))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(cols))
	if _, err := bw.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("simmat: writing tile header: %w", err)
	}
	var buf [1 << 13]byte
	for off := 0; off < len(data); {
		nb := 0
		for off < len(data) && nb+8 <= len(buf) {
			binary.LittleEndian.PutUint64(buf[nb:], math.Float64bits(data[off]))
			nb += 8
			off++
		}
		if _, err := bw.Write(buf[:nb]); err != nil {
			f.Close()
			return fmt.Errorf("simmat: writing tile payload: %w", err)
		}
	}
	// Flush the payload into the CRC before sealing it; the checksum is not
	// part of its own coverage.
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("simmat: writing tile payload: %w", err)
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := f.Write(sum[:]); err != nil {
		f.Close()
		return fmt.Errorf("simmat: writing tile checksum: %w", err)
	}
	return f.Close()
}

// readTileFile reads a tile spilled by writeTileFile into dst, verifying the
// magic, version, dimensions and checksum.
func readTileFile(path string, rows, cols int, dst []float64) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("simmat: opening spill file: %w", err)
	}
	defer f.Close()
	crc := crc32.NewIEEE()
	br := bufio.NewReaderSize(f, 1<<16)

	var hdr [tileHeaderSize]byte
	if err := readTileFull(br, hdr[:], "header"); err != nil {
		return err
	}
	crc.Write(hdr[:])
	if [8]byte(hdr[:8]) != tileMagic {
		return ErrTileMagic
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != TileFormatVersion {
		return fmt.Errorf("%w: file has version %d, this build reads version %d", ErrTileVersion, v, TileFormatVersion)
	}
	gotRows := int(binary.LittleEndian.Uint32(hdr[12:]))
	gotCols := int(binary.LittleEndian.Uint32(hdr[16:]))
	if gotRows != rows || gotCols != cols {
		return fmt.Errorf("simmat: spill file is %dx%d, expected %dx%d tile", gotRows, gotCols, rows, cols)
	}

	var buf [1 << 13]byte
	for off := 0; off < len(dst); {
		nb := min(len(buf), (len(dst)-off)*8)
		if err := readTileFull(br, buf[:nb], "payload"); err != nil {
			return err
		}
		crc.Write(buf[:nb])
		for b := 0; b < nb; b += 8 {
			dst[off] = math.Float64frombits(binary.LittleEndian.Uint64(buf[b:]))
			off++
		}
	}
	want := crc.Sum32()
	var sum [4]byte
	if err := readTileFull(br, sum[:], "checksum"); err != nil {
		return err
	}
	if got := binary.LittleEndian.Uint32(sum[:]); got != want {
		return fmt.Errorf("%w: stored %08x, computed %08x", ErrTileChecksum, got, want)
	}
	return nil
}

func readTileFull(br *bufio.Reader, p []byte, section string) error {
	if _, err := io.ReadFull(br, p); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return fmt.Errorf("simmat: truncated spill file (short read in %s): %w", section, io.ErrUnexpectedEOF)
		}
		return fmt.Errorf("simmat: reading spill %s: %w", section, err)
	}
	return nil
}
