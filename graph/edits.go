package graph

import (
	"fmt"
	"sort"
)

// EditOp selects the operation an Edit performs.
type EditOp uint8

const (
	// EditAdd inserts the directed edge U->V; a no-op if it already exists.
	EditAdd EditOp = iota
	// EditRemove deletes the directed edge U->V; a no-op if it is absent.
	EditRemove
)

// String returns "add" or "remove".
func (op EditOp) String() string {
	switch op {
	case EditAdd:
		return "add"
	case EditRemove:
		return "remove"
	}
	return fmt.Sprintf("EditOp(%d)", uint8(op))
}

// Edit is one directed-edge change in an ApplyEdits batch.
type Edit struct {
	Op   EditOp
	U, V int
}

// EditSummary describes the net effect of an ApplyEdits batch.
type EditSummary struct {
	// Added and Removed count the edges that actually changed: adds of
	// already-present edges and removes of absent edges are no-ops and do
	// not contribute.
	Added, Removed int
	// DirtyIn lists, sorted ascending, every vertex whose in-neighbor list
	// differs between the old and new graph — exactly the dirty set an
	// incremental walk-index repair (walkindex.Update) needs.
	DirtyIn []int
	// DirtyOut is the same for out-neighbor lists.
	DirtyOut []int
}

// ApplyEdits returns a new graph with the edit batch applied, leaving the
// receiver untouched. Both CSR directions are rebuilt by merging each
// affected adjacency row with its delta, so the cost is O(n + m + |edits|
// log |edits|) regardless of how many edits are no-ops.
//
// Semantics: edits are applied in order, so within one batch the last edit
// to a given (U, V) pair wins; duplicate edits coalesce. Adding an existing
// edge or removing an absent one is a silent no-op (reported only through
// the summary counts). Self-loops may be added and removed like any other
// edge. The vertex set is fixed: edits mentioning vertices outside
// [0, NumVertices()) are rejected, as are unknown ops.
func (g *Graph) ApplyEdits(edits []Edit) (*Graph, EditSummary, error) {
	var sum EditSummary
	for i, e := range edits {
		if e.Op != EditAdd && e.Op != EditRemove {
			return nil, sum, fmt.Errorf("graph: edit %d: unknown op %v", i, e.Op)
		}
		if e.U < 0 || e.U >= g.n || e.V < 0 || e.V >= g.n {
			return nil, sum, fmt.Errorf("graph: edit %d: edge (%d, %d) outside vertex range [0,%d)", i, e.U, e.V, g.n)
		}
	}

	// Net effect per edge pair: the last edit wins.
	net := make(map[[2]int]EditOp, len(edits))
	for _, e := range edits {
		net[[2]int{e.U, e.V}] = e.Op
	}

	// Split the effective changes (those that disagree with the current
	// graph) into per-vertex deltas for each CSR direction.
	addOut := map[int][]int{} // u -> new out-neighbors
	rmOut := map[int][]int{}
	addIn := map[int][]int{} // v -> new in-neighbors
	rmIn := map[int][]int{}
	for uv, op := range net {
		u, v := uv[0], uv[1]
		has := g.HasEdge(u, v)
		switch {
		case op == EditAdd && !has:
			addOut[u] = append(addOut[u], v)
			addIn[v] = append(addIn[v], u)
			sum.Added++
		case op == EditRemove && has:
			rmOut[u] = append(rmOut[u], v)
			rmIn[v] = append(rmIn[v], u)
			sum.Removed++
		}
	}

	m2 := g.m + sum.Added - sum.Removed
	ng := &Graph{
		n:        g.n,
		m:        m2,
		inStart:  make([]int, g.n+1),
		inList:   make([]int, 0, m2),
		outStart: make([]int, g.n+1),
		outList:  make([]int, 0, m2),
	}
	for v := 0; v < g.n; v++ {
		ng.inList = appendMergedRow(ng.inList, g.In(v), addIn[v], rmIn[v])
		ng.inStart[v+1] = len(ng.inList)
		ng.outList = appendMergedRow(ng.outList, g.Out(v), addOut[v], rmOut[v])
		ng.outStart[v+1] = len(ng.outList)
	}

	sum.DirtyIn = sortedKeys(addIn, rmIn)
	sum.DirtyOut = sortedKeys(addOut, rmOut)
	return ng, sum, nil
}

// appendMergedRow appends old ∪ add ∖ rm to dst in sorted order. old is
// already sorted; add and rm are sorted in place here. add and rm are
// disjoint from each other by construction (one net op per edge pair), add
// is disjoint from old, and rm ⊆ old.
func appendMergedRow(dst, old, add, rm []int) []int {
	if len(add) == 0 && len(rm) == 0 {
		return append(dst, old...)
	}
	sort.Ints(add)
	sort.Ints(rm)
	ai, ri := 0, 0
	for _, x := range old {
		for ai < len(add) && add[ai] < x {
			dst = append(dst, add[ai])
			ai++
		}
		if ri < len(rm) && rm[ri] == x {
			ri++
			continue
		}
		dst = append(dst, x)
	}
	return append(dst, add[ai:]...)
}

// sortedKeys returns the sorted union of the key sets of two maps.
func sortedKeys(a, b map[int][]int) []int {
	keys := make([]int, 0, len(a)+len(b))
	for k := range a {
		keys = append(keys, k)
	}
	for k := range b {
		if _, dup := a[k]; !dup {
			keys = append(keys, k)
		}
	}
	sort.Ints(keys)
	return keys
}
