package simrankd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"oipsr/graph/gen"
	"oipsr/simrank/query"
	"oipsr/simrank/shard"
)

// flakyBackend fronts one shard backend and can be switched into a
// failure mode for the shard data plane (/shard/* and /v1/edges).
// /healthz and /metrics always pass through so NewRouter's probe and
// scrapes keep working while the data plane is down.
type flakyBackend struct {
	mode atomic.Value // "" | "503" | "429" | "hang"
	next http.Handler
	stop chan struct{} // closed at test end so hung handlers release
}

func (f *flakyBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	dataPlane := strings.HasPrefix(r.URL.Path, "/shard/") || r.URL.Path == "/v1/edges"
	if mode, _ := f.mode.Load().(string); dataPlane && mode != "" {
		switch mode {
		case "503":
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"simrankd: injected outage"}` + "\n"))
		case "429":
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"simrankd: injected overload"}` + "\n"))
		case "hang":
			select {
			case <-r.Context().Done():
			case <-f.stop:
			case <-time.After(30 * time.Second):
			}
		}
		return
	}
	f.next.ServeHTTP(w, r)
}

// routerFleet is a single-node server and an equivalent sharded
// deployment (router + per-range backends) built over the same graph.
type routerFleet struct {
	single *httptest.Server
	router *httptest.Server
	rt     *Router
	flaky  []*flakyBackend
	n      int
}

func newRouterFleet(t *testing.T, nShards int, cfg Config, shardTimeout time.Duration) *routerFleet {
	t.Helper()
	g := gen.WebGraph(120, 7, 101)
	opt := query.Options{Walks: 400, Seed: 7, Workers: 1}
	idx, err := query.BuildIndex(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	single := httptest.NewServer(NewServer(idx, cfg))
	t.Cleanup(single.Close)

	ranges, err := shard.Plan(g.NumVertices(), nShards)
	if err != nil {
		t.Fatal(err)
	}
	fleet := &routerFleet{single: single, n: g.NumVertices()}
	urls := make([]string, 0, nShards)
	for _, rg := range ranges {
		sh, err := shard.Build(g, opt, rg.Lo, rg.Hi)
		if err != nil {
			t.Fatal(err)
		}
		ss, err := NewShardServer(sh, cfg)
		if err != nil {
			t.Fatal(err)
		}
		fb := &flakyBackend{next: ss, stop: make(chan struct{})}
		fb.mode.Store("")
		ts := httptest.NewServer(fb)
		t.Cleanup(ts.Close)
		fleet.flaky = append(fleet.flaky, fb)
		urls = append(urls, ts.URL)
	}

	rt, err := NewRouter(g, urls, RouterConfig{Config: cfg, ShardTimeout: shardTimeout})
	if err != nil {
		t.Fatal(err)
	}
	fleet.rt = rt
	fleet.router = httptest.NewServer(rt)
	t.Cleanup(fleet.router.Close)
	// Registered last so it runs first (LIFO): hung backend handlers must
	// release before the httptest servers' Close waits on them.
	t.Cleanup(func() {
		for _, fb := range fleet.flaky {
			close(fb.stop)
		}
	})
	return fleet
}

// identityProbes is the request matrix both deployments must answer
// byte-for-byte identically: every query endpoint, success and error
// shapes, dense and sparse forms, with and without rerank.
type probe struct {
	name, method, path, body string
}

func identityProbes(n int) []probe {
	return []probe{
		{"ss_dense_first", "GET", "/v1/single_source?q=0", ""},
		{"ss_dense_mid", "GET", "/v1/single_source?q=57", ""},
		{"ss_dense_last", "GET", fmt.Sprintf("/v1/single_source?q=%d", n-1), ""},
		{"ss_sparse", "GET", "/v1/single_source?q=5&min=0.001", ""},
		{"ss_neg", "GET", "/v1/single_source?q=-1", ""},
		{"ss_oob", "GET", fmt.Sprintf("/v1/single_source?q=%d", n+100), ""},
		{"ss_badq", "GET", "/v1/single_source?q=zebra", ""},
		{"topk", "GET", "/v1/topk?q=7&k=9", ""},
		{"topk_rerank", "GET", "/v1/topk?q=7&k=9&rerank=1", ""},
		{"topk_k_over_n", "GET", fmt.Sprintf("/v1/topk?q=3&k=%d", n+5), ""},
		{"topk_k_zero", "GET", "/v1/topk?q=42&k=0", ""},
		{"topk_oob", "GET", fmt.Sprintf("/v1/topk?q=%d&k=4", n), ""},
		{"join", "POST", "/v1/join", `{"k":5,"threshold":0.15}`},
		{"join_tight_cap", "POST", "/v1/join", `{"k":3,"threshold":0.1,"max_candidates":2}`},
		{"join_bad_threshold", "POST", "/v1/join", `{"k":5,"threshold":1.5}`},
		{"join_bad_k", "POST", "/v1/join", `{"k":0,"threshold":0.2}`},
		{"batch_topk", "POST", "/v1/batch", fmt.Sprintf(`{"mode":"topk","sources":[3,77,%d,%d],"k":6}`, n-1, n+50)},
		{"batch_topk_rerank", "POST", "/v1/batch", `{"mode":"topk","sources":[11,12],"k":5,"rerank":true}`},
		{"batch_ss_sparse", "POST", "/v1/batch", `{"mode":"single_source","sources":[1,60,110],"min":0.002}`},
		{"batch_bad_mix", "POST", "/v1/batch", `{"mode":"topk","sources":[1],"min":0.5}`},
		{"batch_empty", "POST", "/v1/batch", `{"mode":"topk","sources":[],"k":3}`},
	}
}

func runProbe(t *testing.T, base string, p probe) (int, []byte) {
	t.Helper()
	if p.method == "GET" {
		return get(t, base+p.path)
	}
	return postJSON(t, base+p.path, p.body)
}

func checkIdentity(t *testing.T, fl *routerFleet, phase string) {
	t.Helper()
	for _, p := range identityProbes(fl.n) {
		cs, bs := runProbe(t, fl.single.URL, p)
		cr, br := runProbe(t, fl.router.URL, p)
		if cs != cr {
			t.Errorf("%s/%s: status single=%d router=%d (router body %q)", phase, p.name, cs, cr, br)
			continue
		}
		if !bytes.Equal(bs, br) {
			t.Errorf("%s/%s: bodies differ\nsingle: %s\nrouter: %s", phase, p.name, bs, br)
		}
	}
}

// TestRouterByteIdenticalToSingleNode is the PR's acceptance test: a
// 3-shard router must answer every query endpoint byte-for-byte like
// the single-node server — before and after live /v1/edges applied to
// both deployments.
func TestRouterByteIdenticalToSingleNode(t *testing.T) {
	fl := newRouterFleet(t, 3, Config{Workers: 1}, 0)
	checkIdentity(t, fl, "initial")

	// Edits spanning all three vertex ranges: adds and removals.
	edits := `{"edits":[` +
		`{"op":"add","u":2,"v":115},{"op":"add","u":55,"v":3},` +
		`{"op":"add","u":118,"v":40},{"op":"remove","u":1,"v":0},` +
		`{"op":"add","u":7,"v":7}]}`
	cs, bs := postJSON(t, fl.single.URL+"/v1/edges", edits)
	cr, br := postJSON(t, fl.router.URL+"/v1/edges", edits)
	if cs != http.StatusOK || cr != http.StatusOK {
		t.Fatalf("edits: single=%d %s router=%d %s", cs, bs, cr, br)
	}
	var es, er edgesResponse
	if err := json.Unmarshal(bs, &es); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(br, &er); err != nil {
		t.Fatal(err)
	}
	if es.Added != er.Added || es.Removed != er.Removed || es.Edges != er.Edges {
		t.Fatalf("edit summaries diverge: single=%+v router=%+v", es, er)
	}
	if es.WalksRepaired != er.WalksRepaired {
		t.Fatalf("walks repaired diverge: single=%d router=%d", es.WalksRepaired, er.WalksRepaired)
	}
	checkIdentity(t, fl, "after-edits")

	// A second round proves generations keep advancing in lockstep.
	edits2 := `{"edits":[{"op":"remove","u":2,"v":115},{"op":"add","u":0,"v":119}]}`
	if c, b := postJSON(t, fl.single.URL+"/v1/edges", edits2); c != http.StatusOK {
		t.Fatalf("single edits2: %d %s", c, b)
	}
	if c, b := postJSON(t, fl.router.URL+"/v1/edges", edits2); c != http.StatusOK {
		t.Fatalf("router edits2: %d %s", c, b)
	}
	checkIdentity(t, fl, "after-edits-2")
}

// TestRouterPartialFailureDegrades: with one shard down the router must
// keep answering 200, mark the response degraded (body field + header),
// keep live ranges bit-correct, zero the missing range, and never cache
// a degraded answer.
func TestRouterPartialFailureDegrades(t *testing.T) {
	for _, mode := range []string{"503", "429", "hang"} {
		t.Run(mode, func(t *testing.T) {
			fl := newRouterFleet(t, 3, Config{Workers: 1}, 300*time.Millisecond)

			// Reference answers while healthy.
			_, fullDense := get(t, fl.single.URL+"/v1/single_source?q=9")
			_, fullSparse := get(t, fl.single.URL+"/v1/single_source?q=9&min=0.001")

			fl.flaky[1].mode.Store(mode)

			code, body := get(t, fl.router.URL+"/v1/single_source?q=9")
			if code != http.StatusOK {
				t.Fatalf("degraded dense: %d %s", code, body)
			}
			var deg, full singleSourceResponse
			if err := json.Unmarshal(body, &deg); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(fullDense, &full); err != nil {
				t.Fatal(err)
			}
			if !deg.Degraded {
				t.Fatalf("degraded flag missing: %s", body)
			}
			lo, hi := fl.rt.ranges[1].Lo, fl.rt.ranges[1].Hi
			for v := range deg.Scores {
				switch {
				case v >= lo && v < hi:
					if v != 9 && deg.Scores[v] != 0 {
						t.Fatalf("vertex %d in dead range scored %v", v, deg.Scores[v])
					}
				default:
					if deg.Scores[v] != full.Scores[v] {
						t.Fatalf("vertex %d: degraded %v != full %v", v, deg.Scores[v], full.Scores[v])
					}
				}
			}

			// Header marker on a degraded answer.
			resp, err := http.Get(fl.router.URL + "/v1/single_source?q=9")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.Header.Get("X-Simrank-Degraded") == "" {
				t.Fatal("X-Simrank-Degraded header missing on degraded response")
			}

			// A cacheable (sparse) query answered degraded must NOT poison
			// the cache: after recovery the same URL returns the full
			// single-node-identical body.
			if c, b := get(t, fl.router.URL+"/v1/single_source?q=9&min=0.001"); c != http.StatusOK {
				t.Fatalf("degraded sparse: %d %s", c, b)
			}
			// top-k and join degrade rather than fail too.
			if c, b := get(t, fl.router.URL+"/v1/topk?q=4&k=5&rerank=1"); c != http.StatusOK {
				t.Fatalf("degraded topk: %d %s", c, b)
			} else {
				var tk topKResponse
				if err := json.Unmarshal(b, &tk); err != nil {
					t.Fatal(err)
				}
				if !tk.Degraded {
					t.Fatalf("topk not marked degraded: %s", b)
				}
				if tk.Reranked {
					t.Fatalf("degraded topk must not claim rerank: %s", b)
				}
			}
			if c, b := postJSON(t, fl.router.URL+"/v1/join", `{"k":4,"threshold":0.15}`); c != http.StatusOK {
				t.Fatalf("degraded join: %d %s", c, b)
			} else if !strings.Contains(string(b), `"degraded":true`) {
				t.Fatalf("join not marked degraded: %s", b)
			}
			// Batch lines carry the degraded marker as well.
			if c, b := postJSON(t, fl.router.URL+"/v1/batch",
				`{"mode":"single_source","sources":[9],"min":0.001}`); c != http.StatusOK {
				t.Fatalf("degraded batch: %d %s", c, b)
			} else if !strings.Contains(string(b), `"degraded":true`) {
				t.Fatalf("batch line not marked degraded: %s", b)
			}

			fl.flaky[1].mode.Store("")

			c, b := get(t, fl.router.URL+"/v1/single_source?q=9&min=0.001")
			if c != http.StatusOK {
				t.Fatalf("recovered sparse: %d %s", c, b)
			}
			if !bytes.Equal(b, fullSparse) {
				t.Fatalf("cache poisoned: recovered body %s != single-node %s", b, fullSparse)
			}
			if got := fl.rt.shardErrors.Load(); got == 0 {
				t.Fatal("shardErrors counter never incremented")
			}
		})
	}
}

// TestRouterEdgesPartialBroadcastConverges: a broadcast that reaches
// only part of the fleet returns 502, leaves the stale shard flagged
// (every answer degraded), and retrying the same idempotent batch
// converges back to byte-identity with the single-node server.
func TestRouterEdgesPartialBroadcastConverges(t *testing.T) {
	fl := newRouterFleet(t, 3, Config{Workers: 1}, 300*time.Millisecond)

	edits := `{"edits":[{"op":"add","u":2,"v":115},{"op":"remove","u":1,"v":0},{"op":"add","u":80,"v":5}]}`
	if c, b := postJSON(t, fl.single.URL+"/v1/edges", edits); c != http.StatusOK {
		t.Fatalf("single edits: %d %s", c, b)
	}

	fl.flaky[1].mode.Store("503")
	code, body := postJSON(t, fl.router.URL+"/v1/edges", edits)
	if code != http.StatusBadGateway {
		t.Fatalf("partial broadcast: want 502, got %d %s", code, body)
	}
	if !strings.Contains(string(body), "retry the same batch") {
		t.Fatalf("502 body should tell the client to retry: %s", body)
	}

	// The divergent fleet must not pretend to be consistent: shard 1 is
	// one generation behind, so answers touching it are degraded.
	if c, b := get(t, fl.router.URL+"/v1/single_source?q=9"); c != http.StatusOK {
		t.Fatalf("query during divergence: %d %s", c, b)
	} else if !strings.Contains(string(b), `"degraded":true`) {
		t.Fatalf("divergent fleet answered without degraded marker: %s", b)
	}

	fl.flaky[1].mode.Store("")
	code, body = postJSON(t, fl.router.URL+"/v1/edges", edits)
	if code != http.StatusOK {
		t.Fatalf("retry: want 200, got %d %s", code, body)
	}
	checkIdentity(t, fl, "after-converge")
}

// TestRouterBatchStreamTerminalLine mirrors the single-node truncation
// contract: a /v1/batch stream cut by context death ends with a
// terminal NDJSON error line, not a silent truncation.
func TestRouterBatchStreamTerminalLine(t *testing.T) {
	fl := newRouterFleet(t, 2, Config{Workers: 1}, 0)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fl.rt.testHookBatchLine = func(i int) {
		if i == 0 {
			cancel()
		}
	}
	defer func() { fl.rt.testHookBatchLine = nil }()

	req := httptest.NewRequest(http.MethodPost, "/v1/batch",
		strings.NewReader(`{"mode":"topk","sources":[1,2,3,4],"k":3}`))
	req = req.WithContext(ctx)
	rec := httptest.NewRecorder()
	fl.rt.ServeHTTP(rec, req)

	lines := ndjsonLines(t, rec.Body.Bytes())
	if len(lines) < 2 {
		t.Fatalf("want at least one result line plus a terminal line, got %d: %s", len(lines), rec.Body.Bytes())
	}
	var term batchTerminal
	if err := json.Unmarshal(lines[len(lines)-1], &term); err != nil {
		t.Fatalf("terminal line not parseable: %v (%s)", err, lines[len(lines)-1])
	}
	if !term.Truncated || term.Error == "" {
		t.Fatalf("terminal line must mark truncation with an error: %+v", term)
	}
}

// TestRouterRejectsInconsistentFleet: NewRouter must refuse a backend
// set that does not tile [0, n) exactly.
func TestRouterRejectsInconsistentFleet(t *testing.T) {
	g := gen.WebGraph(60, 5, 11)
	opt := query.Options{Walks: 64, Seed: 3, Workers: 1}
	ranges, err := shard.Plan(g.NumVertices(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Only bring up the second shard: the partition has a hole at the front.
	sh, err := shard.Build(g, opt, ranges[1].Lo, ranges[1].Hi)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := NewShardServer(sh, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(ss)
	defer ts.Close()
	if _, err := NewRouter(g, []string{ts.URL}, RouterConfig{Config: Config{Workers: 1}}); err == nil {
		t.Fatal("NewRouter accepted a fleet that does not cover [0, n)")
	}
}
