package gio

import (
	"bytes"
	"testing"
)

// FuzzReadEdgeList: the edge-list parser must return an error — never
// panic, never blow up allocation — on arbitrary bytes. Successful parses
// must produce a graph that passes its own validation and respects the
// vertex cap.
func FuzzReadEdgeList(f *testing.F) {
	f.Add([]byte("0 1\n1 2\n2 0\n"))
	f.Add([]byte("# comment\n% also comment\n\n3 4\n"))
	f.Add([]byte("0 0\n0 0\n"))                 // self-loop + duplicate
	f.Add([]byte("1 2 999 extra tokens\n"))     // trailing fields are ignored
	f.Add([]byte("a b\n"))                      // non-numeric
	f.Add([]byte("5\n"))                        // missing destination
	f.Add([]byte("-1 2\n"))                     // negative id
	f.Add([]byte("0 99999999999999999999\n"))   // id overflows int
	f.Add([]byte("0 999999999\n"))              // id over the cap
	f.Add([]byte("\xff\xfe invalid utf8 \x00")) // binary noise
	f.Add([]byte(""))
	const limit = 1 << 12
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadEdgeListLimit(bytes.NewReader(data), limit)
		if err != nil {
			return
		}
		if g.NumVertices() > limit {
			t.Fatalf("parser exceeded vertex limit: %d > %d", g.NumVertices(), limit)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		// Round-trip: what the writer emits must parse back to the same
		// shape.
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("writing accepted graph: %v", err)
		}
		g2, err := ReadEdgeListN(bytes.NewReader(buf.Bytes()), g.NumVertices())
		if err != nil {
			t.Fatalf("re-parsing written graph: %v", err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: %d/%d -> %d/%d",
				g.NumVertices(), g.NumEdges(), g2.NumVertices(), g2.NumEdges())
		}
	})
}
