package walkindex

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"oipsr/internal/par"
)

// All-pairs top-k similarity join.
//
// Join answers "which pairs of vertices are most similar?" without an
// n-source MultiSource sweep, let alone the Theta(n^2) state of the batch
// engines. It exploits the same structure the batched path does — walkers
// standing on the same vertex at the same (fingerprint, step) — but
// inverted: instead of looking sources up per target, it groups ALL
// walkers of one slot by position, because exactly the co-located groups
// are where estimate mass comes from. A pair that is never co-located has
// estimate 0, and a pair whose earliest co-location (over every
// fingerprint) is at step t has estimate at most C^(t+1): each
// fingerprint's first-meeting weight is bounded by the earliest one, and
// the estimate is an average of those weights.
//
// That bound is the contribution-weight prune: for a score threshold
// theta, only the slots with C^(t+1) >= theta (t <= T_theta, a constant
// depth for fixed theta) can introduce a pair that reaches theta, so
// candidate generation touches R*(T_theta+1) slots instead of R*K — and,
// more importantly, it enumerates only co-located pairs, whose count on
// real graphs is far below n^2/2 at useful thresholds. Candidates are then
// re-scored exactly (the same arithmetic as SingleSource/Pair) and the
// top-k above the threshold survive.

// JoinPair is one result pair of a similarity join, canonical A < B.
type JoinPair struct {
	A, B  int
	Score float64
}

// ErrTooDense reports a join whose candidate set outgrew the caller's cap:
// the threshold is too low (or the graph's walks coalesce too heavily) for
// pair enumeration to stay bounded. Raise the threshold or the cap.
var ErrTooDense = errors.New("walkindex: join candidate set exceeds the cap")

// genSlack widens the candidate-generation depth by a hair: a pair whose
// true bound sits exactly at the threshold could otherwise be pruned while
// floating-point summation rounds its exact estimate to just above it.
const genSlack = 1 - 1e-9

// CheckJoinArgs validates the shared join arguments. Join performs the
// same checks; the router validates before scattering so a bad request is
// rejected once, with the same error text a single-node daemon produces.
func CheckJoinArgs(k int, threshold float64, maxCandidates int) error {
	if k < 1 {
		return fmt.Errorf("walkindex: join top-k size %d < 1", k)
	}
	if threshold < 0 || threshold > 1 {
		return fmt.Errorf("walkindex: join threshold %v outside [0,1]", threshold)
	}
	if maxCandidates < 1 {
		return fmt.Errorf("walkindex: join candidate cap %d < 1", maxCandidates)
	}
	return nil
}

// TooDenseError builds the ErrTooDense-wrapped overflow error every join
// layer reports — per-worker caps, the single-node merge, and the router's
// cross-shard merge all fail with byte-identical text.
func TooDenseError(threshold float64, maxCandidates int) error {
	return fmt.Errorf("%w: threshold %v admits more than %d co-located pairs", ErrTooDense, threshold, maxCandidates)
}

// joinDepth returns the last step index whose first-meeting weight clears
// the threshold, or -1 when no slot can (pow is strictly decreasing, so
// the scan stops early). Join and the shard candidate enumeration share it,
// so both prune at exactly the same float comparison.
func joinDepth(pow []float64, threshold float64) int {
	maxT := -1
	for t, w := range pow {
		if w < threshold*genSlack {
			break
		}
		maxT = t
	}
	return maxT
}

// FinishJoin applies the join tail to exactly-scored candidate pairs:
// filter to positive scores at or above the threshold, order by decreasing
// score with ties broken by (a, b), truncate to k. It mutates pairs and
// returns a slice of it. Join and the router's cross-shard merge share it,
// so a merged result ranks and truncates exactly as a single node would.
func FinishJoin(pairs []JoinPair, k int, threshold float64) []JoinPair {
	kept := pairs[:0]
	for _, p := range pairs {
		if p.Score >= threshold && p.Score > 0 {
			kept = append(kept, p)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Score != kept[j].Score {
			return kept[i].Score > kept[j].Score
		}
		if kept[i].A != kept[j].A {
			return kept[i].A < kept[j].A
		}
		return kept[i].B < kept[j].B
	})
	if k > len(kept) {
		k = len(kept)
	}
	return kept[:k:k]
}

// Join returns the top-k vertex pairs (a < b) with estimated SimRank score
// at least threshold, in decreasing score order with ties broken by (a, b).
// Scores are the same estimates SingleSource produces, bit-identically,
// and the result is exhaustive: every pair the full n x n estimate matrix
// ranks in its top-k above the threshold appears (threshold 0 means every
// pair with a positive estimate). maxCandidates caps the enumerated
// co-located pair set — ErrTooDense reports overflow before memory does.
// The result is bit-identical for every worker count. Cancelling ctx
// abandons the join at the next chunk boundary (workers poll between
// slots during enumeration and between candidates during re-scoring) and
// returns the context's error.
func (ix *Index) Join(ctx context.Context, k int, threshold float64, maxCandidates, workers int) ([]JoinPair, error) {
	if err := CheckJoinArgs(k, threshold, maxCandidates); err != nil {
		return nil, err
	}
	// Depth prune: slots past maxT cannot introduce a pair reaching the
	// threshold.
	maxT := joinDepth(ix.pow, threshold)
	if maxT < 0 || ix.n < 2 {
		return []JoinPair{}, nil
	}

	// Phase 1 (parallel over fingerprints): enumerate co-located pairs into
	// per-worker dedup sets. Grouping a slot by position uses intrusive
	// chains (head/next over vertex ids) — two flat int32 arrays per
	// worker, no per-slot map churn.
	parts := par.ResolveMax(workers, ix.r)
	sets := make([]map[uint64]struct{}, parts)
	var overflow atomic.Bool
	par.Do(parts, func(w int) {
		lo, hi := par.Range(ix.r, parts, w)
		check := par.NewCancelChecker(ctx, 1) // each slot is O(n) work
		set := make(map[uint64]struct{})
		head := make([]int32, ix.n)
		next := make([]int32, ix.n)
		// The slot scan is position-major — entry (v, fp, t) for every v —
		// which a flat materialized store serves by direct indexing. A
		// mapped store instead materializes each fingerprint's prefix
		// positions once (vertex-sequential, so each backing block decodes
		// once per fingerprint), mirroring the shard join's recomputation
		// buffer.
		flat := ix.store.Flat()
		depth := maxT + 1
		var pos []int32 // pos[v*depth+t], only for the mapped path
		if flat == nil {
			pos = make([]int32, ix.n*depth)
		}
		for fp := lo; fp < hi; fp++ {
			if flat == nil {
				if overflow.Load() || check.Stop() != nil {
					return
				}
				ix.store.Prefetch(0, ix.n) // vertex-sequential materialization
				for v := 0; v < ix.n; v++ {
					copy(pos[v*depth:(v+1)*depth], ix.store.Row(v)[fp*ix.k:fp*ix.k+depth])
				}
			}
			for t := 0; t <= maxT; t++ {
				if overflow.Load() || check.Stop() != nil {
					return
				}
				for i := range head {
					head[i] = -1
				}
				alive := false
				for v := 0; v < ix.n; v++ {
					var p int32
					if flat != nil {
						p = flat[(v*ix.r+fp)*ix.k+t]
					} else {
						p = pos[v*depth+t]
					}
					if p < 0 {
						continue
					}
					alive = true
					next[v] = head[p]
					head[p] = int32(v)
				}
				if !alive {
					break // every walker of this fingerprint is dead
				}
				for p := 0; p < ix.n; p++ {
					// The chain holds every walker standing on p, in
					// decreasing vertex id; all pairs within it co-locate
					// here, so all are candidates. Coalesced walks make
					// huge chains the norm on hub graphs — one chain of
					// length g yields g(g-1)/2 pairs — so the cap is
					// enforced per insertion, before memory is committed,
					// not per chain.
					for b := head[p]; b >= 0; b = next[b] {
						for a := next[b]; a >= 0; a = next[a] {
							set[uint64(a)<<32|uint64(b)] = struct{}{}
							if len(set) > maxCandidates {
								overflow.Store(true)
								return
							}
						}
					}
				}
			}
		}
		sets[w] = set
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if overflow.Load() {
		return nil, TooDenseError(threshold, maxCandidates)
	}
	// Merge with the cap enforced as the union grows: per-worker sets each
	// respect the cap, but their union must too — and must fail before it
	// occupies workers-times the promised memory bound.
	merged := sets[0]
	for _, set := range sets[1:] {
		for key := range set {
			merged[key] = struct{}{}
			if len(merged) > maxCandidates {
				return nil, TooDenseError(threshold, maxCandidates)
			}
		}
	}
	keys := make([]uint64, 0, len(merged))
	for key := range merged {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	// Phase 2 (parallel over candidates): exact estimates via the same
	// arithmetic as SingleSource, so scores — and therefore the threshold
	// filter and the final order — match the full estimate matrix bitwise.
	pairs := make([]JoinPair, len(keys))
	parts = par.ResolveMax(workers, len(keys))
	par.Do(parts, func(w int) {
		lo, hi := par.Range(len(keys), parts, w)
		check := par.NewCancelChecker(ctx, cancelCheckTargets)
		for i := lo; i < hi; i++ {
			if check.Stop() != nil {
				return // partial scores are discarded below
			}
			a, b := int(keys[i]>>32), int(keys[i]&0xFFFFFFFF)
			pairs[i] = JoinPair{A: a, B: b, Score: ix.Pair(a, b)}
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	return FinishJoin(pairs, k, threshold), nil
}
