package query

import (
	"context"
	"fmt"
	"sync"

	"oipsr/graph"
	"oipsr/internal/linsr"
)

// ExactTol is the linearized solver's tolerance behind ExactSingleSource:
// the diagonal-correction residual target and the series truncation, so
// exact answers agree with the converged conventional fixed point to well
// under 1e-8.
const ExactTol = 1e-10

// exactState caches the linearized solver the exact query path uses. The
// solver depends only on the attached graph, so it is keyed by (generation,
// graph pointer): any applied edit bumps the generation and the next exact
// query rebuilds. The mutex serializes concurrent lazy builds; once built,
// the solver itself is immutable and safe for concurrent queries.
type exactState struct {
	mu      sync.Mutex
	solver  *linsr.Solver
	scratch *sync.Pool // of *linsr.Scratch for the cached solver
	gen     uint64
	g       *graph.Graph
}

// ExactSingleSource computes row q of the converged SimRank matrix exactly
// (to ExactTol) via the linearized engine: a per-graph diagonal solve the
// first time (or after edits — PrepareExact moves that cost to startup),
// then O(K·m) per query with no n² state. dst follows SingleSourceInto's
// contract: length N() or nil to allocate. Requires an attached graph.
// Cancelling ctx abandons the solve at the next series-step boundary.
//
// Unlike SingleSource's walk estimates, entry q is 1 only up to the solve
// residual, and scores are deterministic — independent of the index seed.
func (ix *Index) ExactSingleSource(ctx context.Context, q int, dst []float64) ([]float64, error) {
	n := ix.wi.N()
	if q < 0 || q >= n {
		return nil, fmt.Errorf("query: vertex %d out of range [0,%d)", q, n)
	}
	if dst != nil && len(dst) != n {
		return nil, fmt.Errorf("query: buffer length %d, want %d", len(dst), n)
	}
	sol, pool, err := ix.exactSolver(ctx, 0)
	if err != nil {
		return nil, err
	}
	sc := pool.Get().(*linsr.Scratch)
	defer pool.Put(sc)
	return sol.SingleSourceScratch(ctx, q, dst, sc)
}

// PrepareExact eagerly runs the diagonal solve ExactSingleSource otherwise
// performs lazily on its first call (or its first call after an edit
// batch), moving that one-time cost out of a request's latency budget. The
// simrankd server calls this at startup under -prewarm-exact.
func (ix *Index) PrepareExact(ctx context.Context, workers int) error {
	_, _, err := ix.exactSolver(ctx, workers)
	return err
}

// ExactStats returns the cached linearized solver's build statistics, and
// whether a solver is currently built for the attached graph's generation.
func (ix *Index) ExactStats() (linsr.Stats, bool) {
	gen := ix.gen.Load()
	ix.exact.mu.Lock()
	defer ix.exact.mu.Unlock()
	if ix.exact.solver == nil || ix.exact.gen != gen || ix.exact.g != ix.g {
		return linsr.Stats{}, false
	}
	return ix.exact.solver.Stats(), true
}

// exactSolver returns the solver for the current (generation, graph),
// building it under the exact-state mutex when missing or stale. Queries
// run under the server's read lock, so gen and g are stable here; the
// mutex only serializes concurrent first builds.
func (ix *Index) exactSolver(ctx context.Context, workers int) (*linsr.Solver, *sync.Pool, error) {
	if ix.g == nil {
		return nil, nil, fmt.Errorf("query: exact queries need the source graph (AttachGraph after Load)")
	}
	gen := ix.gen.Load()
	ix.exact.mu.Lock()
	defer ix.exact.mu.Unlock()
	if ix.exact.solver != nil && ix.exact.gen == gen && ix.exact.g == ix.g {
		return ix.exact.solver, ix.exact.scratch, nil
	}
	sol, err := linsr.New(ctx, ix.g, linsr.Options{C: ix.wi.C(), Tol: ExactTol, Workers: workers})
	if err != nil {
		return nil, nil, err
	}
	ix.exact.solver = sol
	ix.exact.scratch = &sync.Pool{New: func() any { return sol.NewScratch() }}
	ix.exact.gen = gen
	ix.exact.g = ix.g
	return sol, ix.exact.scratch, nil
}
