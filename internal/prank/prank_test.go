package prank

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"oipsr/graph"
	"oipsr/graph/gen"
	"oipsr/internal/naive"
	"oipsr/internal/simmat"
)

func randomGraph(rng *rand.Rand, n, maxM int) *graph.Graph {
	b := graph.NewBuilder(n, 0)
	b.EnsureVertices(n)
	for i := 0; i < rng.Intn(maxM+1); i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return b.MustBuild()
}

// naivePRank is the direct Zhao et al. iteration, the oracle for the
// OIP-shared implementation.
func naivePRank(g *graph.Graph, cin, cout, lambda float64, k int) *simmat.Matrix {
	n := g.NumVertices()
	prev := simmat.NewIdentity(n)
	next := simmat.New(n)
	for iter := 0; iter < k; iter++ {
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a == b {
					next.Set(a, b, 1)
					continue
				}
				inTerm := 0.0
				ia, ib := g.In(a), g.In(b)
				if len(ia) > 0 && len(ib) > 0 {
					sum := 0.0
					for _, i := range ia {
						for _, j := range ib {
							sum += prev.At(i, j)
						}
					}
					inTerm = cin / float64(len(ia)*len(ib)) * sum
				}
				outTerm := 0.0
				oa, ob := g.Out(a), g.Out(b)
				if len(oa) > 0 && len(ob) > 0 {
					sum := 0.0
					for _, i := range oa {
						for _, j := range ob {
							sum += prev.At(i, j)
						}
					}
					outTerm = cout / float64(len(oa)*len(ob)) * sum
				}
				next.Set(a, b, lambda*inTerm+(1-lambda)*outTerm)
			}
		}
		prev, next = next, prev
	}
	return prev
}

// TestMatchesNaivePRank cross-validates the OIP-shared engine against the
// direct iteration on random graphs and random parameters.
func TestMatchesNaivePRank(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		g := randomGraph(rng, n, 4*n)
		cin := 0.3 + 0.5*rng.Float64()
		cout := 0.3 + 0.5*rng.Float64()
		lambda := rng.Float64()
		k := 1 + rng.Intn(4)

		want := naivePRank(g, cin, cout, lambda, k)
		got, _, err := Compute(g, Options{CIn: cin, COut: cout, Lambda: lambda, K: k})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if d := simmat.MaxDiff(got, want); d > 1e-9 {
			t.Logf("seed %d: max diff %g", seed, d)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestLambdaOneIsSimRank: with lambda = 1 the out-link term vanishes and
// P-Rank is exactly SimRank.
func TestLambdaOneIsSimRank(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 15, 50)
	want, err := naive.Compute(g, 0.6, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Compute(g, Options{CIn: 0.6, COut: 0.6, Lambda: 1, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if d := simmat.MaxDiff(got, want); d > 1e-10 {
		t.Errorf("lambda=1 P-Rank differs from SimRank by %g", d)
	}
}

// TestSymmetricGraphCollapses: on a symmetric graph I(v) = O(v), so both
// terms are equal and P-Rank equals SimRank computed at the blended damping
// factor lambda*CIn + (1-lambda)*COut.
func TestSymmetricGraphCollapses(t *testing.T) {
	g := gen.CoauthorGraph(150, 3, 5) // symmetric edges by construction
	cin, cout, lambda := 0.8, 0.4, 0.3
	blend := lambda*cin + (1-lambda)*cout
	want, err := naive.Compute(g, blend, 6)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Compute(g, Options{CIn: cin, COut: cout, Lambda: lambda, K: 6})
	if err != nil {
		t.Fatal(err)
	}
	if d := simmat.MaxDiff(got, want); d > 1e-10 {
		t.Errorf("symmetric-graph P-Rank differs from blended SimRank by %g", d)
	}
}

// TestSharingDoesNotChangeScores: OIP plans are a reorganization.
func TestSharingDoesNotChangeScores(t *testing.T) {
	g := gen.WebGraph(200, 9, 8)
	a, stShared, err := Compute(g, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, stScratch, err := Compute(g, Options{K: 4, DisableSharing: true})
	if err != nil {
		t.Fatal(err)
	}
	if d := simmat.MaxDiff(a, b); d > 1e-10 {
		t.Errorf("sharing changed scores by %g", d)
	}
	if stShared.InnerAdds >= stScratch.InnerAdds {
		t.Errorf("sharing saved nothing: %d vs %d inner adds", stShared.InnerAdds, stScratch.InnerAdds)
	}
}

// TestInvariants: symmetry, range, pinned diagonal on random graphs.
func TestInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := randomGraph(rng, n, 4*n)
		s, _, err := Compute(g, Options{K: 4})
		if err != nil {
			return false
		}
		if s.CheckSymmetric(1e-10) != nil || s.CheckRange(0, 1, 1e-10) != nil {
			return false
		}
		for v := 0; v < n; v++ {
			if s.At(v, v) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestOutLinksMatter: two vertices that share only OUT-links (co-citing,
// never co-cited) get zero SimRank but positive P-Rank — the motivation for
// Penetrating Rank.
func TestOutLinksMatter(t *testing.T) {
	// 1 -> 0, 2 -> 0: vertices 1 and 2 co-cite 0 but have no in-links.
	g := graph.MustFromEdges(3, [][2]int{{1, 0}, {2, 0}})
	sr, err := naive.Compute(g, 0.6, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sr.At(1, 2) != 0 {
		t.Fatalf("SimRank s(1,2) = %g, want 0 (no in-links)", sr.At(1, 2))
	}
	pr, _, err := Compute(g, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if pr.At(1, 2) <= 0 {
		t.Errorf("P-Rank s(1,2) = %g, want > 0 (shared out-link)", pr.At(1, 2))
	}
	// Expected value: 0.5 * C_out * s(0,0) = 0.3 at the first iteration and
	// stable afterwards.
	if math.Abs(pr.At(1, 2)-0.3) > 1e-12 {
		t.Errorf("P-Rank s(1,2) = %g, want 0.3", pr.At(1, 2))
	}
}

// TestEpsDerivesIterations: the blended contraction factor drives the
// default iteration count.
func TestEpsDerivesIterations(t *testing.T) {
	g := graph.MustFromEdges(3, [][2]int{{0, 1}, {0, 2}})
	_, st, err := Compute(g, Options{CIn: 0.8, COut: 0.4, Lambda: 0.5, Eps: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	// Blend = 0.6: smallest K with 0.6^(K+1) <= 1e-3 is 13.
	if st.Iterations != 13 {
		t.Errorf("iterations = %d, want 13", st.Iterations)
	}
}

func TestBadOptions(t *testing.T) {
	g := graph.MustFromEdges(2, [][2]int{{0, 1}})
	if _, _, err := Compute(g, Options{CIn: 1.5}); err == nil {
		t.Error("want error for CIn out of range")
	}
	if _, _, err := Compute(g, Options{Lambda: 2}); err == nil {
		t.Error("want error for lambda > 1")
	}
	if _, _, err := Compute(g, Options{K: -1}); err == nil {
		t.Error("want error for negative K")
	}
	if _, _, err := Compute(g, Options{Eps: 1}); err == nil {
		t.Error("want error for eps = 1")
	}
}
