package query

import (
	"context"
	"fmt"

	"oipsr/internal/par"
)

// Batched queries. Serving traffic rarely arrives one source at a time:
// recommendation backfills, "similar items" widgets and offline audits ask
// about many sources at once. MultiSource and TopKBatch answer a whole
// batch in one shared traversal of the walk index (see
// oipsr/internal/walkindex for the sweep), so cost per source shrinks as
// the batch grows — while every row stays bit-identical to the
// corresponding independent SingleSource/TopK call, for every worker
// count. cmd/simrankd exposes this path as POST /v1/batch.

// checkSources validates every vertex id of a batch.
func (ix *Index) checkSources(sources []int) error {
	n := ix.wi.N()
	for i, q := range sources {
		if q < 0 || q >= n {
			return fmt.Errorf("query: source %d (batch item %d) out of range [0,%d)", q, i, n)
		}
	}
	return nil
}

// MultiSource estimates s(q, v) for every source q in sources and every
// vertex v, returning one dense row per source in batch order; entry
// sources[i] of row i is exactly 1. Rows are bit-identical to independent
// SingleSource calls, for every worker count (1 = serial, anything below 1
// means all CPUs), but the whole batch costs a single traversal of the
// walk index instead of one per source. Duplicate sources are allowed.
// Cancelling ctx abandons the sweep and returns the context's error.
func (ix *Index) MultiSource(ctx context.Context, sources []int, workers int) ([][]float64, error) {
	if err := ix.checkSources(sources); err != nil {
		return nil, err
	}
	return ix.wi.MultiSource(ctx, sources, workers)
}

// TopKBatch answers TopK(q, k, opt) for every source q in sources,
// returning the result lists in batch order. Candidate scoring is one
// shared MultiSource traversal; the optional exact rerank runs per source
// (in parallel across sources, each with its own memo). Every result list
// is bit-identical to the corresponding independent TopK call, for every
// worker count. Cancelling ctx abandons the batch — mid-sweep or between
// rerank candidates — and returns the context's error.
func (ix *Index) TopKBatch(ctx context.Context, sources []int, k int, opt *TopKOptions, workers int) ([][]Ranked, error) {
	n := ix.wi.N()
	if err := ix.checkSources(sources); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("query: top-k size %d < 1", k)
	}
	if k > n-1 {
		k = n - 1
	}
	if opt == nil {
		opt = &TopKOptions{}
	}
	if opt.Rerank && ix.g == nil {
		return nil, fmt.Errorf("query: rerank needs the source graph (AttachGraph after Load)")
	}

	rows, err := ix.wi.MultiSource(ctx, sources, workers)
	if err != nil {
		return nil, err
	}
	out := make([][]Ranked, len(sources))
	parts := par.ResolveMax(workers, len(sources))
	par.Do(parts, func(w int) {
		lo, hi := par.Range(len(sources), parts, w)
		for i := lo; i < hi; i++ {
			// rankFromScores fails only on cancellation; workers bail and
			// the partial output is discarded by the ctx check below.
			res, err := ix.rankFromScores(ctx, rows[i], sources[i], k, opt)
			if err != nil {
				return
			}
			out[i] = res
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
