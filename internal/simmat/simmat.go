// Package simmat provides the score-matrix storage shared by every SimRank
// engine in this repository, along with the comparison utilities the tests
// and experiments use (max-norm distance, symmetry and range checks).
//
// Two backends implement the same logical n x n matrix:
//
//   - Matrix is the dense row-major backend. All-pairs SimRank inherently
//     produces Theta(n^2) scores; engines hold two such matrices (previous
//     and next iterate). Rows are the natural unit of work — s_k(a, *) — so
//     the matrix exposes zero-copy row access.
//   - Tiled (tiled.go) stores the upper triangle as a grid of B x B tiles
//     with a bounded-memory working set and optional spill-to-disk, for runs
//     where two dense matrices do not fit in RAM.
//
// # Canonical symmetry
//
// SimRank is symmetric by definition, but the row-oriented engines compute
// s(a,b) and s(b,a) with differently-associated floating-point sums, so the
// two roundings can differ in the last bits. To give both backends one
// well-defined answer, every sweep engine canonicalizes each iterate: the
// value computed while emitting row min(a,b) is authoritative, and the lower
// triangle mirrors it (MirrorUpper for the dense backend; the tiled backend
// stores only the canonical triangle). This is what makes tiled output
// bit-identical to dense output for every block size and worker count.
package simmat

import (
	"fmt"
	"math"

	"oipsr/internal/par"
)

// Source is the read-only view of a score matrix shared by the dense and
// tiled backends. Row assembly goes through RowInto so callers work
// identically against zero-copy dense rows and tile-scattered storage.
type Source interface {
	// N returns the dimension.
	N() int
	// At returns the score at (i, j).
	At(i, j int) float64
	// RowInto assembles logical row i into dst (len >= n).
	RowInto(i int, dst []float64) error
	// Bytes reports the logical storage footprint of the matrix.
	Bytes() int64
}

// Matrix is a dense row-major n x n score matrix.
type Matrix struct {
	n    int
	data []float64
}

var _ Source = (*Matrix)(nil)

// New returns an all-zero n x n matrix.
func New(n int) *Matrix {
	return &Matrix{n: n, data: make([]float64, n*n)}
}

// NewIdentity returns the n x n identity, the s_0 of every iterative model.
func NewIdentity(n int) *Matrix {
	m := New(n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// N returns the dimension.
func (m *Matrix) N() int { return m.n }

// At returns m[i,j].
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.n+j] }

// Set assigns m[i,j] = v.
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.n+j] = v }

// Add increments m[i,j] by v.
func (m *Matrix) Add(i, j int, v float64) { m.data[i*m.n+j] += v }

// Row returns row i as a slice aliasing internal storage.
func (m *Matrix) Row(i int) []float64 { return m.data[i*m.n : (i+1)*m.n] }

// RowInto copies row i into dst, satisfying Source. Dense callers on hot
// paths should prefer the zero-copy Row.
func (m *Matrix) RowInto(i int, dst []float64) error {
	copy(dst, m.Row(i))
	return nil
}

// Data returns the backing slice (row-major). Intended for engines' inner
// loops; external callers should prefer At/Row.
func (m *Matrix) Data() []float64 { return m.data }

// MirrorUpper copies the upper triangle onto the lower one, making the
// matrix exactly symmetric with the row-min(a,b) value as the canonical
// score of each pair (see the package comment). The pass is pure copies —
// no arithmetic — so any work split is bit-identical; workers < 1 means
// runtime.GOMAXPROCS(0).
func (m *Matrix) MirrorUpper(workers int) {
	n := m.n
	workers = par.ResolveMax(workers, n)
	par.Do(workers, func(w int) {
		lo, hi := par.Range(n, workers, w)
		for i := lo; i < hi; i++ {
			row := m.data[i*n : i*n+i]
			for j := range row {
				row[j] = m.data[j*n+i]
			}
		}
	})
}

// Fill sets every entry to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.data {
		m.data[i] = v
	}
}

// Reset zeroes the matrix.
func (m *Matrix) Reset() { m.Fill(0) }

// Copy returns a deep copy.
func (m *Matrix) Copy() *Matrix {
	c := New(m.n)
	copy(c.data, m.data)
	return c
}

// Bytes reports the memory footprint of the backing array.
func (m *Matrix) Bytes() int64 { return int64(len(m.data)) * 8 }

// StateBytes reports the memory footprint of `matrices` dense n x n float64
// score matrices. It is the single definition of the n^2 "state memory"
// every engine reports, so per-engine accounting cannot drift.
func StateBytes(n, matrices int) int64 {
	return int64(matrices) * int64(n) * int64(n) * 8
}

// MaxDiff returns max_{i,j} |a[i,j] - b[i,j]|, the max-norm distance used by
// every convergence statement in the paper (Proposition 7 uses the max
// norm explicitly).
func MaxDiff(a, b *Matrix) float64 {
	if a.n != b.n {
		panic(fmt.Sprintf("simmat: dimension mismatch %d vs %d", a.n, b.n))
	}
	d := 0.0
	for i := range a.data {
		if x := math.Abs(a.data[i] - b.data[i]); x > d {
			d = x
		}
	}
	return d
}

// MaxDiffWorkers is MaxDiff computed by a pool of workers over contiguous
// blocks of the backing arrays. Max is order-independent, so the result is
// exactly MaxDiff for every worker count (workers < 1 = GOMAXPROCS).
func MaxDiffWorkers(a, b *Matrix, workers int) float64 {
	if a.n != b.n {
		panic(fmt.Sprintf("simmat: dimension mismatch %d vs %d", a.n, b.n))
	}
	workers = par.Resolve(workers)
	if workers == 1 {
		return MaxDiff(a, b)
	}
	local := make([]float64, workers)
	par.Do(workers, func(w int) {
		lo, hi := par.Range(len(a.data), workers, w)
		d := 0.0
		for i := lo; i < hi; i++ {
			if x := math.Abs(a.data[i] - b.data[i]); x > d {
				d = x
			}
		}
		local[w] = d
	})
	d := 0.0
	for _, x := range local {
		if x > d {
			d = x
		}
	}
	return d
}

// MaxDiffSource is MaxDiff over any pair of backends: rows are assembled
// through the Source interface and compared cell by cell. Max is
// order-independent, so for dense inputs the result equals MaxDiff exactly.
func MaxDiffSource(a, b Source) (float64, error) {
	if a.N() != b.N() {
		return 0, fmt.Errorf("simmat: dimension mismatch %d vs %d", a.N(), b.N())
	}
	n := a.N()
	ra, rb := make([]float64, n), make([]float64, n)
	d := 0.0
	for i := 0; i < n; i++ {
		if err := a.RowInto(i, ra); err != nil {
			return 0, err
		}
		if err := b.RowInto(i, rb); err != nil {
			return 0, err
		}
		for j := range ra {
			if x := math.Abs(ra[j] - rb[j]); x > d {
				d = x
			}
		}
	}
	return d, nil
}

// CheckSymmetric returns an error if |m[i,j] - m[j,i]| > tol anywhere.
// SimRank is symmetric by definition; engines must preserve this.
func (m *Matrix) CheckSymmetric(tol float64) error {
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return fmt.Errorf("simmat: asymmetry at (%d,%d): %g vs %g", i, j, m.At(i, j), m.At(j, i))
			}
		}
	}
	return nil
}

// CheckRange returns an error if any entry falls outside [lo-tol, hi+tol].
// Conventional SimRank scores lie in [0, 1].
func (m *Matrix) CheckRange(lo, hi, tol float64) error {
	for i, v := range m.data {
		if v < lo-tol || v > hi+tol {
			return fmt.Errorf("simmat: entry (%d,%d) = %g outside [%g,%g]", i/m.n, i%m.n, v, lo, hi)
		}
	}
	return nil
}
