package walkindex

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
)

// On-disk format (all integers little-endian):
//
//	offset  size  field
//	0       8     magic "SRWKIDX\x00"
//	8       4     format version (currently 1)
//	12      8     n   (vertices, int64)
//	20      8     k   (horizon, int64)
//	28      8     r   (fingerprints, int64)
//	36      8     c   (damping factor, IEEE-754 bits)
//	44      8     seed (int64)
//	52      4*n*r*k   paths ([]int32)
//	...     4     CRC-32 (IEEE) of every preceding byte
//
// The trailing checksum makes truncation and bit corruption detectable
// without trusting the payload; the version field rejects indexes written
// by a future (or past, incompatible) format revision.

// FormatVersion is the current on-disk format revision.
const FormatVersion = 1

var magic = [8]byte{'S', 'R', 'W', 'K', 'I', 'D', 'X', 0}

const headerSize = 8 + 4 + 8 + 8 + 8 + 8 + 8

// Sentinel errors returned by Load (possibly wrapped with detail).
var (
	ErrBadMagic = errors.New("walkindex: not a walk-index file (bad magic)")
	ErrVersion  = errors.New("walkindex: unsupported format version")
	ErrChecksum = errors.New("walkindex: checksum mismatch (corrupted index)")
)

// maxElems caps n*r*k at load time so a corrupted header cannot trigger an
// absurd allocation before the checksum is ever seen.
const maxElems = int64(1) << 33

// maxHorizon caps k on its own: initPow allocates k floats even when a
// forged header claims n = 0 (zero payload elements), so the product guard
// alone does not bound it. Real horizons are the iteration counts of the
// Lizorkin bound — double digits.
const maxHorizon = int64(1) << 20

// Save writes the index to w in the versioned binary format.
func (ix *Index) Save(w io.Writer) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriterSize(io.MultiWriter(w, crc), 1<<16)

	var hdr [headerSize]byte
	copy(hdr[:8], magic[:])
	binary.LittleEndian.PutUint32(hdr[8:], FormatVersion)
	binary.LittleEndian.PutUint64(hdr[12:], uint64(int64(ix.n)))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(int64(ix.k)))
	binary.LittleEndian.PutUint64(hdr[28:], uint64(int64(ix.r)))
	binary.LittleEndian.PutUint64(hdr[36:], math.Float64bits(ix.c))
	binary.LittleEndian.PutUint64(hdr[44:], uint64(ix.seed))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("walkindex: writing header: %w", err)
	}

	var buf [1 << 14]byte
	for off := 0; off < len(ix.paths); {
		nb := 0
		for off < len(ix.paths) && nb+4 <= len(buf) {
			binary.LittleEndian.PutUint32(buf[nb:], uint32(ix.paths[off]))
			nb += 4
			off++
		}
		if _, err := bw.Write(buf[:nb]); err != nil {
			return fmt.Errorf("walkindex: writing paths: %w", err)
		}
	}
	// Flush payload into the CRC before sealing it, then append the sum
	// directly (the checksum is not part of its own coverage).
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("walkindex: writing paths: %w", err)
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("walkindex: writing checksum: %w", err)
	}
	return nil
}

// Load reads an index written by Save. It rejects files with a wrong magic,
// an unsupported format version, a truncated payload, or a checksum
// mismatch.
func Load(r io.Reader) (*Index, error) {
	// The CRC must cover exactly the bytes logically consumed (a tee under
	// bufio would also hash read-ahead, including the trailing checksum),
	// so readFull feeds each chunk to the hash by hand.
	crc := crc32.NewIEEE()
	br := bufio.NewReaderSize(r, 1<<16)

	var hdr [headerSize]byte
	if err := readFull(br, crc, hdr[:], "header"); err != nil {
		return nil, err
	}
	if [8]byte(hdr[:8]) != magic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != FormatVersion {
		return nil, fmt.Errorf("%w: file has version %d, this build reads version %d", ErrVersion, v, FormatVersion)
	}
	n := int64(binary.LittleEndian.Uint64(hdr[12:]))
	k := int64(binary.LittleEndian.Uint64(hdr[20:]))
	fps := int64(binary.LittleEndian.Uint64(hdr[28:]))
	c := math.Float64frombits(binary.LittleEndian.Uint64(hdr[36:]))
	seed := int64(binary.LittleEndian.Uint64(hdr[44:]))
	if n < 0 || k < 1 || fps < 1 {
		return nil, fmt.Errorf("walkindex: invalid header (n=%d, k=%d, r=%d)", n, k, fps)
	}
	if k > maxHorizon {
		return nil, fmt.Errorf("walkindex: implausible walk horizon k = %d", k)
	}
	if !(c > 0 && c < 1) {
		return nil, fmt.Errorf("walkindex: invalid header damping factor %v", c)
	}
	elems := n * fps * k
	if n > 0 && (elems/n/fps != k || elems > maxElems) {
		return nil, fmt.Errorf("walkindex: implausible index size n*r*k = %d*%d*%d", n, fps, k)
	}

	// The payload array grows with the bytes actually read instead of being
	// sized from the header up front: a forged header claiming a huge n*r*k
	// on a short stream fails with a truncation error after a proportional
	// allocation, not an absurd up-front one.
	paths := make([]int32, 0, min(elems, 1<<16))
	var buf [1 << 14]byte
	for int64(len(paths)) < elems {
		nb := len(buf)
		if rem := elems - int64(len(paths)); rem < int64(len(buf)/4) {
			nb = int(rem) * 4
		}
		if err := readFull(br, crc, buf[:nb], "paths"); err != nil {
			return nil, err
		}
		for b := 0; b < nb; b += 4 {
			paths = append(paths, int32(binary.LittleEndian.Uint32(buf[b:])))
		}
	}
	ix := &Index{n: int(n), k: int(k), r: int(fps), c: c, seed: seed, paths: paths}
	ix.initPow()

	// The stored checksum covers everything read so far; the trailing 4
	// bytes are not part of their own coverage.
	want := crc.Sum32()
	var sum [4]byte
	if err := readFull(br, nil, sum[:], "checksum"); err != nil {
		return nil, err
	}
	if got := binary.LittleEndian.Uint32(sum[:]); got != want {
		return nil, fmt.Errorf("%w: stored %08x, computed %08x", ErrChecksum, got, want)
	}
	for i, p := range ix.paths {
		if p < -1 || int64(p) >= n {
			return nil, fmt.Errorf("walkindex: path entry %d out of range: %d", i, p)
		}
	}
	return ix, nil
}

// readFull is io.ReadFull with a section-labelled truncation error; the
// bytes read are fed to crc when it is non-nil (nil for the stored
// checksum itself, which is not part of its own coverage).
func readFull(br *bufio.Reader, crc hash.Hash32, p []byte, section string) error {
	if _, err := io.ReadFull(br, p); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return fmt.Errorf("walkindex: truncated index file (short read in %s): %w", section, io.ErrUnexpectedEOF)
		}
		return fmt.Errorf("walkindex: reading %s: %w", section, err)
	}
	if crc != nil {
		crc.Write(p)
	}
	return nil
}
