package walkindex

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"oipsr/graph"
	"oipsr/internal/par"
)

// ErrTooLarge reports an index whose walk count exceeds what incremental
// maintenance supports — a capacity limit of this build, not a caller
// mistake (servers should map it to a 5xx, not a 4xx).
var ErrTooLarge = errors.New("walkindex: index too large for incremental updates")

// Incremental maintenance under graph edits.
//
// The hash-driven coupling makes repair local: the in-edge a walker takes at
// step t is a pure function of (seed, fingerprint, step, current vertex), so
// a walk's path can only change if the walk occupies a vertex whose
// in-neighbor list changed — and then only from the first such occupancy
// onward. Update therefore recomputes just the suffixes of affected walks,
// and the repaired index is bit-identical to a fresh Build on the edited
// graph by construction (the untouched prefixes contain no dirty vertex, so
// every hash argument along them is unchanged).
//
// Affected walks are found through an inverted visit index: for every
// vertex x, a posting list of (walk, first time the walk occupies x).
// Occupancy time 0 is the walk's start vertex; time t in [1, K] is the
// stored position after step t. The visit index is built lazily on the
// first Update (in parallel over vertices) and patched incrementally as
// walks are repaired, so a long stream of small edit batches never rescans
// the whole path store.
//
// The machinery operates on a storeView shared by the full Index (base 0,
// width n) and a ShardIndex (base lo, width hi-lo), so a sharded
// deployment repairs each shard's walks with exactly the code the
// single-node daemon runs — the union of per-shard repairs is the
// single-node repair. Reads and writes route through the PathStore seam:
// on a mapped store the repair mutates decoded overlay blocks, and Update
// flushes the dirty blocks back to the index file afterwards (mapped.go).

// visitPosting says a walk's path occupies some vertex, first at the given
// time. Walk ids are store-local — (v-base)*R + fp — bounded by maxWalks.
type visitPosting struct {
	walk int32
	time uint16
}

// maxWalks bounds width*R so walk ids fit in the posting's int32.
const maxWalks = math.MaxInt32

// rawVisit is a posting tagged with its vertex, the per-worker scratch
// format of buildVisits and the patch format of repairStore.
type rawVisit struct {
	x int32
	p visitPosting
}

// visitPair is one (vertex, first occupancy time) entry of a single walk's
// visit list — the walk-side view of a posting.
type visitPair struct {
	x    int32
	time uint16
}

// lookupVisit returns the first-visit time of x in one walk's visit list.
func lookupVisit(list []visitPair, x int32) (uint16, bool) {
	for _, p := range list {
		if p.x == x {
			return p.time, true
		}
	}
	return 0, false
}

// storeView is the view of a walk store the repair machinery operates on:
// a PathStore covering `width` start vertices beginning at global id
// `base`, plus the inverted visit index over those walks (indexed by
// global vertex id — walk positions span the whole graph regardless of
// which shard owns the walk).
type storeView struct {
	store   PathStore
	visits  [][]visitPosting
	k, r    int
	base    int // global id of the first stored start vertex
	width   int // stored start vertices
	nGlobal int // graph vertex count (visit-index width)
	seed    int64
}

func (ix *Index) repairView() storeView {
	return storeView{
		store: ix.store, visits: ix.visits,
		k: ix.k, r: ix.r, base: 0, width: ix.n, nGlobal: ix.n, seed: ix.seed,
	}
}

// flushStore persists pending repairs when the backend keeps one (a mapped
// store's dirty-block overlay); dense stores have nothing to flush. On
// error the in-memory index already holds the repair — queries stay
// consistent, and a later successful Update persists both batches — but
// the backing file does not.
func flushStore(st PathStore) error {
	if f, ok := st.(interface{ flush() error }); ok {
		return f.flush()
	}
	return nil
}

// PrepareUpdate builds the inverted visit index eagerly (it is otherwise
// built lazily by the first Update call). Workers follow the Build
// convention: 1 means serial, below 1 means all CPUs. It returns an error
// when the index is too large for incremental maintenance.
func (ix *Index) PrepareUpdate(workers int) error {
	if ix.visits != nil {
		return nil
	}
	if int64(ix.n)*int64(ix.r) > maxWalks {
		return fmt.Errorf("%w: n*R = %d*%d exceeds %d walks", ErrTooLarge, ix.n, ix.r, maxWalks)
	}
	ix.visits = buildVisits(ix.repairView(), workers)
	return nil
}

// buildVisits scans every stored path once, in parallel over vertices, and
// assembles per-vertex posting lists holding each walk's first occupancy.
func buildVisits(st storeView, workers int) [][]visitPosting {
	parts := par.ResolveMax(workers, st.width)
	bufs := make([][]rawVisit, parts)
	par.Do(parts, func(w int) {
		lo, hi := par.Range(st.width, parts, w)
		var buf []rawVisit
		scratch := make([]visitPair, 0, st.k+1)
		for v := lo; v < hi; v++ { // store-local start vertex
			for fp := 0; fp < st.r; fp++ {
				walk := int32(v*st.r + fp)
				scratch = firstVisitsPath(int32(st.base+v), st.pathRow(walk), scratch[:0])
				for _, p := range scratch {
					buf = append(buf, rawVisit{x: p.x, p: visitPosting{walk: walk, time: p.time}})
				}
			}
		}
		bufs[w] = buf
	})

	counts := make([]int, st.nGlobal)
	total := 0
	for _, buf := range bufs {
		for _, rv := range buf {
			counts[rv.x]++
		}
		total += len(buf)
	}
	// One flat allocation sliced per vertex; later patches that grow a list
	// reallocate just that vertex's slice.
	flat := make([]visitPosting, total)
	visits := make([][]visitPosting, st.nGlobal)
	off := 0
	for x, c := range counts {
		visits[x] = flat[off : off : off+c]
		off += c
	}
	for _, buf := range bufs {
		for _, rv := range buf {
			visits[rv.x] = append(visits[rv.x], rv.p)
		}
	}
	return visits
}

// pathRow returns the stored path of a store-local walk id, read-only.
func (st storeView) pathRow(walk int32) []int32 {
	off := (int(walk) % st.r) * st.k
	return st.store.Row(int(walk) / st.r)[off : off+st.k]
}

// mutablePathRow returns the stored path of a store-local walk id for
// in-place repair (routed through MutableRow so a mapped store marks the
// containing block dirty).
func (st storeView) mutablePathRow(walk int32) []int32 {
	off := (int(walk) % st.r) * st.k
	return st.store.MutableRow(int(walk) / st.r)[off : off+st.k]
}

// firstVisitsPath appends (vertex, first occupancy time) pairs for the walk
// starting at `start` with stored path `path` to dst and returns it: time 0
// at the start vertex, time t+1 at path entry t, stopping at death. Pairs
// are appended in occupancy order, so times are strictly increasing. The
// list is at most K+1 long and K is small, so the linear dedup scan beats a
// map by a wide margin.
func firstVisitsPath(start int32, path []int32, dst []visitPair) []visitPair {
	dst = append(dst, visitPair{x: start, time: 0})
	for t, p := range path {
		if p < 0 {
			break
		}
		seen := false
		for _, d := range dst {
			if d.x == p {
				seen = true
				break
			}
		}
		if !seen {
			dst = append(dst, visitPair{x: p, time: uint16(t + 1)})
		}
	}
	return dst
}

// Update repairs the index in place after the graph it was built on changed
// into g. dirty must list every vertex whose in-neighbor list differs
// between the two graphs (graph.ApplyEdits reports exactly this set as
// EditSummary.DirtyIn); listing extra vertices is harmless, omitting a
// changed one silently corrupts the repair. The vertex count must be
// unchanged.
//
// Update recomputes only the suffixes of walks that occupy a dirty vertex
// before the horizon, so its cost scales with the number of affected walks
// rather than n·R·K; the result is bit-identical to Build(g) with the same
// options, for every worker count. It returns the number of walks repaired.
//
// Update must not run concurrently with queries or other Updates; callers
// serving live traffic serialize it behind a write lock (see cmd/simrankd).
func (ix *Index) Update(g *graph.Graph, dirty []int, workers int) (int, error) {
	if g.NumVertices() != ix.n {
		return 0, fmt.Errorf("walkindex: updated graph has %d vertices, index was built on %d", g.NumVertices(), ix.n)
	}
	for _, d := range dirty {
		if d < 0 || d >= ix.n {
			return 0, fmt.Errorf("walkindex: dirty vertex %d out of range [0,%d)", d, ix.n)
		}
	}
	if err := ix.PrepareUpdate(workers); err != nil {
		return 0, err
	}
	repaired := repairStore(g, ix.repairView(), dirty, workers)
	if err := flushStore(ix.store); err != nil {
		return repaired, err
	}
	return repaired, nil
}

// repairStore recomputes the suffixes of stored walks that occupy a dirty
// vertex before the horizon and patches the visit index, returning the
// number of walks repaired. The caller validates dirty and has built
// st.visits.
func repairStore(g *graph.Graph, st storeView, dirty []int, workers int) int {
	// A walk is affected iff it occupies some dirty vertex at a time from
	// which a further move is made, i.e. before the horizon; repair starts
	// at the earliest such occupancy.
	firstDirty := make(map[int32]uint16)
	for _, d := range dirty {
		for _, p := range st.visits[d] {
			if int(p.time) >= st.k {
				continue // occupied only at the final position: no move follows
			}
			if cur, ok := firstDirty[p.walk]; !ok || p.time < cur {
				firstDirty[p.walk] = p.time
			}
		}
	}
	if len(firstDirty) == 0 {
		return 0
	}
	walks := make([]int32, 0, len(firstDirty))
	for w := range firstDirty {
		walks = append(walks, w)
	}
	sort.Slice(walks, func(i, j int) bool { return walks[i] < walks[j] })

	// Phase 1 (parallel over affected walks, disjoint path rows): recompute
	// each walk's suffix on the new graph and collect posting diffs.
	hseed := splitmix64(uint64(st.seed))
	parts := par.ResolveMax(workers, len(walks))
	removals := make([][]rawVisit, parts) // stale postings (time ignored)
	additions := make([][]rawVisit, parts)
	par.Do(parts, func(w int) {
		lo, hi := par.Range(len(walks), parts, w)
		oldFV := make([]visitPair, 0, st.k+1)
		newFV := make([]visitPair, 0, st.k+1)
		for _, walk := range walks[lo:hi] {
			v, fp := st.base+int(walk)/st.r, int(walk)%st.r
			row := st.mutablePathRow(walk)
			oldFV = firstVisitsPath(int32(v), row, oldFV[:0])

			// Replay from the first dirty occupancy; the prefix is valid
			// for the new graph because it never stands on a dirty vertex.
			tau := int(firstDirty[walk])
			p := v
			if tau > 0 {
				p = int(row[tau-1])
			}
			walkFrom(g, hseed, fp, tau, p, row)

			newFV = firstVisitsPath(int32(v), row, newFV[:0])
			// The visit lists are short (≤ K+1), so the O(K²) nested
			// membership scans stay cheaper than building maps.
			for _, o := range oldFV {
				nt, ok := lookupVisit(newFV, o.x)
				if !ok || nt != o.time {
					removals[w] = append(removals[w], rawVisit{x: o.x, p: visitPosting{walk: walk}})
				}
			}
			for _, nv := range newFV {
				ot, ok := lookupVisit(oldFV, nv.x)
				if !ok || ot != nv.time {
					additions[w] = append(additions[w], rawVisit{x: nv.x, p: visitPosting{walk: walk, time: nv.time}})
				}
			}
		}
	})

	// Phase 2 (serial): patch the posting lists, removals before additions
	// so a changed first-visit time replaces its stale posting. Stale walks
	// are grouped per vertex and sorted once, so the filter pass does a
	// binary search per posting instead of map lookups.
	rmByVertex := map[int32][]int32{}
	for _, buf := range removals {
		for _, rv := range buf {
			rmByVertex[rv.x] = append(rmByVertex[rv.x], rv.p.walk)
		}
	}
	for x, stale := range rmByVertex {
		sort.Slice(stale, func(i, j int) bool { return stale[i] < stale[j] })
		keep := st.visits[x][:0]
		for _, p := range st.visits[x] {
			i := sort.Search(len(stale), func(i int) bool { return stale[i] >= p.walk })
			if i < len(stale) && stale[i] == p.walk {
				continue
			}
			keep = append(keep, p)
		}
		st.visits[x] = keep
	}
	for _, buf := range additions {
		for _, rv := range buf {
			st.visits[rv.x] = append(st.visits[rv.x], rv.p)
		}
	}
	return len(walks)
}
