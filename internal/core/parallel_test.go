package core

import (
	"math/rand"
	"testing"

	"oipsr/graph"
	"oipsr/graph/gen"
	"oipsr/internal/partition"
	"oipsr/internal/simmat"
)

// parallelWorkloads are the graphs every parallel-vs-serial equivalence test
// runs over: the paper's example, dense-ish random graphs, and structured
// generator output with real chain sharing.
func parallelWorkloads(t testing.TB) map[string]*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	return map[string]*graph.Graph{
		"paper":    paperGraph(t),
		"random":   randomGraph(rng, 40, 200),
		"web":      gen.WebGraph(150, 8, 3),
		"citation": gen.CitationGraph(120, 4, 5),
	}
}

// TestParallelSweepBitIdentical: multiple ping-ponged sweeps through a
// 4-worker pool produce byte-for-byte the same matrix and the same
// operation counts as the serial sweeper.
func TestParallelSweepBitIdentical(t *testing.T) {
	for name, g := range parallelWorkloads(t) {
		plan, err := partition.BuildPlan(g, partition.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		n := g.NumVertices()
		for _, workers := range []int{2, 4, 7} {
			serial := NewSweeper(g, plan, false)
			pool := NewParallelSweeper(g, plan, false, workers)

			sa, sb := simmat.NewIdentity(n), simmat.New(n)
			pa, pb := simmat.NewIdentity(n), simmat.New(n)
			for k := 0; k < 4; k++ {
				serial.Sweep(sa, sb, 0.6, true)
				pool.Sweep(pa, pb, 0.6, true)
				sa, sb = sb, sa
				pa, pb = pb, pa
			}
			if d := simmat.MaxDiff(sa, pa); d != 0 {
				t.Errorf("%s workers=%d: matrices differ by %g, want bit-identical", name, workers, d)
			}
			if serial.Stats() != pool.Stats() {
				t.Errorf("%s workers=%d: stats diverged: serial %+v pool %+v",
					name, workers, serial.Stats(), pool.Stats())
			}
		}
	}
}

// TestParallelComputeBitIdentical: the OIP-SR engine end-to-end, Workers 1
// vs N, including the StopDiff early-stopping path (which exercises the
// parallel MaxDiff).
func TestParallelComputeBitIdentical(t *testing.T) {
	for name, g := range parallelWorkloads(t) {
		for _, opt := range []Options{
			{C: 0.6, K: 5},
			{C: 0.8, K: 30, StopDiff: 1e-4},
			{C: 0.6, K: 5, DisableOuter: true},
		} {
			serialOpt, poolOpt := opt, opt
			serialOpt.Workers = 1
			poolOpt.Workers = 4
			want, wst, err := Compute(g, serialOpt)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			got, gst, err := Compute(g, poolOpt)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if d := simmat.MaxDiff(want, got); d != 0 {
				t.Errorf("%s %+v: scores differ by %g, want bit-identical", name, opt, d)
			}
			if wst.InnerAdds != gst.InnerAdds || wst.OuterAdds != gst.OuterAdds {
				t.Errorf("%s %+v: add counts diverged: serial (%d,%d) pool (%d,%d)",
					name, opt, wst.InnerAdds, wst.OuterAdds, gst.InnerAdds, gst.OuterAdds)
			}
			if wst.Iterations != gst.Iterations || wst.FinalDiff != gst.FinalDiff {
				t.Errorf("%s %+v: stopping diverged: serial (%d,%g) pool (%d,%g)",
					name, opt, wst.Iterations, wst.FinalDiff, gst.Iterations, gst.FinalDiff)
			}
		}
	}
}

// TestScheduleCoversChains: the LPT scheduler assigns every chain exactly
// once, never invents work, and is deterministic.
func TestScheduleCoversChains(t *testing.T) {
	g := gen.WebGraph(200, 9, 11)
	plan, err := partition.BuildPlan(g, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8} {
		seen := map[int]int{}
		sched := schedule(plan.Chains, workers)
		if len(sched) != workers {
			t.Fatalf("workers=%d: %d buckets", workers, len(sched))
		}
		for _, bucket := range sched {
			for _, ch := range bucket {
				seen[ch.Start]++
			}
		}
		if len(seen) != len(plan.Chains) {
			t.Errorf("workers=%d: %d distinct chains scheduled, want %d", workers, len(seen), len(plan.Chains))
		}
		for start, cnt := range seen {
			if cnt != 1 {
				t.Errorf("workers=%d: chain at %d scheduled %d times", workers, start, cnt)
			}
		}
		again := schedule(plan.Chains, workers)
		for w := range sched {
			if len(sched[w]) != len(again[w]) {
				t.Fatalf("workers=%d: scheduling is not deterministic", workers)
			}
			for i := range sched[w] {
				if sched[w][i] != again[w][i] {
					t.Fatalf("workers=%d: scheduling is not deterministic", workers)
				}
			}
		}
	}
}

// TestParallelSweeperCapsWorkers: the pool never exceeds the chain count,
// and worker counts below 1 resolve to at least one worker.
func TestParallelSweeperCapsWorkers(t *testing.T) {
	g := paperGraph(t)
	plan, err := partition.BuildPlan(g, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sw := NewParallelSweeper(g, plan, false, 1000)
	if sw.Workers() > len(plan.Chains) {
		t.Errorf("pool size %d exceeds chain count %d", sw.Workers(), len(plan.Chains))
	}
	if NewParallelSweeper(g, plan, false, -1).Workers() < 1 {
		t.Error("negative worker request resolved below 1")
	}
}

// BenchmarkSweepOnly measures the sweep phase alone (plan prebuilt) across
// pool sizes, the purest view of chain-level scaling.
func BenchmarkSweepOnly(b *testing.B) {
	g := gen.WebGraph(2000, 11, 1)
	plan, err := partition.BuildPlan(g, partition.Options{})
	if err != nil {
		b.Fatal(err)
	}
	n := g.NumVertices()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "workers=1", 2: "workers=2", 4: "workers=4", 8: "workers=8"}[workers], func(b *testing.B) {
			sw := NewParallelSweeper(g, plan, false, workers)
			prev, next := simmat.NewIdentity(n), simmat.New(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sw.Sweep(prev, next, 0.6, true)
				prev, next = next, prev
			}
		})
	}
}
