package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func TestDenseBasics(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 4)
	if m.At(1, 2) != 4 || m.Rows() != 2 || m.Cols() != 3 {
		t.Fatal("basic accessors broken")
	}
	tr := m.T()
	if tr.Rows() != 3 || tr.At(2, 1) != 4 {
		t.Error("transpose broken")
	}
	c := m.Copy()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Error("Copy shares storage")
	}
	if m.Bytes() != 48 {
		t.Errorf("Bytes = %d, want 48", m.Bytes())
	}
}

func TestMulOracle(t *testing.T) {
	a := NewDense(2, 3)
	b := NewDense(3, 2)
	// a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
	vals := []float64{1, 2, 3, 4, 5, 6}
	copy(a.data, vals)
	copy(b.data, []float64{7, 8, 9, 10, 11, 12})
	c := Mul(a, b)
	want := [][]float64{{58, 64}, {139, 154}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("c[%d,%d] = %g, want %g", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("want panic for dimension mismatch")
		}
	}()
	Mul(a, a)
}

func TestScaleAddIdentity(t *testing.T) {
	i3 := Identity(3)
	if i3.At(1, 1) != 1 || i3.At(0, 1) != 0 {
		t.Fatal("Identity broken")
	}
	m := Identity(3).Scale(2)
	m.AddInPlace(Identity(3))
	if m.At(2, 2) != 3 {
		t.Error("Scale/AddInPlace broken")
	}
	if MaxAbsDiff(Identity(2), Identity(2)) != 0 {
		t.Error("MaxAbsDiff of equal matrices must be 0")
	}
}

// TestThinQRProperties: Q has orthonormal columns, R is upper triangular,
// and Q*R reconstructs the input.
func TestThinQRProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(20)
		k := 1 + rng.Intn(m)
		a := randomDense(rng, m, k)
		q, r := ThinQR(a)

		// Orthonormal columns: Q^T Q = I.
		qtq := Mul(q.T(), q)
		if MaxAbsDiff(qtq, Identity(k)) > 1e-10 {
			return false
		}
		// R upper triangular.
		for i := 1; i < k; i++ {
			for j := 0; j < i; j++ {
				if math.Abs(r.At(i, j)) > 1e-12 {
					return false
				}
			}
		}
		// Reconstruction.
		return MaxAbsDiff(Mul(q, r), a) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestThinQRRankDeficient(t *testing.T) {
	// Two identical columns: QR must still produce orthonormal Q and
	// reconstruct the input.
	a := NewDense(4, 2)
	for i := 0; i < 4; i++ {
		a.Set(i, 0, float64(i+1))
		a.Set(i, 1, float64(i+1))
	}
	q, r := ThinQR(a)
	if MaxAbsDiff(Mul(q, r), a) > 1e-10 {
		t.Error("rank-deficient reconstruction failed")
	}
}

func TestThinQRPanicsWide(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for wide input")
		}
	}()
	ThinQR(NewDense(2, 3))
}

// TestSymEigKnown: eigenvalues of [[2,1],[1,2]] are 3 and 1.
func TestSymEigKnown(t *testing.T) {
	a := NewDense(2, 2)
	copy(a.data, []float64{2, 1, 1, 2})
	w, v := SymEig(a)
	if math.Abs(w[0]-3) > 1e-12 || math.Abs(w[1]-1) > 1e-12 {
		t.Errorf("eigenvalues = %v, want [3 1]", w)
	}
	// v columns orthonormal.
	if MaxAbsDiff(Mul(v.T(), v), Identity(2)) > 1e-12 {
		t.Error("eigenvectors not orthonormal")
	}
}

// TestSymEigReconstruction: A = V diag(w) V^T on random symmetric matrices.
func TestSymEigReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		raw := randomDense(rng, n, n)
		a := Mul(raw, raw.T()) // symmetric PSD
		w, v := SymEig(a)
		// Decreasing eigenvalues.
		for i := 1; i < n; i++ {
			if w[i] > w[i-1]+1e-10 {
				return false
			}
		}
		d := NewDense(n, n)
		for i := 0; i < n; i++ {
			d.Set(i, i, w[i])
		}
		back := Mul(Mul(v, d), v.T())
		return MaxAbsDiff(back, a) < 1e-8*(1+math.Abs(w[0]))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestTruncatedSVDExactRank: on a matrix of known rank r, the rank-r SVD
// reconstructs it to machine precision.
func TestTruncatedSVDExactRank(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Build a rank-3 10x8 matrix.
	left := randomDense(rng, 10, 3)
	right := randomDense(rng, 3, 8)
	a := Mul(left, right)
	res, err := TruncatedSVD(DenseOperator{a}, 3, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct U S V^T.
	us := res.U.Copy()
	for i := 0; i < us.Rows(); i++ {
		for j := 0; j < 3; j++ {
			us.Set(i, j, us.At(i, j)*res.Sigma[j])
		}
	}
	back := Mul(us, res.V.T())
	if d := MaxAbsDiff(back, a); d > 1e-8 {
		t.Errorf("rank-3 reconstruction error %g", d)
	}
	// Orthonormality of U and V.
	if MaxAbsDiff(Mul(res.U.T(), res.U), Identity(3)) > 1e-9 {
		t.Error("U columns not orthonormal")
	}
	if MaxAbsDiff(Mul(res.V.T(), res.V), Identity(3)) > 1e-9 {
		t.Error("V columns not orthonormal")
	}
}

// TestTruncatedSVDSingularValues: against a diagonal matrix the singular
// values are exact.
func TestTruncatedSVDSingularValues(t *testing.T) {
	a := NewDense(5, 5)
	diag := []float64{9, 7, 4, 2, 0.5}
	for i, d := range diag {
		a.Set(i, i, d)
	}
	res, err := TruncatedSVD(DenseOperator{a}, 3, 40, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{9, 7, 4} {
		if math.Abs(res.Sigma[i]-want) > 1e-8 {
			t.Errorf("sigma[%d] = %g, want %g", i, res.Sigma[i], want)
		}
	}
}

func TestTruncatedSVDBadRank(t *testing.T) {
	a := Identity(3)
	if _, err := TruncatedSVD(DenseOperator{a}, 0, 5, 1); err == nil {
		t.Error("want error for rank 0")
	}
	if _, err := TruncatedSVD(DenseOperator{a}, 4, 5, 1); err == nil {
		t.Error("want error for rank > n")
	}
}
