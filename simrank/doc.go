// Package simrank is the public API of this repository: all-pairs SimRank
// computation on directed graphs with the optimizations of Yu, Lin and
// Zhang, "Towards Efficient SimRank Computation on Large Networks"
// (ICDE 2013).
//
// # Background
//
// SimRank (Jeh & Widom, KDD 2002) scores the structural similarity of two
// vertices by the recursion "two vertices are similar if their in-neighbors
// are similar", with every vertex maximally similar to itself:
//
//	s(a,a) = 1
//	s(a,b) = C/(|I(a)||I(b)|) * sum over (i,j) in I(a) x I(b) of s(i,j)
//
// where C in (0,1) is a damping factor and I(v) the in-neighbor set of v.
//
// This package implements five engines behind one interface:
//
//   - OIPSR (default): the paper's primary contribution. Partial sums over
//     in-neighbor sets are shared across sets via a minimum-spanning-tree
//     plan over set-transition costs, both when building the sums ("inner
//     sharing") and when consuming them ("outer sharing"), cutting the
//     per-iteration additions from O(d n^2) to O(d' n^2), d' <= d.
//   - OIPDSR: the paper's second contribution. A differential SimRank model
//     defined by a matrix ODE whose solution is an exponential — rather
//     than geometric — series in the transition matrix. It converges in
//     exponentially fewer iterations (e.g. 7 instead of 41 at C=0.8,
//     eps=1e-4) while closely preserving the relative order of scores, and
//     it reuses the same OIP sharing machinery.
//   - PsumSR: Lizorkin et al.'s partial-sums memoization (the prior state
//     of the art the paper compares against), with optional
//     threshold-sieved similarities.
//   - Naive: the original Jeh-Widom O(K d^2 n^2) iteration, the semantic
//     ground truth.
//   - MtxSR: Li et al.'s SVD low-rank approximation (matrix-form baseline).
//
// # Quick start
//
//	g := graph.MustFromEdges(3, [][2]int{{0, 1}, {0, 2}})
//	scores, stats, err := simrank.Compute(g, simrank.Options{C: 0.6, Eps: 1e-3})
//	if err != nil { ... }
//	fmt.Println(scores.Score(1, 2), stats.Iterations)
//
// Build graphs with the graph package (or graph/gio loaders and graph/gen
// generators). All engines return dense all-pairs scores, so memory is
// Theta(n^2) * 8 bytes per matrix; budget accordingly (n = 10,000 needs
// ~1.6 GB for the two iteration buffers).
//
// # Memory-bounded runs
//
// When two dense matrices do not fit, Options.BlockSize > 0 selects the
// tiled backend (OIPSR, OIPDSR, PsumSR, Naive): the score matrix becomes a
// grid of B x B tiles with symmetric upper-triangular storage, a working
// set bounded by Options.MaxMemoryBytes, and spill-to-disk for evicted
// tiles under Options.SpillDir. Scores are bit-identical to the dense
// backend for every block size and worker count; call Scores.Close on
// tiled results to release resident tiles and spill files. See the README
// section "Memory-bounded runs" for guidance on picking B.
//
// # Parallelism
//
// Options.Workers sets the worker-pool size of the iteration phase (0 = all
// CPUs, 1 = serial). The OIP engines parallelize across the independent
// chains of the DMST-Reduce plan, the baselines across rows; in every case
// work is partitioned so that scores and operation counts are bit-identical
// for every worker count. See the internal/core package comment for the
// concurrency model and determinism argument.
package simrank
