package naive

import (
	"testing"

	"oipsr/graph"
	"oipsr/graph/gen"
	"oipsr/internal/simmat"
)

// TestParallelBitIdentical: the row-parallel naive iteration matches the
// serial oracle bit-for-bit.
func TestParallelBitIdentical(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"web":      gen.WebGraph(110, 8, 3),
		"coauthor": gen.CoauthorGraph(90, 3, 2),
	} {
		want, err := Compute(g, 0.6, 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 200} {
			got, err := ComputeWorkers(g, 0.6, 5, workers)
			if err != nil {
				t.Fatal(err)
			}
			if d := simmat.MaxDiff(want, got); d != 0 {
				t.Errorf("%s workers=%d: scores differ by %g, want bit-identical", name, workers, d)
			}
		}
	}
}
