package prank

import (
	"testing"

	"oipsr/graph"
	"oipsr/graph/gen"
	"oipsr/internal/simmat"
)

// TestParallelBitIdentical: P-Rank with worker pools on both directional
// sweeps matches the serial engine bit-for-bit.
func TestParallelBitIdentical(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"web":      gen.WebGraph(110, 7, 3),
		"coauthor": gen.CoauthorGraph(90, 3, 4),
	} {
		want, wst, err := Compute(g, Options{CIn: 0.6, COut: 0.7, Lambda: 0.4, K: 5, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		got, gst, err := Compute(g, Options{CIn: 0.6, COut: 0.7, Lambda: 0.4, K: 5, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if d := simmat.MaxDiff(want, got); d != 0 {
			t.Errorf("%s: scores differ by %g, want bit-identical", name, d)
		}
		if wst.InnerAdds != gst.InnerAdds || wst.OuterAdds != gst.OuterAdds {
			t.Errorf("%s: add counts diverged: (%d,%d) vs (%d,%d)",
				name, wst.InnerAdds, wst.OuterAdds, gst.InnerAdds, gst.OuterAdds)
		}
	}
}
