package partition

import (
	"math/rand"
	"testing"

	"oipsr/graph"
	"oipsr/graph/gen"
)

// chainGraphs are the workloads the chain-index invariants run over.
func chainGraphs(t testing.TB) map[string]*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	b := graph.NewBuilder(30, 0)
	b.EnsureVertices(30)
	for i := 0; i < 150; i++ {
		b.AddEdge(rng.Intn(30), rng.Intn(30))
	}
	return map[string]*graph.Graph{
		"random":   b.MustBuild(),
		"web":      gen.WebGraph(200, 9, 1),
		"citation": gen.CitationGraph(150, 4, 2),
		"empty":    graph.MustFromEdges(5, nil),
	}
}

// TestChainsPartitionChainSteps: Chains covers ChainSteps exactly, in order,
// with a from-scratch step at every chain start and derived steps everywhere
// else — the independence property the parallel sweep relies on.
func TestChainsPartitionChainSteps(t *testing.T) {
	for name, g := range chainGraphs(t) {
		for planName, plan := range map[string]*Plan{"dmst": mustPlan(t, g, Options{}), "trivial": TrivialPlan(g)} {
			pos := 0
			for ci, ch := range plan.Chains {
				if ch.Start != pos {
					t.Fatalf("%s/%s: chain %d starts at %d, want %d", name, planName, ci, ch.Start, pos)
				}
				if ch.Len() < 1 {
					t.Fatalf("%s/%s: chain %d empty", name, planName, ci)
				}
				for i := ch.Start; i < ch.End; i++ {
					step := plan.ChainSteps[i]
					if i == ch.Start && step.Parent >= 0 {
						t.Errorf("%s/%s: chain %d does not start from scratch", name, planName, ci)
					}
					if i > ch.Start && int(step.Parent) != i-1 {
						t.Errorf("%s/%s: step %d parent %d, want %d", name, planName, i, step.Parent, i-1)
					}
				}
				pos = ch.End
			}
			if pos != len(plan.ChainSteps) {
				t.Errorf("%s/%s: chains cover %d steps, want %d", name, planName, pos, len(plan.ChainSteps))
			}
		}
	}
}

// TestChainCostsPositive: every chain that emits rows must have a positive
// cost estimate (the scheduler load-balances on it), and total inner cost
// must be consistent with the plan's Additions counter.
func TestChainCostsPositive(t *testing.T) {
	for name, g := range chainGraphs(t) {
		plan := mustPlan(t, g, Options{})
		n := int64(g.NumVertices())
		emit := int64(plan.TreeWeight + plan.NumSets)
		var inner int64
		for ci, ch := range plan.Chains {
			if ch.Cost < 0 {
				t.Errorf("%s: chain %d negative cost %d", name, ci, ch.Cost)
			}
			inner += ch.Cost - int64(ch.Len())*emit
		}
		if n > 0 && inner != int64(plan.Additions)*n {
			t.Errorf("%s: summed inner chain cost %d, want Additions*n = %d", name, inner, int64(plan.Additions)*n)
		}
	}
}
