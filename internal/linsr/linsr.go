// Package linsr implements linearized SimRank (Maehara, Kusumoto,
// Kawarabayashi: "Efficient SimRank Computation via Linearization").
//
// SimRank's fixed point satisfies the linear matrix equation
//
//	S = C · Q S Qᵀ + D
//
// where Q is the in-neighbor averaging operator (row i of QX is the mean of
// X's rows over I(i)) and D is a diagonal correction chosen so that
// diag(S) = 1. Expanding the recursion gives the truncated series
//
//	S ≈ Σ_{t=0}^{T} C^t · Q^t D (Qᵀ)^t,     tail ≤ C^{T+1}/(1-C),
//
// which turns SimRank into two small problems: (1) estimate the n diagonal
// entries of D once per graph, and (2) answer a single-source query by T
// sparse operator applications — no n² state anywhere.
//
// D estimation solves A·d = 1 where A_{av} = Σ_t C^t ((Q^t)_{av})², by
// damped Richardson sweeps: each sweep evaluates diag(S) under the current
// d (a per-vertex truncated series over sparse (Qᵀ)^t e_a walks, vertices
// in parallel), then steps d toward the residual 1 − diag(S). Plain
// Richardson can diverge (on a directed n-cycle the constant vector has
// A-eigenvalue Σ_t C^t ≈ 1/(1-C)), so the step halves whenever the max-norm
// residual grows; the final residual is reported in Stats.
//
// Single-source answers row q by storing x_t = (Qᵀ)^t e_q for t = 0..T and
// folding the series inward (Horner): z = D·x_T, then z = D·x_t + C·Q·z.
// The cost is O(T·m) time and O(T·n) transient scratch.
//
// Everything is deterministic: sweeps partition vertices across workers but
// each vertex's arithmetic is self-contained, so d — and therefore every
// score — is bit-identical for every worker count, and a row of Compute's
// all-pairs output is bit-identical to the same SingleSource call.
package linsr

import (
	"context"
	"fmt"
	"math"
	"time"

	"oipsr/graph"
	"oipsr/internal/numeric"
	"oipsr/internal/par"
)

// Options configure New.
type Options struct {
	// C is the damping factor in (0,1); 0 means 0.6.
	C float64
	// Tol is the target accuracy: it picks the series horizon (unless T is
	// set) and is the max-norm residual the diagonal solve must reach.
	// 0 means 1e-10.
	Tol float64
	// T fixes the series horizon. 0 derives the smallest T with
	// C^(T+1) ≤ Tol (the Lizorkin bound, as the geometric engines use).
	T int
	// MaxSweeps caps the diagonal-solve Richardson sweeps; 0 means 500.
	MaxSweeps int
	// Workers sets the worker-pool size of the diagonal solve: 1 means
	// serial, anything below 1 means all CPUs. Results are bit-identical
	// for every worker count.
	Workers int
}

func (o *Options) normalize() error {
	if o.C == 0 {
		o.C = 0.6
	}
	if !(o.C > 0 && o.C < 1) {
		return fmt.Errorf("linsr: damping factor %v outside (0,1)", o.C)
	}
	if o.Tol == 0 {
		o.Tol = 1e-10
	}
	if !(o.Tol > 0 && o.Tol < 1) {
		return fmt.Errorf("linsr: tolerance %v outside (0,1)", o.Tol)
	}
	if o.T < 0 {
		return fmt.Errorf("linsr: negative series horizon %d", o.T)
	}
	if o.T == 0 {
		o.T = numeric.IterationsConventional(o.C, o.Tol)
	}
	if o.MaxSweeps == 0 {
		o.MaxSweeps = 500
	}
	return nil
}

// Stats reports what building the solver did.
type Stats struct {
	// Horizon is the series truncation T.
	Horizon int
	// SolveIters is the number of Richardson sweeps the diagonal solve ran.
	SolveIters int
	// Residual is the final max-norm residual ‖1 − diag(S)‖∞ of the solve.
	Residual float64
	// BuildTime is the wall time of the diagonal solve.
	BuildTime time.Duration
	// AuxBytes is the solver's resident memory (the diagonal) plus the
	// scratch one single-source query allocates.
	AuxBytes int64
}

// Solver answers exact (to the solve tolerance) SimRank queries over one
// graph with no n² state. Build it once with New, then call SingleSource /
// Pair from any number of goroutines: the solver is immutable after New.
type Solver struct {
	g     *graph.Graph
	c     float64
	t     int // series horizon
	d     []float64
	stats Stats
}

// New estimates the diagonal correction D for g and returns a ready solver.
// The context is checked at sweep boundaries (and within sweeps every few
// vertices); cancellation returns ctx.Err(). A graph whose diagonal solve
// does not reach Options.Tol within Options.MaxSweeps is reported as an
// error rather than served with a silently wrong D.
func New(ctx context.Context, g *graph.Graph, opt Options) (*Solver, error) {
	if err := opt.normalize(); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	s := &Solver{g: g, c: opt.C, t: opt.T, d: make([]float64, n)}
	s.stats.Horizon = opt.T
	s.stats.AuxBytes = int64(n) * 8 * int64(opt.T+4)
	// d = (1-C)·1 is the exact solution when every vertex lies on uniform
	// in-degree cycles (and the exact series prefactor of Eq. 12's form);
	// it is the customary starting point.
	for i := range s.d {
		s.d[i] = 1 - opt.C
	}
	if n == 0 {
		return s, nil
	}

	t0 := time.Now()
	workers := par.ResolveMax(opt.Workers, n)
	r := make([]float64, n)
	scratch := make([]*diagScratch, workers)
	for w := range scratch {
		scratch[w] = newDiagScratch(n)
	}
	errs := make([]error, workers)
	step := 1.0
	best := math.Inf(1)
	resid := math.Inf(1)
	for it := 1; it <= opt.MaxSweeps; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		par.Do(workers, func(w int) {
			cc := par.NewCancelChecker(ctx, 8)
			lo, hi := par.Range(n, workers, w)
			for a := lo; a < hi; a++ {
				if err := cc.Stop(); err != nil {
					errs[w] = err
					return
				}
				r[a] = s.diagAt(a, scratch[w])
			}
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		resid = 0
		for a := 0; a < n; a++ {
			if dev := math.Abs(1 - r[a]); dev > resid {
				resid = dev
			}
		}
		s.stats.SolveIters = it
		s.stats.Residual = resid
		if resid <= opt.Tol {
			break
		}
		if math.IsNaN(resid) {
			return nil, fmt.Errorf("linsr: diagonal solve produced NaN after %d sweeps", it)
		}
		if resid > best {
			// Overshoot: the Richardson step is too long for this graph's
			// spectrum (directed cycles push A's largest eigenvalue toward
			// 1/(1-C)). Halve and retry; a step this small that still grows
			// the residual means the iteration is genuinely divergent.
			step /= 2
			if step < 1.0/(1<<20) {
				return nil, fmt.Errorf("linsr: diagonal solve diverged (residual %g after %d sweeps)", resid, it)
			}
		} else {
			best = resid
		}
		for a := 0; a < n; a++ {
			s.d[a] += step * (1 - r[a])
		}
	}
	if resid > opt.Tol {
		return nil, fmt.Errorf("linsr: diagonal solve did not reach tolerance %g (residual %g after %d sweeps)", opt.Tol, resid, s.stats.SolveIters)
	}
	s.stats.BuildTime = time.Since(t0)
	return s, nil
}

// N returns the number of vertices the solver was built for.
func (s *Solver) N() int { return s.g.NumVertices() }

// C returns the damping factor.
func (s *Solver) C() float64 { return s.c }

// Stats returns the build statistics.
func (s *Solver) Stats() Stats { return s.stats }

// diagScratch is the per-worker state of one diagonal sweep: two sparse
// vectors with their active-index lists.
type diagScratch struct {
	x, y   []float64
	ax, ay []int
}

func newDiagScratch(n int) *diagScratch {
	return &diagScratch{x: make([]float64, n), y: make([]float64, n)}
}

// diagAt evaluates row a of the diagonal map under the current d:
//
//	diag(S)_a = Σ_{t=0}^{T} C^t Σ_v d_v ((Qᵀ)^t e_a)_v²
//
// by walking x_t = (Qᵀ)^t e_a as a sparse vector. Deterministic for a given
// (a, d): actives are visited in insertion order and in-neighbor lists in
// CSR order, independent of the worker partition.
func (s *Solver) diagAt(a int, sc *diagScratch) float64 {
	x, y, ax, ay := sc.x, sc.y, sc.ax[:0], sc.ay[:0]
	x[a] = 1
	ax = append(ax, a)
	total := s.d[a] // the t = 0 term
	pw := 1.0
	for t := 1; t <= s.t && len(ax) > 0; t++ {
		pw *= s.c
		ay = ay[:0]
		for _, i := range ax {
			in := s.g.In(i)
			if len(in) == 0 {
				continue
			}
			w := x[i] / float64(len(in))
			if w == 0 {
				continue
			}
			for _, j := range in {
				if y[j] == 0 {
					ay = append(ay, j)
				}
				y[j] += w
			}
		}
		term := 0.0
		for _, j := range ay {
			v := y[j]
			term += s.d[j] * v * v
		}
		total += pw * term
		for _, i := range ax {
			x[i] = 0
		}
		x, y = y, x
		ax, ay = ay, ax
	}
	for _, i := range ax {
		x[i] = 0
	}
	sc.x, sc.y, sc.ax, sc.ay = x, y, ax[:0], ay[:0]
	return total
}

// Scratch is the reusable per-goroutine workspace of SingleSourceScratch:
// the T+1 stored walk vectors plus one fold buffer. One scratch serves any
// number of sequential queries; concurrent queries need one each.
type Scratch struct {
	xs  [][]float64
	tmp []float64
}

// NewScratch allocates a workspace sized for this solver.
func (s *Solver) NewScratch() *Scratch {
	n := s.g.NumVertices()
	sc := &Scratch{xs: make([][]float64, s.t+1), tmp: make([]float64, n)}
	for t := range sc.xs {
		sc.xs[t] = make([]float64, n)
	}
	return sc
}

// SingleSource computes row q of the SimRank matrix into dst (allocated
// when nil or mis-sized) and returns it. The context is checked at every
// series-step boundary. The result is exact up to the solve tolerance; its
// entry at q is 1 up to the solve residual (the walk engines pin it to 1).
func (s *Solver) SingleSource(ctx context.Context, q int, dst []float64) ([]float64, error) {
	return s.SingleSourceScratch(ctx, q, dst, nil)
}

// SingleSourceScratch is SingleSource with a caller-owned workspace, for
// callers answering many queries (the all-pairs engine, simrankd).
func (s *Solver) SingleSourceScratch(ctx context.Context, q int, dst []float64, sc *Scratch) ([]float64, error) {
	n := s.g.NumVertices()
	if q < 0 || q >= n {
		return nil, fmt.Errorf("linsr: source vertex %d out of range [0,%d)", q, n)
	}
	if dst == nil || len(dst) != n {
		dst = make([]float64, n)
	}
	if sc == nil {
		sc = s.NewScratch()
	}
	// Forward pass: x_t = (Qᵀ)^t e_q.
	x0 := sc.xs[0]
	for i := range x0 {
		x0[i] = 0
	}
	x0[q] = 1
	for t := 1; t <= s.t; t++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		applyQT(s.g, sc.xs[t-1], sc.xs[t])
	}
	// Inward fold (Horner): z = D·x_T, then z = D·x_t + C·Q·z.
	z := dst
	xT := sc.xs[s.t]
	for j := range z {
		z[j] = s.d[j] * xT[j]
	}
	for t := s.t - 1; t >= 0; t-- {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		applyQ(s.g, z, sc.tmp)
		xt := sc.xs[t]
		for j := range z {
			z[j] = s.d[j]*xt[j] + s.c*sc.tmp[j]
		}
	}
	return dst, nil
}

// Pair computes the single score s(a,b) in O(T·(n+m)) time and O(n)
// scratch, without materializing either row: it streams both walk vectors
// and accumulates Σ_t C^t · x_tᵃᵀ D x_tᵇ. The diagonal is 1 by definition.
func (s *Solver) Pair(ctx context.Context, a, b int) (float64, error) {
	n := s.g.NumVertices()
	if a < 0 || a >= n || b < 0 || b >= n {
		return 0, fmt.Errorf("linsr: pair (%d,%d) out of range [0,%d)", a, b, n)
	}
	if a == b {
		return 1, nil
	}
	xa := make([]float64, n)
	xb := make([]float64, n)
	ya := make([]float64, n)
	yb := make([]float64, n)
	xa[a], xb[b] = 1, 1
	total := 0.0 // t = 0 term is 0 for a != b
	pw := 1.0
	for t := 1; t <= s.t; t++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		pw *= s.c
		applyQT(s.g, xa, ya)
		applyQT(s.g, xb, yb)
		term := 0.0
		for v := 0; v < n; v++ {
			term += s.d[v] * ya[v] * yb[v]
		}
		total += pw * term
		xa, ya = ya, xa
		xb, yb = yb, xb
	}
	return total, nil
}

// applyQ computes dst = Q·x: dst[i] is the mean of x over In(i), 0 for
// vertices without in-neighbors.
func applyQ(g *graph.Graph, x, dst []float64) {
	for i := range dst {
		in := g.In(i)
		if len(in) == 0 {
			dst[i] = 0
			continue
		}
		sum := 0.0
		for _, u := range in {
			sum += x[u]
		}
		dst[i] = sum / float64(len(in))
	}
}

// applyQT computes dst = Qᵀ·x by scattering: every vertex i with x[i] ≠ 0
// sends x[i]/|I(i)| to each of its in-neighbors.
func applyQT(g *graph.Graph, x, dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
	for i, v := range x {
		if v == 0 {
			continue
		}
		in := g.In(i)
		if len(in) == 0 {
			continue
		}
		w := v / float64(len(in))
		for _, j := range in {
			dst[j] += w
		}
	}
}
