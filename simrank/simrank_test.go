package simrank

import (
	"math"
	"testing"

	"oipsr/graph"
	"oipsr/graph/gen"
)

func testGraph() *graph.Graph {
	return gen.WebGraph(120, 8, 42)
}

// TestAllAlgorithmsRun: every engine completes through the facade and
// produces a sane score matrix.
func TestAllAlgorithmsRun(t *testing.T) {
	g := testGraph()
	for _, alg := range []Algorithm{OIPSR, OIPDSR, PsumSR, Naive, MtxSR, PRank, MonteCarlo} {
		s, st, err := Compute(g, Options{Algorithm: alg, C: 0.6, K: 4, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if s.N() != g.NumVertices() {
			t.Errorf("%s: N = %d, want %d", alg, s.N(), g.NumVertices())
		}
		if st.Algorithm != alg {
			t.Errorf("stats algorithm = %q, want %q", st.Algorithm, alg)
		}
		if st.ComputeTime <= 0 {
			t.Errorf("%s: compute time not recorded", alg)
		}
	}
}

// TestGeometricEnginesAgree: OIP-SR, psum-SR and naive are the same
// mathematical iteration.
func TestGeometricEnginesAgree(t *testing.T) {
	g := testGraph()
	var ref *Scores
	for i, alg := range []Algorithm{Naive, PsumSR, OIPSR} {
		s, _, err := Compute(g, Options{Algorithm: alg, C: 0.6, K: 5})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = s
			continue
		}
		if d := s.MaxDiff(ref); d > 1e-9 {
			t.Errorf("%s differs from naive by %g", alg, d)
		}
	}
}

func TestDefaultsAreOIPSRWithPaperParams(t *testing.T) {
	g := gen.CoauthorGraph(60, 3, 1)
	_, st, err := Compute(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Algorithm != OIPSR {
		t.Errorf("default algorithm = %q", st.Algorithm)
	}
	if st.Iterations != 13 { // C=0.6, eps=1e-3
		t.Errorf("default iterations = %d, want 13", st.Iterations)
	}
}

func TestUnknownAlgorithmRejected(t *testing.T) {
	g := gen.CoauthorGraph(20, 3, 1)
	if _, _, err := Compute(g, Options{Algorithm: "page-rank"}); err == nil {
		t.Fatal("want error for unknown algorithm")
	}
}

func TestTopKOrderingAndExclusion(t *testing.T) {
	// 0 -> {1,2,3}: vertices 1,2,3 are mutually similar with score C.
	g := graph.MustFromEdges(4, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	s, _, err := Compute(g, Options{C: 0.8, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	top := s.TopK(1, 10)
	if len(top) != 3 {
		t.Fatalf("TopK length = %d, want 3 (query excluded)", len(top))
	}
	if top[0].Vertex != 2 || top[1].Vertex != 3 {
		t.Errorf("TopK = %+v, want vertices 2,3 first (ties by id)", top)
	}
	if math.Abs(top[0].Score-0.8) > 1e-12 {
		t.Errorf("top score = %g, want 0.8", top[0].Score)
	}
	if top[2].Vertex != 0 || top[2].Score != 0 {
		t.Errorf("last = %+v, want vertex 0 with score 0", top[2])
	}
}

func TestEstimateIterationsFig6f(t *testing.T) {
	est, err := EstimateIterations(0.8, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if est.Conventional != 41 || est.Differential != 6 || est.Lambert != 7 || !est.LogValid || est.Log != 7 {
		t.Errorf("estimates = %+v, want {41 6 7 7 true}", est)
	}
	if _, err := EstimateIterations(2, 0.1); err == nil {
		t.Error("want error for C out of range")
	}
	if _, err := EstimateIterations(0.5, 0); err == nil {
		t.Error("want error for eps out of range")
	}
}

func TestErrorBoundsExported(t *testing.T) {
	if got := GeometricErrorBound(0.8, 1); math.Abs(got-0.64) > 1e-15 {
		t.Errorf("geometric bound = %g, want C^2 = 0.64", got)
	}
	if got := DifferentialErrorBound(0.8, 1); math.Abs(got-0.32) > 1e-15 {
		t.Errorf("differential bound = %g, want C^2/2 = 0.32", got)
	}
}

// TestDSRPreservesTopK: the Exp-4 claim through the public API — top-10 of
// OIP-DSR matches OIP-SR on a co-authorship graph for high-degree queries.
func TestDSRPreservesTopK(t *testing.T) {
	g := gen.CoauthorGraph(200, 3, 7)
	sr, _, err := Compute(g, Options{Algorithm: OIPSR, C: 0.6, Eps: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	ds, _, err := Compute(g, Options{Algorithm: OIPDSR, C: 0.6, Eps: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	query := 0
	best := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.InDegree(v); d > best {
			best, query = d, v
		}
	}
	a := make([]int, 0, 10)
	for _, r := range sr.TopK(query, 10) {
		a = append(a, r.Vertex)
	}
	b := make([]int, 0, 10)
	for _, r := range ds.TopK(query, 10) {
		b = append(b, r.Vertex)
	}
	if ov := TopKOverlap(a, b); ov < 0.8 {
		t.Errorf("top-10 overlap = %g, want >= 0.8", ov)
	}
}

func TestMetricsReexports(t *testing.T) {
	rel := GradeByRank(4, []int{2, 0}, []int{1, 2})
	if rel[2] != 2 || rel[0] != 1 || rel[1] != 0 {
		t.Errorf("GradeByRank = %v", rel)
	}
	if NDCG(rel, []int{2, 0, 1, 3}, 2) != 1 {
		t.Error("perfect NDCG != 1")
	}
	if KendallTau([]float64{1, 2}, []float64{3, 4}) != 1 {
		t.Error("KendallTau broken")
	}
	if SpearmanRho([]float64{1, 2}, []float64{3, 4}) != 1 {
		t.Error("SpearmanRho broken")
	}
	if Inversions([]int{1, 2}, []int{2, 1}) != 1 {
		t.Error("Inversions broken")
	}
}

func TestStatsFieldsByAlgorithm(t *testing.T) {
	g := testGraph()
	_, st, err := Compute(g, Options{Algorithm: OIPSR, C: 0.6, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.InnerAdds == 0 || st.ShareRatio <= 0 || st.NumSets == 0 {
		t.Errorf("OIPSR sharing stats missing: %+v", st)
	}
	_, st, err = Compute(g, Options{Algorithm: MtxSR, C: 0.6, Rank: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rank != 20 || st.AuxBytes == 0 {
		t.Errorf("MtxSR stats missing: %+v", st)
	}
	_, st, err = Compute(g, Options{Algorithm: PsumSR, C: 0.6, K: 3, Threshold: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if st.SievedPairs == 0 {
		t.Error("PsumSR sieving stats missing")
	}
}

// TestPRankLambdaOneMatchesSimRank: the facade's P-Rank with lambda = 1 is
// exactly SimRank.
func TestPRankLambdaOneMatchesSimRank(t *testing.T) {
	g := testGraph()
	sr, _, err := Compute(g, Options{Algorithm: OIPSR, C: 0.6, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	pr, _, err := Compute(g, Options{Algorithm: PRank, C: 0.6, COut: 0.6, Lambda: 1, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if d := pr.MaxDiff(sr); d > 1e-9 {
		t.Errorf("P-Rank(lambda=1) differs from SimRank by %g", d)
	}
}

// TestMonteCarloApproximatesOIP: the sampling estimator lands near the
// iterative scores on the shared test workload.
func TestMonteCarloApproximatesOIP(t *testing.T) {
	g := testGraph()
	exact, _, err := Compute(g, Options{Algorithm: OIPSR, C: 0.6, K: 11})
	if err != nil {
		t.Fatal(err)
	}
	mc, st, err := Compute(g, Options{Algorithm: MonteCarlo, C: 0.6, K: 11, Walks: 1500, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations != 1500 {
		t.Errorf("walks = %d, want 1500", st.Iterations)
	}
	var sum float64
	var cnt int
	for i := 0; i < g.NumVertices(); i++ {
		for j := i + 1; j < g.NumVertices(); j++ {
			sum += mathAbs(mc.Score(i, j) - exact.Score(i, j))
			cnt++
		}
	}
	if mae := sum / float64(cnt); mae > 0.03 {
		t.Errorf("Monte Carlo mean absolute error %g, want <= 0.03", mae)
	}
}

func mathAbs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
