package query

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"oipsr/graph/gen"
)

// TestBuildFileStreamingByteIdentical is the query-layer equivalence
// gate: streaming the build to disk under any budget must publish
// exactly the bytes SaveFileFormat(FormatV2) writes for the materialized
// index, and the sealed file must serve (mapped) bit-identically.
func TestBuildFileStreamingByteIdentical(t *testing.T) {
	g := gen.CitationGraph(240, 5, 3)
	opt := Options{Walks: 30, Seed: 11}
	ix, err := BuildIndex(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	wantPath := filepath.Join(dir, "materialized.srwk")
	if err := ix.SaveFileFormat(wantPath, FormatV2); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(wantPath)
	if err != nil {
		t.Fatal(err)
	}

	for _, budget := range []int64{1, 4096, 1 << 30} {
		gotPath := filepath.Join(dir, "streamed.srwk")
		st, err := BuildFileStreaming(g, opt, gotPath, budget)
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		got, err := os.ReadFile(gotPath)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("budget %d: streamed file differs from materialized save", budget)
		}
		if st.Bytes != int64(len(got)) {
			t.Fatalf("budget %d: stats say %d bytes, file has %d", budget, st.Bytes, len(got))
		}
		mx, err := LoadFileMapped(gotPath, MappedOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 240; q += 57 {
			a, err := ix.SingleSource(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			b, err := mx.SingleSource(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			for v := range a {
				if a[v] != b[v] {
					t.Fatalf("budget %d: mapped stream-built index differs at (%d,%d)", budget, q, v)
				}
			}
		}
		if err := mx.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBuildFileStreamingRejectsBadBudget: a non-positive budget aborts
// the publish — no file appears.
func TestBuildFileStreamingRejectsBadBudget(t *testing.T) {
	g := gen.WebGraph(40, 4, 1)
	path := filepath.Join(t.TempDir(), "never.srwk")
	if _, err := BuildFileStreaming(g, Options{Walks: 5, Seed: 2}, path, 0); err == nil {
		t.Fatal("budget 0 accepted")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("aborted build left a file behind (stat err %v)", err)
	}
}
