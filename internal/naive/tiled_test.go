package naive

import (
	"math/rand"
	"testing"

	"oipsr/graph"
	"oipsr/internal/simmat"
)

// TestComputeTiledBitIdentical: the tiled oracle equals the dense oracle
// bit for bit for every block size and worker count, including under a
// memory budget that forces spills.
func TestComputeTiledBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 23
	b := graph.NewBuilder(n, 0)
	b.EnsureVertices(n)
	for i := 0; i < 4*n; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	g := b.MustBuild()
	dense, err := Compute(g, 0.6, 5)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, n)
	for _, block := range []int{1, 4, n, n + 3} {
		for _, workers := range []int{1, 4} {
			for _, budget := range []int64{0, int64(4 * block * block * 8)} {
				tile := simmat.TileOptions{BlockSize: block, MaxMemoryBytes: budget}
				if budget > 0 {
					tile.SpillDir = t.TempDir()
				}
				tiled, err := ComputeTiledWorkers(g, 0.6, 5, workers, tile)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < n; i++ {
					if err := tiled.RowInto(i, buf); err != nil {
						t.Fatal(err)
					}
					for j := 0; j < n; j++ {
						if buf[j] != dense.At(i, j) {
							t.Fatalf("block=%d workers=%d budget=%d: (%d,%d): %v != %v",
								block, workers, budget, i, j, buf[j], dense.At(i, j))
						}
					}
				}
				tiled.Close()
			}
		}
	}
}
