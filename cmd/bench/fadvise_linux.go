//go:build linux

package main

import (
	"os"
	"syscall"
)

// dropPageCache asks the kernel to evict path's cached pages so the next
// open reads from disk — without it, "cold" latency on a file this
// process just wrote or read times the page cache instead. Only clean
// pages are dropped, so the file is synced first.
func dropPageCache(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return err
	}
	const posixFadvDontneed = 4
	if _, _, errno := syscall.Syscall6(syscall.SYS_FADVISE64, f.Fd(), 0, 0, posixFadvDontneed, 0, 0); errno != 0 {
		return errno
	}
	return nil
}
