package simrankd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"oipsr/simrank"
)

// TestEngineParamValidation pins the ?engine= error surface: an unknown
// engine is a 400 with a stable message on every engine-aware endpoint,
// the walk-only endpoints reject an explicit non-walk engine, and rerank
// conflicts with the exact engine.
func TestEngineParamValidation(t *testing.T) {
	_, idx := testIndex(t)
	ts := httptest.NewServer(newServer(idx, 0, 1))
	defer ts.Close()

	wantUnknown := `{"error":"unknown engine \"bogus\" (want \"walk\" or \"linearized\")"}` + "\n"
	for _, path := range []string{"/v1/single_source?q=1&engine=bogus", "/v1/topk?q=1&k=5&engine=bogus"} {
		code, body := get(t, ts.URL+path)
		if code != http.StatusBadRequest || string(body) != wantUnknown {
			t.Errorf("GET %s: status %d, body %q", path, code, body)
		}
	}
	for _, c := range []struct{ path, body string }{
		{"/v1/batch?engine=linearized", `{"mode":"topk","sources":[1],"k":3}`},
		{"/v1/join?engine=linearized", `{"k":3,"threshold":0.2}`},
	} {
		code, body := postJSON(t, ts.URL+c.path, c.body)
		if code != http.StatusBadRequest || !strings.Contains(string(body), "walk only") {
			t.Errorf("POST %s: status %d, body %q", c.path, code, body)
		}
	}
	code, body := get(t, ts.URL+"/v1/topk?q=1&k=5&engine=linearized&rerank=1")
	if code != http.StatusBadRequest || !strings.Contains(string(body), "rerank") {
		t.Errorf("rerank+linearized: status %d, body %q", code, body)
	}
}

// TestEngineWalkByteIdentity: an explicit engine=walk must be
// byte-for-byte the no-parameter request — the seam must not perturb the
// default path at all.
func TestEngineWalkByteIdentity(t *testing.T) {
	_, idx := testIndex(t)
	ts := httptest.NewServer(newServer(idx, 0, 1))
	defer ts.Close()

	for _, path := range []string{
		"/v1/single_source?q=17",
		"/v1/single_source?q=5&min=0.001",
		"/v1/topk?q=7&k=9",
		"/v1/topk?q=7&k=9&rerank=1",
	} {
		_, plain := get(t, ts.URL+path)
		_, tagged := get(t, ts.URL+path+"&engine=walk")
		if !bytes.Equal(plain, tagged) {
			t.Errorf("%s: engine=walk body differs\nplain:  %s\ntagged: %s", path, plain, tagged)
		}
	}
}

// TestLinearizedEndpointAccuracy is the serving-layer accuracy gate:
// /v1/single_source?engine=linearized must agree with a deeply converged
// naive run within 1e-8, and /v1/topk?engine=linearized must rank by those
// exact scores.
func TestLinearizedEndpointAccuracy(t *testing.T) {
	g, idx := testIndex(t)
	ts := httptest.NewServer(newServer(idx, 0, 1))
	defer ts.Close()

	ref, _, err := simrank.Compute(g, simrank.Options{Algorithm: simrank.Naive, C: idx.C(), K: 100, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []int{0, 41, 149} {
		code, body := get(t, fmt.Sprintf("%s/v1/single_source?q=%d&engine=linearized", ts.URL, q))
		if code != http.StatusOK {
			t.Fatalf("q=%d: status %d, body %s", q, code, body)
		}
		var resp singleSourceResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Degraded {
			t.Fatalf("q=%d: unexpected degraded response", q)
		}
		refRow := ref.Row(q)
		for j, v := range resp.Scores {
			if d := math.Abs(v - refRow[j]); d > 1e-8 {
				t.Fatalf("q=%d: s(%d) = %g vs converged naive %g (diff %g)", q, j, v, refRow[j], d)
			}
		}
	}

	const q, k = 17, 8
	code, body := get(t, fmt.Sprintf("%s/v1/topk?q=%d&k=%d&engine=linearized", ts.URL, q, k))
	if code != http.StatusOK {
		t.Fatalf("topk: status %d, body %s", code, body)
	}
	var topk topKResponse
	if err := json.Unmarshal(body, &topk); err != nil {
		t.Fatal(err)
	}
	if topk.Reranked || topk.Degraded || len(topk.Results) != k {
		t.Fatalf("topk header mismatch: %+v", topk)
	}
	refRow := ref.Row(q)
	prev := math.Inf(1)
	for _, rk := range topk.Results {
		if rk.Score > prev {
			t.Fatalf("topk results not sorted: %v", topk.Results)
		}
		prev = rk.Score
		if d := math.Abs(rk.Score - refRow[rk.Vertex]); d > 1e-8 {
			t.Fatalf("topk vertex %d: score %g vs converged naive %g", rk.Vertex, rk.Score, refRow[rk.Vertex])
		}
	}
}

// TestLinearizedCacheIsolation: walk and linearized answers live under
// distinct cache-key families, and an edit batch (generation bump) makes
// the old exact entries unreachable and forces a re-solve.
func TestLinearizedCacheIsolation(t *testing.T) {
	_, idx := testIndex(t)
	srv := newServer(idx, 64, 1)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const path = "/v1/single_source?q=9&min=0.001"
	_, walk1 := get(t, ts.URL+path)
	_, lin1 := get(t, ts.URL+path+"&engine=linearized")
	if bytes.Equal(walk1, lin1) {
		t.Fatal("walk and linearized bodies identical — cache keys must have collided")
	}
	// Both are now cached; re-reading must return each engine's own body.
	_, walk2 := get(t, ts.URL+path)
	_, lin2 := get(t, ts.URL+path+"&engine=linearized")
	if !bytes.Equal(walk1, walk2) || !bytes.Equal(lin1, lin2) {
		t.Fatal("cached re-read changed a body")
	}

	if _, ok := idx.ExactStats(); !ok {
		t.Fatal("exact solver should be built after a linearized query")
	}
	if code, body := postJSON(t, ts.URL+"/v1/edges", `{"edits":[{"op":"add","u":3,"v":140}]}`); code != http.StatusOK {
		t.Fatalf("edges: status %d, body %s", code, body)
	}
	if _, ok := idx.ExactStats(); ok {
		t.Fatal("exact solver must be stale after an effective edit batch")
	}
	code, lin3 := get(t, ts.URL+path+"&engine=linearized")
	if code != http.StatusOK {
		t.Fatalf("post-edit linearized: status %d, body %s", code, lin3)
	}
	if _, ok := idx.ExactStats(); !ok {
		t.Fatal("exact solver should be rebuilt by the post-edit query")
	}
}

// TestLinearizedDegradesUnderDeadline: with the exact-solve cost model
// seeded far above the request deadline, a linearized request must be
// served the walk estimates marked degraded (body field + header) and the
// degraded body must never enter the cache.
func TestLinearizedDegradesUnderDeadline(t *testing.T) {
	_, idx := testIndex(t)
	srv := NewServer(idx, Config{CacheSize: 64, Workers: 1, RequestTimeout: 2 * time.Second})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Seed the cost model as if one exact solve took an hour.
	srv.observeExact(time.Hour)

	const path = "/v1/single_source?q=33&engine=linearized"
	for round := 0; round < 2; round++ {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var body singleSourceResponse
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d: status %d", round, resp.StatusCode)
		}
		if !body.Degraded || resp.Header.Get("X-Simrank-Degraded") != "true" {
			t.Fatalf("round %d: expected degraded walk fallback, got %+v (header %q)",
				round, body, resp.Header.Get("X-Simrank-Degraded"))
		}
	}
	// The degraded fallback is the walk estimate itself.
	_, walk := get(t, ts.URL+"/v1/single_source?q=33")
	var walkResp singleSourceResponse
	if err := json.Unmarshal(walk, &walkResp); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	var degResp singleSourceResponse
	if err := json.NewDecoder(resp.Body).Decode(&degResp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for j, v := range degResp.Scores {
		if v != walkResp.Scores[j] {
			t.Fatalf("degraded scores differ from walk estimates at %d: %g vs %g", j, v, walkResp.Scores[j])
		}
	}

	// Same contract on topk.
	resp, err = http.Get(ts.URL + "/v1/topk?q=33&k=5&engine=linearized")
	if err != nil {
		t.Fatal(err)
	}
	var tk topKResponse
	if err := json.NewDecoder(resp.Body).Decode(&tk); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !tk.Degraded || tk.Reranked || resp.Header.Get("X-Simrank-Degraded") != "true" {
		t.Fatalf("topk degrade: %+v (header %q)", tk, resp.Header.Get("X-Simrank-Degraded"))
	}
	if srv.degradedTotal.Load() == 0 {
		t.Fatal("degradedTotal not incremented")
	}
}

// TestRouterLinearized: the router solves exact queries locally over its
// full graph, and its linearized answers must be byte-identical to the
// single-node daemon's (same solver, same graph, same encoding), healthy
// or degraded-free. Walk-engine probes stay byte-identical too.
func TestRouterLinearized(t *testing.T) {
	fl := newRouterFleet(t, 3, Config{Workers: 1}, 0)
	for _, path := range []string{
		"/v1/single_source?q=4&engine=linearized",
		"/v1/single_source?q=77&min=0.001&engine=linearized",
		fmt.Sprintf("/v1/single_source?q=%d&engine=linearized", fl.n-1),
		"/v1/topk?q=11&k=7&engine=linearized",
		"/v1/single_source?q=4&engine=walk",
		"/v1/topk?q=11&k=7&engine=walk",
		"/v1/topk?q=11&k=7&engine=bogus",
	} {
		cs, bs := get(t, fl.single.URL+path)
		cr, br := get(t, fl.router.URL+path)
		if cs != cr {
			t.Errorf("%s: status single=%d router=%d (router body %q)", path, cs, cr, br)
			continue
		}
		if !bytes.Equal(bs, br) {
			t.Errorf("%s: bodies differ\nsingle: %s\nrouter: %s", path, bs, br)
		}
	}
}

// TestEngineMetrics: the per-engine request counters must appear on
// /metrics and track /v1/single_source and /v1/topk requests.
func TestEngineMetrics(t *testing.T) {
	_, idx := testIndex(t)
	ts := httptest.NewServer(newServer(idx, 0, 1))
	defer ts.Close()

	get(t, ts.URL+"/v1/single_source?q=1")
	get(t, ts.URL+"/v1/topk?q=1&k=3&engine=walk")
	get(t, ts.URL+"/v1/single_source?q=1&engine=linearized")

	_, body := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		`simrankd_engine_requests_total{engine="walk"} 2`,
		`simrankd_engine_requests_total{engine="linearized"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
