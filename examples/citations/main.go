// Citations: related-work discovery on a patent-style citation network.
//
// This is the workload the paper's introduction motivates: given a paper
// (patent), find structurally similar ones — patents cited by similar
// patents, even when they never cite each other. The example generates a
// PATENT-shaped citation DAG, compares the conventional engine against the
// differential one at the same accuracy, and shows how the differential
// model's exponential convergence (Section IV) cuts iterations.
//
//	go run ./examples/citations
package main

import (
	"fmt"
	"log"

	"oipsr/graph"
	"oipsr/graph/gen"
	"oipsr/simrank"
)

func main() {
	const (
		n      = 1500
		avgDeg = 4 // PATENT-like density
		c      = 0.8
		eps    = 1e-4
	)
	g := gen.CitationGraph(n, avgDeg, 7)
	fmt.Printf("citation network: %s\n\n", graph.ComputeStats(g))

	// How many iterations will each model need? (Fig. 6f style estimates.)
	est, err := simrank.EstimateIterations(c, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("iterations needed for eps=%g at C=%g: conventional %d, differential %d\n",
		eps, c, est.Conventional, est.Differential)
	fmt.Printf("(a-priori bounds: Lambert-W estimate %d, log estimate %d)\n\n", est.Lambert, est.Log)

	sr, srStats, err := simrank.Compute(g, simrank.Options{
		Algorithm: simrank.OIPSR, C: c, Eps: eps,
	})
	if err != nil {
		log.Fatal(err)
	}
	ds, dsStats, err := simrank.Compute(g, simrank.Options{
		Algorithm: simrank.OIPDSR, C: c, Eps: eps,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OIP-SR : %3d iterations, %8v\n", srStats.Iterations, srStats.ComputeTime)
	fmt.Printf("OIP-DSR: %3d iterations, %8v (%.1fx fewer iterations)\n\n",
		dsStats.Iterations, dsStats.ComputeTime,
		float64(srStats.Iterations)/float64(dsStats.Iterations))

	// Query: the most-cited patent (the one with the largest in-degree).
	query := 0
	for v := 0; v < g.NumVertices(); v++ {
		if g.InDegree(v) > g.InDegree(query) {
			query = v
		}
	}
	fmt.Printf("patents most similar to #%d (cited %d times), conventional model:\n",
		query, g.InDegree(query))
	for i, r := range sr.TopK(query, 5) {
		fmt.Printf("  %d. patent #%-6d score %.5f (cited %d times)\n",
			i+1, r.Vertex, r.Score, g.InDegree(r.Vertex))
	}

	// The differential model should rank (nearly) the same patents on top.
	a := idsOf(sr.TopK(query, 10))
	b := idsOf(ds.TopK(query, 10))
	fmt.Printf("\ntop-10 agreement between the two models: %.0f%% overlap, tau=%.3f\n",
		100*simrank.TopKOverlap(a, b),
		simrank.KendallTau(sr.Row(query), ds.Row(query)))
}

func idsOf(rs []simrank.Ranked) []int {
	out := make([]int, len(rs))
	for i, r := range rs {
		out[i] = r.Vertex
	}
	return out
}
