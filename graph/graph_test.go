package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// paperGraph is the 8-vertex citation network of Fig. 1a with the in-neighbor
// sets listed in Fig. 2a:
//
//	I(a)={b,g} I(b)={e,f,g,i} I(c)={b,d,g} I(d)={a,e,f,i} I(e)={f,g} I(h)={b,d}
//
// Vertex ids: a=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7. f, g, i have empty in-sets;
// i=8 would make 9 vertices, but Fig. 2a uses only the 8 labeled a..h plus i;
// we include i as vertex 8.
func paperGraph(t testing.TB) *Graph {
	t.Helper()
	const (
		a, b, c, d, e, f, gg, h, i = 0, 1, 2, 3, 4, 5, 6, 7, 8
	)
	edges := [][2]int{
		{b, a}, {gg, a},
		{e, b}, {f, b}, {gg, b}, {i, b},
		{b, c}, {d, c}, {gg, c},
		{a, d}, {e, d}, {f, d}, {i, d},
		{f, e}, {gg, e},
		{b, h}, {d, h},
	}
	g, err := FromEdges(9, edges)
	if err != nil {
		t.Fatalf("building paper graph: %v", err)
	}
	return g
}

func TestPaperGraphInSets(t *testing.T) {
	g := paperGraph(t)
	want := map[int][]int{
		0: {1, 6},       // I(a) = {b, g}
		1: {4, 5, 6, 8}, // I(b) = {e, f, g, i}
		2: {1, 3, 6},    // I(c) = {b, d, g}
		3: {0, 4, 5, 8}, // I(d) = {a, e, f, i}
		4: {5, 6},       // I(e) = {f, g}
		5: nil,          // I(f) empty
		6: nil,          // I(g) empty
		7: {1, 3},       // I(h) = {b, d}
		8: nil,          // I(i) empty
	}
	for v, in := range want {
		got := g.In(v)
		if len(in) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, in) {
			t.Errorf("In(%d) = %v, want %v", v, got, in)
		}
	}
	if g.NumEdges() != 17 {
		t.Errorf("NumEdges = %d, want 17", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBuilderDeduplicates(t *testing.T) {
	b := NewBuilder(3, 4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2 after dedup", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || g.HasEdge(2, 0) {
		t.Error("HasEdge disagrees with inserted edges")
	}
}

func TestBuilderSelfLoops(t *testing.T) {
	b := NewBuilder(2, 2)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	g := b.MustBuild()
	if !g.HasEdge(0, 0) {
		t.Error("self loop should be kept by default")
	}

	b2 := NewBuilder(2, 2).DropSelfLoops()
	b2.AddEdge(0, 0)
	b2.AddEdge(0, 1)
	g2 := b2.MustBuild()
	if g2.HasEdge(0, 0) {
		t.Error("DropSelfLoops builder kept a self loop")
	}
	if g2.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g2.NumEdges())
	}
}

func TestBuilderRejectsNegativeIDs(t *testing.T) {
	b := NewBuilder(0, 1)
	b.AddEdge(-1, 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted a negative vertex id")
	}
}

func TestBuilderGrowsVertexSpace(t *testing.T) {
	b := NewBuilder(1, 1)
	b.AddEdge(0, 41)
	g := b.MustBuild()
	if g.NumVertices() != 42 {
		t.Fatalf("NumVertices = %d, want 42", g.NumVertices())
	}
}

func TestEnsureVerticesIsolated(t *testing.T) {
	b := NewBuilder(0, 0)
	b.EnsureVertices(5)
	g := b.MustBuild()
	if g.NumVertices() != 5 || g.NumEdges() != 0 {
		t.Fatalf("got n=%d m=%d, want n=5 m=0", g.NumVertices(), g.NumEdges())
	}
	for v := 0; v < 5; v++ {
		if g.InDegree(v) != 0 || g.OutDegree(v) != 0 {
			t.Errorf("vertex %d should be isolated", v)
		}
	}
}

func TestTranspose(t *testing.T) {
	g := paperGraph(t)
	tr := g.Transpose()
	if err := tr.Validate(); err != nil {
		t.Fatalf("transpose invalid: %v", err)
	}
	g.Edges(func(u, v int) bool {
		if !tr.HasEdge(v, u) {
			t.Errorf("edge (%d,%d) missing in transpose as (%d,%d)", u, v, v, u)
		}
		return true
	})
	if tr.NumEdges() != g.NumEdges() {
		t.Errorf("transpose edge count %d != %d", tr.NumEdges(), g.NumEdges())
	}
	// Transposing twice yields the original adjacency.
	trtr := tr.Transpose()
	for v := 0; v < g.NumVertices(); v++ {
		if !reflect.DeepEqual(trtr.In(v), g.In(v)) && !(len(trtr.In(v)) == 0 && len(g.In(v)) == 0) {
			t.Errorf("double transpose In(%d) = %v, want %v", v, trtr.In(v), g.In(v))
		}
	}
}

func TestEdgesIterationOrderAndEarlyStop(t *testing.T) {
	g := MustFromEdges(3, [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 0}})
	var got [][2]int
	g.Edges(func(u, v int) bool {
		got = append(got, [2]int{u, v})
		return true
	})
	want := [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 0}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Edges order = %v, want %v", got, want)
	}
	count := 0
	g.Edges(func(u, v int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early stop visited %d edges, want 2", count)
	}
}

// randomGraph builds a random graph for property tests.
func randomGraph(rng *rand.Rand, n, m int) *Graph {
	b := NewBuilder(n, m)
	b.EnsureVertices(n)
	for i := 0; i < m; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return b.MustBuild()
}

func TestPropertyCSRInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		m := rng.Intn(4 * n)
		g := randomGraph(rng, n, m)
		if err := g.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Degree sums match edge count in both directions.
		sumIn, sumOut := 0, 0
		for v := 0; v < n; v++ {
			sumIn += g.InDegree(v)
			sumOut += g.OutDegree(v)
		}
		return sumIn == g.NumEdges() && sumOut == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyInOutConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		g := randomGraph(rng, n, rng.Intn(3*n))
		// u in In(v) <=> v in Out(u)
		for v := 0; v < n; v++ {
			for _, u := range g.In(v) {
				found := false
				for _, w := range g.Out(u) {
					if w == v {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestComputeStatsPaperGraph(t *testing.T) {
	g := paperGraph(t)
	s := ComputeStats(g)
	if s.Vertices != 9 || s.Edges != 17 {
		t.Fatalf("stats n=%d m=%d, want 9/17", s.Vertices, s.Edges)
	}
	if s.EmptyInSets != 3 { // f, g, i
		t.Errorf("EmptyInSets = %d, want 3", s.EmptyInSets)
	}
	// Union of in-sets: {b,g,e,f,i,d,a} = 7 distinct vertices; total = 17.
	if s.InSetUnion != 7 {
		t.Errorf("InSetUnion = %d, want 7", s.InSetUnion)
	}
	if s.InSetTotal != 17 {
		t.Errorf("InSetTotal = %d, want 17", s.InSetTotal)
	}
	if s.OverlapRatio <= 0.5 {
		t.Errorf("OverlapRatio = %f, want > 0.5 for the paper graph", s.OverlapRatio)
	}
}

func TestInDegreeHistogram(t *testing.T) {
	g := MustFromEdges(4, [][2]int{{0, 1}, {2, 1}, {3, 1}, {0, 2}})
	degs, counts := InDegreeHistogram(g)
	// in-degrees: v0=0 v1=3 v2=1 v3=0 -> {0:2, 1:1, 3:1}
	if !sort.IntsAreSorted(degs) {
		t.Error("degrees not sorted")
	}
	got := map[int]int{}
	for i, d := range degs {
		got[d] = counts[i]
	}
	want := map[int]int{0: 2, 1: 1, 3: 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("histogram = %v, want %v", got, want)
	}
}

func TestHasEdgeBinarySearchBounds(t *testing.T) {
	g := MustFromEdges(5, [][2]int{{1, 3}, {2, 3}, {4, 3}})
	cases := []struct {
		u, v int
		want bool
	}{
		{1, 3, true}, {2, 3, true}, {4, 3, true},
		{0, 3, false}, {3, 3, false}, {1, 2, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func BenchmarkBuild10k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n, m = 10000, 50000
	us := make([]int, m)
	vs := make([]int, m)
	for i := range us {
		us[i], vs[i] = rng.Intn(n), rng.Intn(n)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld := NewBuilder(n, m)
		for j := 0; j < m; j++ {
			bld.AddEdge(us[j], vs[j])
		}
		if _, err := bld.Build(); err != nil {
			b.Fatal(err)
		}
	}
}
