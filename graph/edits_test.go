package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// oracleApply replays the batch against a plain edge set and rebuilds the
// graph from scratch through the Builder — the reference ApplyEdits must
// match structurally.
func oracleApply(t *testing.T, g *Graph, edits []Edit) *Graph {
	t.Helper()
	set := map[[2]int]bool{}
	g.Edges(func(u, v int) bool {
		set[[2]int{u, v}] = true
		return true
	})
	for _, e := range edits {
		if e.Op == EditAdd {
			set[[2]int{e.U, e.V}] = true
		} else {
			delete(set, [2]int{e.U, e.V})
		}
	}
	b := NewBuilder(g.NumVertices(), len(set))
	b.EnsureVertices(g.NumVertices())
	for uv := range set {
		b.AddEdge(uv[0], uv[1])
	}
	ng, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ng
}

func graphsEqual(a, b *Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for v := 0; v < a.NumVertices(); v++ {
		if !reflect.DeepEqual(a.In(v), b.In(v)) || !reflect.DeepEqual(a.Out(v), b.Out(v)) {
			return false
		}
	}
	return true
}

func TestApplyEditsBasic(t *testing.T) {
	g := MustFromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	ng, sum, err := g.ApplyEdits([]Edit{
		{EditAdd, 0, 2},    // new edge
		{EditAdd, 0, 1},    // already present: no-op
		{EditRemove, 2, 3}, // present: removed
		{EditRemove, 4, 4}, // absent: no-op
		{EditAdd, 4, 4},    // self-loop add
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Added != 2 || sum.Removed != 1 {
		t.Fatalf("summary = %+v, want Added 2 Removed 1", sum)
	}
	if want := []int{2, 3, 4}; !reflect.DeepEqual(sum.DirtyIn, want) {
		t.Fatalf("DirtyIn = %v, want %v", sum.DirtyIn, want)
	}
	if want := []int{0, 2, 4}; !reflect.DeepEqual(sum.DirtyOut, want) {
		t.Fatalf("DirtyOut = %v, want %v", sum.DirtyOut, want)
	}
	if err := ng.Validate(); err != nil {
		t.Fatal(err)
	}
	if !ng.HasEdge(0, 2) || ng.HasEdge(2, 3) || !ng.HasEdge(4, 4) {
		t.Fatal("edits not applied")
	}
	// The receiver must be untouched.
	if g.NumEdges() != 4 || g.HasEdge(0, 2) || !g.HasEdge(2, 3) {
		t.Fatal("ApplyEdits mutated the receiver")
	}
}

func TestApplyEditsLastWins(t *testing.T) {
	g := MustFromEdges(3, [][2]int{{0, 1}})
	// add then remove the same absent edge: net no-op
	ng, sum, err := g.ApplyEdits([]Edit{{EditAdd, 1, 2}, {EditRemove, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Added != 0 || sum.Removed != 0 || ng.NumEdges() != 1 || len(sum.DirtyIn) != 0 {
		t.Fatalf("add+remove: summary %+v, m=%d", sum, ng.NumEdges())
	}
	// remove then re-add an existing edge: net no-op
	ng, sum, err = g.ApplyEdits([]Edit{{EditRemove, 0, 1}, {EditAdd, 0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Added != 0 || sum.Removed != 0 || !ng.HasEdge(0, 1) {
		t.Fatalf("remove+add: summary %+v", sum)
	}
}

func TestApplyEditsValidation(t *testing.T) {
	g := MustFromEdges(3, [][2]int{{0, 1}})
	for _, edits := range [][]Edit{
		{{EditAdd, -1, 0}},
		{{EditAdd, 0, 3}},
		{{EditRemove, 7, 7}},
		{{EditOp(9), 0, 1}},
	} {
		if _, _, err := g.ApplyEdits(edits); err == nil {
			t.Errorf("ApplyEdits(%v) accepted invalid batch", edits)
		}
	}
}

func TestApplyEditsEmptyBatch(t *testing.T) {
	g := MustFromEdges(4, [][2]int{{0, 1}, {2, 3}})
	ng, sum, err := g.ApplyEdits(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, ng) || sum.Added != 0 || sum.Removed != 0 {
		t.Fatal("empty batch changed the graph")
	}
}

// TestApplyEditsRandomVsOracle: random batches on random graphs must match
// a from-scratch rebuild of the edited edge set, and the dirty lists must
// contain exactly the vertices whose adjacency rows changed.
func TestApplyEditsRandomVsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(30)
		b := NewBuilder(n, 0)
		b.EnsureVertices(n)
		for i := 0; i < rng.Intn(4*n); i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g := b.MustBuild()

		edits := make([]Edit, rng.Intn(20))
		for i := range edits {
			edits[i] = Edit{EditOp(rng.Intn(2)), rng.Intn(n), rng.Intn(n)}
		}
		ng, sum, err := g.ApplyEdits(edits)
		if err != nil {
			t.Fatal(err)
		}
		if err := ng.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := oracleApply(t, g, edits)
		if !graphsEqual(ng, want) {
			t.Fatalf("trial %d: ApplyEdits disagrees with oracle rebuild", trial)
		}
		if ng.NumEdges() != g.NumEdges()+sum.Added-sum.Removed {
			t.Fatalf("trial %d: edge count %d != %d+%d-%d", trial, ng.NumEdges(), g.NumEdges(), sum.Added, sum.Removed)
		}
		// Dirty lists == exactly the changed rows.
		dirtyIn, dirtyOut := map[int]bool{}, map[int]bool{}
		for v := 0; v < n; v++ {
			if !reflect.DeepEqual(g.In(v), ng.In(v)) {
				dirtyIn[v] = true
			}
			if !reflect.DeepEqual(g.Out(v), ng.Out(v)) {
				dirtyOut[v] = true
			}
		}
		checkDirty := func(got []int, want map[int]bool, dir string) {
			if len(got) != len(want) {
				t.Fatalf("trial %d: %s dirty list %v, want %d vertices", trial, dir, got, len(want))
			}
			for i, v := range got {
				if !want[v] {
					t.Fatalf("trial %d: %s dirty list contains unchanged vertex %d", trial, dir, v)
				}
				if i > 0 && got[i-1] >= v {
					t.Fatalf("trial %d: %s dirty list not sorted", trial, dir)
				}
			}
		}
		checkDirty(sum.DirtyIn, dirtyIn, "in")
		checkDirty(sum.DirtyOut, dirtyOut, "out")
	}
}
