// Package core implements OIP-SR, the paper's primary contribution
// (Algorithm 1): SimRank iteration with both inner and outer partial-sums
// sharing driven by the minimum-spanning-tree plan of DMST-Reduce.
//
// One iteration ("sweep") walks the plan's chain steps — the paper's
// Fig. 2d path decomposition. At each step the inner partial-sum vector
// Partial_{I(u)}(.) is derived from the previous set's vector by applying
// the symmetric difference of the two in-neighbor sets (Proposition 3 /
// Eq. 9), or rebuilt from scratch at chain starts. For every set the sweep
// then runs procedure OP — a pass over the plan's tree steps with one
// scalar accumulator per tree node — to produce the full row s_{k+1}(u, .)
// via outer partial sums (Proposition 4 / Eqs. 10-11).
//
// # Concurrency model
//
// The chains of the plan are mutually independent: every chain rebuilds its
// inner partial-sum vector from scratch at its root, and the set of rows a
// chain emits is disjoint from every other chain's. A Sweeper built with
// workers > 1 therefore schedules whole chains across a fixed worker pool,
// longest-estimated-cost-first for load balance. Each worker owns its own
// partial/vals scratch buffers and its own SweepStats; workers read the
// shared prev matrix and plan (both immutable during a sweep) and write
// disjoint rows of next, so no locks are needed. Stats are merged after the
// barrier, keeping operation counts exact.
//
// Determinism guarantee: the floating-point operations that produce any
// given row — and their order — are fixed by the chain containing it, not
// by which worker runs the chain or when. Sweep output is therefore
// bit-identical for every worker count, including the serial workers == 1
// path, and InnerAdds/OuterAdds are identical as well.
//
// # Canonical symmetry and the tiled backend
//
// Every sweep ends with a mirror pass that copies the upper triangle of
// next onto the lower one (simmat.MirrorUpper): the value computed while
// emitting row min(a,b) is the canonical score of the pair. The pass is
// pure copies, so determinism is unaffected. SweepTiled runs the identical
// per-row arithmetic against the tiled backend — rows of prev are assembled
// from tiles, emitted rows land in an O(n) buffer, and only the canonical
// upper segment is stored — which is why tiled output is bit-identical to
// the dense path for every block size and worker count.
package core

import (
	"sort"

	"oipsr/graph"
	"oipsr/internal/par"
	"oipsr/internal/partition"
	"oipsr/internal/simmat"
)

// SweepStats accumulates operation counts across sweeps. Additions are
// scalar float64 additions/subtractions, the unit the OIP cost model (and
// the NP-hardness reduction) is stated in.
type SweepStats struct {
	InnerAdds int64 // building/deriving inner partial-sum vectors
	OuterAdds int64 // deriving outer partial sums in procedure OP
}

// sweepWorker is the per-worker mutable state of a sweep: the O(n) scratch
// buffers and the operation counters. Workers never share these. rowBuf and
// rowTmp are allocated lazily on the first tiled sweep: rowBuf receives the
// emitted row before its canonical segment is stored, rowTmp stages rows of
// prev assembled from tiles.
type sweepWorker struct {
	partial []float64 // Partial_{I(u)}(y) for the current chain position
	vals    []float64 // per-tree-step outer partial sums (procedure OP)
	rowBuf  []float64 // tiled sweeps: emit target row
	rowTmp  []float64 // tiled sweeps: staged prev row
	stats   SweepStats
}

// Sweeper applies the pairwise in-neighbor averaging operator
//
//	next(a,b) = damp / (|I(a)| |I(b)|) * sum_{i in I(a), j in I(b)} prev(i,j)
//
// using inner+outer partial-sums sharing, optionally across a worker pool
// (see the package comment for the concurrency model). It owns the per-worker
// O(n) scratch buffers, so one Sweeper can be reused across iterations and
// algorithms: OIP-SR calls it with damp = C and pinned diagonal, the
// differential engine (OIP-DSR) with damp = 1 and a free diagonal for its
// T_k recurrence.
type Sweeper struct {
	g    *graph.Graph
	plan *partition.Plan

	invDeg []float64 // 1/|I(v)|, 0 for empty sets (avoids n^2 divisions)

	workers int
	ws      []sweepWorker
	sched   [][]partition.Chain // chains assigned to each worker (LPT)

	disableOuter bool
}

// NewSweeper builds a serial (single-worker) Sweeper for g with the given
// plan. If disableOuter is true, procedure OP is replaced by the psum-SR
// one-by-one outer summation (the ablation of Section III-B: inner sharing
// only).
func NewSweeper(g *graph.Graph, plan *partition.Plan, disableOuter bool) *Sweeper {
	return NewParallelSweeper(g, plan, disableOuter, 1)
}

// NewParallelSweeper builds a Sweeper running each sweep on a pool of the
// given size. workers < 1 means runtime.GOMAXPROCS(0). The pool is capped at
// the number of plan chains — extra workers would have nothing to run.
func NewParallelSweeper(g *graph.Graph, plan *partition.Plan, disableOuter bool, workers int) *Sweeper {
	n := g.NumVertices()
	inv := make([]float64, n)
	for v := 0; v < n; v++ {
		if d := g.InDegree(v); d > 0 {
			inv[v] = 1 / float64(d)
		}
	}
	workers = par.Resolve(workers)
	if c := len(plan.Chains); workers > c && c > 0 {
		workers = c
	}
	if workers < 1 {
		workers = 1
	}
	sw := &Sweeper{
		g:            g,
		plan:         plan,
		invDeg:       inv,
		workers:      workers,
		ws:           make([]sweepWorker, workers),
		sched:        schedule(plan.Chains, workers),
		disableOuter: disableOuter,
	}
	for w := range sw.ws {
		sw.ws[w].partial = make([]float64, n)
		sw.ws[w].vals = make([]float64, len(plan.TreeSteps))
	}
	return sw
}

// schedule partitions chains across workers by longest-processing-time-first
// greedy bin packing: chains sorted by descending cost estimate, each placed
// on the currently least-loaded worker. Ties break on chain order, so the
// assignment is deterministic.
func schedule(chains []partition.Chain, workers int) [][]partition.Chain {
	sched := make([][]partition.Chain, workers)
	if workers == 1 {
		sched[0] = chains
		return sched
	}
	order := make([]int, len(chains))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return chains[order[a]].Cost > chains[order[b]].Cost
	})
	load := make([]int64, workers)
	for _, ci := range order {
		best := 0
		for w := 1; w < workers; w++ {
			if load[w] < load[best] {
				best = w
			}
		}
		sched[best] = append(sched[best], chains[ci])
		load[best] += chains[ci].Cost
	}
	return sched
}

// Workers reports the effective pool size.
func (sw *Sweeper) Workers() int { return sw.workers }

// Stats returns the cumulative operation counts, merged across workers.
// Counts are exact: each worker counts its own chains and the per-chain
// counts do not depend on the assignment.
func (sw *Sweeper) Stats() SweepStats {
	var st SweepStats
	for w := range sw.ws {
		st.InnerAdds += sw.ws[w].stats.InnerAdds
		st.OuterAdds += sw.ws[w].stats.OuterAdds
	}
	return st
}

// AuxBytes reports the auxiliary memory held by the sweeper's O(n) buffers
// (the "intermediate memory" of Proposition 5; score matrices excluded).
// Parallel sweepers hold one partial/vals pair per worker, plus two row
// buffers per worker once a tiled sweep has run.
func (sw *Sweeper) AuxBytes() int64 {
	var b int64
	for w := range sw.ws {
		b += int64(len(sw.ws[w].partial))*8 + int64(len(sw.ws[w].vals))*8 +
			int64(len(sw.ws[w].rowBuf))*8 + int64(len(sw.ws[w].rowTmp))*8
	}
	return b + int64(len(sw.invDeg))*8
}

// Sweep applies the averaging operator from prev into next. Rows and
// columns of vertices with empty in-neighbor sets become zero; if pinDiag
// is set, every diagonal entry is then forced to 1 (the s(a,a)=1 rule of
// the conventional model).
//
// next must be all-zero, an identity matrix, or the output of a previous
// Sweep over the same graph: the emit stage overwrites exactly the
// (non-empty row, non-empty column) cells plus, below, the empty rows and
// the diagonal, and relies on the remaining cells already being zero. This
// avoids an n^2 clear per iteration; the engines' ping-pong buffers satisfy
// the requirement by construction.
func (sw *Sweeper) Sweep(prev, next *simmat.Matrix, damp float64, pinDiag bool) {
	n := sw.g.NumVertices()

	par.Do(sw.workers, func(w int) {
		// Rows of empty in-neighbor sets are never written by emitRow but
		// may hold a stale diagonal 1 from an identity-initialized buffer.
		lo, hi := par.Range(n, sw.workers, w)
		for v := lo; v < hi; v++ {
			if sw.invDeg[v] == 0 {
				row := next.Row(v)
				for i := range row {
					row[i] = 0
				}
			}
		}

		// Walk this worker's chains: from scratch at chain starts (lines 5-6
		// of Algorithm 1), otherwise by the consecutive symmetric difference
		// (Eq. 9; lines 10-11). Chains never branch, so no undo is needed,
		// and chains never read each other's state, so workers need no
		// locks.
		st := &sw.ws[w]
		for _, ch := range sw.sched[w] {
			for i := ch.Start; i < ch.End; i++ {
				step := sw.plan.ChainSteps[i]
				u := step.Vertex
				if step.Parent < 0 {
					sw.buildScratch(st, prev, u)
				} else {
					sw.applyDiff(st, prev, sw.plan.Add[u], sw.plan.Sub[u])
				}
				sw.emitRow(st, next.Row(u), u, damp)
			}
		}
	})

	if pinDiag {
		par.Do(sw.workers, func(w int) {
			lo, hi := par.Range(n, sw.workers, w)
			for v := lo; v < hi; v++ {
				next.Set(v, v, 1)
			}
		})
	}

	// Canonicalize: the row-min(a,b) value becomes the score of both (a,b)
	// and (b,a) (see the package comment). Copies only, so determinism and
	// operation counts are untouched.
	next.MirrorUpper(sw.workers)
}

// SweepTiled is Sweep against the tiled backend: identical chain schedule,
// identical per-row arithmetic (rows of prev are staged from tiles, the
// emitted row lands in an O(n) buffer), with only the canonical upper
// segment of each row stored. Output — and SweepStats — are bit-identical
// to Sweep over dense matrices for every block size and worker count. prev
// and next should come from the same computation's TileStore so one memory
// budget governs both; unlike Sweep, the full upper row is rewritten every
// time, so next needs no prior-state contract.
func (sw *Sweeper) SweepTiled(prev, next *simmat.Tiled, damp float64, pinDiag bool) error {
	n := sw.g.NumVertices()
	errs := make([]error, sw.workers)
	par.Do(sw.workers, func(w int) {
		st := &sw.ws[w]
		if st.rowBuf == nil {
			st.rowBuf = make([]float64, n)
			st.rowTmp = make([]float64, n)
		}
		// The emit stage writes the same cell set for every row (the tree
		// steps, or the non-empty-set columns without outer sharing), so
		// zeroing once per sweep keeps never-emitted cells — empty
		// in-neighbor-set columns — at their a-priori zero.
		for i := range st.rowBuf {
			st.rowBuf[i] = 0
		}

		// Rows of empty in-neighbor sets are all-zero except a pinned
		// diagonal; rowBuf is all-zero here by construction.
		lo, hi := par.Range(n, sw.workers, w)
		for v := lo; v < hi; v++ {
			if sw.invDeg[v] != 0 {
				continue
			}
			if pinDiag {
				st.rowBuf[v] = 1
			}
			err := next.SetRowUpper(v, st.rowBuf)
			if pinDiag {
				st.rowBuf[v] = 0
			}
			if err != nil {
				errs[w] = err
				return
			}
		}

		for _, ch := range sw.sched[w] {
			for i := ch.Start; i < ch.End; i++ {
				step := sw.plan.ChainSteps[i]
				u := step.Vertex
				var err error
				if step.Parent < 0 {
					err = sw.buildScratchTiled(st, prev, u)
				} else {
					err = sw.applyDiffTiled(st, prev, sw.plan.Add[u], sw.plan.Sub[u])
				}
				if err != nil {
					errs[w] = err
					return
				}
				sw.emitRow(st, st.rowBuf, u, damp)
				if pinDiag {
					// The diagonal cell belongs to row u's canonical
					// segment alone; u heads a non-empty set, so the next
					// emit overwrites rowBuf[u] regardless.
					st.rowBuf[u] = 1
				}
				if err := next.SetRowUpper(u, st.rowBuf); err != nil {
					errs[w] = err
					return
				}
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// buildScratch fills st.partial with the sum of prev rows over I(root).
func (sw *Sweeper) buildScratch(st *sweepWorker, prev *simmat.Matrix, root int) {
	in := sw.g.In(root)
	copy(st.partial, prev.Row(in[0]))
	for _, x := range in[1:] {
		rx := prev.Row(x)
		for y, v := range rx {
			st.partial[y] += v
		}
	}
	st.stats.InnerAdds += int64(len(in)-1) * int64(len(st.partial))
}

// applyDiff updates st.partial by adding the prev rows in add and
// subtracting those in sub.
func (sw *Sweeper) applyDiff(st *sweepWorker, prev *simmat.Matrix, add, sub []int) {
	for _, x := range add {
		rx := prev.Row(x)
		for y, v := range rx {
			st.partial[y] += v
		}
	}
	for _, x := range sub {
		rx := prev.Row(x)
		for y, v := range rx {
			st.partial[y] -= v
		}
	}
	st.stats.InnerAdds += int64(len(add)+len(sub)) * int64(len(st.partial))
}

// buildScratchTiled is buildScratch with prev rows staged out of tiles:
// the per-element accumulation order over I(root) is unchanged, so partial
// is bit-identical to the dense build.
func (sw *Sweeper) buildScratchTiled(st *sweepWorker, prev *simmat.Tiled, root int) error {
	in := sw.g.In(root)
	if err := prev.RowInto(in[0], st.partial); err != nil {
		return err
	}
	for _, x := range in[1:] {
		if err := prev.RowInto(x, st.rowTmp); err != nil {
			return err
		}
		for y, v := range st.rowTmp {
			st.partial[y] += v
		}
	}
	st.stats.InnerAdds += int64(len(in)-1) * int64(len(st.partial))
	return nil
}

// applyDiffTiled is applyDiff with prev rows staged out of tiles.
func (sw *Sweeper) applyDiffTiled(st *sweepWorker, prev *simmat.Tiled, add, sub []int) error {
	for _, x := range add {
		if err := prev.RowInto(x, st.rowTmp); err != nil {
			return err
		}
		for y, v := range st.rowTmp {
			st.partial[y] += v
		}
	}
	for _, x := range sub {
		if err := prev.RowInto(x, st.rowTmp); err != nil {
			return err
		}
		for y, v := range st.rowTmp {
			st.partial[y] -= v
		}
	}
	st.stats.InnerAdds += int64(len(add)+len(sub)) * int64(len(st.partial))
	return nil
}

// emitRow computes next(u, w) for all w from the current partial vector
// into row — the dense matrix row, or a tiled sweep's staging buffer.
// With outer sharing it is procedure OP over the flattened tree steps:
// outer partial sums are scalars, the parent's value sits in st.vals, and
// branching costs nothing, so the per-row additions equal the MST weight.
// Without outer sharing it is the psum-SR per-target summation.
func (sw *Sweeper) emitRow(st *sweepWorker, row []float64, u int, damp float64) {
	g, plan := sw.g, sw.plan
	scaleU := damp * sw.invDeg[u]

	if sw.disableOuter {
		outerAdds := int64(0)
		for w := 0; w < g.NumVertices(); w++ {
			in := g.In(w)
			if len(in) == 0 {
				continue
			}
			sum := 0.0
			for _, j := range in {
				sum += st.partial[j]
			}
			outerAdds += int64(len(in) - 1)
			row[w] = scaleU * sw.invDeg[w] * sum
		}
		st.stats.OuterAdds += outerAdds
		return
	}

	outerAdds := int64(0)
	for i, step := range plan.TreeSteps {
		z := step.Vertex
		var val float64
		if step.Parent < 0 {
			// From scratch (line 2 of procedure OP).
			for _, y := range g.In(z) {
				val += st.partial[y]
			}
			outerAdds += int64(len(g.In(z)) - 1)
		} else {
			// Derive OuterPartial_{I(z)} from the parent's value
			// (Proposition 4; line 8 of procedure OP).
			val = st.vals[step.Parent]
			for _, y := range plan.TreeAdd[z] {
				val += st.partial[y]
			}
			for _, y := range plan.TreeSub[z] {
				val -= st.partial[y]
			}
			outerAdds += int64(len(plan.TreeAdd[z]) + len(plan.TreeSub[z]))
		}
		st.vals[i] = val
		row[z] = scaleU * sw.invDeg[z] * val
	}
	st.stats.OuterAdds += outerAdds
}
