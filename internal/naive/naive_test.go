package naive

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"oipsr/graph"
	"oipsr/internal/numeric"
)

// paperGraph is the Fig. 1a network; ids a=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7 i=8.
func paperGraph(t testing.TB) *graph.Graph {
	t.Helper()
	const (
		a, b, c, d, e, f, gg, h, i = 0, 1, 2, 3, 4, 5, 6, 7, 8
	)
	return graph.MustFromEdges(9, [][2]int{
		{b, a}, {gg, a},
		{e, b}, {f, b}, {gg, b}, {i, b},
		{b, c}, {d, c}, {gg, c},
		{a, d}, {e, d}, {f, d}, {i, d},
		{f, e}, {gg, e},
		{b, h}, {d, h},
	})
}

func TestDiagonalAlwaysOne(t *testing.T) {
	g := paperGraph(t)
	for _, k := range []int{0, 1, 5} {
		s, err := Compute(g, 0.6, k)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.NumVertices(); v++ {
			if s.At(v, v) != 1 {
				t.Errorf("k=%d: s(%d,%d) = %g, want 1", k, v, v, s.At(v, v))
			}
		}
	}
}

func TestEmptyInSetPairsZero(t *testing.T) {
	g := paperGraph(t)
	s, err := Compute(g, 0.6, 5)
	if err != nil {
		t.Fatal(err)
	}
	// f (5), g (6), i (8) have empty in-sets: any pair involving them and a
	// different vertex scores 0.
	for _, v := range []int{5, 6, 8} {
		for u := 0; u < g.NumVertices(); u++ {
			if u == v {
				continue
			}
			if s.At(u, v) != 0 || s.At(v, u) != 0 {
				t.Errorf("s(%d,%d) = %g / %g, want 0 (empty in-set)", u, v, s.At(u, v), s.At(v, u))
			}
		}
	}
}

// TestSiblingsClosedForm: two vertices fed by a single shared source have
// similarity exactly C from the first iteration on.
func TestSiblingsClosedForm(t *testing.T) {
	// 0 -> 1, 0 -> 2.
	g := graph.MustFromEdges(3, [][2]int{{0, 1}, {0, 2}})
	for _, k := range []int{1, 2, 7} {
		s, err := Compute(g, 0.8, k)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.At(1, 2); math.Abs(got-0.8) > 1e-15 {
			t.Errorf("k=%d: s(1,2) = %g, want C=0.8", k, got)
		}
	}
}

// TestHalfSharedSources: I(u)={x,y}, I(v)={x,z} with x,y,z sources gives
// s(u,v) = C/4 exactly (one matching pair of four).
func TestHalfSharedSources(t *testing.T) {
	// x=0 y=1 z=2 u=3 v=4.
	g := graph.MustFromEdges(5, [][2]int{{0, 3}, {1, 3}, {0, 4}, {2, 4}})
	s, err := Compute(g, 0.6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.At(3, 4); math.Abs(got-0.15) > 1e-15 {
		t.Errorf("s(u,v) = %g, want C/4 = 0.15", got)
	}
}

// TestTwoCycleIsZero: in the 2-cycle a<->b the only in-neighbor pair is
// (b,a) itself, so the score solves s = C*s and stays 0.
func TestTwoCycleIsZero(t *testing.T) {
	g := graph.MustFromEdges(2, [][2]int{{0, 1}, {1, 0}})
	s, err := Compute(g, 0.9, 20)
	if err != nil {
		t.Fatal(err)
	}
	if s.At(0, 1) != 0 {
		t.Errorf("s(0,1) = %g, want 0", s.At(0, 1))
	}
}

// TestFig4WorkedExample reproduces the last two columns of Fig. 4: the
// similarity scores s_{k+1}(x, a) and s_{k+1}(x, c) with C = 0.6 on the
// Fig. 1a network, where the table's partial sums are over s_1 (so the
// output is s_2). Table values are rounded to two decimals.
func TestFig4WorkedExample(t *testing.T) {
	g := paperGraph(t)
	s, err := Compute(g, 0.6, 2)
	if err != nil {
		t.Fatal(err)
	}
	const (
		a, b, c, d, e, h = 0, 1, 2, 3, 4, 7
	)
	want := []struct {
		x      int
		sa, sc float64
	}{
		{a, 1, 0.21},
		{e, 0.15, 0.1},
		{h, 0.17, 0.22},
		{c, 0.21, 1},
		{b, 0.09, 0.06},
		{d, 0.02, 0.02},
	}
	for _, w := range want {
		if got := s.At(w.x, a); math.Abs(got-w.sa) > 0.006 {
			t.Errorf("s_2(%d, a) = %.4f, want %.2f (Fig. 4)", w.x, got, w.sa)
		}
		if got := s.At(w.x, c); math.Abs(got-w.sc) > 0.006 {
			t.Errorf("s_2(%d, c) = %.4f, want %.2f (Fig. 4)", w.x, got, w.sc)
		}
	}
}

// TestPropertyInvariants checks on random graphs: scores in [0,1], symmetric,
// diagonal 1, and monotone non-decreasing in k (Jeh-Widom's convergence
// argument relies on monotonicity).
func TestPropertyInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		b := graph.NewBuilder(n, 0)
		b.EnsureVertices(n)
		for i := 0; i < rng.Intn(4*n); i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g := b.MustBuild()
		c := 0.3 + 0.6*rng.Float64()
		prev, err := Compute(g, c, 3)
		if err != nil {
			return false
		}
		next, err := Compute(g, c, 4)
		if err != nil {
			return false
		}
		if prev.CheckSymmetric(1e-12) != nil || prev.CheckRange(0, 1, 1e-12) != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if next.At(i, j) < prev.At(i, j)-1e-12 {
					return false // must be monotone non-decreasing
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestConvergenceBound checks the Lizorkin accuracy guarantee the paper
// builds on: |s_k - s| <= C^(k+1), with s approximated by a deep iteration.
func TestConvergenceBound(t *testing.T) {
	g := paperGraph(t)
	c := 0.8
	ref, err := Compute(g, c, 80)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 3, 6, 10} {
		s, err := Compute(g, c, k)
		if err != nil {
			t.Fatal(err)
		}
		maxd := 0.0
		for i := 0; i < g.NumVertices(); i++ {
			for j := 0; j < g.NumVertices(); j++ {
				if d := math.Abs(s.At(i, j) - ref.At(i, j)); d > maxd {
					maxd = d
				}
			}
		}
		if bound := numeric.GeometricTailBound(c, k); maxd > bound {
			t.Errorf("k=%d: max error %g exceeds bound C^(k+1)=%g", k, maxd, bound)
		}
	}
}

func TestBadInputs(t *testing.T) {
	g := paperGraph(t)
	if _, err := Compute(g, 1.5, 3); err == nil {
		t.Error("want error for C > 1")
	}
	if _, err := Compute(g, 0.5, -1); err == nil {
		t.Error("want error for negative K")
	}
	s, err := Compute(g, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.At(0, 0) != 1 || s.At(0, 1) != 0 {
		t.Error("K=0 must return the identity")
	}
}
