package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"oipsr/graph"
	"oipsr/internal/lru"
	"oipsr/simrank/query"
)

// server wires the query index into an http.Handler: the /v1 endpoints,
// the health probe, and a /metrics counter dump. Responses are memoized in
// an LRU keyed by the normalized request parameters plus the index
// generation — POST /v1/edges bumps the generation, so pre-edit entries
// can never be served post-edit.
//
// Concurrency: queries hold mu.RLock for their whole execution (the index
// is repaired in place, not swapped), /v1/edges holds mu.Lock while it
// applies the batch. Reads stay fully concurrent with each other.
type server struct {
	mu      sync.RWMutex
	idx     *query.Index
	workers int // worker pool for incremental index repair and batch queries
	cache   *lru.Cache[string, []byte]
	mux     *http.ServeMux

	// maxBatch caps the number of sources one /v1/batch request may carry;
	// joinMaxCand caps the candidate pairs a /v1/join may enumerate. Both
	// are set by newServer and overridden by main's flags.
	maxBatch    int
	joinMaxCand int

	// Counters exported on /metrics. Latency is tracked as a running sum
	// plus sample count per process, enough for an average without
	// histograms; every /v1 request contributes, including error paths.
	reqSingleSource atomic.Int64
	reqTopK         atomic.Int64
	reqEdges        atomic.Int64
	reqBatch        atomic.Int64
	reqJoin         atomic.Int64
	reqErrors       atomic.Int64
	latencyMicros   atomic.Int64
	latencyCount    atomic.Int64

	batchItems      atomic.Int64
	batchItemErrors atomic.Int64

	updatesTotal  atomic.Int64
	updateMicros  atomic.Int64
	edgesAdded    atomic.Int64
	edgesRemoved  atomic.Int64
	walksRepaired atomic.Int64

	started time.Time
}

func newServer(idx *query.Index, cacheSize, workers int) *server {
	s := &server{
		idx:         idx,
		workers:     workers,
		cache:       lru.New[string, []byte](cacheSize),
		mux:         http.NewServeMux(),
		maxBatch:    defaultMaxBatch,
		joinMaxCand: query.DefaultMaxCandidates,
		started:     time.Now(),
	}
	s.mux.HandleFunc("/v1/single_source", s.handleSingleSource)
	s.mux.HandleFunc("/v1/topk", s.handleTopK)
	s.mux.HandleFunc("/v1/batch", s.handleBatch)
	s.mux.HandleFunc("/v1/join", s.handleJoin)
	s.mux.HandleFunc("/v1/edges", s.handleEdges)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *server) writeError(w http.ResponseWriter, code int, format string, args ...any) {
	s.reqErrors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorResponse{Error: fmt.Sprintf(format, args...)})
}

// checkMethod enforces the endpoint's method set, answering 405 with an
// Allow header otherwise.
func (s *server) checkMethod(w http.ResponseWriter, r *http.Request, allowed ...string) bool {
	for _, m := range allowed {
		if r.Method == m {
			return true
		}
	}
	w.Header().Set("Allow", strings.Join(allowed, ", "))
	s.writeError(w, http.StatusMethodNotAllowed, "method %s not allowed on %s", r.Method, r.URL.Path)
	return false
}

// observeLatency folds one finished /v1 request into the latency sum and
// sample count; deferred at handler entry so 4xx/5xx paths are counted too.
func (s *server) observeLatency(t0 time.Time) {
	s.latencyMicros.Add(time.Since(t0).Microseconds())
	s.latencyCount.Add(1)
}

func writeJSONBytes(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// intParam parses a required (or defaulted) integer query parameter.
func intParam(r *http.Request, name string, def int, required bool) (int, error) {
	raw := r.FormValue(name)
	if raw == "" {
		if required {
			return 0, fmt.Errorf("missing required parameter %q", name)
		}
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return v, nil
}

func boolParam(r *http.Request, name string) bool {
	switch r.FormValue(name) {
	case "1", "true", "yes", "on":
		return true
	}
	return false
}

type singleSourceResponse struct {
	Query int `json:"query"`
	N     int `json:"n"`
	// Scores is the dense score vector unless min was given.
	Scores []float64 `json:"scores,omitempty"`
	// Results holds only the entries with score >= min, sorted by
	// decreasing score, when the min parameter was given.
	Results []query.Ranked `json:"results,omitempty"`
}

// handleSingleSource serves GET/POST /v1/single_source?q=17[&min=0.01].
func (s *server) handleSingleSource(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	defer s.observeLatency(t0)
	s.reqSingleSource.Add(1)
	if !s.checkMethod(w, r, http.MethodGet, http.MethodPost) {
		return
	}
	q, err := intParam(r, "q", 0, true)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// min is parsed before any cache key is formed, and the key uses its
	// canonical decimal form: "0.01", "0.010", and "1e-2" are one entry.
	minRaw := r.FormValue("min")
	var minVal float64
	if minRaw != "" {
		minVal, err = strconv.ParseFloat(minRaw, 64)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "parameter \"min\": %v", err)
			return
		}
	}

	s.mu.RLock()
	defer s.mu.RUnlock()
	// Dense responses are O(n) bytes each; caching them would make cache
	// memory scale with graph size times -cache entries, so only the
	// thresholded (sparse) form is memoized.
	cacheable := minRaw != ""
	var key string
	if cacheable {
		key = ssCacheKey(s.idx.Generation(), q, minVal)
		if body, ok := s.cache.Get(key); ok {
			writeJSONBytes(w, body)
			return
		}
	}

	scores, err := s.idx.SingleSource(q)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	body, err := singleSourceBody(q, scores, cacheable, minVal)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	if cacheable {
		s.cache.Put(key, body)
	}
	writeJSONBytes(w, body)
}

// ssCacheKey is the response-cache key of a thresholded single-source
// query: the index generation (so updates invalidate atomically), the
// source, and the threshold in canonical decimal form — "0.01", "0.010"
// and "1e-2" share one entry, whether they arrived as a query parameter on
// /v1/single_source or as a JSON number on /v1/batch.
func ssCacheKey(gen uint64, q int, min float64) string {
	return fmt.Sprintf("g%d:ss:%d:%s", gen, q, strconv.FormatFloat(min, 'g', -1, 64))
}

// singleSourceBody marshals the /v1/single_source response body — also the
// per-item line /v1/batch streams, so the two endpoints answer (and cache)
// byte-identically.
func singleSourceBody(q int, scores []float64, sparse bool, min float64) ([]byte, error) {
	resp := singleSourceResponse{Query: q, N: len(scores)}
	if sparse {
		resp.Results = sparseAbove(scores, q, min)
	} else {
		resp.Scores = scores
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

// sparseAbove filters a dense score vector down to the entries (other than
// the query itself) with score >= min, sorted by decreasing score with
// ties broken by vertex id.
func sparseAbove(scores []float64, q int, min float64) []query.Ranked {
	out := []query.Ranked{}
	for v, sc := range scores {
		if v != q && sc >= min {
			out = append(out, query.Ranked{Vertex: v, Score: sc})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Vertex < out[j].Vertex
	})
	return out
}

type topKResponse struct {
	Query    int            `json:"query"`
	K        int            `json:"k"`
	Reranked bool           `json:"reranked"`
	Results  []query.Ranked `json:"results"`
}

// handleTopK serves GET/POST /v1/topk?q=17&k=10[&rerank=1].
func (s *server) handleTopK(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	defer s.observeLatency(t0)
	s.reqTopK.Add(1)
	if !s.checkMethod(w, r, http.MethodGet, http.MethodPost) {
		return
	}
	q, err := intParam(r, "q", 0, true)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	k, err := intParam(r, "k", 10, false)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rerank := boolParam(r, "rerank")

	s.mu.RLock()
	defer s.mu.RUnlock()
	key := topKCacheKey(s.idx.Generation(), q, k, rerank)
	if body, ok := s.cache.Get(key); ok {
		writeJSONBytes(w, body)
		return
	}

	results, err := s.idx.TopK(q, k, &query.TopKOptions{Rerank: rerank})
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	body, err := topKBody(q, k, rerank, results)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	s.cache.Put(key, body)
	writeJSONBytes(w, body)
}

// topKCacheKey is the response-cache key of a top-k query, shared between
// /v1/topk and the per-item entries of /v1/batch: a batch warms the cache
// for single queries and vice versa, and the folded-in generation makes
// pre-update entries unservable after an update.
func topKCacheKey(gen uint64, q, k int, rerank bool) string {
	return fmt.Sprintf("g%d:topk:%d:%d:%t", gen, q, k, rerank)
}

// topKBody marshals the /v1/topk response body — also the per-item line
// /v1/batch streams, so the two endpoints answer byte-identically.
func topKBody(q, k int, rerank bool, results []query.Ranked) ([]byte, error) {
	body, err := json.Marshal(topKResponse{Query: q, K: k, Reranked: rerank, Results: results})
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

type edgeEdit struct {
	Op string `json:"op"` // "add" | "remove"
	U  int    `json:"u"`
	V  int    `json:"v"`
}

type edgesRequest struct {
	Edits []edgeEdit `json:"edits"`
}

type edgesResponse struct {
	// Added/Removed count effective changes; no-op edits are accepted and
	// simply don't contribute.
	Added   int `json:"added"`
	Removed int `json:"removed"`
	// DirtyVertices and WalksRepaired describe the incremental repair.
	DirtyVertices int    `json:"dirty_vertices"`
	WalksRepaired int    `json:"walks_repaired"`
	Generation    uint64 `json:"generation"`
	Edges         int    `json:"edges"` // graph edge count after the batch
	UpdateMicros  int64  `json:"update_micros"`
}

// handleEdges serves POST /v1/edges: a batch of edge adds/removes applied
// to the live graph with an incremental, bit-identical index repair.
func (s *server) handleEdges(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	defer s.observeLatency(t0)
	s.reqEdges.Add(1)
	if !s.checkMethod(w, r, http.MethodPost) {
		return
	}
	var req edgesRequest
	if !s.decodeJSONBody(w, r, &req) {
		return
	}
	edits := make([]graph.Edit, len(req.Edits))
	for i, e := range req.Edits {
		switch e.Op {
		case "add":
			edits[i] = graph.Edit{Op: graph.EditAdd, U: e.U, V: e.V}
		case "remove":
			edits[i] = graph.Edit{Op: graph.EditRemove, U: e.U, V: e.V}
		default:
			s.writeError(w, http.StatusBadRequest, "edit %d: unknown op %q (want \"add\" or \"remove\")", i, e.Op)
			return
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	u0 := time.Now()
	gen0 := s.idx.Generation()
	stats, err := s.idx.ApplyEdits(edits, s.workers)
	if err != nil {
		// Invalid edits are the client's fault; an index beyond the
		// incremental-maintenance capacity is ours.
		code := http.StatusBadRequest
		if errors.Is(err, query.ErrTooLarge) {
			code = http.StatusInternalServerError
		}
		s.writeError(w, code, "%v", err)
		return
	}
	if stats.Generation != gen0 {
		// The old generation's cached bodies can never be served again;
		// drop them now instead of letting them squat in the LRU until
		// capacity-evicted.
		s.cache.Clear()
	}
	updateMicros := time.Since(u0).Microseconds()
	s.updatesTotal.Add(1)
	s.updateMicros.Add(updateMicros)
	s.edgesAdded.Add(int64(stats.EdgesAdded))
	s.edgesRemoved.Add(int64(stats.EdgesRemoved))
	s.walksRepaired.Add(int64(stats.WalksRepaired))

	body, err := json.Marshal(edgesResponse{
		Added:         stats.EdgesAdded,
		Removed:       stats.EdgesRemoved,
		DirtyVertices: stats.DirtyVertices,
		WalksRepaired: stats.WalksRepaired,
		Generation:    stats.Generation,
		Edges:         s.idx.Graph().NumEdges(),
		UpdateMicros:  updateMicros,
	})
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	writeJSONBytes(w, append(body, '\n'))
}

type healthzResponse struct {
	Status     string  `json:"status"`
	Vertices   int     `json:"vertices"`
	Walks      int     `json:"walks"`
	Horizon    int     `json:"horizon"`
	C          float64 `json:"c"`
	IndexBytes int64   `json:"index_bytes"`
	Generation uint64  `json:"generation"`
	UptimeSecs float64 `json:"uptime_seconds"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(healthzResponse{
		Status:     "ok",
		Vertices:   s.idx.N(),
		Walks:      s.idx.Walks(),
		Horizon:    s.idx.Horizon(),
		C:          s.idx.C(),
		IndexBytes: s.idx.Bytes(),
		Generation: s.idx.Generation(),
		UptimeSecs: time.Since(s.started).Seconds(),
	})
}

// handleMetrics dumps the counters in the Prometheus text exposition
// format (counters only — no client library dependency).
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.cache.Stats()
	s.mu.RLock()
	generation := s.idx.Generation()
	vertices := s.idx.N()
	indexBytes := s.idx.Bytes()
	s.mu.RUnlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "simrankd_requests_total{endpoint=\"single_source\"} %d\n", s.reqSingleSource.Load())
	fmt.Fprintf(w, "simrankd_requests_total{endpoint=\"topk\"} %d\n", s.reqTopK.Load())
	fmt.Fprintf(w, "simrankd_requests_total{endpoint=\"edges\"} %d\n", s.reqEdges.Load())
	fmt.Fprintf(w, "simrankd_requests_total{endpoint=\"batch\"} %d\n", s.reqBatch.Load())
	fmt.Fprintf(w, "simrankd_requests_total{endpoint=\"join\"} %d\n", s.reqJoin.Load())
	fmt.Fprintf(w, "simrankd_batch_items_total %d\n", s.batchItems.Load())
	fmt.Fprintf(w, "simrankd_batch_item_errors_total %d\n", s.batchItemErrors.Load())
	fmt.Fprintf(w, "simrankd_request_errors_total %d\n", s.reqErrors.Load())
	fmt.Fprintf(w, "simrankd_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "simrankd_cache_misses_total %d\n", misses)
	fmt.Fprintf(w, "simrankd_request_latency_micros_total %d\n", s.latencyMicros.Load())
	fmt.Fprintf(w, "simrankd_request_latency_count %d\n", s.latencyCount.Load())
	fmt.Fprintf(w, "simrankd_index_generation %d\n", generation)
	fmt.Fprintf(w, "simrankd_updates_total %d\n", s.updatesTotal.Load())
	fmt.Fprintf(w, "simrankd_update_latency_micros_total %d\n", s.updateMicros.Load())
	fmt.Fprintf(w, "simrankd_update_edges_added_total %d\n", s.edgesAdded.Load())
	fmt.Fprintf(w, "simrankd_update_edges_removed_total %d\n", s.edgesRemoved.Load())
	fmt.Fprintf(w, "simrankd_update_walks_repaired_total %d\n", s.walksRepaired.Load())
	fmt.Fprintf(w, "simrankd_index_vertices %d\n", vertices)
	fmt.Fprintf(w, "simrankd_index_bytes %d\n", indexBytes)
}
