package walkindex

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"testing"

	"oipsr/graph"
	"oipsr/graph/gen"
)

// bruteJoin computes the join result the slow way: every pair's estimate
// from the full SingleSource matrix, filtered and ordered exactly as Join
// promises. Join must reproduce it bit for bit — this is the completeness
// proof of the contribution-weight prune.
func bruteJoin(t *testing.T, ix *Index, k int, threshold float64) []JoinPair {
	t.Helper()
	n := ix.N()
	var pairs []JoinPair
	for a := 0; a < n; a++ {
		row := ssRow(t, ix, a)
		for b := a + 1; b < n; b++ {
			if row[b] >= threshold && row[b] > 0 {
				pairs = append(pairs, JoinPair{A: a, B: b, Score: row[b]})
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Score != pairs[j].Score {
			return pairs[i].Score > pairs[j].Score
		}
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	if k > len(pairs) {
		k = len(pairs)
	}
	return pairs[:k]
}

// TestJoinMatchesBruteForce: top-k joins across thresholds and k sizes
// equal the brute-force oracle exactly, scores included.
func TestJoinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := graph.NewBuilder(70, 0)
	b.EnsureVertices(70)
	for i := 0; i < 260; i++ {
		b.AddEdge(rng.Intn(70), rng.Intn(70))
	}
	g := b.MustBuild()
	ix, err := Build(g, Options{Walks: 120, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, threshold := range []float64{0, 0.03, 0.1, 0.3, 0.7} {
		for _, k := range []int{1, 5, 40, 100000} {
			want := bruteJoin(t, ix, k, threshold)
			got, err := ix.Join(context.Background(), k, threshold, 1<<20, 3)
			if err != nil {
				t.Fatalf("Join(k=%d, theta=%g): %v", k, threshold, err)
			}
			if len(got) != len(want) {
				t.Fatalf("Join(k=%d, theta=%g): %d pairs, want %d", k, threshold, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("Join(k=%d, theta=%g) pair %d: %+v, want %+v", k, threshold, i, got[i], want[i])
				}
			}
		}
	}
}

// TestJoinDeterministicAcrossWorkers: the join result is bit-identical for
// every worker count.
func TestJoinDeterministicAcrossWorkers(t *testing.T) {
	g := gen.CoauthorGraph(120, 4, 7)
	ix, err := Build(g, Options{Walks: 80, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := ix.Join(context.Background(), 25, 0.05, 1<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		par, err := ix.Join(context.Background(), 25, 0.05, 1<<20, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d pairs vs %d serial", workers, len(par), len(serial))
		}
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d pair %d: %+v vs serial %+v", workers, i, par[i], serial[i])
			}
		}
	}
}

// TestJoinThresholdAboveC: no pair can score above C, so a threshold past
// it returns empty without scanning.
func TestJoinThresholdAboveC(t *testing.T) {
	g := gen.WebGraph(50, 5, 3)
	ix, err := Build(g, Options{C: 0.6, Walks: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.Join(context.Background(), 10, 0.9, 1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("Join above C returned %d pairs, want 0", len(got))
	}
}

// TestJoinTooDense: a tiny candidate cap trips ErrTooDense instead of
// unbounded memory growth.
func TestJoinTooDense(t *testing.T) {
	g := gen.WebGraph(200, 8, 5)
	ix, err := Build(g, Options{Walks: 50, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Join(context.Background(), 10, 0, 5, 2); !errors.Is(err, ErrTooDense) {
		t.Fatalf("Join with cap 5 returned %v, want ErrTooDense", err)
	}
}

// TestJoinValidation: bad arguments are rejected up front.
func TestJoinValidation(t *testing.T) {
	g := gen.WebGraph(20, 4, 1)
	ix, err := Build(g, Options{Walks: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []struct {
		k    int
		th   float64
		cap_ int
	}{
		{0, 0.1, 100},
		{5, -0.1, 100},
		{5, 1.5, 100},
		{5, 0.1, 0},
	} {
		if _, err := ix.Join(context.Background(), bad.k, bad.th, bad.cap_, 1); err == nil {
			t.Errorf("Join(%d, %g, cap %d) succeeded, want error", bad.k, bad.th, bad.cap_)
		}
	}
}
