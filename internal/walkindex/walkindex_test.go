package walkindex

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"oipsr/graph"
	"oipsr/graph/gen"
	"oipsr/internal/naive"
)

// ssRow is the test shorthand for an uncancellable SingleSource row.
func ssRow(t *testing.T, ix *Index, q int) []float64 {
	t.Helper()
	row, err := ix.SingleSource(context.Background(), q, nil)
	if err != nil {
		t.Fatal(err)
	}
	return row
}

// msRows is the test shorthand for an uncancellable MultiSource call.
func msRows(t *testing.T, ix *Index, sources []int, workers int) [][]float64 {
	t.Helper()
	rows, err := ix.MultiSource(context.Background(), sources, workers)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestSiblingsExact: from 0->1, 0->2 both walkers step to vertex 0 with
// probability 1 and meet at step 1, so every fingerprint contributes
// exactly C and the estimate is C with zero variance.
func TestSiblingsExact(t *testing.T) {
	g := graph.MustFromEdges(3, [][2]int{{0, 1}, {0, 2}})
	ix, err := Build(g, Options{C: 0.8, K: 5, Walks: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Pair(1, 2); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("s(1,2) = %g, want exactly C = 0.8", got)
	}
	row := ssRow(t, ix, 1)
	if math.Abs(row[2]-0.8) > 1e-12 || row[1] != 1 {
		t.Errorf("SingleSource(1) = %v, want s(1,1)=1, s(1,2)=0.8", row)
	}
}

// TestTwoCycleNeverMeets: walkers on the 2-cycle swap positions forever.
func TestTwoCycleNeverMeets(t *testing.T) {
	g := graph.MustFromEdges(2, [][2]int{{0, 1}, {1, 0}})
	ix, err := Build(g, Options{C: 0.9, K: 50, Walks: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Pair(0, 1); got != 0 {
		t.Errorf("s(0,1) = %g, want 0", got)
	}
}

// TestDeadWalkersContributeZero: pairs involving a vertex whose walk
// reaches a source (empty in-set) before meeting score 0.
func TestDeadWalkersContributeZero(t *testing.T) {
	g := graph.MustFromEdges(3, [][2]int{{0, 1}}) // vertex 2 isolated
	ix, err := Build(g, Options{C: 0.6, K: 10, Walks: 25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]int{{0, 1}, {0, 2}, {1, 2}} {
		if got := ix.Pair(pair[0], pair[1]); got != 0 {
			t.Errorf("s(%d,%d) = %g, want 0", pair[0], pair[1], got)
		}
	}
}

// TestApproximatesExact: SingleSource estimates converge to the iterative
// scores. The coupled-walk estimator carries a small coalescence bias, so
// the tolerance is statistical, not machine precision.
func TestApproximatesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := graph.NewBuilder(25, 0)
	b.EnsureVertices(25)
	for i := 0; i < 80; i++ {
		b.AddEdge(rng.Intn(25), rng.Intn(25))
	}
	g := b.MustBuild()
	exact, err := naive.Compute(g, 0.6, 15)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(g, Options{C: 0.6, K: 15, Walks: 3000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	var cnt int
	row := make([]float64, 25)
	for q := 0; q < 25; q++ {
		if _, err := ix.SingleSource(context.Background(), q, row); err != nil {
			t.Fatal(err)
		}
		for v := 0; v < 25; v++ {
			if v == q {
				continue
			}
			sum += math.Abs(row[v] - exact.At(q, v))
			cnt++
		}
	}
	if mae := sum / float64(cnt); mae > 0.02 {
		t.Errorf("mean absolute error %.4f vs exact, want <= 0.02", mae)
	}
}

// TestSymmetry: the estimator is symmetric by construction.
func TestSymmetry(t *testing.T) {
	g := gen.WebGraph(60, 5, 9)
	ix, err := Build(g, Options{Walks: 50, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 60; a += 7 {
		row := ssRow(t, ix, a)
		for b := 0; b < 60; b += 3 {
			if got, want := ix.Pair(b, a), row[b]; got != want {
				t.Fatalf("Pair(%d,%d) = %g, SingleSource row = %g", b, a, got, want)
			}
		}
	}
}

// TestBuildDeterministicAcrossWorkers: the hash-driven coupling makes the
// index bit-identical for every worker count.
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	g := gen.WebGraph(120, 6, 11)
	serial, err := Build(g, Options{Walks: 40, Seed: 17, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 7, 16} {
		par, err := Build(g, Options{Walks: 40, Seed: 17, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !serial.Equal(par) {
			t.Fatalf("index with %d workers differs from serial build", workers)
		}
	}
}

// TestSeedChangesIndex: different seeds must produce different walks (else
// averaging fingerprints would be meaningless).
func TestSeedChangesIndex(t *testing.T) {
	g := gen.WebGraph(80, 6, 3)
	a, err := Build(g, Options{Walks: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(g, Options{Walks: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(b) {
		t.Fatal("indexes with different seeds are identical")
	}
}

// TestCoalescence: once two walkers of one fingerprint stand on the same
// vertex they must move together for every remaining step.
func TestCoalescence(t *testing.T) {
	g := gen.WebGraph(100, 8, 21)
	ix, err := Build(g, Options{K: 12, Walks: 20, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	n, k, r := ix.n, ix.k, ix.r
	for a := 0; a < n; a += 11 {
		for b := a + 1; b < n; b += 13 {
			for fp := 0; fp < r; fp++ {
				ap := ix.store.Row(a)[fp*k : (fp+1)*k]
				bp := ix.store.Row(b)[fp*k : (fp+1)*k]
				met := false
				for t2 := 0; t2 < k; t2++ {
					if ap[t2] < 0 || bp[t2] < 0 {
						break
					}
					if met && ap[t2] != bp[t2] {
						t.Fatalf("walkers %d,%d (fp %d) diverged after meeting at step %d", a, b, fp, t2)
					}
					if ap[t2] == bp[t2] {
						met = true
					}
				}
			}
		}
	}
}

// TestOptionDefaults: zero options mean C=0.6, eps=1e-3 horizon, 100 walks.
func TestOptionDefaults(t *testing.T) {
	g := gen.WebGraph(10, 3, 1)
	ix, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ix.C() != 0.6 || ix.Walks() != 100 {
		t.Errorf("defaults: C=%g walks=%d, want 0.6 and 100", ix.C(), ix.Walks())
	}
	// Smallest K with C^(K+1) <= 1e-3 for C=0.6 is 13.
	if ix.Horizon() != 13 {
		t.Errorf("default horizon %d, want 13", ix.Horizon())
	}
}

// TestBadOptions: invalid damping factors and negative counts are rejected.
func TestBadOptions(t *testing.T) {
	g := gen.WebGraph(10, 3, 1)
	for _, opt := range []Options{
		{C: 1.5},
		{C: -0.2},
		{K: -1},
		{Walks: -5},
		{Eps: 2},
		{K: 0x10000},     // would alias (fp, t) pairs in edgeChoice
		{Walks: 0x10000}, // likewise
	} {
		if _, err := Build(g, opt); err == nil {
			t.Errorf("Build(%+v) succeeded, want error", opt)
		}
	}
}
