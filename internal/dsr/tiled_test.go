package dsr

import (
	"math/rand"
	"testing"

	"oipsr/graph"
	"oipsr/internal/simmat"
)

// TestComputeTiledBitIdentical: the differential engine's tiled backend
// equals the dense path bit for bit for every block size and worker count,
// accumulator included.
func TestComputeTiledBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 31
	b := graph.NewBuilder(n, 0)
	b.EnsureVertices(n)
	for i := 0; i < 5*n; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	g := b.MustBuild()

	base := Options{C: 0.6, K: 6, Workers: 1}
	dense, dst, err := Compute(g, base)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, n)
	for _, block := range []int{1, 4, 9, n, n + 7} {
		for _, workers := range []int{1, 3} {
			opt := base
			opt.Workers = workers
			opt.Tile = simmat.TileOptions{BlockSize: block}
			tiled, tst, err := ComputeTiled(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if err := tiled.RowInto(i, buf); err != nil {
					t.Fatal(err)
				}
				for j := 0; j < n; j++ {
					if buf[j] != dense.At(i, j) {
						t.Fatalf("block=%d workers=%d: cell (%d,%d): tiled %v != dense %v",
							block, workers, i, j, buf[j], dense.At(i, j))
					}
				}
			}
			if tst.InnerAdds != dst.InnerAdds || tst.OuterAdds != dst.OuterAdds {
				t.Errorf("block=%d workers=%d: op counts drifted", block, workers)
			}
			tiled.Close()
		}
	}
}

// TestComputeTiledBudget: the three-matrix differential state fits under a
// cap that spills, and stays bit-identical.
func TestComputeTiledBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 40
	b := graph.NewBuilder(n, 0)
	b.EnsureVertices(n)
	for i := 0; i < 4*n; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	g := b.MustBuild()
	dense, _, err := Compute(g, Options{C: 0.6, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	const block = 8
	budget := int64(8 * block * block * 8)
	tiled, st, err := ComputeTiled(g, Options{C: 0.6, K: 4,
		Tile: simmat.TileOptions{BlockSize: block, MaxMemoryBytes: budget, SpillDir: t.TempDir()}})
	if err != nil {
		t.Fatal(err)
	}
	defer tiled.Close()
	if st.Tile.Spills == 0 || st.Tile.HighWaterBytes > budget {
		t.Errorf("spills %d, high-water %d under budget %d", st.Tile.Spills, st.Tile.HighWaterBytes, budget)
	}
	got, err := tiled.Dense()
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Data() {
		if got.Data()[i] != dense.Data()[i] {
			t.Fatalf("cell %d drifted under budget", i)
		}
	}
}
