package engine

import (
	"context"
	"time"

	"oipsr/graph"
	"oipsr/internal/psum"
	"oipsr/internal/simmat"
)

func init() { Register(psumEngine{base{PsumSR}}) }

// psumEngine is Lizorkin et al.'s partial sums memoization baseline.
type psumEngine struct{ base }

func (psumEngine) Caps() Caps { return Caps{AllPairs: true, Tiled: true} }

func (psumEngine) Compute(_ context.Context, g *graph.Graph, p Params) (simmat.Source, *Stats, error) {
	c, k, err := geometricSchedule(p)
	if err != nil {
		return nil, nil, err
	}
	t0 := time.Now()
	m, st, err := psum.Compute(g, psum.Options{C: c, K: k, Threshold: p.Threshold, Workers: p.Workers})
	if err != nil {
		return nil, nil, err
	}
	return m, &Stats{
		Algorithm:   PsumSR,
		Iterations:  st.Iterations,
		ComputeTime: time.Since(t0),
		InnerAdds:   st.InnerAdds,
		OuterAdds:   st.OuterAdds,
		AuxBytes:    st.AuxBytes,
		StateBytes:  simmat.StateBytes(g.NumVertices(), 2),
		SievedPairs: st.SievedPairs,
	}, nil
}

func (psumEngine) ComputeTiled(_ context.Context, g *graph.Graph, p Params) (simmat.Source, *Stats, error) {
	c, k, err := geometricSchedule(p)
	if err != nil {
		return nil, nil, err
	}
	t0 := time.Now()
	m, st, err := psum.ComputeTiled(g, psum.Options{
		C: c, K: k, Threshold: p.Threshold, Workers: p.Workers,
		Tile: p.Tile,
	})
	if err != nil {
		return nil, nil, err
	}
	return m, &Stats{
		Algorithm:        PsumSR,
		Iterations:       st.Iterations,
		ComputeTime:      time.Since(t0),
		InnerAdds:        st.InnerAdds,
		OuterAdds:        st.OuterAdds,
		AuxBytes:         st.AuxBytes,
		StateBytes:       m.Bytes() * 2,
		SievedPairs:      st.SievedPairs,
		TilePeakBytes:    st.Tile.HighWaterBytes,
		TileSpills:       st.Tile.Spills,
		TileLoads:        st.Tile.Loads,
		TileSpilledBytes: st.Tile.SpilledBytes,
	}, nil
}
