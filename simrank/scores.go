package simrank

import (
	"sort"

	"oipsr/internal/simmat"
)

// Scores holds the all-pairs similarity matrix produced by Compute, backed
// either by a dense matrix or — when Options.BlockSize selected the tiled
// backend — by tiled storage with a bounded working set.
type Scores struct {
	src simmat.Source
}

// Ranked is one entry of a top-k result.
type Ranked struct {
	Vertex int
	Score  float64
}

// N returns the number of vertices.
func (s *Scores) N() int { return s.src.N() }

// Score returns s(a, b).
func (s *Scores) Score(a, b int) float64 { return s.src.At(a, b) }

// Row returns the similarity row s(a, *). For the dense backend the slice
// aliases internal storage and must not be modified; the tiled backend
// assembles a fresh slice from tiles (and panics if a spilled tile cannot
// be read back — possible only with spill enabled on a failing disk).
func (s *Scores) Row(a int) []float64 {
	if m, ok := s.src.(*simmat.Matrix); ok {
		return m.Row(a)
	}
	row := make([]float64, s.src.N())
	if err := s.src.RowInto(a, row); err != nil {
		panic(err)
	}
	return row
}

// TopK returns the k vertices most similar to query, excluding the query
// itself, in decreasing score order with ties broken by vertex id.
func (s *Scores) TopK(query, k int) []Ranked {
	row := s.Row(query)
	idx := rankDesc(row, query)
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]Ranked, k)
	for i := 0; i < k; i++ {
		out[i] = Ranked{Vertex: idx[i], Score: row[idx[i]]}
	}
	return out
}

// MaxDiff returns the max-norm distance to another score matrix of the same
// dimension, across any backend combination.
func (s *Scores) MaxDiff(other *Scores) float64 {
	if a, ok := s.src.(*simmat.Matrix); ok {
		if b, ok := other.src.(*simmat.Matrix); ok {
			return simmat.MaxDiff(a, b)
		}
	}
	d, err := simmat.MaxDiffSource(s.src, other.src)
	if err != nil {
		panic(err)
	}
	return d
}

// Bytes reports the logical storage footprint of the score matrix.
func (s *Scores) Bytes() int64 { return s.src.Bytes() }

// Close releases the resources behind tiled-backend scores (resident tiles
// and spill files). It is a no-op for the dense backend; calling it is
// always safe and always correct once the scores are no longer needed.
func (s *Scores) Close() error {
	if t, ok := s.src.(*simmat.Tiled); ok {
		return t.Close()
	}
	return nil
}

// rankDesc orders all vertices except skip by decreasing score, breaking
// ties by vertex id for determinism.
func rankDesc(row []float64, skip int) []int {
	idx := make([]int, 0, len(row)-1)
	for i := range row {
		if i != skip {
			idx = append(idx, i)
		}
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if row[idx[a]] != row[idx[b]] {
			return row[idx[a]] > row[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx
}
