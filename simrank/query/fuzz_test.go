package query

import (
	"bytes"
	"context"
	"testing"

	"oipsr/graph"
)

// FuzzLoad: the public index loader must return an error — never panic —
// on arbitrary bytes, and anything it accepts must serve queries without
// panicking.
func FuzzLoad(f *testing.F) {
	g := graph.MustFromEdges(6, [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 1}, {4, 2}, {5, 4}})
	ix, err := BuildIndex(g, Options{C: 0.6, K: 4, Walks: 3, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated
	f.Add([]byte{})
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-2] ^= 0x01 // checksum flip
	f.Add(corrupt)
	var buf2 bytes.Buffer
	if err := ix.SaveFormat(&buf2, FormatV2); err != nil {
		f.Fatal(err)
	}
	valid2 := buf2.Bytes()
	f.Add(valid2)
	f.Add(valid2[:len(valid2)*3/4]) // truncated inside the posting blocks
	corrupt2 := append([]byte(nil), valid2...)
	corrupt2[len(corrupt2)-8] ^= 0x40 // posting-block flip
	f.Add(corrupt2)
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A loaded index must answer estimate-only queries for every
		// vertex without panicking, even on adversarial payload values.
		for v := 0; v < got.N(); v++ {
			if _, err := got.SingleSource(context.Background(), v); err != nil {
				t.Fatalf("SingleSource(%d) on accepted index: %v", v, err)
			}
			if _, err := got.TopK(context.Background(), v, 3, nil); err != nil {
				t.Fatalf("TopK(%d) on accepted index: %v", v, err)
			}
		}
	})
}
