package engine

import (
	"context"
	"time"

	"oipsr/graph"
	"oipsr/internal/naive"
	"oipsr/internal/simmat"
)

func init() { Register(naiveEngine{base{Naive}}) }

// naiveEngine is the original Jeh-Widom iteration, the conformance oracle.
type naiveEngine struct{ base }

func (naiveEngine) Caps() Caps { return Caps{AllPairs: true, Tiled: true} }

func (naiveEngine) Compute(_ context.Context, g *graph.Graph, p Params) (simmat.Source, *Stats, error) {
	c, k, err := geometricSchedule(p)
	if err != nil {
		return nil, nil, err
	}
	t0 := time.Now()
	m, err := naive.ComputeWorkers(g, c, k, p.Workers)
	if err != nil {
		return nil, nil, err
	}
	return m, &Stats{
		Algorithm:   Naive,
		Iterations:  k,
		ComputeTime: time.Since(t0),
		StateBytes:  simmat.StateBytes(g.NumVertices(), 2),
	}, nil
}

func (naiveEngine) ComputeTiled(_ context.Context, g *graph.Graph, p Params) (simmat.Source, *Stats, error) {
	c, k, err := geometricSchedule(p)
	if err != nil {
		return nil, nil, err
	}
	t0 := time.Now()
	m, err := naive.ComputeTiledWorkers(g, c, k, p.Workers, p.Tile)
	if err != nil {
		return nil, nil, err
	}
	met := m.Store().Metrics()
	return m, &Stats{
		Algorithm:        Naive,
		Iterations:       k,
		ComputeTime:      time.Since(t0),
		StateBytes:       m.Bytes() * 2,
		TilePeakBytes:    met.HighWaterBytes,
		TileSpills:       met.Spills,
		TileLoads:        met.Loads,
		TileSpilledBytes: met.SpilledBytes,
	}, nil
}
