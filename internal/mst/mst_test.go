package mst

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteForce enumerates every combination of one in-edge per non-root vertex
// and returns the weight of the cheapest valid arborescence, or +Inf if none
// exists. Exponential; only for tiny test graphs.
func bruteForce(n, root int, edges []Edge) float64 {
	candidates := make([][]int, n)
	for i, e := range edges {
		if e.From != e.To && e.To != root {
			candidates[e.To] = append(candidates[e.To], i)
		}
	}
	for v := 0; v < n; v++ {
		if v != root && len(candidates[v]) == 0 {
			return math.Inf(1)
		}
	}
	best := math.Inf(1)
	choice := make([]int, n)
	var rec func(v int)
	rec = func(v int) {
		if v == n {
			parent := make([]int, n)
			total := 0.0
			for u := 0; u < n; u++ {
				parent[u] = -1
			}
			for u := 0; u < n; u++ {
				if u != root {
					e := edges[choice[u]]
					parent[u] = e.From
					total += e.Weight
				}
			}
			// Check all vertices reach root.
			for u := 0; u < n; u++ {
				w := u
				for steps := 0; w != root; steps++ {
					if steps > n {
						return
					}
					w = parent[w]
				}
			}
			if total < best {
				best = total
			}
			return
		}
		if v == root {
			rec(v + 1)
			return
		}
		for _, ei := range candidates[v] {
			choice[v] = ei
			rec(v + 1)
		}
	}
	rec(0)
	return best
}

func TestEdmondsSimpleChain(t *testing.T) {
	edges := []Edge{{0, 1, 1}, {1, 2, 2}, {0, 2, 5}}
	a, err := Edmonds(3, 0, edges)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total != 3 {
		t.Errorf("total = %g, want 3", a.Total)
	}
	if a.Parent[1] != 0 || a.Parent[2] != 1 {
		t.Errorf("parents = %v, want [.. 0 1]", a.Parent)
	}
	if err := a.Validate(); err != nil {
		t.Error(err)
	}
}

func TestEdmondsCycleContraction(t *testing.T) {
	// Classic case: greedy per-node selection forms the 1<->2 cycle; the
	// optimum must break it via the root.
	edges := []Edge{
		{0, 1, 10},
		{0, 2, 10},
		{1, 2, 1},
		{2, 1, 1},
	}
	a, err := Edmonds(3, 0, edges)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total != 11 {
		t.Errorf("total = %g, want 11 (enter cycle once, keep one cycle edge)", a.Total)
	}
	if err := a.Validate(); err != nil {
		t.Error(err)
	}
}

func TestEdmondsNestedCycles(t *testing.T) {
	// Two interlocking cycles that force repeated contraction.
	edges := []Edge{
		{0, 1, 100},
		{1, 2, 1}, {2, 1, 1},
		{2, 3, 1}, {3, 2, 1},
		{3, 1, 1}, {1, 3, 1},
		{0, 3, 50},
	}
	a, err := Edmonds(4, 0, edges)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteForce(4, 0, edges)
	if math.Abs(a.Total-want) > 1e-9 {
		t.Errorf("total = %g, brute force = %g", a.Total, want)
	}
	if err := a.Validate(); err != nil {
		t.Error(err)
	}
}

func TestEdmondsUnreachable(t *testing.T) {
	edges := []Edge{{0, 1, 1}} // vertex 2 unreachable
	if _, err := Edmonds(3, 0, edges); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}

func TestEdmondsBadInputs(t *testing.T) {
	if _, err := Edmonds(3, 5, nil); err == nil {
		t.Error("want error for root out of range")
	}
	if _, err := Edmonds(3, 0, []Edge{{0, 9, 1}}); err == nil {
		t.Error("want error for endpoint out of range")
	}
}

func TestEdmondsIgnoresSelfLoops(t *testing.T) {
	edges := []Edge{{1, 1, -100}, {0, 1, 3}}
	a, err := Edmonds(2, 0, edges)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total != 3 {
		t.Errorf("total = %g, want 3 (self-loop must be ignored)", a.Total)
	}
}

// TestEdmondsMatchesBruteForce cross-validates the contraction algorithm
// against exhaustive search on small random digraphs.
func TestEdmondsMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5) // 2..6 vertices
		var edges []Edge
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Float64() < 0.5 {
					edges = append(edges, Edge{u, v, float64(1 + rng.Intn(10))})
				}
			}
		}
		want := bruteForce(n, 0, edges)
		a, err := Edmonds(n, 0, edges)
		if math.IsInf(want, 1) {
			return errors.Is(err, ErrUnreachable)
		}
		if err != nil {
			t.Logf("seed %d: unexpected error %v", seed, err)
			return false
		}
		if err := a.Validate(); err != nil {
			t.Logf("seed %d: invalid arborescence: %v", seed, err)
			return false
		}
		if math.Abs(a.Total-want) > 1e-9 {
			t.Logf("seed %d: edmonds %g != brute %g (n=%d, edges=%v)", seed, a.Total, want, n, edges)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestGreedyMatchesEdmondsOnDAGs: on DAG inputs (edges only from lower to
// higher id), the greedy per-vertex selection must agree with Edmonds.
func TestGreedyMatchesEdmondsOnDAGs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		var edges []Edge
		// Root 0 reaches everyone directly to guarantee feasibility.
		for v := 1; v < n; v++ {
			edges = append(edges, Edge{0, v, float64(5 + rng.Intn(10))})
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.4 {
					edges = append(edges, Edge{u, v, float64(1 + rng.Intn(10))})
				}
			}
		}
		g, err := GreedyAcyclic(n, 0, edges)
		if err != nil {
			t.Logf("seed %d: greedy error %v", seed, err)
			return false
		}
		e, err := Edmonds(n, 0, edges)
		if err != nil {
			t.Logf("seed %d: edmonds error %v", seed, err)
			return false
		}
		if math.Abs(g.Total-e.Total) > 1e-9 {
			t.Logf("seed %d: greedy %g != edmonds %g", seed, g.Total, e.Total)
			return false
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGreedyRejectsCycle(t *testing.T) {
	edges := []Edge{
		{0, 1, 10}, {0, 2, 10},
		{1, 2, 1}, {2, 1, 1}, // greedy picks the cycle
	}
	if _, err := GreedyAcyclic(3, 0, edges); !errors.Is(err, ErrCyclicSelection) {
		t.Fatalf("err = %v, want ErrCyclicSelection", err)
	}
}

func TestGreedyUnreachable(t *testing.T) {
	if _, err := GreedyAcyclic(3, 0, []Edge{{0, 1, 1}}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}

func TestChildren(t *testing.T) {
	a := &Arborescence{Root: 0, Parent: []int{-1, 0, 0, 1}, Edge: []int{-1, 0, 1, 2}}
	kids := a.Children()
	if len(kids[0]) != 2 || kids[0][0] != 1 || kids[0][1] != 2 {
		t.Errorf("children of 0 = %v, want [1 2]", kids[0])
	}
	if len(kids[1]) != 1 || kids[1][0] != 3 {
		t.Errorf("children of 1 = %v, want [3]", kids[1])
	}
}

func TestValidateDetectsCycle(t *testing.T) {
	a := &Arborescence{Root: 0, Parent: []int{-1, 2, 1}, Edge: []int{-1, 0, 1}}
	if err := a.Validate(); err == nil {
		t.Fatal("want cycle error")
	}
}

// TestPaperFig2cMST reproduces the MST of Fig. 2c: vertices are the
// in-neighbor sets {?, I(a), I(e), I(h), I(c), I(b), I(d)} with the
// transition costs of Fig. 2b; the optimum has total weight
// 1+1+1+1+2+2 = 8 using the bold edges of the figure.
func TestPaperFig2cMST(t *testing.T) {
	// Indices: 0=?, 1=I(a), 2=I(e), 3=I(h), 4=I(c), 5=I(b), 6=I(d)
	edges := []Edge{
		// From ? (costs |I(x)|-1): row 1 of Fig. 2b.
		{0, 1, 1}, {0, 2, 1}, {0, 3, 1}, {0, 4, 2}, {0, 5, 3}, {0, 6, 3},
		// From I(a) = {b,g}.
		{1, 2, 1}, {1, 3, 1}, {1, 4, 1}, {1, 5, 3}, {1, 6, 3},
		// From I(e) = {f,g}.
		{2, 3, 1}, {2, 4, 2}, {2, 5, 2}, {2, 6, 3},
		// From I(h) = {b,d}.
		{3, 4, 1}, {3, 5, 3}, {3, 6, 3},
		// From I(c) = {b,d,g}.
		{4, 5, 3}, {4, 6, 3},
		// From I(b) = {f,g,e,i}.
		{5, 6, 2},
	}
	a, err := Edmonds(7, 0, edges)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total != 8 {
		t.Errorf("MST total = %g, want 8 (Fig. 2c bold edges)", a.Total)
	}
	// The figure's tree: ?->I(a), ?->I(e), ?->I(h), I(a)->I(c),
	// I(e)->I(b), I(b)->I(d). Weight-equivalent alternates exist (e.g.
	// I(h)->I(c) also costs 1), so assert weights, not exact topology, but
	// check the two # shortcuts are used: I(b) from I(e) (2) and I(d) from
	// I(b) (2), both cheaper than from scratch (3).
	if a.Parent[5] != 2 {
		t.Errorf("parent of I(b) = %d, want I(e)=2", a.Parent[5])
	}
	if a.Parent[6] != 5 {
		t.Errorf("parent of I(d) = %d, want I(b)=5", a.Parent[6])
	}
	g, err := GreedyAcyclic(7, 0, edges)
	if err != nil {
		t.Fatal(err)
	}
	if g.Total != a.Total {
		t.Errorf("greedy total %g != edmonds %g on the paper DAG", g.Total, a.Total)
	}
}
