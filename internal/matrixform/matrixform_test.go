package matrixform

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"oipsr/graph"
	"oipsr/internal/numeric"
	"oipsr/internal/simmat"
)

func randomGraph(rng *rand.Rand, n, m int) *graph.Graph {
	b := graph.NewBuilder(n, m)
	b.EnsureVertices(n)
	for i := 0; i < m; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return b.MustBuild()
}

// denseQ materializes Q explicitly for oracle multiplication.
func denseQ(g *graph.Graph) [][]float64 {
	n := g.NumVertices()
	q := make([][]float64, n)
	for i := range q {
		q[i] = make([]float64, n)
		in := g.In(i)
		for _, j := range in {
			q[i][j] = 1 / float64(len(in))
		}
	}
	return q
}

func matmul(a, b [][]float64) [][]float64 {
	n := len(a)
	c := make([][]float64, n)
	for i := range c {
		c[i] = make([]float64, n)
		for k := 0; k < n; k++ {
			if a[i][k] == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				c[i][j] += a[i][k] * b[k][j]
			}
		}
	}
	return c
}

func transpose(a [][]float64) [][]float64 {
	n := len(a)
	t := make([][]float64, n)
	for i := range t {
		t[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			t[i][j] = a[j][i]
		}
	}
	return t
}

func fromMatrix(m *simmat.Matrix) [][]float64 {
	n := m.N()
	out := make([][]float64, n)
	for i := range out {
		out[i] = append([]float64(nil), m.Row(i)...)
	}
	return out
}

// TestApplyQAgainstDense validates the sparse Q application against explicit
// dense multiplication on random graphs and random matrices.
func TestApplyQAgainstDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		g := randomGraph(rng, n, rng.Intn(3*n))
		src := simmat.New(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				src.Set(i, j, rng.NormFloat64())
			}
		}
		q := denseQ(g)

		dst := simmat.New(n)
		ApplyQ(g, src, dst)
		want := matmul(q, fromMatrix(src))
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(dst.At(i, j)-want[i][j]) > 1e-12 {
					return false
				}
			}
		}

		dst2 := simmat.New(n)
		ApplyQT(g, src, dst2)
		want2 := matmul(fromMatrix(src), transpose(q))
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(dst2.At(i, j)-want2[i][j]) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestFixedPointEqualsGeometricSum: by induction the damped fixed-point
// iteration from S_0 = (1-C)I equals the truncated geometric series.
func TestFixedPointEqualsGeometricSum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		g := randomGraph(rng, n, rng.Intn(3*n))
		c := 0.3 + 0.6*rng.Float64()
		k := rng.Intn(6)
		fp, err := FixedPoint(g, c, k)
		if err != nil {
			return false
		}
		gs, err := GeometricSum(g, c, k)
		if err != nil {
			return false
		}
		return simmat.MaxDiff(fp, gs) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestExponentialSumSmall checks Eq. 13 by hand on the sibling graph
// 0->1, 0->2: rows 1 and 2 of Q equal e_0 and row 0 is zero, so Q^i = 0 for
// i >= 2 on those rows and only the i=1 term contributes off-diagonal:
// s^(1,2) = e^-C * C. (Contrast with the Jeh-Widom iterative form, where
// the pinned diagonal feeds back and s(1,2) = C — the two forms measure the
// same structure on different scales, which is why each engine is validated
// against its own formulation.)
func TestExponentialSumSmall(t *testing.T) {
	g := graph.MustFromEdges(3, [][2]int{{0, 1}, {0, 2}})
	c := 0.8
	s, err := ExponentialSum(g, c, 30)
	if err != nil {
		t.Fatal(err)
	}
	want := c * math.Exp(-c)
	if got := s.At(1, 2); math.Abs(got-want) > 1e-12 {
		t.Errorf("s^(1,2) = %g, want C*e^-C = %g", got, want)
	}
	// Diagonal of a source vertex: only the i=0 term contributes.
	if got := s.At(0, 0); math.Abs(got-math.Exp(-c)) > 1e-12 {
		t.Errorf("s^(0,0) = %g, want e^-C = %g", got, math.Exp(-c))
	}
}

// TestGeometricSumSmall mirrors the same closed form for Eq. 12: only the
// i=1 term survives off-diagonal, so s(1,2) = (1-C) * C.
func TestGeometricSumSmall(t *testing.T) {
	g := graph.MustFromEdges(3, [][2]int{{0, 1}, {0, 2}})
	c := 0.8
	s, err := GeometricSum(g, c, 200)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.At(1, 2); math.Abs(got-(1-c)*c) > 1e-12 {
		t.Errorf("s(1,2) = %g, want (1-C)*C = %g", got, (1-c)*c)
	}
}

// TestExponentialTailBound verifies Proposition 7 empirically: truncating
// the exponential series at k leaves an error of at most C^(k+1)/(k+1)!.
func TestExponentialTailBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 12, 40)
	c := 0.8
	ref, err := ExponentialSum(g, c, 40) // effectively converged
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 1, 3, 5, 8} {
		s, err := ExponentialSum(g, c, k)
		if err != nil {
			t.Fatal(err)
		}
		if d, bound := simmat.MaxDiff(s, ref), numeric.ExponentialTailBound(c, k); d > bound+1e-15 {
			t.Errorf("k=%d: error %g exceeds bound %g", k, d, bound)
		}
	}
}

// TestSymmetryAndRange: both series are symmetric positive matrices with
// entries in [0, 1].
func TestSymmetryAndRange(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 15, 60)
	for name, s := range map[string]*simmat.Matrix{} {
		_ = name
		_ = s
	}
	gs, err := GeometricSum(g, 0.7, 20)
	if err != nil {
		t.Fatal(err)
	}
	es, err := ExponentialSum(g, 0.7, 20)
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]*simmat.Matrix{"geometric": gs, "exponential": es} {
		if err := s.CheckSymmetric(1e-12); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if err := s.CheckRange(0, 1, 1e-12); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestBadInputs(t *testing.T) {
	g := graph.MustFromEdges(2, [][2]int{{0, 1}})
	if _, err := FixedPoint(g, 0, 1); err == nil {
		t.Error("want error for C=0")
	}
	if _, err := GeometricSum(g, 0.5, -1); err == nil {
		t.Error("want error for K<0")
	}
	if _, err := ExponentialSum(g, 2, 1); err == nil {
		t.Error("want error for C=2")
	}
}
