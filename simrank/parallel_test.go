package simrank

import (
	"testing"

	"oipsr/graph"
	"oipsr/graph/gen"
)

// TestWorkersBitIdentical is the public-API determinism contract: for every
// engine that honors Options.Workers, a pooled run returns exactly the
// scores — and exactly the operation counts — of the serial run.
func TestWorkersBitIdentical(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"web":      gen.WebGraph(120, 8, 3),
		"citation": gen.CitationGraph(130, 4, 5),
		"coauthor": gen.CoauthorGraph(90, 3, 2),
	}
	algos := []Algorithm{OIPSR, OIPDSR, PsumSR, Naive, PRank, MonteCarlo}
	for name, g := range graphs {
		for _, alg := range algos {
			opt := Options{Algorithm: alg, C: 0.6, K: 5, Seed: 11, Walks: 20}
			opt.Workers = 1
			want, wst, err := Compute(g, opt)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, alg, err)
			}
			for _, workers := range []int{2, 4} {
				opt.Workers = workers
				got, gst, err := Compute(g, opt)
				if err != nil {
					t.Fatalf("%s/%s: %v", name, alg, err)
				}
				if d := want.MaxDiff(got); d != 0 {
					t.Errorf("%s/%s workers=%d: scores differ by %g, want bit-identical", name, alg, workers, d)
				}
				if wst.InnerAdds != gst.InnerAdds || wst.OuterAdds != gst.OuterAdds {
					t.Errorf("%s/%s workers=%d: add counts diverged: (%d,%d) vs (%d,%d)",
						name, alg, workers, wst.InnerAdds, wst.OuterAdds, gst.InnerAdds, gst.OuterAdds)
				}
			}
		}
	}
}
