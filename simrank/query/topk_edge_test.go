package query

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"oipsr/graph"
)

// TestTopKSingleVertexGraph: with n = 1 there is nothing besides the query
// vertex, so k clamps to 0 and the result is empty (not an error).
func TestTopKSingleVertexGraph(t *testing.T) {
	g := graph.MustFromEdges(1, nil)
	ix, err := BuildIndex(g, Options{Walks: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.TopK(context.Background(), 0, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("TopK on a single-vertex graph returned %v", got)
	}
	// Rerank takes the same clamp path.
	got, err = ix.TopK(context.Background(), 0, 1, &TopKOptions{Rerank: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("reranked TopK on a single-vertex graph returned %v", got)
	}
}

// TestTopKClampsToNMinusOne: k far beyond n-1 returns exactly the n-1
// other vertices.
func TestTopKClampsToNMinusOne(t *testing.T) {
	g := graph.MustFromEdges(6, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	ix, err := BuildIndex(g, Options{Walks: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.TopK(context.Background(), 3, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("TopK(k=1000) on n=6 returned %d results, want 5", len(got))
	}
	seen := map[int]bool{}
	for _, r := range got {
		if r.Vertex == 3 || seen[r.Vertex] {
			t.Fatalf("TopK returned self or duplicate: %v", got)
		}
		seen[r.Vertex] = true
	}
}

// TestTopKAllDeadWalkerSource: a source with in-degree 0 kills every one
// of its walkers at step one, so every score is 0 — TopK must still return
// k entries, tie-ordered by vertex id.
func TestTopKAllDeadWalkerSource(t *testing.T) {
	// Vertex 0 has no in-edges; the rest form a cycle.
	g := graph.MustFromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 1}})
	ix, err := BuildIndex(g, Options{Walks: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	scores, err := ix.SingleSource(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 5; v++ {
		if scores[v] != 0 {
			t.Fatalf("s(0,%d) = %g, want 0 for a dead-walker source", v, scores[v])
		}
	}
	got, err := ix.TopK(context.Background(), 0, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []Ranked{{Vertex: 1}, {Vertex: 2}, {Vertex: 3}}
	if len(got) != len(want) {
		t.Fatalf("TopK = %v, want 3 zero-score entries", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopK[%d] = %+v, want %+v (ties break by vertex id)", i, got[i], want[i])
		}
	}
}

// TestTopByScoreVsOracle: topByScore's partial selection must agree with a
// sort-everything oracle on random score vectors with heavy ties, for
// every m.
func TestTopByScoreVsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		scores := make([]float64, n)
		for i := range scores {
			// Few distinct values force ties.
			scores[i] = float64(rng.Intn(4)) / 8
		}
		skip := rng.Intn(n)
		m := rng.Intn(n + 2)

		oracle := make([]Ranked, 0, n)
		for v, s := range scores {
			if v != skip {
				oracle = append(oracle, Ranked{Vertex: v, Score: s})
			}
		}
		sort.SliceStable(oracle, func(i, j int) bool {
			if oracle[i].Score != oracle[j].Score {
				return oracle[i].Score > oracle[j].Score
			}
			return oracle[i].Vertex < oracle[j].Vertex
		})
		if m < len(oracle) {
			oracle = oracle[:m]
		}

		got := topByScore(scores, skip, m)
		if len(got) != len(oracle) {
			t.Fatalf("trial %d (n=%d m=%d): got %d entries, oracle %d", trial, n, m, len(got), len(oracle))
		}
		for i := range oracle {
			if got[i] != oracle[i] {
				t.Fatalf("trial %d (n=%d m=%d): entry %d = %+v, oracle %+v", trial, n, m, i, got[i], oracle[i])
			}
		}
	}
}
