package walkindex

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
	"slices"
	"sync"
	"sync/atomic"

	"oipsr/internal/atomicio"
	"oipsr/internal/lru"
)

// Mapped (paged) loading of format-v2 index files.
//
// LoadMapped and LoadShardMapped open a v2 file without materializing the
// dense []int32 path payload. Queries decode single posting blocks on
// demand — zero-copy out of an mmap'd region where the platform supports
// it (mmap_unix.go), through ReadAt otherwise — behind a small LRU of
// decoded blocks. The file is fully validated at open (header guards,
// structural decode of every block, per-entry range checks, CRC, exact
// file length), so the demand-paging read path cannot fail on the bytes
// it already vetted: a decode error after open means the file was mutated
// underneath the mapping, and the store panics with that diagnosis rather
// than serving silently corrupt scores.
//
// Update works on a mapped index too: repaired rows are promoted into an
// in-memory overlay (copy-on-write per block), and the Update paths flush
// the overlay back to disk by rewriting only the dirty vertices' blocks —
// clean block bytes are copied verbatim — through atomicio, then remapping
// the new file. If the flush fails, the in-memory overlay still serves
// consistent post-edit answers; the backing file is simply stale, and the
// next successful Update persists both.

// DefaultMappedCacheBlocks is the decoded-block LRU capacity used when
// MappedOptions.CacheBlocks is zero. At the default block geometry (64
// vertices per block) this keeps ~2k vertices' decoded walks hot.
const DefaultMappedCacheBlocks = 32

// MappedOptions configures LoadMapped and LoadShardMapped.
type MappedOptions struct {
	// CacheBlocks is the capacity of the decoded-block LRU. Zero means
	// DefaultMappedCacheBlocks; negative disables caching (every row
	// access decodes its block — useful only for measuring cold costs).
	CacheBlocks int
	// DisableMmap forces the portable ReadAt path even where mmap is
	// available.
	DisableMmap bool
	// PrefetchBlocks is the readahead depth in posting blocks: when a
	// sweep declares its range (PathStore.Prefetch) or an ascending block
	// scan is detected, up to this many upcoming blocks are decoded into
	// the LRU ahead of the reader (see prefetch.go). Zero means
	// DefaultPrefetchBlocks; negative disables prefetching. The effective
	// depth is clamped below the cache capacity so readahead never evicts
	// the block under the reader.
	PrefetchBlocks int
}

func (o MappedOptions) cacheBlocks() int {
	if o.CacheBlocks == 0 {
		return DefaultMappedCacheBlocks
	}
	return o.CacheBlocks
}

// prefetchDepth resolves PrefetchBlocks against the cache capacity: with
// at most one cache slot there is nowhere to put readahead, and the
// window must leave at least the reader's own block un-evictable.
func (o MappedOptions) prefetchDepth() int {
	cb := o.cacheBlocks()
	if cb <= 1 || o.PrefetchBlocks < 0 {
		return 0
	}
	d := o.PrefetchBlocks
	if d == 0 {
		d = DefaultPrefetchBlocks
	}
	return min(d, cb-1)
}

// fileBacking is the byte source behind a mapped store: an mmap'd region
// when available, a plain ReadAt fallback otherwise.
type fileBacking struct {
	f    *os.File
	data []byte // whole-file mapping; nil on the ReadAt path
	size int64
}

func openBacking(path string, disableMmap bool) (*fileBacking, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("walkindex: opening mapped index: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("walkindex: opening mapped index: %w", err)
	}
	bk := &fileBacking{f: f, size: st.Size()}
	if !disableMmap && bk.size > 0 {
		if data, err := mmapFile(f, bk.size); err == nil {
			bk.data = data
		}
		// mmap failure is not an error: fall back to ReadAt silently.
	}
	return bk, nil
}

// slice returns file bytes [off, off+n): a zero-copy view of the mapping,
// or a fresh ReadAt copy. Offsets come from the validated directory.
func (bk *fileBacking) slice(off, n int64) ([]byte, error) {
	if bk.data != nil {
		return bk.data[off : off+n : off+n], nil
	}
	buf := make([]byte, n)
	if _, err := bk.f.ReadAt(buf, off); err != nil {
		return nil, err
	}
	return buf, nil
}

func (bk *fileBacking) close() error {
	var err error
	if bk.data != nil {
		err = munmapFile(bk.data)
		bk.data = nil
	}
	if cerr := bk.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// mappedStore is the PathStore paging a format-v2 file block by block.
type mappedStore struct {
	path   string
	what   string // "index" or "shard", for error labels
	rows   int    // store-local start vertices
	k, r   int
	stride int // r*k entries per row
	blockB int // start vertices per posting block
	opts   MappedOptions

	pre        []byte  // header + v2 meta, reused verbatim by flush
	dir        []int64 // numBlocks+1 payload byte offsets
	payloadOff int64   // file offset of payload byte 0

	bk    *fileBacking
	cache *lru.Cache[int, []int32] // decoded clean blocks

	mu      sync.Mutex
	overlay map[int][]int32 // dirty decoded blocks, not yet flushed

	// Prefetch pool state (see prefetch.go). pfMu orders the workers'
	// decode+fill against flush's backing swap: workers hold the read
	// side, flush the write side. Lock order is pfMu before mu.
	nb      int // posting-block count, constant across flushes
	pfDepth int // resolved readahead depth; 0 = prefetch disabled
	pfq     chan int
	pfStop  chan struct{}
	pfOnce  sync.Once
	pfWG    sync.WaitGroup
	pfMu    sync.RWMutex
	det     streamDetector
	pfLoads atomic.Int64 // blocks decoded by the pool (tests, bench)
}

func newMappedStore(path, what string, rows, k, r int, blockB int64, dir []int64, pre []byte, opts MappedOptions) (*mappedStore, error) {
	bk, err := openBacking(path, opts.DisableMmap)
	if err != nil {
		return nil, err
	}
	ms := &mappedStore{
		path: path, what: what, rows: rows, k: k, r: r, stride: r * k,
		blockB: int(blockB), opts: opts,
		pre: pre, dir: dir, payloadOff: int64(len(pre)) + 8*int64(len(dir)),
		bk:      bk,
		cache:   lru.New[int, []int32](opts.cacheBlocks()),
		overlay: map[int][]int32{},
		nb:      len(dir) - 1,
		pfDepth: opts.prefetchDepth(),
	}
	ms.startPrefetch()
	return ms, nil
}

// decodeBlock decodes posting block b from the backing file. The file was
// fully validated at open, so failure here means it changed on disk under
// the store — that is unrecoverable mid-query, hence the panic.
func (ms *mappedStore) decodeBlock(b int) []int32 {
	width := min(ms.blockB, ms.rows-b*ms.blockB)
	buf, err := ms.bk.slice(ms.payloadOff+ms.dir[b], ms.dir[b+1]-ms.dir[b])
	if err != nil {
		panic(fmt.Sprintf("walkindex: mapped %s %s changed on disk (block %d: %v)", ms.what, ms.path, b, err))
	}
	dst := make([]int32, width*ms.stride)
	if err := decodeV2Block(buf, dst, width, ms.k, ms.r); err != nil {
		panic(fmt.Sprintf("walkindex: mapped %s %s changed on disk (block %d: %v)", ms.what, ms.path, b, err))
	}
	return dst
}

// block returns the decoded posting block holding store-local vertex v's
// walks: the dirty overlay copy if one exists, the LRU'd clean copy, or a
// fresh decode.
func (ms *mappedStore) block(b int) []int32 {
	ms.mu.Lock()
	blk, dirty := ms.overlay[b]
	ms.mu.Unlock()
	if dirty {
		return blk
	}
	if blk, ok := ms.cache.Get(b); ok {
		return blk
	}
	blk = ms.decodeBlock(b)
	ms.cache.Put(b, blk)
	return blk
}

func (ms *mappedStore) Row(v int) []int32 {
	b := v / ms.blockB
	if ms.pfDepth > 0 && ms.det.observe(int64(b)) {
		ms.scheduleWindow(b)
	}
	blk := ms.block(b)
	off := (v - b*ms.blockB) * ms.stride
	return blk[off : off+ms.stride]
}

// MutableRow promotes v's block into the overlay (copy-on-write) and
// returns the writable row. The overlay copy also replaces the block's
// cache slot, so readers converge on the repaired data immediately.
func (ms *mappedStore) MutableRow(v int) []int32 {
	b := v / ms.blockB
	ms.mu.Lock()
	blk, ok := ms.overlay[b]
	if !ok {
		if clean, hit := ms.cache.Get(b); hit {
			blk = slices.Clone(clean)
		} else {
			blk = ms.decodeBlock(b)
		}
		ms.overlay[b] = blk
		ms.cache.Put(b, blk)
	}
	ms.mu.Unlock()
	off := (v - b*ms.blockB) * ms.stride
	return blk[off : off+ms.stride]
}

// Flat returns nil: a mapped store has no dense backing slice, so callers
// take their per-block fallback paths.
func (ms *mappedStore) Flat() []int32 { return nil }

func (ms *mappedStore) Rows() int { return ms.rows }

// Bytes reports the backing file's size — the compressed on-disk
// footprint, which is what a mapped deployment actually pages — not the
// transient decoded-block cache.
func (ms *mappedStore) Bytes() int64 { return ms.bk.size }

func (ms *mappedStore) Kind() string {
	if ms.bk.data != nil {
		return "mapped"
	}
	return "mapped-readat"
}

func (ms *mappedStore) Close() error {
	// Quiesce the prefetch pool before the mapping goes away: after
	// stopPrefetch returns no worker touches the backing file again.
	ms.stopPrefetch()
	ms.mu.Lock()
	defer ms.mu.Unlock()
	ms.cache.Clear()
	ms.overlay = map[int][]int32{}
	return ms.bk.close()
}

// flush rewrites the backing file with the overlay's dirty blocks
// re-encoded and every clean block's bytes copied verbatim, atomically
// (temp + fsync + rename), then remaps the new file and demotes the
// overlay into the clean cache. Called by the Update paths via flushStore.
//
// On error the overlay is kept: queries keep serving the repaired in-memory
// state, the file on disk is merely stale, and the next successful Update
// persists both.
func (ms *mappedStore) flush() error {
	// The write side of pfMu stalls prefetch workers for the whole
	// rewrite: a worker that decoded from the pre-flush backing must not
	// publish its block after the overlay has been demoted over it. Lock
	// order is pfMu before mu, matching prefetchBlock's read side.
	ms.pfMu.Lock()
	defer ms.pfMu.Unlock()
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if len(ms.overlay) == 0 {
		return nil
	}
	nb := len(ms.dir) - 1
	blocks := make([][]byte, nb)
	for b := 0; b < nb; b++ {
		if blk, ok := ms.overlay[b]; ok {
			vlo := b * ms.blockB
			width := min(ms.blockB, ms.rows-vlo)
			enc, err := appendV2Block(nil, func(v int) []int32 {
				off := (v - vlo) * ms.stride
				return blk[off : off+ms.stride]
			}, vlo, width, ms.k, ms.r)
			if err != nil {
				return err
			}
			if len(enc) > maxV2BlockBytes {
				return fmt.Errorf("%w: encoded posting block of %d bytes exceeds %d", ErrFormatLimits, len(enc), maxV2BlockBytes)
			}
			blocks[b] = enc
		} else {
			raw, err := ms.bk.slice(ms.payloadOff+ms.dir[b], ms.dir[b+1]-ms.dir[b])
			if err != nil {
				return fmt.Errorf("walkindex: flushing mapped %s: reading clean block %d: %w", ms.what, b, err)
			}
			blocks[b] = raw
		}
	}
	if err := atomicio.WriteFile(ms.path, func(w io.Writer) error {
		return writeV2(w, ms.pre, blocks, ms.what)
	}); err != nil {
		return fmt.Errorf("walkindex: flushing mapped %s: %w", ms.what, err)
	}

	// The file on disk is now the repaired index; swap the mapping and
	// bookkeeping over to it. Failing to remap after a successful rename
	// is reported, and the overlay is kept so queries stay correct.
	newDir := make([]int64, nb+1)
	for b, blk := range blocks {
		newDir[b+1] = newDir[b] + int64(len(blk))
	}
	bk, err := openBacking(ms.path, ms.opts.DisableMmap)
	if err != nil {
		return fmt.Errorf("walkindex: remapping flushed %s: %w", ms.what, err)
	}
	old := ms.bk
	ms.bk, ms.dir = bk, newDir
	for b, blk := range ms.overlay {
		ms.cache.Put(b, blk)
	}
	ms.overlay = map[int][]int32{}
	if err := old.close(); err != nil {
		return fmt.Errorf("walkindex: closing pre-flush mapping: %w", err)
	}
	return nil
}

// LoadMapped opens a format-v2 index file for demand paging instead of
// decoding it into memory. The whole file is validated up front — same
// checks, same order as Load (see serialize.go) — but the decoded payload
// is discarded block by block; only the ~16 B/block directory stays
// resident. v1 files are dense-only: re-save with SaveFormat(FormatV2)
// to map them (Load reads both formats into memory).
func LoadMapped(path string, opts MappedOptions) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("walkindex: opening mapped index: %w", err)
	}
	defer f.Close()
	crc := crc32.NewIEEE()
	br := bufio.NewReaderSize(f, 1<<16)

	// Step 1: header parse + plausibility guards (as in Load).
	var hdr [headerSize]byte
	if err := readFull(br, crc, hdr[:], "header"); err != nil {
		return nil, err
	}
	if [8]byte(hdr[:8]) != magic {
		return nil, ErrBadMagic
	}
	version := binary.LittleEndian.Uint32(hdr[8:])
	if version == FormatV1 {
		return nil, fmt.Errorf("%w: file is format v1 (dense); only format v2 can be mapped — re-save it with SaveFormat(FormatV2)", ErrVersion)
	}
	if version != FormatV2 {
		return nil, fmt.Errorf("%w: file has version %d, this build reads versions %d and %d", ErrVersion, version, FormatV1, FormatV2)
	}
	n := int64(binary.LittleEndian.Uint64(hdr[12:]))
	k := int64(binary.LittleEndian.Uint64(hdr[20:]))
	fps := int64(binary.LittleEndian.Uint64(hdr[28:]))
	c := math.Float64frombits(binary.LittleEndian.Uint64(hdr[36:]))
	seed := int64(binary.LittleEndian.Uint64(hdr[44:]))
	if n < 0 || k < 1 || fps < 1 {
		return nil, fmt.Errorf("walkindex: invalid header (n=%d, k=%d, r=%d)", n, k, fps)
	}
	if k > maxHorizon {
		return nil, fmt.Errorf("walkindex: implausible walk horizon k = %d", k)
	}
	if !(c > 0 && c < 1) {
		return nil, fmt.Errorf("walkindex: invalid header damping factor %v", c)
	}
	elems := n * fps * k
	if n > 0 && (elems/n/fps != k || elems > maxElems) {
		return nil, fmt.Errorf("walkindex: implausible index size n*r*k = %d*%d*%d", n, fps, k)
	}

	// Steps 2–5: structural + semantic scan of every block, checksum,
	// trailing-data probe — retaining only the directory.
	blockB, dir, err := scanV2Payload(br, crc, n, k, fps, n, "paths")
	if err != nil {
		return nil, err
	}

	// Step 6: construction from validated fields only.
	pre := make([]byte, headerSize+8)
	copy(pre, hdr[:])
	binary.LittleEndian.PutUint32(pre[headerSize:], uint32(blockB))
	binary.LittleEndian.PutUint32(pre[headerSize+4:], uint32(len(dir)-1))
	ms, err := newMappedStore(path, "index", int(n), int(k), int(fps), blockB, dir, pre, opts)
	if err != nil {
		return nil, err
	}
	ix := &Index{n: int(n), k: int(k), r: int(fps), c: c, seed: seed, store: ms}
	ix.initPow()
	return ix, nil
}

// LoadShardMapped is LoadMapped for shard files written by
// ShardIndex.SaveFormat with FormatV2.
func LoadShardMapped(path string, opts MappedOptions) (*ShardIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("walkindex: opening mapped shard: %w", err)
	}
	defer f.Close()
	crc := crc32.NewIEEE()
	br := bufio.NewReaderSize(f, 1<<16)

	// Step 1: header parse + plausibility guards (as in LoadShard).
	var hdr [shardHeaderSize]byte
	if err := readFull(br, crc, hdr[:], "shard header"); err != nil {
		return nil, err
	}
	if [8]byte(hdr[:8]) != shardMagic {
		return nil, ErrBadMagic
	}
	version := binary.LittleEndian.Uint32(hdr[8:])
	if version == FormatV1 {
		return nil, fmt.Errorf("%w: file is format v1 (dense); only format v2 can be mapped — re-save it with SaveFormat(FormatV2)", ErrVersion)
	}
	if version != FormatV2 {
		return nil, fmt.Errorf("%w: file has version %d, this build reads versions %d and %d", ErrVersion, version, FormatV1, FormatV2)
	}
	n := int64(binary.LittleEndian.Uint64(hdr[12:]))
	lo := int64(binary.LittleEndian.Uint64(hdr[20:]))
	hi := int64(binary.LittleEndian.Uint64(hdr[28:]))
	k := int64(binary.LittleEndian.Uint64(hdr[36:]))
	fps := int64(binary.LittleEndian.Uint64(hdr[44:]))
	c := math.Float64frombits(binary.LittleEndian.Uint64(hdr[52:]))
	seed := int64(binary.LittleEndian.Uint64(hdr[60:]))
	if n < 0 || k < 1 || fps < 1 {
		return nil, fmt.Errorf("walkindex: invalid shard header (n=%d, k=%d, r=%d)", n, k, fps)
	}
	if lo < 0 || hi < lo || hi > n {
		return nil, fmt.Errorf("walkindex: invalid shard header range [%d,%d) with n=%d", lo, hi, n)
	}
	if k > maxHorizon {
		return nil, fmt.Errorf("walkindex: implausible walk horizon k = %d", k)
	}
	if !(c > 0 && c < 1) {
		return nil, fmt.Errorf("walkindex: invalid shard header damping factor %v", c)
	}
	width := hi - lo
	elems := width * fps * k
	if width > 0 && (elems/width/fps != k || elems > maxElems) {
		return nil, fmt.Errorf("walkindex: implausible shard size width*r*k = %d*%d*%d", width, fps, k)
	}

	// Steps 2–5 on the owned range; entries are global vertex ids in [0, n).
	blockB, dir, err := scanV2Payload(br, crc, width, k, fps, n, "shard paths")
	if err != nil {
		return nil, err
	}

	// Step 6: construction from validated fields only.
	pre := make([]byte, shardHeaderSize+8)
	copy(pre, hdr[:])
	binary.LittleEndian.PutUint32(pre[shardHeaderSize:], uint32(blockB))
	binary.LittleEndian.PutUint32(pre[shardHeaderSize+4:], uint32(len(dir)-1))
	ms, err := newMappedStore(path, "shard", int(width), int(k), int(fps), blockB, dir, pre, opts)
	if err != nil {
		return nil, err
	}
	sx := &ShardIndex{n: int(n), lo: int(lo), hi: int(hi), k: int(k), r: int(fps), c: c, seed: seed, store: ms}
	sx.initPow()
	return sx, nil
}

// scanV2Payload validates the v2 payload exactly as readV2Payload decodes
// it — same directory guards, same per-block structural decode, plus the
// per-entry range check that Load runs afterward — but into one reused
// block buffer, so open-time validation of a mapped file costs a single
// block of memory, not the dense index. The documented load order is
// preserved: an out-of-range entry found mid-scan is held back until the
// checksum and trailing-data probe have run, so a corrupt file reports
// ErrChecksum here exactly as it would through Load.
func scanV2Payload(br *bufio.Reader, crc hash.Hash32, rows, k, r, n int64, section string) (blockB int64, dir []int64, err error) {
	blockB, dir, err = readV2Dir(br, crc, rows, k, section)
	if err != nil {
		return 0, nil, err
	}
	nb := int64(len(dir)) - 1
	var blockBuf []byte
	var dst []int32
	var rangeErr error
	for b := int64(0); b < nb; b++ {
		width := min(blockB, rows-b*blockB)
		blen := dir[b+1] - dir[b]
		if blen > v2MaxBlockLen(width, k, r) {
			return 0, nil, fmt.Errorf("walkindex: implausible v2 block length %d", blen)
		}
		if int64(cap(blockBuf)) < blen {
			blockBuf = make([]byte, blen)
		}
		buf := blockBuf[:blen]
		if err := readFull(br, crc, buf, section+" v2 block"); err != nil {
			return 0, nil, err
		}
		need := int(width * r * k)
		if cap(dst) < need {
			dst = make([]int32, need)
		}
		if err := decodeV2Block(buf, dst[:need], int(width), int(k), int(r)); err != nil {
			return 0, nil, fmt.Errorf("walkindex: %s block %d: %w", section, b, err)
		}
		if rangeErr == nil {
			rangeErr = validateEntries(dst[:need], n, section[:len(section)-1])
		}
	}
	if err := checkTrailer(br, crc, section+" checksum"); err != nil {
		return 0, nil, err
	}
	if rangeErr != nil {
		return 0, nil, rangeErr
	}
	return blockB, dir, nil
}
