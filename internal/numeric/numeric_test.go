package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLambertW0KnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0},
		{math.E, 1},              // W(e) = 1
		{2 * math.E * math.E, 2}, // W(2e^2) = 2
		{-1 / math.E, -1},        // branch point
		{1, 0.5671432904097838},  // the omega constant
		{10, 1.7455280027406994},
		{100, 3.3856301402900502},
	}
	for _, c := range cases {
		got := LambertW0(c.x)
		if math.Abs(got-c.want) > 1e-12*(1+math.Abs(c.want)) {
			t.Errorf("LambertW0(%g) = %.16g, want %.16g", c.x, got, c.want)
		}
	}
}

func TestLambertW0OutOfDomain(t *testing.T) {
	if !math.IsNaN(LambertW0(-0.5)) {
		t.Error("want NaN left of -1/e")
	}
	if !math.IsNaN(LambertW0(math.NaN())) {
		t.Error("want NaN for NaN input")
	}
	if !math.IsInf(LambertW0(math.Inf(1)), 1) {
		t.Error("want +Inf for +Inf input")
	}
}

// TestLambertW0Inverse checks the defining identity W(x)*e^(W(x)) = x across
// the domain, the property-based contract of the implementation.
func TestLambertW0Inverse(t *testing.T) {
	f := func(raw float64) bool {
		// Map raw into a wide domain sample: [-1/e, 1e8].
		x := math.Mod(math.Abs(raw), 1e8)
		if math.IsNaN(x) {
			return true
		}
		x -= 1 / math.E * math.Mod(math.Abs(raw), 1.0)
		if x < -1/math.E {
			x = -1 / math.E
		}
		w := LambertW0(x)
		back := w * math.Exp(w)
		return math.Abs(back-x) <= 1e-10*(1+math.Abs(x))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestLambertW0Monotone(t *testing.T) {
	prev := LambertW0(-1 / math.E)
	for x := -0.36; x < 50; x += 0.037 {
		w := LambertW0(x)
		if w < prev-1e-12 {
			t.Fatalf("W not monotone at x=%g: %g < %g", x, w, prev)
		}
		prev = w
	}
}

func TestFactorial(t *testing.T) {
	want := []float64{1, 1, 2, 6, 24, 120, 720, 5040}
	for k, w := range want {
		if got := Factorial(k); got != w {
			t.Errorf("Factorial(%d) = %g, want %g", k, got, w)
		}
	}
}

func TestFactorialPanicsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for Factorial(-1)")
		}
	}()
	Factorial(-1)
}

// TestWorkedExampleSection4 reproduces the closed-form example at the end of
// Section IV: C = 0.8, eps = 1e-4 gives K' = 7 for the differential model
// versus K = 41 for the conventional model.
func TestWorkedExampleSection4(t *testing.T) {
	if k := IterationsConventional(0.8, 1e-4); k != 41 {
		t.Errorf("conventional K = %d, want 41", k)
	}
	if k, ok := IterationsDifferentialLog(0.8, 1e-4); !ok || k != 7 {
		t.Errorf("log-estimate K' = %d (ok=%v), want 7", k, ok)
	}
	if k := IterationsDifferentialLambert(0.8, 1e-4); k != 7 {
		t.Errorf("Lambert-estimate K' = %d, want 7", k)
	}
}

// TestFig6fColumns reproduces the estimator columns of Fig. 6f (C = 0.8).
func TestFig6fColumns(t *testing.T) {
	epss := []float64{1e-2, 1e-3, 1e-4, 1e-5, 1e-6}
	wantExact := []int{4, 5, 6, 7, 8}   // OIP-DSR column
	wantLambert := []int{4, 5, 7, 8, 9} // LamW Est. column
	wantLog := []int{-1, 5, 7, 9, 10}   // Log Est. column (-1: not valid)
	for i, eps := range epss {
		if got := IterationsDifferentialExact(0.8, eps); got != wantExact[i] {
			t.Errorf("exact iterations at eps=%g: %d, want %d", eps, got, wantExact[i])
		}
		if got := IterationsDifferentialLambert(0.8, eps); got != wantLambert[i] {
			t.Errorf("Lambert estimate at eps=%g: %d, want %d", eps, got, wantLambert[i])
		}
		got, ok := IterationsDifferentialLog(0.8, eps)
		if wantLog[i] == -1 {
			if ok {
				t.Errorf("log estimate at eps=%g should be invalid, got %d", eps, got)
			}
		} else if !ok || got != wantLog[i] {
			t.Errorf("log estimate at eps=%g: %d (ok=%v), want %d", eps, got, ok, wantLog[i])
		}
	}
}

// TestEstimatorsSufficient checks the estimators really achieve the target
// accuracy: running the estimated number of iterations brings the exact tail
// bound at or below eps.
func TestEstimatorsSufficient(t *testing.T) {
	for _, c := range []float64{0.4, 0.6, 0.8, 0.9} {
		for _, eps := range []float64{1e-2, 1e-3, 1e-4, 1e-6, 1e-8} {
			k := IterationsDifferentialLambert(c, eps)
			if b := ExponentialTailBound(c, k); b > eps {
				t.Errorf("C=%g eps=%g: Lambert K'=%d leaves bound %g > eps", c, eps, k, b)
			}
			if k2, ok := IterationsDifferentialLog(c, eps); ok {
				if b := ExponentialTailBound(c, k2); b > eps {
					t.Errorf("C=%g eps=%g: log K'=%d leaves bound %g > eps", c, eps, k2, b)
				}
			}
			kc := IterationsConventional(c, eps)
			if b := GeometricTailBound(c, kc); b > eps {
				t.Errorf("C=%g eps=%g: conventional K=%d leaves bound %g > eps", c, eps, kc, b)
			}
			if kc > 0 {
				if b := GeometricTailBound(c, kc-1); b <= eps {
					t.Errorf("C=%g eps=%g: conventional K=%d not minimal (K-1 bound %g <= eps)", c, eps, kc, b)
				}
			}
		}
	}
}

// TestExponentialBeatsGeometric verifies the headline claim of Section IV:
// the exponential model needs far fewer iterations at high accuracy.
func TestExponentialBeatsGeometric(t *testing.T) {
	for _, eps := range []float64{1e-3, 1e-4, 1e-5, 1e-6} {
		kGeo := IterationsConventional(0.8, eps)
		kExp := IterationsDifferentialExact(0.8, eps)
		if kExp*3 > kGeo {
			t.Errorf("eps=%g: exponential needs %d vs geometric %d, want >=3x fewer", eps, kExp, kGeo)
		}
	}
}

func TestTailBoundsMonotone(t *testing.T) {
	for k := 0; k < 30; k++ {
		if GeometricTailBound(0.8, k+1) >= GeometricTailBound(0.8, k) {
			t.Fatalf("geometric bound not decreasing at k=%d", k)
		}
		if ExponentialTailBound(0.8, k+1) >= ExponentialTailBound(0.8, k) {
			t.Fatalf("exponential bound not decreasing at k=%d", k)
		}
		if ExponentialTailBound(0.8, k) > GeometricTailBound(0.8, k) {
			t.Fatalf("exponential bound exceeds geometric at k=%d", k)
		}
	}
	if ExponentialTailBound(0.8, 200) != 0 {
		t.Error("overflow guard should clamp huge k to 0")
	}
}

func TestIterationsPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { IterationsConventional(1.2, 0.1) },
		func() { IterationsConventional(0.5, 2) },
		func() { IterationsDifferentialExact(0, 0.1) },
		func() { IterationsDifferentialExact(0.5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic for invalid parameters")
				}
			}()
			fn()
		}()
	}
}
