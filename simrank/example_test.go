package simrank_test

import (
	"fmt"
	"log"

	"oipsr/graph"
	"oipsr/simrank"
)

// Two web pages linked from the same hub are similar: their only
// in-neighbor pair is (hub, hub) with s = 1, so one iteration settles
// s(1, 2) at exactly C.
func ExampleCompute() {
	g := graph.MustFromEdges(3, [][2]int{{0, 1}, {0, 2}})
	scores, stats, err := simrank.Compute(g, simrank.Options{C: 0.8, K: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("s(1,2) = %.2f after %d iterations\n", scores.Score(1, 2), stats.Iterations)
	// Output: s(1,2) = 0.80 after 5 iterations
}

// Engines are interchangeable: OIP-SR reorganizes the naive iteration
// without changing a single score.
func ExampleCompute_engines() {
	g := graph.MustFromEdges(5, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {1, 4}, {3, 4}})
	oip, _, err := simrank.Compute(g, simrank.Options{Algorithm: simrank.OIPSR, C: 0.6, K: 11})
	if err != nil {
		log.Fatal(err)
	}
	naive, _, err := simrank.Compute(g, simrank.Options{Algorithm: simrank.Naive, C: 0.6, K: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("s(1,2) = %.4f, engines agree: %v\n",
		oip.Score(1, 2), oip.MaxDiff(naive) == 0)
	// Output: s(1,2) = 0.6000, engines agree: true
}

// TopK ranks the most similar vertices to a query directly from the
// all-pairs result.
func ExampleScores_TopK() {
	g := graph.MustFromEdges(4, [][2]int{{0, 1}, {0, 2}, {3, 2}})
	scores, _, err := simrank.Compute(g, simrank.Options{C: 0.6, K: 11})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range scores.TopK(1, 2) {
		fmt.Printf("vertex %d: %.2f\n", r.Vertex, r.Score)
	}
	// Output:
	// vertex 2: 0.30
	// vertex 0: 0.00
}
