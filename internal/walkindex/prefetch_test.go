package walkindex

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"oipsr/graph"
	"oipsr/graph/gen"
)

// mappedOf unwraps an Index's store as the mappedStore, for asserting on
// prefetch internals.
func mappedOf(t *testing.T, ix *Index) *mappedStore {
	t.Helper()
	ms, ok := ix.store.(*mappedStore)
	if !ok {
		t.Fatalf("store is %T, want *mappedStore", ix.store)
	}
	return ms
}

// TestPrefetchEquivalenceTinyCache is the prefetcher's equivalence gate:
// under a 2-block LRU (readahead clamped to a single block, maximum
// eviction churn) every query family — SingleSource, Pair, MultiSource,
// Join — must answer bit-identically to the dense index, and the pool
// must actually have decoded blocks (readahead observed, not just
// harmless).
func TestPrefetchEquivalenceTinyCache(t *testing.T) {
	g := gen.WebGraph(500, 6, 13)
	dense, err := Build(g, Options{Walks: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	path := saveV2File(t, dense)
	ctx := context.Background()

	for name, opts := range map[string]MappedOptions{
		"lru2":      {CacheBlocks: 2},
		"lru4deep":  {CacheBlocks: 4, PrefetchBlocks: 16}, // depth clamps to 3
		"readat":    {CacheBlocks: 2, DisableMmap: true},
		"default":   {},
		"nopf":      {CacheBlocks: 2, PrefetchBlocks: -1},
		"nocachepf": {CacheBlocks: -1, PrefetchBlocks: 4}, // no cache: pf auto-off
	} {
		mx, err := LoadMapped(path, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sources := []int{0, 3, 250, 499}
		for _, q := range sources {
			want, err := dense.SingleSource(ctx, q, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := mx.SingleSource(ctx, q, nil)
			if err != nil {
				t.Fatal(err)
			}
			for v := range want {
				if want[v] != got[v] {
					t.Fatalf("%s: SingleSource(%d)[%d] = %v, dense %v", name, q, v, got[v], want[v])
				}
			}
			if got, want := mx.Pair(q, (q+77)%500), dense.Pair(q, (q+77)%500); got != want {
				t.Fatalf("%s: Pair(%d) = %v, dense %v", name, q, got, want)
			}
		}
		wantMS, err := dense.MultiSource(ctx, sources, 3)
		if err != nil {
			t.Fatal(err)
		}
		gotMS, err := mx.MultiSource(ctx, sources, 3)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantMS {
			for v := range wantMS[i] {
				if wantMS[i][v] != gotMS[i][v] {
					t.Fatalf("%s: MultiSource row %d differs at %d", name, i, v)
				}
			}
		}
		wantJoin, err := dense.Join(ctx, 20, 0.05, 200000, 2)
		if err != nil {
			t.Fatal(err)
		}
		gotJoin, err := mx.Join(ctx, 20, 0.05, 200000, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotJoin) != len(wantJoin) {
			t.Fatalf("%s: Join returned %d pairs, dense %d", name, len(gotJoin), len(wantJoin))
		}
		for i := range gotJoin {
			if gotJoin[i] != wantJoin[i] {
				t.Fatalf("%s: Join pair %d = %+v, dense %+v", name, i, gotJoin[i], wantJoin[i])
			}
		}

		ms := mappedOf(t, mx)
		switch name {
		case "nopf", "nocachepf":
			if ms.pfDepth != 0 || ms.pfLoads.Load() != 0 {
				t.Fatalf("%s: prefetch ran (depth %d, %d loads) despite being disabled", name, ms.pfDepth, ms.pfLoads.Load())
			}
		default:
			if ms.pfDepth == 0 {
				t.Fatalf("%s: prefetch depth resolved to 0", name)
			}
		}
		if err := mx.Close(); err != nil {
			t.Fatalf("%s: Close: %v", name, err)
		}
	}
}

// TestPrefetchShardEquivalence covers the shard sweeps: PartialMultiSource
// and JoinCandidates on a 2-block-LRU mapped shard must match the dense
// shard exactly while the pool is prefetching.
func TestPrefetchShardEquivalence(t *testing.T) {
	g := gen.CitationGraph(420, 4, 19)
	opt := Options{Walks: 16, Seed: 5}
	sx, err := BuildShard(g, opt, 60, 350)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "shard.srwk")
	var buf bytes.Buffer
	if err := sx.SaveFormat(&buf, FormatV2); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	mx, err := LoadShardMapped(path, MappedOptions{CacheBlocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer mx.Close()

	ctx := context.Background()
	sources := []int{0, 60, 200, 349, 419}
	want, err := sx.PartialMultiSource(ctx, g, sources, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mx.PartialMultiSource(ctx, g, sources, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for v := range want[i] {
			if want[i][v] != got[i][v] {
				t.Fatalf("PartialMultiSource row %d differs at %d", i, v)
			}
		}
	}
	wantCand, err := sx.JoinCandidates(ctx, g, 0.05, 0, sx.Walks(), 200000, 2)
	if err != nil {
		t.Fatal(err)
	}
	gotCand, err := mx.JoinCandidates(ctx, g, 0.05, 0, mx.Walks(), 200000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantCand) != len(gotCand) {
		t.Fatalf("JoinCandidates: %d keys, dense %d", len(gotCand), len(wantCand))
	}
	for i := range wantCand {
		if wantCand[i] != gotCand[i] {
			t.Fatalf("JoinCandidates key %d differs", i)
		}
	}
	if ms, ok := mx.store.(*mappedStore); !ok || ms.pfLoads.Load() == 0 {
		t.Fatal("shard sweeps triggered no prefetch loads")
	}
}

// TestPrefetchConcurrentReadersAndEdits is the race gate: concurrent
// readers sweep a tiny-cached mapped index (keeping the prefetch pool
// busy) while the writer applies edit batches through Update — whose
// flush rewrites and remaps the backing file under the pool's feet. The
// reader/writer RWMutex mirrors how simrankd serializes edits against
// queries; the prefetch workers are internal and must synchronize
// themselves. Run under -race in CI.
func TestPrefetchConcurrentReadersAndEdits(t *testing.T) {
	g := gen.WebGraph(400, 5, 31)
	opt := Options{Walks: 12, Seed: 8}
	dense, err := Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	mx, err := LoadMapped(saveV2File(t, dense), MappedOptions{CacheBlocks: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer mx.Close()

	var mu sync.RWMutex
	stop := make(chan struct{})
	var wg sync.WaitGroup
	ctx := context.Background()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				mu.RLock()
				if _, err := mx.SingleSource(ctx, (w*97+i*13)%400, nil); err != nil {
					t.Error(err)
				}
				if _, err := mx.MultiSource(ctx, []int{w, (w + 100) % 400}, 2); err != nil {
					t.Error(err)
				}
				mu.RUnlock()
			}
		}(w)
	}

	cur := g
	for batch := 0; batch < 4; batch++ {
		rm := -1 // some vertex that still has an in-edge to delete
		for v := batch; v < 400; v++ {
			if len(cur.In(v)) > 0 {
				rm = v
				break
			}
		}
		if rm < 0 {
			t.Fatal("graph has no edges left to remove")
		}
		next, sum, err := cur.ApplyEdits([]graph.Edit{
			{Op: graph.EditAdd, U: (batch*41 + 7) % 400, V: (batch*59 + 3) % 400},
			{Op: graph.EditRemove, U: cur.In(rm)[0], V: rm},
		})
		if err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		_, uerr := mx.Update(next, sum.DirtyIn, 3)
		mu.Unlock()
		if uerr != nil {
			t.Fatal(uerr)
		}
		cur = next
	}
	close(stop)
	wg.Wait()

	fresh, err := Build(cur, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !mx.Equal(fresh) {
		t.Fatal("mapped index diverged from fresh build after concurrent edits")
	}
}

// TestPrefetchPoolLoads pins down that the pool really decodes blocks:
// an explicit Prefetch on a cold store must populate the LRU from the
// background workers. Polled with a deadline because the pool is
// asynchronous by design.
func TestPrefetchPoolLoads(t *testing.T) {
	g := gen.WebGraph(900, 5, 7) // 15 blocks, well past the window
	dense, err := Build(g, Options{Walks: 12, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	mx, err := LoadMapped(saveV2File(t, dense), MappedOptions{CacheBlocks: 16, PrefetchBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer mx.Close()
	ms := mappedOf(t, mx)
	ms.Prefetch(0, ms.rows)
	deadline := time.Now().Add(10 * time.Second)
	for ms.pfLoads.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("prefetch pool decoded no blocks after explicit Prefetch on a cold store")
		}
		time.Sleep(time.Millisecond)
	}
	// Answers stay bit-identical regardless of what the pool got to first.
	ctx := context.Background()
	for _, q := range []int{0, 440, 899} {
		want, _ := dense.SingleSource(ctx, q, nil)
		got, err := mx.SingleSource(ctx, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if want[v] != got[v] {
				t.Fatalf("SingleSource(%d)[%d] differs after prefetch", q, v)
			}
		}
	}
}

// TestPrefetchCloseDrainsPool: Close with a flooded prefetch queue must
// quiesce the workers before releasing the mapping — no panic, no decode
// against a closed file.
func TestPrefetchCloseDrainsPool(t *testing.T) {
	g := gen.WebGraph(600, 5, 3)
	dense, err := Build(g, Options{Walks: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		mx, err := LoadMapped(saveV2File(t, dense), MappedOptions{CacheBlocks: 2})
		if err != nil {
			t.Fatal(err)
		}
		ms := mappedOf(t, mx)
		ms.Prefetch(0, ms.rows) // flood the queue, then close immediately
		if err := mx.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
