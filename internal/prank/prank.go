// Package prank implements P-Rank (Penetrating Rank, Zhao et al., CIKM
// 2009) with OIP partial-sums sharing.
//
// P-Rank generalizes SimRank by scoring with both in- and out-links:
//
//	s(a,b) = lambda     * C_in /(|I(a)||I(b)|) * sum s(i, j)  over I(a) x I(b)
//	       + (1-lambda) * C_out/(|O(a)||O(b)|) * sum s(i, j)  over O(a) x O(b)
//	s(a,a) = 1; empty-set terms contribute 0.
//
// The paper's Related Work notes that "since the iterative paradigms of
// SimRank and P-Rank are almost similar, our techniques for SimRank can be
// easily extended to P-Rank" — this package is that extension. The in-link
// term reuses the OIP Sweeper over the graph's in-neighbor sets; the
// out-link term reuses it over the transpose graph (whose in-neighbor sets
// are the original out-neighbor sets), each with its own DMST-Reduce plan.
package prank

import (
	"fmt"
	"math"
	"time"

	"oipsr/graph"
	"oipsr/internal/core"
	"oipsr/internal/par"
	"oipsr/internal/partition"
	"oipsr/internal/simmat"
)

// Options configure a P-Rank computation.
type Options struct {
	// CIn and COut are the in-link and out-link damping factors in (0,1).
	// Zero means 0.6 (the SimRank default; Zhao et al. use 0.8).
	CIn, COut float64

	// Lambda in [0,1] weights the in-link term; 1-Lambda weights the
	// out-link term. Zero value means the balanced 0.5. Lambda = 1
	// recovers SimRank exactly.
	Lambda float64

	// K fixes the iteration count; if zero it is derived from Eps with the
	// contraction factor lambda*CIn + (1-lambda)*COut.
	K int

	// Eps is the accuracy target used when K == 0; defaults to 1e-3.
	Eps float64

	// Partition forwards to DMST-Reduce for both plans.
	Partition partition.Options

	// DisableSharing uses trivial (psum-style) plans for both directions.
	DisableSharing bool

	// Workers sets the sweep worker-pool size for both directional sweeps:
	// 1 means serial, anything below 1 means runtime.GOMAXPROCS(0). Scores
	// and operation counts are bit-identical for every value.
	Workers int
}

func (o *Options) normalize() error {
	if o.CIn == 0 {
		o.CIn = 0.6
	}
	if o.COut == 0 {
		o.COut = 0.6
	}
	if !(o.CIn > 0 && o.CIn < 1) || !(o.COut > 0 && o.COut < 1) {
		return fmt.Errorf("prank: damping factors (%v, %v) outside (0,1)", o.CIn, o.COut)
	}
	if o.Lambda == 0 {
		o.Lambda = 0.5
	}
	if o.Lambda < 0 || o.Lambda > 1 {
		return fmt.Errorf("prank: lambda %v outside [0,1]", o.Lambda)
	}
	if o.K < 0 {
		return fmt.Errorf("prank: negative iteration count %d", o.K)
	}
	if o.K == 0 {
		if o.Eps == 0 {
			o.Eps = 1e-3
		}
		if !(o.Eps > 0 && o.Eps < 1) {
			return fmt.Errorf("prank: accuracy eps %v outside (0,1)", o.Eps)
		}
		// Contraction factor of the combined operator.
		c := o.Lambda*o.CIn + (1-o.Lambda)*o.COut
		k := int(math.Ceil(math.Log(o.Eps)/math.Log(c) - 1))
		if k < 1 {
			k = 1
		}
		o.K = k
	}
	return nil
}

// Stats reports the combined work of both directional sweeps.
type Stats struct {
	Iterations int
	PlanTime   time.Duration
	SweepTime  time.Duration

	InnerAdds int64
	OuterAdds int64
	AuxBytes  int64

	InShareRatio  float64 // sharing achieved on in-neighbor sets
	OutShareRatio float64 // sharing achieved on out-neighbor sets
}

// Compute runs P-Rank on g and returns the converged scores.
func Compute(g *graph.Graph, opt Options) (*simmat.Matrix, *Stats, error) {
	if err := opt.normalize(); err != nil {
		return nil, nil, err
	}
	st := &Stats{}
	n := g.NumVertices()
	tr := g.Transpose()

	t0 := time.Now()
	var planIn, planOut *partition.Plan
	if opt.DisableSharing {
		planIn, planOut = partition.TrivialPlan(g), partition.TrivialPlan(tr)
	} else {
		var err error
		if planIn, err = partition.BuildPlan(g, opt.Partition); err != nil {
			return nil, nil, err
		}
		if planOut, err = partition.BuildPlan(tr, opt.Partition); err != nil {
			return nil, nil, err
		}
	}
	st.PlanTime = time.Since(t0)
	st.InShareRatio = planIn.ShareRatio()
	st.OutShareRatio = planOut.ShareRatio()

	swIn := core.NewParallelSweeper(g, planIn, opt.DisableSharing, opt.Workers)
	swOut := core.NewParallelSweeper(tr, planOut, opt.DisableSharing, opt.Workers)
	workers := par.Resolve(opt.Workers)

	prev := simmat.NewIdentity(n)
	next := simmat.New(n)
	tmpIn := simmat.New(n)
	tmpOut := simmat.New(n)

	t1 := time.Now()
	for iter := 0; iter < opt.K; iter++ {
		st.Iterations++
		swIn.Sweep(prev, tmpIn, opt.CIn, false)
		swOut.Sweep(prev, tmpOut, opt.COut, false)
		nd, id, od := next.Data(), tmpIn.Data(), tmpOut.Data()
		l := opt.Lambda
		// Element-wise blend, so splitting across workers is bit-identical.
		par.Do(workers, func(w int) {
			lo, hi := par.Range(len(nd), workers, w)
			for i := lo; i < hi; i++ {
				nd[i] = l*id[i] + (1-l)*od[i]
			}
		})
		for v := 0; v < n; v++ {
			next.Set(v, v, 1)
		}
		prev, next = next, prev
	}
	st.SweepTime = time.Since(t1)
	in, out := swIn.Stats(), swOut.Stats()
	st.InnerAdds = in.InnerAdds + out.InnerAdds
	st.OuterAdds = in.OuterAdds + out.OuterAdds
	st.AuxBytes = swIn.AuxBytes() + swOut.AuxBytes() + planIn.Bytes() + planOut.Bytes()
	return prev, st, nil
}
