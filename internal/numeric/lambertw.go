// Package numeric implements the scalar analysis used by the differential
// SimRank model of Section IV: the Lambert W function, the iteration-count
// estimators of Corollaries 1 and 2, and the error tail bounds of the
// geometric (conventional) and exponential (differential) SimRank series.
package numeric

import (
	"fmt"
	"math"
)

// branchPoint is -1/e, the left end of the domain of the principal branch.
const branchPoint = -0.36787944117144233

// LambertW0 evaluates the principal branch W0 of the Lambert W function,
// the inverse of w -> w*e^w on [-1/e, +inf). It returns NaN for x < -1/e.
//
// The implementation uses a domain-split initial guess followed by Halley
// iteration, which converges to machine precision in <= 6 steps across the
// domain.
func LambertW0(x float64) float64 {
	switch {
	case math.IsNaN(x):
		return math.NaN()
	case x < branchPoint:
		return math.NaN()
	case x == 0:
		return 0
	case math.IsInf(x, 1):
		return math.Inf(1)
	}

	var w float64
	switch {
	case x < -0.3578794: // near the branch point: series in sqrt(2(ex+1))
		p := math.Sqrt(2 * (math.E*x + 1))
		w = -1 + p - p*p/3 + 11.0/72.0*p*p*p
	case x < math.E:
		// Moderate arguments: a rational seed then Halley handles it.
		w = x / (1 + x) * (1 + math.Log1p(x)/2)
		if x > 0.5 {
			w = math.Log1p(x) * (1 - math.Log(1+math.Log1p(x))/(2+math.Log1p(x)))
		}
	default:
		// Large x: the classic asymptotic ln x - ln ln x.
		l1 := math.Log(x)
		l2 := math.Log(l1)
		w = l1 - l2 + l2/l1
	}

	for i := 0; i < 40; i++ {
		ew := math.Exp(w)
		f := w*ew - x
		// Halley's method: quadratic correction of Newton.
		denom := ew*(w+1) - (w+2)*f/(2*w+2)
		dw := f / denom
		w -= dw
		if math.Abs(dw) <= 1e-15*(1+math.Abs(w)) {
			break
		}
	}
	return w
}

// Factorial returns k! as a float64. It overflows to +Inf for k > 170,
// matching IEEE behaviour, which is harmless for tail-bound comparisons.
func Factorial(k int) float64 {
	if k < 0 {
		panic(fmt.Sprintf("numeric: Factorial(%d) undefined", k))
	}
	f := 1.0
	for i := 2; i <= k; i++ {
		f *= float64(i)
	}
	return f
}

// GeometricTailBound returns the conventional SimRank error bound after k
// iterations, |s_k - s| <= C^(k+1) (Lizorkin et al., cited as the accuracy
// guarantee the paper's K = ceil(log_C eps) derives from).
func GeometricTailBound(c float64, k int) float64 {
	return math.Pow(c, float64(k+1))
}

// ExponentialTailBound returns the differential SimRank error bound after k
// iterations, |S^_k - S^|_max <= C^(k+1)/(k+1)! (Proposition 7).
func ExponentialTailBound(c float64, k int) float64 {
	if k+1 > 170 {
		return 0 // (k+1)! overflows float64; the bound is far below ulp(1).
	}
	return math.Pow(c, float64(k+1)) / Factorial(k+1)
}
