package main

import (
	"context"
	"fmt"
	"math"
	"time"

	"oipsr/graph/gen"
	"oipsr/internal/naive"
	"oipsr/simrank/query"
)

// runEnginesWorkload compares the two single-source engine families behind
// the serving seam: the walk index (Monte-Carlo estimates, the ?engine=walk
// default) and the linearized solver (?engine=linearized, exact up to the
// series truncation). For each graph size it reports build cost, max
// absolute error against a deeply converged naive iteration, and p50/p99
// single-source latency — the accuracy/latency trade the engine parameter
// lets clients make per request.
func runEnginesWorkload(cfg config) {
	header("Engine families: walk estimates vs linearized exact", "?engine= trade-off")

	const (
		walks   = 200
		refIter = 60 // naive reference horizon: C^60 ~ 5e-14, far below the 1e-8 gate
		queries = 32
	)
	sizes := []int{150, 300, 600, 1200}

	fmt.Printf("walks per vertex R=%d, reference=naive K=%d, workers=%d\n\n", walks, refIter, benchWorkers)
	fmt.Printf("%7s | %9s %9s | %9s %9s %9s | %9s %9s %9s\n",
		"n", "idx build", "solve", "walk err", "w p50", "w p99", "lin err", "l p50", "l p99")

	for _, size := range sizes {
		n := size / cfg.scale
		if n < 50 {
			n = 50
		}
		g := gen.WebGraph(n, 8, cfg.seed)

		t0 := time.Now()
		idx, err := query.BuildIndex(g, query.Options{Walks: walks, Seed: cfg.seed, Workers: benchWorkers})
		must(err)
		buildTime := time.Since(t0)

		t0 = time.Now()
		must(idx.PrepareExact(context.Background(), benchWorkers))
		solveTime := time.Since(t0)
		st, _ := idx.ExactStats()

		ref, err := naive.ComputeWorkers(g, idx.C(), refIter, benchWorkers)
		must(err)

		qs := queryVertices(n, queries)
		buf := make([]float64, n)
		var walkErr, linErr float64
		for _, q := range qs {
			row, err := idx.SingleSource(context.Background(), q)
			must(err)
			walkErr = math.Max(walkErr, maxAbsDiff(row, ref.Row(q)))
			exact, err := idx.ExactSingleSource(context.Background(), q, buf)
			must(err)
			linErr = math.Max(linErr, maxAbsDiff(exact, ref.Row(q)))
		}

		wP50, wP99 := latencies(qs, func(q int) {
			_, err := idx.SingleSource(context.Background(), q)
			must(err)
		})
		lP50, lP99 := latencies(qs, func(q int) {
			_, err := idx.ExactSingleSource(context.Background(), q, buf)
			must(err)
		})

		emitJSON("engines", map[string]any{
			"n":             n,
			"m":             g.NumEdges(),
			"walks":         walks,
			"horizon":       idx.Horizon(),
			"build_seconds": seconds(buildTime),
			"solve_seconds": seconds(solveTime),
			"solve_sweeps":  st.SolveIters,
			"residual":      st.Residual,
			"walk_err_max":  walkErr,
			"lin_err_max":   linErr,
			"walk_p50":      seconds(wP50),
			"walk_p99":      seconds(wP99),
			"lin_p50":       seconds(lP50),
			"lin_p99":       seconds(lP99),
		})

		fmt.Printf("%7d | %9v %9v | %9.2g %9v %9v | %9.2g %9v %9v\n",
			n, buildTime.Round(time.Millisecond), solveTime.Round(time.Millisecond),
			walkErr, wP50.Round(time.Microsecond), wP99.Round(time.Microsecond),
			linErr, lP50.Round(time.Microsecond), lP99.Round(time.Microsecond))
	}
	fmt.Println("\n(err = max |s - naive| over the query set; the walk engine trades that")
	fmt.Println(" error for row lookups, the linearized engine pays a truncated series")
	fmt.Println(" per query after a one-time diagonal solve.)")
}

// maxAbsDiff returns max_j |a[j] - b[j]| over the shorter length.
func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for j := range a {
		if d := math.Abs(a[j] - b[j]); d > m {
			m = d
		}
	}
	return m
}
