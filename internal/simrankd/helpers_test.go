package simrankd

import "oipsr/simrank/query"

// newServer is the test shorthand predating Config: cacheSize 0 means
// caching off (Config uses negative for that), workers as given,
// everything else default.
func newServer(idx *query.Index, cacheSize, workers int) *Server {
	if cacheSize == 0 {
		cacheSize = -1
	}
	return NewServer(idx, Config{CacheSize: cacheSize, Workers: workers})
}
