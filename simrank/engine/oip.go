package engine

import (
	"context"

	"oipsr/graph"
	"oipsr/internal/core"
	"oipsr/internal/simmat"
)

func init() { Register(oipEngine{base{OIPSR}}) }

// oipEngine is the paper's OIP-SR: partial-sums sharing over the
// DMST-Reduce plan.
type oipEngine struct{ base }

func (oipEngine) Caps() Caps { return Caps{AllPairs: true, Tiled: true} }

func (oipEngine) Compute(_ context.Context, g *graph.Graph, p Params) (simmat.Source, *Stats, error) {
	m, st, err := core.Compute(g, core.Options{
		C:            p.C,
		K:            p.K,
		Eps:          p.Eps,
		StopDiff:     p.StopDiff,
		Partition:    partitionOptions(p),
		DisableOuter: p.DisableOuterSharing,
		Workers:      p.Workers,
	})
	if err != nil {
		return nil, nil, err
	}
	return m, &Stats{
		Algorithm:   OIPSR,
		Iterations:  st.Iterations,
		PlanTime:    st.PlanTime,
		ComputeTime: st.SweepTime,
		InnerAdds:   st.InnerAdds,
		OuterAdds:   st.OuterAdds,
		AuxBytes:    st.AuxBytes,
		StateBytes:  st.StateBytes,
		ShareRatio:  st.ShareRatio,
		AvgDiff:     st.AvgDiff,
		NumSets:     st.NumSets,
		FinalDiff:   st.FinalDiff,
	}, nil
}

func (oipEngine) ComputeTiled(_ context.Context, g *graph.Graph, p Params) (simmat.Source, *Stats, error) {
	m, st, err := core.ComputeTiled(g, core.Options{
		C:            p.C,
		K:            p.K,
		Eps:          p.Eps,
		StopDiff:     p.StopDiff,
		Partition:    partitionOptions(p),
		DisableOuter: p.DisableOuterSharing,
		Workers:      p.Workers,
		Tile:         p.Tile,
	})
	if err != nil {
		return nil, nil, err
	}
	return m, &Stats{
		Algorithm:        OIPSR,
		Iterations:       st.Iterations,
		PlanTime:         st.PlanTime,
		ComputeTime:      st.SweepTime,
		InnerAdds:        st.InnerAdds,
		OuterAdds:        st.OuterAdds,
		AuxBytes:         st.AuxBytes,
		StateBytes:       st.StateBytes,
		ShareRatio:       st.ShareRatio,
		AvgDiff:          st.AvgDiff,
		NumSets:          st.NumSets,
		FinalDiff:        st.FinalDiff,
		TilePeakBytes:    st.Tile.HighWaterBytes,
		TileSpills:       st.Tile.Spills,
		TileLoads:        st.Tile.Loads,
		TileSpilledBytes: st.Tile.SpilledBytes,
	}, nil
}
