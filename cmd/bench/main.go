// Command bench regenerates every table and figure of the paper's
// evaluation (Section V) on the dataset substitutes described in DESIGN.md.
//
// Usage:
//
//	bench [flags] <experiment> [<experiment> ...]
//	bench all
//
// Experiments (paper artifact in parentheses):
//
//	datasets          dataset statistics table            (Fig. 5)
//	exp1-dblp         time on DBLP snapshots              (Fig. 6a left)
//	exp1-web          time vs K on the web workload       (Fig. 6a middle)
//	exp1-patent       time vs K on the citation workload  (Fig. 6a right)
//	exp1-amortized    Build-MST vs Share-Sums breakdown   (Fig. 6b)
//	exp1-density      time + share ratio vs density       (Fig. 6c)
//	exp2-memory       intermediate memory per algorithm   (Fig. 6d)
//	exp3-convergence  iterations vs accuracy              (Fig. 6e)
//	exp3-bounds       LambertW & Log estimate table       (Fig. 6f)
//	exp4-ndcg         NDCG@p of OIP-DSR vs OIP-SR         (Fig. 6g)
//	exp4-topk         top-30 query + inversions           (Fig. 6h)
//	scaling           speedup vs worker-pool size         (parallel sweep)
//	query             walk-index build/latency/precision  (simrankd serving)
//	updates           incremental repair vs full rebuild  (simrankd /v1/edges)
//	batch             shared-traversal batched queries    (simrankd /v1/batch + /v1/join)
//	serve             closed-loop load vs admission control (simrankd overload)
//	memory            tiled engine under a memory cap     (spill-to-disk)
//	shard             sharded fleet + router vs single node (simrankd -mode router)
//	engines           walk vs linearized engine accuracy/latency (?engine= seam)
//	index             on-disk format v2 size + mmap serving latency (walkindex)
//	ablate            design-choice ablations             (DESIGN.md)
//
// The -scale flag shrinks the workloads (absolute numbers change, shapes do
// not); -quick is shorthand for a fast smoke run. -workers sets the
// worker-pool size for the timed experiments (0 = all CPUs). One NDJSON
// record per measured data point is always written to BENCH_PR9.json in
// the working directory (the perf trajectory file); -json FILE (or "-" for
// stdout) tees the same records to a second sink.
package main

import (
	"flag"
	"fmt"
	"os"
)

type config struct {
	scale int   // down-scale factor for workload sizes
	seed  int64 // generator seed
}

// benchWorkers is the -workers flag: the worker-pool size timeAlgo passes to
// engines unless an experiment overrides it (0 = all CPUs, 1 = serial).
var benchWorkers int

func main() {
	var (
		scale    = flag.Int("scale", 1, "down-scale workloads by this factor")
		seed     = flag.Int64("seed", 1, "generator seed")
		quick    = flag.Bool("quick", false, "shorthand for -scale 4")
		workers  = flag.Int("workers", 0, "worker pool for timed experiments (0 = all CPUs, 1 = serial)")
		jsonPath = flag.String("json", "", "emit NDJSON records to this file (\"-\" = stdout)")
	)
	flag.Parse()
	benchWorkers = *workers
	cfg := config{scale: *scale, seed: *seed}
	if *quick && *scale == 1 {
		cfg.scale = 4
	}
	if cfg.scale < 1 {
		cfg.scale = 1
	}

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		fmt.Fprintln(os.Stderr, "\nrun \"bench all\" or pick experiments: datasets exp1-dblp exp1-web exp1-patent exp1-amortized exp1-density exp2-memory exp3-convergence exp3-bounds exp4-ndcg exp4-topk scaling query updates batch serve memory shard engines index ablate")
		os.Exit(2)
	}

	experiments := map[string]func(config){
		"datasets":         runDatasets,
		"exp1-dblp":        runExp1DBLP,
		"exp1-web":         runExp1Web,
		"exp1-patent":      runExp1Patent,
		"exp1-amortized":   runExp1Amortized,
		"exp1-density":     runExp1Density,
		"exp2-memory":      runExp2Memory,
		"exp3-convergence": runExp3Convergence,
		"exp3-bounds":      runExp3Bounds,
		"exp4-ndcg":        runExp4NDCG,
		"exp4-topk":        runExp4TopK,
		"scaling":          runScaling,
		"query":            runQueryWorkload,
		"updates":          runUpdatesWorkload,
		"batch":            runBatchWorkload,
		"serve":            runServeWorkload,
		"memory":           runMemoryWorkload,
		"shard":            runShardWorkload,
		"engines":          runEnginesWorkload,
		"index":            runIndexWorkload,
		"ablate":           runAblations,
	}
	order := []string{
		"datasets", "exp1-dblp", "exp1-web", "exp1-patent", "exp1-amortized",
		"exp1-density", "exp2-memory", "exp3-convergence", "exp3-bounds",
		"exp4-ndcg", "exp4-topk", "scaling", "query", "updates", "batch", "serve", "memory", "shard", "engines", "index", "ablate",
	}

	if len(args) == 1 && args[0] == "all" {
		args = order
	}
	// Validate every experiment name before opening (and truncating) the
	// -json sink, so a usage error cannot destroy a previous run's records.
	for _, name := range args {
		if _, ok := experiments[name]; !ok {
			fmt.Fprintf(os.Stderr, "bench: unknown experiment %q\n", name)
			os.Exit(2)
		}
	}
	if err := initJSON(*jsonPath, args); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	defer closeJSON()
	for _, name := range args {
		experiments[name](cfg)
	}
}

func header(title, artifact string) {
	fmt.Println()
	fmt.Printf("=== %s (%s) ===\n", title, artifact)
}
