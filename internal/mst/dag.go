package mst

import "errors"

// ErrCyclicSelection is returned by GreedyAcyclic when per-vertex minimum
// in-edge selection produces a cycle, i.e. the input was not a DAG (or not
// one in which greedy selection is safe).
var ErrCyclicSelection = errors.New("mst: greedy selection formed a cycle; input is not a DAG")

// GreedyAcyclic computes a minimum spanning arborescence for digraphs whose
// edges respect some topological order (DAGs). In a DAG the cheapest
// incoming edge of every vertex can never close a cycle, so per-vertex
// minimum selection is globally optimal and runs in O(E).
//
// DMST-Reduce produces exactly such inputs: candidate edges only point from
// in-neighbor sets of smaller (in-degree, id) rank to larger ones, so the
// cost graph is a DAG and this fast path applies. GreedyAcyclic verifies
// acyclicity of its selection and returns ErrCyclicSelection if the caller's
// DAG assumption was wrong, rather than returning a non-tree.
func GreedyAcyclic(n, root int, edges []Edge) (*Arborescence, error) {
	if root < 0 || root >= n {
		return nil, errors.New("mst: root out of range")
	}
	a := &Arborescence{
		Root:   root,
		Parent: make([]int, n),
		Edge:   make([]int, n),
	}
	for v := range a.Parent {
		a.Parent[v] = -1
		a.Edge[v] = -1
	}
	for i, e := range edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return nil, errors.New("mst: edge endpoint out of range")
		}
		if e.From == e.To || e.To == root {
			continue
		}
		// Ties break toward the smallest parent id so the selection is
		// deterministic regardless of edge enumeration order (the sparse
		// and dense candidate generators of DMST-Reduce emit the same edge
		// set in different orders and must produce the same tree).
		cur := a.Edge[e.To]
		if cur == -1 || e.Weight < edges[cur].Weight ||
			(e.Weight == edges[cur].Weight && e.From < edges[cur].From) {
			a.Edge[e.To] = i
			a.Parent[e.To] = e.From
		}
	}
	for v := 0; v < n; v++ {
		if v != root && a.Edge[v] == -1 {
			return nil, ErrUnreachable
		}
	}
	// Verify the selection is a tree (reaches root without cycles).
	state := make([]int, n)
	for v := 0; v < n; v++ {
		u := v
		var path []int
		for u != root && state[u] == 0 {
			state[u] = 1
			path = append(path, u)
			u = a.Parent[u]
		}
		if u != root && state[u] == 1 {
			return nil, ErrCyclicSelection
		}
		for _, p := range path {
			state[p] = 2
		}
	}
	for v := 0; v < n; v++ {
		if v != root {
			a.Total += edges[a.Edge[v]].Weight
		}
	}
	return a, nil
}

// Children returns the tree's child lists indexed by vertex, in increasing
// child order. Useful for DFS traversals of the partial-sums order.
func (a *Arborescence) Children() [][]int {
	kids := make([][]int, len(a.Parent))
	for v, p := range a.Parent {
		if p >= 0 {
			kids[p] = append(kids[p], v)
		}
	}
	return kids
}

// Validate checks that the arborescence spans all n vertices: exactly one
// parent per non-root vertex and every vertex reaches the root.
func (a *Arborescence) Validate() error {
	n := len(a.Parent)
	if a.Root < 0 || a.Root >= n {
		return errors.New("mst: root out of range")
	}
	if a.Parent[a.Root] != -1 {
		return errors.New("mst: root has a parent")
	}
	for v := 0; v < n; v++ {
		if v == a.Root {
			continue
		}
		if a.Parent[v] < 0 || a.Parent[v] >= n {
			return errors.New("mst: vertex lacks a valid parent")
		}
	}
	// Every vertex must reach the root in <= n steps.
	for v := 0; v < n; v++ {
		u := v
		for steps := 0; u != a.Root; steps++ {
			if steps > n {
				return errors.New("mst: cycle detected")
			}
			u = a.Parent[u]
		}
	}
	return nil
}
