package walkindex

import (
	"testing"

	"oipsr/graph"
	"oipsr/graph/gen"
)

// TestMultiSourceBitIdenticalToSingleSource: every row of a batched query
// must equal the corresponding independent SingleSource call bitwise, for
// every batch shape and worker count — the acceptance criterion of the
// shared-traversal sweep.
func TestMultiSourceBitIdenticalToSingleSource(t *testing.T) {
	g := gen.WebGraph(150, 6, 13)
	ix, err := Build(g, Options{Walks: 60, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, 0, 15)
	for q := 0; q < 150; q += 10 {
		all = append(all, q)
	}
	batches := [][]int{
		{5},                // a batch of one
		{3, 3},             // duplicate sources
		{0, 7, 33, 149, 7}, // mixed, with a repeat
		all,                // a wide batch
	}
	for _, sources := range batches {
		for _, workers := range []int{1, 2, 3, 7} {
			rows := msRows(t, ix, sources, workers)
			if len(rows) != len(sources) {
				t.Fatalf("MultiSource(%v) returned %d rows", sources, len(rows))
			}
			for i, q := range sources {
				want := ssRow(t, ix, q)
				for v := range want {
					if rows[i][v] != want[v] {
						t.Fatalf("workers=%d sources=%v: row %d (q=%d) differs at v=%d: %g vs %g",
							workers, sources, i, q, v, rows[i][v], want[v])
					}
				}
			}
		}
	}
}

// TestMultiSourceDeadAndIsolated: sources whose walks die immediately (and
// fully isolated vertices) behave exactly like SingleSource — score 1 for
// the source itself, 0 everywhere else.
func TestMultiSourceDeadAndIsolated(t *testing.T) {
	g := graph.MustFromEdges(4, [][2]int{{0, 1}}) // 2 and 3 isolated, 0 a source
	ix, err := Build(g, Options{Walks: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rows := msRows(t, ix, []int{0, 2, 3}, 2)
	for i, q := range []int{0, 2, 3} {
		want := ssRow(t, ix, q)
		for v := range want {
			if rows[i][v] != want[v] {
				t.Fatalf("q=%d v=%d: %g vs %g", q, v, rows[i][v], want[v])
			}
		}
		if rows[i][q] != 1 {
			t.Fatalf("q=%d: self score %g, want 1", q, rows[i][q])
		}
	}
}

// TestMultiSourceEmptyBatch: an empty batch is a clean no-op.
func TestMultiSourceEmptyBatch(t *testing.T) {
	g := gen.WebGraph(20, 4, 1)
	ix, err := Build(g, Options{Walks: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rows := msRows(t, ix, nil, 3); len(rows) != 0 {
		t.Fatalf("MultiSource(nil) returned %d rows, want 0", len(rows))
	}
}
