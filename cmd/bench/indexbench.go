package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"oipsr/graph"
	"oipsr/graph/gen"
	"oipsr/simrank/query"
)

// runIndexWorkload measures the on-disk walk-index formats: the dense v1
// payload against the delta/varint-compressed v2 posting blocks, and the
// in-memory (decoded) serving path against the demand-paged (mmap-backed)
// one.
//
// Three numbers matter. Bytes per vertex — the coupled walks coalesce, so
// shared suffixes delta-encode to almost nothing and v2 is required to
// come in at no more than half of v1 on these graphs (a hard gate: a
// regression exits non-zero, which the CI index smoke relies on). Cold
// single-source latency — a mapped index answers its first query straight
// from the page cache after decoding only the blocks it touches, which is
// the entire point of paying the decode on the query path. Warm latency —
// once the decoded-block LRU holds the working set, mapped queries must
// sit within noise of dense ones.
//
// Before anything is timed, the three backings are equivalence-checked:
// dense v1, decoded v2 and mapped v2 must answer the sample queries
// bit-identically, before and after an edit batch (which for the mapped
// index also rewrites its backing file). Divergence exits non-zero.
func runIndexWorkload(cfg config) {
	header("On-disk formats: compressed v2 + demand paging vs dense v1", "walkindex format v2")

	dir, err := os.MkdirTemp("", "bench-index-*")
	must(err)
	defer os.RemoveAll(dir)

	type workload struct {
		name  string
		g     *graph.Graph
		walks int
	}
	nWeb := 2000 / cfg.scale
	if nWeb < 300 {
		nWeb = 300
	}
	nPat := 2600 / cfg.scale
	if nPat < 400 {
		nPat = 400
	}
	workloads := []workload{
		{"berkstan*", gen.WebGraph(nWeb, 11, cfg.seed), 100},
		{"patent*", gen.CitationGraph(nPat, 4, cfg.seed), 100},
	}

	fmt.Printf("%-10s | %12s %12s %8s | %12s %12s | %12s %12s %12s\n",
		"workload", "v1 bytes", "v2 bytes", "ratio", "B/vertex v1", "B/vertex v2", "cold us", "warm us", "warm nopf us")

	for _, w := range workloads {
		n := w.g.NumVertices()
		idx, err := query.BuildIndex(w.g, query.Options{Walks: w.walks, Seed: cfg.seed, Workers: benchWorkers})
		must(err)

		v1Path := filepath.Join(dir, w.name+".v1.idx")
		v2Path := filepath.Join(dir, w.name+".v2.idx")
		must(idx.SaveFileFormat(v1Path, query.FormatV1))
		must(idx.SaveFileFormat(v2Path, query.FormatV2))
		v1Bytes, v2Bytes := fileSize(v1Path), fileSize(v2Path)
		ratio := float64(v2Bytes) / float64(v1Bytes)

		// Streaming-builder equivalence gate: the out-of-core build under a
		// budget small enough to force many slices must publish exactly the
		// bytes the materialized save wrote.
		streamPath := filepath.Join(dir, w.name+".stream.idx")
		_, err = query.BuildFileStreaming(w.g, query.Options{Walks: w.walks, Seed: cfg.seed, Workers: benchWorkers}, streamPath, 64<<10)
		must(err)
		if !filesEqual(v2Path, streamPath) {
			fmt.Fprintf(os.Stderr, "bench: index: %s: streaming build differs from materialized v2 save\n", w.name)
			os.Exit(1)
		}

		// Equivalence gate across the three backings, then through an edit
		// batch (the mapped index flushes it back to v2Path).
		dense, err := query.LoadFile(v1Path)
		must(err)
		decoded, err := query.LoadFile(v2Path)
		must(err)
		mapped, err := query.LoadFileMapped(v2Path, query.MappedOptions{})
		must(err)
		sample := queryVertices(n, 8)
		checkIndexEquivalence(w.name+" load", sample, dense, decoded, mapped)
		edits := []graph.Edit{
			{Op: graph.EditAdd, U: sample[0], V: sample[1]},
			{Op: graph.EditAdd, U: sample[2], V: sample[0]},
			{Op: graph.EditRemove, U: sample[0], V: sample[1]},
		}
		for _, ix := range []*query.Index{dense, decoded, mapped} {
			must(ix.AttachGraph(w.g))
			_, err := ix.ApplyEdits(edits, benchWorkers)
			must(err)
		}
		checkIndexEquivalence(w.name+" edited", sample, dense, decoded, mapped)
		// The flushed file must reproduce the live mapped index on its own.
		reloaded, err := query.LoadFileMapped(v2Path, query.MappedOptions{})
		must(err)
		checkIndexEquivalence(w.name+" reloaded", sample, mapped, reloaded)
		must(reloaded.Close())
		must(mapped.Close())

		// Cold: a fresh mapped open answering its first query (decodes only
		// the touched blocks) — against a fresh COPY of the file with its
		// page cache dropped, because v2Path itself was just written and
		// read, so timing it again would measure the page cache, not the
		// disk. Warm: the same query once the block LRU holds the working
		// set, with the prefetch pool on (default) and off, so the readahead
		// win is visible. Dense-decoded latency is the reference.
		q := sample[0]
		coldPath := filepath.Join(dir, w.name+".cold.idx")
		must(copyFile(coldPath, v2Path))
		must(dropPageCache(coldPath))
		t0 := time.Now()
		cold, err := query.LoadFileMapped(coldPath, query.MappedOptions{})
		must(err)
		_, err = cold.SingleSource(context.Background(), q)
		must(err)
		coldLat := time.Since(t0)
		warmLat := timeSingleSource(cold, q, 20)
		denseLat := timeSingleSource(decoded, q, 20)
		must(cold.Close())
		nopf, err := query.LoadFileMapped(v2Path, query.MappedOptions{PrefetchBlocks: -1})
		must(err)
		warmNoPf := timeSingleSource(nopf, q, 20)
		must(nopf.Close())

		fmt.Printf("%-10s | %12d %12d %7.1f%% | %12.1f %12.1f | %12d %12d %12d\n",
			w.name, v1Bytes, v2Bytes, ratio*100,
			float64(v1Bytes)/float64(n), float64(v2Bytes)/float64(n),
			coldLat.Microseconds(), warmLat.Microseconds(), warmNoPf.Microseconds())
		emitJSON("index", map[string]any{
			"workload": w.name, "n": n, "walks": w.walks,
			"v1_bytes": v1Bytes, "v2_bytes": v2Bytes, "compression_ratio": ratio,
			"bytes_per_vertex_v1": float64(v1Bytes) / float64(n),
			"bytes_per_vertex_v2": float64(v2Bytes) / float64(n),
			"cold_us_mapped":      coldLat.Microseconds(), "warm_us_mapped": warmLat.Microseconds(),
			"warm_us_mapped_noprefetch": warmNoPf.Microseconds(),
			"warm_us_dense":             denseLat.Microseconds(),
			"equivalence":               "dense/decoded/mapped/streamed bit-identical incl. edits",
		})

		if ratio > 0.5 {
			fmt.Fprintf(os.Stderr, "bench: index: %s v2 is %.1f%% of v1, want <= 50%%\n", w.name, ratio*100)
			os.Exit(1)
		}
	}
	fmt.Println("\nv2 <= 50% of v1 verified; dense/decoded/mapped answers bit-identical before and after edits; streaming build byte-identical to materialized save")

	runStreamingBuild(cfg, dir)
}

// copyFile copies src to dst (truncating dst).
func copyFile(dst, src string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// filesEqual reports whether two files hold identical bytes.
func filesEqual(a, b string) bool {
	da, err := os.ReadFile(a)
	must(err)
	db, err := os.ReadFile(b)
	must(err)
	return bytes.Equal(da, db)
}

// checkIndexEquivalence exits non-zero unless every index answers the
// sample single-source queries bit-identically to the first one.
func checkIndexEquivalence(stage string, sample []int, indexes ...*query.Index) {
	ctx := context.Background()
	for _, q := range sample {
		want, err := indexes[0].SingleSource(ctx, q)
		must(err)
		for i, ix := range indexes[1:] {
			got, err := ix.SingleSource(ctx, q)
			must(err)
			for v := range want {
				if got[v] != want[v] {
					fmt.Fprintf(os.Stderr, "bench: index: %s: backing %d (%s) diverges from %s at source %d target %d: %v != %v\n",
						stage, i+1, ix.Backend(), indexes[0].Backend(), q, v, got[v], want[v])
					os.Exit(1)
				}
			}
		}
	}
}

// timeSingleSource reports the per-query latency of reps single-source
// queries for vertex q.
func timeSingleSource(ix *query.Index, q, reps int) time.Duration {
	t0 := time.Now()
	for i := 0; i < reps; i++ {
		_, err := ix.SingleSource(context.Background(), q)
		must(err)
	}
	return time.Since(t0) / time.Duration(reps)
}

// fileSize returns the size of path in bytes.
func fileSize(path string) int64 {
	fi, err := os.Stat(path)
	must(err)
	return fi.Size()
}
