package walkindex

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Shard on-disk formats (all integers little-endian):
//
//	offset  size  field
//	0       8     magic "SRWKSHRD"
//	8       4     format version (1 or 2)
//	12      8     n    (full-graph vertices, int64)
//	20      8     lo   (first owned vertex, int64)
//	28      8     hi   (one past the last owned vertex, int64)
//	36      8     k    (horizon, int64)
//	44      8     r    (fingerprints, int64)
//	52      8     c    (damping factor, IEEE-754 bits)
//	60      8     seed (int64)
//
// then, format 1: 4*(hi-lo)*r*k raw path bytes; format 2: the block
// size/count pair, directory, and posting blocks exactly as in the full
// index's v2 layout (serialize.go / v2.go) with hi-lo rows. Either way a
// CRC-32 (IEEE) of every preceding byte seals the file.
//
// The layout mirrors the full-index format with the owned range spliced
// into the header; the distinct magic keeps a shard file from ever
// loading as a full index or vice versa — Load and LoadShard reject each
// other's files with ErrBadMagic, not a silent misread. LoadShard follows
// the same documented load order as Load.

var shardMagic = [8]byte{'S', 'R', 'W', 'K', 'S', 'H', 'R', 'D'}

const shardHeaderSize = 8 + 4 + 7*8

// Save writes the shard to w in format v1, CRC-sealed like the full
// index. Use SaveFormat with FormatV2 for the compressed revision.
func (sx *ShardIndex) Save(w io.Writer) error { return sx.SaveFormat(w, FormatV1) }

// SaveFormat writes the shard to w in the requested on-disk format,
// validating against the load-side guards first (ErrFormatLimits).
func (sx *ShardIndex) SaveFormat(w io.Writer, format int) error {
	if format != FormatV1 && format != FormatV2 {
		return fmt.Errorf("%w: unknown save format %d", ErrVersion, format)
	}
	width := sx.hi - sx.lo
	if err := formatGuard(int64(width), int64(sx.k), int64(sx.r), sx.c, format); err != nil {
		return err
	}
	var hdr [shardHeaderSize]byte
	copy(hdr[:8], shardMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], uint32(format))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(int64(sx.n)))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(int64(sx.lo)))
	binary.LittleEndian.PutUint64(hdr[28:], uint64(int64(sx.hi)))
	binary.LittleEndian.PutUint64(hdr[36:], uint64(int64(sx.k)))
	binary.LittleEndian.PutUint64(hdr[44:], uint64(int64(sx.r)))
	binary.LittleEndian.PutUint64(hdr[52:], math.Float64bits(sx.c))
	binary.LittleEndian.PutUint64(hdr[60:], uint64(sx.seed))
	if format == FormatV1 {
		return writeDense(w, hdr[:], sx.store.Row, width, "shard")
	}
	blocks, err := encodeV2Blocks(sx.store.Row, width, sx.k, sx.r)
	if err != nil {
		return err
	}
	pre := make([]byte, shardHeaderSize+8)
	copy(pre, hdr[:])
	binary.LittleEndian.PutUint32(pre[shardHeaderSize:], v2BlockVertices)
	binary.LittleEndian.PutUint32(pre[shardHeaderSize+4:], uint32(len(blocks)))
	return writeV2(w, pre, blocks, "shard")
}

// LoadShard reads a shard written by Save or SaveFormat. It applies the
// same defenses as Load, in the same documented order: magic/version/range
// validation before trusting the header, payload allocation growing with
// bytes read, a CRC check over everything read, a trailing-data probe, and
// per-entry range validation of the paths.
func LoadShard(r io.Reader) (*ShardIndex, error) {
	crc := crc32.NewIEEE()
	br := bufio.NewReaderSize(r, 1<<16)

	// Step 1: header parse + plausibility guards.
	var hdr [shardHeaderSize]byte
	if err := readFull(br, crc, hdr[:], "shard header"); err != nil {
		return nil, err
	}
	if [8]byte(hdr[:8]) != shardMagic {
		return nil, ErrBadMagic
	}
	version := binary.LittleEndian.Uint32(hdr[8:])
	if version != FormatV1 && version != FormatV2 {
		return nil, fmt.Errorf("%w: file has version %d, this build reads versions %d and %d", ErrVersion, version, FormatV1, FormatV2)
	}
	n := int64(binary.LittleEndian.Uint64(hdr[12:]))
	lo := int64(binary.LittleEndian.Uint64(hdr[20:]))
	hi := int64(binary.LittleEndian.Uint64(hdr[28:]))
	k := int64(binary.LittleEndian.Uint64(hdr[36:]))
	fps := int64(binary.LittleEndian.Uint64(hdr[44:]))
	c := math.Float64frombits(binary.LittleEndian.Uint64(hdr[52:]))
	seed := int64(binary.LittleEndian.Uint64(hdr[60:]))
	if n < 0 || k < 1 || fps < 1 {
		return nil, fmt.Errorf("walkindex: invalid shard header (n=%d, k=%d, r=%d)", n, k, fps)
	}
	if lo < 0 || hi < lo || hi > n {
		return nil, fmt.Errorf("walkindex: invalid shard header range [%d,%d) with n=%d", lo, hi, n)
	}
	if k > maxHorizon {
		return nil, fmt.Errorf("walkindex: implausible walk horizon k = %d", k)
	}
	if !(c > 0 && c < 1) {
		return nil, fmt.Errorf("walkindex: invalid shard header damping factor %v", c)
	}
	width := hi - lo
	elems := width * fps * k
	if width > 0 && (elems/width/fps != k || elems > maxElems) {
		return nil, fmt.Errorf("walkindex: implausible shard size width*r*k = %d*%d*%d", width, fps, k)
	}

	// Step 2: payload decode.
	var paths []int32
	var err error
	if version == FormatV1 {
		paths, err = readDensePayload(br, crc, elems, "shard paths")
	} else {
		paths, err = readV2Payload(br, crc, width, k, fps, "shard paths")
	}
	if err != nil {
		return nil, err
	}

	// Steps 3+4: checksum, then the trailing-data probe.
	if err := checkTrailer(br, crc, "shard checksum"); err != nil {
		return nil, err
	}
	// Step 5: per-entry range validation.
	if err := validateEntries(paths, n, "shard path"); err != nil {
		return nil, err
	}
	// Step 6: construction from validated fields only.
	sx := &ShardIndex{n: int(n), lo: int(lo), hi: int(hi), k: int(k), r: int(fps), c: c, seed: seed,
		store: newDenseStore(paths, int(fps*k))}
	sx.initPow()
	return sx, nil
}
