package simrank

import (
	"oipsr/internal/simmat"
	"oipsr/simrank/engine"
)

// Algorithm selects the SimRank engine. It aliases engine.Algorithm: the
// simrank/engine registry is the single source of truth for which names
// exist, and Algorithm.Valid reports registry membership.
type Algorithm = engine.Algorithm

// The built-in engines, re-exported from the registry package. See the
// package documentation for the trade-offs.
const (
	// OIPSR is the paper's partial-sums-sharing algorithm (Algorithm 1),
	// the default.
	OIPSR = engine.OIPSR
	// OIPDSR is the differential (exponential-convergence) SimRank with
	// OIP sharing.
	OIPDSR = engine.OIPDSR
	// PsumSR is Lizorkin et al.'s partial sums memoization baseline.
	PsumSR = engine.PsumSR
	// Naive is the original Jeh-Widom iteration.
	Naive = engine.Naive
	// MtxSR is Li et al.'s SVD-based low-rank approximation.
	MtxSR = engine.MtxSR
	// PRank is Penetrating Rank (Zhao et al.): SimRank generalized to use
	// both in- and out-links, with OIP sharing applied in both directions.
	PRank = engine.PRank
	// MonteCarlo is the Fogaras-Racz sampling estimator. Probabilistic;
	// Theta(n^2) time independent of K.
	MonteCarlo = engine.MonteCarlo
	// Linearized is Maehara et al.'s linearization: a diagonal-correction
	// solve turns SimRank into a linear system, answering exact
	// single-source and single-pair queries with no n^2 state.
	Linearized = engine.Linearized
)

// Options configure Compute. The zero value means: OIP-SR, C = 0.6,
// accuracy eps = 1e-3 (the paper's defaults).
type Options struct {
	// Algorithm selects the engine; empty means OIPSR.
	Algorithm Algorithm

	// C is the damping factor in (0,1); 0 means 0.6.
	C float64

	// K fixes the iteration count. 0 means derive it from Eps: the
	// Lizorkin bound ceil(log_C eps)-style count for the geometric engines,
	// the Proposition-7 count for OIPDSR. For Linearized, K pins the series
	// horizon the same way.
	K int

	// Eps is the desired accuracy when K == 0; 0 means 1e-3. For
	// Linearized it is also the diagonal-solve tolerance.
	Eps float64

	// Workers sets the worker-pool size of the iteration phase: 1 means
	// serial, anything below 1 means runtime.GOMAXPROCS(0). Every engine
	// partitions work so that scores — and, where reported, operation
	// counts — are bit-identical for every worker count.
	Workers int

	// StopDiff, when positive, stops geometric engines early once the
	// max-norm difference of successive iterates falls to or below it
	// (OIP-SR only; ignored elsewhere).
	StopDiff float64

	// Threshold enables psum-SR threshold sieving (PsumSR only).
	Threshold float64

	// Rank is the SVD truncation rank (MtxSR only); 0 means ceil(sqrt(n)).
	Rank int

	// Seed seeds randomized stages (MtxSR's SVD start block, MonteCarlo's
	// walks).
	Seed int64

	// Lambda weights P-Rank's in-link term against its out-link term
	// (PRank only); 0 means the balanced 0.5, 1 recovers SimRank.
	Lambda float64

	// COut is P-Rank's out-link damping factor (PRank only); 0 means C.
	COut float64

	// Walks is the number of sampled walk pairs per vertex pair
	// (MonteCarlo only); 0 means 100.
	Walks int

	// DisableOuterSharing ablates outer partial-sums sharing (OIPSR only).
	DisableOuterSharing bool

	// DensePartition builds the paper's O(n^2) DMST cost table instead of
	// the lossless overlap-based candidates (OIPSR / OIPDSR).
	DensePartition bool

	// UseEdmonds forces the general Chu-Liu/Edmonds MST backend instead of
	// the greedy DAG fast path (OIPSR / OIPDSR).
	UseEdmonds bool

	// PairCap bounds candidate-pair generation per shared in-neighbor
	// (OIPSR / OIPDSR); 0 means unlimited.
	PairCap int

	// BlockSize, when positive, selects the tiled score-matrix backend:
	// the n x n state becomes a grid of BlockSize x BlockSize tiles with
	// symmetric (upper-triangular) storage, a bounded working set, and
	// spill-to-disk for evicted tiles. Supported by the engines whose
	// Caps().Tiled is set (OIPSR, OIPDSR, PsumSR, Naive); scores are
	// bit-identical to the dense backend for every block size and worker
	// count. Results computed this way hold tile resources — call
	// Scores.Close when done.
	BlockSize int

	// MaxMemoryBytes caps the resident tile bytes of the whole computation
	// (all score matrices together) when the tiled backend is selected;
	// least-recently-used tiles are evicted to SpillDir when the cap is
	// hit. 0 means unbounded. Ignored unless BlockSize > 0.
	MaxMemoryBytes int64

	// SpillDir is where evicted tiles are written (a fresh temporary
	// directory when empty, removed on Scores.Close). Ignored unless
	// BlockSize > 0.
	SpillDir string
}

// params flattens the Options into the normalized engine.Params handed to
// registry engines (the tiled knobs fold into Tile).
func (o Options) params() engine.Params {
	return engine.Params{
		C:                   o.C,
		K:                   o.K,
		Eps:                 o.Eps,
		Workers:             o.Workers,
		StopDiff:            o.StopDiff,
		Threshold:           o.Threshold,
		Rank:                o.Rank,
		Seed:                o.Seed,
		Lambda:              o.Lambda,
		COut:                o.COut,
		Walks:               o.Walks,
		DisableOuterSharing: o.DisableOuterSharing,
		DensePartition:      o.DensePartition,
		UseEdmonds:          o.UseEdmonds,
		PairCap:             o.PairCap,
		Tile: simmat.TileOptions{
			BlockSize:      o.BlockSize,
			MaxMemoryBytes: o.MaxMemoryBytes,
			SpillDir:       o.SpillDir,
		},
	}
}

// Stats reports what a computation did. It aliases engine.Stats; fields not
// applicable to the chosen engine are zero.
type Stats = engine.Stats
