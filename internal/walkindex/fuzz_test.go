package walkindex

import (
	"bytes"
	"encoding/binary"
	"testing"

	"oipsr/graph"
)

// fuzzSeedIndex returns a small valid index and its serialized bytes in
// both formats, the structured seeds every mutation starts from.
func fuzzSeedIndex(f *testing.F) (v1, v2 []byte) {
	f.Helper()
	g := graph.MustFromEdges(6, [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 1}, {4, 2}, {5, 4}})
	ix, err := Build(g, Options{C: 0.6, K: 4, Walks: 3, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := ix.Save(&b1); err != nil {
		f.Fatal(err)
	}
	if err := ix.SaveFormat(&b2, FormatV2); err != nil {
		f.Fatal(err)
	}
	return b1.Bytes(), b2.Bytes()
}

// FuzzLoad: Load must return an error — never panic, never allocate
// proportionally to a forged header — on arbitrary bytes. Anything it
// accepts must have been consumed completely (no trailing bytes) and must
// survive a re-save/re-load round trip: byte-identical for format v1,
// index-identical for format v2 (whose block size is a writer choice, so
// byte equality only holds for our own writer's layout).
func FuzzLoad(f *testing.F) {
	valid, valid2 := fuzzSeedIndex(f)
	f.Add(valid)
	f.Add(valid2)
	f.Add(valid[:len(valid)-5])                     // truncated v1 payload
	f.Add(valid[:headerSize])                       // header only
	f.Add([]byte{})                                 // empty
	f.Add([]byte("SRWKIDX\x00junk"))                // magic, garbage after
	f.Add(bytes.Repeat([]byte{0}, 64))              // zeros
	f.Add(append(append([]byte{}, valid...), 0x00)) // trailing byte after v1 trailer
	f.Add(append(append([]byte{}, valid2...), 'x')) // trailing byte after v2 trailer
	corrupt := append([]byte(nil), valid...)
	corrupt[headerSize+3] ^= 0x20 // v1 payload bit flip -> checksum mismatch
	f.Add(corrupt)
	corrupt2 := append([]byte(nil), valid2...)
	corrupt2[len(corrupt2)-8] ^= 0x40 // v2 posting-block bit flip
	f.Add(corrupt2)
	truncBlock := append([]byte(nil), valid2[:len(valid2)-9]...) // truncated v2 block
	f.Add(truncBlock)
	forgedDir := append([]byte(nil), valid2...)
	forgedDir[headerSize+8+3] ^= 0x01 // block directory offset flip
	reseal(forgedDir)                 // CRC-valid forged directory
	f.Add(forgedDir)
	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		version := binary.LittleEndian.Uint32(data[8:])
		var buf bytes.Buffer
		if err := ix.SaveFormat(&buf, int(version)); err != nil {
			t.Fatalf("re-saving accepted index: %v", err)
		}
		if version == FormatV1 {
			// Load rejects trailing bytes, so an accepted v1 stream is
			// exactly one index: the round trip is full-byte equality.
			if !bytes.Equal(buf.Bytes(), data) {
				t.Fatal("accepted v1 index did not round-trip bit-identically")
			}
			return
		}
		again, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-loading re-saved v2 index: %v", err)
		}
		if !ix.Equal(again) {
			t.Fatal("accepted v2 index did not round-trip identically")
		}
	})
}

// TestFuzzSeedsRejected pins what the adversarial fuzz seeds must produce:
// the corpus entries built from structured corruption are all rejected
// with the right sentinel (or any error for structural damage).
func TestFuzzSeedsRejected(t *testing.T) {
	g := graph.MustFromEdges(6, [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 1}, {4, 2}, {5, 4}})
	ix, err := Build(g, Options{C: 0.6, K: 4, Walks: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var b2 bytes.Buffer
	if err := ix.SaveFormat(&b2, FormatV2); err != nil {
		t.Fatal(err)
	}
	valid2 := b2.Bytes()

	t.Run("bit-flipped block", func(t *testing.T) {
		corrupt := append([]byte(nil), valid2...)
		corrupt[len(corrupt)-8] ^= 0x40
		if _, err := Load(bytes.NewReader(corrupt)); err == nil {
			t.Fatal("bit-flipped v2 block accepted")
		}
	})
	t.Run("truncated block", func(t *testing.T) {
		if _, err := Load(bytes.NewReader(valid2[:len(valid2)-9])); err == nil {
			t.Fatal("truncated v2 file accepted")
		}
	})
	t.Run("forged directory", func(t *testing.T) {
		forged := append([]byte(nil), valid2...)
		forged[headerSize+8+3] ^= 0x01 // first directory offset
		reseal(forged)
		if _, err := Load(bytes.NewReader(forged)); err == nil {
			t.Fatal("CRC-valid forged directory accepted")
		}
	})
}
