// Package montecarlo implements the Fogaras-Racz sampling estimator for
// SimRank (reference [6] of the paper): s(a,b) = E[C^tau], where tau is the
// first time two reverse random walks started at a and b meet.
//
// Walks use the fingerprint coupling of Fogaras and Racz: within one
// fingerprint every vertex owns a walker, and all walkers standing on the
// same vertex take the same random in-edge, so walks coalesce once they
// meet and one pass yields meeting times for all pairs simultaneously. The
// estimator averages C^tau over R fingerprints, truncating walks at horizon
// K (the geometric tail beyond K is at most C^K, the same truncation the
// iterative model makes).
//
// The estimate is probabilistic — the paper's Related Work dismisses the
// approach for exactly that reason — but needs no n^2 iteration state
// beyond the accumulator, and its per-fingerprint cost is O(K*n) walk steps
// plus the pair-meeting bookkeeping.
package montecarlo

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"oipsr/graph"
	"oipsr/internal/par"
	"oipsr/internal/simmat"
)

// Options configure the estimator.
type Options struct {
	// C is the damping factor in (0,1); 0 means 0.6.
	C float64
	// K is the walk horizon; 0 derives it from Eps as the smallest K with
	// C^(K+1) <= Eps (matching the iterative truncation).
	K int
	// Eps is the truncation target used when K == 0; defaults to 1e-3.
	Eps float64
	// Walks is the number of fingerprints R; 0 means 100. The standard
	// error of each score scales as 1/sqrt(R).
	Walks int
	// Seed makes the estimate deterministic.
	Seed int64

	// Workers sets the worker-pool size for the pair-meeting bookkeeping,
	// the quadratic part of each step: 1 means serial, anything below 1
	// means runtime.GOMAXPROCS(0). The RNG-driven walk itself stays serial,
	// and distinct buckets touch disjoint vertex pairs, so the estimate is
	// bit-identical for every worker count.
	Workers int
}

// Stats reports the sampling effort.
type Stats struct {
	Walks    int
	Horizon  int
	Meetings int64 // pair meetings recorded across all fingerprints
	Elapsed  time.Duration
	AuxBytes int64
}

// Compute estimates all-pairs SimRank by coupled reverse random walks.
func Compute(g *graph.Graph, opt Options) (*simmat.Matrix, *Stats, error) {
	if opt.C == 0 {
		opt.C = 0.6
	}
	if !(opt.C > 0 && opt.C < 1) {
		return nil, nil, fmt.Errorf("montecarlo: damping factor %v outside (0,1)", opt.C)
	}
	if opt.K < 0 || opt.Walks < 0 {
		return nil, nil, fmt.Errorf("montecarlo: negative K or Walks")
	}
	if opt.K == 0 {
		eps := opt.Eps
		if eps == 0 {
			eps = 1e-3
		}
		if !(eps > 0 && eps < 1) {
			return nil, nil, fmt.Errorf("montecarlo: accuracy eps %v outside (0,1)", eps)
		}
		opt.K = int(math.Ceil(math.Log(eps)/math.Log(opt.C) - 1))
		if opt.K < 1 {
			opt.K = 1
		}
	}
	if opt.Walks == 0 {
		opt.Walks = 100
	}

	start := time.Now()
	n := g.NumVertices()
	rng := rand.New(rand.NewSource(opt.Seed))
	est := simmat.New(n)
	st := &Stats{Walks: opt.Walks, Horizon: opt.K}
	workers := par.ResolveMax(opt.Workers, n)
	meetings := make([]int64, workers)

	// metStamp[a*n+b] == fingerprint+1 marks that the pair already met in
	// the current fingerprint, so only the first meeting contributes.
	metStamp := make([]int32, n*n)
	pos := make([]int, n)  // walker position per start vertex, -1 = dead
	move := make([]int, n) // the shared random in-edge choice per vertex
	buckets := make([][]int, n)

	for r := 0; r < opt.Walks; r++ {
		stamp := int32(r + 1)
		for v := range pos {
			pos[v] = v
		}
		weight := 1.0
		for t := 1; t <= opt.K; t++ {
			weight *= opt.C
			// One shared random in-edge per vertex: walkers standing on
			// the same vertex move together (coalescence).
			for x := 0; x < n; x++ {
				in := g.In(x)
				if len(in) == 0 {
					move[x] = -1
				} else {
					move[x] = in[rng.Intn(len(in))]
				}
			}
			alive := false
			for v := range pos {
				if pos[v] >= 0 {
					pos[v] = move[pos[v]]
					if pos[v] >= 0 {
						alive = true
					}
				}
			}
			if !alive {
				break
			}
			// Group walkers by position; every new co-located pair meets
			// here for the first time.
			for i := range buckets {
				buckets[i] = buckets[i][:0]
			}
			for v, p := range pos {
				if p >= 0 {
					buckets[p] = append(buckets[p], v)
				}
			}
			// Pair-meeting bookkeeping, the quadratic part. A pair can only
			// co-locate in one bucket, so distinct buckets write disjoint
			// est/metStamp cells and the bucket loop parallelizes without
			// locks; buckets are claimed off a shared atomic cursor since
			// coalescence makes their sizes wildly uneven.
			var cursor atomic.Int64
			par.Do(workers, func(w int) {
				// Count into a local to keep the hot loop off the shared
				// meetings slice (false sharing).
				var met int64
				for {
					p := int(cursor.Add(1)) - 1
					if p >= n {
						meetings[w] += met
						return
					}
					bucket := buckets[p]
					for i := 0; i < len(bucket); i++ {
						for j := i + 1; j < len(bucket); j++ {
							a, b := bucket[i], bucket[j]
							if metStamp[a*n+b] == stamp {
								continue
							}
							metStamp[a*n+b] = stamp
							metStamp[b*n+a] = stamp
							est.Add(a, b, weight)
							est.Add(b, a, weight)
							met++
						}
					}
				}
			})
		}
	}

	for _, m := range meetings {
		st.Meetings += m
	}
	inv := 1 / float64(opt.Walks)
	d := est.Data()
	for i := range d {
		d[i] *= inv
	}
	for v := 0; v < n; v++ {
		est.Set(v, v, 1)
	}
	st.Elapsed = time.Since(start)
	st.AuxBytes = int64(len(metStamp))*4 + int64(len(pos)+len(move))*8
	return est, st, nil
}
