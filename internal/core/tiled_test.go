package core

import (
	"fmt"
	"math/rand"
	"testing"

	"oipsr/internal/simmat"
)

// requireBitIdentical fails unless the tiled matrix equals the dense one in
// every bit of every cell, both triangles included.
func requireBitIdentical(t *testing.T, dense *simmat.Matrix, tiled *simmat.Tiled, ctx string) {
	t.Helper()
	n := dense.N()
	buf := make([]float64, n)
	for i := 0; i < n; i++ {
		if err := tiled.RowInto(i, buf); err != nil {
			t.Fatalf("%s: RowInto(%d): %v", ctx, i, err)
		}
		for j := 0; j < n; j++ {
			if buf[j] != dense.At(i, j) {
				t.Fatalf("%s: cell (%d,%d): tiled %v != dense %v", ctx, i, j, buf[j], dense.At(i, j))
			}
		}
	}
}

// TestComputeTiledBitIdentical: the acceptance criterion of the tiled
// engine — for every block size (incl. B=1, ragged borders, B>=n) and every
// worker count, ComputeTiled equals Compute bit for bit, and the operation
// counts match exactly.
func TestComputeTiledBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{17, 40} {
		g := randomGraph(rng, n, 4*n)
		for _, disableOuter := range []bool{false, true} {
			base := Options{C: 0.6, K: 5, DisableOuter: disableOuter, Workers: 1}
			dense, dst, err := Compute(g, base)
			if err != nil {
				t.Fatal(err)
			}
			for _, block := range []int{1, 3, 8, n, n + 5} {
				for _, workers := range []int{1, 2, 5} {
					opt := base
					opt.Workers = workers
					opt.Tile = simmat.TileOptions{BlockSize: block}
					tiled, tst, err := ComputeTiled(g, opt)
					if err != nil {
						t.Fatal(err)
					}
					ctx := testCtx(n, block, workers, disableOuter)
					requireBitIdentical(t, dense, tiled, ctx)
					if tst.InnerAdds != dst.InnerAdds || tst.OuterAdds != dst.OuterAdds {
						t.Errorf("%s: op counts drifted: inner %d vs %d, outer %d vs %d",
							ctx, tst.InnerAdds, dst.InnerAdds, tst.OuterAdds, dst.OuterAdds)
					}
					tiled.Close()
				}
			}
		}
	}
}

// TestComputeTiledUnderBudget: a memory cap far below the dense state
// forces spill-to-disk mid-sweep, and the result is still bit-identical
// while the resident high-water mark respects the cap.
func TestComputeTiledUnderBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 60
	g := randomGraph(rng, n, 5*n)
	dense, _, err := Compute(g, Options{C: 0.6, K: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	const block = 16
	tileBytes := int64(block * block * 8)
	budget := 6 * tileBytes // far below the ~2 * n(n+B)/2 * 8 working set
	for _, workers := range []int{1, 3} {
		tiled, st, err := ComputeTiled(g, Options{C: 0.6, K: 4, Workers: workers,
			Tile: simmat.TileOptions{BlockSize: block, MaxMemoryBytes: budget, SpillDir: t.TempDir()}})
		if err != nil {
			t.Fatal(err)
		}
		requireBitIdentical(t, dense, tiled, "budgeted")
		if st.Tile.Spills == 0 {
			t.Errorf("workers=%d: no spills under budget %d (high-water %d)", workers, budget, st.Tile.HighWaterBytes)
		}
		if st.Tile.HighWaterBytes > budget {
			t.Errorf("workers=%d: high-water %d exceeds budget %d", workers, st.Tile.HighWaterBytes, budget)
		}
		tiled.Close()
	}
}

// TestComputeTiledStopDiff: the early-stopping rule sees the same max-norm
// differences as the dense path and stops at the same iteration.
func TestComputeTiledStopDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomGraph(rng, 30, 120)
	opt := Options{C: 0.6, K: 40, StopDiff: 1e-4}
	dense, dst, err := Compute(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Tile = simmat.TileOptions{BlockSize: 7}
	tiled, tst, err := ComputeTiled(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer tiled.Close()
	if tst.Iterations != dst.Iterations || tst.FinalDiff != dst.FinalDiff {
		t.Errorf("stopping drifted: iters %d vs %d, final diff %v vs %v",
			tst.Iterations, dst.Iterations, tst.FinalDiff, dst.FinalDiff)
	}
	requireBitIdentical(t, dense, tiled, "stopdiff")
}

func testCtx(n, block, workers int, disableOuter bool) string {
	return fmt.Sprintf("n=%d block=%d workers=%d disableOuter=%v", n, block, workers, disableOuter)
}
