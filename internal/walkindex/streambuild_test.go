package walkindex

import (
	"bytes"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"oipsr/graph"
	"oipsr/graph/gen"
)

// memWriterAt is an in-memory io.WriterAt growing to cover every write,
// the harness behind the byte-identity assertions.
type memWriterAt struct{ buf []byte }

func (m *memWriterAt) WriteAt(p []byte, off int64) (int, error) {
	if end := int(off) + len(p); end > len(m.buf) {
		grown := make([]byte, end)
		copy(grown, m.buf)
		m.buf = grown
	}
	copy(m.buf[off:], p)
	return len(p), nil
}

// streamBudgets returns the budget set every streaming test sweeps: one
// byte (every slice degrades to a single vertex), budgets straddling one
// row and one posting block, a budget that never divides the block size
// evenly, and one larger than any test index (a single slice).
func streamBudgets(stride int) []int64 {
	row := 4 * int64(stride)
	return []int64{1, row - 1, row, 3*row + 7, (v2BlockVertices - 1) * row, v2BlockVertices * row, 100*row + 13, 1 << 30}
}

// TestBuildStreamingByteIdentical is the tentpole property: for random
// graphs, every budget (including ones forcing one-vertex slices), and
// every worker count, BuildStreaming writes the exact bytes of
// SaveFormat(FormatV2) on a materialized Build — and the file round-trips
// through both Load and LoadMapped to an Equal index.
func TestBuildStreamingByteIdentical(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"web":    gen.WebGraph(200, 6, 3),
		"cite":   gen.CitationGraph(150, 4, 8),
		"random": gen.ErdosRenyi(130, 400, 5),
		"empty":  graph.MustFromEdges(0, nil),
		"single": graph.MustFromEdges(1, nil),
	}
	for name, g := range graphs {
		opt := Options{Walks: 9, K: 7, Seed: 11}
		dense, err := Build(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		var want bytes.Buffer
		if err := dense.SaveFormat(&want, FormatV2); err != nil {
			t.Fatal(err)
		}
		for _, budget := range streamBudgets(opt.Walks * opt.K) {
			for _, workers := range []int{1, 3} {
				w := &memWriterAt{}
				st, err := BuildStreaming(g, Options{Walks: 9, K: 7, Seed: 11, Workers: workers}, w, budget)
				if err != nil {
					t.Fatalf("%s budget=%d workers=%d: %v", name, budget, workers, err)
				}
				if !bytes.Equal(w.buf, want.Bytes()) {
					t.Fatalf("%s budget=%d workers=%d: streamed %d bytes differ from materialized %d",
						name, budget, workers, len(w.buf), want.Len())
				}
				if st.Bytes != int64(len(w.buf)) {
					t.Fatalf("%s budget=%d: stats report %d bytes, wrote %d", name, budget, st.Bytes, len(w.buf))
				}
				if st.Rows != g.NumVertices() || st.K != 7 || st.Walks != 9 {
					t.Fatalf("%s: stats %+v disagree with resolved options", name, st)
				}
			}
		}

		// One round trip per graph: the streamed file loads dense and mapped
		// to an index Equal to the materialized build.
		loaded, err := Load(bytes.NewReader(want.Bytes()))
		if err != nil {
			t.Fatalf("%s: loading streamed bytes: %v", name, err)
		}
		if !loaded.Equal(dense) {
			t.Fatalf("%s: loaded streamed index != dense build", name)
		}
		path := filepath.Join(t.TempDir(), "stream.srwk")
		if err := os.WriteFile(path, want.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		mx, err := LoadMapped(path, MappedOptions{})
		if err != nil {
			t.Fatalf("%s: mapping streamed bytes: %v", name, err)
		}
		if !mx.Equal(dense) {
			t.Fatalf("%s: mapped streamed index != dense build", name)
		}
		mx.Close()
	}
}

// TestBuildShardStreamingByteIdentical: the shard variant must reproduce
// ShardIndex.SaveFormat(FormatV2) bytes for ranges that start and end in
// the middle of posting blocks, including empty and one-vertex ranges.
func TestBuildShardStreamingByteIdentical(t *testing.T) {
	g := gen.WebGraph(300, 5, 21)
	opt := Options{Walks: 8, K: 6, Seed: 17}
	ranges := [][2]int{{0, 300}, {37, 181}, {64, 128}, {1, 2}, {50, 50}, {299, 300}, {0, 63}}
	for _, rg := range ranges {
		lo, hi := rg[0], rg[1]
		sx, err := BuildShard(g, opt, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		var want bytes.Buffer
		if err := sx.SaveFormat(&want, FormatV2); err != nil {
			t.Fatal(err)
		}
		for _, budget := range streamBudgets(opt.Walks * opt.K) {
			w := &memWriterAt{}
			st, err := BuildShardStreaming(g, Options{Walks: 8, K: 6, Seed: 17, Workers: 2}, lo, hi, w, budget)
			if err != nil {
				t.Fatalf("[%d,%d) budget=%d: %v", lo, hi, budget, err)
			}
			if !bytes.Equal(w.buf, want.Bytes()) {
				t.Fatalf("[%d,%d) budget=%d: streamed shard bytes differ", lo, hi, budget)
			}
			if st.Rows != hi-lo {
				t.Fatalf("[%d,%d): stats report %d rows", lo, hi, st.Rows)
			}
		}
		loaded, err := LoadShard(bytes.NewReader(want.Bytes()))
		if err != nil {
			t.Fatalf("[%d,%d): loading streamed shard: %v", lo, hi, err)
		}
		if !loaded.Equal(sx) {
			t.Fatalf("[%d,%d): loaded streamed shard != dense shard", lo, hi)
		}
	}
}

// TestBuildStreamingRandomized fuzzes the (graph, budget, workers) space
// more broadly than the fixed tables above, with derived horizons (K from
// Eps) to make sure resolution happens before slicing.
func TestBuildStreamingRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(200)
		g := gen.ErdosRenyi(n, rng.Intn(5*n+1), rng.Int63())
		opt := Options{Walks: 1 + rng.Intn(12), Seed: rng.Int63()}
		if rng.Intn(2) == 0 {
			opt.K = 1 + rng.Intn(9)
		}
		dense, err := Build(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		var want bytes.Buffer
		if err := dense.SaveFormat(&want, FormatV2); err != nil {
			t.Fatal(err)
		}
		budget := 1 + rng.Int63n(int64(4*n*dense.Walks()*dense.Horizon())+64)
		w := &memWriterAt{}
		stream := Options{Walks: opt.Walks, K: opt.K, Seed: opt.Seed, Workers: 1 + rng.Intn(4)}
		if _, err := BuildStreaming(g, stream, w, budget); err != nil {
			t.Fatalf("trial %d (n=%d budget=%d): %v", trial, n, budget, err)
		}
		if !bytes.Equal(w.buf, want.Bytes()) {
			t.Fatalf("trial %d (n=%d budget=%d): streamed bytes differ", trial, n, budget)
		}
	}
}

// TestBuildStreamingErrors: invalid budgets, options, and shard ranges are
// rejected before anything is written.
func TestBuildStreamingErrors(t *testing.T) {
	g := gen.WebGraph(20, 4, 1)
	for _, budget := range []int64{0, -7} {
		w := &memWriterAt{}
		if _, err := BuildStreaming(g, Options{Walks: 4, K: 3}, w, budget); err == nil {
			t.Errorf("BuildStreaming accepted budget %d", budget)
		}
		if len(w.buf) != 0 {
			t.Errorf("BuildStreaming wrote %d bytes despite budget error", len(w.buf))
		}
	}
	if _, err := BuildStreaming(g, Options{C: 2}, &memWriterAt{}, 1<<20); err == nil {
		t.Error("BuildStreaming accepted damping factor 2")
	}
	if _, err := BuildShardStreaming(g, Options{Walks: 4, K: 3}, 5, 30, &memWriterAt{}, 1<<20); err == nil {
		t.Error("BuildShardStreaming accepted out-of-range shard")
	}
	if _, err := BuildShardStreaming(g, Options{Walks: 4, K: 3}, 5, 10, &memWriterAt{}, 0); err == nil {
		t.Error("BuildShardStreaming accepted zero budget")
	}
}

// TestCRC32Combine checks the GF(2) combine against the definition: for
// random splits, combining CRC(a) and CRC(b) must reproduce CRC(a‖b).
func TestCRC32Combine(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		a := make([]byte, rng.Intn(300))
		b := make([]byte, rng.Intn(300))
		rng.Read(a)
		rng.Read(b)
		want := crc32.ChecksumIEEE(append(append([]byte(nil), a...), b...))
		got := crc32Combine(crc32.ChecksumIEEE(a), crc32.ChecksumIEEE(b), int64(len(b)))
		if got != want {
			t.Fatalf("trial %d (|a|=%d |b|=%d): combine = %08x, direct = %08x", trial, len(a), len(b), got, want)
		}
	}
	// Long-tail lengths exercise the high bits of the length loop.
	for _, padded := range []int{1 << 10, 1 << 16, 1<<20 + 3} {
		a := []byte("head")
		b := make([]byte, padded)
		rng.Read(b)
		want := crc32.ChecksumIEEE(append(append([]byte(nil), a...), b...))
		if got := crc32Combine(crc32.ChecksumIEEE(a), crc32.ChecksumIEEE(b), int64(len(b))); got != want {
			t.Fatalf("len %d: combine = %08x, direct = %08x", padded, got, want)
		}
	}
}

// TestStreamSliceVertices pins the budget-to-slice-width resolution.
func TestStreamSliceVertices(t *testing.T) {
	cases := []struct {
		budget int64
		stride int
		rows   int
		want   int
	}{
		{1, 100, 500, 1},         // sub-row budget degrades to one vertex
		{399, 100, 500, 1},       // just below one row
		{400, 100, 500, 1},       // exactly one row
		{4000, 100, 500, 10},     // ten rows
		{1 << 40, 100, 500, 500}, // capped at rows
		{1 << 40, 100, 0, 0},     // rows == 0: any positive width is fine
	}
	for _, c := range cases {
		got := streamSliceVertices(c.budget, c.stride, c.rows)
		if c.rows == 0 {
			if got < 1 {
				t.Errorf("streamSliceVertices(%d, %d, %d) = %d, want >= 1", c.budget, c.stride, c.rows, got)
			}
			continue
		}
		if got != c.want {
			t.Errorf("streamSliceVertices(%d, %d, %d) = %d, want %d", c.budget, c.stride, c.rows, got, c.want)
		}
	}
}
