package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"oipsr/graph/gen"
	"oipsr/simrank"
)

// runMemoryWorkload demonstrates the memory-bounded tiled sweep engine:
// an OIP-SR run at an n whose dense backend needs two n^2 float64 matrices
// that provably exceed a hard cap, completed by the tiled backend under
// that cap with LRU eviction and spill-to-disk. The run is verified
// bit-identical against the dense backend (which this workload, unlike a
// genuinely RAM-starved deployment, can still afford), and a block-size
// sweep shows the working-set / spill-traffic trade-off.
func runMemoryWorkload(cfg config) {
	header("memory: tiled engine under a hard cap", "tiled backend")

	n := 1024 / cfg.scale
	g := gen.WebGraph(n, webDeg, cfg.seed)
	denseBytes := 2 * sq(int64(g.NumVertices())) * 8
	// A cap the dense backend provably exceeds: ~3/8 of its two-matrix
	// state (the tiled upper triangle alone is ~1/2 + tile slack).
	capBytes := denseBytes * 3 / 8
	spill, err := os.MkdirTemp("", "bench-memory-")
	must(err)
	defer os.RemoveAll(spill)

	fmt.Printf("n = %d: dense backend needs %s for 2 score matrices; cap = %s\n",
		g.NumVertices(), kb(denseBytes), kb(capBytes))

	t0 := time.Now()
	dense, dst, err := simrank.Compute(g, simrank.Options{Algorithm: simrank.OIPSR, C: 0.6, K: 8})
	must(err)
	denseTime := time.Since(t0)
	if dst.StateBytes != denseBytes {
		fmt.Printf("  (dense engine reports %s state)\n", kb(dst.StateBytes))
	}

	workers := benchWorkers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("%-8s | %12s %12s %8s %8s | %10s | %s\n",
		"block", "peak resident", "spilled", "spills", "loads", "time", "vs dense")
	for _, block := range []int{64, 128, 256} {
		// Each worker pins a tile while streaming a row, so the cap must
		// hold a few tiles per worker to make progress.
		if block > g.NumVertices() || int64(block*block*8)*int64(workers+2) > capBytes {
			fmt.Printf("%-8d | (tile too large for this cap, skipped)\n", block)
			continue
		}
		t1 := time.Now()
		tiled, st, err := simrank.Compute(g, simrank.Options{
			Algorithm: simrank.OIPSR, C: 0.6, K: 8, Workers: benchWorkers,
			BlockSize: block, MaxMemoryBytes: capBytes, SpillDir: spill,
		})
		must(err)
		elapsed := time.Since(t1)
		if st.TilePeakBytes > capBytes {
			fmt.Printf("bench: BUG: peak resident %d exceeds cap %d\n", st.TilePeakBytes, capBytes)
			os.Exit(1)
		}
		diff := tiled.MaxDiff(dense)
		verdict := "bit-identical"
		if diff != 0 {
			verdict = fmt.Sprintf("DIVERGED by %g", diff)
		}
		fmt.Printf("%-8d | %12s %12s %8d %8d | %10v | %s\n",
			block, kb(st.TilePeakBytes), kb(st.TileSpilledBytes),
			st.TileSpills, st.TileLoads, elapsed.Round(time.Millisecond), verdict)
		emitJSON("memory", map[string]any{
			"n":             g.NumVertices(),
			"block":         block,
			"cap_bytes":     capBytes,
			"dense_bytes":   denseBytes,
			"peak_bytes":    st.TilePeakBytes,
			"spills":        st.TileSpills,
			"spilled_bytes": st.TileSpilledBytes,
			"loads":         st.TileLoads,
			"seconds":       seconds(elapsed),
			"max_diff":      diff,
			"iterations":    st.Iterations,
		})
		must(tiled.Close())
	}
	fmt.Printf("(dense run: %v; tiling pays only past RAM — expect slower wall-clock, identical bits)\n",
		denseTime.Round(time.Millisecond))
}
