package engine

import "time"

// Stats reports what a computation did. Fields not applicable to the chosen
// engine are zero. The simrank package aliases this type as simrank.Stats.
type Stats struct {
	Algorithm  Algorithm
	Iterations int

	// PlanTime covers preprocessing (DMST-Reduce for the OIP engines, the
	// truncated SVD for MtxSR, the diagonal-correction solve for
	// Linearized); ComputeTime covers the iteration phase.
	PlanTime    time.Duration
	ComputeTime time.Duration

	// InnerAdds and OuterAdds count scalar additions on inner/outer partial
	// sums (the paper's cost unit). Zero for Naive and MtxSR.
	InnerAdds int64
	OuterAdds int64

	// AuxBytes is auxiliary memory beyond the score matrices — the
	// "intermediate memory" of the paper's Fig. 6d. StateBytes is the
	// n^2-sized state the engine holds while running.
	AuxBytes   int64
	StateBytes int64

	// Sharing metrics (OIP engines): fraction of partial-sum additions
	// avoided, the mean symmetric-difference size d_(+) over shared MST
	// edges, and the number of non-empty in-neighbor sets.
	ShareRatio float64
	AvgDiff    float64
	NumSets    int

	// FinalDiff is the last successive-iterate max-norm difference when
	// StopDiff was used.
	FinalDiff float64

	// Rank is the SVD rank used (MtxSR).
	Rank int

	// Residual is the final solve residual of the linear-system engines:
	// the diagonal-correction max-norm residual for Linearized.
	Residual float64

	// SievedPairs counts threshold-sieved scores (PsumSR).
	SievedPairs int64

	// Tiled-backend accounting (zero unless Options.BlockSize > 0):
	// TilePeakBytes is the peak resident tile memory, TileSpills counts
	// dirty tiles evicted to disk, TileLoads counts tiles paged back in,
	// and TileSpilledBytes is the exact cumulative spill traffic.
	TilePeakBytes    int64
	TileSpills       int64
	TileLoads        int64
	TileSpilledBytes int64
}
