package simrank

import (
	"context"
	"math"
	"testing"

	"oipsr/simrank/engine"
)

// TestConformanceLinearized runs the linearized engine over the golden
// corpus fixtures. The committed goldens are truncated at confK (tail
// ~C^12), far above the 1e-8 gate, and the linearization approximates the
// converged conventional fixed point — so the reference here is a fresh
// deeply-converged naive run (K = 100, tail ~1e-22) on each fixture, and
// the 1e-8 disagreement budget is linsr's alone.
func TestConformanceLinearized(t *testing.T) {
	const refK = 100
	for _, name := range conformanceFixtures {
		name := name
		t.Run(name, func(t *testing.T) {
			g := loadConformanceGraph(t, name)
			ref, _, err := Compute(g, Options{Algorithm: Naive, C: confC, K: refK, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 3} {
				lin, st, err := Compute(g, Options{Algorithm: Linearized, C: confC, Eps: 1e-10, Workers: workers})
				if err != nil {
					t.Fatalf("w=%d: %v", workers, err)
				}
				worst := 0.0
				for i := 0; i < g.NumVertices(); i++ {
					row := lin.Row(i)
					refRow := ref.Row(i)
					for j, v := range row {
						if d := math.Abs(v - refRow[j]); d > worst {
							worst = d
						}
					}
				}
				if worst > 1e-8 {
					t.Errorf("w=%d: max abs error vs converged naive %g > 1e-8 (residual %g after %d sweeps)",
						workers, worst, st.Residual, st.Iterations)
				}
			}
		})
	}
}

// TestLinearizedSingleSourceMatchesAllPairs pins the row bit-consistency
// contract: the all-pairs output is built row-by-row from the same
// single-source fold, so the two paths must agree bit for bit.
func TestLinearizedSingleSourceMatchesAllPairs(t *testing.T) {
	for _, name := range conformanceFixtures {
		name := name
		t.Run(name, func(t *testing.T) {
			g := loadConformanceGraph(t, name)
			opt := Options{Algorithm: Linearized, C: confC, Eps: 1e-10}
			all, _, err := Compute(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			e, ok := engine.Get(Linearized)
			if !ok {
				t.Fatal("linearized engine not registered")
			}
			for q := 0; q < g.NumVertices(); q++ {
				row, _, err := e.SingleSource(context.Background(), g, opt.params(), q)
				if err != nil {
					t.Fatal(err)
				}
				allRow := all.Row(q)
				for j, v := range row {
					if v != allRow[j] {
						t.Fatalf("q=%d j=%d: single-source %x != all-pairs %x", q, j, v, allRow[j])
					}
				}
			}
		})
	}
}
