// Package histogram provides a tiny lock-free latency histogram with
// Prometheus text exposition, used by cmd/simrankd's /metrics endpoint.
// It exists because the repo takes no dependencies: the Prometheus client
// library would bring a tree of them, while the exposition format for one
// cumulative histogram is a dozen lines of fmt.Fprintf.
//
// Observations are time.Durations; buckets are upper bounds in seconds
// (the Prometheus convention for *_seconds histograms). All methods are
// safe for concurrent use: Observe is two atomic adds plus an atomic
// increment, so it belongs on request hot paths.
package histogram

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// DefBuckets spans 100µs to 10s — wide enough to cover a cache hit on one
// end and a reranked batch on a large graph on the other.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram counts observations into fixed buckets. The zero value is not
// usable; construct with New.
type Histogram struct {
	// bounds are the inclusive upper bounds in seconds, strictly
	// increasing; counts has one extra slot for the +Inf bucket. Buckets
	// are stored non-cumulative (each observation lands in exactly one)
	// and summed into the cumulative form Prometheus expects at write
	// time, so Observe touches one counter, not one per larger bucket.
	bounds []float64
	counts []atomic.Uint64
	sum    atomic.Int64 // total observed time in nanoseconds
	count  atomic.Uint64
}

// New returns a histogram over the given bucket upper bounds in seconds
// (nil means DefBuckets). Bounds are sorted and deduplicated; a +Inf
// bucket is always appended.
func New(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	uniq := bs[:0]
	for i, b := range bs {
		if i == 0 || b != bs[i-1] {
			uniq = append(uniq, b)
		}
	}
	return &Histogram{bounds: uniq, counts: make([]atomic.Uint64, len(uniq)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	secs := d.Seconds()
	// Linear scan: bucket counts are small (16 by default) and latencies
	// skew low, so the scan usually stops within a few comparisons.
	i := 0
	for i < len(h.bounds) && secs > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.count.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// WriteProm writes the histogram in the Prometheus text exposition format
// under the given metric name (conventionally ending in _seconds):
// cumulative name_bucket{le="..."} series including le="+Inf", then
// name_sum (in seconds) and name_count.
//
// The series is a consistent snapshot only in the absence of concurrent
// Observe calls; under load the usual Prometheus caveat applies — buckets
// scraped mid-observation may disagree by the requests in flight, which
// monotonic counters tolerate.
func (h *Histogram) WriteProm(w io.Writer, name string) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(b, 'g', -1, 64), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum().Seconds())
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}
