package simrank

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"oipsr/graph"
	"oipsr/graph/gio"
	"oipsr/internal/matrixform"
	"oipsr/internal/simmat"
)

// The golden conformance corpus: small, hand-written graphs covering the
// structural edge cases (self-loops, disconnected components + isolated
// vertices, star/hub degeneracy, DAG, cycles, heavy in-neighbor overlap),
// each with committed ground-truth scores.
//
//   - <name>.golden holds the exact conventional-model scores (the naive
//     Jeh-Widom oracle at confC, confK); every conventional engine — naive,
//     psum-sr, oip-sr, and p-rank at lambda=1 — times every backend (dense,
//     tiled at several block sizes, tiled under a spilling memory budget)
//     must match within 1e-12. Monte Carlo matches within statistical
//     tolerance.
//   - <name>.dsr.golden holds the differential-model scores (pinned from
//     the serial dense OIP-DSR engine, cross-checked here against the
//     independent matrixform.ExponentialSum oracle); OIP-DSR times every
//     backend must match within 1e-12.
//   - mtx-SR approximates the matrix-form model, so it is checked against
//     matrixform.GeometricSum at full rank instead of the golden file.
//
// Regenerate the goldens with:
//
//	go test ./simrank -run TestConformance -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite the conformance golden files")

const (
	confC = 0.6
	confK = 11
	// confTol is the corpus tolerance: the goldens are exact engine output
	// and all conventional engines share the canonical-symmetry rule, so
	// agreement is rounding-level; 1e-12 leaves room for cross-platform
	// FMA contraction differences.
	confTol = 1e-12
)

var conformanceFixtures = []string{
	"selfloop", "disconnected", "star", "dag", "cycle", "overlap",
}

// conformanceBackends enumerates the storage backends every supported
// engine is exercised against: dense, tiled at block sizes bracketing the
// fixture dimensions (1 = extreme, 5 = ragged tiles, 64 >= n = one tile),
// and a tiled run under a memory budget small enough to force spills.
type confBackend struct {
	name   string
	block  int
	budget int64
	spill  bool
}

var conformanceBackends = []confBackend{
	{name: "dense"},
	{name: "tiled/B=1", block: 1},
	{name: "tiled/B=5", block: 5},
	{name: "tiled/B=64", block: 64},
	{name: "tiled/B=4+spill", block: 4, budget: 6 * 4 * 4 * 8, spill: true},
}

func loadConformanceGraph(t *testing.T, name string) *graph.Graph {
	t.Helper()
	path := filepath.Join("testdata", "conformance", name+".edges")
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// The first line may carry an "# n=N" directive forcing trailing
	// isolated vertices the edge list alone cannot express.
	br := bufio.NewReader(f)
	head, _ := br.Peek(64)
	n := 0
	if line, _, ok := strings.Cut(string(head), "\n"); ok {
		fmt.Sscanf(line, "# n=%d", &n)
	}
	g, err := gio.ReadEdgeListN(br, n)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return g
}

func goldenPath(name, suffix string) string {
	return filepath.Join("testdata", "conformance", name+suffix)
}

// writeGolden stores the canonical upper triangle, full float64 precision.
func writeGolden(t *testing.T, path string, m *simmat.Matrix) {
	t.Helper()
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %d vertices; lines: i j score (canonical upper triangle, i <= j)\n", m.N())
	for i := 0; i < m.N(); i++ {
		for j := i; j < m.N(); j++ {
			fmt.Fprintf(&sb, "%d %d %.17g\n", i, j, m.At(i, j))
		}
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

func readGolden(t *testing.T, path string, n int) *simmat.Matrix {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to regenerate)", err)
	}
	defer f.Close()
	m := simmat.New(n)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var i, j int
		var v float64
		if _, err := fmt.Sscanf(line, "%d %d %g", &i, &j, &v); err != nil {
			t.Fatalf("%s: bad line %q: %v", path, line, err)
		}
		m.Set(i, j, v)
		m.Set(j, i, v)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return m
}

// maxDiffGolden compares a Scores result against a golden matrix.
func maxDiffGolden(t *testing.T, s *Scores, golden *simmat.Matrix) float64 {
	t.Helper()
	d := 0.0
	for i := 0; i < golden.N(); i++ {
		row := s.Row(i)
		for j, v := range row {
			if x := math.Abs(v - golden.At(i, j)); x > d {
				d = x
			}
		}
	}
	return d
}

func backendOptions(b confBackend, t *testing.T) (blockSize int, budget int64, dir string) {
	if b.block == 0 {
		return 0, 0, ""
	}
	if b.spill {
		return b.block, b.budget, t.TempDir()
	}
	return b.block, 0, ""
}

// TestConformanceCorpus pins every engine, over every backend, to the
// committed ground truth on every fixture.
func TestConformanceCorpus(t *testing.T) {
	type engineCase struct {
		name   string
		opts   Options
		tiled  bool // participates in the tiled-backend sweep
		golden string
		tol    float64
	}
	engines := []engineCase{
		{name: "naive", opts: Options{Algorithm: Naive, C: confC, K: confK}, tiled: true, golden: ".golden", tol: confTol},
		{name: "psum-sr", opts: Options{Algorithm: PsumSR, C: confC, K: confK}, tiled: true, golden: ".golden", tol: confTol},
		{name: "oip-sr", opts: Options{Algorithm: OIPSR, C: confC, K: confK}, tiled: true, golden: ".golden", tol: confTol},
		{name: "oip-sr/inner-only", opts: Options{Algorithm: OIPSR, C: confC, K: confK, DisableOuterSharing: true}, tiled: true, golden: ".golden", tol: confTol},
		{name: "p-rank/lambda=1", opts: Options{Algorithm: PRank, C: confC, K: confK, Lambda: 1}, golden: ".golden", tol: confTol},
		{name: "oip-dsr", opts: Options{Algorithm: OIPDSR, C: confC, K: confK}, tiled: true, golden: ".dsr.golden", tol: confTol},
	}

	for _, name := range conformanceFixtures {
		name := name
		t.Run(name, func(t *testing.T) {
			g := loadConformanceGraph(t, name)
			n := g.NumVertices()

			if *updateGolden {
				conv, _, err := Compute(g, Options{Algorithm: Naive, C: confC, K: confK, Workers: 1})
				if err != nil {
					t.Fatal(err)
				}
				gm := simmat.New(n)
				for i := 0; i < n; i++ {
					copy(gm.Row(i), conv.Row(i))
				}
				writeGolden(t, goldenPath(name, ".golden"), gm)
				dsr, _, err := Compute(g, Options{Algorithm: OIPDSR, C: confC, K: confK, Workers: 1})
				if err != nil {
					t.Fatal(err)
				}
				dm := simmat.New(n)
				for i := 0; i < n; i++ {
					copy(dm.Row(i), dsr.Row(i))
				}
				writeGolden(t, goldenPath(name, ".dsr.golden"), dm)
			}

			conv := readGolden(t, goldenPath(name, ".golden"), n)
			diff := readGolden(t, goldenPath(name, ".dsr.golden"), n)

			// The differential golden must itself agree with the
			// independent matrix-form oracle (exponential series, free
			// diagonal): engine output is not self-certifying.
			expo, err := matrixform.ExponentialSum(g, confC, confK)
			if err != nil {
				t.Fatal(err)
			}
			if d := simmat.MaxDiff(diff, expo); d > 1e-10 {
				t.Errorf("dsr golden vs matrixform oracle: %g > 1e-10", d)
			}
			// And the conventional golden against one matrix-form sweep
			// sanity invariant: symmetric, in [0, 1], unit diagonal.
			if err := conv.CheckSymmetric(0); err != nil {
				t.Errorf("conventional golden not symmetric: %v", err)
			}
			if err := conv.CheckRange(0, 1, 0); err != nil {
				t.Errorf("conventional golden out of range: %v", err)
			}

			for _, ec := range engines {
				golden := conv
				if ec.golden == ".dsr.golden" {
					golden = diff
				}
				backends := conformanceBackends
				if !ec.tiled {
					backends = conformanceBackends[:1]
				}
				for _, be := range backends {
					for _, workers := range []int{1, 3} {
						opts := ec.opts
						opts.Workers = workers
						opts.BlockSize, opts.MaxMemoryBytes, opts.SpillDir = backendOptions(be, t)
						s, _, err := Compute(g, opts)
						if err != nil {
							t.Fatalf("%s/%s/w=%d: %v", ec.name, be.name, workers, err)
						}
						if d := maxDiffGolden(t, s, golden); d > ec.tol {
							t.Errorf("%s/%s/w=%d: max diff vs golden %g > %g", ec.name, be.name, workers, d, ec.tol)
						}
						s.Close()
					}
				}
			}

			// Monte Carlo: statistical agreement with the conventional
			// golden (the estimator carries coalescence bias, so the gate
			// is mean absolute error, not machine precision).
			mc, _, err := Compute(g, Options{Algorithm: MonteCarlo, C: confC, K: confK, Walks: 3000, Seed: 9})
			if err != nil {
				t.Fatal(err)
			}
			var sum float64
			var cnt int
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if i == j {
						continue
					}
					sum += math.Abs(mc.Score(i, j) - conv.At(i, j))
					cnt++
				}
			}
			if mae := sum / float64(cnt); mae > 0.05 {
				t.Errorf("monte-carlo mean absolute error %g > 0.05", mae)
			}

			// mtx-SR approximates the matrix-form geometric series; at full
			// rank it must track that model's converged scores.
			mtxRef, err := matrixform.GeometricSum(g, confC, 120)
			if err != nil {
				t.Fatal(err)
			}
			mtx, _, err := Compute(g, Options{Algorithm: MtxSR, C: confC, Rank: n, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			d := 0.0
			for i := 0; i < n; i++ {
				row := mtx.Row(i)
				for j, v := range row {
					if x := math.Abs(v - mtxRef.At(i, j)); x > d {
						d = x
					}
				}
			}
			if d > 1e-4 {
				t.Errorf("mtx-sr (full rank) vs matrix-form model: %g > 1e-4", d)
			}
		})
	}
}
