package simrank

import (
	"math/rand"
	"testing"

	"oipsr/graph"
)

func tiledTestGraph(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, 0)
	b.EnsureVertices(n)
	for i := 0; i < 4*n; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return b.MustBuild()
}

// TestComputeTiledBackend: the public dispatch produces bit-identical
// scores for every supported engine, reports tile accounting under a
// spilling budget, and rejects engines without tiled support.
func TestComputeTiledBackend(t *testing.T) {
	g := tiledTestGraph(30, 5)
	for _, alg := range []Algorithm{OIPSR, OIPDSR, PsumSR, Naive} {
		dense, _, err := Compute(g, Options{Algorithm: alg, K: 4})
		if err != nil {
			t.Fatal(err)
		}
		tiled, st, err := Compute(g, Options{Algorithm: alg, K: 4, Workers: 2,
			BlockSize: 8, MaxMemoryBytes: 8 * 8 * 8 * 8, SpillDir: t.TempDir()})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		for i := 0; i < g.NumVertices(); i++ {
			for j := 0; j < g.NumVertices(); j++ {
				if tiled.Score(i, j) != dense.Score(i, j) {
					t.Fatalf("%s: (%d,%d): tiled %v != dense %v", alg, i, j, tiled.Score(i, j), dense.Score(i, j))
				}
			}
		}
		if st.TileSpills == 0 || st.TilePeakBytes == 0 {
			t.Errorf("%s: tile accounting missing: peak %d, spills %d", alg, st.TilePeakBytes, st.TileSpills)
		}
		// TopK must agree across backends too.
		dk, tk := dense.TopK(0, 5), tiled.TopK(0, 5)
		for i := range dk {
			if dk[i] != tk[i] {
				t.Errorf("%s: TopK[%d] = %+v, dense %+v", alg, i, tk[i], dk[i])
			}
		}
		if err := tiled.Close(); err != nil {
			t.Errorf("%s: Close: %v", alg, err)
		}
		if err := dense.Close(); err != nil {
			t.Errorf("%s: dense Close: %v", alg, err)
		}
	}
	for _, alg := range []Algorithm{MtxSR, PRank, MonteCarlo} {
		if _, _, err := Compute(g, Options{Algorithm: alg, BlockSize: 8}); err == nil {
			t.Errorf("%s: tiled backend accepted but unsupported", alg)
		}
	}
}
