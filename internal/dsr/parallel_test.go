package dsr

import (
	"testing"

	"oipsr/graph"
	"oipsr/graph/gen"
	"oipsr/internal/simmat"
)

// TestParallelBitIdentical: OIP-DSR with a worker pool matches the serial
// engine bit-for-bit, in scores and in operation counts, with and without
// OIP sharing.
func TestParallelBitIdentical(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"web":      gen.WebGraph(120, 8, 3),
		"citation": gen.CitationGraph(150, 4, 7),
		"coauthor": gen.CoauthorGraph(100, 3, 1),
	} {
		for _, disable := range []bool{false, true} {
			want, wst, err := Compute(g, Options{C: 0.6, K: 6, DisableSharing: disable, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			got, gst, err := Compute(g, Options{C: 0.6, K: 6, DisableSharing: disable, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if d := simmat.MaxDiff(want, got); d != 0 {
				t.Errorf("%s disable=%v: scores differ by %g, want bit-identical", name, disable, d)
			}
			if wst.InnerAdds != gst.InnerAdds || wst.OuterAdds != gst.OuterAdds {
				t.Errorf("%s disable=%v: add counts diverged: (%d,%d) vs (%d,%d)",
					name, disable, wst.InnerAdds, wst.OuterAdds, gst.InnerAdds, gst.OuterAdds)
			}
		}
	}
}
