package montecarlo

import (
	"math"
	"math/rand"
	"testing"

	"oipsr/graph"
	"oipsr/graph/gen"
	"oipsr/internal/naive"
	"oipsr/internal/simmat"
)

// TestSiblingsExact: from 0->1, 0->2 both walkers step to vertex 0 with
// probability 1 and meet at tau = 1, so every fingerprint contributes
// exactly C and the estimate is C with zero variance.
func TestSiblingsExact(t *testing.T) {
	g := graph.MustFromEdges(3, [][2]int{{0, 1}, {0, 2}})
	s, st, err := Compute(g, Options{C: 0.8, K: 5, Walks: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.At(1, 2); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("s(1,2) = %g, want exactly C = 0.8", got)
	}
	if st.Meetings != 10 {
		t.Errorf("meetings = %d, want one per fingerprint", st.Meetings)
	}
}

// TestTwoCycleNeverMeets: walkers on the 2-cycle swap positions forever.
func TestTwoCycleNeverMeets(t *testing.T) {
	g := graph.MustFromEdges(2, [][2]int{{0, 1}, {1, 0}})
	s, st, err := Compute(g, Options{C: 0.9, K: 50, Walks: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.At(0, 1) != 0 {
		t.Errorf("s(0,1) = %g, want 0", s.At(0, 1))
	}
	if st.Meetings != 0 {
		t.Errorf("meetings = %d, want 0", st.Meetings)
	}
}

// TestDeadWalkersContributeZero: pairs involving a vertex whose walk
// reaches a source (empty in-set) before meeting score 0.
func TestDeadWalkersContributeZero(t *testing.T) {
	// 0 -> 1; vertex 2 isolated.
	g := graph.MustFromEdges(3, [][2]int{{0, 1}})
	s, _, err := Compute(g, Options{C: 0.6, K: 10, Walks: 25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]int{{0, 1}, {0, 2}, {1, 2}} {
		if got := s.At(pair[0], pair[1]); got != 0 {
			t.Errorf("s(%d,%d) = %g, want 0", pair[0], pair[1], got)
		}
	}
}

// TestApproximatesExact: the estimate converges to the iterative scores.
// The coupled-walk estimator carries a small coalescence bias, so the
// tolerance is statistical, not machine precision.
func TestApproximatesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := graph.NewBuilder(25, 0)
	b.EnsureVertices(25)
	for i := 0; i < 80; i++ {
		b.AddEdge(rng.Intn(25), rng.Intn(25))
	}
	g := b.MustBuild()
	exact, err := naive.Compute(g, 0.6, 15)
	if err != nil {
		t.Fatal(err)
	}
	est, _, err := Compute(g, Options{C: 0.6, K: 15, Walks: 3000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Mean absolute error over all pairs.
	var sum float64
	var cnt int
	for i := 0; i < 25; i++ {
		for j := 0; j < 25; j++ {
			if i == j {
				continue
			}
			sum += math.Abs(est.At(i, j) - exact.At(i, j))
			cnt++
		}
	}
	if mae := sum / float64(cnt); mae > 0.03 {
		t.Errorf("mean absolute error %g, want <= 0.03 with 3000 fingerprints", mae)
	}
}

// TestDeterministicWithSeed: same seed, same estimate.
func TestDeterministicWithSeed(t *testing.T) {
	g := gen.CitationGraph(60, 3, 5)
	a, _, err := Compute(g, Options{Walks: 50, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Compute(g, Options{Walks: 50, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if simmat.MaxDiff(a, b) != 0 {
		t.Error("same seed produced different estimates")
	}
	c, _, err := Compute(g, Options{Walks: 50, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if simmat.MaxDiff(a, c) == 0 {
		t.Error("different seeds produced identical estimates (suspicious)")
	}
}

// TestInvariants: estimates are symmetric, in [0,1], diagonal 1.
func TestInvariants(t *testing.T) {
	g := gen.WebGraph(80, 6, 9)
	s, _, err := Compute(g, Options{Walks: 40, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CheckSymmetric(0); err != nil {
		t.Error(err)
	}
	if err := s.CheckRange(0, 1, 1e-12); err != nil {
		t.Error(err)
	}
	for v := 0; v < s.N(); v++ {
		if s.At(v, v) != 1 {
			t.Errorf("diag(%d) = %g", v, s.At(v, v))
		}
	}
}

func TestBadOptions(t *testing.T) {
	g := graph.MustFromEdges(2, [][2]int{{0, 1}})
	if _, _, err := Compute(g, Options{C: 1}); err == nil {
		t.Error("want error for C = 1")
	}
	if _, _, err := Compute(g, Options{K: -1}); err == nil {
		t.Error("want error for K < 0")
	}
	if _, _, err := Compute(g, Options{Eps: 2}); err == nil {
		t.Error("want error for eps = 2")
	}
}
