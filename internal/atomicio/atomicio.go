// Package atomicio writes files durably and atomically: payload to a
// sibling temp file, fsync, rename over the destination, fsync of the
// directory so the rename itself survives a crash. A crash at any point
// leaves either the old file or the complete new one — never a truncated
// or empty artifact. query.SaveFile and the shard builder both publish
// their index files through it.
package atomicio

import (
	"io"
	"os"
	"path/filepath"
)

// WriteFile writes the output of write to path atomically. write receives
// the temp file; any error it returns aborts the publish and removes the
// temp file.
func WriteFile(path string, write func(io.Writer) error) error {
	return WriteFileAt(path, func(f *os.File) error { return write(f) })
}

// WriteFileAt is WriteFile for producers that need random access while
// emitting the payload — the streaming index builders patch directory
// entries behind the write frontier via WriteAt. write receives the temp
// *os.File; the same abort/fsync/rename discipline applies.
func WriteFileAt(path string, write func(*os.File) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	// The data must be on stable storage before the rename publishes the
	// name, or a crash could expose an empty/partial file at path.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}
