package walkindex

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"oipsr/graph"
	"oipsr/graph/gen"
)

// saveV2File writes ix in format v2 to a temp file and returns the path.
func saveV2File(t *testing.T, ix *Index) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "index.srwk")
	var buf bytes.Buffer
	if err := ix.SaveFormat(&buf, FormatV2); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// mappedVariants opens the same v2 file through every mapped configuration
// worth distinguishing: mmap'd, ReadAt fallback, and uncached.
func mappedVariants(t *testing.T, path string) map[string]*Index {
	t.Helper()
	variants := map[string]MappedOptions{
		"mmap":    {},
		"readat":  {DisableMmap: true},
		"nocache": {CacheBlocks: -1},
	}
	out := make(map[string]*Index, len(variants))
	for name, opts := range variants {
		mx, err := LoadMapped(path, opts)
		if err != nil {
			t.Fatalf("LoadMapped(%s): %v", name, err)
		}
		t.Cleanup(func() { mx.Close() })
		out[name] = mx
	}
	return out
}

// TestMappedByteIdenticalQueries is the backend-equivalence property: the
// dense in-memory index and every mapped configuration must produce
// byte-identical float64 answers for SingleSource, MultiSource, Pair, and
// Join — same walks, same summation order, so exact equality, not epsilon.
func TestMappedByteIdenticalQueries(t *testing.T) {
	g := gen.WebGraph(500, 6, 13)
	dense, err := Build(g, Options{Walks: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	path := saveV2File(t, dense)
	ctx := context.Background()

	denseJoin, err := dense.Join(ctx, 25, 0.05, 200000, 2)
	if err != nil {
		t.Fatal(err)
	}
	sources := []int{0, 7, 99, 250, 499}
	denseMS, err := dense.MultiSource(ctx, sources, 3)
	if err != nil {
		t.Fatal(err)
	}

	for name, mx := range mappedVariants(t, path) {
		if !dense.Equal(mx) {
			t.Fatalf("%s: mapped index != dense index", name)
		}
		for _, q := range sources {
			dr, err := dense.SingleSource(ctx, q, nil)
			if err != nil {
				t.Fatal(err)
			}
			mr, err := mx.SingleSource(ctx, q, nil)
			if err != nil {
				t.Fatal(err)
			}
			for v := range dr {
				if dr[v] != mr[v] {
					t.Fatalf("%s: SingleSource(%d)[%d] = %v, dense %v", name, q, v, mr[v], dr[v])
				}
			}
			if got, want := mx.Pair(q, (q+13)%500), dense.Pair(q, (q+13)%500); got != want {
				t.Fatalf("%s: Pair(%d) = %v, dense %v", name, q, got, want)
			}
		}
		ms, err := mx.MultiSource(ctx, sources, 3)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ms {
			for v := range ms[i] {
				if ms[i][v] != denseMS[i][v] {
					t.Fatalf("%s: MultiSource row %d differs at %d", name, i, v)
				}
			}
		}
		mj, err := mx.Join(ctx, 25, 0.05, 200000, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(mj) != len(denseJoin) {
			t.Fatalf("%s: Join returned %d pairs, dense %d", name, len(mj), len(denseJoin))
		}
		for i := range mj {
			if mj[i] != denseJoin[i] {
				t.Fatalf("%s: Join pair %d = %+v, dense %+v", name, i, mj[i], denseJoin[i])
			}
		}
	}
}

// TestMappedUpdatePersists: Update on a mapped index must (a) leave the
// in-memory index Equal to a fresh build on the edited graph, and (b)
// flush the repaired blocks back to the file, so a reopen — mapped or
// dense — sees the post-edit index.
func TestMappedUpdatePersists(t *testing.T) {
	g := gen.CitationGraph(300, 4, 5)
	dense, err := Build(g, Options{Walks: 15, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	path := saveV2File(t, dense)
	mx, err := LoadMapped(path, MappedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer mx.Close()

	cur := g
	for batch := 0; batch < 3; batch++ {
		next, sum, err := cur.ApplyEdits([]graph.Edit{
			{Op: graph.EditAdd, U: (batch*37 + 11) % 300, V: (batch*53 + 2) % 300},
			{Op: graph.EditRemove, U: cur.In(batch + 1)[0], V: batch + 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := mx.Update(next, sum.DirtyIn, 3); err != nil {
			t.Fatal(err)
		}
		fresh, err := Build(next, Options{Walks: 15, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !mx.Equal(fresh) {
			t.Fatalf("batch %d: mapped Update != fresh Build", batch)
		}

		// The flush rewrote the file: a cold open must see the same index.
		reopened, err := LoadMapped(path, MappedOptions{})
		if err != nil {
			t.Fatalf("batch %d: reopening flushed file: %v", batch, err)
		}
		if !reopened.Equal(fresh) {
			t.Fatalf("batch %d: flushed file != fresh Build", batch)
		}
		reopened.Close()
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(f)
		f.Close()
		if err != nil {
			t.Fatalf("batch %d: dense-loading flushed file: %v", batch, err)
		}
		if !loaded.Equal(fresh) {
			t.Fatalf("batch %d: dense load of flushed file != fresh Build", batch)
		}
		cur = next
	}
}

// TestShardMappedByteIdentical: the sharded read path over a mapped store
// must match the dense shard exactly, including update + flush + reopen.
func TestShardMappedByteIdentical(t *testing.T) {
	g := gen.WebGraph(400, 5, 17)
	opt := Options{Walks: 20, Seed: 6}
	sx, err := BuildShard(g, opt, 100, 300)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "shard.srwk")
	var buf bytes.Buffer
	if err := sx.SaveFormat(&buf, FormatV2); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	mx, err := LoadShardMapped(path, MappedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer mx.Close()
	if !sx.Equal(mx) {
		t.Fatal("mapped shard != dense shard")
	}

	ctx := context.Background()
	sources := []int{0, 100, 150, 299, 399}
	want, err := sx.PartialMultiSource(ctx, g, sources, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mx.PartialMultiSource(ctx, g, sources, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for v := range want[i] {
			if want[i][v] != got[i][v] {
				t.Fatalf("PartialMultiSource row %d differs at %d", i, v)
			}
		}
	}

	next, sum, err := g.ApplyEdits([]graph.Edit{
		{Op: graph.EditAdd, U: 120, V: 180},
		{Op: graph.EditRemove, U: g.In(150)[0], V: 150},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mx.Update(next, sum.DirtyIn, 2); err != nil {
		t.Fatal(err)
	}
	freshShard, err := BuildShard(next, opt, 100, 300)
	if err != nil {
		t.Fatal(err)
	}
	if !mx.Equal(freshShard) {
		t.Fatal("mapped shard Update != fresh shard build")
	}
	reopened, err := LoadShardMapped(path, MappedOptions{})
	if err != nil {
		t.Fatalf("reopening flushed shard: %v", err)
	}
	defer reopened.Close()
	if !reopened.Equal(freshShard) {
		t.Fatal("flushed shard file != fresh shard build")
	}
}

// TestMappedConcurrentReaders drives parallel queries through the shared
// block cache; under -race this checks the store's synchronization.
func TestMappedConcurrentReaders(t *testing.T) {
	g := gen.WebGraph(300, 5, 23)
	dense, err := Build(g, Options{Walks: 12, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// A 2-block cache against a ~5-block file keeps eviction churning.
	mx, err := LoadMapped(saveV2File(t, dense), MappedOptions{CacheBlocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer mx.Close()
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for q := w; q < 300; q += 8 {
				want, err := dense.SingleSource(ctx, q, nil)
				if err != nil {
					t.Error(err)
					return
				}
				got, err := mx.SingleSource(ctx, q, nil)
				if err != nil {
					t.Error(err)
					return
				}
				for v := range want {
					if want[v] != got[v] {
						t.Errorf("SingleSource(%d)[%d] differs", q, v)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestLoadMappedRejections: v1 files, corruption, truncation, and trailing
// data are all rejected at open — the paged read path never sees them.
func TestLoadMappedRejections(t *testing.T) {
	ix := buildSmall(t)
	dir := t.TempDir()
	write := func(name string, data []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	var v1, v2 bytes.Buffer
	if err := ix.Save(&v1); err != nil {
		t.Fatal(err)
	}
	if err := ix.SaveFormat(&v2, FormatV2); err != nil {
		t.Fatal(err)
	}

	if _, err := LoadMapped(write("v1.srwk", v1.Bytes()), MappedOptions{}); !errors.Is(err, ErrVersion) {
		t.Errorf("LoadMapped(v1 file) = %v, want ErrVersion", err)
	}
	corrupt := append([]byte(nil), v2.Bytes()...)
	corrupt[len(corrupt)-8] ^= 0x10
	if _, err := LoadMapped(write("corrupt.srwk", corrupt), MappedOptions{}); err == nil {
		t.Error("LoadMapped accepted a bit-flipped file")
	}
	if _, err := LoadMapped(write("trunc.srwk", v2.Bytes()[:v2.Len()-6]), MappedOptions{}); err == nil {
		t.Error("LoadMapped accepted a truncated file")
	}
	trailing := append(append([]byte(nil), v2.Bytes()...), 0x00)
	if _, err := LoadMapped(write("trailing.srwk", trailing), MappedOptions{}); !errors.Is(err, ErrTrailingData) {
		t.Errorf("LoadMapped(trailing byte) = %v, want ErrTrailingData", err)
	}
	if _, err := LoadMapped(filepath.Join(dir, "missing.srwk"), MappedOptions{}); err == nil {
		t.Error("LoadMapped accepted a missing file")
	}
	mx, err := LoadMapped(write("good.srwk", v2.Bytes()), MappedOptions{})
	if err != nil {
		t.Fatalf("LoadMapped rejected a valid file: %v", err)
	}
	if !ix.Equal(mx) {
		t.Error("mapped small index != original")
	}
	if mx.Backend() != "mapped" && mx.Backend() != "mapped-readat" {
		t.Errorf("Backend() = %q", mx.Backend())
	}
	mx.Close()
}
