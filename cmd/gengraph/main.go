// Command gengraph emits synthetic graphs in edge-list format.
//
// It exposes the generators of graph/gen, which substitute for the paper's
// datasets (BERKSTAN / PATENT / DBLP) and its GTGraph SYN workloads:
//
//	gengraph -type web -n 2000 -d 11 -seed 1 -out web.txt
//	gengraph -type er -n 300000 -m 3000000 > syn.txt
//	gengraph -type dblp -snapshot 3 -scale 4 -out d11.txt
//
// Types: web, citation, coauthor, er, rmat, dblp.
package main

import (
	"flag"
	"fmt"
	"os"

	"oipsr/graph"
	"oipsr/graph/gen"
	"oipsr/graph/gio"
)

func main() {
	var (
		typ      = flag.String("type", "web", "generator: web | citation | coauthor | er | rmat | dblp")
		n        = flag.Int("n", 1000, "number of vertices")
		d        = flag.Int("d", 8, "average degree (web, citation, coauthor)")
		m        = flag.Int("m", 0, "number of edges (er, rmat); default n*d")
		snapshot = flag.Int("snapshot", 3, "DBLP snapshot index 0..3 (dblp)")
		scale    = flag.Int("scale", 4, "DBLP snapshot down-scale factor (dblp)")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	edges := *m
	if edges == 0 {
		edges = *n * *d
	}
	var g *graph.Graph
	switch *typ {
	case "web":
		g = gen.WebGraph(*n, *d, *seed)
	case "citation":
		g = gen.CitationGraph(*n, *d, *seed)
	case "coauthor":
		g = gen.CoauthorGraph(*n, *d, *seed)
	case "er":
		g = gen.ErdosRenyi(*n, edges, *seed)
	case "rmat":
		g = gen.RMAT(*n, edges, gen.DefaultRMAT, *seed)
	case "dblp":
		g = gen.DBLPSnapshot(*snapshot, *scale, *seed)
	default:
		fmt.Fprintf(os.Stderr, "gengraph: unknown type %q\n", *typ)
		os.Exit(2)
	}

	fmt.Fprintf(os.Stderr, "gengraph: %s\n", graph.ComputeStats(g))
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := gio.WriteEdgeList(w, g); err != nil {
		fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
		os.Exit(1)
	}
}
