// Package par holds the tiny shared concurrency vocabulary of the engines:
// resolving a user-facing worker count, running a fixed pool of workers to a
// barrier, and splitting index ranges into contiguous blocks.
//
// Every use in this repository follows the same discipline: workers write
// disjoint rows (or disjoint cells) of shared output, read-only state is
// shared, and per-worker scratch plus per-worker counters are merged after
// the barrier. Under that discipline results are bit-identical for every
// worker count, because the floating-point operations applied to any given
// output cell — and their order — do not depend on how work is assigned.
package par

import (
	"context"
	"runtime"
	"sync"
)

// Resolve maps a user-facing Workers option to an effective worker count:
// values >= 1 are used as-is, anything else (the zero value) means
// runtime.GOMAXPROCS(0).
func Resolve(workers int) int {
	if workers >= 1 {
		return workers
	}
	return runtime.GOMAXPROCS(0)
}

// ResolveMax is Resolve capped at the number of available work units (for
// row- or bucket-parallel loops, where extra workers would idle): the result
// never exceeds units when units >= 1, and is always at least 1.
func ResolveMax(workers, units int) int {
	workers = Resolve(workers)
	if units >= 1 && workers > units {
		workers = units
	}
	return workers
}

// Do runs fn(w) for w in [0, workers) and waits for all of them. With one
// worker it calls fn(0) inline, so serial runs pay no goroutine overhead
// and appear in profiles exactly like the pre-parallel code.
func Do(workers int, fn func(w int)) {
	if workers <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}

// CancelChecker amortizes context-cancellation polls in hot loops. A
// sweep that must stop promptly when its request is abandoned cannot
// afford ctx.Err() (a mutex acquisition) on every iteration, so Stop
// consults the context only every interval-th call — between polls the
// cost is one increment and compare. Each worker of a parallel sweep
// owns its own checker (the counter is not synchronized); once the
// context is cancelled, Stop latches and keeps reporting the error
// without touching the context again.
type CancelChecker struct {
	ctx      context.Context
	interval int
	n        int
	err      error
}

// NewCancelChecker returns a checker polling ctx every interval calls to
// Stop (interval < 1 means every call).
func NewCancelChecker(ctx context.Context, interval int) *CancelChecker {
	if interval < 1 {
		interval = 1
	}
	return &CancelChecker{ctx: ctx, interval: interval}
}

// Stop returns the context's error once it is cancelled (possibly up to
// interval-1 calls late), nil while work should continue.
func (c *CancelChecker) Stop() error {
	if c.err != nil {
		return c.err
	}
	if c.n++; c.n >= c.interval {
		c.n = 0
		c.err = c.ctx.Err()
	}
	return c.err
}

// Range returns the w-th of `parts` contiguous half-open blocks of [0, n).
// Blocks differ in size by at most one and cover [0, n) exactly; parts may
// exceed n, in which case trailing blocks are empty.
func Range(n, parts, w int) (lo, hi int) {
	q, r := n/parts, n%parts
	lo = w*q + min(w, r)
	hi = lo + q
	if w < r {
		hi++
	}
	return lo, hi
}
