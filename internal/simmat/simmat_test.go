package simmat

import (
	"math"
	"testing"
)

func TestBasicOps(t *testing.T) {
	m := New(3)
	if m.N() != 3 {
		t.Fatalf("N = %d, want 3", m.N())
	}
	m.Set(1, 2, 0.5)
	if m.At(1, 2) != 0.5 {
		t.Error("Set/At mismatch")
	}
	m.Add(1, 2, 0.25)
	if m.At(1, 2) != 0.75 {
		t.Error("Add mismatch")
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 0.75 {
		t.Errorf("Row = %v", row)
	}
	row[0] = 9 // aliasing contract
	if m.At(1, 0) != 9 {
		t.Error("Row must alias storage")
	}
	if m.Bytes() != 72 {
		t.Errorf("Bytes = %d, want 72", m.Bytes())
	}
}

func TestIdentityCopyReset(t *testing.T) {
	m := NewIdentity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("identity[%d,%d] = %g", i, j, m.At(i, j))
			}
		}
	}
	c := m.Copy()
	c.Set(0, 0, 5)
	if m.At(0, 0) != 1 {
		t.Error("Copy must not share storage")
	}
	m.Reset()
	if m.At(0, 0) != 0 {
		t.Error("Reset failed")
	}
	m.Fill(2)
	if m.At(3, 3) != 2 {
		t.Error("Fill failed")
	}
}

func TestMaxDiff(t *testing.T) {
	a, b := New(2), New(2)
	a.Set(0, 1, 1)
	b.Set(0, 1, 0.25)
	b.Set(1, 0, -0.5)
	if d := MaxDiff(a, b); d != 0.75 {
		t.Errorf("MaxDiff = %g, want 0.75", d)
	}
	defer func() {
		if recover() == nil {
			t.Error("want panic on dimension mismatch")
		}
	}()
	MaxDiff(a, New(3))
}

func TestCheckSymmetric(t *testing.T) {
	m := New(3)
	m.Set(0, 1, 0.5)
	m.Set(1, 0, 0.5)
	if err := m.CheckSymmetric(0); err != nil {
		t.Errorf("symmetric matrix rejected: %v", err)
	}
	m.Set(2, 1, 0.1)
	if err := m.CheckSymmetric(1e-12); err == nil {
		t.Error("asymmetric matrix accepted")
	}
	if err := m.CheckSymmetric(0.2); err != nil {
		t.Error("tolerance not honored")
	}
}

func TestCheckRange(t *testing.T) {
	m := New(2)
	m.Set(0, 1, 0.999)
	if err := m.CheckRange(0, 1, 0); err != nil {
		t.Errorf("in-range matrix rejected: %v", err)
	}
	m.Set(1, 0, 1.5)
	if err := m.CheckRange(0, 1, 1e-9); err == nil {
		t.Error("out-of-range matrix accepted")
	}
	m.Set(1, 0, math.Nextafter(1, 2))
	if err := m.CheckRange(0, 1, 1e-9); err != nil {
		t.Errorf("tolerance not honored: %v", err)
	}
}
