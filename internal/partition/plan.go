package partition

import (
	"fmt"
	"sort"

	"oipsr/graph"
	"oipsr/internal/mst"
)

// Options configure plan construction.
type Options struct {
	// Dense builds the full O(n^2)-pair cost table exactly as the paper's
	// DMST-Reduce pseudocode does. The default (false) enumerates only pairs
	// of vertices whose in-neighbor sets overlap, which is lossless: a
	// candidate edge can only beat the from-scratch root edge when the sets
	// intersect (|A(+)B| < |B|-1 requires |A∩B| >= 1).
	Dense bool

	// PairCap bounds, per shared in-neighbor, how many co-out-neighbor pairs
	// are generated (0 = unlimited). Capping turns candidate generation from
	// Sum |O(y)|^2 into Sum |O(y)|*cap on hub-heavy graphs at the price of
	// possibly missing some sharing opportunities.
	PairCap int

	// UseEdmonds forces the general Chu-Liu/Edmonds algorithm instead of the
	// greedy DAG fast path. Both produce minimum-weight arborescences of the
	// candidate graph; greedy exploits that the candidate graph is a DAG.
	UseEdmonds bool
}

// Plan is the output of DMST-Reduce: the order in which to compute partial
// sums over the non-empty in-neighbor sets and how to derive each from an
// earlier one,
//
//	Partial_{I(v)} = Partial_{I(p)} + sum_{x in Add[v]} s(x,.) - sum_{x in Sub[v]} s(x,.)
//
// per Proposition 3 (Eq. 9), with Add[v] = I(v)\I(p) and Sub[v] = I(p)\I(v).
//
// The plan carries two views of the same MST:
//
//   - The chain view (Roots/Parent/Children/Add/Sub): each subtree
//     linearized into its DFS preorder — the paper's Fig. 2d path
//     decomposition — used for the inner partial-sum vectors, where a
//     branching tree would pay every symmetric difference twice (apply and
//     undo on backtrack) while a direct preorder transition never costs
//     more (triangle inequality) and usually costs less.
//   - The tree view (TreeRoots/TreeParent/TreeChildren/TreeAdd/TreeSub):
//     the arborescence itself, used for the outer partial sums of
//     procedure OP, where the value at every node is a scalar that can be
//     kept on a stack, so branching costs nothing and the raw MST weight
//     is the exact work.
type Plan struct {
	// Roots lists vertices whose partial sums start from scratch, in
	// processing order (chain view).
	Roots []int
	// Parent[v] is the chain predecessor of v, or -1 for roots and for
	// vertices with empty in-neighbor sets (which have no partial sums).
	Parent []int
	// Children[v] lists chain successors (at most one) in processing order.
	Children [][]int
	// Add[v] and Sub[v] are the per-edge set differences described above.
	// For roots, Add[v] = I(v) and Sub[v] = nil.
	Add, Sub [][]int

	// Tree view: the arborescence before linearization, used by the outer
	// partial-sums stage. Same semantics as the chain fields.
	TreeRoots        []int
	TreeParent       []int
	TreeChildren     [][]int
	TreeAdd, TreeSub [][]int

	// ChainSteps and TreeSteps are the two views flattened into execution
	// order, so the per-iteration engines run tight loops with no stack
	// bookkeeping. Parent indexes the same slice (-1 = from scratch); for
	// ChainSteps it is always the preceding entry or -1.
	ChainSteps []Step
	TreeSteps  []Step

	// Chains partitions ChainSteps into its maximal sequential runs: each
	// chain starts at a from-scratch root (Parent < 0) and extends through
	// the consecutive derived steps. Chains are mutually independent — no
	// chain reads another chain's partial-sum vector, and the rows of the
	// next iterate written by distinct chains are disjoint — so they are the
	// unit of work the parallel sweep engine schedules across workers. The
	// slice is ordered by Start and covers ChainSteps exactly.
	Chains []Chain

	// NumSets is the number of non-empty in-neighbor sets (tree nodes).
	NumSets int
	// Additions is the number of vector add/subtract operations one full
	// inner partial-sums sweep costs under the chain view: |I(r)|-1 per
	// from-scratch root plus the direct symmetric difference per chain
	// edge.
	Additions int
	// TreeWeight is the raw minimum-spanning-arborescence weight — the
	// per-target cost of one outer sweep under the tree view (Additions
	// can differ because preorder transitions diff consecutive sets
	// directly).
	TreeWeight int
	// ScratchAdditions is what the same sweep costs without any sharing
	// (psum-SR): Sum over non-empty I(v) of |I(v)|-1.
	ScratchAdditions int
	// SharedEdges counts tree edges that reuse a parent (cost < scratch).
	SharedEdges int
	// AvgDiff is the paper's d_(+): the mean |I(p) (+) I(v)| over shared
	// edges, the per-set cost of the sharing sweep. 0 when nothing is shared.
	AvgDiff float64
}

// Bytes estimates the memory held by the plan: the Add/Sub difference lists
// plus per-vertex bookkeeping. Part of the "intermediate memory" OIP-SR
// spends beyond psum-SR (the paper measures this in Fig. 6d).
func (p *Plan) Bytes() int64 {
	var b int64
	for v := range p.Add {
		b += int64(len(p.Add[v])+len(p.Sub[v])) * 8
		b += int64(len(p.TreeAdd[v])+len(p.TreeSub[v])) * 8
	}
	b += int64(len(p.Parent)) * 8 * 6 // chain+tree parents, child headers, cursors
	b += int64(len(p.Roots)+len(p.TreeRoots)) * 8
	b += int64(len(p.Chains)) * 24
	return b
}

// ShareRatio is the fraction of from-scratch additions avoided by sharing:
// 1 - Additions/ScratchAdditions (0 when there is nothing to add).
func (p *Plan) ShareRatio() float64 {
	if p.ScratchAdditions == 0 {
		return 0
	}
	return 1 - float64(p.Additions)/float64(p.ScratchAdditions)
}

// PartitionOf reports the partition P(I(v)) induced by the plan in the form
// of Fig. 3a: the reused block I(v) ∩ I(parent) (empty for roots) and the
// residual block I(v) \ I(parent) (= I(v) for roots). The Sub list needed to
// undo parent-only elements is Sub[v].
func (p *Plan) PartitionOf(g *graph.Graph, v int) (shared, residual []int) {
	if p.Parent[v] < 0 {
		return nil, append([]int(nil), g.In(v)...)
	}
	return SortedIntersect(g.In(v), g.In(p.Parent[v])), SortedDiff(g.In(v), g.In(p.Parent[v]))
}

// Step is one entry of a flattened plan traversal: compute the partial sums
// of Vertex either from scratch (Parent < 0) or from the partial sums of
// the step at index Parent, applying the Add/Sub (chain) or TreeAdd/TreeSub
// (tree) difference lists of Vertex.
type Step struct {
	Vertex int
	Parent int32
}

// Chain is one maximal sequential run of ChainSteps: the half-open index
// range [Start, End) plus an estimated cost in scalar additions, the input
// to the parallel sweep's longest-cost-first scheduler.
type Chain struct {
	Start, End int
	// Cost estimates the scalar additions one sweep spends on this chain:
	// every vector add/sub on the inner partial-sum vector costs n scalar
	// adds, and every row emitted runs procedure OP once (roughly TreeWeight
	// + NumSets scalar operations, independent of the row).
	Cost int64
}

// Len returns the number of chain steps (= rows emitted) in the chain.
func (c Chain) Len() int { return c.End - c.Start }

// buildChains derives the Chains index from ChainSteps. A new chain begins
// at every from-scratch step; the inner cost of a step is |I(v)|-1 vector
// ops at roots and |Add[v]|+|Sub[v]| on derived steps, each worth n scalar
// additions.
func (p *Plan) buildChains(g *graph.Graph) {
	n := int64(g.NumVertices())
	emit := int64(p.TreeWeight + p.NumSets) // per-row procedure-OP estimate
	p.Chains = p.Chains[:0]
	for i := 0; i < len(p.ChainSteps); {
		j := i
		var inner int64
		for ; j < len(p.ChainSteps); j++ {
			s := p.ChainSteps[j]
			if j > i && s.Parent < 0 {
				break
			}
			if s.Parent < 0 {
				inner += int64(ScratchCost(g.In(s.Vertex)))
			} else {
				inner += int64(len(p.Add[s.Vertex]) + len(p.Sub[s.Vertex]))
			}
		}
		p.Chains = append(p.Chains, Chain{Start: i, End: j, Cost: inner*n + int64(j-i)*emit})
		i = j
	}
}

// TrivialPlan returns the no-sharing plan: every non-empty in-neighbor set
// is a root computed from scratch. Driving the OIP engine with a trivial
// plan reproduces psum-SR exactly (the paper notes OIP-SR generalizes
// psum-SR: the trivial partition P(I(a)) = {I(a)} collapses Eq. 6 to
// Eq. 5). Used by ablation benches and by the differential engine's
// no-sharing mode.
func TrivialPlan(g *graph.Graph) *Plan {
	n := g.NumVertices()
	p := &Plan{
		Parent:       make([]int, n),
		Children:     make([][]int, n),
		Add:          make([][]int, n),
		Sub:          make([][]int, n),
		TreeParent:   make([]int, n),
		TreeChildren: make([][]int, n),
		TreeAdd:      make([][]int, n),
		TreeSub:      make([][]int, n),
	}
	for v := 0; v < n; v++ {
		p.Parent[v] = -1
		p.TreeParent[v] = -1
		if g.InDegree(v) > 0 {
			p.Roots = append(p.Roots, v)
			p.TreeRoots = append(p.TreeRoots, v)
			p.Add[v] = g.In(v)
			p.TreeAdd[v] = g.In(v)
			p.ChainSteps = append(p.ChainSteps, Step{Vertex: v, Parent: -1})
			p.TreeSteps = append(p.TreeSteps, Step{Vertex: v, Parent: -1})
			p.NumSets++
			p.ScratchAdditions += ScratchCost(g.In(v))
		}
	}
	p.Additions = p.ScratchAdditions
	p.TreeWeight = p.ScratchAdditions
	p.buildChains(g)
	return p
}

// BuildPlan runs DMST-Reduce on g: it constructs the weighted cost graph
// over non-empty in-neighbor sets, extracts a minimum spanning arborescence
// rooted at the virtual empty set, and converts it into a Plan.
func BuildPlan(g *graph.Graph, opt Options) (*Plan, error) {
	n := g.NumVertices()

	// Tree nodes: 0 is the virtual ? root; nodes 1..k are the vertices with
	// non-empty in-neighbor sets, ranked by (in-degree, id) so that all
	// candidate edges point from lower to higher rank and the cost graph is
	// a DAG (ties in in-degree are broken by id; see DESIGN.md).
	var verts []int
	for v := 0; v < n; v++ {
		if g.InDegree(v) > 0 {
			verts = append(verts, v)
		}
	}
	sort.Slice(verts, func(i, j int) bool {
		di, dj := g.InDegree(verts[i]), g.InDegree(verts[j])
		if di != dj {
			return di < dj
		}
		return verts[i] < verts[j]
	})
	node := make([]int, n) // vertex -> tree node id (0 means absent)
	for i, v := range verts {
		node[v] = i + 1
	}
	nNodes := len(verts) + 1

	var edges []mst.Edge
	// Root edges: compute each set from scratch.
	for i, v := range verts {
		edges = append(edges, mst.Edge{From: 0, To: i + 1, Weight: float64(ScratchCost(g.In(v)))})
	}
	// Candidate sharing edges.
	addPair := func(a, b int) {
		// Orient by rank; only strictly beneficial edges are added.
		na, nb := node[a], node[b]
		if na > nb {
			na, nb = nb, na
			a, b = b, a
		}
		ia, ib := g.In(a), g.In(b)
		sd := SymmetricDiffSize(ia, ib)
		if sd < len(ib)-1 {
			edges = append(edges, mst.Edge{From: na, To: nb, Weight: float64(sd)})
		}
	}
	if opt.Dense {
		for i := 0; i < len(verts); i++ {
			for j := i + 1; j < len(verts); j++ {
				addPair(verts[i], verts[j])
			}
		}
	} else {
		type pair struct{ a, b int }
		seen := make(map[pair]bool)
		for y := 0; y < n; y++ {
			outs := g.Out(y)
			lim := len(outs)
			for i := 0; i < len(outs); i++ {
				jmax := lim
				if opt.PairCap > 0 && i+1+opt.PairCap < jmax {
					jmax = i + 1 + opt.PairCap
				}
				for j := i + 1; j < jmax; j++ {
					a, b := outs[i], outs[j]
					if node[a] > node[b] {
						a, b = b, a
					}
					pr := pair{a, b}
					if seen[pr] {
						continue
					}
					seen[pr] = true
					addPair(a, b)
				}
			}
		}
	}

	var arb *mst.Arborescence
	var err error
	if opt.UseEdmonds {
		arb, err = mst.Edmonds(nNodes, 0, edges)
	} else {
		arb, err = mst.GreedyAcyclic(nNodes, 0, edges)
	}
	if err != nil {
		return nil, fmt.Errorf("partition: building DMST: %w", err)
	}

	return linearize(g, verts, arb), nil
}

// linearize converts the arborescence over tree nodes (0 = the virtual ?,
// i+1 = verts[i]) into the executable plan: each root subtree is flattened
// into its DFS preorder and consecutive sets are connected by their direct
// symmetric difference. This is exactly the paper's Fig. 2d path
// decomposition, generalized to branching trees. By the triangle inequality
// |A(+)C| <= |A(+)B| + |B(+)C| a direct preorder transition never costs
// more than backtracking the tree (undoing and re-applying edge diffs), and
// between similar siblings it costs much less. A transition that would cost
// at least as much as recomputing from scratch breaks the chain instead
// (the set becomes a new from-scratch root), so every chain edge is
// strictly profitable.
func linearize(g *graph.Graph, verts []int, arb *mst.Arborescence) *Plan {
	n := g.NumVertices()
	p := &Plan{
		Parent:       make([]int, n),
		Children:     make([][]int, n),
		Add:          make([][]int, n),
		Sub:          make([][]int, n),
		TreeParent:   make([]int, n),
		TreeChildren: make([][]int, n),
		TreeAdd:      make([][]int, n),
		TreeSub:      make([][]int, n),
		NumSets:      len(verts),
		TreeWeight:   int(arb.Total),
	}
	for v := range p.Parent {
		p.Parent[v] = -1
		p.TreeParent[v] = -1
	}
	for _, v := range verts {
		p.ScratchAdditions += ScratchCost(g.In(v))
	}

	kids := arb.Children()
	// Tree view: transcribe the arborescence with its edge diffs.
	for i, v := range verts {
		pn := arb.Parent[i+1]
		if pn == 0 {
			p.TreeRoots = append(p.TreeRoots, v)
			p.TreeAdd[v] = g.In(v)
			continue
		}
		pv := verts[pn-1]
		p.TreeParent[v] = pv
		p.TreeChildren[pv] = append(p.TreeChildren[pv], v)
		p.TreeAdd[v] = SortedDiff(g.In(v), g.In(pv))
		p.TreeSub[v] = SortedDiff(g.In(pv), g.In(v))
	}
	// Flatten the tree into preorder steps with parent step indices.
	{
		stepOf := make([]int32, len(verts)+1)
		var stack []int
		for _, r := range kids[0] {
			stack = append(stack, r)
			for len(stack) > 0 {
				node := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				v := verts[node-1]
				parent := int32(-1)
				if pn := arb.Parent[node]; pn != 0 {
					parent = stepOf[pn]
				}
				stepOf[node] = int32(len(p.TreeSteps))
				p.TreeSteps = append(p.TreeSteps, Step{Vertex: v, Parent: parent})
				for i := len(kids[node]) - 1; i >= 0; i-- {
					stack = append(stack, kids[node][i])
				}
			}
		}
	}
	sumDiff := 0
	startFresh := func(v int) {
		p.Roots = append(p.Roots, v)
		p.Add[v] = g.In(v)
		p.Additions += ScratchCost(g.In(v))
		p.ChainSteps = append(p.ChainSteps, Step{Vertex: v, Parent: -1})
	}
	// Iterative DFS preorder over each subtree hanging off the virtual root.
	var stack []int
	for _, rootNode := range kids[0] {
		prev := -1
		stack = append(stack[:0], rootNode)
		for len(stack) > 0 {
			node := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			v := verts[node-1]
			if prev < 0 {
				startFresh(v)
			} else {
				add := SortedDiff(g.In(v), g.In(prev))
				sub := SortedDiff(g.In(prev), g.In(v))
				if cost := len(add) + len(sub); cost < ScratchCost(g.In(v)) {
					p.Parent[v] = prev
					p.Children[prev] = append(p.Children[prev], v)
					p.Add[v] = add
					p.Sub[v] = sub
					p.Additions += cost
					p.SharedEdges++
					sumDiff += cost
					p.ChainSteps = append(p.ChainSteps, Step{
						Vertex: v, Parent: int32(len(p.ChainSteps) - 1),
					})
				} else {
					startFresh(v)
				}
			}
			prev = v
			// Push children in reverse so preorder visits them in order.
			for i := len(kids[node]) - 1; i >= 0; i-- {
				stack = append(stack, kids[node][i])
			}
		}
	}
	if p.SharedEdges > 0 {
		p.AvgDiff = float64(sumDiff) / float64(p.SharedEdges)
	}
	p.buildChains(g)
	return p
}
