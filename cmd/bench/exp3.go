package main

import (
	"fmt"

	"oipsr/simrank"
)

// runExp3Convergence reproduces Fig. 6e: the number of iterations OIP-SR
// (observed, successive-difference stopping) and OIP-DSR (Proposition 7)
// need for accuracies 1e-2..1e-6 at C = 0.8, next to the a-priori Lambert-W
// and Log estimates of Corollaries 1-2.
func runExp3Convergence(cfg config) {
	header("Exp-3: convergence rate, C=0.8 (DBLP d11-like)", "Fig. 6e")
	g := coauthorD11(cfg)
	fmt.Printf("workload: n=%d m=%d d=%.1f\n", g.NumVertices(), g.NumEdges(), g.AvgInDegree())
	fmt.Printf("%-8s | %10s %10s | %10s %10s\n", "eps", "OIP-SR", "OIP-DSR", "LamW est", "Log est")
	for _, eps := range []float64{1e-2, 1e-3, 1e-4, 1e-5, 1e-6} {
		// Observed OIP-SR iterations: run until successive iterates differ
		// by at most eps (the "observed" criterion behind Fig. 6e/6f).
		_, stSR, err := simrank.Compute(g, simrank.Options{
			Algorithm: simrank.OIPSR, C: 0.8, K: 200, StopDiff: eps,
		})
		must(err)
		_, stDSR, err := simrank.Compute(g, simrank.Options{
			Algorithm: simrank.OIPDSR, C: 0.8, Eps: eps,
		})
		must(err)
		est, err := simrank.EstimateIterations(0.8, eps)
		must(err)
		logCell := "-"
		if est.LogValid {
			logCell = fmt.Sprintf("%d", est.Log)
		}
		fmt.Printf("%-8.0e | %10d %10d | %10d %10s\n",
			eps, stSR.Iterations, stDSR.Iterations, est.Lambert, logCell)
	}
	fmt.Println("(paper Fig. 6f: OIP-SR 19/30/43/50/64, OIP-DSR 4/5/6/7/8, LamW 4/5/7/8/9, Log -/5/7/9/10)")
}

// runExp3Bounds reproduces the Fig. 6f table exactly: the a-priori
// iteration counts, which depend only on (C, eps), not on the graph.
func runExp3Bounds(cfg config) {
	header("Exp-3: iteration bounds, C=0.8", "Fig. 6f")
	fmt.Printf("%-8s | %12s %12s %12s %12s\n", "eps", "conventional", "OIP-DSR", "LamW est", "Log est")
	for _, eps := range []float64{1e-2, 1e-3, 1e-4, 1e-5, 1e-6} {
		est, err := simrank.EstimateIterations(0.8, eps)
		must(err)
		logCell := "-"
		if est.LogValid {
			logCell = fmt.Sprintf("%d", est.Log)
		}
		fmt.Printf("%-8.0e | %12d %12d %12d %12s\n",
			eps, est.Conventional, est.Differential, est.Lambert, logCell)
	}
	fmt.Println("(paper worked example: C=0.8 eps=1e-4 -> K'=7 vs K=41)")
}
