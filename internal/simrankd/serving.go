package simrankd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"oipsr/internal/histogram"
	"oipsr/simrank/query"
)

// serving is the machinery every simrankd mode shares: the single-node
// daemon (Server), a shard backend (ShardServer), and the scatter/gather
// router (Router) all embed it. It owns the concurrency limiter and
// request deadlines (limiter.go), the deadline-aware degradation cost
// model (degrade.go), error/body encoding, and the overload counters —
// so a request hitting a router sheds, queues, times out, and degrades by
// exactly the rules a single-node daemon enforces, because it runs the
// same code.
type serving struct {
	maxBatch       int
	joinMaxCand    int
	maxInflight    int
	queueDepth     int
	requestTimeout time.Duration

	// sem is the execution-slot semaphore (capacity maxInflight); queued
	// counts requests waiting for a slot against queueDepth.
	sem      chan struct{}
	queued   atomic.Int64
	inflight atomic.Int64

	// encPool recycles JSON encode buffers.
	encPool sync.Pool

	// rerankNanosPerCand is the EWMA cost of exactly re-scoring one
	// rerank candidate, in nanoseconds — the cost model behind
	// deadline-aware degradation (see degrade.go).
	rerankNanosPerCand atomic.Uint64

	// exactNanos is the EWMA cost of one exact (linearized) single-source
	// solve, in nanoseconds — the degradation cost model behind
	// ?engine=linearized requests (see degrade.go).
	exactNanos atomic.Uint64

	// Per-engine request counters for the endpoints that accept ?engine=
	// (/v1/single_source and /v1/topk), exported on /metrics as
	// simrankd_engine_requests_total{engine}.
	engineWalkTotal atomic.Int64
	engineLinTotal  atomic.Int64

	// Counters exported on /metrics. Latency is a histogram over every
	// /v1 request, including error, shed, and degraded paths.
	latency       *histogram.Histogram
	shedTotal     atomic.Int64
	degradedTotal atomic.Int64
	reqErrors     atomic.Int64

	started time.Time

	// Test hooks. testHookInflight runs while the request holds an
	// execution slot (tests block here to saturate the limiter
	// deterministically); testHookBatchLine runs after each streamed
	// batch line (tests block here to cancel mid-stream).
	testHookInflight  func(*http.Request)
	testHookBatchLine func(line int)
}

// initServing resolves the limiter and request-shaping defaults of cfg
// and arms the semaphore. Every NewServer/NewShardServer/NewRouter calls
// it exactly once before wiring routes.
func (sv *serving) initServing(cfg Config) {
	sv.maxBatch = cfg.MaxBatch
	sv.joinMaxCand = cfg.JoinMaxCandidates
	sv.maxInflight = cfg.MaxInflight
	sv.queueDepth = cfg.QueueDepth
	sv.requestTimeout = cfg.RequestTimeout
	if sv.maxBatch <= 0 {
		sv.maxBatch = DefaultMaxBatch
	}
	if sv.joinMaxCand <= 0 {
		sv.joinMaxCand = query.DefaultMaxCandidates
	}
	if sv.maxInflight <= 0 {
		sv.maxInflight = DefaultMaxInflight()
	}
	switch {
	case sv.queueDepth == 0:
		sv.queueDepth = 2 * sv.maxInflight
	case sv.queueDepth < 0:
		sv.queueDepth = 0
	}
	sv.sem = make(chan struct{}, sv.maxInflight)
	sv.latency = histogram.New(nil)
	sv.encPool.New = func() any { return new(bytes.Buffer) }
	sv.started = time.Now()
}

// marshalBody JSON-encodes v through a pooled buffer and returns a
// newline-terminated copy sized to the body (response bodies are retained
// — cached, streamed — so they cannot alias the pooled buffer; the pool
// still absorbs the encoder's grow-and-copy churn).
func (sv *serving) marshalBody(v any) ([]byte, error) {
	buf := sv.encPool.Get().(*bytes.Buffer)
	defer sv.encPool.Put(buf)
	buf.Reset()
	// Encode appends exactly the '\n' the NDJSON and single-response
	// bodies both end with.
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		return nil, err
	}
	body := make([]byte, buf.Len())
	copy(body, buf.Bytes())
	return body, nil
}

type errorResponse struct {
	Error string `json:"error"`
}

func (sv *serving) writeError(w http.ResponseWriter, code int, format string, args ...any) {
	sv.reqErrors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeQueryError maps a failed query to a status: an expired deadline or
// a cancelled request is the server's load problem (503 with Retry-After,
// the signal load balancers understand), anything else is the client's
// 400 — unless the caller says otherwise via fallback.
func (sv *serving) writeQueryError(w http.ResponseWriter, err error, fallback int) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		w.Header().Set("Retry-After", "1")
		sv.writeError(w, http.StatusServiceUnavailable, "deadline exceeded before the query completed; raise timeout_ms or retry")
	case errors.Is(err, context.Canceled):
		// The client went away or the server is draining; the write
		// usually goes nowhere, but the status should not blame the query.
		sv.writeError(w, http.StatusServiceUnavailable, "request cancelled")
	default:
		sv.writeError(w, fallback, "%v", err)
	}
}

// checkMethod enforces the endpoint's method set, answering 405 with an
// Allow header otherwise.
func (sv *serving) checkMethod(w http.ResponseWriter, r *http.Request, allowed ...string) bool {
	for _, m := range allowed {
		if r.Method == m {
			return true
		}
	}
	w.Header().Set("Allow", strings.Join(allowed, ", "))
	sv.writeError(w, http.StatusMethodNotAllowed, "method %s not allowed on %s", r.Method, r.URL.Path)
	return false
}

func writeJSONBytes(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// intParam parses a required (or defaulted) integer query parameter.
func intParam(r *http.Request, name string, def int, required bool) (int, error) {
	raw := r.FormValue(name)
	if raw == "" {
		if required {
			return 0, fmt.Errorf("missing required parameter %q", name)
		}
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return v, nil
}

func boolParam(r *http.Request, name string) bool {
	switch r.FormValue(name) {
	case "1", "true", "yes", "on":
		return true
	}
	return false
}

// singleSourceBody marshals the /v1/single_source response body — also the
// per-item line /v1/batch streams, so the two endpoints answer (and cache)
// byte-identically. The single-node daemon never degrades a single-source
// answer (there is no rerank to skip); the router does, when a shard's
// partial row is missing from the merge.
func (sv *serving) singleSourceBody(q int, scores []float64, sparse bool, min float64, degraded bool) ([]byte, error) {
	resp := singleSourceResponse{Query: q, N: len(scores), Degraded: degraded}
	if sparse {
		resp.Results = sparseAbove(scores, q, min)
	} else {
		resp.Scores = scores
	}
	return sv.marshalBody(resp)
}

// topKBody marshals the /v1/topk response body — also the per-item line
// /v1/batch streams, so the two endpoints answer byte-identically.
func (sv *serving) topKBody(q, k int, rerank, degraded bool, results []query.Ranked) ([]byte, error) {
	return sv.marshalBody(topKResponse{Query: q, K: k, Reranked: rerank, Degraded: degraded, Results: results})
}

// streamNDJSON writes precomputed NDJSON lines, flushing each. A context
// that dies mid-stream — the graceful-shutdown drain deadline cancelling
// in-flight requests, the per-request deadline, a vanished client — ends
// the stream with one terminal error line: the status is long since
// written, so in-band is the only channel left, and clients must not
// mistake a truncated stream for a complete one. Server and Router batch
// endpoints share this loop, so their truncation semantics are identical.
func (sv *serving) streamNDJSON(w http.ResponseWriter, r *http.Request, lines [][]byte) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	for i, line := range lines {
		if err := r.Context().Err(); err != nil {
			if term, merr := json.Marshal(batchTerminal{
				Error:     fmt.Sprintf("stream truncated after %d of %d lines: %v", i, len(lines), err),
				Truncated: true,
			}); merr == nil {
				w.Write(append(term, '\n'))
				if flusher != nil {
					flusher.Flush()
				}
			}
			return
		}
		if _, err := w.Write(line); err != nil {
			return // client went away; nothing sensible left to do
		}
		if flusher != nil {
			flusher.Flush()
		}
		if sv.testHookBatchLine != nil {
			sv.testHookBatchLine(i)
		}
	}
}
