package psum

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oipsr/graph"
	"oipsr/internal/naive"
	"oipsr/internal/simmat"
)

func randomGraph(rng *rand.Rand, n, maxM int) *graph.Graph {
	b := graph.NewBuilder(n, 0)
	b.EnsureVertices(n)
	for i := 0; i < rng.Intn(maxM+1); i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return b.MustBuild()
}

// TestMatchesNaive: partial-sums memoization is a pure reorganization of
// Eq. 2 and must agree with the naive oracle.
func TestMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		g := randomGraph(rng, n, 4*n)
		c := 0.3 + 0.6*rng.Float64()
		k := 1 + rng.Intn(5)
		want, err := naive.Compute(g, c, k)
		if err != nil {
			return false
		}
		got, _, err := Compute(g, Options{C: c, K: k})
		if err != nil {
			return false
		}
		return simmat.MaxDiff(got, want) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestFewerAddsThanNaive: the whole point of memoization — inner additions
// scale with d*n^2, not d^2*n^2. We check the counter is consistent with
// the analytic count.
func TestAdditionCounting(t *testing.T) {
	g := graph.MustFromEdges(4, [][2]int{{0, 2}, {1, 2}, {0, 3}, {1, 3}})
	_, st, err := Compute(g, Options{C: 0.6, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Two vertices (2, 3) have |I|=2: inner = (2-1)*n = 4 each -> 8.
	if st.InnerAdds != 8 {
		t.Errorf("InnerAdds = %d, want 8", st.InnerAdds)
	}
	// Outer: for a in {2,3}, pairs b in {2,3}\{a} each cost |I(b)|-1 = 1.
	if st.OuterAdds != 2 {
		t.Errorf("OuterAdds = %d, want 2", st.OuterAdds)
	}
	if st.AuxBytes != 32 {
		t.Errorf("AuxBytes = %d, want 8*n = 32", st.AuxBytes)
	}
}

// TestThresholdSieve: sieving clamps small scores to zero and reports them.
func TestThresholdSieve(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomGraph(rng, 20, 60)
	exact, _, err := Compute(g, Options{C: 0.6, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	sieved, st, err := Compute(g, Options{C: 0.6, K: 4, Threshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if st.SievedPairs == 0 {
		t.Skip("no pairs below threshold on this graph; widen the graph")
	}
	for i := 0; i < g.NumVertices(); i++ {
		for j := 0; j < g.NumVertices(); j++ {
			v := sieved.At(i, j)
			if v != 0 && v < 0.05 {
				t.Fatalf("sieved score %g below threshold survived at (%d,%d)", v, i, j)
			}
			// Sieving only ever reduces scores (monotone operator).
			if v > exact.At(i, j)+1e-12 {
				t.Fatalf("sieved score exceeds exact at (%d,%d): %g > %g", i, j, v, exact.At(i, j))
			}
		}
	}
}

func TestDiagAndEmptyRows(t *testing.T) {
	// Vertex 0 has an empty in-set; 1, 2 fed by 0.
	g := graph.MustFromEdges(3, [][2]int{{0, 1}, {0, 2}})
	s, _, err := Compute(g, Options{C: 0.8, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 3; v++ {
		if s.At(v, v) != 1 {
			t.Errorf("diag(%d) = %g", v, s.At(v, v))
		}
	}
	if s.At(0, 1) != 0 || s.At(2, 0) != 0 {
		t.Error("pairs with empty in-set must be zero")
	}
	if s.At(1, 2) != 0.8 {
		t.Errorf("s(1,2) = %g, want C = 0.8 (shared single source)", s.At(1, 2))
	}
}

func TestBadInputs(t *testing.T) {
	g := graph.MustFromEdges(2, [][2]int{{0, 1}})
	if _, _, err := Compute(g, Options{C: 0, K: 1}); err == nil {
		t.Error("want error for C=0")
	}
	if _, _, err := Compute(g, Options{C: 0.5, K: -2}); err == nil {
		t.Error("want error for K<0")
	}
	s, _, err := Compute(g, Options{C: 0.5, K: 0})
	if err != nil {
		t.Fatal(err)
	}
	if s.At(0, 0) != 1 || s.At(0, 1) != 0 {
		t.Error("K=0 must return identity")
	}
}
