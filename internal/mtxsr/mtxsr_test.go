package mtxsr

import (
	"math/rand"
	"testing"

	"oipsr/graph"
	"oipsr/graph/gen"
	"oipsr/internal/matrixform"
	"oipsr/internal/simmat"
)

func randomGraph(rng *rand.Rand, n, m int) *graph.Graph {
	b := graph.NewBuilder(n, m)
	b.EnsureVertices(n)
	for i := 0; i < m; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return b.MustBuild()
}

// TestFullRankRecoversSeries: with rank = n the SVD is exact and mtx-SR must
// reproduce the geometric series Eq. 12 (deep truncation as reference).
func TestFullRankRecoversSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5; trial++ {
		n := 4 + rng.Intn(8)
		g := randomGraph(rng, n, 3*n)
		want, err := matrixform.GeometricSum(g, 0.6, 120)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := Compute(g, Options{C: 0.6, Rank: n, PowerIters: 40, Seed: int64(trial)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if d := simmat.MaxDiff(got, want); d > 1e-6 {
			t.Errorf("trial %d (n=%d): full-rank error %g (solve iters %d, residual %g)",
				trial, n, d, st.SolveIters, st.Residual)
		}
	}
}

// TestLowRankApproximatesOnStructuredGraph: on a boilerplate web graph the
// transition structure is genuinely low-rank, so a small rank captures most
// of the similarity mass.
func TestLowRankApproximatesOnStructuredGraph(t *testing.T) {
	g := gen.WebGraph(150, 9, 5)
	want, err := matrixform.GeometricSum(g, 0.6, 60)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Compute(g, Options{C: 0.6, Rank: 60, PowerIters: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d := simmat.MaxDiff(got, want); d > 0.05 {
		t.Errorf("rank-60 approximation error %g, want <= 0.05 on a low-rank graph", d)
	}
}

// TestErrorShrinksWithRank: the truncation error decreases (weakly) as the
// rank grows — the knob Li et al. trade accuracy with.
func TestErrorShrinksWithRank(t *testing.T) {
	g := gen.CoauthorGraph(80, 3, 9)
	want, err := matrixform.GeometricSum(g, 0.6, 60)
	if err != nil {
		t.Fatal(err)
	}
	prevErr := -1.0
	for _, r := range []int{5, 20, 80} {
		got, _, err := Compute(g, Options{C: 0.6, Rank: r, PowerIters: 25, Seed: 3})
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		e := simmat.MaxDiff(got, want)
		if prevErr >= 0 && e > prevErr+0.02 {
			t.Errorf("error grew with rank: %g -> %g", prevErr, e)
		}
		prevErr = e
	}
	if prevErr > 1e-4 {
		t.Errorf("full-rank error %g, want near zero", prevErr)
	}
}

// TestMemoryDominatedByU: the n x r factors dominate, the behaviour behind
// the paper's Fig. 6d observation that mtx-SR memory explodes.
func TestMemoryDominatedByU(t *testing.T) {
	g := gen.CoauthorGraph(200, 3, 1)
	_, st, err := Compute(g, Options{C: 0.6, Rank: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.AuxBytes < int64(200*40*8) {
		t.Errorf("AuxBytes = %d, want at least n*r*8 = %d", st.AuxBytes, 200*40*8)
	}
	if st.SVDTime <= 0 || st.SolveTime <= 0 {
		t.Error("phase times not recorded")
	}
}

func TestDefaultRankSqrtN(t *testing.T) {
	g := gen.CoauthorGraph(100, 3, 2)
	_, st, err := Compute(g, Options{C: 0.6, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rank != 10 {
		t.Errorf("default rank = %d, want ceil(sqrt(100)) = 10", st.Rank)
	}
}

func TestBadOptions(t *testing.T) {
	g := graph.MustFromEdges(3, [][2]int{{0, 1}, {1, 2}})
	if _, _, err := Compute(g, Options{C: 1.0}); err == nil {
		t.Error("want error for C = 1")
	}
	if _, _, err := Compute(g, Options{C: 0.5, Rank: 99}); err == nil {
		t.Error("want error for rank > n")
	}
}

// TestSymmetry: the output S is symmetric by construction (U M U^T with M
// symmetric up to the solve tolerance).
func TestSymmetry(t *testing.T) {
	g := gen.WebGraph(100, 8, 13)
	s, _, err := Compute(g, Options{C: 0.6, Rank: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CheckSymmetric(1e-8); err != nil {
		t.Error(err)
	}
}

// TestParallelEquivalence pins the Workers contract: every stage of the
// pipeline (operator applies inside the SVD, the dense matmuls, the output
// materialization) assigns workers disjoint output rows with
// partition-independent per-row arithmetic, so scores and stats must be
// bit-identical for every worker count.
func TestParallelEquivalence(t *testing.T) {
	g := gen.WebGraph(70, 5, 4)
	base, baseStats, err := Compute(g, Options{C: 0.6, Rank: 12, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		m, st, err := Compute(g, Options{C: 0.6, Rank: 12, Seed: 3, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if d := simmat.MaxDiff(base, m); d != 0 {
			t.Fatalf("workers=%d: max diff %g, want bit-identical", workers, d)
		}
		if st.SolveIters != baseStats.SolveIters || st.Residual != baseStats.Residual || st.Rank != baseStats.Rank {
			t.Fatalf("workers=%d: stats %+v differ from serial %+v", workers, st, baseStats)
		}
	}
}
