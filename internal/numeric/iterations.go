package numeric

import (
	"fmt"
	"math"
)

// IterationsConventional returns the number of iterations the conventional
// SimRank model needs for accuracy eps: the smallest K with C^(K+1) <= eps,
// per the Lizorkin et al. bound |s_K - s| <= C^(K+1). The paper quotes this
// as K = ceil(log_C eps) and evaluates it to 41 for C = 0.8, eps = 1e-4,
// which matches the K^(+1) form (ceil(log_C eps) - 1 for fractional logs).
func IterationsConventional(c, eps float64) int {
	if !(c > 0 && c < 1) {
		panic(fmt.Sprintf("numeric: damping factor C=%v outside (0,1)", c))
	}
	if !(eps > 0 && eps < 1) {
		panic(fmt.Sprintf("numeric: accuracy eps=%v outside (0,1)", eps))
	}
	k := int(math.Ceil(math.Log(eps)/math.Log(c) - 1))
	if k < 0 {
		k = 0
	}
	// Guard against floating-point edge cases at exact powers of C.
	for GeometricTailBound(c, k) > eps {
		k++
	}
	for k > 0 && GeometricTailBound(c, k-1) <= eps {
		k--
	}
	return k
}

// IterationsDifferentialExact returns the smallest k such that
// C^(k+1)/(k+1)! <= eps, i.e. the exact iteration count implied by the
// error estimate of Proposition 7. This is the number of iterations the
// OIP-DSR engine actually performs for a requested accuracy; for C = 0.8 it
// reproduces the OIP-DSR column of Fig. 6f (4, 5, 6, 7, 8 for
// eps = 1e-2..1e-6).
func IterationsDifferentialExact(c, eps float64) int {
	if !(c > 0 && c < 1) {
		panic(fmt.Sprintf("numeric: damping factor C=%v outside (0,1)", c))
	}
	if !(eps > 0 && eps < 1) {
		panic(fmt.Sprintf("numeric: accuracy eps=%v outside (0,1)", eps))
	}
	for k := 0; ; k++ {
		if ExponentialTailBound(c, k) <= eps {
			return k
		}
	}
}

// IterationsDifferentialLambert returns the a-priori iteration estimate of
// Corollary 1:
//
//	K' = ceil( ln(eps0) / W( ln(eps0) / (e*C) ) ) - 1,   eps0 = (sqrt(2*pi)*eps)^-1
//
// obtained from the Stirling lower bound on (K'+1)!. For C = 0.8 it
// reproduces the "LamW Est." column of Fig. 6f (4, 5, 7, 8, 9 for
// eps = 1e-2..1e-6).
func IterationsDifferentialLambert(c, eps float64) int {
	l := lnEps0(eps)
	w := LambertW0(l / (math.E * c))
	return int(math.Ceil(l/w)) - 1
}

// LogEstimateValid reports whether the Lambert-free bound of Corollary 2
// applies, i.e. eps < (1/sqrt(2*pi)) * exp(-C*e^2). For C = 0.8 the
// threshold is ~0.0011, which is why Fig. 6f leaves the Log estimate blank
// at eps = 1e-2.
func LogEstimateValid(c, eps float64) bool {
	return eps < math.Exp(-c*math.E*math.E)/math.Sqrt(2*math.Pi)
}

// IterationsDifferentialLog returns the estimate of Corollary 2, which
// replaces W(x) by its lower bound ln(x) - ln(ln(x)) (valid for x > e):
//
//	K' = ceil( ln(eps0) / (lambda - ln(lambda)) ) - 1,
//	lambda = ln( ln(eps0) / (e*C) )
//
// It reports ok=false when eps is outside the validity range of
// LogEstimateValid. For C = 0.8 it reproduces the "Log Est." column of
// Fig. 6f (-, 5, 7, 9, 10 for eps = 1e-2..1e-6).
func IterationsDifferentialLog(c, eps float64) (k int, ok bool) {
	if !LogEstimateValid(c, eps) {
		return 0, false
	}
	l := lnEps0(eps)
	lambda := math.Log(l / (math.E * c))
	return int(math.Ceil(l/(lambda-math.Log(lambda)))) - 1, true
}

// lnEps0 computes ln(eps0) = -ln(sqrt(2*pi)*eps) for eps in (0,1).
func lnEps0(eps float64) float64 {
	if !(eps > 0 && eps < 1) {
		panic(fmt.Sprintf("numeric: accuracy eps=%v outside (0,1)", eps))
	}
	return -math.Log(math.Sqrt(2*math.Pi) * eps)
}
