module oipsr

go 1.24
