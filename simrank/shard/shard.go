// Package shard partitions a SimRank walk index into per-vertex-range
// shards and rebuilds single-node answers from their partials.
//
// The partition is horizontal: shard i stores the walk rows of a
// contiguous vertex range [lo_i, hi_i), bit-identical to the same rows of
// an unsharded index (oipsr/internal/walkindex's partition invariant).
// Because the coupled walks are pure hash functions of (graph, options),
// every shard — holding the full graph, which is tiny next to the path
// store — can recompute any foreign vertex's walks on demand, so any shard
// can answer "score every vertex I own against these sources" for
// arbitrary sources. Per-target scores are independent, so a router
// concatenates per-shard partial rows into the exact single-node dense
// row; similarity joins shard along the fingerprint axis instead and merge
// by set union + shared tail ranking. Nothing in the merge does float
// arithmetic, which is why sharded answers are byte-identical to
// single-node ones, not merely close.
//
// The planner (Plan) and builder (BuildAll) produce a shard directory: one
// CRC-sealed index file per shard plus a versioned manifest (manifest.go)
// binding the files, their checksums, and the build parameters together.
// Serving lives in oipsr/internal/simrankd (shard mode and router mode).
package shard

import (
	"context"
	"fmt"
	"sync/atomic"

	"oipsr/graph"
	"oipsr/internal/walkindex"
	"oipsr/simrank/query"
)

// Range is one planned shard's vertex range [Lo, Hi).
type Range struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Plan partitions [0, n) into `shards` contiguous ranges, balanced to
// within one vertex — the same split the engines use for worker ranges, so
// shard boundaries are deterministic for a given (n, shards). shards may
// exceed n, leaving empty trailing ranges (legal, if pointless).
func Plan(n, shards int) ([]Range, error) {
	if n < 0 {
		return nil, fmt.Errorf("shard: negative vertex count %d", n)
	}
	if shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d < 1", shards)
	}
	out := make([]Range, shards)
	for i := range out {
		// Balanced contiguous split: the first n%shards ranges get one
		// extra vertex (par.Range's arithmetic, inlined to keep the planned
		// layout a documented contract rather than an implementation echo).
		width, extra := n/shards, n%shards
		lo := i*width + min(i, extra)
		hi := lo + width
		if i < extra {
			hi++
		}
		out[i] = Range{Lo: lo, Hi: hi}
	}
	return out, nil
}

// Shard is one serving shard: a range-restricted walk index plus the full
// graph it was built against. Safe for concurrent queries; ApplyEdits is
// the one mutating operation and must be serialized against queries (the
// shard server holds an RWMutex exactly like the single-node daemon).
type Shard struct {
	sx *walkindex.ShardIndex
	g  *graph.Graph
	// gen counts applied updates; the router folds every shard's gen into
	// its cache keys (see Generation).
	gen atomic.Uint64
}

// Build constructs the shard owning vertex range [lo, hi) of g. The stored
// rows are bit-identical to rows [lo, hi) of query.BuildIndex(g, opt)'s
// walk index.
func Build(g *graph.Graph, opt query.Options, lo, hi int) (*Shard, error) {
	sx, err := walkindex.BuildShard(g, walkindex.Options{
		C:       opt.C,
		K:       opt.K,
		Eps:     opt.Eps,
		Walks:   opt.Walks,
		Seed:    opt.Seed,
		Workers: opt.Workers,
	}, lo, hi)
	if err != nil {
		return nil, err
	}
	return &Shard{sx: sx, g: g}, nil
}

// N returns the vertex count of the full graph.
func (s *Shard) N() int { return s.sx.N() }

// Lo returns the first owned vertex.
func (s *Shard) Lo() int { return s.sx.Lo() }

// Hi returns one past the last owned vertex.
func (s *Shard) Hi() int { return s.sx.Hi() }

// Width returns the number of owned vertices.
func (s *Shard) Width() int { return s.sx.Width() }

// Owns reports whether the shard stores v's walks.
func (s *Shard) Owns(v int) bool { return s.sx.Owns(v) }

// C returns the damping factor.
func (s *Shard) C() float64 { return s.sx.C() }

// Horizon returns the walk horizon K.
func (s *Shard) Horizon() int { return s.sx.Horizon() }

// Walks returns the number of fingerprints R.
func (s *Shard) Walks() int { return s.sx.Walks() }

// Seed returns the build seed.
func (s *Shard) Seed() int64 { return s.sx.Seed() }

// Bytes returns the size of the walk storage: resident memory for a dense
// shard, the compressed backing file for a mapped one.
func (s *Shard) Bytes() int64 { return s.sx.Bytes() }

// Backend reports the walk storage backing this shard: "dense" for
// in-memory shards, "mapped" (or "mapped-readat" without mmap) for
// demand-paged ones opened via OpenShardMapped.
func (s *Shard) Backend() string { return s.sx.Backend() }

// Close releases resources held by the walk storage — the file mapping
// for a mapped shard, nothing for a dense one.
func (s *Shard) Close() error { return s.sx.Close() }

// Graph returns the attached graph, or nil for a loaded shard without
// AttachGraph.
func (s *Shard) Graph() *graph.Graph { return s.g }

// Generation returns the number of updates applied since build/load. The
// router folds the per-shard generation vector into its cache keys, the
// same scheme the single-node daemon uses with query.Index.Generation.
func (s *Shard) Generation() uint64 { return s.gen.Load() }

// AttachGraph re-attaches the source graph to a loaded shard. Foreign
// sources are recomputed from it, so unlike the single-node index — where
// the graph is optional until reranking — a serving shard requires it; the
// vertex count is validated, deeper mismatches are the operator's contract
// (the manifest's seed/params check catches most).
func (s *Shard) AttachGraph(g *graph.Graph) error {
	if g.NumVertices() != s.sx.N() {
		return fmt.Errorf("shard: graph has %d vertices, shard was built on %d", g.NumVertices(), s.sx.N())
	}
	s.g = g
	return nil
}

// PartialScores estimates s(q, v) for every source q and every owned
// target v, returning one partial row per source (row[v-Lo()] is s(q, v)).
// Each row is the exact [Lo, Hi) sub-slice of the single-node dense row.
func (s *Shard) PartialScores(ctx context.Context, sources []int, workers int) ([][]float64, error) {
	if s.g == nil {
		return nil, fmt.Errorf("shard: PartialScores needs the source graph (AttachGraph after load)")
	}
	n := s.sx.N()
	for _, q := range sources {
		if q < 0 || q >= n {
			return nil, fmt.Errorf("shard: vertex %d out of range [0,%d)", q, n)
		}
	}
	return s.sx.PartialMultiSource(ctx, s.g, sources, workers)
}

// JoinCandidates enumerates the co-located candidate pairs of fingerprint
// range [fpLo, fpHi) within the threshold's prune depth; see
// walkindex.(*ShardIndex).JoinCandidates for the union/cap contract.
func (s *Shard) JoinCandidates(ctx context.Context, threshold float64, fpLo, fpHi, maxCandidates, workers int) ([]uint64, error) {
	if s.g == nil {
		return nil, fmt.Errorf("shard: JoinCandidates needs the source graph (AttachGraph after load)")
	}
	return s.sx.JoinCandidates(ctx, s.g, threshold, fpLo, fpHi, maxCandidates, workers)
}

// ScorePairs computes exact estimates for candidate keys (canonical
// a<<32|b), bit-identical to the single-node pair scores.
func (s *Shard) ScorePairs(ctx context.Context, keys []uint64, workers int) ([]walkindex.JoinPair, error) {
	if s.g == nil {
		return nil, fmt.Errorf("shard: ScorePairs needs the source graph (AttachGraph after load)")
	}
	n := s.sx.N()
	for _, key := range keys {
		a, b := int(key>>32), int(key&0xFFFFFFFF)
		if a < 0 || a >= n || b < 0 || b >= n {
			return nil, fmt.Errorf("shard: pair (%d,%d) out of range [0,%d)", a, b, n)
		}
	}
	return s.sx.ScorePairs(ctx, s.g, keys, workers)
}

// ApplyEdits applies a batch of edge edits to the attached graph and
// repairs the shard incrementally; the repaired shard is bit-identical to
// a fresh Build on the edited graph. Every shard of a fleet must receive
// the same batches (the router broadcasts /v1/edges for exactly this
// reason); edits are idempotent at the graph layer, so re-sending a batch
// after a partial broadcast failure converges rather than corrupts. On
// error the shard and graph are unchanged. A batch of pure no-ops keeps
// the generation, mirroring query.Index.ApplyEdits.
func (s *Shard) ApplyEdits(edits []graph.Edit, workers int) (query.UpdateStats, error) {
	if s.g == nil {
		return query.UpdateStats{}, fmt.Errorf("shard: ApplyEdits needs the source graph (AttachGraph after load)")
	}
	g2, sum, err := s.g.ApplyEdits(edits)
	if err != nil {
		return query.UpdateStats{}, err
	}
	if len(sum.DirtyIn) == 0 && len(sum.DirtyOut) == 0 {
		return query.UpdateStats{Generation: s.gen.Load()}, nil
	}
	changed, err := s.sx.Update(g2, sum.DirtyIn, workers)
	if err != nil {
		return query.UpdateStats{}, err
	}
	s.g = g2
	s.gen.Add(1)
	return query.UpdateStats{
		EdgesAdded:    sum.Added,
		EdgesRemoved:  sum.Removed,
		DirtyVertices: len(sum.DirtyIn),
		WalksRepaired: changed,
		Generation:    s.gen.Load(),
	}, nil
}

// PrepareUpdates eagerly builds the inverted visit index ApplyEdits
// otherwise builds lazily on the first batch.
func (s *Shard) PrepareUpdates(workers int) error {
	return s.sx.PrepareUpdate(workers)
}
