package simrankd

import (
	"fmt"
	"io"
)

// Version identifies the simrankd build. cmd/simrankd prints it under
// -version and every serving mode exports it as the simrankd_build_info
// metric, so a mixed fleet (shards, router, single-node daemons) can be
// audited for version skew from its metrics alone.
const Version = "0.7.0"

// buildInfoMetric writes the simrankd_build_info gauge in the Prometheus
// text format: always value 1, with the build version and the serving
// mode ("serve", "shard", "router") as labels.
func buildInfoMetric(w io.Writer, mode string) {
	fmt.Fprintf(w, "simrankd_build_info{version=%q,mode=%q} 1\n", Version, mode)
}
