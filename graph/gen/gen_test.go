package gen

import (
	"testing"

	"oipsr/graph"
)

func TestErdosRenyiExactEdgeCount(t *testing.T) {
	g := ErdosRenyi(100, 500, 1)
	if g.NumVertices() != 100 {
		t.Errorf("n = %d, want 100", g.NumVertices())
	}
	if g.NumEdges() != 500 {
		t.Errorf("m = %d, want exactly 500", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	for v := 0; v < 100; v++ {
		if g.HasEdge(v, v) {
			t.Fatalf("self loop at %d", v)
		}
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyi(50, 200, 7)
	b := ErdosRenyi(50, 200, 7)
	c := ErdosRenyi(50, 200, 8)
	if !equalGraphs(a, b) {
		t.Error("same seed produced different graphs")
	}
	if equalGraphs(a, c) {
		t.Error("different seeds produced identical graphs (suspicious)")
	}
}

func TestErdosRenyiPanicsOnImpossible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for m > n(n-1)")
		}
	}()
	ErdosRenyi(3, 7, 1)
}

func TestRMATShape(t *testing.T) {
	g := RMAT(256, 2000, DefaultRMAT, 3)
	if g.NumVertices() != 256 {
		t.Errorf("n = %d, want 256", g.NumVertices())
	}
	if g.NumEdges() < 1800 {
		t.Errorf("m = %d, want near 2000", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	// Power-law check: the max in-degree should far exceed the average.
	s := graph.ComputeStats(g)
	if float64(s.MaxInDeg) < 3*s.AvgDegree {
		t.Errorf("max in-degree %d vs avg %.1f: distribution looks flat, want skew", s.MaxInDeg, s.AvgDegree)
	}
}

func TestRMATNonPowerOfTwo(t *testing.T) {
	g := RMAT(100, 300, DefaultRMAT, 5)
	if g.NumVertices() != 100 {
		t.Errorf("n = %d, want 100", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRMATBadParamsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for params not summing to 1")
		}
	}()
	RMAT(16, 10, RMATParams{A: 0.9, B: 0.9, C: 0.1, D: 0.1}, 1)
}

func TestWebGraphOverlap(t *testing.T) {
	g := WebGraph(1000, 11, 2)
	s := graph.ComputeStats(g)
	if s.AvgDegree < 8 || s.AvgDegree > 14 {
		t.Errorf("avg degree %.1f, want ~11 (BerkStan-like)", s.AvgDegree)
	}
	// The whole point of this generator: heavy in-set overlap.
	if s.OverlapRatio < 0.5 {
		t.Errorf("overlap ratio %.2f, want >= 0.5 for a copy-model web graph", s.OverlapRatio)
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestCitationGraphIsDAG(t *testing.T) {
	g := CitationGraph(500, 4, 9)
	// Edges must always point from larger to smaller id (cites the past).
	g.Edges(func(u, v int) bool {
		if v >= u {
			t.Fatalf("edge %d->%d violates citation order", u, v)
		}
		return true
	})
	s := graph.ComputeStats(g)
	if s.AvgDegree < 3 || s.AvgDegree > 5 {
		t.Errorf("avg degree %.1f, want ~4 (Patent-like)", s.AvgDegree)
	}
}

func TestCoauthorGraphSymmetric(t *testing.T) {
	g := CoauthorGraph(800, 3, 4)
	g.Edges(func(u, v int) bool {
		if !g.HasEdge(v, u) {
			t.Fatalf("edge %d->%d has no reverse", u, v)
		}
		return true
	})
	s := graph.ComputeStats(g)
	if s.AvgDegree < 1.5 || s.AvgDegree > 4.5 {
		t.Errorf("avg degree %.1f, want ~2.4-2.8 (DBLP-like)", s.AvgDegree)
	}
}

func TestDBLPSnapshotSeries(t *testing.T) {
	prev := 0
	for i := 0; i < 4; i++ {
		g := DBLPSnapshot(i, 4, 11)
		if g.NumVertices() <= prev {
			t.Errorf("snapshot %d has n=%d, want growth over %d", i, g.NumVertices(), prev)
		}
		prev = g.NumVertices()
		if err := g.Validate(); err != nil {
			t.Errorf("snapshot %d: %v", i, err)
		}
	}
}

func TestDBLPSnapshotBadIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for snapshot index 4")
		}
	}()
	DBLPSnapshot(4, 1, 1)
}

func TestGeneratorsDeterministic(t *testing.T) {
	cases := []struct {
		name string
		make func(seed int64) *graph.Graph
	}{
		{"rmat", func(s int64) *graph.Graph { return RMAT(64, 300, DefaultRMAT, s) }},
		{"web", func(s int64) *graph.Graph { return WebGraph(300, 8, s) }},
		{"citation", func(s int64) *graph.Graph { return CitationGraph(300, 4, s) }},
		{"coauthor", func(s int64) *graph.Graph { return CoauthorGraph(300, 3, s) }},
	}
	for _, c := range cases {
		a, b := c.make(42), c.make(42)
		if !equalGraphs(a, b) {
			t.Errorf("%s: same seed produced different graphs", c.name)
		}
	}
}

func equalGraphs(a, b *graph.Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	eq := true
	a.Edges(func(u, v int) bool {
		if !b.HasEdge(u, v) {
			eq = false
			return false
		}
		return true
	})
	return eq
}
