package query

import (
	"io"
	"os"

	"oipsr/graph"
	"oipsr/internal/atomicio"
	"oipsr/internal/walkindex"
)

// On-disk format selection and mapped loading, re-exported from
// oipsr/internal/walkindex. Save/SaveFile keep writing format v1 — the
// revision every deployed build reads — so format v2 is always an explicit
// choice; Load/LoadFile negotiate the version from the file header and
// read both.

// Supported index file format revisions.
const (
	// FormatV1 is the dense format: raw path payload, readable by every
	// build of this package.
	FormatV1 = walkindex.FormatV1
	// FormatV2 is the compressed format: delta/varint posting blocks with
	// a block directory. Only v2 files can be opened with LoadFileMapped.
	FormatV2 = walkindex.FormatV2
	// FormatVersion is the newest revision this build reads and writes.
	FormatVersion = walkindex.FormatVersion
)

// MappedOptions configures LoadFileMapped; see walkindex.MappedOptions.
type MappedOptions = walkindex.MappedOptions

// SaveFormat writes the index to w in the requested format (FormatV1 or
// FormatV2). It validates the index against the load-side guards first
// and refuses (walkindex.ErrFormatLimits) to write an unloadable file.
func (ix *Index) SaveFormat(w io.Writer, format int) error {
	return ix.wi.SaveFormat(w, format)
}

// SaveFileFormat is SaveFile (durable, atomic) with an explicit format.
func (ix *Index) SaveFileFormat(path string, format int) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		return ix.wi.SaveFormat(w, format)
	})
}

// BuildStreamStats reports what a streaming build wrote; see
// walkindex.StreamStats.
type BuildStreamStats = walkindex.StreamStats

// BuildFileStreaming builds a format-v2 index file for g directly on
// disk, never materializing the index in memory: walks are generated in
// vertex-range slices sized to budgetBytes and encoded straight into the
// file, so peak builder memory is bounded by the budget, not by n. The
// file is byte-identical to BuildIndex + SaveFileFormat(path, FormatV2)
// and is published atomically (temp, fsync, rename). Open it with
// LoadFileMapped to serve graphs whose dense index exceeds RAM.
func BuildFileStreaming(g *graph.Graph, opt Options, path string, budgetBytes int64) (*BuildStreamStats, error) {
	var st *walkindex.StreamStats
	err := atomicio.WriteFileAt(path, func(f *os.File) error {
		var err error
		st, err = walkindex.BuildStreaming(g, walkindex.Options{
			C:       opt.C,
			K:       opt.K,
			Eps:     opt.Eps,
			Walks:   opt.Walks,
			Seed:    opt.Seed,
			Workers: opt.Workers,
		}, f, budgetBytes)
		return err
	})
	if err != nil {
		return nil, err
	}
	return st, nil
}

// LoadFileMapped opens a format-v2 index file for demand paging: queries
// decode single posting blocks (mmap-backed where the platform supports
// it) behind a small LRU instead of materializing the dense walk payload.
// The file is fully validated at open. Answers are bit-identical to
// LoadFile's; v1 files are rejected — re-save them with SaveFileFormat.
// Call Close when done to release the mapping.
func LoadFileMapped(path string, opts MappedOptions) (*Index, error) {
	wi, err := walkindex.LoadMapped(path, opts)
	if err != nil {
		return nil, err
	}
	return &Index{wi: wi}, nil
}

// Backend reports the walk storage backing this index: "dense" for
// in-memory indexes, "mapped" (or "mapped-readat" without mmap) for
// demand-paged ones.
func (ix *Index) Backend() string { return ix.wi.Backend() }

// Close releases resources held by the walk storage — the file mapping
// for a mapped index, nothing for a dense one. The index must not be
// used afterwards.
func (ix *Index) Close() error { return ix.wi.Close() }
