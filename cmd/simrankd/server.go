package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"oipsr/internal/lru"
	"oipsr/simrank/query"
)

// server wires the query index into an http.Handler: the /v1 endpoints,
// the health probe, and a /metrics counter dump. Responses are memoized in
// an LRU keyed by the normalized request parameters — the index is
// immutable, so cached answers never go stale.
type server struct {
	idx   *query.Index
	cache *lru.Cache[string, []byte]
	mux   *http.ServeMux

	// Counters exported on /metrics. Latency is tracked as a running sum
	// plus count per endpoint, enough for an average without histograms.
	reqSingleSource atomic.Int64
	reqTopK         atomic.Int64
	reqErrors       atomic.Int64
	latencyMicros   atomic.Int64

	started time.Time
}

func newServer(idx *query.Index, cacheSize int) *server {
	s := &server{
		idx:     idx,
		cache:   lru.New[string, []byte](cacheSize),
		mux:     http.NewServeMux(),
		started: time.Now(),
	}
	s.mux.HandleFunc("/v1/single_source", s.handleSingleSource)
	s.mux.HandleFunc("/v1/topk", s.handleTopK)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *server) writeError(w http.ResponseWriter, code int, format string, args ...any) {
	s.reqErrors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorResponse{Error: fmt.Sprintf(format, args...)})
}

func writeJSONBytes(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// intParam parses a required (or defaulted) integer query parameter.
func intParam(r *http.Request, name string, def int, required bool) (int, error) {
	raw := r.FormValue(name)
	if raw == "" {
		if required {
			return 0, fmt.Errorf("missing required parameter %q", name)
		}
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return v, nil
}

func boolParam(r *http.Request, name string) bool {
	switch r.FormValue(name) {
	case "1", "true", "yes", "on":
		return true
	}
	return false
}

type singleSourceResponse struct {
	Query int `json:"query"`
	N     int `json:"n"`
	// Scores is the dense score vector unless min was given.
	Scores []float64 `json:"scores,omitempty"`
	// Results holds only the entries with score >= min, sorted by
	// decreasing score, when the min parameter was given.
	Results []query.Ranked `json:"results,omitempty"`
}

// handleSingleSource serves GET/POST /v1/single_source?q=17[&min=0.01].
func (s *server) handleSingleSource(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	s.reqSingleSource.Add(1)
	q, err := intParam(r, "q", 0, true)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	minRaw := r.FormValue("min")
	// Dense responses are O(n) bytes each; caching them would make cache
	// memory scale with graph size times -cache entries, so only the
	// thresholded (sparse) form is memoized.
	cacheable := minRaw != ""
	key := "ss:" + strconv.Itoa(q) + ":" + minRaw
	if cacheable {
		if body, ok := s.cache.Get(key); ok {
			writeJSONBytes(w, body)
			s.latencyMicros.Add(time.Since(t0).Microseconds())
			return
		}
	}

	scores, err := s.idx.SingleSource(q)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := singleSourceResponse{Query: q, N: len(scores)}
	if minRaw == "" {
		resp.Scores = scores
	} else {
		minVal, err := strconv.ParseFloat(minRaw, 64)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "parameter \"min\": %v", err)
			return
		}
		resp.Results = sparseAbove(scores, q, minVal)
	}
	body, err := json.Marshal(resp)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	body = append(body, '\n')
	if cacheable {
		s.cache.Put(key, body)
	}
	writeJSONBytes(w, body)
	s.latencyMicros.Add(time.Since(t0).Microseconds())
}

// sparseAbove filters a dense score vector down to the entries (other than
// the query itself) with score >= min, sorted by decreasing score with
// ties broken by vertex id.
func sparseAbove(scores []float64, q int, min float64) []query.Ranked {
	out := []query.Ranked{}
	for v, sc := range scores {
		if v != q && sc >= min {
			out = append(out, query.Ranked{Vertex: v, Score: sc})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Vertex < out[j].Vertex
	})
	return out
}

type topKResponse struct {
	Query    int            `json:"query"`
	K        int            `json:"k"`
	Reranked bool           `json:"reranked"`
	Results  []query.Ranked `json:"results"`
}

// handleTopK serves GET/POST /v1/topk?q=17&k=10[&rerank=1].
func (s *server) handleTopK(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	s.reqTopK.Add(1)
	q, err := intParam(r, "q", 0, true)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	k, err := intParam(r, "k", 10, false)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rerank := boolParam(r, "rerank")

	key := fmt.Sprintf("topk:%d:%d:%t", q, k, rerank)
	if body, ok := s.cache.Get(key); ok {
		writeJSONBytes(w, body)
		s.latencyMicros.Add(time.Since(t0).Microseconds())
		return
	}

	results, err := s.idx.TopK(q, k, &query.TopKOptions{Rerank: rerank})
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	body, err := json.Marshal(topKResponse{Query: q, K: k, Reranked: rerank, Results: results})
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	body = append(body, '\n')
	s.cache.Put(key, body)
	writeJSONBytes(w, body)
	s.latencyMicros.Add(time.Since(t0).Microseconds())
}

type healthzResponse struct {
	Status     string  `json:"status"`
	Vertices   int     `json:"vertices"`
	Walks      int     `json:"walks"`
	Horizon    int     `json:"horizon"`
	C          float64 `json:"c"`
	IndexBytes int64   `json:"index_bytes"`
	UptimeSecs float64 `json:"uptime_seconds"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(healthzResponse{
		Status:     "ok",
		Vertices:   s.idx.N(),
		Walks:      s.idx.Walks(),
		Horizon:    s.idx.Horizon(),
		C:          s.idx.C(),
		IndexBytes: s.idx.Bytes(),
		UptimeSecs: time.Since(s.started).Seconds(),
	})
}

// handleMetrics dumps the counters in the Prometheus text exposition
// format (counters only — no client library dependency).
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.cache.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "simrankd_requests_total{endpoint=\"single_source\"} %d\n", s.reqSingleSource.Load())
	fmt.Fprintf(w, "simrankd_requests_total{endpoint=\"topk\"} %d\n", s.reqTopK.Load())
	fmt.Fprintf(w, "simrankd_request_errors_total %d\n", s.reqErrors.Load())
	fmt.Fprintf(w, "simrankd_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "simrankd_cache_misses_total %d\n", misses)
	fmt.Fprintf(w, "simrankd_request_latency_micros_total %d\n", s.latencyMicros.Load())
	fmt.Fprintf(w, "simrankd_index_vertices %d\n", s.idx.N())
	fmt.Fprintf(w, "simrankd_index_bytes %d\n", s.idx.Bytes())
}
