package linalg

import (
	"fmt"
	"math"
)

// ThinQR computes the thin QR decomposition of an m x k matrix a (m >= k):
// a = q*r with q an m x k matrix with orthonormal columns and r upper
// triangular k x k. It uses Householder reflections applied in place, the
// numerically stable choice for the subspace-iteration orthonormalization
// step of the truncated SVD.
func ThinQR(a *Dense) (q, r *Dense) {
	m, k := a.Rows(), a.Cols()
	if m < k {
		panic(fmt.Sprintf("linalg: ThinQR needs rows >= cols, got %dx%d", m, k))
	}
	work := a.Copy()
	// vs[j] stores the j-th Householder vector (length m, zero above j).
	vs := make([][]float64, k)

	for j := 0; j < k; j++ {
		// Build the Householder vector annihilating work[j+1:, j].
		norm := 0.0
		for i := j; i < m; i++ {
			norm += work.At(i, j) * work.At(i, j)
		}
		norm = math.Sqrt(norm)
		v := make([]float64, m)
		alpha := work.At(j, j)
		if norm == 0 {
			// Zero column below the diagonal: nothing to reflect.
			vs[j] = v
			continue
		}
		if alpha > 0 {
			norm = -norm
		}
		v[j] = alpha - norm
		for i := j + 1; i < m; i++ {
			v[i] = work.At(i, j)
		}
		vnorm2 := 0.0
		for i := j; i < m; i++ {
			vnorm2 += v[i] * v[i]
		}
		if vnorm2 == 0 {
			vs[j] = v
			continue
		}
		// Apply H = I - 2 v v^T / (v^T v) to work[:, j:].
		for c := j; c < k; c++ {
			dot := 0.0
			for i := j; i < m; i++ {
				dot += v[i] * work.At(i, c)
			}
			f := 2 * dot / vnorm2
			for i := j; i < m; i++ {
				work.Set(i, c, work.At(i, c)-f*v[i])
			}
		}
		vs[j] = v
	}

	r = NewDense(k, k)
	for i := 0; i < k; i++ {
		for j := i; j < k; j++ {
			r.Set(i, j, work.At(i, j))
		}
	}

	// Accumulate q = H_0 H_1 ... H_{k-1} applied to the first k columns of
	// the m x m identity.
	q = NewDense(m, k)
	for j := 0; j < k; j++ {
		q.Set(j, j, 1)
	}
	for j := k - 1; j >= 0; j-- {
		v := vs[j]
		vnorm2 := 0.0
		for i := j; i < m; i++ {
			vnorm2 += v[i] * v[i]
		}
		if vnorm2 == 0 {
			continue
		}
		for c := 0; c < k; c++ {
			dot := 0.0
			for i := j; i < m; i++ {
				dot += v[i] * q.At(i, c)
			}
			f := 2 * dot / vnorm2
			for i := j; i < m; i++ {
				q.Set(i, c, q.At(i, c)-f*v[i])
			}
		}
	}
	return q, r
}
