// Package eval implements the ranking-quality metrics of the paper's Exp-4:
// NDCG@p (the paper's formula, with graded relevance), plus Kendall tau,
// Spearman rho, top-k extraction and inversion counting used to compare the
// relative order of OIP-DSR scores against conventional SimRank.
//
// The paper's ground truth came from ten human evaluators; this reproduction
// substitutes the ranking induced by a converged conventional SimRank run
// (see DESIGN.md), graded into relevance levels with GradeByRank.
package eval

import (
	"math"
	"sort"
)

// NDCG computes the normalized discounted cumulative gain at position p:
//
//	NDCG_p = (1/IDCG_p) * sum_{i=1..p} (2^rel_i - 1) / log2(1 + i)
//
// exactly as defined in Section V-A. rel[item] is the graded relevance of
// each item; ranking lists items in the order the system produced. The
// normalizer IDCG_p uses the ideal (relevance-sorted) ordering, so a perfect
// ranking scores 1. Returns 1 for p <= 0 or when all relevances are zero
// (an empty ideal has nothing to get wrong).
func NDCG(rel []float64, ranking []int, p int) float64 {
	if p <= 0 {
		return 1
	}
	if p > len(ranking) {
		p = len(ranking)
	}
	dcg := 0.0
	for i := 0; i < p; i++ {
		dcg += (math.Exp2(rel[ranking[i]]) - 1) / math.Log2(float64(i)+2)
	}
	ideal := make([]float64, len(rel))
	copy(ideal, rel)
	sort.Sort(sort.Reverse(sort.Float64Slice(ideal)))
	idcg := 0.0
	for i := 0; i < p && i < len(ideal); i++ {
		idcg += (math.Exp2(ideal[i]) - 1) / math.Log2(float64(i)+2)
	}
	if idcg == 0 {
		return 1
	}
	return dcg / idcg
}

// GradeByRank assigns graded relevance from an ideal ranking: items at ideal
// positions < cutoffs[0] get grade len(cutoffs), positions < cutoffs[1] the
// next lower grade, and so on; items beyond the last cutoff get 0. This is
// the standard construction of graded ground truth from a reference ranking
// (substituting the paper's human judgments).
func GradeByRank(n int, ideal []int, cutoffs []int) []float64 {
	rel := make([]float64, n)
	for pos, item := range ideal {
		for level, cut := range cutoffs {
			if pos < cut {
				rel[item] = float64(len(cutoffs) - level)
				break
			}
		}
	}
	return rel
}

// Rank returns item indices sorted by decreasing score, breaking ties by
// index for determinism. skip, when non-nil, excludes items (e.g. the query
// vertex itself).
func Rank(scores []float64, skip func(int) bool) []int {
	var idx []int
	for i := range scores {
		if skip != nil && skip(i) {
			continue
		}
		idx = append(idx, i)
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx
}

// TopK returns the first k entries of Rank (or fewer if not enough items).
func TopK(scores []float64, k int, skip func(int) bool) []int {
	r := Rank(scores, skip)
	if k < len(r) {
		r = r[:k]
	}
	return r
}

// KendallTau computes the rank correlation between two score vectors over
// the same items: (concordant - discordant) / (concordant + discordant),
// ignoring pairs tied in either vector. Returns 1 when every comparable
// pair agrees (including the degenerate all-tied case).
func KendallTau(a, b []float64) float64 {
	concordant, discordant := 0, 0
	for i := 0; i < len(a); i++ {
		for j := i + 1; j < len(a); j++ {
			pa, pb := a[i]-a[j], b[i]-b[j]
			switch {
			case pa*pb > 0:
				concordant++
			case pa*pb < 0:
				discordant++
			}
		}
	}
	if concordant+discordant == 0 {
		return 1
	}
	return float64(concordant-discordant) / float64(concordant+discordant)
}

// SpearmanRho computes the rank correlation via Pearson correlation of
// fractional ranks (ties get the mean of their positions).
func SpearmanRho(a, b []float64) float64 {
	ra, rb := fractionalRanks(a), fractionalRanks(b)
	return pearson(ra, rb)
}

func fractionalRanks(x []float64) []float64 {
	n := len(x)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && x[idx[j]] == x[idx[i]] {
			j++
		}
		mean := float64(i+j-1)/2 + 1
		for k := i; k < j; k++ {
			ranks[idx[k]] = mean
		}
		i = j
	}
	return ranks
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	if n == 0 {
		return 1
	}
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 1
	}
	return cov / math.Sqrt(va*vb)
}

// Inversions counts the pairs of items ordered differently by the two
// rankings (restricted to items present in both). Fig. 6h reports that the
// OIP-DSR top-30 list differs from OIP-SR's by exactly one inversion of
// adjacent positions; this is the metric behind that claim.
func Inversions(a, b []int) int {
	pos := make(map[int]int, len(b))
	for i, item := range b {
		pos[item] = i
	}
	var seq []int
	for _, item := range a {
		if p, ok := pos[item]; ok {
			seq = append(seq, p)
		}
	}
	inv := 0
	for i := 0; i < len(seq); i++ {
		for j := i + 1; j < len(seq); j++ {
			if seq[i] > seq[j] {
				inv++
			}
		}
	}
	return inv
}

// SignificantInversions counts pairs of items that the two score vectors
// order in strictly opposite ways with both gaps exceeding tol. Pairs that
// either model scores within tol of each other are ties for ranking
// purposes — co-author communities produce many of them — and flipping a
// tie is not a quality loss, so they are excluded. items selects which
// indices participate (e.g. a top-30 list).
func SignificantInversions(items []int, a, b []float64, tol float64) int {
	inv := 0
	for x := 0; x < len(items); x++ {
		for y := x + 1; y < len(items); y++ {
			i, j := items[x], items[y]
			da, db := a[i]-a[j], b[i]-b[j]
			if (da > tol && db < -tol) || (da < -tol && db > tol) {
				inv++
			}
		}
	}
	return inv
}

// TopKOverlap returns |a ∩ b| / max(|a|, |b|), the fraction of shared items
// between two top-k lists.
func TopKOverlap(a, b []int) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	set := make(map[int]bool, len(a))
	for _, x := range a {
		set[x] = true
	}
	common := 0
	for _, x := range b {
		if set[x] {
			common++
		}
	}
	den := len(a)
	if len(b) > den {
		den = len(b)
	}
	return float64(common) / float64(den)
}

// PrecisionAtK scores a returned top-k list (vertex ids, best first)
// against a reference score row: an entry counts as correct when its
// reference score reaches the k-th best reference score outside skip
// (usually the query vertex). The threshold form keeps the metric fair
// under ties — any vertex tied with the boundary is as good as the
// boundary. Returns 1 when k <= 0 or the row has no candidates.
func PrecisionAtK(refRow []float64, skip int, got []int, k int) float64 {
	vals := make([]float64, 0, len(refRow))
	for v, s := range refRow {
		if v != skip {
			vals = append(vals, s)
		}
	}
	if k <= 0 || len(vals) == 0 {
		return 1
	}
	if k > len(vals) {
		k = len(vals)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	kth := vals[k-1]
	hits := 0
	for i := 0; i < len(got) && i < k; i++ {
		if refRow[got[i]] >= kth-1e-12 {
			hits++
		}
	}
	return float64(hits) / float64(k)
}
