// Package query answers single-source and top-k SimRank queries from a
// precomputed walk index, without ever materializing the Theta(n^2)
// all-pairs matrix the batch engines in package simrank produce.
//
// # Serving model
//
// The batch engines (OIP-SR and friends) compute s(a, b) for every pair at
// once: the right tool for offline analytics, and hopeless for a service
// that must answer "who is most similar to q?" per request — n^2 state for
// a million-vertex graph is terabytes. This package instead follows the
// index-then-query design of SLING (Tian & Xiao) and ProbeSim (Liu et
// al.): precompute a compact per-vertex index once, then answer each query
// by scanning only the query vertex's share of it.
//
// The index here stores R coupled reverse random walks of horizon K per
// vertex (the Fogaras-Racz first-meeting estimator, the same coupling as
// the batch monte-carlo engine). Index size is 4*n*R*K bytes — linear in
// n, independent of edge density — and a single-source query costs
// O(n*R*K) sequential int32 comparisons, typically well under a
// millisecond for graphs that fit in memory. Builds are deterministic:
// edge choices are pure hashes of (seed, fingerprint, step, vertex), so
// the same graph, options, and seed produce a bit-identical index at any
// worker count, and a saved index reloads into bit-identical query
// results.
//
// # Accuracy trade-off
//
// Estimates carry Monte Carlo error O(1/sqrt(R)) plus the small
// coalescence bias of coupled walks, where the batch engines are exact to
// their iteration truncation. Two mitigations are built in:
//
//   - Raise Walks (R). Error shrinks as 1/sqrt(R); index size and query
//     time grow linearly.
//   - TopKOptions.Rerank. The index proposes a candidate pool by estimated
//     score; each candidate pair is then re-scored exactly with a pruned
//     partial-sums iteration (memoized truncated SimRank recursion,
//     descending only while a branch's maximum possible contribution to
//     the root score stays above a prune threshold) and the pool is
//     re-ranked by the exact scores. This buys near-exact ordering within
//     the pool at a per-query cost that depends on in-degree, not on n.
//
// # Batched queries and similarity joins
//
// Serving traffic rarely asks one question at a time. MultiSource and
// TopKBatch answer a whole batch of sources through one shared traversal
// of the index — the batch's walker positions are tabulated once per
// (fingerprint, step) and a single sweep of the path store credits every
// source at once — so cost per source shrinks as the batch grows, while
// every row and ranking stays bit-identical to the corresponding
// independent SingleSource/TopK call, for every worker count. Join runs
// the all-pairs top-k similarity join ("which pairs anywhere score at
// least theta?"): only pairs whose walkers co-locate within the depth the
// threshold allows are enumerated (a pair first co-locating at step t
// scores at most C^(t+1) — the contribution-weight prune), then scored
// exactly, so the join never materializes n^2 state either. cmd/simrankd
// serves these as POST /v1/batch (NDJSON, one line per source, items fail
// independently) and POST /v1/join.
//
// # Dynamic updates
//
// The graph need not be frozen: ApplyEdits applies a batch of edge
// adds/removes and repairs the index incrementally instead of rebuilding.
// The hash-driven coupling makes the repair local — a walk's path can only
// change from the first time it stands on a vertex whose in-neighbor list
// changed — so only those suffixes are recomputed (tracked through an
// inverted visit index built lazily on first use, or eagerly via
// PrepareUpdates). The repaired index is bit-identical to a fresh
// BuildIndex on the edited graph, so incremental serving never drifts
// from a restart. Each update bumps Generation(); cache layers fold the
// generation into their keys to invalidate atomically. Updates mutate the
// index and must be serialized against queries — cmd/simrankd does this
// with an RWMutex and exposes the whole path as POST /v1/edges.
//
// Use the batch engines for all-pairs analytics, convergence studies, or
// exact scores; use this package when queries arrive one vertex at a
// time and latency or memory rules out n^2 work — the simrankd server
// (cmd/simrankd) is a ready-made HTTP front end.
package query
