package query

import (
	"context"
	"errors"
	"testing"

	"oipsr/graph/gen"
)

// TestCancelledContextAbortsQueries: a cancelled context aborts every
// public query path with the context's error.
func TestCancelledContextAbortsQueries(t *testing.T) {
	g := gen.WebGraph(200, 6, 31)
	ix, err := BuildIndex(g, Options{Walks: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := ix.SingleSource(cancelled, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("SingleSource: err = %v, want context.Canceled", err)
	}
	if _, err := ix.TopK(cancelled, 1, 5, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("TopK: err = %v, want context.Canceled", err)
	}
	if _, err := ix.TopK(cancelled, 1, 5, &TopKOptions{Rerank: true}); !errors.Is(err, context.Canceled) {
		t.Errorf("TopK(rerank): err = %v, want context.Canceled", err)
	}
	if _, err := ix.MultiSource(cancelled, []int{0, 1}, 2); !errors.Is(err, context.Canceled) {
		t.Errorf("MultiSource: err = %v, want context.Canceled", err)
	}
	if _, err := ix.TopKBatch(cancelled, []int{0, 1, 2}, 5, nil, 2); !errors.Is(err, context.Canceled) {
		t.Errorf("TopKBatch: err = %v, want context.Canceled", err)
	}
	if _, err := ix.Join(cancelled, 10, 0.05, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("Join: err = %v, want context.Canceled", err)
	}

	// Validation errors still win over cancellation checks that would
	// follow them — a bad request is a bad request even under a dead ctx.
	if _, err := ix.SingleSource(cancelled, -1); errors.Is(err, context.Canceled) {
		t.Errorf("SingleSource(-1): got context error, want validation error")
	}
}

// TestRerankCancellationMidPool: cancelling between rerank candidates
// aborts TopK even though the sweep already finished. The rerank polls the
// context on every candidate (each exact pair score is expensive), so a
// context that dies after the sweep still stops the call.
func TestRerankCancellationMidPool(t *testing.T) {
	g := gen.CoauthorGraph(150, 5, 7)
	ix, err := BuildIndex(g, Options{Walks: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// cancelAfterN hands out a live context for the first n Err calls and a
	// cancelled one after — deterministic mid-call cancellation without
	// timing games.
	// The sweep over 150 targets polls only a handful of times (once per
	// 64-target chunk); a budget of 20 survives it and dies a few
	// candidates into the rerank pool.
	ctx := &cancelAfterN{Context: context.Background(), n: 20}
	_, err = ix.TopK(ctx, 0, 20, &TopKOptions{Rerank: true, Candidates: 120})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("TopK with mid-rerank cancel: err = %v, want context.Canceled", err)
	}
}

type cancelAfterN struct {
	context.Context
	n int
}

func (c *cancelAfterN) Err() error {
	if c.n--; c.n < 0 {
		return context.Canceled
	}
	return nil
}
