package engine

import (
	"context"

	"oipsr/graph"
	"oipsr/internal/dsr"
	"oipsr/internal/simmat"
)

func init() { Register(dsrEngine{base{OIPDSR}}) }

// dsrEngine is OIP-DSR: the differential (exponential-convergence) SimRank
// iteration with OIP sharing.
type dsrEngine struct{ base }

func (dsrEngine) Caps() Caps { return Caps{AllPairs: true, Tiled: true} }

func (dsrEngine) Compute(_ context.Context, g *graph.Graph, p Params) (simmat.Source, *Stats, error) {
	m, st, err := dsr.Compute(g, dsr.Options{
		C:         p.C,
		K:         p.K,
		Eps:       p.Eps,
		Partition: partitionOptions(p),
		Workers:   p.Workers,
	})
	if err != nil {
		return nil, nil, err
	}
	return m, &Stats{
		Algorithm:   OIPDSR,
		Iterations:  st.Iterations,
		PlanTime:    st.PlanTime,
		ComputeTime: st.SweepTime,
		InnerAdds:   st.InnerAdds,
		OuterAdds:   st.OuterAdds,
		AuxBytes:    st.AuxBytes,
		StateBytes:  st.StateBytes,
		ShareRatio:  st.ShareRatio,
		AvgDiff:     st.AvgDiff,
		NumSets:     st.NumSets,
	}, nil
}

func (dsrEngine) ComputeTiled(_ context.Context, g *graph.Graph, p Params) (simmat.Source, *Stats, error) {
	m, st, err := dsr.ComputeTiled(g, dsr.Options{
		C:         p.C,
		K:         p.K,
		Eps:       p.Eps,
		Partition: partitionOptions(p),
		Workers:   p.Workers,
		Tile:      p.Tile,
	})
	if err != nil {
		return nil, nil, err
	}
	return m, &Stats{
		Algorithm:        OIPDSR,
		Iterations:       st.Iterations,
		PlanTime:         st.PlanTime,
		ComputeTime:      st.SweepTime,
		InnerAdds:        st.InnerAdds,
		OuterAdds:        st.OuterAdds,
		AuxBytes:         st.AuxBytes,
		StateBytes:       st.StateBytes,
		ShareRatio:       st.ShareRatio,
		AvgDiff:          st.AvgDiff,
		NumSets:          st.NumSets,
		TilePeakBytes:    st.Tile.HighWaterBytes,
		TileSpills:       st.Tile.Spills,
		TileLoads:        st.Tile.Loads,
		TileSpilledBytes: st.Tile.SpilledBytes,
	}, nil
}
