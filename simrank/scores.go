package simrank

import (
	"sort"

	"oipsr/internal/simmat"
)

// Scores holds the all-pairs similarity matrix produced by Compute.
type Scores struct {
	m *simmat.Matrix
}

// Ranked is one entry of a top-k result.
type Ranked struct {
	Vertex int
	Score  float64
}

// N returns the number of vertices.
func (s *Scores) N() int { return s.m.N() }

// Score returns s(a, b).
func (s *Scores) Score(a, b int) float64 { return s.m.At(a, b) }

// Row returns the similarity row s(a, *). The slice aliases internal
// storage and must not be modified.
func (s *Scores) Row(a int) []float64 { return s.m.Row(a) }

// TopK returns the k vertices most similar to query, excluding the query
// itself, in decreasing score order with ties broken by vertex id.
func (s *Scores) TopK(query, k int) []Ranked {
	row := s.m.Row(query)
	idx := rankDesc(row, query)
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]Ranked, k)
	for i := 0; i < k; i++ {
		out[i] = Ranked{Vertex: idx[i], Score: row[idx[i]]}
	}
	return out
}

// MaxDiff returns the max-norm distance to another score matrix of the same
// dimension.
func (s *Scores) MaxDiff(other *Scores) float64 {
	return simmat.MaxDiff(s.m, other.m)
}

// Bytes reports the memory footprint of the score matrix.
func (s *Scores) Bytes() int64 { return s.m.Bytes() }

// matrix exposes the underlying storage to the package internals.
func (s *Scores) matrix() *simmat.Matrix { return s.m }

// rankDesc orders all vertices except skip by decreasing score, breaking
// ties by vertex id for determinism.
func rankDesc(row []float64, skip int) []int {
	idx := make([]int, 0, len(row)-1)
	for i := range row {
		if i != skip {
			idx = append(idx, i)
		}
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if row[idx[a]] != row[idx[b]] {
			return row[idx[a]] > row[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx
}
