package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// jsonOut receives one NDJSON record per measured data point so future
// runs can be diffed mechanically (perf trajectory tracking). The
// human-readable tables keep printing to stdout regardless.
//
// Records always accumulate in benchJSONFile in the working directory —
// committing that file after a run is how the perf trajectory builds up
// across PRs — and are additionally teed to the -json sink when given.
var jsonOut *json.Encoder

// benchJSONFile is the always-on NDJSON sink; prior trajectory files are
// read for record preservation so renaming the sink between PRs keeps the
// history.
const benchJSONFile = "BENCH_PR10.json"

// benchJSONPrev is the previous PR's trajectory file, consulted for
// records to carry forward when benchJSONFile does not exist yet.
const benchJSONPrev = "BENCH_PR9.json"

var jsonFiles []*os.File

// initJSON opens the NDJSON sinks: benchJSONFile unconditionally, plus the
// -json argument (a file path, or "-" for stdout) when present. Records of
// experiments NOT in this run survive in benchJSONFile — running a subset
// must not destroy the rest of the trajectory.
func initJSON(path string, running []string) error {
	keep := preservedRecords(benchJSONFile, running)
	if keep == nil {
		if _, err := os.Stat(benchJSONFile); err != nil {
			keep = preservedRecords(benchJSONPrev, running)
		}
	}
	f, err := os.Create(benchJSONFile)
	if err != nil {
		return err
	}
	for _, line := range keep {
		// Preserved records go to the trajectory file only, not the tee:
		// the -json sink is a view of this run.
		f.Write(line)
		f.Write([]byte{'\n'})
	}
	jsonFiles = append(jsonFiles, f)
	writers := []io.Writer{f}
	switch path {
	case "", benchJSONFile:
		// already covered by the always-on sink
	case "-":
		writers = append(writers, os.Stdout)
	default:
		f2, err := os.Create(path)
		if err != nil {
			return err
		}
		jsonFiles = append(jsonFiles, f2)
		writers = append(writers, f2)
	}
	jsonOut = json.NewEncoder(io.MultiWriter(writers...))
	return nil
}

func closeJSON() {
	for _, f := range jsonFiles {
		f.Close()
	}
}

// preservedRecords returns the NDJSON lines of path whose experiment tag
// is not about to be re-run (malformed lines are dropped). A missing file
// preserves nothing.
func preservedRecords(path string, running []string) [][]byte {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	rerun := make(map[string]bool, len(running))
	for _, name := range running {
		rerun[name] = true
	}
	var keep [][]byte
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec struct {
			Experiment string `json:"experiment"`
		}
		if json.Unmarshal(line, &rec) != nil || rec.Experiment == "" || rerun[rec.Experiment] {
			continue
		}
		keep = append(keep, line)
	}
	return keep
}

// emitJSON writes one record to the -json sink (no-op without -json). Keys
// are flattened alongside the experiment name and sorted for stable diffs.
func emitJSON(experiment string, fields map[string]any) {
	if jsonOut == nil {
		return
	}
	keys := make([]string, 0, len(fields))
	for k := range fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	// json.Marshal sorts map keys already; flatten into one object with the
	// experiment tag first by building an ordered raw message.
	buf := []byte(fmt.Sprintf("{%q:%q", "experiment", experiment))
	for _, k := range keys {
		v, err := json.Marshal(fields[k])
		if err != nil {
			continue
		}
		kk, _ := json.Marshal(k)
		buf = append(buf, ',')
		buf = append(buf, kk...)
		buf = append(buf, ':')
		buf = append(buf, v...)
	}
	buf = append(buf, '}')
	jsonOut.Encode(json.RawMessage(buf))
}

// seconds converts a duration to float seconds for JSON records.
func seconds(d time.Duration) float64 { return d.Seconds() }
