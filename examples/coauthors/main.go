// Coauthors: collaborator recommendation on a DBLP-style network, with the
// ranking-quality analysis of the paper's Exp-4.
//
// Generates a co-authorship graph (symmetric edges, community structure,
// skewed productivity), recommends collaborators for the most prolific
// author with the fast differential engine, and then quantifies how
// faithfully the differential ranking preserves the conventional SimRank
// order: NDCG@p against the converged conventional ranking, Kendall tau,
// and the count of significant rank inversions in the top 30 (Fig. 6g/6h).
//
//	go run ./examples/coauthors
package main

import (
	"fmt"
	"log"

	"oipsr/graph"
	"oipsr/graph/gen"
	"oipsr/simrank"
)

func main() {
	const (
		n   = 1200
		c   = 0.8
		eps = 1e-5
	)
	g := gen.CoauthorGraph(n, 3, 11)
	fmt.Printf("co-authorship network: %s\n\n", graph.ComputeStats(g))

	// Converged conventional SimRank is the reference ranking.
	ref, refStats, err := simrank.Compute(g, simrank.Options{Algorithm: simrank.OIPSR, C: c, Eps: eps})
	if err != nil {
		log.Fatal(err)
	}
	// The differential model gets there in a fraction of the iterations.
	fast, fastStats, err := simrank.Compute(g, simrank.Options{Algorithm: simrank.OIPDSR, C: c, Eps: eps})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conventional: %2d iterations %8v   differential: %d iterations %8v\n\n",
		refStats.Iterations, refStats.ComputeTime, fastStats.Iterations, fastStats.ComputeTime)

	// Query the most prolific author.
	query := 0
	for v := 0; v < n; v++ {
		if g.InDegree(v) > g.InDegree(query) {
			query = v
		}
	}
	fmt.Printf("recommended collaborators for author #%d (%d co-authors), differential model:\n",
		query, g.InDegree(query))
	for i, r := range fast.TopK(query, 10) {
		known := "new contact"
		if g.HasEdge(r.Vertex, query) {
			known = "existing co-author"
		}
		fmt.Printf("  %2d. author #%-6d score %.5f  (%s)\n", i+1, r.Vertex, r.Score, known)
	}

	// Exp-4: does the fast model preserve the reference order?
	skip := func(i int) bool { return i == query }
	ideal := rankedVertices(ref, query, skip)
	rel := simrank.GradeByRank(n, ideal, []int{10, 30, 50})
	fastRank := rankedVertices(fast, query, skip)
	fmt.Println("\nranking fidelity vs converged conventional SimRank:")
	for _, p := range []int{10, 30, 50} {
		fmt.Printf("  NDCG@%-3d = %.3f\n", p, simrank.NDCG(rel, fastRank, p))
	}
	top30 := ideal[:30]
	tol := 0.02 * ref.Score(query, ideal[0])
	fmt.Printf("  Kendall tau (all scored pairs) = %.3f\n",
		simrank.KendallTau(ref.Row(query), fast.Row(query)))
	fmt.Printf("  significant top-30 inversions  = %d\n",
		simrank.SignificantInversions(top30, ref.Row(query), fast.Row(query), tol))
}

func rankedVertices(s *simrank.Scores, q int, skip func(int) bool) []int {
	top := s.TopK(q, s.N())
	out := make([]int, 0, len(top))
	for _, r := range top {
		if skip != nil && skip(r.Vertex) {
			continue
		}
		out = append(out, r.Vertex)
	}
	return out
}
