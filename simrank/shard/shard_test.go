package shard

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"oipsr/graph"
	"oipsr/graph/gen"
	"oipsr/simrank/query"
)

func TestPlanPartition(t *testing.T) {
	for _, tc := range []struct{ n, shards int }{
		{0, 1}, {1, 1}, {10, 1}, {10, 3}, {10, 10}, {7, 16}, {101, 4},
	} {
		plan, err := Plan(tc.n, tc.shards)
		if err != nil {
			t.Fatalf("Plan(%d,%d): %v", tc.n, tc.shards, err)
		}
		if len(plan) != tc.shards {
			t.Fatalf("Plan(%d,%d): %d ranges", tc.n, tc.shards, len(plan))
		}
		next, minW, maxW := 0, tc.n, 0
		for _, r := range plan {
			if r.Lo != next || r.Hi < r.Lo {
				t.Fatalf("Plan(%d,%d): range %+v breaks partition at %d", tc.n, tc.shards, r, next)
			}
			w := r.Hi - r.Lo
			minW, maxW = min(minW, w), max(maxW, w)
			next = r.Hi
		}
		if next != tc.n {
			t.Fatalf("Plan(%d,%d): covers [0,%d)", tc.n, tc.shards, next)
		}
		if maxW-minW > 1 {
			t.Fatalf("Plan(%d,%d): unbalanced widths [%d,%d]", tc.n, tc.shards, minW, maxW)
		}
	}
	if _, err := Plan(10, 0); err == nil {
		t.Error("Plan with 0 shards: expected error")
	}
	if _, err := Plan(-1, 2); err == nil {
		t.Error("Plan with negative n: expected error")
	}
}

// TestBuildAllRoundTrip: BuildAll publishes a loadable directory whose
// shards, opened through the manifest, answer partial queries that
// concatenate into the single-node dense rows bitwise.
func TestBuildAllRoundTrip(t *testing.T) {
	g := gen.WebGraph(57, 6, 2)
	opt := query.Options{Walks: 18, Seed: 7, Workers: 1}
	dir := t.TempDir()
	m, err := BuildAll(g, opt, dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Shards) != 3 || m.N != 57 || m.Walks != 18 || m.Seed != 7 {
		t.Fatalf("manifest: %+v", m)
	}
	if m.C != 0.6 || m.K < 1 {
		t.Fatalf("manifest did not record resolved defaults: c=%v k=%d", m.C, m.K)
	}

	loaded, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	full, err := query.BuildIndex(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	sources := []int{0, 31, 56}
	ctx := context.Background()

	var got [][]float64
	for i := range loaded.Shards {
		s, err := OpenShard(dir, loaded, i)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.PartialScores(ctx, sources, 1); err == nil {
			t.Fatal("PartialScores without a graph: expected error")
		}
		if err := s.AttachGraph(g); err != nil {
			t.Fatal(err)
		}
		rows, err := s.PartialScores(ctx, sources, 2)
		if err != nil {
			t.Fatal(err)
		}
		if got == nil {
			got = make([][]float64, len(sources))
		}
		for si := range rows {
			got[si] = append(got[si], rows[si]...)
		}
	}
	for si, q := range sources {
		want, err := full.SingleSource(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if got[si][v] != want[v] {
				t.Fatalf("source %d target %d: sharded %v != full %v", q, v, got[si][v], want[v])
			}
		}
	}
}

// TestManifestCorruptionDetection: every tamper mode is caught before a
// wrong answer can be served.
func TestManifestCorruptionDetection(t *testing.T) {
	g := gen.WebGraph(30, 4, 5)
	dir := t.TempDir()
	m, err := BuildAll(g, query.Options{Walks: 8, Seed: 1}, dir, 2)
	if err != nil {
		t.Fatal(err)
	}

	mpath := filepath.Join(dir, ManifestName)
	orig, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}

	// Flip a byte inside the JSON document.
	bad := append([]byte(nil), orig...)
	bad[10] ^= 1
	if err := os.WriteFile(mpath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(dir); !errors.Is(err, ErrManifestCorrupt) {
		t.Fatalf("tampered manifest: got %v, want ErrManifestCorrupt", err)
	}
	if err := os.WriteFile(mpath, orig, 0o644); err != nil {
		t.Fatal(err)
	}

	// Flip a byte inside a shard file: OpenShard must refuse before
	// walkindex even parses it.
	spath := filepath.Join(dir, m.Shards[1].File)
	sdata, err := os.ReadFile(spath)
	if err != nil {
		t.Fatal(err)
	}
	sbad := append([]byte(nil), sdata...)
	sbad[len(sbad)/2] ^= 0x10
	if err := os.WriteFile(spath, sbad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenShard(dir, m, 1); !errors.Is(err, ErrShardChecksum) {
		t.Fatalf("tampered shard file: got %v, want ErrShardChecksum", err)
	}

	// Swapping two shard files is also a checksum mismatch (the manifest
	// binds file names to ranges).
	if err := os.WriteFile(spath, sdata, 0o644); err != nil {
		t.Fatal(err)
	}
	d0, err := os.ReadFile(filepath.Join(dir, m.Shards[0].File))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(spath, d0, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenShard(dir, m, 1); !errors.Is(err, ErrShardChecksum) {
		t.Fatalf("swapped shard files: got %v, want ErrShardChecksum", err)
	}
}

// TestShardApplyEditsParity: after identical edit batches, a shard fleet
// remains an exact partition of the single-node index — same scores, same
// generations.
func TestShardApplyEditsParity(t *testing.T) {
	g := gen.CitationGraph(40, 4, 3)
	opt := query.Options{Walks: 12, Seed: 9, Workers: 1}
	full, err := query.BuildIndex(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Plan(40, 3)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]*Shard, len(plan))
	for i, r := range plan {
		if shards[i], err = Build(g, opt, r.Lo, r.Hi); err != nil {
			t.Fatal(err)
		}
	}

	ctx := context.Background()
	batches := [][]graph.Edit{
		{{Op: graph.EditAdd, U: 1, V: 39}, {Op: graph.EditAdd, U: 20, V: 0}},
		{{Op: graph.EditRemove, U: 1, V: 39}},
		{{Op: graph.EditAdd, U: 1, V: 39}}, // already removed-re-added churn
	}
	for bi, edits := range batches {
		fullStats, err := full.ApplyEdits(edits, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range shards {
			stats, err := s.ApplyEdits(edits, 1+i%2)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Generation != fullStats.Generation {
				t.Fatalf("batch %d shard %d: generation %d != full %d", bi, i, stats.Generation, fullStats.Generation)
			}
		}
		q := (bi * 13) % 40
		want, err := full.SingleSource(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		var got []float64
		for _, s := range shards {
			rows, err := s.PartialScores(ctx, []int{q}, 1)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, rows[0]...)
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("batch %d source %d target %d: sharded %v != full %v", bi, q, v, got[v], want[v])
			}
		}
	}

	// A pure no-op batch keeps every generation (and with it every cached
	// response downstream).
	gen0 := shards[0].Generation()
	stats, err := shards[0].ApplyEdits([]graph.Edit{{Op: graph.EditAdd, U: 1, V: 39}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Generation != gen0 || shards[0].Generation() != gen0 {
		t.Fatalf("no-op batch bumped generation %d -> %d", gen0, stats.Generation)
	}
}

// TestOpenShardMappedParity: shards opened demand-paged through the
// manifest answer bit-identically to densely opened ones, survive edits
// (flushed back through the sealed file), and refuse what they must: v1
// manifests and tampered files.
func TestOpenShardMappedParity(t *testing.T) {
	g := gen.WebGraph(57, 6, 2)
	opt := query.Options{Walks: 18, Seed: 7, Workers: 1}
	dir := t.TempDir()
	m, err := BuildAll(g, opt, dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Format != query.FormatV2 {
		t.Fatalf("BuildAll wrote format %d, want default %d", m.Format, query.FormatV2)
	}

	sources := []int{0, 31, 56}
	ctx := context.Background()
	edits := []graph.Edit{{Op: graph.EditAdd, U: 1, V: 56}, {Op: graph.EditRemove, U: 1, V: 56}, {Op: graph.EditAdd, U: 3, V: 40}}
	rewritten := -1 // ordinal of a mapped shard whose file the edits rewrote
	for i := range m.Shards {
		dense, err := OpenShard(dir, m, i)
		if err != nil {
			t.Fatal(err)
		}
		mapped, err := OpenShardMapped(dir, m, i, query.MappedOptions{CacheBlocks: 1})
		if err != nil {
			t.Fatal(err)
		}
		if b := mapped.Backend(); b != "mapped" && b != "mapped-readat" {
			t.Fatalf("shard %d backend = %q", i, b)
		}
		for _, s := range []*Shard{dense, mapped} {
			if err := s.AttachGraph(g); err != nil {
				t.Fatal(err)
			}
		}
		for round := 0; round < 2; round++ {
			dRows, err := dense.PartialScores(ctx, sources, 2)
			if err != nil {
				t.Fatal(err)
			}
			mRows, err := mapped.PartialScores(ctx, sources, 2)
			if err != nil {
				t.Fatal(err)
			}
			for si := range dRows {
				for v := range dRows[si] {
					if dRows[si][v] != mRows[si][v] {
						t.Fatalf("shard %d round %d source %d: mapped diverges at %d", i, round, sources[si], v)
					}
				}
			}
			if round == 0 {
				for _, s := range []*Shard{dense, mapped} {
					stats, err := s.ApplyEdits(edits, 1)
					if err != nil {
						t.Fatal(err)
					}
					if s == mapped && stats.WalksRepaired > 0 {
						rewritten = i
					}
				}
			}
		}
		if err := mapped.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Editing a mapped shard rewrites its sealed file; the manifest CRC no
	// longer matches, which OpenShard must report rather than serve.
	if rewritten < 0 {
		t.Fatal("edit batch repaired no walks in any shard; pick a more invasive batch")
	}
	if _, err := OpenShard(dir, m, rewritten); !errors.Is(err, ErrShardChecksum) {
		t.Fatalf("edited shard file: got %v, want ErrShardChecksum", err)
	}

	// A v1 directory cannot be demand-paged: only format v2 maps.
	v1dir := t.TempDir()
	m1, err := BuildAllFormat(g, opt, v1dir, 2, query.FormatV1)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Format != query.FormatV1 {
		t.Fatalf("BuildAllFormat(v1) recorded format %d", m1.Format)
	}
	if s, err := OpenShard(v1dir, m1, 0); err != nil {
		t.Fatalf("v1 manifest must stay densely openable: %v", err)
	} else if s.Backend() != "dense" {
		t.Fatalf("v1 shard backend = %q", s.Backend())
	}
	if _, err := OpenShardMapped(v1dir, m1, 0, query.MappedOptions{}); err == nil {
		t.Fatal("OpenShardMapped on a v1 manifest: expected error")
	}

	// Tampered shard files are refused before mapping.
	spath := filepath.Join(v1dir, m1.Shards[0].File)
	sdata, err := os.ReadFile(spath)
	if err != nil {
		t.Fatal(err)
	}
	sdata[len(sdata)/2] ^= 0x10
	if err := os.WriteFile(spath, sdata, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenShard(v1dir, m1, 0); !errors.Is(err, ErrShardChecksum) {
		t.Fatalf("tampered v1 shard: got %v, want ErrShardChecksum", err)
	}
}

// TestShardValidation: out-of-range sources and pairs are rejected.
func TestShardValidation(t *testing.T) {
	g := gen.WebGraph(20, 4, 1)
	s, err := Build(g, query.Options{Walks: 6}, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := s.PartialScores(ctx, []int{20}, 1); err == nil {
		t.Error("out-of-range source: expected error")
	}
	if _, err := s.ScorePairs(ctx, []uint64{uint64(3)<<32 | 25}, 1); err == nil {
		t.Error("out-of-range pair: expected error")
	}
}
