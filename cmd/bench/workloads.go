package main

import (
	"oipsr/graph"
	"oipsr/graph/gen"
)

// Workload sizes before -scale. The paper's graphs are 2-4 orders of
// magnitude larger; all-pairs SimRank is Theta(n^2) memory, so the
// substitutes are sized for a workstation while preserving degree and
// overlap structure (see DESIGN.md, "Substitutions").
const (
	webN      = 2000 // BERKSTAN substitute: d ~ 11, boilerplate overlap
	webDeg    = 11
	patentN   = 2600 // PATENT substitute: d ~ 4.4, citation copying
	patentDeg = 4
	densityN  = 1200 // Fig. 6c sweep
	exp34N    = 1200 // convergence/ordering workload (DBLP d11-like)
)

func webGraph(cfg config) *graph.Graph {
	return gen.WebGraph(webN/cfg.scale, webDeg, cfg.seed)
}

func patentGraph(cfg config) *graph.Graph {
	return gen.CitationGraph(patentN/cfg.scale, patentDeg, cfg.seed)
}

// dblpSnapshots returns the four growing co-authorship snapshots
// (D02/D05/D08/D11 substitutes). The base scale of 4 keeps the largest
// snapshot under 5K vertices; -scale multiplies on top.
func dblpSnapshots(cfg config) (names []string, graphs []*graph.Graph) {
	names = []string{"d02", "d05", "d08", "d11"}
	for i := range names {
		graphs = append(graphs, gen.DBLPSnapshot(i, 4*cfg.scale, cfg.seed))
	}
	return names, graphs
}

// coauthorD11 is the Exp-3/Exp-4 workload: the largest DBLP-like snapshot
// at a size where converged runs stay fast.
func coauthorD11(cfg config) *graph.Graph {
	return gen.CoauthorGraph(exp34N/cfg.scale, 3, cfg.seed)
}
