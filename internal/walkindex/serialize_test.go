package walkindex

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"

	"oipsr/graph/gen"
)

func buildSmall(t *testing.T) *Index {
	t.Helper()
	g := gen.WebGraph(50, 5, 7)
	ix, err := Build(g, Options{C: 0.7, K: 9, Walks: 30, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func saveBytes(t *testing.T, ix *Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// reseal recomputes and patches the trailing CRC after a test mutated the
// payload, so the mutation — not the checksum — is what Load must reject.
func reseal(data []byte) {
	sum := crc32.ChecksumIEEE(data[:len(data)-4])
	binary.LittleEndian.PutUint32(data[len(data)-4:], sum)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ix := buildSmall(t)
	data := saveBytes(t, ix)
	got, err := Load(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Equal(got) {
		t.Fatal("loaded index differs from saved index")
	}
	// Bit-identical query results, not just equal storage.
	a := ssRow(t, ix, 3)
	b := ssRow(t, got, 3)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("SingleSource(3)[%d]: %g != %g after round-trip", v, a[v], b[v])
		}
	}
}

func TestLoadRejectsBadMagic(t *testing.T) {
	data := saveBytes(t, buildSmall(t))
	data[0] = 'X'
	reseal(data)
	if _, err := Load(bytes.NewReader(data)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestLoadRejectsVersionMismatch(t *testing.T) {
	data := saveBytes(t, buildSmall(t))
	binary.LittleEndian.PutUint32(data[8:], FormatVersion+7)
	reseal(data)
	_, err := Load(bytes.NewReader(data))
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

func TestLoadRejectsCorruptedPayload(t *testing.T) {
	data := saveBytes(t, buildSmall(t))
	data[headerSize+5] ^= 0x40 // flip one bit inside the path payload
	if _, err := Load(bytes.NewReader(data)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
}

func TestLoadRejectsShortFile(t *testing.T) {
	data := saveBytes(t, buildSmall(t))
	for _, cut := range []int{0, 5, headerSize - 1, headerSize, headerSize + 17, len(data) - 3} {
		_, err := Load(bytes.NewReader(data[:cut]))
		if err == nil {
			t.Fatalf("Load of %d/%d bytes succeeded, want error", cut, len(data))
		}
		if cut > 0 && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("Load of %d bytes: err = %v, want wrapped io.ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestLoadRejectsImplausibleHeader(t *testing.T) {
	data := saveBytes(t, buildSmall(t))
	// Claim an astronomically large fingerprint count: Load must refuse the
	// allocation before reading (or trusting) any payload.
	binary.LittleEndian.PutUint64(data[28:], 1<<40)
	reseal(data)
	if _, err := Load(bytes.NewReader(data)); err == nil {
		t.Fatal("Load with n*r*k overflow succeeded, want error")
	}
}

func TestLoadRejectsOutOfRangePath(t *testing.T) {
	data := saveBytes(t, buildSmall(t))
	// A path entry >= n is structurally invalid even with a valid checksum.
	binary.LittleEndian.PutUint32(data[headerSize:], 1_000_000)
	reseal(data)
	if _, err := Load(bytes.NewReader(data)); err == nil {
		t.Fatal("Load with out-of-range path entry succeeded, want error")
	}
}
