// Package lru provides a small thread-safe least-recently-used cache, used
// by cmd/simrankd to memoize query responses. It is deliberately minimal:
// fixed entry capacity, no TTL, no weighing. Entries only go stale
// wholesale — when a graph update bumps the index generation — and Clear
// handles that case; eviction otherwise just bounds memory.
package lru

import (
	"container/list"
	"sync"
)

// Cache is a fixed-capacity LRU map from K to V. The zero value is not
// usable; construct with New. All methods are safe for concurrent use.
type Cache[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *entry[K, V]
	items map[K]*list.Element

	hits, misses int64
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// New returns a cache holding at most capacity entries. A capacity <= 0
// returns a disabled cache: Get always misses and Put is a no-op, so
// callers need no special case for "caching off".
func New[K comparable, V any](capacity int) *Cache[K, V] {
	c := &Cache[K, V]{cap: capacity}
	if capacity > 0 {
		c.order = list.New()
		c.items = make(map[K]*list.Element, capacity)
	}
	return c
}

// Get returns the cached value for key and marks it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	var zero V
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap <= 0 {
		c.misses++
		return zero, false
	}
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return zero, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*entry[K, V]).val, true
}

// Put inserts or refreshes key, evicting the least recently used entry
// once the cache is full.
func (c *Cache[K, V]) Put(key K, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap <= 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[K, V]).val = val
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*entry[K, V]).key)
	}
	c.items[key] = c.order.PushFront(&entry[K, V]{key: key, val: val})
}

// Clear drops every cached entry (hit/miss statistics are kept). Used when
// the backing data changes wholesale — e.g. simrankd bumping the index
// generation — so dead entries free their memory immediately instead of
// waiting for capacity eviction.
func (c *Cache[K, V]) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap <= 0 {
		return
	}
	c.order.Init()
	clear(c.items)
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap <= 0 {
		return 0
	}
	return c.order.Len()
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache[K, V]) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
