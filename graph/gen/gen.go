// Package gen produces synthetic directed graphs that substitute for the
// paper's datasets and for its GTGraph-generated SYN workloads.
//
// The paper (Section V-A) evaluates on three real networks — BERKSTAN (web,
// d≈11.1), PATENT (citations, d≈4.4), DBLP (co-authorship, d≈2.4–2.8) — and
// on GTGraph synthetic graphs parameterized by (n, m). Those exact datasets
// are not redistributable here, so this package builds generators whose
// outputs preserve the structural properties the evaluation depends on:
//
//   - WebGraph: power-law degrees with heavy in-neighborhood overlap via a
//     link-copying model (the overlap is what gives OIP-SR its largest
//     speedups on BERKSTAN).
//   - CitationGraph: a DAG where new vertices cite a mix of recent and
//     preferentially-selected older vertices (PATENT-like, low degree).
//   - CoauthorGraph: a community-structured symmetric graph with skewed
//     author productivity (DBLP-like), with snapshot sizing helpers for the
//     D02/D05/D08/D11 series.
//   - ErdosRenyi and RMAT: the two GTGraph modes, used for the density
//     sweep of Fig. 6c.
//
// All generators are deterministic given a seed.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"oipsr/graph"
)

// ErdosRenyi samples a directed G(n, m) graph: m edges drawn uniformly at
// random without replacement, excluding self-loops. It panics if m exceeds
// n*(n-1), the number of possible edges.
func ErdosRenyi(n, m int, seed int64) *graph.Graph {
	if maxEdges := n * (n - 1); m > maxEdges {
		panic(fmt.Sprintf("gen: ErdosRenyi(%d, %d): at most %d edges possible", n, m, maxEdges))
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, m)
	b.EnsureVertices(n)
	seen := make(map[[2]int]bool, m)
	for len(seen) < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		e := [2]int{u, v}
		if seen[e] {
			continue
		}
		seen[e] = true
		b.AddEdge(u, v)
	}
	return b.MustBuild()
}

// RMATParams hold the recursive quadrant probabilities of the R-MAT model.
// They must be positive and sum to 1. GTGraph's defaults are (0.45, 0.15,
// 0.15, 0.25), which produce power-law degree distributions.
type RMATParams struct {
	A, B, C, D float64
}

// DefaultRMAT matches GTGraph's default R-MAT parameters.
var DefaultRMAT = RMATParams{A: 0.45, B: 0.15, C: 0.15, D: 0.25}

// RMAT generates a directed graph with ~m distinct edges over n vertices
// using the recursive matrix model. n is rounded up to the next power of two
// internally for quadrant recursion; generated ids are rejected if >= n, so
// the result spans exactly n vertices. Duplicate samples are coalesced, so
// the resulting edge count can be slightly below m on dense settings; the
// generator retries up to 20*m samples before giving up, which in practice
// always reaches m for m <= n(n-1)/2.
func RMAT(n, m int, p RMATParams, seed int64) *graph.Graph {
	if s := p.A + p.B + p.C + p.D; s < 0.999 || s > 1.001 {
		panic(fmt.Sprintf("gen: RMAT params sum to %f, want 1", s))
	}
	levels := 0
	for 1<<levels < n {
		levels++
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, m)
	b.EnsureVertices(n)
	seen := make(map[[2]int]bool, m)
	for attempts := 0; len(seen) < m && attempts < 20*m+1000; attempts++ {
		u, v := 0, 0
		for l := 0; l < levels; l++ {
			r := rng.Float64()
			switch {
			case r < p.A:
				// top-left: nothing to add
			case r < p.A+p.B:
				v |= 1 << l
			case r < p.A+p.B+p.C:
				u |= 1 << l
			default:
				u |= 1 << l
				v |= 1 << l
			}
		}
		if u >= n || v >= n || u == v {
			continue
		}
		e := [2]int{u, v}
		if seen[e] {
			continue
		}
		seen[e] = true
		b.AddEdge(u, v)
	}
	return b.MustBuild()
}

// WebGraph generates a BERKSTAN-shaped graph: n vertices with average degree
// ~avgDeg and the boilerplate structure real web crawls exhibit. Pages on
// the same site share navigation templates — near-identical outgoing link
// blocks — so the pages those templates point to end up with near-identical
// in-neighbor sets. That is precisely the redundancy Section III exploits
// (and why the paper's speedups are largest on BERKSTAN).
//
// The model: a growing pool of link templates (each a set of ~avgDeg target
// pages). Every new page usually adopts an existing template (Zipf-weighted
// toward early templates, like large sites), emits the template's links plus
// occasionally one personal extra link, and sometimes mutates the template
// slightly (sites evolve). A small degree-dependent fraction of pages start
// fresh templates; the fraction shrinks as avgDeg grows, so overlap — and
// the OIP sharing ratio — increases with density, matching the trend the
// paper reports in Fig. 6c.
func WebGraph(n, avgDeg int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, n*avgDeg)
	b.EnsureVertices(n)
	if n < 2 {
		return b.MustBuild()
	}

	var templates [][]int
	var popular []int // multiset of targets for preferential sampling

	sampleTarget := func(u int) int {
		if len(popular) > 0 && rng.Float64() < 0.1 {
			return popular[rng.Intn(len(popular))]
		}
		return rng.Intn(u)
	}
	newTemplate := func(u int) []int {
		k := avgDeg + rng.Intn(3)
		if k < 1 {
			k = 1
		}
		seen := make(map[int]bool, k)
		var t []int
		for len(t) < k && len(seen) < u {
			v := sampleTarget(u)
			if v == u || seen[v] {
				continue
			}
			seen[v] = true
			t = append(t, v)
		}
		return t
	}

	// New-template probability: sites grow denser boilerplate rather than
	// multiplying sites, so the template pool scales inversely with degree.
	// This is what makes in-neighborhood overlap (and hence OIP sharing)
	// grow with density, the trend of Fig. 6c.
	newTemplateProb := 0.35 / float64(avgDeg)
	if newTemplateProb > 0.08 {
		newTemplateProb = 0.08
	}
	if newTemplateProb < 0.01 {
		newTemplateProb = 0.01
	}

	for u := 1; u < n; u++ {
		var links []int
		if len(templates) == 0 || rng.Float64() < newTemplateProb {
			t := newTemplate(u)
			if len(t) == 0 {
				continue
			}
			templates = append(templates, t)
			links = t
		} else {
			// Zipf-ish template choice: prefer early (big-site) templates.
			ti := int(float64(len(templates)) * math.Pow(rng.Float64(), 2))
			t := templates[ti]
			// Occasional template mutation: replace one target.
			if rng.Float64() < 0.05 && len(t) > 0 {
				if v := sampleTarget(u); v != u {
					t[rng.Intn(len(t))] = v
				}
			}
			links = t
			// Occasional personal extra link outside the template.
			if rng.Float64() < 0.15 {
				if v := sampleTarget(u); v != u {
					links = append(append([]int(nil), t...), v)
				}
			}
		}
		for _, v := range links {
			if v != u {
				b.AddEdge(u, v)
				popular = append(popular, v)
			}
		}
	}
	return b.MustBuild()
}

// CitationGraph generates a PATENT-shaped citation DAG: vertex u only cites
// vertices with smaller ids (earlier "publications"). New papers copy most
// of their reference list from a parent paper — the well-documented citation
// copying phenomenon — and add a few fresh citations (recent or famous
// papers). Copying makes groups of papers co-cited by the same authors,
// giving their cited-by sets (the in-neighbor sets SimRank averages over)
// heavy overlap, at the moderate level the paper observed on PATENT (its
// speedups there sit between BERKSTAN and DBLP). Average out-degree is
// ~avgDeg; in-degrees are skewed.
func CitationGraph(n, avgDeg int, seed int64) *graph.Graph {
	const copyProb = 0.6
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, n*avgDeg)
	b.EnsureVertices(n)
	refs := make([][]int, n) // reference list per paper
	var cited []int          // multiset for preferential attachment
	window := 4*avgDeg + 1
	// Preferential picks sample only the most recent citations: citation
	// attention fades, which keeps early papers from absorbing the whole
	// network (real citation networks are skewed but not degenerate).
	attention := 40 * (avgDeg + 1)
	pickCited := func() int {
		lo := 0
		if len(cited) > attention {
			lo = len(cited) - attention
		}
		return cited[lo+rng.Intn(len(cited)-lo)]
	}
	for u := 1; u < n; u++ {
		k := avgDeg
		if u < avgDeg {
			k = u
		}
		added := make(map[int]bool, k)
		// "Followers" copy a recent parent's entire reference list,
		// keeping co-citation bundles coherent: the copied papers are
		// cited together over and over, so their cited-by sets (the
		// in-neighbor sets SimRank averages) become near-identical —
		// the moderate-redundancy structure OIP exploits on PATENT.
		// Bundles die out naturally because parents are drawn from a
		// recency window.
		if u > 1 && rng.Float64() < copyProb {
			parent := u - 1 - rng.Intn(min(u-1, window))
			cap := k
			// Occasionally leave one slot for a fresh citation, evolving
			// the bundle over time.
			if rng.Float64() < 0.3 {
				cap = k - 1
			}
			for _, v := range refs[parent] {
				if len(added) >= cap {
					break
				}
				added[v] = true
			}
		}
		// "Novel" papers (and follower slack) cite fresh work: recency
		// window or recently-famous papers.
		for guard := 0; len(added) < k && guard < 20*k; guard++ {
			var v int
			switch {
			case len(cited) > 0 && rng.Float64() < 0.4:
				v = pickCited()
			case u > window && rng.Float64() < 0.6:
				v = u - 1 - rng.Intn(window)
			default:
				v = rng.Intn(u)
			}
			if v >= u || added[v] {
				if len(added) >= u {
					break
				}
				continue
			}
			added[v] = true
		}
		// Sort for determinism: map iteration order would otherwise leak
		// into the preferential-attachment multiset.
		cites := make([]int, 0, len(added))
		for v := range added {
			cites = append(cites, v)
		}
		sort.Ints(cites)
		for _, v := range cites {
			b.AddEdge(u, v)
			refs[u] = append(refs[u], v)
			cited = append(cited, v)
		}
	}
	return b.MustBuild()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// CoauthorGraph generates a DBLP-shaped co-authorship graph: n authors in
// sqrt(n)-sized overlapping communities (conference venues), with a skewed
// productivity distribution. Co-authorship edges are symmetric (u->v and
// v->u), matching how the paper builds DBLP graphs. Average total degree is
// approximately avgDeg.
func CoauthorGraph(n, avgDeg int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, n*avgDeg)
	b.EnsureVertices(n)
	nComm := 1
	for nComm*nComm < n {
		nComm++
	}
	// Assign each author a home community and a productivity weight drawn
	// from a discrete power law (many one-paper authors, few prolific ones).
	home := make([]int, n)
	prod := make([]int, n)
	for v := 0; v < n; v++ {
		home[v] = rng.Intn(nComm)
		// Pareto-ish: P(prod >= k) ~ k^-1.5
		p := 1
		for p < 20 && rng.Float64() < 0.45 {
			p++
		}
		prod[v] = p
	}
	members := make([][]int, nComm)
	for v := 0; v < n; v++ {
		members[home[v]] = append(members[home[v]], v)
	}
	// "Papers": each paper is a small author set drawn mostly from one
	// community, weighted by productivity; all pairs become symmetric edges.
	// Each undirected pair contributes two directed edges, so hitting an
	// average (total) degree of avgDeg needs n*avgDeg/2 undirected pairs.
	targetUndirected := n * avgDeg / 2
	type pair struct{ u, v int }
	seen := make(map[pair]bool, targetUndirected)
	pick := func(comm []int) int {
		// Weighted pick by productivity via rejection sampling.
		for {
			v := comm[rng.Intn(len(comm))]
			if rng.Intn(20) < prod[v] {
				return v
			}
		}
	}
	for made, guard := 0, 0; made < targetUndirected && guard < 50*targetUndirected+1000; guard++ {
		c := rng.Intn(nComm)
		if len(members[c]) < 2 {
			continue
		}
		k := 2 + rng.Intn(3) // paper with 2-4 authors
		authors := make([]int, 0, k)
		taken := make(map[int]bool, k)
		for len(authors) < k && len(authors) < len(members[c]) {
			var v int
			if rng.Float64() < 0.15 && n > len(members[c]) {
				v = rng.Intn(n) // cross-community collaborator
			} else {
				v = pick(members[c])
			}
			if taken[v] {
				continue
			}
			taken[v] = true
			authors = append(authors, v)
		}
		for i := 0; i < len(authors); i++ {
			for j := i + 1; j < len(authors); j++ {
				u, v := authors[i], authors[j]
				if u > v {
					u, v = v, u
				}
				if seen[pair{u, v}] {
					continue
				}
				seen[pair{u, v}] = true
				b.AddEdge(u, v)
				b.AddEdge(v, u)
				made++
			}
		}
	}
	return b.MustBuild()
}

// DBLPSnapshot returns the i-th (0..3) snapshot of a growing co-authorship
// graph series shaped like the paper's D02/D05/D08/D11 (Fig. 5: n grows
// ~6K->19K with d~2.4-2.8; here scaled by the given factor, e.g. scale=4
// yields n~1.5K..4.8K). Later snapshots contain earlier authors plus new
// ones, mirroring how the paper slices DBLP by 3-year windows.
func DBLPSnapshot(i int, scale int, seed int64) *graph.Graph {
	if i < 0 || i > 3 {
		panic(fmt.Sprintf("gen: DBLPSnapshot index %d out of range [0,3]", i))
	}
	if scale < 1 {
		scale = 1
	}
	// Paper sizes (vertices) and average total degrees from Fig. 5.
	sizes := [4]int{5982, 9342, 13736, 19371}
	degs := [4]int{3, 2, 3, 3} // 2.7, 2.4, 2.7, 2.6 rounded
	n := sizes[i] / scale
	return CoauthorGraph(n, degs[i], seed)
}
