package query

import (
	"context"
	"fmt"

	"oipsr/internal/walkindex"
)

// JoinPair is one result pair of a similarity join, canonical A < B.
type JoinPair struct {
	A     int     `json:"a"`
	B     int     `json:"b"`
	Score float64 `json:"score"`
}

// ErrTooDense is returned by Join when the threshold admits more candidate
// pairs than JoinOptions.MaxCandidates — the guard that keeps an
// all-pairs-shaped request from exhausting memory. Raise the threshold or
// the cap.
var ErrTooDense = walkindex.ErrTooDense

// JoinOptions tune a Join call. The zero value (or a nil pointer) means a
// candidate cap of DefaultMaxCandidates and a serial run.
type JoinOptions struct {
	// MaxCandidates caps the number of co-located vertex pairs the join
	// enumerates before scoring; exceeding it returns ErrTooDense. 0 means
	// DefaultMaxCandidates.
	MaxCandidates int
	// Workers sets the worker-pool size (1 = serial, below 1 = all CPUs).
	// The result is bit-identical for every worker count.
	Workers int
}

// DefaultMaxCandidates is the JoinOptions.MaxCandidates default: two
// million candidate pairs (~32 MB of enumeration state).
const DefaultMaxCandidates = 1 << 21

// Join returns the k highest-scoring vertex pairs (a < b) with estimated
// SimRank at least threshold, in decreasing score order with ties broken
// by (a, b) — the all-pairs top-k similarity join, served from the walk
// index without materializing the Theta(n^2) score matrix.
//
// Scores are the index estimates (bit-identical to the SingleSource /
// MultiSource entries for the same pairs) and the result is exhaustive
// under the contribution-weight prune: a pair whose walkers first co-locate
// at step t can score at most C^(t+1), so only co-locations at the depth
// the threshold allows are enumerated, then scored exactly. A threshold of
// 0 means "every pair with a positive estimate" (pairs whose walks never
// meet score exactly 0 and never join). Thresholds above C return an empty
// result immediately: no distinct pair can score above C. Cancelling ctx
// abandons the join at the next chunk boundary and returns the context's
// error.
func (ix *Index) Join(ctx context.Context, k int, threshold float64, opt *JoinOptions) ([]JoinPair, error) {
	if opt == nil {
		opt = &JoinOptions{}
	}
	maxCand := opt.MaxCandidates
	if maxCand == 0 {
		maxCand = DefaultMaxCandidates
	}
	if maxCand < 1 {
		return nil, fmt.Errorf("query: join candidate cap %d < 1", maxCand)
	}
	pairs, err := ix.wi.Join(ctx, k, threshold, maxCand, opt.Workers)
	if err != nil {
		return nil, err
	}
	out := make([]JoinPair, len(pairs))
	for i, p := range pairs {
		out[i] = JoinPair{A: p.A, B: p.B, Score: p.Score}
	}
	return out, nil
}
