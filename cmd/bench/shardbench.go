package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"oipsr/graph/gen"
	"oipsr/internal/simrankd"
	"oipsr/simrank/query"
	"oipsr/simrank/shard"
)

// runShardWorkload measures the horizontally sharded serving path: the
// same query mix against a single-node server and against 1/2/4-shard
// fleets fronted by the scatter/gather router, all in-process (httptest
// over the very handlers cmd/simrankd serves), so timings include the
// full HTTP stack, the router's fan-out and merge, but no real network.
//
// Before anything is timed, every router deployment is equivalence-
// checked: each query in the mix must come back byte-identical to the
// single-node answer — the sharding must never change the question being
// answered. A divergent body exits non-zero, which the CI shard smoke
// (bench -quick shard) relies on.
//
// On a single-CPU box the fleet shares one core, so the point of the
// numbers is not speedup but overhead: what the extra HTTP hop and the
// merge cost per query, and how that cost scales with shard count. The
// same harness on a multi-core host shows the throughput scaling the
// sharding exists for.
func runShardWorkload(cfg config) {
	header("Sharded serving: router scatter/gather vs single node", "simrankd -mode router workload")

	const walks = 200
	n := 2000 / cfg.scale
	if n < 300 {
		n = 300
	}
	rounds := 6 / cfg.scale
	if rounds < 2 {
		rounds = 2
	}
	g := gen.WebGraph(n, 8, cfg.seed)
	opt := query.Options{Walks: walks, Seed: cfg.seed, Workers: benchWorkers}
	idx, err := query.BuildIndex(g, opt)
	must(err)
	// Caches are off everywhere: every request must scatter and merge,
	// which is the work being measured.
	cfgSrv := simrankd.Config{CacheSize: -1, Workers: benchWorkers}
	single := httptest.NewServer(simrankd.NewServer(idx, cfgSrv))
	defer single.Close()

	// The query mix: sparse single-source, plain top-k, reranked top-k —
	// the three families a read-heavy deployment serves.
	sources := queryVertices(n, 24)
	var mix []string
	for _, q := range sources {
		mix = append(mix,
			fmt.Sprintf("/v1/single_source?q=%d&min=0.001", q),
			fmt.Sprintf("/v1/topk?q=%d&k=10", q),
			fmt.Sprintf("/v1/topk?q=%d&k=10&rerank=1", q),
		)
	}

	fmt.Printf("berkstan* n=%d walks=%d, %d queries/round, %d rounds, workers=%d\n\n",
		n, walks, len(mix), rounds, benchWorkers)
	fmt.Printf("%-12s | %10s %12s | %10s\n", "deployment", "queries/s", "us/query", "overhead")

	baseline := timeQueryMix(single.URL, mix, rounds)
	perQuery := baseline / time.Duration(rounds*len(mix))
	fmt.Printf("%-12s | %10.0f %12d | %10s\n",
		"single", float64(rounds*len(mix))/baseline.Seconds(), perQuery.Microseconds(), "—")
	emitJSON("shard", map[string]any{
		"workload": "berkstan*", "n": n, "walks": walks, "deployment": "single",
		"shards": 0, "queries": rounds * len(mix),
		"qps": float64(rounds*len(mix)) / baseline.Seconds(), "us_per_query": perQuery.Microseconds(),
	})

	for _, nsh := range []int{1, 2, 4} {
		ranges, err := shard.Plan(n, nsh)
		must(err)
		var backends []string
		var servers []*httptest.Server
		for _, rg := range ranges {
			sh, err := shard.Build(g, opt, rg.Lo, rg.Hi)
			must(err)
			ss, err := simrankd.NewShardServer(sh, cfgSrv)
			must(err)
			ts := httptest.NewServer(ss)
			servers = append(servers, ts)
			backends = append(backends, ts.URL)
		}
		rt, err := simrankd.NewRouter(g, backends, simrankd.RouterConfig{Config: cfgSrv})
		must(err)
		router := httptest.NewServer(rt)
		servers = append(servers, router)

		// Equivalence gate: the router must answer the whole mix (plus a
		// join) byte-identically to the single node before it is timed.
		checkRouterEquivalence(single.URL, router.URL, mix)

		elapsed := timeQueryMix(router.URL, mix, rounds)
		perQuery := elapsed / time.Duration(rounds*len(mix))
		overhead := float64(elapsed-baseline) / float64(baseline) * 100
		name := fmt.Sprintf("router/%d", nsh)
		fmt.Printf("%-12s | %10.0f %12d | %+9.1f%%\n",
			name, float64(rounds*len(mix))/elapsed.Seconds(), perQuery.Microseconds(), overhead)
		emitJSON("shard", map[string]any{
			"workload": "berkstan*", "n": n, "walks": walks, "deployment": "router",
			"shards": nsh, "queries": rounds * len(mix),
			"qps": float64(rounds*len(mix)) / elapsed.Seconds(), "us_per_query": perQuery.Microseconds(),
			"overhead_vs_single_pct": overhead,
		})

		for _, ts := range servers {
			ts.Close()
		}
	}
	fmt.Println("\nevery router response verified byte-identical to the single node before timing")
}

// timeQueryMix plays the mix against base sequentially for the given
// number of rounds and returns the wall time.
func timeQueryMix(base string, mix []string, rounds int) time.Duration {
	t0 := time.Now()
	for r := 0; r < rounds; r++ {
		for _, path := range mix {
			resp, err := http.Get(base + path)
			must(err)
			_, err = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			must(err)
			if resp.StatusCode != http.StatusOK {
				fmt.Fprintf(os.Stderr, "bench: shard: %s answered %d\n", path, resp.StatusCode)
				os.Exit(1)
			}
		}
	}
	return time.Since(t0)
}

// checkRouterEquivalence exits non-zero unless the router answers every
// query in the mix, and one /v1/join, byte-identically to the single node.
func checkRouterEquivalence(singleURL, routerURL string, mix []string) {
	fetch := func(base, path string) []byte {
		resp, err := http.Get(base + path)
		must(err)
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		must(err)
		return body
	}
	for _, path := range mix {
		want, got := fetch(singleURL, path), fetch(routerURL, path)
		if !bytes.Equal(want, got) {
			fmt.Fprintf(os.Stderr, "bench: shard: router diverges from single node on %s\n  single: %s\n  router: %s\n",
				path, want, got)
			os.Exit(1)
		}
	}
	join := `{"k":10,"threshold":0.2}`
	post := func(base string) []byte {
		resp, err := http.Post(base+"/v1/join", "application/json", strings.NewReader(join))
		must(err)
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		must(err)
		return body
	}
	if want, got := post(singleURL), post(routerURL); !bytes.Equal(want, got) {
		fmt.Fprintf(os.Stderr, "bench: shard: router diverges from single node on /v1/join\n  single: %s\n  router: %s\n", want, got)
		os.Exit(1)
	}
}
