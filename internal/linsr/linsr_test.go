package linsr

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"oipsr/graph"
	"oipsr/graph/gen"
	"oipsr/internal/naive"
)

const (
	testC = 0.6
	// testTol is the solve tolerance for the accuracy tests; the naive
	// reference below is converged far past it.
	testTol = 1e-10
	// refK converges the naive oracle to ~C^refK = 1e-22, so disagreement
	// measures linsr's error alone.
	refK = 100
)

func mustSolver(t *testing.T, g *graph.Graph, opt Options) *Solver {
	t.Helper()
	s, err := New(context.Background(), g, opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func refMatrix(t *testing.T, g *graph.Graph) [][]float64 {
	t.Helper()
	m, err := naive.ComputeWorkers(g, testC, refK, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	rows := make([][]float64, n)
	for i := 0; i < n; i++ {
		rows[i] = append([]float64(nil), m.Row(i)...)
	}
	return rows
}

// testGraphs covers the structural edge cases: cycles (the divergence
// trap for the undamped Richardson solve), DAGs, zero in-degree vertices,
// self-loops, isolated vertices, and hub overlap.
func testGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	mk := func(n int, edges [][2]int) *graph.Graph {
		g, err := graph.FromEdges(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	return map[string]*graph.Graph{
		"cycle":    mk(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}),
		"selfloop": mk(3, [][2]int{{0, 0}, {0, 1}, {1, 2}, {2, 0}}),
		"dag":      mk(6, [][2]int{{0, 2}, {1, 2}, {0, 3}, {1, 3}, {2, 4}, {3, 4}, {3, 5}}),
		"star":     mk(6, [][2]int{{1, 0}, {2, 0}, {3, 0}, {4, 0}, {5, 0}}),
		"isolated": mk(4, [][2]int{{0, 1}, {1, 0}}),
		"web":      gen.WebGraph(60, 5, 3),
		"coauthor": gen.CoauthorGraph(50, 3, 2),
	}
}

// TestSingleSourceMatchesConvergedNaive is the core accuracy gate: the
// linearization solves the conventional fixed point, so every row must
// agree with a deeply converged Jeh-Widom iteration.
func TestSingleSourceMatchesConvergedNaive(t *testing.T) {
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			ref := refMatrix(t, g)
			s := mustSolver(t, g, Options{C: testC, Tol: testTol})
			n := g.NumVertices()
			sc := s.NewScratch()
			worst := 0.0
			for q := 0; q < n; q++ {
				row, err := s.SingleSourceScratch(context.Background(), q, nil, sc)
				if err != nil {
					t.Fatal(err)
				}
				for j, v := range row {
					if d := math.Abs(v - ref[q][j]); d > worst {
						worst = d
					}
				}
			}
			if worst > 1e-8 {
				t.Errorf("max abs error vs converged naive: %g > 1e-8 (residual %g)", worst, s.Stats().Residual)
			}
		})
	}
}

// TestPairMatchesSingleSource checks the streaming pair path against the
// full row (exact equality is not required — the two accumulate in a
// different order — but agreement must be at rounding level).
func TestPairMatchesSingleSource(t *testing.T) {
	g := gen.WebGraph(40, 4, 1)
	s := mustSolver(t, g, Options{C: testC, Tol: testTol})
	row, err := s.SingleSource(context.Background(), 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []int{0, 3, 7, 19, 39} {
		got, err := s.Pair(context.Background(), 7, b)
		if err != nil {
			t.Fatal(err)
		}
		want := row[b]
		if b == 7 {
			want = 1 // Pair pins the diagonal by definition
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("Pair(7,%d) = %g, row value %g", b, got, want)
		}
	}
}

// TestSolveDeterministicAcrossWorkers pins the bit-identity discipline:
// the diagonal solve partitions vertices across workers but each vertex's
// series is self-contained, so d — and every downstream score — must be
// bit-identical for every worker count.
func TestSolveDeterministicAcrossWorkers(t *testing.T) {
	g := gen.WebGraph(80, 6, 5)
	base := mustSolver(t, g, Options{C: testC, Tol: testTol, Workers: 1})
	for _, workers := range []int{2, 3, 7} {
		s := mustSolver(t, g, Options{C: testC, Tol: testTol, Workers: workers})
		for i := range base.d {
			if s.d[i] != base.d[i] {
				t.Fatalf("workers=%d: d[%d] = %x differs from serial %x", workers, i, s.d[i], base.d[i])
			}
		}
		if s.Stats().SolveIters != base.Stats().SolveIters {
			t.Fatalf("workers=%d: %d sweeps vs serial %d", workers, s.Stats().SolveIters, base.Stats().SolveIters)
		}
	}
}

// TestPropertyRandomGraphs fuzzes structure: random sparse digraphs must
// stay within tolerance of the converged oracle and within [0,1].
func TestPropertyRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(24)
		maxM := n * n
		m := rng.Intn(maxM / 2)
		if m > 4*n {
			m = 4 * n
		}
		edges := make([][2]int, 0, m)
		for len(edges) < m {
			edges = append(edges, [2]int{rng.Intn(n), rng.Intn(n)})
		}
		g, err := graph.FromEdges(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(context.Background(), g, Options{C: testC, Tol: testTol})
		if err != nil {
			t.Fatalf("trial %d (n=%d m=%d): %v", trial, n, m, err)
		}
		ref := refMatrix(t, g)
		for q := 0; q < n; q++ {
			row, err := s.SingleSource(context.Background(), q, nil)
			if err != nil {
				t.Fatal(err)
			}
			for j, v := range row {
				if d := math.Abs(v - ref[q][j]); d > 1e-8 {
					t.Fatalf("trial %d (n=%d m=%d): s(%d,%d) = %g vs oracle %g", trial, n, m, q, j, v, ref[q][j])
				}
				if v < -1e-9 || v > 1+1e-9 {
					t.Fatalf("trial %d: s(%d,%d) = %g outside [0,1]", trial, q, j, v)
				}
			}
		}
	}
}

// TestCancellation covers both cancellable phases: a pre-cancelled context
// must abort the diagonal solve, and cancelling between solve steps must
// abort an in-flight single-source query.
func TestCancellation(t *testing.T) {
	g := gen.WebGraph(120, 6, 9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := New(ctx, g, Options{C: testC, Tol: testTol}); err != context.Canceled {
		t.Fatalf("New on cancelled ctx: err = %v, want context.Canceled", err)
	}

	s := mustSolver(t, g, Options{C: testC, Tol: testTol})
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := s.SingleSource(ctx2, 0, nil); err != context.Canceled {
		t.Fatalf("SingleSource on cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := s.Pair(ctx2, 0, 1); err != context.Canceled {
		t.Fatalf("Pair on cancelled ctx: err = %v, want context.Canceled", err)
	}
}

// TestOptionValidation pins the error surface.
func TestOptionValidation(t *testing.T) {
	g := gen.WebGraph(10, 3, 1)
	cases := []Options{
		{C: 1.5},
		{C: -0.2},
		{C: 0.6, Tol: 2},
		{C: 0.6, T: -1},
	}
	for _, opt := range cases {
		if _, err := New(context.Background(), g, opt); err == nil {
			t.Errorf("New(%+v): expected error", opt)
		}
	}
	s := mustSolver(t, g, Options{})
	if _, err := s.SingleSource(context.Background(), -1, nil); err == nil {
		t.Error("SingleSource(-1): expected error")
	}
	if _, err := s.SingleSource(context.Background(), 10, nil); err == nil {
		t.Error("SingleSource(10): expected error")
	}
	if _, err := s.Pair(context.Background(), 0, 10); err == nil {
		t.Error("Pair(0,10): expected error")
	}
}

// TestEmptyGraph: a zero-vertex graph builds a trivial solver.
func TestEmptyGraph(t *testing.T) {
	g, err := graph.FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := mustSolver(t, g, Options{})
	if s.N() != 0 {
		t.Fatalf("N() = %d", s.N())
	}
	if _, err := s.SingleSource(context.Background(), 0, nil); err == nil {
		t.Error("SingleSource on empty graph: expected range error")
	}
}
