package shard

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"oipsr/graph/gen"
	"oipsr/simrank/query"
)

// TestBuildAllStreamingIdenticalDirectory: the streaming shard builder
// must publish an indistinguishable directory — same manifest (params,
// checksums, sizes), byte-identical shard files — as BuildAll, for
// budgets down to one vertex of walk state per slice.
func TestBuildAllStreamingIdenticalDirectory(t *testing.T) {
	g := gen.WebGraph(157, 6, 2)
	opt := query.Options{Walks: 18, Seed: 7, Workers: 1}
	wantDir := t.TempDir()
	wantM, err := BuildAll(g, opt, wantDir, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int64{1, 1000, 1 << 28} {
		gotDir := t.TempDir()
		gotM, err := BuildAllStreaming(g, opt, gotDir, 3, budget)
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if !reflect.DeepEqual(gotM, wantM) {
			t.Fatalf("budget %d: streaming manifest %+v != materialized %+v", budget, gotM, wantM)
		}
		for _, fi := range gotM.Shards {
			want, err := os.ReadFile(filepath.Join(wantDir, fi.File))
			if err != nil {
				t.Fatal(err)
			}
			got, err := os.ReadFile(filepath.Join(gotDir, fi.File))
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Fatalf("budget %d: %s differs between builders", budget, fi.File)
			}
		}
	}
}

// TestBuildAllStreamingServes: a streamed shard directory loads through
// the ordinary manifest path (checksums verified) and serves partials
// matching the full index — mapped, since streamed files are always v2.
func TestBuildAllStreamingServes(t *testing.T) {
	g := gen.CitationGraph(90, 5, 4)
	opt := query.Options{Walks: 14, Seed: 3, Workers: 1}
	dir := t.TempDir()
	if _, err := BuildAllStreaming(g, opt, dir, 2, 512); err != nil {
		t.Fatal(err)
	}
	m, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	full, err := query.BuildIndex(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sources := []int{0, 45, 89}
	var got [][]float64
	for i := range m.Shards {
		s, err := OpenShardMapped(dir, m, i, query.MappedOptions{CacheBlocks: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.AttachGraph(g); err != nil {
			t.Fatal(err)
		}
		rows, err := s.PartialScores(ctx, sources, 2)
		if err != nil {
			t.Fatal(err)
		}
		if got == nil {
			got = make([][]float64, len(sources))
		}
		for si := range rows {
			got[si] = append(got[si], rows[si]...)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	for si, q := range sources {
		want, err := full.SingleSource(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if got[si][v] != want[v] {
				t.Fatalf("source %d target %d: streamed shard %v != full %v", q, v, got[si][v], want[v])
			}
		}
	}
}
