// Command mdcheck is the repository's markdown link checker: it verifies
// that every relative link in the given markdown files points at a file or
// directory that actually exists, so documentation cannot silently rot as
// the tree moves underneath it. CI runs it over README.md, ARCHITECTURE.md,
// TESTING.md and docs/ in the docs hygiene job.
//
//	mdcheck README.md ARCHITECTURE.md docs/API.md
//
// External links (http, https, mailto) and pure intra-document anchors
// (#section) are skipped — mdcheck is offline and checks the tree, not the
// web. A relative link's fragment is ignored; the target path is resolved
// against the markdown file's own directory. Exit status 1 reports one
// line per broken link.
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: mdcheck FILE.md [FILE.md ...]")
		os.Exit(2)
	}
	broken := 0
	for _, path := range os.Args[1:] {
		problems, err := CheckFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdcheck: %v\n", err)
			os.Exit(2)
		}
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "%s\n", p)
			broken++
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "mdcheck: %d broken link(s)\n", broken)
		os.Exit(1)
	}
}
