package query_test

import (
	"context"
	"fmt"
	"log"

	"oipsr/graph"
	"oipsr/simrank/query"
)

// siblings returns the 3-vertex hub graph 0->1, 0->2: both walkers step
// to the hub with probability 1 and meet at the first step, so every
// estimate below is exact (C with zero sampling variance) and the example
// outputs are deterministic.
func siblings() *graph.Graph {
	return graph.MustFromEdges(3, [][2]int{{0, 1}, {0, 2}})
}

// Build a walk index once, then answer single-source queries from it —
// no Theta(n^2) state anywhere.
func ExampleBuildIndex() {
	idx, err := query.BuildIndex(siblings(), query.Options{C: 0.8, K: 5, Walks: 10, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	scores, err := idx.SingleSource(context.Background(), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("s(1,1) = %.2f, s(1,2) = %.2f\n", scores[1], scores[2])
	// Output: s(1,1) = 1.00, s(1,2) = 0.80
}

// TopK returns the k most similar vertices, most similar first.
func ExampleIndex_TopK() {
	idx, err := query.BuildIndex(siblings(), query.Options{C: 0.8, K: 5, Walks: 10, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	top, err := idx.TopK(context.Background(), 1, 2, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range top {
		fmt.Printf("vertex %d: %.2f\n", r.Vertex, r.Score)
	}
	// Output:
	// vertex 2: 0.80
	// vertex 0: 0.00
}

// MultiSource answers a whole batch of sources in one shared traversal of
// the index; every row is bit-identical to the independent SingleSource
// call.
func ExampleIndex_MultiSource() {
	idx, err := query.BuildIndex(siblings(), query.Options{C: 0.8, K: 5, Walks: 10, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	rows, err := idx.MultiSource(context.Background(), []int{1, 2}, 1)
	if err != nil {
		log.Fatal(err)
	}
	for i, q := range []int{1, 2} {
		fmt.Printf("source %d: %.2f\n", q, rows[i])
	}
	// Output:
	// source 1: [0.00 1.00 0.80]
	// source 2: [0.00 0.80 1.00]
}

// Join finds the most similar pairs in the whole graph at a score
// threshold — the all-pairs top-k similarity join.
func ExampleIndex_Join() {
	idx, err := query.BuildIndex(siblings(), query.Options{C: 0.8, K: 5, Walks: 10, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	pairs, err := idx.Join(context.Background(), 5, 0.5, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pairs {
		fmt.Printf("(%d,%d) = %.2f\n", p.A, p.B, p.Score)
	}
	// Output: (1,2) = 0.80
}
