package query

import (
	"bytes"
	"context"
	"math/rand"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"oipsr/graph/gen"
)

func buildTestIndex(t *testing.T) *Index {
	t.Helper()
	g := gen.WebGraph(80, 6, 5)
	ix, err := BuildIndex(g, Options{Walks: 60, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestSaveLoadBitIdenticalQueries(t *testing.T) {
	ix := buildTestIndex(t)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < ix.N(); q += 9 {
		a, err := ix.SingleSource(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.SingleSource(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		for v := range a {
			if a[v] != b[v] {
				t.Fatalf("SingleSource(%d)[%d]: %g != %g after Save/Load", q, v, a[v], b[v])
			}
		}
		ta, err := ix.TopK(context.Background(), q, 10, nil)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := loaded.TopK(context.Background(), q, 10, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ta, tb) {
			t.Fatalf("TopK(%d) differs after Save/Load:\n%v\n%v", q, ta, tb)
		}
	}
	if ix.C() != loaded.C() || ix.Horizon() != loaded.Horizon() ||
		ix.Walks() != loaded.Walks() || ix.Seed() != loaded.Seed() {
		t.Fatal("index parameters changed across Save/Load")
	}
}

func TestSaveFileLoadFile(t *testing.T) {
	ix := buildTestIndex(t)
	path := filepath.Join(t.TempDir(), "walks.idx")
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := ix.SingleSource(context.Background(), 7)
	b, _ := loaded.SingleSource(context.Background(), 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("SingleSource differs after SaveFile/LoadFile")
	}
}

func TestLoadedIndexNeedsGraphForRerank(t *testing.T) {
	ix := buildTestIndex(t)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.TopK(context.Background(), 3, 5, &TopKOptions{Rerank: true}); err == nil {
		t.Fatal("rerank without an attached graph succeeded, want error")
	}
	if err := loaded.AttachGraph(gen.WebGraph(81, 6, 5)); err == nil {
		t.Fatal("AttachGraph with wrong vertex count succeeded, want error")
	}
	if err := loaded.AttachGraph(ix.Graph()); err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.TopK(context.Background(), 3, 5, &TopKOptions{Rerank: true}); err != nil {
		t.Fatalf("rerank after AttachGraph: %v", err)
	}
}

func TestQueryValidation(t *testing.T) {
	ix := buildTestIndex(t)
	if _, err := ix.SingleSource(context.Background(), -1); err == nil {
		t.Error("SingleSource(-1) succeeded")
	}
	if _, err := ix.SingleSource(context.Background(), ix.N()); err == nil {
		t.Error("SingleSource(N) succeeded")
	}
	if _, err := ix.TopK(context.Background(), 0, 0, nil); err == nil {
		t.Error("TopK with k=0 succeeded")
	}
	if _, err := ix.TopK(context.Background(), ix.N()+3, 5, nil); err == nil {
		t.Error("TopK with out-of-range query succeeded")
	}
	if _, err := ix.Pair(0, ix.N()); err == nil {
		t.Error("Pair with out-of-range vertex succeeded")
	}
	// k larger than n-1 clamps instead of failing.
	top, err := ix.TopK(context.Background(), 0, ix.N()*2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != ix.N()-1 {
		t.Errorf("clamped TopK returned %d entries, want %d", len(top), ix.N()-1)
	}
}

// TestTopByScore cross-checks the partial selection against a full sort.
func TestTopByScore(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(60)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = float64(rng.Intn(8)) / 8 // coarse values force ties
		}
		skip := rng.Intn(n)
		m := rng.Intn(n + 2)

		got := topByScore(scores, skip, m)

		idx := make([]int, 0, n-1)
		for v := range scores {
			if v != skip {
				idx = append(idx, v)
			}
		}
		sort.SliceStable(idx, func(a, b int) bool {
			if scores[idx[a]] != scores[idx[b]] {
				return scores[idx[a]] > scores[idx[b]]
			}
			return idx[a] < idx[b]
		})
		want := make([]Ranked, 0, m)
		for i := 0; i < m && i < len(idx); i++ {
			want = append(want, Ranked{Vertex: idx[i], Score: scores[idx[i]]})
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (n=%d m=%d skip=%d):\ngot  %v\nwant %v", trial, n, m, skip, got, want)
		}
	}
}
